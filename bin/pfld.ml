(* pfld — persistent compile-and-simulate daemon (ROADMAP item 4).

   Accepts line-framed JSON batches of {program source, machine config,
   placement policy, flags} requests on a Unix-domain socket, memoizes
   compilation and simulation behind content-addressed caches, and
   schedules non-cached work over the Jobs domain pool with fair
   round-robin queueing and per-request cycle budgets. See DESIGN.md §14.

   Exit codes match the other CLIs: 0 clean shutdown (SIGTERM/SIGINT or a
   shutdown request), 1 usage/IO (socket path unusable), 2 user error
   (malformed DDSM_JOBS, bad --workers), 3 internal failure. *)

open Cmdliner
module Service = Ddsm_service.Service
module Diag = Ddsm_core.Ddsm.Diag

let fail_user m =
  Printf.eprintf "runtime error: %s\n" (Diag.to_string (Diag.user ~phase:"env" m));
  exit 2

let run sock workers cache_dir no_cache budget verbose =
  let cfg =
    {
      Service.sock_path = sock;
      workers;
      cache_dir = (if no_cache then None else Some cache_dir);
      budget;
      verbose;
      handle_signals = true;
    }
  in
  match Service.serve cfg with
  | () -> ()
  | exception Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "pfld: %s: %s (%s)\n" fn (Unix.error_message e) arg;
      exit 1
  | exception Sys_error m ->
      Printf.eprintf "pfld: %s\n" m;
      exit 1

let () =
  (* the Jobs-pool default comes from DDSM_JOBS: user input, so a
     malformed value is a diagnosed exit-2 error, never an exception *)
  let default_workers =
    match Ddsm_util.Jobs.default_jobs () with
    | Ok n -> n
    | Error e -> fail_user e
  in
  let sock =
    Arg.(
      value & opt string "pfld.sock"
      & info [ "s"; "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket path to listen on.")
  in
  let workers =
    Arg.(
      value & opt int default_workers
      & info [ "w"; "workers" ] ~docv:"N"
          ~doc:
            "Simulate up to N non-cached requests in parallel on the Jobs \
             domain pool (default from $(b,DDSM_JOBS), else 1).")
  in
  let cache_dir =
    Arg.(
      value & opt string ".pfld-cache"
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Directory for the persisted compile cache (content-addressed \
             hardened images, written atomically); created if missing. A \
             restarted daemon warm-starts from it.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache-dir" ] ~doc:"Keep the compile cache in memory only.")
  in
  let budget =
    Arg.(
      value & opt int Service.default_budget
      & info [ "budget" ] ~docv:"CYCLES"
          ~doc:
            "Per-request simulated-cycle budget (0 = uncapped). A request \
             may lower it with its own $(b,max_cycles); exceeding it yields \
             a structured cycle-budget error reply, and the worker survives.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log connections and shutdown stats.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "pfld" ~version:"1.0"
         ~doc:
           "Persistent compile-and-simulate service with content-addressed \
            caching. Speak the line-framed JSON protocol on the socket, or \
            use $(b,pflrun --connect).")
      Term.(const run $ sock $ workers $ cache_dir $ no_cache $ budget $ verbose)
  in
  exit (Cmd.eval cmd)
