(* pflc — compiler/linker driver for the mini-Fortran data-distribution
   language. Mirrors the paper's toolchain: per-file compilation emits an
   object (.pfo) plus a shadow file (.pfs); linking runs the pre-linker,
   which propagates distribute_reshape directives across files and clones
   subroutines as needed (§5), then writes a program image (.pfi) for
   pflrun. *)

open Cmdliner
module Ddsm = Ddsm_core.Ddsm
module Flags = Ddsm_core.Ddsm.Flags

let flags_term =
  let mk tile peel skew hoist cse fp inter insp no_opt =
    if no_opt then Flags.all_off
    else
      {
        Flags.tile = not tile;
        peel = not peel;
        skew = not skew;
        hoist = not hoist;
        cse = not cse;
        fp_divmod = not fp;
        interchange = not inter;
        inspector = not insp;
      }
  in
  Term.(
    const mk
    $ Arg.(value & flag & info [ "no-tile" ] ~doc:"Disable §7.1 tiling.")
    $ Arg.(value & flag & info [ "no-peel" ] ~doc:"Disable §7.1 peeling.")
    $ Arg.(value & flag & info [ "no-skew" ] ~doc:"Disable §7.1 loop skewing.")
    $ Arg.(value & flag & info [ "no-hoist" ] ~doc:"Disable §7.2 hoisting.")
    $ Arg.(value & flag & info [ "no-cse" ] ~doc:"Disable §7.2 CSE.")
    $ Arg.(value & flag & info [ "no-fp-divmod" ] ~doc:"Disable §7.3 FP div/mod.")
    $ Arg.(value & flag & info [ "no-interchange" ] ~doc:"Disable §7.1.1 interchange.")
    $ Arg.(
        value & flag
        & info [ "no-inspector" ]
            ~doc:"Disable the inspector-executor transformation of irregular (indirect-subscript) loops.")
    $ Arg.(value & flag & info [ "O0" ] ~doc:"Disable all reshaped-array optimizations."))

(* Exit codes, matching pflrun: 1 = usage / IO (unreadable input,
   unwritable output), 2 = the program was rejected (parse, semantic or
   link error — always with a source location), 3 = internal error. *)
let err_exit es =
  List.iter (fun e -> Printf.eprintf "%s\n" e) es;
  exit 1

let reject_exit es =
  List.iter (fun e -> Printf.eprintf "%s\n" e) es;
  exit 2

let compile_cmd =
  let run flags srcs output =
    List.iter
      (fun src ->
        match Ddsm.compile_path ~flags src with
        | Error es -> reject_exit es
        | Ok obj ->
            let out =
              match output with
              | Some o when List.length srcs = 1 -> o
              | _ -> Filename.remove_extension src ^ ".pfo"
            in
            Ddsm_linker.Objfile.save obj ~path:out;
            Printf.printf "%s -> %s (+ %s)\n" src out
              (Filename.remove_extension out ^ ".pfs"))
      srcs
  in
  let srcs =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"SRC.pf" ~doc:"Source files.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUT" ~doc:"Object path.")
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile sources to objects + shadow files.")
    Term.(const run $ flags_term $ srcs $ output)

let link_objs paths output verbose =
  let objs =
    List.map
      (fun p ->
        match Ddsm_linker.Objfile.load ~path:p with
        | Ok o -> o
        (* a corrupt/truncated/stale object is a diagnosed rejection (the
           message is already located at the path), not a usage error *)
        | Error e -> reject_exit [ e ])
      paths
  in
  match Ddsm_linker.Prelink.link objs with
  | Error es -> reject_exit es
  | Ok l ->
      if verbose then begin
        Printf.printf "program unit: %s\n" l.Ddsm_linker.Prelink.main;
        Printf.printf "recompilations: %d\n" l.Ddsm_linker.Prelink.recompilations;
        List.iter
          (fun (o, c) -> Printf.printf "cloned %s -> %s\n" o c)
          l.Ddsm_linker.Prelink.clones
      end;
      Ddsm.save_image l ~path:output;
      Printf.printf "linked %d routine(s) -> %s\n"
        (List.length l.Ddsm_linker.Prelink.routines)
        output

let link_cmd =
  let objs =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"OBJ.pfo" ~doc:"Objects.")
  in
  let output =
    Arg.(value & opt string "a.pfi" & info [ "o" ] ~docv:"OUT.pfi" ~doc:"Image path.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Report cloning.") in
  Cmd.v (Cmd.info "link" ~doc:"Pre-link objects (propagating reshape directives) into an image.")
    Term.(const (fun o out v -> link_objs o out v) $ objs $ output $ verbose)

let build_cmd =
  let run flags srcs output verbose =
    let objs =
      List.map
        (fun src ->
          match Ddsm.compile_path ~flags src with
          | Error es -> reject_exit es
          | Ok obj -> obj)
        srcs
    in
    match Ddsm_linker.Prelink.link objs with
    | Error es -> reject_exit es
    | Ok l ->
        if verbose then
          List.iter
            (fun (o, c) -> Printf.printf "cloned %s -> %s\n" o c)
            l.Ddsm_linker.Prelink.clones;
        Ddsm.save_image l ~path:output;
        Printf.printf "built %s from %d file(s)\n" output (List.length srcs)
  in
  let srcs =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"SRC.pf" ~doc:"Sources.")
  in
  let output =
    Arg.(value & opt string "a.pfi" & info [ "o" ] ~docv:"OUT.pfi" ~doc:"Image path.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Report cloning.") in
  Cmd.v (Cmd.info "build" ~doc:"Compile and link in one step.")
    Term.(const run $ flags_term $ srcs $ output $ verbose)

let check_cmd =
  let run srcs =
    let ok = ref true in
    List.iter
      (fun src ->
        match Ddsm.compile_path src with
        | Error es ->
            ok := false;
            List.iter (fun e -> Printf.eprintf "%s\n" e) es
        | Ok _ -> Printf.printf "%s: ok\n" src)
      srcs;
    if not !ok then exit 2
  in
  let srcs =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"SRC.pf" ~doc:"Sources.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Parse and semantically check sources (directive legality, §6 compile-time checks) without producing objects.")
    Term.(const run $ srcs)

let dump_cmd =
  let run flags src =
    match Ddsm.compile_path ~flags src with
    | Error es -> reject_exit es
    | Ok obj ->
        List.iter
          (fun (u : Ddsm_linker.Objfile.unit_) ->
            Format.printf "%a@.@." Ddsm_ir.Decl.pp_routine u.Ddsm_linker.Objfile.lowered)
          obj.Ddsm_linker.Objfile.units;
        print_string (Ddsm_linker.Shadow.to_string obj.Ddsm_linker.Objfile.shadow)
  in
  let src = Arg.(required & pos 0 (some file) None & info [] ~docv:"SRC.pf") in
  Cmd.v
    (Cmd.info "dump" ~doc:"Print the lowered intermediate code and shadow entries.")
    Term.(const run $ flags_term $ src)

let () =
  let info =
    Cmd.info "pflc" ~version:"1.0"
      ~doc:"Compiler for the mini-Fortran data-distribution language (PLDI'97 reproduction)."
  in
  try
    exit
      (Cmd.eval ~catch:false
         (Cmd.group info [ compile_cmd; link_cmd; build_cmd; check_cmd; dump_cmd ]))
  with
  (* OS errors from reading sources or writing objects/images (unwritable
     -o path, full disk) take the documented usage/IO exit-1 path.  A
     [Failure] escaping the pipeline is a compiler bug, not a rejection:
     report it as such on exit 3 so campaigns and CI never mistake it for
     a diagnosed error. *)
  | Sys_error m -> err_exit [ m ]
  | Failure m ->
      Printf.eprintf "pflc: internal error: %s\n" m;
      exit 3
