(* pflfuzz — end-to-end compiler fuzzing: a typed random program generator
   feeding a four-way differential harness (reference interpreter,
   sequential engine, Jobs-parallel fast path over several machine
   configurations, and the domain-sharded event loop, bit-identical at
   every shard count).

   A campaign generates [--count] programs from consecutive seeds, runs
   each through the differential driver, triages failures into root-cause
   buckets (verdict kind + minimized-program digest), shrinks the first
   witness of each bucket and writes the minimized reproducer into the
   corpus directory.  [--replay DIR] re-runs a corpus and checks each
   case's recorded expectation.

   Exit codes: 0 clean; 1 usage; 2 failures found (campaign) or
   expectation mismatches (replay); 3 internal harness failure. *)

open Cmdliner
module Gen = Ddsm_fuzz.Gen
module Spec = Ddsm_fuzz.Spec
module Differ = Ddsm_fuzz.Differ
module Shrink = Ddsm_fuzz.Shrink
module Triage = Ddsm_fuzz.Triage
module Corpus = Ddsm_fuzz.Corpus

let opts_for ~seed ~fault ~race ~jobs ~shards ~max_cycles =
  let base = Differ.default ~seed in
  {
    base with
    Differ.fault;
    race;
    jobs = (match jobs with Some j -> j | None -> base.Differ.jobs);
    shard_legs =
      (match shards with Some l -> l | None -> base.Differ.shard_legs);
    max_cycles =
      (match max_cycles with Some c -> c | None -> base.Differ.max_cycles);
  }

let render_single spec =
  match Spec.render { spec with Spec.nfiles = 1 } with
  | [ (_, src) ] -> src
  | files -> String.concat "\n" (List.map snd files)

let campaign ~seed ~count ~max_size ~fault ~race ~jobs ~shards ~max_cycles
    ~out ~quiet =
  let size = Gen.of_level max_size in
  let tri = Triage.create () in
  let passes = ref 0 and timeouts = ref 0 in
  for k = 0 to count - 1 do
    let s = seed + k in
    let opts = opts_for ~seed:s ~fault ~race ~jobs ~shards ~max_cycles in
    let spec = Gen.generate ~size ~seed:s () in
    match Differ.run opts (Spec.render spec) with
    | Differ.Pass -> incr passes
    | Differ.Timeout -> incr timeouts
    | v ->
        let kind = Differ.kind_of v in
        let detail =
          match v with
          | Differ.Diverged { detail; _ } -> detail
          | Differ.Reject m | Differ.Fail m -> m
          | _ -> ""
        in
        if not quiet then
          Printf.printf "seed %d: %s %s\n%!" s kind detail;
        let still_fails c =
          Differ.kind_of (Differ.run opts (Spec.render c)) = kind
        in
        let mini = Shrink.minimize ~still_fails spec in
        let source = render_single mini in
        if Triage.note tri ~bucket:kind ~seed:s ~detail ~source then
          let path =
            Corpus.write_case ~dir:out ~seed:s ~bucket:kind ~expect:kind
              ~source
          in
          Printf.printf "NEW ROOT CAUSE %s (seed %d): %s\n  reproducer: %s\n%!"
            kind s detail path
  done;
  let roots = Triage.entries tri in
  Printf.printf
    "pflfuzz: %d cases (seeds %d..%d): %d pass, %d timeout, %d failures in \
     %d root causes\n"
    count seed (seed + count - 1) !passes !timeouts (Triage.total tri)
    (List.length roots);
  List.iter
    (fun (e : Triage.entry) ->
      Printf.printf "  [%s] x%d first seed %d: %s\n" e.Triage.bucket
        e.Triage.count e.Triage.seed e.Triage.detail)
    roots;
  if roots = [] then 0 else 2

let replay ~dir ~fault ~race ~jobs ~shards ~max_cycles ~quiet =
  let cases = Corpus.load ~dir in
  if cases = [] then begin
    Printf.printf "pflfuzz: empty corpus %s\n" dir;
    0
  end
  else begin
    let bad = ref 0 in
    List.iter
      (fun (c : Corpus.case) ->
        let opts =
          opts_for ~seed:c.Corpus.seed ~fault ~race ~jobs ~shards ~max_cycles
        in
        match Corpus.replay opts c with
        | Ok () ->
            if not quiet then
              Printf.printf "ok %s (%s)\n%!"
                (Filename.basename c.Corpus.path)
                c.Corpus.expect
        | Error m ->
            incr bad;
            Printf.printf "FAIL %s\n%!" m)
      cases;
    Printf.printf "pflfuzz: replayed %d corpus cases, %d mismatches\n"
      (List.length cases) !bad;
    if !bad = 0 then 0 else 2
  end

let emit ~seed ~max_size =
  let spec = Gen.generate ~size:(Gen.of_level max_size) ~seed () in
  List.iter
    (fun (fname, src) -> Printf.printf "c ===== %s =====\n%s\n" fname src)
    (Spec.render spec);
  0

(* ------------------------------------------------------------------ *)

let seed_t =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"First seed.")

let count_t =
  Arg.(
    value & opt int 200
    & info [ "count" ] ~docv:"N" ~doc:"Number of cases to generate.")

let max_size_t =
  Arg.(
    value & opt int 10
    & info [ "max-size" ] ~docv:"LEVEL"
        ~doc:"Program size level (10 is the quick CI size).")

let fault_t =
  Arg.(
    value & flag
    & info [ "fault" ]
        ~doc:
          "Inject deterministic performance-fault plans on variant legs \
           (values must not change) and lost-wakeup chaos legs (a \
           structured diagnosis is required, never an uncaught exception).")

let race_t =
  Arg.(
    value & flag
    & info [ "race" ]
        ~doc:
          "Run the base leg under the happens-before sanitizer and require \
           it clean.")

let jobs_t =
  Arg.(
    value & opt (some int) None
    & info [ "jobs" ] ~docv:"N" ~doc:"Domains for the Jobs fast-path leg.")

let shards_t =
  let shard_list =
    let parse s =
      let parts = String.split_on_char ',' s in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | p :: rest -> (
            match int_of_string_opt (String.trim p) with
            | Some n when n >= 1 -> go (n :: acc) rest
            | _ -> Error (`Msg ("bad shard count " ^ p)))
      in
      go [] parts
    in
    let print ppf l =
      Format.pp_print_string ppf
        (String.concat "," (List.map string_of_int l))
    in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt (some shard_list) None
    & info [ "shards" ] ~docv:"N[,M...]"
        ~doc:
          "Shard counts for the domain-sharded engine legs (default 2,4); \
           each must be bit-identical to the sequential base leg.")

let max_cycles_t =
  Arg.(
    value & opt (some int) None
    & info [ "max-cycles" ] ~docv:"N"
        ~doc:"Per-leg simulated-cycle budget (watchdog).")

let out_t =
  Arg.(
    value & opt string "fuzz-corpus"
    & info [ "out"; "o" ] ~docv:"DIR"
        ~doc:"Directory for minimized reproducers.")

let replay_t =
  Arg.(
    value & opt (some string) None
    & info [ "replay" ] ~docv:"DIR"
        ~doc:"Replay a corpus directory instead of fuzzing.")

let emit_t =
  Arg.(
    value & opt (some int) None
    & info [ "emit" ] ~docv:"SEED"
        ~doc:"Print the program generated from SEED and exit.")

let quiet_t = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Less output.")

let main seed count max_size fault race jobs shards max_cycles out
    replay_dir emit_seed quiet =
  try
    match (emit_seed, replay_dir) with
    | Some s, _ -> emit ~seed:s ~max_size
    | None, Some dir ->
        replay ~dir ~fault ~race ~jobs ~shards ~max_cycles ~quiet
    | None, None ->
        campaign ~seed ~count ~max_size ~fault ~race ~jobs ~shards ~max_cycles
          ~out ~quiet
  with e ->
    Printf.eprintf "pflfuzz: internal error: %s\n%s%!" (Printexc.to_string e)
      (Printexc.get_backtrace ());
    3

let cmd =
  let doc =
    "differential compiler fuzzing for the data-distribution toolchain"
  in
  Cmd.v
    (Cmd.info "pflfuzz" ~doc)
    Term.(
      const main $ seed_t $ count_t $ max_size_t $ fault_t $ race_t $ jobs_t
      $ shards_t $ max_cycles_t $ out_t $ replay_t $ emit_t $ quiet_t)

let () = exit (Cmd.eval' cmd)
