(* pflrun — run a linked program image on the simulated CC-NUMA machine.

   The processor count, page-placement policy and machine scale are chosen
   here at start-up, exactly as in the paper ("the number of processors in
   each distributed dimension is determined at program start-up time, which
   enables the same executable to run with different number of
   processors").

   Exit codes: 0 success; 1 usage/IO; 2 a runtime error of the simulated
   program — including CLI-level operating-system errors caught below
   (unwritable --trace output, invalid processor counts) which are routed
   through Diag as documented user errors rather than escaping as uncaught
   exceptions; 3 an internal failure of the simulator itself (invariant
   violation, audit failure, differential mismatch). *)

open Cmdliner
module Ddsm = Ddsm_core.Ddsm
module Fault = Ddsm_core.Ddsm.Fault
module Diag = Ddsm_core.Ddsm.Diag
module Pagetable = Ddsm_machine.Pagetable

let policy_conv =
  let parse = function
    | "first-touch" | "ft" -> Ok Pagetable.First_touch
    | "round-robin" | "rr" -> Ok Pagetable.Round_robin
    | s -> Error (`Msg (Printf.sprintf "unknown policy %S (first-touch|round-robin)" s))
  in
  let print ppf = function
    | Pagetable.First_touch -> Format.pp_print_string ppf "first-touch"
    | Pagetable.Round_robin -> Format.pp_print_string ppf "round-robin"
  in
  Arg.conv (parse, print)

let machine_conv =
  let parse s =
    if s = "origin" then Ok Ddsm.Origin2000
    else
      match Scanf.sscanf_opt s "scaled:%d" (fun f -> f) with
      | Some f when f >= 1 -> Ok (Ddsm.Scaled f)
      | _ -> Error (`Msg "machine is 'origin' or 'scaled:<factor>'")
  in
  let print ppf = function
    | Ddsm.Origin2000 -> Format.pp_print_string ppf "origin"
    | Ddsm.Scaled f -> Format.fprintf ppf "scaled:%d" f
  in
  Arg.conv (parse, print)

let fault_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Fault.of_spec s) in
  let print ppf f = Format.pp_print_string ppf (Fault.to_spec f) in
  Arg.conv (parse, print)

let fail_diag d =
  Printf.eprintf "runtime error: %s\n" (Diag.to_string d);
  exit (if Diag.is_internal d then 3 else 2)

let config_of_machine ~machine ~nprocs =
  let module Config = Ddsm_machine.Config in
  match machine with
  | Ddsm.Origin2000 -> Config.origin2000 ~nprocs
  | Ddsm.Scaled factor -> Config.scaled ~nprocs ~factor ()

(* One configured run of the linked image; a fresh machine every time.
   Machine-shape rejections (hypercube dimension bound, geometry
   invariants) surface as a structured Diag located at the configuration
   phase, naming the offending parameter, not an uncaught exception. *)
let run_once linked ~nprocs ~policy ~machine ~heap_words ~checks ~bounds
    ~max_cycles ~audit ~fault ?(shards = 1) ?profile ?sanitize () =
  let module Config = Ddsm_machine.Config in
  match Config.validate (config_of_machine ~machine ~nprocs) with
  | Error e -> Error (Diag.user ~phase:"config" e)
  | Ok () ->
      let prog = Ddsm.prog_of_linked linked in
      let rt = Ddsm.make_rt ~machine ~policy ~heap_words ~fault ~nprocs () in
      Ddsm.run prog ~rt ~checks ~bounds ?max_cycles ~audit ~shards ?profile
        ?sanitize ()

(* the sanitizer classifies false sharing with the simulated machine's own
   L2-line/page geometry, so build it from the same config make_rt uses *)
let make_sanitizer ~machine ~nprocs =
  let module Config = Ddsm_machine.Config in
  let cfg = config_of_machine ~machine ~nprocs in
  Ddsm.Sanitize.create ~nprocs
    ~line_bytes:cfg.Config.l2.Config.line_bytes
    ~page_bytes:cfg.Config.page_bytes ()

let describe_report (r : Ddsm.Sanitize.report) =
  let acc w = if w then "write" else "read" in
  Printf.sprintf "array %s: p%d %s (%s) unordered with p%d %s (%s) at byte %d"
    r.Ddsm.Sanitize.rep_array r.Ddsm.Sanitize.rep_first_proc
    (acc r.Ddsm.Sanitize.rep_first_write)
    r.Ddsm.Sanitize.rep_first_region r.Ddsm.Sanitize.rep_second_proc
    (acc r.Ddsm.Sanitize.rep_second_write)
    r.Ddsm.Sanitize.rep_second_region r.Ddsm.Sanitize.rep_addr

(* --differential N: the transparency oracle. The same image runs under N
   extra configurations with randomized placement policy, processor count
   and fault plan; since directives (and faults) may affect only
   performance, every configuration must print byte-identical output.

   The configuration list is drawn from the LCG up front; the runs — each
   on its own fresh machine — then fan out over [jobs] domains, and
   results are reported in configuration order, so stdout/stderr and exit
   codes are byte-identical to a sequential run whatever the job count. *)
let differential linked ~n ~seed ~jobs ~nprocs ~policy ~machine ~heap_words
    ~checks ~bounds ~max_cycles ~audit =
  let lcg x = ((x * 25214903917) + 11) land 0xFFFFFFFFFFFF in
  let st = ref (lcg (seed + 0x9E3779B9)) in
  let pick arr =
    st := lcg !st;
    arr.((!st lsr 17) mod Array.length arr)
  in
  let describe ~policy ~nprocs ~fault =
    Printf.sprintf "policy=%s nprocs=%d fault=[%s]"
      (match policy with
      | Pagetable.First_touch -> "first-touch"
      | Pagetable.Round_robin -> "round-robin")
      nprocs (Fault.to_spec fault)
  in
  let cfgs =
    List.init n (fun i ->
        let k = i + 1 in
        let policy = pick [| Pagetable.First_touch; Pagetable.Round_robin |] in
        let nprocs = pick [| 2; 4; 8 |] in
        let fault = Fault.random ~seed:(seed + k) ~nnodes:(max 1 (nprocs / 2)) in
        (policy, nprocs, fault))
  in
  let results =
    Ddsm_util.Jobs.map ~jobs
      (fun (policy, nprocs, fault) ->
        run_once linked ~nprocs ~policy ~machine ~heap_words ~checks ~bounds
          ~max_cycles ~audit ~fault ())
      ((policy, nprocs, Fault.none) :: cfgs)
  in
  let unwrap (policy, nprocs, fault) = function
    | Error d ->
        Printf.eprintf "differential: run failed under %s\n%s\n"
          (describe ~policy ~nprocs ~fault)
          (Diag.to_string d);
        exit (if Diag.is_internal d then 3 else 2)
    | Ok o -> o
  in
  let base_cfg = (policy, nprocs, Fault.none) in
  let base, rest =
    match results with
    | b :: rest -> (unwrap base_cfg b, rest)
    | [] -> assert false
  in
  Printf.printf "differential base: %s  cycles=%d\n"
    (describe ~policy ~nprocs ~fault:Fault.none)
    base.Ddsm.Engine.cycles;
  List.iteri
    (fun i (cfg, r) ->
      let k = i + 1 in
      let policy, nprocs, fault = cfg in
      let o = unwrap cfg r in
      let same = o.Ddsm.Engine.prints = base.Ddsm.Engine.prints in
      Printf.printf "differential %d/%d: %s  cycles=%d  output %s\n" k n
        (describe ~policy ~nprocs ~fault)
        o.Ddsm.Engine.cycles
        (if same then "identical" else "DIFFERS");
      if not same then begin
        Printf.eprintf
          "differential mismatch: distribution/faults changed the program's \
           output (transparency violation)\n";
        List.iteri (fun i l -> Printf.eprintf "  base[%d]: %s\n" i l)
          base.Ddsm.Engine.prints;
        List.iteri (fun i l -> Printf.eprintf "  this[%d]: %s\n" i l)
          o.Ddsm.Engine.prints;
        exit 3
      end)
    (List.combine cfgs rest);
  Printf.printf "differential: %d configuration(s), outputs identical\n" n;
  base

(* --connect SOCK: client mode. The positional argument is a .pf SOURCE
   (not an image): the file is read and shipped to a running pfld daemon
   together with the machine configuration, and the reply — ok or a
   structured Diag-coded error — is rendered exactly as a local run
   renders it, so a service round trip is byte-identical to one-shot
   output for the same program and configuration. *)
let connect_run ~sock ~src_path ~nprocs ~policy ~machine ~heap_words
    ~max_cycles =
  let module Proto = Ddsm_service.Proto in
  let module Client = Ddsm_service.Client in
  let source =
    let ic = open_in src_path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let req =
    {
      Proto.id = 0;
      source;
      fname = src_path;
      nprocs;
      policy =
        (match policy with
        | Pagetable.First_touch -> "first-touch"
        | Pagetable.Round_robin -> "round-robin");
      machine =
        (match machine with
        | Ddsm.Origin2000 -> "origin"
        | Ddsm.Scaled f -> Printf.sprintf "scaled:%d" f);
      heap_words;
      max_cycles;
      flags_off = [];
    }
  in
  match Client.connect ~sock with
  | Error e -> fail_diag (Diag.user ~phase:"connect" e)
  | Ok c -> (
      let r = Client.rpc c (Proto.run_to_json req) in
      Client.close c;
      match r with
      | Error e -> fail_diag (Diag.user ~phase:"connect" e)
      | Ok reply -> (
          match Proto.str_field reply "status" with
          | Some "ok" ->
              let prints =
                match Proto.field reply "prints" with
                | Some (Ddsm.Json.List xs) ->
                    List.filter_map
                      (function Ddsm.Json.Str s -> Some s | _ -> None)
                      xs
                | _ -> []
              in
              let cycles =
                Option.value (Proto.int_field reply "cycles") ~default:0
              in
              List.iter print_endline prints;
              Printf.printf "cycles: %d  (procs: %d)\n" cycles nprocs
          | Some "error" ->
              let internal =
                match Proto.field reply "internal" with
                | Some (Ddsm.Json.Bool b) -> b
                | _ -> false
              in
              let msg =
                Option.value (Proto.str_field reply "error")
                  ~default:"unknown service error"
              in
              Printf.eprintf "runtime error: %s\n" msg;
              exit (if internal then 3 else 2)
          | _ ->
              fail_diag (Diag.internal ~phase:"connect" "malformed service reply")))

let run image nprocs policy machine heap_words stats no_checks bounds
    max_cycles fault audit differ seed jobs shards profile trace race
    race_json connect =
  try
    match connect with
    | Some sock ->
        if
          differ <> None || profile || trace <> None || race
          || race_json <> None || audit
          || not (Fault.is_none fault)
          || stats || shards <> 1 || no_checks || bounds
        then
          fail_diag
            (Diag.user ~phase:"cli"
               "--connect supports plain runs only (nprocs, policy, machine, \
                heap-words, max-cycles); run locally for --differential, \
                --profile, --trace, --race, --audit, --fault, --stats, \
                --shards, --bounds or --no-checks")
        else
          connect_run ~sock ~src_path:image ~nprocs ~policy ~machine
            ~heap_words ~max_cycles
    | None -> (
    match Ddsm.load_image ~path:image with
    (* corrupt/truncated/stale images are located user errors (exit 2),
       matching the documented Diag exit-code contract *)
    | Error e -> fail_diag (Diag.user ~phase:"image" e)
    | Ok linked -> (
        let checks = not no_checks in
        match differ with
        | Some n when n >= 1 ->
            ignore
              (differential linked ~n ~seed ~jobs ~nprocs ~policy ~machine
                 ~heap_words ~checks ~bounds ~max_cycles ~audit)
        | _ -> (
            let prof =
              if profile || trace <> None then Some (Ddsm.Profile.create ())
              else None
            in
            let san =
              if race || race_json <> None then
                Some (make_sanitizer ~machine ~nprocs)
              else None
            in
            match
              run_once linked ~nprocs ~policy ~machine ~heap_words ~checks
                ~bounds ~max_cycles ~audit ~fault ~shards ?profile:prof
                ?sanitize:san ()
            with
            | Error d -> fail_diag d
            | Ok o ->
                List.iter print_endline o.Ddsm.Engine.prints;
                Printf.printf "cycles: %d  (procs: %d)\n" o.Ddsm.Engine.cycles
                  nprocs;
                if audit then print_endline "audit clean";
                (match san with
                | None -> ()
                | Some s ->
                    (match race_json with
                    | None -> ()
                    | Some path ->
                        let oc = open_out path in
                        Ddsm.Json.to_channel oc
                          (Ddsm.Sanitize.report_json s);
                        output_char oc '\n';
                        close_out oc);
                    Format.printf "%a" Ddsm.Sanitize.pp_report s;
                    match Ddsm.Sanitize.races s with
                    | [] -> ()
                    | races ->
                        (* a detected race is a bug in the simulated
                           program: a structured user diagnosis, exit 2 *)
                        let d =
                          Ddsm.Diag.user ~phase:"sanitize"
                            (Printf.sprintf
                               "%d data race(s) detected (conflicting \
                                accesses with no happens-before ordering)"
                               (List.length races))
                        in
                        fail_diag
                          {
                            d with
                            Ddsm.Diag.violations =
                              List.map
                                (fun r ->
                                  Ddsm.Audit.v "data-race" "%s"
                                    (describe_report r))
                                races;
                          });
                if stats then begin
                  Format.printf "%a@." Ddsm_report.Stats.pp
                    (Ddsm_report.Stats.of_counters o.Ddsm.Engine.counters);
                  List.iter
                    (Printf.printf "counter-accounting bug: %s\n")
                    (Ddsm_report.Stats.audit o.Ddsm.Engine.counters)
                end;
                (match prof with
                | Some p when profile ->
                    Format.printf "%a"
                      (Ddsm.Profile.pp_report ~top:12)
                      p
                | _ -> ());
                (match (prof, trace) with
                | Some p, Some path ->
                    Ddsm.Profile.write_trace p ~path;
                    let dropped = Ddsm.Profile.trace_dropped p in
                    if dropped > 0 then
                      Printf.printf "trace: %s (%d event(s) dropped)\n" path
                        dropped
                    else Printf.printf "trace: %s\n" path
                | _ -> ()))))
  with
  (* CLI-level OS/argument failures (unwritable --trace path, bad
     processor count reaching Rt.create, truncated image file): a
     documented user-error exit, never an uncaught exception. *)
  | Sys_error m -> fail_diag (Diag.user ~phase:"cli" m)
  | Failure m -> fail_diag (Diag.user ~phase:"cli" m)
  | Invalid_argument m -> fail_diag (Diag.user ~phase:"cli" m)

let () =
  (* env-supplied defaults are user input: a malformed DDSM_JOBS/DDSM_SHARDS
     is a located user error (exit 2), not an internal failure *)
  let env_default = function
    | Ok n -> n
    | Error e -> fail_diag (Diag.user ~phase:"env" e)
  in
  let default_jobs = env_default (Ddsm_util.Jobs.default_jobs ()) in
  let default_shards = env_default (Ddsm_util.Jobs.default_shards ()) in
  let image =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"PROG.pfi"
          ~doc:
            "Linked image to run — or, with $(b,--connect), a $(b,.pf) \
             source file to submit to the daemon.")
  in
  let nprocs =
    Arg.(value & opt int 8 & info [ "p"; "nprocs" ] ~docv:"N" ~doc:"Simulated processors.")
  in
  let policy =
    Arg.(
      value
      & opt policy_conv Pagetable.First_touch
      & info [ "policy" ] ~docv:"POLICY" ~doc:"Default page placement: first-touch or round-robin.")
  in
  let machine =
    Arg.(
      value
      & opt machine_conv (Ddsm.Scaled 64)
      & info [ "machine" ] ~docv:"M" ~doc:"Machine preset: origin or scaled:<factor>.")
  in
  let heap =
    Arg.(value & opt int (1 lsl 24) & info [ "heap-words" ] ~doc:"Simulated heap size in 8-byte words.")
  in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print hardware-counter statistics.") in
  let no_checks =
    Arg.(value & flag & info [ "no-checks" ] ~doc:"Disable the §6 runtime argument checks.")
  in
  let bounds = Arg.(value & flag & info [ "bounds" ] ~doc:"Enable subscript bounds checking.") in
  let max_cycles =
    Arg.(value & opt (some int) None & info [ "max-cycles" ] ~doc:"Abort after this many cycles.")
  in
  let fault =
    Arg.(
      value
      & opt fault_conv Fault.none
      & info [ "fault" ] ~docv:"SPEC"
          ~doc:
            "Deterministic fault plan, e.g. \
             $(b,slow=0:80,hotdir=1:40,tlb=512,redist-fail=2) or \
             $(b,random=SEED:NNODES). Faults perturb timing only; output \
             must not change.")
  in
  let audit =
    Arg.(
      value & flag
      & info [ "audit" ]
          ~doc:
            "Audit machine invariants (coherence, directory/cache \
             agreement, TLB/page-table agreement, heap canaries) after the \
             run; an inconsistency fails with exit code 3.")
  in
  let differential =
    Arg.(
      value
      & opt (some int) None
      & info [ "differential" ] ~docv:"N"
          ~doc:
            "Transparency oracle: run the image under N extra randomized \
             {policy, nprocs, fault-plan} configurations and require \
             byte-identical output from all of them.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Random seed for $(b,--differential) configurations.")
  in
  let jobs =
    Arg.(
      value
      & opt int default_jobs
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Run $(b,--differential) configurations on up to N domains \
             (default from $(b,DDSM_JOBS), else 1). Results are reported in \
             configuration order, so the output is identical for any N.")
  in
  let shards =
    Arg.(
      value
      & opt int default_shards
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Shard the simulation itself across N domains (default from \
             $(b,DDSM_SHARDS), else 1): parallel-region interpreter \
             segments run on worker domains while one coordinator commits \
             every memory-system event in exact simulated-time order, so \
             output is byte-identical for any N.")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Attribute memory-stall cycles to (parallel region, array, \
             cause) and print the top rows after the run.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write the run's event trace (region enter/exit, barriers, \
             redistributions, fault injections) as Chrome trace-event JSON \
             loadable in chrome://tracing or Perfetto.")
  in
  let race =
    Arg.(
      value & flag
      & info [ "race" ]
          ~doc:
            "Attach the happens-before sanitizer: report data races \
             (conflicting unordered accesses to one word — exit code 2 with \
             a structured report) and line/page false sharing (conflicting \
             unordered accesses to distinct words of one cache line or \
             page — advisory only), each labelled with its parallel region \
             and array.")
  in
  let race_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "race-json" ] ~docv:"FILE"
          ~doc:
            "Write the sanitizer report as JSON to FILE (implies \
             $(b,--race)).")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"SOCK"
          ~doc:
            "Client mode: submit the positional $(b,.pf) source to the pfld \
             daemon listening on the Unix-domain socket SOCK and render its \
             reply exactly as a local run would (cached replies are \
             byte-identical to one-shot output).")
  in
  let cmd =
    Cmd.v
      (Cmd.info "pflrun" ~version:"1.0"
         ~doc:"Run a linked image on the simulated Origin-2000.")
      Term.(
        const run $ image $ nprocs $ policy $ machine $ heap $ stats $ no_checks
        $ bounds $ max_cycles $ fault $ audit $ differential $ seed $ jobs
        $ shards $ profile $ trace $ race $ race_json $ connect)
  in
  exit (Cmd.eval cmd)
