(* Service throughput benchmark: the pfld daemon against a 50-request
   batch (10 distinct programs x 5 processor counts) at 1/2/4 workers.

   Each worker count gets a fresh in-process daemon (Domain.spawn of
   Service.serve, signals left to the harness). The batch is replayed
   twice over one connection:

     cold — every simulate key misses: 10 compiles + 50 simulations;
     warm — the same 50 requests again: pure cache lookups.

   Gates ([ok]/[MISS] lines, nonzero exit on a miss):
     - warm hit rate > 0.9 on the repeated batch (it should be 1.0);
     - warm replay finishes in < half the cold time (cached request
       latency << cold compile+simulate);
     - warm replies byte-identical to the cold ones;
     - a daemon restarted on the same cache directory compiles nothing
       (the persisted-image warm start).

   Snapshot: BENCH_service.json. *)

module H = Harness
module Service = Ddsm_service.Service
module Client = Ddsm_service.Client
module Proto = Ddsm_service.Proto
module Json = Ddsm_report.Json

let ppf = Format.std_formatter
let section title = Format.fprintf ppf "@.==== %s ====@.@." title

(* ------------------------------------------------------------------ *)
(* The batch: 10 distinct reduction kernels, each at 5 processor counts *)

let mk_src i =
  Printf.sprintf
    "      program p%d\n\
    \      integer n, i\n\
    \      parameter (n = %d)\n\
    \      real*8 a(n), s\n\
     c$distribute a(block)\n\
     c$doacross local(i) affinity(i) = data(a(i))\n\
    \      do i = 1, n\n\
    \        a(i) = i + %d\n\
    \      enddo\n\
    \      s = 0.0\n\
    \      do i = 1, n\n\
    \        s = s + a(i)\n\
    \      enddo\n\
    \      print *, 'sum =', s\n\
    \      end\n"
    i
    (48 + (8 * i))
    i

let nprocs_sweep = [ 1; 2; 4; 8; 16 ]

let batch =
  List.concat
    (List.init 10 (fun i ->
         List.map
           (fun nprocs ->
             {
               Proto.id = 0 (* stamped below *);
               source = mk_src i;
               fname = Printf.sprintf "p%d.pf" i;
               nprocs;
               policy = "first-touch";
               machine = "scaled:64";
               heap_words = 1 lsl 20;
               max_cycles = None;
               flags_off = [];
             })
           nprocs_sweep))
  |> List.mapi (fun k r -> { r with Proto.id = k + 1 })

(* ------------------------------------------------------------------ *)
(* Daemon lifecycle (in-process, like the unit tests) *)

let svc_ctr = ref 0

let with_service ?cache_dir ~workers f =
  incr svc_ctr;
  let sock = Printf.sprintf "bsvc-%d-%d.sock" (Unix.getpid ()) !svc_ctr in
  let cfg =
    {
      Service.sock_path = sock; workers; cache_dir; budget = 0;
      verbose = false; handle_signals = false;
    }
  in
  let d = Domain.spawn (fun () -> Service.serve cfg) in
  let rec conn tries =
    match Client.connect ~sock with
    | Ok c -> c
    | Error e ->
        if tries = 0 then failwith e
        else (
          Unix.sleepf 0.01;
          conn (tries - 1))
  in
  let c = conn 500 in
  Fun.protect
    ~finally:(fun () ->
      ignore
        (Client.rpc c
           (Json.Obj [ ("op", Json.Str "shutdown"); ("id", Json.Int 0) ]));
      Client.close c;
      Domain.join d)
    (fun () -> f c)

let stat j k =
  match Proto.int_field j k with
  | Some v -> v
  | None -> failwith ("stats reply missing " ^ k)

let stats c =
  match
    Client.rpc c (Json.Obj [ ("op", Json.Str "stats"); ("id", Json.Int 0) ])
  with
  | Ok j -> j
  | Error e -> failwith e

(* send the whole batch, then collect one reply line per request *)
let replay c =
  let t0 = Unix.gettimeofday () in
  List.iter (fun r -> Client.send c (Proto.run_to_json r)) batch;
  let lines =
    List.map
      (fun _ ->
        match Client.recv_line c with Ok l -> l | Error e -> failwith e)
      batch
  in
  (Unix.gettimeofday () -. t0, lines)

type leg = {
  workers : int;
  cold_s : float;
  warm_s : float;
  warm_hit_rate : float;
  identical : bool;
  compile_misses : int;
  sim_misses : int;
}

let run_leg ~workers =
  with_service ~workers (fun c ->
      let cold_s, cold = replay c in
      let s1 = stats c in
      let warm_s, warm = replay c in
      let s2 = stats c in
      let nreq = List.length batch in
      let warm_hits = stat s2 "sim_hits" - stat s1 "sim_hits" in
      let leg =
        {
          workers;
          cold_s;
          warm_s;
          warm_hit_rate = float_of_int warm_hits /. float_of_int nreq;
          identical = cold = warm;
          compile_misses = stat s2 "compile_misses";
          sim_misses = stat s2 "sim_misses";
        }
      in
      Format.fprintf ppf
        "  %d worker(s): cold %5.2fs (%6.1f req/s)  warm %5.2fs (%6.1f \
         req/s)  hit rate %.2f@."
        workers cold_s
        (float_of_int nreq /. cold_s)
        warm_s
        (float_of_int nreq /. warm_s)
        leg.warm_hit_rate;
      leg)

(* restart on a shared cache directory: the second life must compile
   nothing — its compile cache warm-starts from the persisted images *)
let run_restart_leg () =
  let dir = Printf.sprintf "bsvc-cache-%d" (Unix.getpid ()) in
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir
    end
  in
  cleanup ();
  Fun.protect ~finally:cleanup (fun () ->
      let life () =
        with_service ~cache_dir:dir ~workers:1 (fun c ->
            let _, lines = replay c in
            (lines, stats c))
      in
      let first, s1 = life () in
      let second, s2 = life () in
      ( first = second,
        stat s1 "compile_misses",
        stat s2 "compile_misses",
        stat s2 "compile_disk_hits" ))

let () =
  section "pfld: requests/s and cache hit rate, cold vs. warm batch";
  let legs = List.map (fun workers -> run_leg ~workers) [ 1; 2; 4 ] in
  let identical_restart, cold_compiles, warm_compiles, disk_hits =
    run_restart_leg ()
  in
  Format.fprintf ppf
    "  restart: %d compile(s) cold, %d warm (%d image(s) from disk)@.@."
    cold_compiles warm_compiles disk_hits;
  let ok =
    List.concat_map
      (fun l ->
        let hit =
          H.check ppf
            (Printf.sprintf "%d worker(s): warm hit rate > 0.9 (got %.2f)"
               l.workers l.warm_hit_rate)
            (l.warm_hit_rate > 0.9)
        in
        let fast =
          H.check ppf
            (Printf.sprintf
               "%d worker(s): warm replay < half the cold time (%.2fs vs %.2fs)"
               l.workers l.warm_s l.cold_s)
            (l.warm_s < l.cold_s /. 2.0)
        in
        let same =
          H.check ppf
            (Printf.sprintf "%d worker(s): warm replies byte-identical"
               l.workers)
            l.identical
        in
        [ hit; fast; same ])
      legs
  in
  let restart_ok =
    H.check ppf "restart on the cache dir compiles nothing"
      (warm_compiles = 0 && disk_hits > 0)
  in
  let restart_same = H.check ppf "restart replies byte-identical" identical_restart in
  let ok = ok @ [ restart_ok; restart_same ] in
  let open Json in
  H.write_json ppf ~path:"BENCH_service.json"
    (Obj
       [
         ("experiment", Str "service");
         ("batch_requests", Int (List.length batch));
         ("distinct_programs", Int 10);
         ( "legs",
           List
             (List.map
                (fun l ->
                  Obj
                    [
                      ("workers", Int l.workers);
                      ("cold_s", Float l.cold_s);
                      ("warm_s", Float l.warm_s);
                      ( "cold_rps",
                        Float (float_of_int (List.length batch) /. l.cold_s) );
                      ( "warm_rps",
                        Float (float_of_int (List.length batch) /. l.warm_s) );
                      ("warm_hit_rate", Float l.warm_hit_rate);
                      ("compile_misses", Int l.compile_misses);
                      ("sim_misses", Int l.sim_misses);
                    ])
                legs) );
         ( "restart",
           Obj
             [
               ("cold_compiles", Int cold_compiles);
               ("warm_compiles", Int warm_compiles);
               ("disk_hits", Int disk_hits);
             ] );
       ]);
  if not (List.for_all Fun.id ok) then exit 1
