(* Self-benchmark of the simulator: simulated-cycles-per-host-second on the
   transpose and LU kernels. This measures the tool, not the modelled
   machine — the cycle counts per run are deterministic, so cycles/sec is
   host wall-clock throughput of [Memsys.access] and the engine around it.

   Writes BENCH_simperf.json {kernel -> host seconds/run, sim cycles/run,
   cycles/sec} to seed the perf trajectory; compare the file across
   revisions of the simulator to see hot-path regressions. *)

module W = Workloads
module H = Harness
module Json = Harness.Json

let ppf = Format.std_formatter

type kernel = {
  name : string;
  prog : Ddsm_exec.Prog.t;
  setup : H.setup;
  nprocs : int;
  version : W.version;
}

let kernels ~quick =
  let t_n = if quick then 48 else 96 in
  let lu_n = if quick then 8 else 12 in
  [
    {
      name = Printf.sprintf "transpose(%d) reshaped, 8 procs" t_n;
      prog = H.compile (W.transpose ~n:t_n ~iters:2 W.Reshaped);
      setup = H.mk_setup ~machine_procs:8 ~factor:64 ~heap_words:(1 lsl 21) ();
      nprocs = 8;
      version = W.Reshaped;
    };
    {
      name = Printf.sprintf "transpose(%d) first-touch, 1 proc" t_n;
      prog = H.compile (W.transpose ~n:t_n ~iters:2 W.First_touch);
      setup = H.mk_setup ~machine_procs:8 ~factor:64 ~heap_words:(1 lsl 21) ();
      nprocs = 1;
      version = W.First_touch;
    };
    {
      name = Printf.sprintf "lu(%d) reshaped, 8 procs" lu_n;
      prog = H.compile (W.lu ~n:lu_n ~iters:2 W.Reshaped);
      setup = H.mk_setup ~machine_procs:8 ~factor:64 ~heap_words:(1 lsl 21) ();
      nprocs = 8;
      version = W.Reshaped;
    };
  ]

(* ns/run by bechamel's OLS estimator over the monotonic clock *)
let ns_per_run ~quota k =
  let open Bechamel in
  let open Toolkit in
  let test =
    Test.make ~name:k.name
      (Staged.stage (fun () ->
           ignore
             (H.run_prog ~setup:k.setup ~version:k.version ~nprocs:k.nprocs
                k.prog)))
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:100 ~quota:(Time.second quota) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"" [ test ]) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let est = ref nan in
  Hashtbl.iter
    (fun _ r ->
      match Analyze.OLS.estimates r with
      | Some [ e ] -> est := e
      | _ -> ())
    results;
  !est

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let quota = if quick then 0.4 else 1.5 in
  Format.fprintf ppf "==== selfperf: simulated cycles per host second ====@.@.";
  let rows =
    List.map
      (fun k ->
        let o = H.run_prog ~setup:k.setup ~version:k.version ~nprocs:k.nprocs k.prog in
        let cycles = o.Ddsm_core.Ddsm.Engine.cycles in
        let accesses =
          Ddsm_machine.Counters.accesses o.Ddsm_core.Ddsm.Engine.counters
        in
        let ns = ns_per_run ~quota k in
        let secs = ns *. 1e-9 in
        let cps = float_of_int cycles /. secs in
        Format.fprintf ppf
          "  %-36s %10.4f s/run  %12d cycles  %11.3e cycles/s  %9.3e accesses/s@."
          k.name secs cycles cps
          (float_of_int accesses /. secs);
        (k, secs, cycles, accesses, cps))
      (kernels ~quick)
  in
  let open Json in
  H.write_json ppf ~path:"BENCH_simperf.json"
    (Obj
       [
         ("experiment", Str "simperf");
         ("quick", Bool quick);
         ( "kernels",
           List
             (List.map
                (fun (k, secs, cycles, accesses, cps) ->
                  Obj
                    [
                      ("kernel", Str k.name);
                      ("host_seconds_per_run", Float secs);
                      ("sim_cycles_per_run", Int cycles);
                      ("accesses_per_run", Int accesses);
                      ("cycles_per_host_second", Float cps);
                    ])
                rows) );
       ])
