(* Self-benchmark of the simulator: simulated-cycles-per-host-second on the
   transpose and LU kernels. This measures the tool, not the modelled
   machine — the cycle counts per run are deterministic, so cycles/sec is
   host wall-clock throughput of [Memsys.access] and the engine around it.

   Two families:
   - the original 1/8-proc hot-path kernels (regression-tracked since PR 4);
   - a scaling family at 16/32/64/128 simulated procs, each measured on the
     sequential event loop and on the domain-sharded loop (--shards 4),
     recording the shard speedup in cycles/host-second. The sharded run's
     cycle count is asserted equal to the sequential one — the byte-identity
     contract — before anything is timed. Shard speedup depends on host
     cores: on a single-core host the sharded loop serializes and the
     recorded speedup is honest (≤ 1).

   Writes BENCH_simperf.json {kernel -> host seconds/run, sim cycles/run,
   cycles/sec, shard speedup} to seed the perf trajectory; compare the file
   across revisions of the simulator to see hot-path regressions. *)

module W = Workloads
module H = Harness
module Json = Harness.Json

let ppf = Format.std_formatter

type kernel = {
  name : string;
  prog : Ddsm_exec.Prog.t;
  setup : H.setup;
  nprocs : int;
  version : W.version;
}

let kernels ~quick =
  let t_n = if quick then 48 else 96 in
  let lu_n = if quick then 8 else 12 in
  [
    {
      name = Printf.sprintf "transpose(%d) reshaped, 8 procs" t_n;
      prog = H.compile (W.transpose ~n:t_n ~iters:2 W.Reshaped);
      setup = H.mk_setup ~machine_procs:8 ~factor:64 ~heap_words:(1 lsl 21) ();
      nprocs = 8;
      version = W.Reshaped;
    };
    {
      name = Printf.sprintf "transpose(%d) first-touch, 1 proc" t_n;
      prog = H.compile (W.transpose ~n:t_n ~iters:2 W.First_touch);
      setup = H.mk_setup ~machine_procs:8 ~factor:64 ~heap_words:(1 lsl 21) ();
      nprocs = 1;
      version = W.First_touch;
    };
    {
      name = Printf.sprintf "lu(%d) reshaped, 8 procs" lu_n;
      prog = H.compile (W.lu ~n:lu_n ~iters:2 W.Reshaped);
      setup = H.mk_setup ~machine_procs:8 ~factor:64 ~heap_words:(1 lsl 21) ();
      nprocs = 8;
      version = W.Reshaped;
    };
  ]

(* The large-machine family: the paper's Table 2 / Figs 4-7 machine sizes.
   Problem sizes grow with the machine so every processor owns work. *)
let scaling_kernels ~quick =
  let procs = if quick then [ 16; 128 ] else [ 16; 32; 64; 128 ] in
  let iters = if quick then 1 else 2 in
  List.concat_map
    (fun nprocs ->
      let t_n = max 64 nprocs in
      let lu_n = if quick then 8 else 12 in
      [
        {
          name = Printf.sprintf "transpose(%d) reshaped, %d procs" t_n nprocs;
          prog = H.compile (W.transpose ~n:t_n ~iters W.Reshaped);
          setup =
            H.mk_setup ~machine_procs:nprocs ~factor:64
              ~heap_words:(1 lsl 21) ();
          nprocs;
          version = W.Reshaped;
        };
        {
          name = Printf.sprintf "lu(%d) reshaped, %d procs" lu_n nprocs;
          prog = H.compile (W.lu ~n:lu_n ~iters W.Reshaped);
          setup =
            H.mk_setup ~machine_procs:nprocs ~factor:64
              ~heap_words:(1 lsl 21) ();
          nprocs;
          version = W.Reshaped;
        };
      ])
    procs

(* ns/run by bechamel's OLS estimator over the monotonic clock *)
let ns_per_run ~quota ~shards k =
  let open Bechamel in
  let open Toolkit in
  let test =
    Test.make ~name:k.name
      (Staged.stage (fun () ->
           ignore
             (H.run_prog ~setup:k.setup ~version:k.version ~nprocs:k.nprocs
                ~shards k.prog)))
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:100 ~quota:(Time.second quota) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"" [ test ]) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let est = ref nan in
  Hashtbl.iter
    (fun _ r ->
      match Analyze.OLS.estimates r with
      | Some [ e ] -> est := e
      | _ -> ())
    results;
  !est

let deterministic_run ?(shards = 1) k =
  H.run_prog ~setup:k.setup ~version:k.version ~nprocs:k.nprocs ~shards k.prog

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let quota = if quick then 0.4 else 1.5 in
  Format.fprintf ppf "==== selfperf: simulated cycles per host second ====@.@.";
  let rows =
    List.map
      (fun k ->
        let o = deterministic_run k in
        let cycles = o.Ddsm_core.Ddsm.Engine.cycles in
        let accesses =
          Ddsm_machine.Counters.accesses o.Ddsm_core.Ddsm.Engine.counters
        in
        let ns = ns_per_run ~quota ~shards:1 k in
        let secs = ns *. 1e-9 in
        let cps = float_of_int cycles /. secs in
        Format.fprintf ppf
          "  %-36s %10.4f s/run  %12d cycles  %11.3e cycles/s  %9.3e accesses/s@."
          k.name secs cycles cps
          (float_of_int accesses /. secs);
        (k, secs, cycles, accesses, cps))
      (kernels ~quick)
  in
  Format.fprintf ppf "@.==== scaling: 16..128 procs, 1 vs 4 shards ====@.@.";
  let scaling_rows =
    List.map
      (fun k ->
        let o1 = deterministic_run k in
        let o4 = deterministic_run ~shards:4 k in
        let cycles = o1.Ddsm_core.Ddsm.Engine.cycles in
        (* byte-identity gate: a sharded run that disagrees on total cycles
           is a correctness bug, not a data point *)
        if o4.Ddsm_core.Ddsm.Engine.cycles <> cycles then begin
          Format.fprintf ppf
            "  FAIL %s: sharded run diverged (%d vs %d cycles)@." k.name
            cycles o4.Ddsm_core.Ddsm.Engine.cycles;
          exit 3
        end;
        let accesses =
          Ddsm_machine.Counters.accesses o1.Ddsm_core.Ddsm.Engine.counters
        in
        let secs1 = ns_per_run ~quota ~shards:1 k *. 1e-9 in
        let secs4 = ns_per_run ~quota ~shards:4 k *. 1e-9 in
        let cps1 = float_of_int cycles /. secs1 in
        let cps4 = float_of_int cycles /. secs4 in
        let speedup = cps4 /. cps1 in
        Format.fprintf ppf
          "  %-36s %12d cycles  %11.3e cycles/s  %11.3e cycles/s @@4sh  %5.2fx@."
          k.name cycles cps1 cps4 speedup;
        (k, secs1, secs4, cycles, accesses, cps1, cps4, speedup))
      (scaling_kernels ~quick)
  in
  let open Json in
  H.write_json ppf ~path:"BENCH_simperf.json"
    (Obj
       [
         ("experiment", Str "simperf");
         ("quick", Bool quick);
         ("host_cores", Int (Domain.recommended_domain_count ()));
         ( "kernels",
           List
             (List.map
                (fun (k, secs, cycles, accesses, cps) ->
                  Obj
                    [
                      ("kernel", Str k.name);
                      ("host_seconds_per_run", Float secs);
                      ("sim_cycles_per_run", Int cycles);
                      ("accesses_per_run", Int accesses);
                      ("cycles_per_host_second", Float cps);
                    ])
                rows) );
         ( "scaling",
           List
             (List.map
                (fun (k, secs1, secs4, cycles, accesses, cps1, cps4, speedup) ->
                  Obj
                    [
                      ("kernel", Str k.name);
                      ("nprocs", Int k.nprocs);
                      ("host_seconds_per_run", Float secs1);
                      ("host_seconds_per_run_4shards", Float secs4);
                      ("sim_cycles_per_run", Int cycles);
                      ("accesses_per_run", Int accesses);
                      ("cycles_per_host_second", Float cps1);
                      ("cycles_per_host_second_4shards", Float cps4);
                      ("shard_speedup_4v1", Float speedup);
                    ])
                scaling_rows) );
       ])
