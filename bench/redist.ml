(* Redistribution benchmark: naive vs. scheduled communication plans.

   For block-cyclic(k) -> block-cyclic(k') transitions (including onto-grid
   resizes) at 8..128 simulated processors, compares

     naive     — move every cross word serially, paying the transfer setup
                 once per (src, dst) pair and the full serial volume;
     scheduled — the Redist.build plan: rounds in which every processor
                 sends at most one transfer and receives at most one, so a
                 round costs its LARGEST transfer (Rink et al.), and only
                 words whose home actually changes move at all.

   The analytic sweep uses the same Costs model the engine charges, so the
   numbers line up with what `c$redistribute` costs in a simulated run; an
   end-to-end leg runs a real redistribute program through the engine over
   the processor sweep as a cross-check that the scheduled path executes at
   every machine size. *)

module Ddsm = Ddsm_core.Ddsm
module Redist = Ddsm_dist.Redist
module Layout = Ddsm_dist.Layout
module Kind = Ddsm_dist.Kind
module Costs = Ddsm_exec.Costs
module H = Harness
module W = Workloads

let ppf = Format.std_formatter
let section title = Format.fprintf ppf "@.==== %s ====@.@." title

type sweep = {
  label : string;
  extents : int array;
  src_kinds : int -> Kind.t array;  (* nprocs -> kinds *)
  dst_kinds : int -> Kind.t array;
  dst_procs : int -> int;  (* onto-grid resize: dst processor count *)
}

let cyc k = Kind.Cyclic_k k

let sweeps =
  [
    {
      label = "1-D cyclic(3) -> cyclic(5), n=12288";
      extents = [| 12288 |];
      src_kinds = (fun _ -> [| cyc 3 |]);
      dst_kinds = (fun _ -> [| cyc 5 |]);
      dst_procs = (fun p -> p);
    };
    {
      label = "1-D block -> cyclic(4), n=12288";
      extents = [| 12288 |];
      src_kinds = (fun _ -> [| Kind.Block |]);
      dst_kinds = (fun _ -> [| cyc 4 |]);
      dst_procs = (fun p -> p);
    };
    {
      label = "1-D cyclic(8) -> cyclic(8) onto P/2 (shrink), n=12288";
      extents = [| 12288 |];
      src_kinds = (fun _ -> [| cyc 8 |]);
      dst_kinds = (fun _ -> [| cyc 8 |]);
      dst_procs = (fun p -> max 1 (p / 2));
    };
    {
      label = "2-D (block,cyclic(2)) -> (cyclic(3),block), 128x96";
      extents = [| 128; 96 |];
      src_kinds = (fun _ -> [| Kind.Block; cyc 2 |]);
      dst_kinds = (fun _ -> [| cyc 3; Kind.Block |]);
      dst_procs = (fun p -> p);
    };
  ]

let procs = [ 8; 16; 32; 64; 128 ]

type point = {
  nprocs : int;
  cross_words : int;
  total_words : int;
  transfers : int;
  rounds : int;
  round_words : int;
  naive_cycles : int;
  sched_cycles : int;
}

let measure sweep nprocs =
  let src =
    Layout.make ~extents:sweep.extents ~kinds:(sweep.src_kinds nprocs) ~nprocs ()
  in
  let dst =
    Layout.make ~extents:sweep.extents ~kinds:(sweep.dst_kinds nprocs)
      ~nprocs:(sweep.dst_procs nprocs) ()
  in
  let s = Redist.build ~src ~dst in
  let rounds = Redist.nrounds s and round_words = Redist.round_words s in
  let transfers = List.length s.Redist.moves in
  {
    nprocs;
    cross_words = s.Redist.cross_words;
    total_words = s.Redist.total_words;
    transfers;
    rounds;
    round_words;
    naive_cycles =
      Costs.redistribute_naive ~cross_words:s.Redist.cross_words ~transfers;
    sched_cycles = Costs.redistribute_scheduled ~rounds ~round_words;
  }

let run_sweep sweep =
  Format.fprintf ppf "%s@." sweep.label;
  Format.fprintf ppf "  %6s %10s %10s %6s %10s %12s %12s %8s@." "procs"
    "cross_w" "round_w" "rounds" "transfers" "naive_cyc" "sched_cyc" "ratio";
  let pts = List.map (measure sweep) procs in
  List.iter
    (fun p ->
      Format.fprintf ppf "  %6d %10d %10d %6d %10d %12d %12d %7.2fx@." p.nprocs
        p.cross_words p.round_words p.rounds p.transfers p.naive_cycles
        p.sched_cycles
        (float_of_int p.naive_cycles /. float_of_int (max 1 p.sched_cycles)))
    pts;
  Format.pp_print_newline ppf ();
  pts

(* end-to-end: a real redistribute chain through the engine at each P *)
let redist_prog n =
  Printf.sprintf
    {|      program rb
      real a(%d)
      integer i
      real s
c$distribute a(cyclic(3))
      do i = 1, %d
        a(i) = i
      enddo
c$redistribute a(cyclic(5))
c$redistribute a(block)
      s = 0.0
      do i = 1, %d
        s = s + a(i)
      enddo
      print *, s
      end
|}
    n n n

let engine_leg () =
  Format.fprintf ppf "end-to-end engine cycles (cyclic(3)->cyclic(5)->block, n=4096):@.";
  let setup =
    H.mk_setup ~machine_procs:128 ~factor:64 ~heap_words:(1 lsl 22) ()
  in
  let prog = H.compile (redist_prog 4096) in
  List.map
    (fun p ->
      let o = H.run_prog ~setup ~version:W.Regular ~nprocs:p prog in
      Format.fprintf ppf "  %6d procs: %10d cycles@." p o.Ddsm.Engine.cycles;
      (p, o.Ddsm.Engine.cycles))
    procs

let () =
  section "Redistribution: naive vs. scheduled plans";
  let results = List.map (fun s -> (s, run_sweep s)) sweeps in
  let engine = engine_leg () in
  Format.pp_print_newline ppf ();
  (* the tentpole's acceptance bar: at >= 32 processors the scheduled plan
     must win on both the communication-volume proxy and total cycles *)
  let big p = p.nprocs >= 32 in
  List.iter
    (fun (s, pts) ->
      let bigs = List.filter big pts in
      ignore
        (H.check ppf
           (Printf.sprintf "%s: scheduled cycles < naive at >= 32 procs" s.label)
           (List.for_all (fun p -> p.sched_cycles < p.naive_cycles) bigs));
      ignore
        (H.check ppf
           (Printf.sprintf "%s: round volume < serial cross volume" s.label)
           (List.for_all (fun p -> p.round_words < p.cross_words) bigs)))
    results;
  let open H.Json in
  H.write_json ppf ~path:"BENCH_redist.json"
    (Obj
       [
         ("experiment", Str "redist");
         ( "sweeps",
           List
             (List.map
                (fun (s, pts) ->
                  Obj
                    [
                      ("label", Str s.label);
                      ( "points",
                        List
                          (List.map
                             (fun p ->
                               Obj
                                 [
                                   ("nprocs", Int p.nprocs);
                                   ("total_words", Int p.total_words);
                                   ("cross_words", Int p.cross_words);
                                   ("round_words", Int p.round_words);
                                   ("rounds", Int p.rounds);
                                   ("transfers", Int p.transfers);
                                   ("naive_cycles", Int p.naive_cycles);
                                   ("scheduled_cycles", Int p.sched_cycles);
                                 ])
                             pts) );
                    ])
                results) );
         ( "engine_leg",
           List
             (List.map
                (fun (p, c) ->
                  Obj [ ("nprocs", Int p); ("cycles", Int c) ])
                engine) );
       ])
