(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§8) on the simulated Origin-2000.

     table2 — Table 2: effect of the reshape optimizations on LU, 1 processor
     fig4   — Figure 4: NAS-LU speedups, 4 placement versions
     fig5   — Figure 5: matrix transpose speedups
     fig6   — Figure 6: 2-D convolution (small input), 1- and 2-level
     fig7   — Figure 7: 2-D convolution (large input), 1- and 2-level

   Problem sizes are scaled down (DESIGN.md §2) with machine capacities
   scaled alongside, so each experiment runs in the same regime (data vs.
   cache, portion vs. page) as the paper's full-size runs. Absolute numbers
   differ; the harness checks the paper's qualitative claims explicitly.

   `bechamel` runs host-side microbenchmarks of the simulator itself. *)

module Ddsm = Ddsm_core.Ddsm
module Flags = Ddsm_core.Ddsm.Flags
module Series = Ddsm_report.Series
module Stats = Ddsm_report.Stats
module W = Workloads
module H = Harness

let ppf = Format.std_formatter
let section title = Format.fprintf ppf "@.==== %s ====@.@." title

let all_versions = [ W.First_touch; W.Round_robin; W.Regular; W.Reshaped ]

(* ------------------------------------------------------------------ *)
(* Table 2 *)

let table2 ~quick =
  section "Table 2: Effect of Reshape Optimizations (LU kernel, 1 processor)";
  let n = if quick then 10 else 26 in
  let setup = H.mk_setup ~machine_procs:8 ~factor:64 ~heap_words:(1 lsl 22) () in
  let mk version ~iters = W.lu ~n ~iters version in
  let measure ?flags version =
    H.phase_cycles ?flags ~setup ~version ~nprocs:1 ~mk:(mk version) ~iters:1 ()
  in
  let configs =
    [
      ("Reshape, no optimizations", Flags.all_off, W.Reshaped, 83.91);
      ("Reshape, tile and peel", Flags.tile_peel, W.Reshaped, 53.26);
      ("Reshape, tile and peel, hoist", Flags.tile_peel_hoist, W.Reshaped, 46.23);
      ("Original code without reshaping", Flags.all_on, W.First_touch, 45.71);
    ]
  in
  let rows =
    List.map (fun (l, flags, v, paper) -> (l, measure ~flags v, paper)) configs
  in
  let _, base, pbase = List.nth rows 3 in
  Format.fprintf ppf "%-36s %14s %10s %12s %10s@." "Optimization" "cycles"
    "vs orig" "paper (s)" "paper rel";
  List.iter
    (fun (label, cycles, paper) ->
      Format.fprintf ppf "%-36s %14d %9.2fx %12.2f %9.2fx@." label cycles
        (float_of_int cycles /. float_of_int base)
        paper (paper /. pbase))
    rows;
  Format.pp_print_newline ppf ();
  let cyc i = (fun (_, c, _) -> c) (List.nth rows i) in
  ignore (H.check ppf "tiling+peeling is a large improvement (>= 1.3x)"
            (float_of_int (cyc 0) /. float_of_int (cyc 1) >= 1.3));
  ignore (H.check ppf "hoisting improves further" (cyc 2 < cyc 1));
  ignore
    (H.check ppf "fully optimized reshaped code within 15% of original"
       (float_of_int (cyc 2) /. float_of_int base < 1.15));
  ignore
    (H.check ppf "unoptimized reshaped code much slower than original (>= 1.5x)"
       (float_of_int (cyc 0) /. float_of_int base >= 1.5));
  let open H.Json in
  H.write_json ppf ~path:"BENCH_table2.json"
    (Obj
       [
         ("experiment", Str "table2");
         ("quick", Bool quick);
         ( "rows",
           List
             (List.map2
                (fun (label, cycles, paper) (_, flags, v, _) ->
                  Obj
                    [
                      ("label", Str label);
                      ("phase_cycles", Int cycles);
                      ("paper_seconds", Float paper);
                      ( "snapshot",
                        H.version_snapshot ~flags ~setup ~version:v ~nprocs:1
                          (mk v ~iters:1) );
                    ])
                rows configs) );
       ])

(* ------------------------------------------------------------------ *)
(* generic speedup experiment *)

let speedup_experiment ?(cold = false) ?(jobs = 1) ~setup ~procs ~mk ~iters () =
  let measure (version, nprocs) =
    if cold then
      H.cold_phase_cycles ~setup ~version ~nprocs ~mk:(mk version) ()
    else H.phase_cycles ~setup ~version ~nprocs ~mk:(mk version) ~iters ()
  in
  (* the serial baseline (the undistributed code on one processor) and the
     full version x P grid are independent jobs — each builds its own
     runtime — so they fan out across domains; Jobs.map returns results in
     job order, keeping every printed table identical to a sequential run *)
  let grid =
    List.concat_map (fun v -> List.map (fun p -> (v, p)) procs) all_versions
  in
  match Ddsm_util.Jobs.map ~jobs measure ((W.First_touch, 1) :: grid) with
  | [] -> assert false
  | baseline :: cycles ->
      let np = List.length procs in
      let series =
        List.mapi
          (fun i version ->
            let mine = List.filteri (fun j _ -> j / np = i) cycles in
            let pts = List.map2 (fun p c -> (p, c)) procs mine in
            (version, H.speedup_series ~label:(W.version_label version) ~baseline pts))
          all_versions
      in
      (baseline, series)

let value_at series version p =
  let s = List.assq version series in
  List.find_map
    (fun pt -> if pt.Series.x = p then Some pt.Series.y else None)
    s.Series.points
  |> Option.value ~default:0.0

let print_series ~title ~series =
  Format.fprintf ppf "@.%s@.@." title;
  let ss = List.map snd series in
  Series.pp_table ~ylabel:"speedup" ~xlabel:"procs" ppf ss;
  Format.pp_print_newline ppf ();
  Series.pp_chart ~ideal:true ~xlabel:"processors" ppf ss

(* ------------------------------------------------------------------ *)
(* Figure 4: LU *)

let fig4 ~quick ~jobs =
  section "Figure 4: NAS-LU speedups (scaled class C)";
  let n = if quick then 12 else 24 in
  let procs = if quick then [ 1; 2; 4; 8 ] else [ 1; 2; 4; 8; 16; 32; 64 ] in
  let setup =
    H.mk_setup ~machine_procs:(List.fold_left max 1 procs) ~factor:256
      ~heap_words:(1 lsl 22) ()
  in
  let mk version ~iters = W.lu ~n ~iters version in
  let _, series = speedup_experiment ~jobs ~setup ~procs ~mk ~iters:1 () in
  print_series ~title:(Printf.sprintf "LU (5,%d,%d,%d), dist (*,block,block,*)" n n n) ~series;
  let pmax = List.fold_left max 1 procs in
  let v = value_at series in
  Format.pp_print_newline ppf ();
  ignore
    (H.check ppf "all four versions scale (speedup >= P/3 at max P)"
       (List.for_all
          (fun ver -> v ver pmax >= float_of_int pmax /. 3.0)
          all_versions));
  ignore
    (H.check ppf "reshaped is best or near-best at max P"
       (v W.Reshaped pmax >= 0.9 *. List.fold_left (fun m x -> Float.max m (v x pmax)) 0.0 all_versions));
  ignore
    (H.check ppf "first-touch benefits from parallel initialization (>= round-robin)"
       (v W.First_touch pmax >= 0.9 *. v W.Round_robin pmax));
  (* the paper's hardware-counter observation: total L2 misses drop sharply
     from 1 to 16 processors thanks to the growing aggregate cache *)
  if not quick then begin
    let misses p =
      let o =
        H.outcome ~setup ~version:W.Reshaped ~nprocs:p (W.lu ~n ~iters:2 W.Reshaped)
      in
      o.Ddsm.Engine.counters.Ddsm_machine.Counters.l2_misses
    in
    let m1 = misses 1 and m32 = misses 32 in
    Format.fprintf ppf
      "  L2 misses: %d (P=1) -> %d (P=32), factor %.1f (paper: ~3x from 1 to 16)@."
      m1 m32 (float_of_int m1 /. float_of_int (max 1 m32));
    ignore (H.check ppf "aggregate cache cuts misses (>= 1.3x)" (m1 * 10 >= m32 * 13))
  end;
  let open H.Json in
  H.write_json ppf ~path:"BENCH_fig4.json"
    (Obj
       [
         ("experiment", Str "fig4");
         ("quick", Bool quick);
         ("series", H.json_of_series series);
         ( "snapshots",
           List
             (List.map
                (fun ver ->
                  H.version_snapshot ~setup ~version:ver ~nprocs:pmax
                    (W.lu ~n ~iters:1 ver))
                all_versions) );
       ])

(* ------------------------------------------------------------------ *)
(* Figure 5: transpose *)

let fig5 ~quick ~jobs =
  section "Figure 5: Matrix Transpose speedups";
  let n = if quick then 160 else 512 in
  let procs = if quick then [ 1; 2; 4; 8 ] else [ 1; 2; 4; 8; 16; 32; 64; 96 ] in
  let setup =
    H.mk_setup ~machine_procs:(List.fold_left max 1 procs) ~factor:256
      ~page_bytes:4096 ~heap_words:(1 lsl 23) ()
  in
  let mk version ~iters = W.transpose ~n ~iters version in
  let _, series = speedup_experiment ~jobs ~setup ~procs ~mk ~iters:1 () in
  print_series
    ~title:(Printf.sprintf "Transpose %dx%d, A(*,block) B(block,*), serial init" n n)
    ~series;
  let pmax = List.fold_left max 1 procs in
  let pmid = if quick then 4 else 32 in
  let v = value_at series in
  Format.pp_print_newline ppf ();
  ignore
    (H.check ppf "reshaped wins clearly at moderate P (>= 1.3x round-robin)"
       (v W.Reshaped pmid >= 1.3 *. v W.Round_robin pmid));
  ignore
    (H.check ppf "round-robin beats first-touch and regular (hot-node bottleneck)"
       (v W.Round_robin pmid >= v W.First_touch pmid
       && v W.Round_robin pmid >= v W.Regular pmid));
  ignore
    (H.check ppf "first-touch and regular collapse (speedup < P/3 at max P)"
       (v W.First_touch pmax < float_of_int pmax /. 3.0
       && v W.Regular pmax < float_of_int pmax /. 3.0));
  (* §8.2's TLB observation: reshaping uses all the data in a page, so it
     spends a much smaller fraction of its time in TLB misses *)
  let tlb version p =
    let o = H.outcome ~setup ~version ~nprocs:p (W.transpose ~n ~iters:2 version) in
    o.Ddsm.Engine.counters.Ddsm_machine.Counters.tlb_misses
  in
  let rr = tlb W.Round_robin pmax and rs = tlb W.Reshaped pmax in
  Format.fprintf ppf
    "  TLB misses at P=%d: round-robin %d, reshaped %d (paper: reshaping less than half the TLB time)@."
    pmax rr rs;
  ignore (H.check ppf "reshaping reduces TLB misses" (rs < rr));
  let open H.Json in
  H.write_json ppf ~path:"BENCH_fig5.json"
    (Obj
       [
         ("experiment", Str "fig5");
         ("quick", Bool quick);
         ("series", H.json_of_series series);
         ( "snapshots",
           List
             (List.map
                (fun ver ->
                  H.version_snapshot ~setup ~version:ver ~nprocs:pmax
                    (W.transpose ~n ~iters:1 ver))
                all_versions) );
       ])

(* ------------------------------------------------------------------ *)
(* Figures 6 and 7: 2-D convolution *)

let conv_figure ~tag ~name ~n ~procs ~setup ~quick ~jobs =
  let pmax = List.fold_left max 1 procs in
  let pmid = if quick then 4 else if List.mem 32 procs then 32 else 16 in
  (* one level of parallelism: ( *, block ) *)
  let mk1 version ~iters = W.convolution ~n ~iters ~two_level:false version in
  let _, s1 = speedup_experiment ~cold:true ~jobs ~setup ~procs ~mk:mk1 ~iters:1 () in
  print_series
    ~title:(Printf.sprintf "%s: %dx%d, (*,block), one level of parallelism" name n n)
    ~series:s1;
  (* two levels: (block, block) *)
  let mk2 version ~iters = W.convolution ~n ~iters ~two_level:true version in
  let _, s2 = speedup_experiment ~cold:true ~jobs ~setup ~procs ~mk:mk2 ~iters:1 () in
  print_series
    ~title:(Printf.sprintf "%s: %dx%d, (block,block), two levels of parallelism" name n n)
    ~series:s2;
  Format.pp_print_newline ppf ();
  let v1 = value_at s1 and v2 = value_at s2 in
  ignore
    (H.check ppf "one level: serial init makes first-touch worst"
       (v1 W.First_touch pmid
       <= List.fold_left (fun m x -> Float.min m (v1 x pmid)) infinity all_versions
          +. 0.01));
  ignore
    (H.check ppf "one level: reshaped at or near the top at moderate P"
       (v1 W.Reshaped pmid
       >= 0.9 *. List.fold_left (fun m x -> Float.max m (v1 x pmid)) 0.0 all_versions));
  ignore
    (H.check ppf
       "two levels: reshaped clearly beats first-touch/regular (page+line false sharing)"
       (v2 W.Reshaped pmax >= 1.2 *. v2 W.First_touch pmax
       && v2 W.Reshaped pmax >= 1.2 *. v2 W.Regular pmax));
  ignore
    (H.check ppf "two levels: round-robin is the best non-reshaped option"
       (v2 W.Round_robin pmax >= v2 W.First_touch pmax
       && v2 W.Round_robin pmax >= v2 W.Regular pmax));
  let open H.Json in
  H.write_json ppf
    ~path:(Printf.sprintf "BENCH_%s.json" tag)
    (Obj
       [
         ("experiment", Str tag);
         ("quick", Bool quick);
         ("series_one_level", H.json_of_series s1);
         ("series_two_level", H.json_of_series s2);
         ( "snapshots",
           List
             (List.map
                (fun ver ->
                  H.version_snapshot ~setup ~version:ver ~nprocs:pmax
                    (W.convolution ~n ~iters:1 ~two_level:false ver))
                all_versions) );
       ]);
  (v1, v2)

let fig6 ~quick ~jobs =
  section "Figure 6: 2-D Convolution, small input";
  let n = if quick then 96 else 256 in
  let procs = if quick then [ 1; 2; 4; 8 ] else [ 1; 2; 4; 8; 16; 32; 64; 96 ] in
  let setup =
    H.mk_setup ~machine_procs:(List.fold_left max 1 procs) ~factor:64
      ~page_bytes:4096 ~heap_words:(1 lsl 22) ()
  in
  ignore
    (conv_figure ~tag:"fig6" ~name:"Fig 6 (scaled 1000x1000)" ~n ~procs ~setup
       ~quick ~jobs)

let fig7 ~quick ~jobs =
  section "Figure 7: 2-D Convolution, large input";
  let n = if quick then 160 else 640 in
  let procs = if quick then [ 1; 2; 4; 8 ] else [ 1; 4; 16; 48; 96 ] in
  let setup =
    H.mk_setup ~machine_procs:(List.fold_left max 1 procs) ~factor:64
      ~page_bytes:4096 ~heap_words:(1 lsl 24) ()
  in
  let v1, _ =
    conv_figure ~tag:"fig7" ~name:"Fig 7 (scaled 5000x5000)" ~n ~procs ~setup
      ~quick ~jobs
  in
  (* §8.4: on the large input, regular distribution is perfectly adequate
     for ( *, block ): portions are much larger than a page *)
  let pmid = if quick then 4 else 16 in
  ignore
    (H.check ppf
       "large input, one level: regular within 20% of reshaped (portions >> page)"
       (v1 W.Regular pmid >= 0.8 *. v1 W.Reshaped pmid))

(* ------------------------------------------------------------------ *)
(* Ablation study: contribution of each §7 optimization *)

let ablate ~quick =
  section "Ablation: per-optimization contribution (reshaped LU kernel, 1 proc)";
  let n = if quick then 8 else 14 in
  let setup = H.mk_setup ~machine_procs:8 ~factor:64 ~heap_words:(1 lsl 21) () in
  let mk ~iters = W.lu ~n ~iters W.Reshaped in
  let measure flags = H.phase_cycles ~flags ~setup ~version:W.Reshaped ~nprocs:1 ~mk ~iters:1 () in
  let full = measure Flags.all_on in
  let none = measure Flags.all_off in
  Format.fprintf ppf "all optimizations: %d cycles;  none: %d cycles (%.2fx)@.@."
    full none
    (float_of_int none /. float_of_int full);
  Format.fprintf ppf "%-22s %14s %9s %14s %9s@." "flag" "without (drop)"
    "slowdown" "alone (add)" "speedup";
  let variants =
    [
      ("tile", (fun f v -> { f with Flags.tile = v }));
      ("peel", (fun f v -> { f with Flags.peel = v }));
      ("skew", (fun f v -> { f with Flags.skew = v }));
      ("hoist", (fun f v -> { f with Flags.hoist = v }));
      ("cse", (fun f v -> { f with Flags.cse = v }));
      ("fp_divmod", (fun f v -> { f with Flags.fp_divmod = v }));
      ("interchange", (fun f v -> { f with Flags.interchange = v }));
    ]
  in
  let measured =
    List.map
      (fun (name, set) ->
        let without = measure (set Flags.all_on false) in
        let alone = measure (set Flags.all_off true) in
        Format.fprintf ppf "%-22s %14d %8.2fx %14d %8.2fx@." name without
          (float_of_int without /. float_of_int full)
          alone
          (float_of_int none /. float_of_int alone);
        (name, without, alone))
      variants
  in
  Format.fprintf ppf
    "@.('without' = all_on minus the flag, vs. the fully optimized %d;@."
    full;
  Format.fprintf ppf
    " 'alone' = all_off plus the flag, vs. the unoptimized %d.)@." none;
  let open H.Json in
  H.write_json ppf ~path:"BENCH_ablate.json"
    (Obj
       [
         ("experiment", Str "ablate");
         ("quick", Bool quick);
         ("all_on_cycles", Int full);
         ("all_off_cycles", Int none);
         ( "flags",
           List
             (List.map
                (fun (name, without, alone) ->
                  Obj
                    [
                      ("flag", Str name);
                      ("without_cycles", Int without);
                      ("alone_cycles", Int alone);
                    ])
                measured) );
         ( "snapshot",
           H.version_snapshot ~flags:Flags.all_on ~setup ~version:W.Reshaped
             ~nprocs:1 (mk ~iters:1) );
       ])

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the simulator itself *)

let bechamel () =
  section "Bechamel: host-side microbenchmarks of the toolchain";
  let open Bechamel in
  let open Toolkit in
  let compile_test =
    Test.make ~name:"compile+lower transpose(64)"
      (Staged.stage (fun () ->
           ignore (H.compile (W.transpose ~n:64 ~iters:1 W.Reshaped))))
  in
  let setup = H.mk_setup ~machine_procs:8 ~factor:64 ~heap_words:(1 lsl 20) () in
  let prog = H.compile (W.transpose ~n:48 ~iters:1 W.Reshaped) in
  let sim_test =
    Test.make ~name:"simulate transpose(48) on 8 procs"
      (Staged.stage (fun () ->
           ignore (H.run_prog ~setup ~version:W.Reshaped ~nprocs:8 prog)))
  in
  let conv_prog = H.compile (W.convolution ~n:48 ~iters:1 ~two_level:true W.Reshaped) in
  let conv_test =
    Test.make ~name:"simulate conv2(48) on 8 procs"
      (Staged.stage (fun () ->
           ignore (H.run_prog ~setup ~version:W.Reshaped ~nprocs:8 conv_prog)))
  in
  let tests = Test.make_grouped ~name:"ddsm" [ compile_test; sim_test; conv_test ] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Format.fprintf ppf "  %-40s %12.0f ns/run@." name est
      | _ -> ())
    results

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  (* --jobs N (or DDSM_JOBS) fans the version x P sweeps over domains *)
  let rec jobs_of = function
    | "--jobs" :: n :: _ -> (
        match int_of_string_opt n with
        | Some j when j >= 1 -> j
        | _ -> failwith ("--jobs: expected a positive integer, got " ^ n))
    | _ :: tl -> jobs_of tl
    | [] -> (
        (* a malformed DDSM_JOBS is a user error: diagnose and exit 2,
           matching the pflrun/pflc exit-code contract *)
        match Ddsm_util.Jobs.default_jobs () with
        | Ok j -> j
        | Error e ->
            Printf.eprintf "runtime error: %s\n" e;
            exit 2)
  in
  let jobs = jobs_of args in
  let rec strip = function
    | "--jobs" :: _ :: tl -> strip tl
    | "--quick" :: tl -> strip tl
    | a :: tl -> a :: strip tl
    | [] -> []
  in
  let chosen = strip args in
  let all = [ "table2"; "fig4"; "fig5"; "fig6"; "fig7"; "ablate" ] in
  let chosen = if chosen = [] || chosen = [ "all" ] then all else chosen in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun exp ->
      match exp with
      | "table2" -> table2 ~quick
      | "fig4" -> fig4 ~quick ~jobs
      | "fig5" -> fig5 ~quick ~jobs
      | "fig6" -> fig6 ~quick ~jobs
      | "fig7" -> fig7 ~quick ~jobs
      | "ablate" -> ablate ~quick
      | "bechamel" -> bechamel ()
      | other ->
          Format.fprintf ppf
            "unknown experiment %s (table2|fig4|fig5|fig6|fig7|bechamel|all)@."
            other)
    chosen;
  Format.fprintf ppf "@.total wall time: %.1fs@." (Unix.gettimeofday () -. t0)
