(* Irregular-access benchmark: naive indirect references vs. the
   inspector-executor transform (DESIGN.md §13).

   An ELL sparse matrix-vector multiply reads the dense vector through a
   column-index array, so every iteration's home node is run-time data.
   Naive code pays a (mostly remote, contended) miss per reference; the
   transformed code walks the index array once, bulk-gathers the
   referenced elements per home into block-placed scratch, and the
   executor reads the scratch locally.  The sweep compares the two at
   8..128 simulated processors on the same machine model; a second leg
   differences per-sweep cycles to show the cached gather schedule makes
   warm sweeps cheaper than the first; a third re-runs the simulation
   sharded to check bit-identical output. *)

module Ddsm = Ddsm_core.Ddsm
module Flags = Ddsm_core.Ddsm.Flags
module Counters = Ddsm_machine.Counters
module H = Harness
module W = Workloads

let ppf = Format.std_formatter
let section title = Format.fprintf ppf "@.==== %s ====@.@." title
let naive_flags = { Flags.all_on with Flags.inspector = false }

(* ELL spmv: k nonzeros per row, column indices scattered over the whole
   vector by a multiplicative pattern, [sweeps] multiply passes *)
let spmv_src ~n ~k ~sweeps =
  Printf.sprintf
    {|      program spmv
      integer n, k, ns, i, j, s
      parameter (n = %d, k = %d, ns = %d)
      real*8 a(n*k), x(n), y(n), t
      integer col(n*k)
c$distribute a(block), x(block), y(block), col(block)
      do i = 1, n
        x(i) = 1.0 + mod(i, 7)
        y(i) = 0.0
      enddo
      do i = 1, n
        do j = 1, k
          col((i-1)*k + j) = 1 + mod(i*197 + j*89, n)
          a((i-1)*k + j) = 0.001 * (i + j)
        enddo
      enddo
      do s = 1, ns
c$doacross local(i, j) affinity(i) = data(y(i))
        do i = 1, n
          do j = 1, k
            y(i) = y(i) + a((i-1)*k + j) * x(col((i-1)*k + j))
          enddo
        enddo
      enddo
      t = 0.0
      do i = 1, n
        t = t + y(i)
      enddo
      print *, 'checksum:', t
      end
|}
    n k sweeps

(* edge-centric graph pass: two gather sites (both endpoint arrays) per
   loop; rank is rewritten between sweeps, so the schedules re-inspect *)
let graph_src ~n ~m ~sweeps =
  Printf.sprintf
    {|      program graph
      integer n, m, ns, i, e, s
      parameter (n = %d, m = %d, ns = %d)
      integer srcv(m), dstv(m)
      real*8 rank(n), contrib(m), acc
c$distribute rank(block), srcv(block), dstv(block), contrib(block)
      do e = 1, m
        srcv(e) = 1 + mod(e*131, n)
        dstv(e) = 1 + mod(e*73 + 5, n)
      enddo
      do i = 1, n
        rank(i) = 1.0
      enddo
      do s = 1, ns
c$doacross local(e) affinity(e) = data(contrib(e))
        do e = 1, m
          contrib(e) = 0.5 * rank(srcv(e)) + 0.5 * rank(dstv(e))
        enddo
        acc = 0.0
        do e = 1, m
          acc = acc + contrib(e)
        enddo
        do i = 1, n
          rank(i) = 0.85 * rank(i) + 0.15 * (acc / n)
        enddo
      enddo
      acc = 0.0
      do i = 1, n
        acc = acc + rank(i)
      enddo
      print *, 'rank sum:', acc
      end
|}
    n m sweeps

let setup = H.mk_setup ~machine_procs:128 ~factor:64 ~heap_words:(1 lsl 22) ()
let procs = [ 8; 16; 32; 64; 128 ]
let counter k c = List.assoc k (Counters.to_assoc c)

(* remote traffic the irregular references cause: line fills served by a
   remote home plus memory-module queueing *)
let remote_cost (o : Ddsm.Engine.outcome) =
  counter "remote_fills" o.Ddsm.Engine.counters
  + counter "contention_cycles" o.Ddsm.Engine.counters

type point = {
  nprocs : int;
  naive : Ddsm.Engine.outcome;
  insp : Ddsm.Engine.outcome;
}

let run_variants ~label src =
  Format.fprintf ppf "%s@." label;
  Format.fprintf ppf "  %6s %12s %12s %14s %14s %8s@." "procs" "naive_cyc"
    "insp_cyc" "naive_remote" "insp_remote" "same";
  let naive_prog = H.compile ~flags:naive_flags src in
  let insp_prog = H.compile src in
  let pts =
    List.map
      (fun nprocs ->
        let naive =
          H.run_prog ~setup ~version:W.Regular ~nprocs naive_prog
        in
        let insp = H.run_prog ~setup ~version:W.Regular ~nprocs insp_prog in
        Format.fprintf ppf "  %6d %12d %12d %14d %14d %8s@." nprocs
          naive.Ddsm.Engine.cycles insp.Ddsm.Engine.cycles (remote_cost naive)
          (remote_cost insp)
          (if naive.Ddsm.Engine.prints = insp.Ddsm.Engine.prints then "yes"
           else "NO");
        { nprocs; naive; insp })
      procs
  in
  Format.pp_print_newline ppf ();
  pts

(* per-sweep cycles by differencing sweep counts: the first sweep pays
   inspection, later sweeps reuse the cached schedule *)
let reuse_leg ~nprocs =
  let cycles sweeps =
    (H.run_prog ~setup ~version:W.Regular ~nprocs
       (H.compile (spmv_src ~n:2048 ~k:4 ~sweeps)))
      .Ddsm.Engine.cycles
  in
  let c0 = cycles 0 and c1 = cycles 1 and c2 = cycles 2 in
  let cold = c1 - c0 and warm = c2 - c1 in
  Format.fprintf ppf
    "spmv per-sweep cycles at %d procs: cold (inspect) %d, warm (cached) %d@."
    nprocs cold warm;
  (cold, warm)

(* sharded run must print byte-for-byte what the sequential one does *)
let shards_leg src =
  let prog = H.compile src in
  let seq = H.run_prog ~setup ~version:W.Regular ~nprocs:32 prog in
  let shr = H.run_prog ~shards:3 ~setup ~version:W.Regular ~nprocs:32 prog in
  seq.Ddsm.Engine.prints = shr.Ddsm.Engine.prints
  && seq.Ddsm.Engine.cycles = shr.Ddsm.Engine.cycles

let () =
  section "Irregular access: naive vs. inspector-executor";
  let spmv_pts = run_variants ~label:"spmv (ELL, n=2048, k=4, 2 sweeps)"
      (spmv_src ~n:2048 ~k:4 ~sweeps:2) in
  let graph_pts = run_variants ~label:"graph (n=512, m=2048, 2 sweeps)"
      (graph_src ~n:512 ~m:2048 ~sweeps:2) in
  let cold, warm = reuse_leg ~nprocs:32 in
  let spmv_shards = shards_leg (spmv_src ~n:2048 ~k:4 ~sweeps:2) in
  Format.pp_print_newline ppf ();
  let big = List.filter (fun p -> p.nprocs >= 32) spmv_pts in
  let ok1 =
    H.check ppf "spmv: inspector remote fills + contention < naive at >= 32 procs"
      (List.for_all (fun p -> remote_cost p.insp < remote_cost p.naive) big)
  in
  let ok2 =
    H.check ppf "spmv: warm sweep (cached schedule) cheaper than cold sweep"
      (warm < cold)
  in
  let ok3 =
    H.check ppf "spmv + graph: outputs identical with and without inspector"
      (List.for_all
         (fun p -> p.naive.Ddsm.Engine.prints = p.insp.Ddsm.Engine.prints)
         (spmv_pts @ graph_pts))
  in
  let ok4 =
    H.check ppf "spmv: sharded (3) run byte-identical to sequential" spmv_shards
  in
  let ok = [ ok1; ok2; ok3; ok4 ] in
  let open H.Json in
  let json_point p =
    let side (o : Ddsm.Engine.outcome) =
      Obj
        [
          ("cycles", Int o.Ddsm.Engine.cycles);
          ("remote_fills", Int (counter "remote_fills" o.Ddsm.Engine.counters));
          ( "contention_cycles",
            Int (counter "contention_cycles" o.Ddsm.Engine.counters) );
        ]
    in
    Obj
      [ ("nprocs", Int p.nprocs); ("naive", side p.naive); ("inspector", side p.insp) ]
  in
  H.write_json ppf ~path:"BENCH_irregular.json"
    (Obj
       [
         ("experiment", Str "irregular");
         ("spmv", List (List.map json_point spmv_pts));
         ("graph", List (List.map json_point graph_pts));
         ( "schedule_reuse",
           Obj [ ("cold_sweep_cycles", Int cold); ("warm_sweep_cycles", Int warm) ] );
         ("sharded_identical", Str (if spmv_shards then "yes" else "no"));
       ]);
  if not (List.for_all Fun.id ok) then exit 1
