(* Measurement helpers for the figure/table reproductions. *)

module Ddsm = Ddsm_core.Ddsm
module Flags = Ddsm_core.Ddsm.Flags

type setup = {
  machine_procs : int;  (** fixed machine size the jobs run on *)
  factor : int;  (** capacity-scaling factor (see DESIGN.md) *)
  heap_words : int;
  page_bytes : int option;
      (** override the scaled page size: some experiments need the paper's
          page-to-data-structure ratio rather than the scaled one *)
}

let mk_setup ?page_bytes ~machine_procs ~factor ~heap_words () =
  { machine_procs; factor; heap_words; page_bytes }

(* staged: compile once per source, run per processor count *)
let compile ?(flags = Flags.all_on) src =
  match Ddsm.compile_source ~flags ~fname:"<bench>" src with
  | Error es -> failwith (String.concat "\n" es)
  | Ok obj -> (
      match Ddsm.link [ obj ] with
      | Error es -> failwith (String.concat "\n" es)
      | Ok (prog, _) -> prog)

let run_prog ?profile ?(shards = 1) ~setup ~version ~nprocs prog =
  let policy = Workloads.policy_of version in
  let module Config = Ddsm_machine.Config in
  let cfg =
    Config.scaled ~nprocs:(max setup.machine_procs nprocs) ~factor:setup.factor ()
  in
  let cfg =
    match setup.page_bytes with
    | None -> cfg
    | Some pb -> { cfg with Config.page_bytes = pb }
  in
  let rt =
    Ddsm_runtime.Rt.create cfg ~policy ~heap_words:setup.heap_words
      ~job_procs:nprocs ()
  in
  match Ddsm.run prog ~rt ~checks:false ~shards ?profile () with
  | Ok o -> o
  | Error m -> failwith ("bench run failed: " ^ Ddsm.Diag.to_string m)

(* Cycles of the iterated phase alone: run with T and with 2T iterations of
   the measured loop and difference the totals, cancelling initialization
   and start-up exactly (the simulator is deterministic). *)
let phase_cycles ?flags ~setup ~version ~nprocs ~(mk : iters:int -> string)
    ~iters () =
  let c1 =
    (run_prog ~setup ~version ~nprocs (compile ?flags (mk ~iters))).Ddsm.Engine.cycles
  in
  let c2 =
    (run_prog ~setup ~version ~nprocs (compile ?flags (mk ~iters:(2 * iters))))
      .Ddsm.Engine.cycles
  in
  max 1 (c2 - c1)

(* Cycles of the FIRST (cold) execution of the iterated phase: difference
   of a 1-iteration and a 0-iteration run, isolating the phase with its
   compulsory misses — how the paper measures the single-sweep kernels. *)
let cold_phase_cycles ?flags ~setup ~version ~nprocs ~(mk : iters:int -> string)
    () =
  let c0 =
    (run_prog ~setup ~version ~nprocs (compile ?flags (mk ~iters:0))).Ddsm.Engine.cycles
  in
  let c1 =
    (run_prog ~setup ~version ~nprocs (compile ?flags (mk ~iters:1))).Ddsm.Engine.cycles
  in
  max 1 (c1 - c0)

let total_cycles ?flags ~setup ~version ~nprocs src =
  (run_prog ~setup ~version ~nprocs (compile ?flags src)).Ddsm.Engine.cycles

let outcome ?flags ~setup ~version ~nprocs src =
  run_prog ~setup ~version ~nprocs (compile ?flags src)

(* ------------------------------------------------------------------ *)
(* BENCH_*.json snapshots: machine-readable counters + cycle attribution
   per experiment, for offline comparison across versions of the code. *)

module Json = Ddsm.Json

let json_of_counters c =
  Json.Obj
    (List.map
       (fun (k, v) -> (k, Json.Int v))
       (Ddsm_machine.Counters.to_assoc c))

(* one configured run with the profiler attached: the counters plus the
   region x array x cause attribution for that version *)
let version_snapshot ?flags ~setup ~version ~nprocs src =
  let profile = Ddsm.Profile.create () in
  let o = run_prog ~profile ~setup ~version ~nprocs (compile ?flags src) in
  Json.Obj
    [
      ("version", Json.Str (Workloads.version_label version));
      ("nprocs", Json.Int nprocs);
      ("cycles", Json.Int o.Ddsm.Engine.cycles);
      ("counters", json_of_counters o.Ddsm.Engine.counters);
      ("attribution", Ddsm.Profile.attribution_json profile);
    ]

let json_of_series series =
  Json.List
    (List.map
       (fun (_, s) ->
         Json.Obj
           [
             ("label", Json.Str s.Ddsm_report.Series.label);
             ( "points",
               Json.List
                 (List.map
                    (fun p ->
                      Json.Obj
                        [
                          ("x", Json.Int p.Ddsm_report.Series.x);
                          ("y", Json.Float p.Ddsm_report.Series.y);
                        ])
                    s.Ddsm_report.Series.points) );
           ])
       series)

(* an unwritable working directory downgrades the snapshot to a warning —
   the measurements themselves have already been printed *)
let write_json ppf ~path j =
  try
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Json.to_channel oc j;
        output_char oc '\n');
    Format.fprintf ppf "  snapshot: %s@." path
  with Sys_error m -> Format.fprintf ppf "  snapshot skipped: %s@." m

(* speedup series over a processor sweep, relative to [baseline] cycles *)
let speedup_series ~label ~baseline measurements =
  Ddsm_report.Series.speedup ~baseline:(float_of_int baseline) ~label
    (List.map (fun (p, c) -> (p, float_of_int c)) measurements)

let check ppf name ok =
  Format.fprintf ppf "  [%s] %s@." (if ok then "ok" else "MISS") name;
  ok
