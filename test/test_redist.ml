(* Tests for the redistribution engine: the closed-form schedule builder
   against a per-element owner-walk oracle, the round structure invariants,
   the portion_run clamp, atomicity under injected migration failures, the
   reshaped copy-then-install path, and the checked real->int element rule. *)

open Ddsm_dist
open Ddsm_machine
open Ddsm_runtime

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tiny ?(nprocs = 4) () : Config.t =
  {
    nprocs;
    procs_per_node = 2;
    page_bytes = 256;
    l1 = { size_bytes = 128; line_bytes = 32; assoc = 2; hit_cycles = 1 };
    l2 = { size_bytes = 512; line_bytes = 128; assoc = 2; hit_cycles = 10 };
    tlb_entries = 4;
    tlb_miss_cycles = 57;
    local_mem_cycles = 70;
    remote_base_cycles = 110;
    remote_per_hop_cycles = 12;
    mem_occupancy_cycles = 24;
    dirty_transfer_extra_cycles = 40;
    inval_cycles_per_sharer = 16;
    node_mem_bytes = 64 * 1024;
  }

let mk ?(nprocs = 4) ?fault () =
  Rt.create (tiny ~nprocs ()) ~policy:Pagetable.First_touch ~heap_words:65536
    ?fault ()

(* ------------------------------------------------------------------ *)
(* generators *)

let gen_kind =
  QCheck.Gen.(
    frequency
      [
        (3, return Kind.Block);
        (3, return Kind.Cyclic);
        (4, map (fun k -> Kind.Cyclic_k k) (int_range 1 6));
      ])

let arb_kind = QCheck.make ~print:(Format.asprintf "%a" Kind.pp) gen_kind

(* ------------------------------------------------------------------ *)
(* dim_pairs vs. a per-element owner walk *)

let prop_dim_pairs_oracle =
  QCheck.Test.make ~count:300 ~name:"dim_pairs = per-element owner walk"
    QCheck.(
      quad (int_range 1 80) (int_range 1 6) (int_range 1 6)
        (pair arb_kind arb_kind))
    (fun (extent, ps, pd, (ks, kd)) ->
      let ms = Dim_map.make ~extent ~procs:ps ks
      and md = Dim_map.make ~extent ~procs:pd kd in
      let tbl = Hashtbl.create 16 in
      for i = 0 to extent - 1 do
        let key = (Dim_map.owner ms i, Dim_map.owner md i) in
        Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
      done;
      let expect =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
      in
      Redist.dim_pairs ms md = expect)

(* ------------------------------------------------------------------ *)
(* build vs. a per-element owner walk over full layouts, incl. resizes *)

let walk_moves ~src ~dst extents =
  let tbl = Hashtbl.create 32 in
  let cross = ref 0 and total = ref 0 in
  let nd = Array.length extents in
  let idx = Array.make nd 0 in
  let rec go d =
    if d = nd then begin
      incr total;
      let s = Layout.owner src idx and t = Layout.owner dst idx in
      if s <> t then begin
        incr cross;
        Hashtbl.replace tbl (s, t)
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl (s, t)))
      end
    end
    else
      for i = 0 to extents.(d) - 1 do
        idx.(d) <- i;
        go (d + 1)
      done
  in
  go 0;
  ( !total,
    !cross,
    Hashtbl.fold
      (fun (s, t) w acc -> { Redist.src = s; dst = t; words = w } :: acc)
      tbl []
    |> List.sort compare )

let prop_build_oracle =
  QCheck.Test.make ~count:200 ~name:"build = per-element owner walk (1-D, resizable)"
    QCheck.(
      quad (int_range 1 70) (int_range 1 6) (int_range 1 6)
        (pair arb_kind arb_kind))
    (fun (n, ps, pd, (ks, kd)) ->
      let extents = [| n |] in
      let src = Layout.make ~extents ~kinds:[| ks |] ~nprocs:ps ()
      and dst = Layout.make ~extents ~kinds:[| kd |] ~nprocs:pd () in
      let s = Redist.build ~src ~dst in
      let total, cross, moves = walk_moves ~src ~dst extents in
      s.Redist.total_words = total
      && s.Redist.cross_words = cross
      && s.Redist.local_words = total - cross
      && List.sort compare s.Redist.moves = moves)

let prop_build_oracle_2d =
  QCheck.Test.make ~count:120 ~name:"build = per-element owner walk (2-D)"
    QCheck.(
      quad (pair (int_range 1 14) (int_range 1 12))
        (int_range 1 6) (int_range 1 6)
        (pair (pair arb_kind arb_kind) (pair arb_kind arb_kind)))
    (fun ((n1, n2), ps, pd, ((ka, kb), (kc, kd))) ->
      let extents = [| n1; n2 |] in
      let src = Layout.make ~extents ~kinds:[| ka; kb |] ~nprocs:ps ()
      and dst = Layout.make ~extents ~kinds:[| kc; kd |] ~nprocs:pd () in
      let s = Redist.build ~src ~dst in
      let total, cross, moves = walk_moves ~src ~dst extents in
      s.Redist.total_words = total
      && s.Redist.cross_words = cross
      && List.sort compare s.Redist.moves = moves)

(* ------------------------------------------------------------------ *)
(* round structure: <= 1 send and <= 1 receive per processor per round,
   rounds partition the moves, max_words is the round's largest transfer *)

let prop_round_structure =
  QCheck.Test.make ~count:200 ~name:"rounds: 1 send + 1 receive per proc, partition moves"
    QCheck.(
      quad (int_range 1 90) (int_range 1 8) (int_range 1 8)
        (pair arb_kind arb_kind))
    (fun (n, ps, pd, (ks, kd)) ->
      let extents = [| n |] in
      let src = Layout.make ~extents ~kinds:[| ks |] ~nprocs:ps ()
      and dst = Layout.make ~extents ~kinds:[| kd |] ~nprocs:pd () in
      let s = Redist.build ~src ~dst in
      let distinct f l = List.length (List.sort_uniq compare (List.map f l)) = List.length l in
      List.for_all
        (fun r ->
          distinct (fun m -> m.Redist.src) r.Redist.transfers
          && distinct (fun m -> m.Redist.dst) r.Redist.transfers
          && r.Redist.max_words
             = List.fold_left (fun a m -> max a m.Redist.words) 0 r.Redist.transfers)
        s.Redist.rounds
      && List.sort compare (List.concat_map (fun r -> r.Redist.transfers) s.Redist.rounds)
         = List.sort compare s.Redist.moves)

(* ------------------------------------------------------------------ *)
(* portion_run: clamped to the array tail, vs. a per-element reference *)

let prop_portion_run_clamped =
  QCheck.Test.make ~count:300 ~name:"portion_run = per-element reference, clamped at tail"
    QCheck.(pair (int_range 1 60) arb_kind)
    (fun (n, k) ->
      let rt = mk () in
      let a =
        Rt.declare_regular rt ~name:"A" ~elem:Darray.Real ~extents:[| n |]
          ~kinds:[| k |] ()
      in
      let m = Dim_map.make ~extent:n ~procs:(Rt.nprocs rt) k in
      let reference i0 =
        (* longest run of consecutive globals from i0 with the same owner
           and consecutive offsets, never past the array tail *)
        let o = Dim_map.owner m i0 and f = Dim_map.offset m i0 in
        let r = ref 1 in
        while
          i0 + !r < n
          && Dim_map.owner m (i0 + !r) = o
          && Dim_map.offset m (i0 + !r) = f + !r
        do
          incr r
        done;
        !r
      in
      List.for_all
        (fun i0 ->
          let run = Darray.portion_run a [| i0 + 1 |] in
          run = reference i0 && i0 + run <= n)
        (List.init n Fun.id))

(* ------------------------------------------------------------------ *)
(* atomicity: a migration failure mid-plan must leave every page home
   untouched (the partial prefix is rolled back) and report the fallback *)

let page_homes rt a =
  let pb = (tiny ()).Config.page_bytes in
  List.concat_map
    (fun (lo, hi) ->
      let b0 = Heap.byte_of_word lo / pb and b1 = Heap.byte_of_word hi / pb in
      List.init (b1 - b0 + 1) (fun i ->
          let page = b0 + i in
          (page, Memsys.home_of_addr rt.Rt.mem (page * pb))))
    (Darray.word_ranges a)

let test_migrate_fail_atomic () =
  (* migrations fail from the 2nd on: every attempt's prefix must roll
     back, and after bounded retries the call falls back entirely *)
  let fault = Ddsm_check.Fault.make ~migrate_fail:2 () in
  let rt = mk ~fault () in
  let a =
    Rt.declare_regular rt ~name:"A" ~elem:Darray.Real ~extents:[| 64; 8 |]
      ~kinds:[| Kind.Star; Kind.Block |] ()
  in
  let before = page_homes rt a in
  (match Rt.redistribute rt ~name:"A" ~kinds:[| Kind.Star; Kind.Cyclic |] () with
  | Error m -> Alcotest.failf "expected fallback, got error: %s" m
  | Ok { Rt.fell_back; retries; moved; _ } ->
      check_bool "fell back to old placement" true fell_back;
      check_bool "counted failed attempts" true (retries >= 1);
      check_int "nothing moved" 0 moved);
  Alcotest.(check (list (pair int (option int))))
    "page homes unchanged after failed attempts" before (page_homes rt a);
  check_int "audit clean" 0 (List.length (Rt.audit rt))

let test_migrate_ok_when_under_threshold () =
  (* high threshold: the same plan goes through and homes follow *)
  let fault = Ddsm_check.Fault.make ~migrate_fail:10_000 () in
  let rt = mk ~fault () in
  ignore
    (Rt.declare_regular rt ~name:"A" ~elem:Darray.Real ~extents:[| 64; 8 |]
       ~kinds:[| Kind.Star; Kind.Block |] ());
  match Rt.redistribute rt ~name:"A" ~kinds:[| Kind.Star; Kind.Cyclic |] () with
  | Error m -> Alcotest.failf "unexpected error: %s" m
  | Ok { Rt.fell_back; _ } -> check_bool "no fallback" false fell_back

(* ------------------------------------------------------------------ *)
(* reshaped copy-then-install: values survive kind changes and onto-grid
   resizes; the descriptor reflects the new layout; canaries stay intact *)

let test_reshaped_rcu_preserves_values () =
  let rt = mk () in
  let n = 37 in
  let a =
    Rt.declare_reshaped rt ~name:"R" ~elem:Darray.Real ~extents:[| n |]
      ~kinds:[| Kind.Block |] ()
  in
  for i = 1 to n do
    Rt.write rt ~addr:(Darray.word_addr a [| i |]) ~elem:Darray.Real
      (float_of_int (i * i))
  done;
  let readback msg =
    for i = 1 to n do
      check_bool msg true
        (Rt.read rt ~addr:(Darray.word_addr a [| i |]) ~elem:Darray.Real
        = float_of_int (i * i))
    done
  in
  (match Rt.redistribute rt ~name:"R" ~kinds:[| Kind.Cyclic_k 5 |] () with
  | Error m -> Alcotest.failf "reshaped redistribute failed: %s" m
  | Ok { Rt.words; _ } -> check_bool "some words moved" true (words > 0));
  readback "values after cyclic(5)";
  (* onto-grid resize: shrink to 2 processors, then grow back to 4 *)
  (match Rt.redistribute rt ~name:"R" ~kinds:[| Kind.Cyclic_k 3 |] ~procs:2 () with
  | Error m -> Alcotest.failf "shrink failed: %s" m
  | Ok _ -> ());
  check_int "shrunk grid" 2 (Darray.nprocs a);
  readback "values after shrink to 2 procs";
  (match Rt.redistribute rt ~name:"R" ~kinds:[| Kind.Block |] ~procs:64 () with
  | Error m -> Alcotest.failf "grow failed: %s" m
  | Ok _ -> ());
  check_int "regrown grid clamped to job procs" 4 (Darray.nprocs a);
  readback "values after regrow";
  check_int "audit clean after RCU installs" 0 (List.length (Rt.audit rt))

(* ------------------------------------------------------------------ *)
(* checked real->int element conversion *)

let test_int_of_real () =
  Alcotest.(check (option int)) "3.7 truncates" (Some 3) (Rt.int_of_real 3.7);
  Alcotest.(check (option int)) "-2.5 truncates" (Some (-2)) (Rt.int_of_real (-2.5));
  Alcotest.(check (option int)) "0" (Some 0) (Rt.int_of_real 0.0);
  Alcotest.(check (option int)) "1e18 fits" (Some 1_000_000_000_000_000_000)
    (Rt.int_of_real 1e18);
  Alcotest.(check (option int)) "NaN rejected" None (Rt.int_of_real Float.nan);
  Alcotest.(check (option int)) "+inf rejected" None (Rt.int_of_real Float.infinity);
  Alcotest.(check (option int)) "2^62 rejected" None (Rt.int_of_real 4.6116860184273879e18);
  Alcotest.(check (option int)) "-1e19 rejected" None (Rt.int_of_real (-1e19));
  check_bool "Rt.write Int raises on NaN" true
    (let rt = mk () in
     let a =
       Rt.declare_plain rt ~name:"I" ~elem:Darray.Int ~extents:[| 4 |] ()
     in
     try
       Rt.write rt ~addr:(Darray.word_addr a [| 1 |]) ~elem:Darray.Int Float.nan;
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)

let qsuite name props =
  (name, List.map (QCheck_alcotest.to_alcotest ~long:false) props)

let () =
  Alcotest.run "redist"
    [
      qsuite "schedule.oracle"
        [ prop_dim_pairs_oracle; prop_build_oracle; prop_build_oracle_2d ];
      qsuite "schedule.rounds" [ prop_round_structure ];
      qsuite "portion_run" [ prop_portion_run_clamped ];
      ( "atomicity",
        [
          Alcotest.test_case "migrate-fail rolls back and falls back" `Quick
            test_migrate_fail_atomic;
          Alcotest.test_case "high threshold passes through" `Quick
            test_migrate_ok_when_under_threshold;
        ] );
      ( "reshaped-rcu",
        [
          Alcotest.test_case "values survive redistribute + resize" `Quick
            test_reshaped_rcu_preserves_values;
        ] );
      ( "int-elements",
        [ Alcotest.test_case "checked real->int rule" `Quick test_int_of_real ] );
    ]
