(* Inspector-executor oracle: the transformed irregular loop must be
   bit-identical to the naive indirect loop over adversarial index
   vectors (duplicates, out-of-order, clustered, full-range), serial and
   parallel nests, sequential and sharded engines; injected bulk-fetch
   failures (gather-fail=N) must retry, fall back per element, and leave
   the results untouched; the schedule cache must inspect once across
   repeated sweeps and re-inspect when the index array or the target's
   layout changes. *)

open Ddsm_ir
open Ddsm_frontend
open Ddsm_sema
open Ddsm_transform
open Ddsm_exec
module Config = Ddsm_machine.Config
module Pagetable = Ddsm_machine.Pagetable
module Rt = Ddsm_runtime.Rt
module Fault = Ddsm_check.Fault

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let naive_flags = { Flags.all_on with Flags.inspector = false }

let build ?(flags = Flags.all_on) src =
  match Parser.parse_file ~fname:"t.pf" src with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok f -> (
      match Sema.analyse_file f with
      | Error es -> Alcotest.failf "sema: %s" (String.concat "; " es)
      | Ok envs ->
          let routines =
            List.map
              (fun (env : Sema.env) ->
                let code = Pipeline.run flags env in
                (env.Sema.routine.Decl.rname, { Prog.env; code }))
              envs
          in
          let main =
            List.find
              (fun (env : Sema.env) ->
                env.Sema.routine.Decl.rkind = Decl.Program)
              envs
          in
          Prog.create routines ~main:main.Sema.routine.Decl.rname)

let run ?flags ?fault ?(shards = 1) ?(nprocs = 4) src =
  let prog = build ?flags src in
  let cfg = Config.scaled ~nprocs () in
  let rt =
    Rt.create cfg ~policy:Pagetable.First_touch ~heap_words:(1 lsl 20) ?fault ()
  in
  match Engine.run prog ~rt ~checks:true ~bounds:true ~shards () with
  | Ok o -> (o, rt)
  | Error m -> Alcotest.failf "runtime error: %s" (Ddsm_check.Diag.to_string m)

let prints o = String.concat "\n" o.Engine.prints

(* ------------------------------------------------------------------ *)
(* the generated program: fill a and the index vector with literals,
   run the indirect loop (serial or doacross), print every element *)

type form = Plain | Scaled | Shifted

type case = {
  n : int;  (** index values range over 1..n *)
  idxs : int array;
  form : form;
  par : bool;
}

(* target extent covering the subscript range of each form *)
let asize c =
  match c.form with
  | Plain -> c.n
  | Scaled -> 2 * c.n  (* a(2*ix(i) - 1) *)
  | Shifted -> c.n + 3 (* a(ix(i) + 3) *)

let subscript = function
  | Plain -> "ix(i)"
  | Scaled -> "2*ix(i) - 1"
  | Shifted -> "ix(i) + 3"

let src_of c =
  let m = Array.length c.idxs in
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "      program t\n";
  add "      integer i\n";
  add "      real*8 a(%d), y(%d)\n" (asize c) m;
  add "      integer ix(%d)\n" m;
  add "c$distribute a(block), y(block), ix(block)\n";
  add "      do i = 1, %d\n" (asize c);
  add "        a(i) = 0.5 * i + 1.0\n";
  add "      enddo\n";
  Array.iteri (fun i v -> add "      ix(%d) = %d\n" (i + 1) v) c.idxs;
  if c.par then add "c$doacross local(i) affinity(i) = data(y(i))\n";
  add "      do i = 1, %d\n" m;
  add "        y(i) = 3.0 * a(%s) + 0.25 * i\n" (subscript c.form);
  add "      enddo\n";
  add "      do i = 1, %d\n" m;
  add "        print *, y(i)\n";
  add "      enddo\n";
  add "      end\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* generators: the four adversarial index-vector shapes *)

let gen_case =
  QCheck.Gen.(
    let* n = int_range 4 32 in
    let* m = int_range 4 40 in
    let* form =
      frequency [ (3, return Plain); (1, return Scaled); (1, return Shifted) ]
    in
    let* par = bool in
    let* idxs =
      frequency
        [
          (* duplicates, any order *)
          (3, array_size (return m) (int_range 1 n));
          (* clustered in a 3-element window *)
          ( 2,
            let* c = int_range 1 (max 1 (n - 2)) in
            array_size (return m) (int_range c (min n (c + 2))) );
          (* full-range permutation: every element exactly once, shuffled *)
          ( 2,
            let+ l = shuffle_l (List.init n (fun i -> i + 1)) in
            Array.of_list l );
          (* descending (out-of-order w.r.t. home walk) *)
          ( 1,
            let+ a = array_size (return m) (int_range 1 n) in
            Array.sort (fun x y -> compare y x) a;
            a );
        ]
    in
    return { n; idxs; form; par })

let print_case c =
  Printf.sprintf "{n=%d; par=%b; form=%s; ix=[%s]}" c.n c.par
    (match c.form with
    | Plain -> "plain"
    | Scaled -> "scaled"
    | Shifted -> "shifted")
    (String.concat ";" (Array.to_list (Array.map string_of_int c.idxs)))

let arb_case = QCheck.make ~print:print_case gen_case

let prop_oracle =
  QCheck.Test.make ~count:60
    ~name:"inspector = naive over adversarial index vectors (shards 1 and 3)"
    arb_case
    (fun c ->
      let src = src_of c in
      let naive, _ = run ~flags:naive_flags src in
      let insp, _ = run src in
      let sharded, _ = run ~shards:3 src in
      prints naive = prints insp
      && prints insp = prints sharded
      && insp.Engine.cycles = sharded.Engine.cycles)

(* ------------------------------------------------------------------ *)
(* schedule-cache behaviour and fault injection on a 2-sweep kernel *)

let sweep_src ?(between = "") ?(sweeps = 2) () =
  Printf.sprintf
    {|      program t
      integer i, s
      real*8 a(64), y(16), t
      integer ix(16)
c$distribute a(block), y(block), ix(block)
      do i = 1, 64
        a(i) = 0.5 * i
      enddo
      do i = 1, 16
        ix(i) = mod(i * 7, 64) + 1
        y(i) = 0.0
      enddo
      do s = 1, %d
%s
c$doacross local(i) affinity(i) = data(y(i))
        do i = 1, 16
          y(i) = y(i) + a(ix(i))
        enddo
      enddo
      t = 0.0
      do i = 1, 16
        t = t + y(i)
      enddo
      print *, 'sum:', t
      end
|}
    sweeps between

let test_cache_reuse () =
  let o, rt = run (sweep_src ()) in
  check_int "one inspection across two sweeps" 1 rt.Rt.gather_inspections;
  check_int "one bulk fetch per sweep" 2 rt.Rt.gather_fetches;
  let naive, _ = run ~flags:naive_flags (sweep_src ()) in
  check_string "result matches naive" (prints naive) (prints o)

let test_index_write_invalidates () =
  (* rewriting the index array between sweeps bumps its version, so the
     second sweep must re-inspect -- and still match naive *)
  let between = "        ix(3) = mod(s * 11, 64) + 1" in
  let o, rt = run (sweep_src ~between ()) in
  check_int "re-inspects after index write" 2 rt.Rt.gather_inspections;
  let naive, _ = run ~flags:naive_flags (sweep_src ~between ()) in
  check_string "result matches naive" (prints naive) (prints o)

let test_redistribute_invalidates () =
  (* moving the target's pages mid-run goes through Rt.redistribute,
     which bumps the version: sweep 1 inspects, sweep 2 (after the
     block->cyclic move) re-inspects, sweep 3 reuses the cyclic schedule *)
  let between =
    "        if (s .eq. 2) then\nc$redistribute a(cyclic)\n        endif"
  in
  let o, rt = run (sweep_src ~between ~sweeps:3 ()) in
  check_int "re-inspects after redistribute" 2 rt.Rt.gather_inspections;
  check_int "three bulk fetches" 3 rt.Rt.gather_fetches;
  let naive, _ = run ~flags:naive_flags (sweep_src ~between ~sweeps:3 ()) in
  check_string "result matches naive" (prints naive) (prints o)

let test_gather_fail_all () =
  (* gather-fail=1: every bulk fetch fails; each execution retries the
     bounded number of times, then falls back to per-element fetches --
     results and homes unchanged *)
  let fault = Fault.make ~gather_fail:1 () in
  let o, rt = run ~fault (sweep_src ()) in
  let clean, _ = run (sweep_src ()) in
  check_string "fault-free result" (prints clean) (prints o);
  check_int "3 failed attempts per sweep" 6 rt.Rt.gather_retries;
  check_int "per-element fallback each sweep" 2 rt.Rt.gather_fallbacks

let test_gather_fail_later () =
  (* gather-fail=2: fetch 1 succeeds, everything later fails.  Sweep 2
     burns its 3 attempts (ordinals 1..3) and falls back once. *)
  let fault = Fault.make ~gather_fail:2 () in
  let o, rt = run ~fault (sweep_src ()) in
  let clean, _ = run (sweep_src ()) in
  check_string "fault-free result" (prints clean) (prints o);
  check_int "4 fetch ordinals consumed" 4 rt.Rt.gather_fetches;
  check_int "3 retries" 3 rt.Rt.gather_retries;
  check_int "1 fallback" 1 rt.Rt.gather_fallbacks

let test_fault_spec_roundtrip () =
  let t = Fault.make ~gather_fail:3 () in
  match Fault.of_spec (Fault.to_spec t) with
  | Ok t' ->
      Alcotest.(check bool) "round-trips" true (Fault.to_spec t' = Fault.to_spec t)
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "irregular"
    [
      ( "oracle",
        [ QCheck_alcotest.to_alcotest ~verbose:false prop_oracle ] );
      ( "schedule-cache",
        [
          Alcotest.test_case "reused across sweeps" `Quick test_cache_reuse;
          Alcotest.test_case "index write invalidates" `Quick
            test_index_write_invalidates;
          Alcotest.test_case "redistribute invalidates" `Quick
            test_redistribute_invalidates;
        ] );
      ( "gather-fail",
        [
          Alcotest.test_case "all fetches fail" `Quick test_gather_fail_all;
          Alcotest.test_case "later fetches fail" `Quick test_gather_fail_later;
          Alcotest.test_case "spec round-trip" `Quick test_fault_spec_roundtrip;
        ] );
    ]
