(* End-to-end tests of the VM: correctness of compiled programs, semantic
   equivalence across optimization levels, processor counts and placement
   policies, subroutine linkage, runtime error detection. *)

open Ddsm_ir
open Ddsm_frontend
open Ddsm_sema
open Ddsm_transform
open Ddsm_exec
module Config = Ddsm_machine.Config
module Pagetable = Ddsm_machine.Pagetable
module Rt = Ddsm_runtime.Rt

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let build ?(flags = Flags.all_on) ?(allow_formal_dists = false) src =
  match Parser.parse_file ~fname:"t.pf" src with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok f -> (
      match Sema.analyse_file ~allow_formal_dists f with
      | Error es -> Alcotest.failf "sema: %s" (String.concat "; " es)
      | Ok envs ->
          let routines =
            List.map
              (fun (env : Sema.env) ->
                let code = Pipeline.run flags env in
                (env.Sema.routine.Decl.rname, { Prog.env; code }))
              envs
          in
          let main =
            List.find
              (fun (env : Sema.env) -> env.Sema.routine.Decl.rkind = Decl.Program)
              envs
          in
          Prog.create routines ~main:main.Sema.routine.Decl.rname)

let run ?flags ?allow_formal_dists ?(nprocs = 4)
    ?(policy = Pagetable.First_touch) ?(checks = true) src =
  let prog = build ?flags ?allow_formal_dists src in
  let cfg = Config.scaled ~nprocs () in
  let rt = Rt.create cfg ~policy ~heap_words:(1 lsl 20) () in
  (Result.map_error Ddsm_check.Diag.to_string
     (Engine.run prog ~rt ~checks ~bounds:true ()),
   rt)

let run_ok ?flags ?allow_formal_dists ?nprocs ?policy ?checks src =
  match fst (run ?flags ?allow_formal_dists ?nprocs ?policy ?checks src) with
  | Ok o -> o
  | Error m -> Alcotest.failf "runtime error: %s" m

let prints_of o = String.concat "\n" o.Engine.prints

(* ------------------------------------------------------------------ *)
(* Basic correctness *)

let test_scalar_arithmetic () =
  let o =
    run_ok
      {|
      program p
      integer i, j
      real*8 x
      i = 7 / 2
      j = mod(17, 5)
      x = sqrt(9.0) + 2 ** 3 + max(1, 4) + min(2.5, 1.5)
      print *, i, j, x
      end
|}
  in
  Alcotest.(check string) "values" "3 2 16.5" (prints_of o)

let test_control_flow () =
  let o =
    run_ok
      {|
      program p
      integer i, acc
      acc = 0
      do i = 10, 1, -2
        acc = acc + i
      enddo
      if (acc .gt. 100) then
        print *, 'big'
      elseif (acc .eq. 30) then
        print *, 'exact', acc
      else
        print *, 'small'
      endif
      end
|}
  in
  Alcotest.(check string) "negative step + elseif" "exact 30" (prints_of o)

let test_array_roundtrip () =
  let o =
    run_ok
      {|
      program p
      integer n, i, j
      parameter (n = 8)
      real*8 a(n, n), s
      do j = 1, n
        do i = 1, n
          a(i, j) = i * 100 + j
        enddo
      enddo
      s = 0.0
      do j = 1, n
        s = s + a(j, j)
      enddo
      print *, s
      end
|}
  in
  (* sum of i*100+i for i=1..8 = 101*36 *)
  Alcotest.(check string) "diagonal sum" "3636" (prints_of o)

let stencil_src =
  {|
      program p
      integer n, i, iter
      parameter (n = 60)
      real*8 a(n), b(n), s
c$distribute_reshape a(block), b(block)
      integer k
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, n
        a(i) = i
        b(i) = n - i
      enddo
      do iter = 1, 3
c$doacross local(i) affinity(i) = data(a(i))
        do i = 2, n-1
          a(i) = (b(i-1) + b(i) + b(i+1)) / 3.0 + a(i)
        enddo
      enddo
      s = 0.0
      do k = 1, n
        s = s + a(k) * k
      enddo
      print *, s
      end
|}

let test_equivalence_across_configs () =
  (* the same program must produce identical results under every
     optimization level, processor count, and placement policy *)
  let reference = prints_of (run_ok ~flags:Flags.all_on ~nprocs:4 stencil_src) in
  List.iter
    (fun (flags, nprocs, policy) ->
      let o = run_ok ~flags ~nprocs ~policy stencil_src in
      Alcotest.(check string)
        (Printf.sprintf "nprocs=%d" nprocs)
        reference (prints_of o))
    [
      (Flags.all_off, 4, Pagetable.First_touch);
      (Flags.tile_peel, 4, Pagetable.First_touch);
      (Flags.tile_peel_hoist, 4, Pagetable.First_touch);
      ({ Flags.all_on with Flags.peel = false }, 4, Pagetable.First_touch);
      ({ Flags.all_on with Flags.interchange = false }, 4, Pagetable.First_touch);
      (Flags.all_on, 1, Pagetable.First_touch);
      (Flags.all_on, 2, Pagetable.Round_robin);
      (Flags.all_on, 7, Pagetable.First_touch);
      (Flags.all_on, 8, Pagetable.Round_robin);
      (Flags.all_off, 3, Pagetable.Round_robin);
    ]

let transpose_src =
  {|
      program p
      integer n, i, j
      parameter (n = 24)
      real*8 a(n, n), b(n, n), s
c$distribute_reshape a(*, block), b(block, *)
      do j = 1, n
        do i = 1, n
          b(i, j) = i * 1000 + j
        enddo
      enddo
c$doacross local(i, j)
      do i = 1, n
        do j = 1, n
          a(j, i) = b(i, j)
        enddo
      enddo
      s = 0.0
      do j = 1, n
        do i = 1, n
          s = s + abs(a(i, j) - (j * 1000 + i))
        enddo
      enddo
      print *, s
      end
|}

let test_transpose_correct () =
  List.iter
    (fun (flags, nprocs) ->
      let o = run_ok ~flags ~nprocs transpose_src in
      Alcotest.(check string)
        (Printf.sprintf "transpose residual (np=%d)" nprocs)
        "0" (prints_of o))
    [ (Flags.all_on, 4); (Flags.all_off, 4); (Flags.all_on, 1); (Flags.all_on, 6) ]

let conv2_src =
  {|
      program p
      integer n, i, j
      parameter (n = 20)
      real*8 a(n, n), b(n, n), s
c$distribute_reshape a(block, block), b(block, block)
      do j = 1, n
        do i = 1, n
          b(i, j) = mod(i * 7 + j * 3, 11)
          a(i, j) = 0.0
        enddo
      enddo
c$doacross nest(j, i) local(i, j) affinity(j, i) = data(a(i, j))
      do j = 2, n-1
        do i = 2, n-1
          a(i,j) = (b(i-1,j) + b(i,j-1) + b(i,j) + b(i,j+1) + b(i+1,j)) / 5.0
        enddo
      enddo
      s = 0.0
      do j = 1, n
        do i = 1, n
          s = s + a(i, j) * (i + 2 * j)
        enddo
      enddo
      print *, s
      end
|}

let test_conv2_all_configs_agree () =
  let reference = prints_of (run_ok ~flags:Flags.all_off ~nprocs:1 conv2_src) in
  List.iter
    (fun (flags, nprocs) ->
      let o = run_ok ~flags ~nprocs conv2_src in
      Alcotest.(check string)
        (Printf.sprintf "2-level conv np=%d" nprocs)
        reference (prints_of o))
    [
      (Flags.all_on, 1); (Flags.all_on, 2); (Flags.all_on, 4); (Flags.all_on, 8);
      (Flags.all_off, 4); (Flags.tile_peel, 6);
    ]

let test_cyclic_dists_agree () =
  let src =
    {|
      program p
      integer n, i
      parameter (n = 37)
      real*8 a(n), s
c$distribute_reshape a(cyclic(3))
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, n
        a(i) = i * i
      enddo
      s = 0.0
      do i = 1, n
        s = s + a(i)
      enddo
      print *, s
      end
|}
  in
  let r1 = prints_of (run_ok ~flags:Flags.all_off ~nprocs:1 src) in
  List.iter
    (fun nprocs ->
      Alcotest.(check string)
        (Printf.sprintf "cyclic(3) np=%d" nprocs)
        r1
        (prints_of (run_ok ~nprocs src)))
    [ 2; 4; 5 ]

let test_regular_dist_and_redistribute () =
  let src =
    {|
      program p
      integer n, i
      parameter (n = 64)
      real*8 a(n), s
c$distribute a(block)
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, n
        a(i) = i
      enddo
c$redistribute a(cyclic)
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, n
        a(i) = a(i) + 1
      enddo
      s = 0.0
      do i = 1, n
        s = s + a(i)
      enddo
      print *, s
      end
|}
  in
  let o = run_ok ~nprocs:4 src in
  (* sum (i+1) for 1..64 = 2080+64 = 2144... sum i = 2080, +64 -> 2144 *)
  Alcotest.(check string) "redistribute result" "2144" (prints_of o)

(* ------------------------------------------------------------------ *)
(* Subroutines *)

let portion_src =
  {|
      subroutine scale5(x, f)
      real*8 x(5), f
      integer k
      do k = 1, 5
        x(k) = x(k) * f
      enddo
      return
      end

      program p
      integer i
      real*8 a(1000), f, s
c$distribute_reshape a(cyclic(5))
      do i = 1, 1000
        a(i) = 1.0
      enddo
      f = 2.0
      do i = 1, 1000, 5
        call scale5(a(i), f)
      enddo
      s = 0.0
      do i = 1, 1000
        s = s + a(i)
      enddo
      print *, s
      end
|}

let test_portion_passing () =
  (* the paper's §3.2.1 example: each call receives one 5-element portion *)
  let o = run_ok ~nprocs:4 portion_src in
  Alcotest.(check string) "all elements scaled" "2000" (prints_of o)

let test_portion_overflow_detected () =
  (* formal declared larger than the portion: the §6 runtime check fires *)
  let src =
    {|
      subroutine bad(x)
      real*8 x(6)
      integer k
      do k = 1, 6
        x(k) = 0.0
      enddo
      end

      program p
      real*8 a(1000)
c$distribute_reshape a(cyclic(5))
      integer i
      do i = 1, 1000
        a(i) = 1.0
      enddo
      call bad(a(1))
      end
|}
  in
  (match fst (run ~nprocs:4 src) with
  | Error m ->
      check_bool "message mentions the portion" true
        (String.length m > 0
        && (let has_sub s sub =
              let n = String.length sub in
              let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
              go 0
            in
            has_sub m "portion"))
  | Ok _ -> Alcotest.fail "expected a runtime argument-check error");
  (* with checks disabled the (incorrect) program runs to completion *)
  match fst (run ~nprocs:4 ~checks:false src) with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "checks off should not flag: %s" m

let test_whole_plain_array_passing () =
  let src =
    {|
      subroutine fill(x, m, v)
      integer m
      real*8 x(m, m), v
      integer i, j
      do j = 1, m
        do i = 1, m
          x(i, j) = v + i + j
        enddo
      enddo
      end

      program p
      integer n
      parameter (n = 6)
      real*8 a(n, n), s
      integer i, j
      call fill(a, n, 100.0)
      s = 0.0
      do j = 1, n
        do i = 1, n
          s = s + a(i, j)
        enddo
      enddo
      print *, s
      end
|}
  in
  (* sum over 6x6 of 100+i+j = 3600 + 2*6*21 = 3852 *)
  Alcotest.(check string) "adjustable formal" "3852" (prints_of (run_ok src))

let test_whole_reshaped_with_propagated_clone () =
  (* simulate what the pre-linker produces: the callee carries the
     propagated distribute_reshape on its formal *)
  let src =
    {|
      subroutine init(x, n)
      integer n
      real*8 x(64, 64)
c$distribute_reshape x(block, block)
      integer i, j
c$doacross nest(j, i) local(i, j) affinity(j, i) = data(x(i, j))
      do j = 1, 64
        do i = 1, 64
          x(i, j) = i + j
        enddo
      enddo
      end

      program p
      real*8 a(64, 64), s
c$distribute_reshape a(block, block)
      integer i, j, n
      n = 64
      call init(a, n)
      s = 0.0
      do j = 1, 64
        do i = 1, 64
          s = s + a(i, j)
        enddo
      enddo
      print *, s
      end
|}
  in
  let o = run_ok ~allow_formal_dists:true ~nprocs:4 src in
  (* sum of i+j over 64x64 = 2 * 64 * (64*65/2) = 266240 *)
  Alcotest.(check string) "clone-style whole pass" "266240" (prints_of o)

let test_whole_reshaped_shape_mismatch_detected () =
  let src =
    {|
      subroutine touch(x)
      real*8 x(32, 64)
c$distribute_reshape x(block, block)
      x(1, 1) = 0.0
      end

      program p
      real*8 a(64, 64)
c$distribute_reshape a(block, block)
      a(1, 1) = 1.0
      call touch(a)
      end
|}
  in
  match fst (run ~allow_formal_dists:true ~nprocs:4 src) with
  | Error m ->
      check_bool "mentions exact match" true
        (let has_sub s sub =
           let n = String.length sub in
           let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
           go 0
         in
         has_sub m "match")
  | Ok _ -> Alcotest.fail "expected shape-mismatch runtime error"

(* ------------------------------------------------------------------ *)
(* dsm intrinsics & misc *)

let test_whole_regular_array_passing () =
  (* a regular-distributed array passed whole is a plain view in the callee
     (no cloning needed; placement is unaffected) *)
  let src =
    {|
      subroutine sum2(x, n, r)
      integer n
      real*8 x(n), r
      integer k
      r = 0.0
      do k = 1, n
        r = r + x(k)
      enddo
      print *, r
      end

      program p
      integer n, i
      parameter (n = 96)
      real*8 a(n), r
c$distribute a(block)
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, n
        a(i) = 2.0
      enddo
      call sum2(a, n, r)
      end
|}
  in
  Alcotest.(check string) "sum via plain view" "192" (prints_of (run_ok ~nprocs:4 src))

let test_cyclic_k_stencil () =
  (* cyclic(5) with neighbours crossing chunk boundaries exercises the
     chunked affinity schedule plus general Table 1 addressing *)
  let src =
    {|
      program p
      integer n, i
      parameter (n = 83)
      real*8 a(n), b(n), s
c$distribute_reshape a(cyclic(5)), b(cyclic(5))
      do i = 1, n
        b(i) = mod(i * 11, 19)
        a(i) = 0.0
      enddo
c$doacross local(i) affinity(i) = data(a(i))
      do i = 2, n-1
        a(i) = b(i-1) + b(i) * 2.0 + b(i+1)
      enddo
      s = 0.0
      do i = 1, n
        s = s + a(i) * i
      enddo
      print *, s
      end
|}
  in
  let reference = prints_of (run_ok ~flags:Flags.all_off ~nprocs:1 src) in
  List.iter
    (fun nprocs ->
      Alcotest.(check string)
        (Printf.sprintf "cyclic(5) stencil np=%d" nprocs)
        reference
        (prints_of (run_ok ~nprocs src)))
    [ 2; 4; 7 ]

let test_affinity_on_star_dim () =
  (* an affinity variable whose subscript lands on a '*' dimension is a
     vacuous constraint: that loop runs in full on every worker while the
     other nest variable stays distributed *)
  let src =
    {|
      program p
      integer n, i, j
      parameter (n = 24)
      real*8 a(n, n), s
c$distribute_reshape a(*, block)
c$doacross nest(i, j) local(i, j) affinity(i, j) = data(a(i, j))
      do i = 1, n
        do j = 1, n
          a(i, j) = i + j * 100
        enddo
      enddo
      s = 0.0
      do j = 1, n
        do i = 1, n
          s = s + a(i, j)
        enddo
      enddo
      print *, s
      end
|}
  in
  let reference = prints_of (run_ok ~flags:Flags.all_off ~nprocs:1 src) in
  List.iter
    (fun nprocs ->
      Alcotest.(check string)
        (Printf.sprintf "star-affinity np=%d" nprocs)
        reference
        (prints_of (run_ok ~nprocs src)))
    [ 1; 4; 8 ]

let test_affinity_constant_sub_pins_owner () =
  (* regression: data(a(i, 1)) with a column distribution pins all
     iterations to the owner of column 1 — without the pin every worker
     would duplicate the loop and corrupt the result *)
  let src =
    {|
      program p
      integer n, i, j
      parameter (n = 24)
      real*8 a(n, n), s
c$distribute a(*, block)
      do j = 1, n
        do i = 1, n
          a(i, j) = 1.0
        enddo
      enddo
c$doacross local(i, j) affinity(i) = data(a(i, 1))
      do i = 1, n
        do j = 2, n
          a(i, j) = a(i, j) + a(i, j-1)
        enddo
      enddo
      s = 0.0
      do j = 1, n
        s = s + a(1, j)
      enddo
      print *, s
      end
|}
  in
  let reference = prints_of (run_ok ~flags:Flags.all_off ~nprocs:1 src) in
  List.iter
    (fun nprocs ->
      Alcotest.(check string)
        (Printf.sprintf "pinned nest np=%d" nprocs)
        reference
        (prints_of (run_ok ~nprocs src)))
    [ 2; 4; 8 ]

let test_redistribute_2d_phase_change () =
  (* regression: after c$redistribute changes WHICH dimension is
     distributed, the affinity schedules must decompose the worker grid at
     run time (ADI-style phase change, paper §3.3) *)
  let src =
    {|
      program adi
      integer n, i, j, it
      parameter (n = 16)
      real*8 a(n, n)
c$distribute a(*, block)
      do j = 1, n
        do i = 1, n
          a(i, j) = i + j
        enddo
      enddo
c$doacross local(i, j) affinity(j) = data(a(1, j))
      do j = 1, n
        do i = 2, n
          a(i, j) = a(i, j) + a(i-1, j) * 0.5
        enddo
      enddo
c$redistribute a(block, *)
c$doacross local(i, j) affinity(i) = data(a(i, 1))
      do i = 1, n
        do j = 2, n
          a(i, j) = a(i, j) + a(i, j-1) * 0.5
        enddo
      enddo
      print *, a(n, n)
      end
|}
  in
  let reference = prints_of (run_ok ~flags:Flags.all_off ~nprocs:1 src) in
  List.iter
    (fun nprocs ->
      Alcotest.(check string)
        (Printf.sprintf "2d redistribute np=%d" nprocs)
        reference
        (prints_of (run_ok ~nprocs src)))
    [ 2; 4; 8; 16 ]

let test_dsm_intrinsics () =
  let o =
    run_ok ~nprocs:4
      {|
      program p
      integer n
      parameter (n = 64)
      real*8 a(n)
c$distribute a(block)
      integer b, np
      np = dsm_numprocs(a, 1)
      b = dsm_chunksize(a, 1)
      print *, np, b, dsm_owner(a, 1, 17), dsm_nprocs()
      end
|}
  in
  Alcotest.(check string) "inquiries" "4 16 1 4" (prints_of o);
  (* distribution kind tracks redistribution *)
  let o =
    run_ok ~nprocs:4
      {|
      program p
      real*8 a(64)
c$distribute a(block)
      integer k1, k2
      k1 = dsm_distribution(a, 1)
c$redistribute a(cyclic)
      k2 = dsm_distribution(a, 1)
      print *, k1, k2, dsm_isreshaped(a)
      end
|}
  in
  Alcotest.(check string) "kind codes across redistribute" "1 2 0" (prints_of o)

let test_bounds_check () =
  let src =
    {|
      program p
      integer i
      real*8 a(10)
      i = 11
      a(i) = 1.0
      end
|}
  in
  match fst (run src) with
  | Error m ->
      check_bool "bounds message" true (String.length m > 0)
  | Ok _ -> Alcotest.fail "expected bounds error"

let test_cycle_limit () =
  let prog =
    build {|
      program p
      integer i
      real*8 x
      x = 0.0
      do i = 1, 100000000
        x = x + 1.0
      enddo
      end
|}
  in
  let cfg = Config.scaled ~nprocs:1 () in
  let rt = Rt.create cfg ~policy:Pagetable.First_touch ~heap_words:65536 () in
  match Engine.run prog ~rt ~max_cycles:100_000 () with
  | Error d -> (
      match d.Ddsm_check.Diag.reason with
      | Ddsm_check.Diag.Cycle_budget { limit } ->
          check_int "budget echoed" 100_000 limit
      | _ -> Alcotest.failf "wrong reason: %s" (Ddsm_check.Diag.headline d))
  | Ok _ -> Alcotest.fail "expected cycle-limit error"

let test_cycles_monotone_with_work () =
  let mk n =
    Printf.sprintf
      {|
      program p
      integer i
      real*8 a(%d)
      do i = 1, %d
        a(i) = i
      enddo
      end
|}
      n n
  in
  let c1 = (run_ok ~nprocs:1 (mk 64)).Engine.cycles in
  let c2 = (run_ok ~nprocs:1 (mk 512)).Engine.cycles in
  check_bool "more work costs more cycles" true (c2 > c1 * 4)

let test_parallel_speedup_exists () =
  (* embarrassingly parallel reshaped update: 8 procs must beat 1 proc *)
  let src =
    {|
      program p
      integer n, i, it
      parameter (n = 512)
      real*8 a(n)
c$distribute_reshape a(block)
      do it = 1, 4
c$doacross local(i) affinity(i) = data(a(i))
        do i = 1, n
          a(i) = a(i) * 1.5 + 2.0
        enddo
      enddo
      end
|}
  in
  let c1 = (run_ok ~flags:Flags.all_on ~nprocs:1 src).Engine.cycles in
  let c8 = (run_ok ~flags:Flags.all_on ~nprocs:8 src).Engine.cycles in
  check_bool
    (Printf.sprintf "speedup (1p=%d, 8p=%d)" c1 c8)
    true
    (float_of_int c1 /. float_of_int c8 > 3.0)

let test_optimization_reduces_cycles () =
  (* Table 2's dynamics: unoptimized reshaped code is much slower *)
  let src = stencil_src in
  let on = (run_ok ~flags:Flags.all_on ~nprocs:1 src).Engine.cycles in
  let off = (run_ok ~flags:Flags.all_off ~nprocs:1 src).Engine.cycles in
  check_bool
    (Printf.sprintf "all_on=%d all_off=%d" on off)
    true
    (float_of_int off /. float_of_int on > 1.3)

let test_doacross_in_serial_loop () =
  (* regression: hoisting must not move myp$/np$ expressions of the
     scheduling prologue out of an enclosing serial loop (across the Par
     boundary, where the reserved variables are unbound) *)
  let src =
    {|
      program p
      integer n, i, it
      parameter (n = 97)
      real*8 a(n), s
      do it = 1, 3
c$doacross local(i)
        do i = 1, n
          a(i) = a(i) + 1.0
        enddo
      enddo
      s = 0.0
      do i = 1, n
        s = s + a(i)
      enddo
      print *, s
      end
|}
  in
  List.iter
    (fun (flags, nprocs) ->
      Alcotest.(check string)
        (Printf.sprintf "np=%d all iterations execute" nprocs)
        "291"
        (prints_of (run_ok ~flags ~nprocs src)))
    [ (Flags.all_on, 8); (Flags.all_on, 3); (Flags.all_off, 8) ]

let test_skewed_loop_correct () =
  (* §7.1 skewing must preserve semantics for symbolic offsets *)
  let src =
    {|
      program p
      integer n, i, k
      parameter (n = 60)
      real*8 a(n), s
c$distribute_reshape a(block)
      do i = 1, n
        a(i) = 0.0
      enddo
      k = 4
      do i = 1, n - 2*k
        a(i + 2*k) = i
      enddo
      s = 0.0
      do i = 1, n
        s = s + a(i) * i
      enddo
      print *, s
      end
|}
  in
  let reference = prints_of (run_ok ~flags:Flags.all_off ~nprocs:1 src) in
  List.iter
    (fun nprocs ->
      Alcotest.(check string)
        (Printf.sprintf "skewed np=%d" nprocs)
        reference
        (prints_of (run_ok ~flags:Flags.all_on ~nprocs src)))
    [ 1; 4; 8 ]

let test_onto_clause () =
  (* onto(2,1) forces an 8-proc grid to 4x2 instead of the default 
     even split *)
  let src =
    {|
      program p
      integer i, j
      real*8 a(32, 32), s
c$distribute_reshape a(block, block) onto(2, 1)
      integer p1, p2
      p1 = dsm_numprocs(a, 1)
      p2 = dsm_numprocs(a, 2)
c$doacross nest(j, i) local(i, j) affinity(j, i) = data(a(i, j))
      do j = 1, 32
        do i = 1, 32
          a(i, j) = i * j
        enddo
      enddo
      s = 0.0
      do j = 1, 32
        do i = 1, 32
          s = s + a(i, j)
        enddo
      enddo
      print *, p1, p2, s
      end
|}
  in
  let o = run_ok ~nprocs:8 src in
  (* sum(i*j) = (32*33/2)^2 = 278784 *)
  Alcotest.(check string) "grid 4x2, correct sum" "4 2 278784" (prints_of o)

let test_interleave_schedtype () =
  let src =
    {|
      program p
      integer n, i
      parameter (n = 97)
      real*8 a(n), s
c$doacross local(i) schedtype(interleave)
      do i = 1, n
        a(i) = i
      enddo
      s = 0.0
      do i = 1, n
        s = s + a(i)
      enddo
      print *, s
      end
|}
  in
  List.iter
    (fun nprocs ->
      Alcotest.(check string)
        (Printf.sprintf "interleave np=%d" nprocs)
        "4753"
        (prints_of (run_ok ~nprocs src)))
    [ 1; 3; 8 ]

let test_interleave_chunked () =
  let src =
    {|
      program p
      integer n, i
      parameter (n = 101)
      real*8 a(n), s
c$doacross local(i) schedtype(interleave(4))
      do i = 1, n
        a(i) = i * 2
      enddo
      s = 0.0
      do i = 1, n
        s = s + a(i)
      enddo
      print *, s
      end
|}
  in
  List.iter
    (fun nprocs ->
      Alcotest.(check string)
        (Printf.sprintf "interleave(4) np=%d" nprocs)
        "10302"
        (prints_of (run_ok ~nprocs src)))
    [ 1; 4; 6 ]

let test_dsm_portion_bounds () =
  (* dsm_this_lo/hi inside a parallel region describe the worker's portion *)
  let src =
    {|
      program p
      integer n, i
      parameter (n = 64)
      real*8 a(n), s
c$distribute_reshape a(block)
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, n
        a(i) = dsm_this_hi(a, 1) - dsm_this_lo(a, 1) + 1
      enddo
      s = 0.0
      do i = 1, n
        s = s + a(i)
      enddo
      print *, s
      end
|}
  in
  (* with 4 procs, every element records its 16-wide portion: sum = 64*16 *)
  Alcotest.(check string) "portion widths" "1024" (prints_of (run_ok ~nprocs:4 src))

let test_scalar_args_by_value () =
  (* documented deviation from Fortran: scalar arguments pass by value, so
     assignments to a scalar formal do not reach the caller *)
  let src =
    {|
      subroutine bump(x)
      real*8 x
      x = x + 1.0
      end

      program p
      real*8 v
      v = 5.0
      call bump(v)
      print *, v
      end
|}
  in
  Alcotest.(check string) "caller value unchanged" "5" (prints_of (run_ok src))

let test_heap_exhaustion_reported () =
  let prog =
    build {|
      program p
      real*8 a(100000)
      a(1) = 1.0
      end
|}
  in
  let cfg = Config.scaled ~nprocs:1 () in
  let rt = Rt.create cfg ~policy:Pagetable.First_touch ~heap_words:1024 () in
  match Engine.run prog ~rt () with
  | Error d ->
      check_bool "reported as a user resource error, not internal" false
        (Ddsm_check.Diag.is_internal d);
      check_bool "message" true
        (String.length (Ddsm_check.Diag.headline d) > 0)
  | Ok _ -> Alcotest.fail "expected out-of-memory"

let test_counters_populated () =
  let o = run_ok ~nprocs:4 transpose_src in
  let c = o.Engine.counters in
  check_bool "accesses recorded" true (Ddsm_machine.Counters.accesses c > 1000);
  check_bool "l2 misses happen" true (c.Ddsm_machine.Counters.l2_misses > 0);
  check_int "per-proc array sized" 4 (Array.length o.Engine.per_proc)

let () =
  Alcotest.run "exec"
    [
      ( "basics",
        [
          Alcotest.test_case "scalar arithmetic & intrinsics" `Quick test_scalar_arithmetic;
          Alcotest.test_case "control flow" `Quick test_control_flow;
          Alcotest.test_case "plain arrays" `Quick test_array_roundtrip;
        ] );
      ( "distribution semantics",
        [
          Alcotest.test_case "stencil equivalent across configs" `Quick
            test_equivalence_across_configs;
          Alcotest.test_case "reshaped transpose" `Quick test_transpose_correct;
          Alcotest.test_case "2-level convolution" `Quick test_conv2_all_configs_agree;
          Alcotest.test_case "cyclic(3)" `Quick test_cyclic_dists_agree;
          Alcotest.test_case "regular + redistribute" `Quick test_regular_dist_and_redistribute;
        ] );
      ( "subroutines",
        [
          Alcotest.test_case "portion passing (cyclic(5))" `Quick test_portion_passing;
          Alcotest.test_case "portion overflow detected" `Quick test_portion_overflow_detected;
          Alcotest.test_case "whole plain array, adjustable" `Quick test_whole_plain_array_passing;
          Alcotest.test_case "whole reshaped via clone" `Quick test_whole_reshaped_with_propagated_clone;
          Alcotest.test_case "whole regular array" `Quick test_whole_regular_array_passing;
          Alcotest.test_case "cyclic(5) stencil" `Quick test_cyclic_k_stencil;
          Alcotest.test_case "affinity on star dimension" `Quick test_affinity_on_star_dim;
          Alcotest.test_case "constant affinity subscript pins owner" `Quick
            test_affinity_constant_sub_pins_owner;
          Alcotest.test_case "2-D redistribute phase change" `Quick
            test_redistribute_2d_phase_change;
          Alcotest.test_case "reshaped shape mismatch" `Quick test_whole_reshaped_shape_mismatch_detected;
        ] );
      ( "machine integration",
        [
          Alcotest.test_case "dsm inquiry intrinsics" `Quick test_dsm_intrinsics;
          Alcotest.test_case "bounds checking" `Quick test_bounds_check;
          Alcotest.test_case "cycle limit" `Quick test_cycle_limit;
          Alcotest.test_case "cycles scale with work" `Quick test_cycles_monotone_with_work;
          Alcotest.test_case "parallel speedup" `Quick test_parallel_speedup_exists;
          Alcotest.test_case "optimizations reduce cycles" `Quick test_optimization_reduces_cycles;
          Alcotest.test_case "counters populated" `Quick test_counters_populated;
          Alcotest.test_case "doacross in serial loop (hoist regression)" `Quick
            test_doacross_in_serial_loop;
          Alcotest.test_case "skewed loop semantics" `Quick test_skewed_loop_correct;
          Alcotest.test_case "onto clause" `Quick test_onto_clause;
          Alcotest.test_case "interleave schedtype" `Quick test_interleave_schedtype;
          Alcotest.test_case "chunked interleave" `Quick test_interleave_chunked;
          Alcotest.test_case "dsm portion bounds" `Quick test_dsm_portion_bounds;
          Alcotest.test_case "heap exhaustion" `Quick test_heap_exhaustion_reported;
          Alcotest.test_case "scalars pass by value" `Quick test_scalar_args_by_value;
        ] );
    ]
