(* Tests for the shadow-file / pre-linker machinery (paper §5) and the
   link-time common-block checks (§6): signatures, cloning, propagation down
   call chains, and end-to-end execution of linked multi-file programs. *)

open Ddsm_frontend
open Ddsm_linker
open Ddsm_exec
module K = Ddsm_dist.Kind
module Sema = Ddsm_sema.Sema
module Config = Ddsm_machine.Config
module Pagetable = Ddsm_machine.Pagetable
module Rt = Ddsm_runtime.Rt

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let parse name src =
  match Parser.parse_file ~fname:name src with
  | Ok f -> f
  | Error e -> Alcotest.failf "parse %s: %s" name e

let obj ?flags name src =
  match Objfile.compile ?flags (parse name src) with
  | Ok o -> o
  | Error es -> Alcotest.failf "compile %s: %s" name (String.concat "; " es)

let link_ok objs =
  match Prelink.link objs with
  | Ok l -> l
  | Error es -> Alcotest.failf "link: %s" (String.concat "; " es)

let link_err ~expect objs =
  match Prelink.link objs with
  | Ok _ -> Alcotest.failf "expected link error mentioning %S" expect
  | Error es ->
      let has_sub s sub =
        let n = String.length sub in
        let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      check_bool
        (Printf.sprintf "errors %s mention %S" (String.concat ";" es) expect)
        true
        (List.exists (fun e -> has_sub e expect) es)

let run_linked ?(nprocs = 4) l =
  let routines =
    List.map (fun (n, env, code) -> (n, { Prog.env; code })) l.Prelink.routines
  in
  let prog = Prog.create routines ~main:l.Prelink.main in
  let cfg = Config.scaled ~nprocs () in
  let rt = Rt.create cfg ~policy:Pagetable.First_touch ~heap_words:(1 lsl 20) () in
  match Engine.run prog ~rt ~bounds:true () with
  | Ok o -> String.concat "\n" o.Engine.prints
  | Error m -> Alcotest.failf "run: %s" (Ddsm_check.Diag.to_string m)

(* ------------------------------------------------------------------ *)
(* Signatures *)

let test_sig_roundtrip () =
  let sigs : Sig_.t list =
    [
      [];
      [ None; None ];
      [ Some { Sig_.kinds = [ K.Block; K.Star ]; onto = None }; None ];
      [ Some { Sig_.kinds = [ K.Cyclic_k 5 ]; onto = None } ];
      [ Some { Sig_.kinds = [ K.Block; K.Block ]; onto = Some [ 2; 1 ] } ];
    ]
  in
  List.iter
    (fun s ->
      match Sig_.of_string (Sig_.to_string s) with
      | Ok s' -> check_bool (Sig_.to_string s) true (Sig_.equal s s')
      | Error e -> Alcotest.fail e)
    sigs;
  check_bool "trivial" true (Sig_.is_trivial [ None; None ]);
  check_str "trivial mangle unchanged" "f" (Sig_.mangle "f" [ None ]);
  let m =
    Sig_.mangle "f" [ Some { Sig_.kinds = [ K.Block; K.Star ]; onto = None } ]
  in
  check_bool "mangled distinct" true (m <> "f");
  let m2 =
    Sig_.mangle "f" [ Some { Sig_.kinds = [ K.Cyclic; K.Star ]; onto = None } ]
  in
  check_bool "different dists mangle differently" true (m <> m2)

(* ------------------------------------------------------------------ *)
(* Shadow files *)

let test_shadow_roundtrip () =
  let s = Shadow.empty () in
  Shadow.add_def s "main" [];
  Shadow.add_def s "sub" [ None; None ];
  Shadow.add_call s "sub" [ Some { Sig_.kinds = [ K.Block ]; onto = None }; None ];
  Shadow.add_request s "sub" [ Some { Sig_.kinds = [ K.Block ]; onto = None }; None ];
  Shadow.add_common s ~block:"blk" ~routine:"main"
    [
      { Shadow.cm_name = "a"; cm_offset = 0; cm_shape = [ 10; 10 ];
        cm_dist = Some { Sig_.kinds = [ K.Block; K.Star ]; onto = None } };
      { Shadow.cm_name = "b"; cm_offset = 100; cm_shape = [ 50 ]; cm_dist = None };
    ];
  match Shadow.of_string (Shadow.to_string s) with
  | Error e -> Alcotest.fail e
  | Ok s' ->
      check_int "defs" 2 (List.length s'.Shadow.defs);
      check_int "calls" 1 (List.length s'.Shadow.calls);
      check_int "requests" 1 (List.length s'.Shadow.requests);
      check_int "commons" 1 (List.length s'.Shadow.commons);
      let _, _, ms = List.hd s'.Shadow.commons in
      check_int "members" 2 (List.length ms);
      check_bool "reshaped member dist survives" true
        ((List.hd ms).Shadow.cm_dist <> None)

let test_shadow_file_io () =
  let dir = Filename.temp_file "ddsm" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let s = Shadow.empty () in
  Shadow.add_def s "f" [];
  let path = Filename.concat dir "x.pfs" in
  Shadow.save s ~path;
  (match Shadow.load ~path with
  | Ok s' -> check_int "defs" 1 (List.length s'.Shadow.defs)
  | Error e -> Alcotest.fail e);
  Sys.remove path;
  Unix.rmdir dir

(* ------------------------------------------------------------------ *)
(* Objfile *)

let lib_src =
  {|
      subroutine daxpy(x, y, n, f)
      integer n
      real*8 x(n), y(n), f
      integer k
      do k = 1, n
        y(k) = y(k) + f * x(k)
      enddo
      end
|}

let main_src =
  {|
      program p
      integer n, i
      parameter (n = 128)
      real*8 a(n), b(n), s
c$distribute_reshape a(block), b(block)
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, n
        a(i) = 1.0
        b(i) = i
      enddo
      call daxpy(a, b, n, 2.0)
      s = 0.0
      do i = 1, n
        s = s + b(i)
      enddo
      print *, s
      end
|}

let test_objfile_shadow_contents () =
  let o = obj "main.pf" main_src in
  let s = o.Objfile.shadow in
  check_bool "def main" true (List.mem_assoc "p" s.Shadow.defs);
  (* the call passes two whole reshaped arrays *)
  (match s.Shadow.calls with
  | [ ("daxpy", sg) ] ->
      check_bool "two reshaped args" true
        (match sg with
        | [ Some _; Some _; None; None ] -> true
        | _ -> false)
  | _ -> Alcotest.fail "expected one recorded call");
  check_int "no requests yet" 0 (List.length s.Shadow.requests)

let test_objfile_save_load () =
  let dir = Filename.temp_file "ddsm" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let o = obj "main.pf" main_src in
  let path = Filename.concat dir "main.pfo" in
  Objfile.save o ~path;
  check_bool "shadow written alongside" true
    (Sys.file_exists (Filename.concat dir "main.pfs"));
  (match Objfile.load ~path with
  | Ok o' ->
      check_int "units preserved" (List.length o.Objfile.units)
        (List.length o'.Objfile.units)
  | Error e -> Alcotest.fail e);
  Sys.remove path;
  Sys.remove (Filename.concat dir "main.pfs");
  Unix.rmdir dir

(* ------------------------------------------------------------------ *)
(* Pre-linker: cloning *)

let test_clone_created_and_runs () =
  let l = link_ok [ obj "main.pf" main_src; obj "lib.pf" lib_src ] in
  check_int "one clone" 1 (List.length l.Prelink.clones);
  let orig, clone = List.hd l.Prelink.clones in
  check_str "of daxpy" "daxpy" orig;
  check_bool "mangled name" true (clone <> "daxpy");
  check_bool "clone linked" true
    (List.exists (fun (n, _, _) -> n = clone) l.Prelink.routines);
  check_bool "recompilation counted" true (l.Prelink.recompilations >= 1);
  (* b(k) = k + 2*1 summed over 1..128 = 8256 + 256 = 8512 *)
  check_str "linked program computes correctly" "8512" (run_linked l)

let test_two_distributions_two_clones () =
  let main2 =
    {|
      program p
      integer n, i
      parameter (n = 60)
      real*8 a(n), b(n), c(n), d(n), s
c$distribute_reshape a(block), b(block)
c$distribute_reshape c(cyclic), d(cyclic)
      do i = 1, n
        a(i) = 1.0
        b(i) = 0.0
        c(i) = 2.0
        d(i) = 0.0
      enddo
      call daxpy(a, b, n, 3.0)
      call daxpy(c, d, n, 5.0)
      s = 0.0
      do i = 1, n
        s = s + b(i) + d(i)
      enddo
      print *, s
      end
|}
  in
  let l = link_ok [ obj "main.pf" main2; obj "lib.pf" lib_src ] in
  check_int "two distinct clones" 2 (List.length l.Prelink.clones);
  (* 60*3 + 60*10 = 780 *)
  check_str "both clones compute" "780" (run_linked l)

let test_propagation_down_chain () =
  (* main -> outer -> inner: the reshape directive propagates two levels *)
  let chain =
    {|
      subroutine inner(x, n)
      integer n
      real*8 x(n)
      integer k
      do k = 1, n
        x(k) = x(k) + 1.0
      enddo
      end

      subroutine outer(x, n)
      integer n
      real*8 x(n)
      call inner(x, n)
      call inner(x, n)
      end
|}
  in
  let main3 =
    {|
      program p
      integer n, i
      parameter (n = 64)
      real*8 a(n), s
c$distribute_reshape a(block)
      do i = 1, n
        a(i) = 0.0
      enddo
      call outer(a, n)
      s = 0.0
      do i = 1, n
        s = s + a(i)
      enddo
      print *, s
      end
|}
  in
  let l = link_ok [ obj "main.pf" main3; obj "chain.pf" chain ] in
  check_int "clones of outer and inner" 2 (List.length l.Prelink.clones);
  check_bool "both originals cloned" true
    (List.mem "outer" (List.map fst l.Prelink.clones)
    && List.mem "inner" (List.map fst l.Prelink.clones));
  check_str "propagated execution" "128" (run_linked l)

let test_same_signature_shares_clone () =
  let main4 =
    {|
      program p
      integer n, i
      parameter (n = 40)
      real*8 a(n), b(n), s
c$distribute_reshape a(block), b(block)
      do i = 1, n
        a(i) = 1.0
        b(i) = 1.0
      enddo
      call bump(a, n)
      call bump(b, n)
      s = 0.0
      do i = 1, n
        s = s + a(i) + b(i)
      enddo
      print *, s
      end

      subroutine bump(x, n)
      integer n
      real*8 x(n)
      integer k
      do k = 1, n
        x(k) = x(k) * 2.0
      enddo
      end
|}
  in
  let l = link_ok [ obj "main.pf" main4 ] in
  check_int "one shared clone for both call sites" 1 (List.length l.Prelink.clones);
  check_str "result" "160" (run_linked l)

(* ------------------------------------------------------------------ *)
(* Link-time errors *)

let test_clone_with_onto_signature () =
  (* the onto clause is part of the distribution signature: two calls with
     different onto grids need two clones *)
  let src =
    {|
      program p
      integer i, j
      real*8 a(16, 16), b(16, 16), s
c$distribute_reshape a(block, block) onto(2, 1)
c$distribute_reshape b(block, block) onto(1, 2)
      do j = 1, 16
        do i = 1, 16
          a(i, j) = 1.0
          b(i, j) = 2.0
        enddo
      enddo
      call halve(a)
      call halve(b)
      s = 0.0
      do j = 1, 16
        do i = 1, 16
          s = s + a(i, j) + b(i, j)
        enddo
      enddo
      print *, s
      end

      subroutine halve(x)
      real*8 x(16, 16)
      integer i, j
      do j = 1, 16
        do i = 1, 16
          x(i, j) = x(i, j) / 2.0
        enddo
      enddo
      end
|}
  in
  let l = link_ok [ obj "p.pf" src ] in
  check_int "two clones (onto differs)" 2 (List.length l.Prelink.clones);
  (* 256 * (0.5 + 1.0) = 384 *)
  check_str "result" "384" (run_linked ~nprocs:8 l)

let test_stale_request_pruned () =
  (* a request left in the shadow by a previous link whose call site has
     been removed must be dropped (§5) *)
  let lib = obj "lib.pf" lib_src in
  let stale_sig : Sig_.t =
    [ Some { Sig_.kinds = [ K.Cyclic ]; onto = None }; None; None; None ]
  in
  Shadow.add_request lib.Objfile.shadow "daxpy" stale_sig;
  let main = obj "main.pf" main_src in
  let _ = link_ok [ main; lib ] in
  check_bool "stale request removed" true
    (not (List.mem ("daxpy", stale_sig) lib.Objfile.shadow.Shadow.requests))

let test_unresolved_routine () =
  link_err ~expect:"unresolved"
    [ obj "main.pf" "      program p\n      call nowhere(1)\n      end\n" ]

let test_no_or_multiple_mains () =
  link_err ~expect:"no program unit" [ obj "lib.pf" lib_src ];
  link_err ~expect:"multiple program units"
    [
      obj "a.pf" "      program p1\n      print *, 1\n      end\n";
      obj "b.pf" "      program p2\n      print *, 2\n      end\n";
    ]

let test_duplicate_routine () =
  link_err ~expect:"more than one file"
    [ obj "a.pf" lib_src; obj "b.pf" lib_src;
      obj "m.pf" "      program p\n      print *, 0\n      end\n" ]

let common_decl =
  Printf.sprintf
    {|
      subroutine user%s
      real*8 v(100)
      common /shared/ v
c$distribute_reshape v(%s)
      v(1) = 1.0
      end
|}

let test_common_consistency () =
  (* consistent reshaped commons across files link fine *)
  let a = common_decl "1" "block"
  and b = common_decl "2" "block"
  and m = "      program p\n      call user1\n      call user2\n      end\n" in
  ignore (link_ok [ obj "a.pf" a; obj "b.pf" b; obj "m.pf" m ]);
  (* inconsistent distribution of a reshaped common member is flagged *)
  let b_bad = common_decl "2" "cyclic" in
  link_err ~expect:"inconsistent"
    [ obj "a.pf" a; obj "b.pf" b_bad; obj "m.pf" m ]

let test_common_shape_mismatch () =
  let a = common_decl "1" "block" in
  let b_bad =
    {|
      subroutine user2
      real*8 v(50)
      common /shared/ v
c$distribute_reshape v(block)
      v(1) = 1.0
      end
|}
  in
  let m = "      program p\n      call user1\n      call user2\n      end\n" in
  link_err ~expect:"declared"
    [ obj "a.pf" a; obj "b.pf" b_bad; obj "m.pf" m ]

let test_reshaped_common_vs_plain_declaration () =
  (* the same common array reshaped in one file but declared plain in
     another: the reshaped member has no counterpart on the plain side,
     which §6 must reject rather than silently splitting the storage *)
  let a = common_decl "1" "block" in
  let b_plain =
    {|
      subroutine user2
      real*8 v(100)
      common /shared/ v
      v(2) = 2.0
      end
|}
  in
  let m = "      program p\n      call user1\n      call user2\n      end\n" in
  link_err ~expect:"no counterpart"
    [ obj "a.pf" a; obj "b.pf" b_plain; obj "m.pf" m ]

let test_plain_common_mismatch_tolerated () =
  (* §6: "common blocks without reshaped arrays are not affected" *)
  let a =
    {|
      subroutine user1
      real*8 v(100)
      common /shared/ v
      v(1) = 1.0
      end
|}
  in
  let b =
    {|
      subroutine user2
      real*8 v(100)
      common /shared/ v
      v(2) = 2.0
      end
|}
  in
  let m = "      program p\n      call user1\n      call user2\n      end\n" in
  ignore (link_ok [ obj "a.pf" a; obj "b.pf" b; obj "m.pf" m ])

let () =
  Alcotest.run "linker"
    [
      ( "signatures",
        [ Alcotest.test_case "roundtrip & mangling" `Quick test_sig_roundtrip ] );
      ( "shadow",
        [
          Alcotest.test_case "text roundtrip" `Quick test_shadow_roundtrip;
          Alcotest.test_case "file io" `Quick test_shadow_file_io;
        ] );
      ( "objfile",
        [
          Alcotest.test_case "shadow contents" `Quick test_objfile_shadow_contents;
          Alcotest.test_case "save/load" `Quick test_objfile_save_load;
        ] );
      ( "cloning",
        [
          Alcotest.test_case "clone created & runs" `Quick test_clone_created_and_runs;
          Alcotest.test_case "two distributions, two clones" `Quick test_two_distributions_two_clones;
          Alcotest.test_case "propagation down the chain" `Quick test_propagation_down_chain;
          Alcotest.test_case "shared clone" `Quick test_same_signature_shares_clone;
        ] );
      ( "link errors",
        [
          Alcotest.test_case "unresolved routine" `Quick test_unresolved_routine;
          Alcotest.test_case "stale requests pruned" `Quick test_stale_request_pruned;
          Alcotest.test_case "onto in clone signature" `Quick test_clone_with_onto_signature;
          Alcotest.test_case "program unit count" `Quick test_no_or_multiple_mains;
          Alcotest.test_case "duplicate routine" `Quick test_duplicate_routine;
          Alcotest.test_case "reshaped common consistency" `Quick test_common_consistency;
          Alcotest.test_case "reshaped common shape" `Quick test_common_shape_mismatch;
          Alcotest.test_case "plain commons tolerated" `Quick test_plain_common_mismatch_tolerated;
          Alcotest.test_case "reshaped vs plain common" `Quick
            test_reshaped_common_vs_plain_declaration;
        ] );
    ]
