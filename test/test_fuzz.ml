(* Tests for the fuzzing stack: generator well-formedness, the
   differential driver's verdicts, shrinker convergence, triage
   bucketing/dedup, and corpus round-tripping. *)

module Gen = Ddsm_fuzz.Gen
module Spec = Ddsm_fuzz.Spec
module Differ = Ddsm_fuzz.Differ
module Shrink = Ddsm_fuzz.Shrink
module Triage = Ddsm_fuzz.Triage
module Corpus = Ddsm_fuzz.Corpus
module Ddsm = Ddsm_core.Ddsm

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Generator: every seed must render to source that compiles and links.
   This is the "well-formed by construction" contract — the fuzzer
   explores executions, not syntax errors. *)

let test_generator_well_formed () =
  for seed = 0 to 49 do
    let spec = Gen.generate ~seed () in
    let files = Spec.render spec in
    check_bool (Printf.sprintf "seed %d renders at least one file" seed) true
      (files <> []);
    let objs =
      List.map
        (fun (fname, src) ->
          match Ddsm.compile_source ~fname src with
          | Ok o -> o
          | Error es ->
              Alcotest.failf "seed %d: %s does not compile: %s" seed fname
                (String.concat "; " es))
        files
    in
    match Ddsm.link objs with
    | Ok _ -> ()
    | Error es ->
        Alcotest.failf "seed %d: does not link: %s" seed
          (String.concat "; " es)
  done

let test_generator_deterministic () =
  let a = Spec.render (Gen.generate ~seed:7 ()) in
  let b = Spec.render (Gen.generate ~seed:7 ()) in
  check_bool "same seed, same program" true (a = b)

(* ------------------------------------------------------------------ *)
(* Differential driver *)

let run_src ?(seed = 0) src =
  Differ.run (Differ.default ~seed) [ ("t.pf", src) ]

let test_differ_pass () =
  let src =
    "      program main\n      integer i, n\n      parameter (n = 8)\n\
     \      real*8 a(n), chk\nc$distribute a(block)\n\
     c$doacross local(i), shared(a)\n      do i = 1, n\n\
     \        a(i) = i * 2\n      enddo\n      chk = 0.0\n\
     \      do i = 1, n\n        chk = chk + a(i)\n      enddo\n\
     \      print *, 'chk:', chk\n      end\n"
  in
  check_str "deterministic doacross passes" "ok"
    (Differ.kind_of (run_src src))

let test_differ_reject () =
  let src =
    "      program main\n      integer a(8)\nc$distribute a(cyclic(0))\n\
     \      end\n"
  in
  check_str "compile error classifies as reject" "reject"
    (Differ.kind_of (run_src src))

let test_differ_fail_agreement () =
  (* an out-of-bounds access must be a diagnosed user error on every leg,
     which the driver reports as Fail — not a divergence *)
  let src =
    "      program main\n      integer i, n\n      parameter (n = 4)\n\
     \      real*8 a(n)\n      do i = 1, n\n        a(i) = i\n      enddo\n\
     \      a(1) = a(n + 1)\n      end\n"
  in
  check_str "agreed runtime error is fail" "fail" (Differ.kind_of (run_src src))

let test_differ_timeout () =
  let src =
    "      program main\n      integer i, j, k, n, m\n\
     \      parameter (n = 150)\n      m = 0\n      do i = 1, n\n\
     \        do j = 1, n\n          do k = 1, n\n            m = m + 1\n\
     \          enddo\n        enddo\n      enddo\n      print *, 'm:', m\n\
     \      end\n"
  in
  check_str "pathological nest hits the watchdog" "timeout"
    (Differ.kind_of (run_src src))

(* ------------------------------------------------------------------ *)
(* Shrinker: must converge, keep the verdict, and shrink weight. *)

let test_shrinker_converges () =
  let spec = Gen.generate ~seed:11 () in
  (* pretend any program that still prints something "fails": the shrinker
     must converge to a small spec whose render still has a print *)
  let has_print c =
    List.exists
      (fun (_, src) ->
        let rec contains i =
          i + 5 <= String.length src
          && (String.sub src i 5 = "print" || contains (i + 1))
        in
        contains 0)
      (Spec.render c)
  in
  check_bool "witness fails the predicate" true (has_print spec);
  let mini = Shrink.minimize ~still_fails:has_print spec in
  check_bool "minimized still fails" true (has_print mini);
  check_bool "minimized not larger" true
    (Shrink.weight mini <= Shrink.weight spec);
  check_int "minimized is a single file" 1 (List.length (Spec.render mini))

(* ------------------------------------------------------------------ *)
(* Triage: bucketing is by verdict kind + minimized-source digest; the
   same root cause reported twice must dedup, distinct ones must not. *)

let test_triage_dedup () =
  let t = Triage.create () in
  let fresh =
    Triage.note t ~bucket:"diverged:values" ~seed:1 ~detail:"d1" ~source:"s1"
  in
  check_bool "first witness is new" true fresh;
  let dup =
    Triage.note t ~bucket:"diverged:values" ~seed:2 ~detail:"d2" ~source:"s1"
  in
  check_bool "same bucket+source dedups" false dup;
  let other_bucket =
    Triage.note t ~bucket:"diverged:prints" ~seed:3 ~detail:"d3" ~source:"s1"
  in
  check_bool "same source, different kind is a new root cause" true
    other_bucket;
  let other_src =
    Triage.note t ~bucket:"diverged:values" ~seed:4 ~detail:"d4" ~source:"s2"
  in
  check_bool "same kind, different source is a new root cause" true other_src;
  check_int "three root causes" 3 (List.length (Triage.entries t));
  check_int "four failures total" 4 (Triage.total t);
  let first = List.hd (Triage.entries t) in
  check_int "first root cause counted twice" 2 first.Triage.count;
  check_int "first witness seed retained" 1 first.Triage.seed

(* ------------------------------------------------------------------ *)
(* Corpus: write → load → replay round-trip. *)

let test_corpus_roundtrip () =
  let dir = Filename.temp_file "pflfuzz" "" in
  Sys.remove dir;
  let src =
    "      program main\n      integer a(8)\nc$distribute a(cyclic(0))\n\
     \      end\n"
  in
  let _path =
    Corpus.write_case ~dir ~seed:42 ~bucket:"reject" ~expect:"reject"
      ~source:src
  in
  match Corpus.load ~dir with
  | [ c ] ->
      check_int "seed recovered" 42 c.Corpus.seed;
      check_str "expectation recovered" "reject" c.Corpus.expect;
      (match Corpus.replay (Differ.default ~seed:42) c with
      | Ok () -> ()
      | Error m -> Alcotest.failf "replay mismatch: %s" m);
      Sys.remove c.Corpus.path;
      Sys.rmdir dir
  | cs -> Alcotest.failf "expected 1 corpus case, got %d" (List.length cs)

(* ------------------------------------------------------------------ *)
(* Diag.code stability: triage buckets key on these strings, so renaming
   one silently splits or merges historical corpora. *)

let test_diag_codes_stable () =
  let open Ddsm_check in
  check_str "user" "user" (Diag.code (Diag.user "x"));
  check_str "internal" "internal" (Diag.code (Diag.internal "x"));
  check_bool "internal is internal" true (Diag.is_internal (Diag.internal "x"));
  check_bool "user is not internal" false (Diag.is_internal (Diag.user "x"))

let () =
  Alcotest.run "fuzz"
    [
      ( "generator",
        [
          Alcotest.test_case "well-formed over 50 seeds" `Quick
            test_generator_well_formed;
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
        ] );
      ( "differ",
        [
          Alcotest.test_case "pass" `Quick test_differ_pass;
          Alcotest.test_case "reject" `Quick test_differ_reject;
          Alcotest.test_case "agreed failure" `Quick test_differ_fail_agreement;
          Alcotest.test_case "timeout" `Quick test_differ_timeout;
        ] );
      ( "shrinker",
        [ Alcotest.test_case "converges" `Quick test_shrinker_converges ] );
      ( "triage",
        [ Alcotest.test_case "dedup" `Quick test_triage_dedup ] );
      ( "corpus",
        [ Alcotest.test_case "roundtrip" `Quick test_corpus_roundtrip ] );
      ( "diag",
        [ Alcotest.test_case "codes stable" `Quick test_diag_codes_stable ] );
    ]
