(* Tests for the lexer and parser of the mini-Fortran surface language. *)

open Ddsm_ir
open Ddsm_frontend
module K = Ddsm_dist.Kind

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let parse_ok src =
  match Parser.parse_file ~fname:"test.pf" src with
  | Ok f -> f
  | Error e -> Alcotest.failf "parse error: %s" e

let parse_err src =
  match Parser.parse_file ~fname:"test.pf" src with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> e

let expr_ok s =
  match Parser.parse_expr_string s with
  | Ok e -> e
  | Error e -> Alcotest.failf "expr parse error: %s" e

(* ------------------------------------------------------------------ *)
(* Lexer *)

let toks s =
  match Lexer.tokenize ~fname:"t" s with
  | Ok l -> List.map (fun { Lexer.tok; _ } -> tok) l
  | Error e -> Alcotest.failf "lex error: %s" e

let test_lex_numbers () =
  Alcotest.(check bool) "ints and reals" true
    (toks "42 3.5 1e3 2.5d0 1.d0"
    = [ Token.TInt 42; Token.TReal 3.5; Token.TReal 1000.0; Token.TReal 2.5;
        Token.TReal 1.0; Token.TNewline; Token.TEof ])

let test_lex_dotted_ops () =
  check_bool "1.lt.2 does not eat the dot as a fraction" true
    (toks "1.lt.2"
    = [ Token.TInt 1; Token.TRel Expr.Lt; Token.TInt 2; Token.TNewline; Token.TEof ]);
  check_bool ".and. .not." true
    (toks "x .and. .not. y"
    = [ Token.TIdent "x"; Token.TAnd; Token.TNot; Token.TIdent "y";
        Token.TNewline; Token.TEof ])

let test_lex_comments_and_directives () =
  check_bool "c comment skipped" true
    (toks "c this is a comment\nx = 1"
    = [ Token.TIdent "x"; Token.TAssign; Token.TInt 1; Token.TNewline; Token.TEof ]);
  check_bool "bang comment" true
    (toks "x = 1 ! trailing\n! full line"
    = [ Token.TIdent "x"; Token.TAssign; Token.TInt 1; Token.TNewline; Token.TEof ]);
  (match toks "c$distribute a(block)" with
  | Token.TDirective "distribute" :: _ -> ()
  | _ -> Alcotest.fail "directive not recognised");
  match toks "C$DOACROSS local(i)" with
  | Token.TDirective "doacross" :: _ -> ()
  | _ -> Alcotest.fail "uppercase directive not recognised"

let test_lex_case_insensitive () =
  check_bool "identifiers lowercased" true
    (toks "CALL FooBar(X)"
    = [ Token.TIdent "call"; Token.TIdent "foobar"; Token.TLparen;
        Token.TIdent "x"; Token.TRparen; Token.TNewline; Token.TEof ])

let test_lex_strings () =
  check_bool "string with escaped quote" true
    (toks "print 'it''s'"
    = [ Token.TIdent "print"; Token.TStr "it's"; Token.TNewline; Token.TEof ]);
  check_bool "unterminated string is an error" true
    (match Lexer.tokenize ~fname:"t" "print 'oops" with
    | Error _ -> true
    | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Expressions *)

let test_expr_precedence () =
  check_str "mul binds tighter" "(1 + (2 * 3))" (Expr.to_string (expr_ok "1+2*3"));
  check_str "power right-assoc" "(2 ** (3 ** 2))" (Expr.to_string (expr_ok "2**3**2"));
  check_str "unary minus" "((-1) + 2)" (Expr.to_string (expr_ok "-1+2"));
  check_str "relational" "((a + 1) .lt. b)" (Expr.to_string (expr_ok "a+1 .lt. b"));
  check_bool "f90 and dotted relational agree" true
    (Expr.equal (expr_ok "a <= b") (expr_ok "a .le. b"));
  check_str "array ref" "a((i + 1), j)" (Expr.to_string (expr_ok "A(i+1, j)"))

let test_expr_const_fold () =
  Alcotest.(check (option int)) "const_int" (Some 14) (Expr.const_int (expr_ok "2+3*4"));
  Alcotest.(check (option int)) "power" (Some 8) (Expr.const_int (expr_ok "2**3"));
  check_bool "simplify x*1" true
    (Expr.equal (Expr.simplify (expr_ok "x*1")) (Expr.Var "x"))

(* ------------------------------------------------------------------ *)
(* Programs *)

let transpose_src =
  {|
      program transpose
      integer n
      parameter (n = 100)
      real*8 A(n, n), B(n, n)
c$distribute A(*, block), B(block, *)
      integer i, j
c$doacross local(i, j)
      do i = 1, n
        do j = 1, n
          A(j, i) = B(i, j)
        end do
      end do
      end
|}

let test_parse_transpose () =
  let f = parse_ok transpose_src in
  check_int "one routine" 1 (List.length f.Decl.routines);
  let r = List.hd f.Decl.routines in
  check_str "name" "transpose" r.Decl.rname;
  check_bool "is program" true (r.Decl.rkind = Decl.Program);
  check_int "five declarations" 5 (List.length r.Decl.rdecls);
  check_int "two distributes" 2 (List.length r.Decl.rdists);
  let da = List.hd r.Decl.rdists in
  check_str "first target" "a" da.Decl.dtarget;
  check_bool "A is (*, block)" true (da.Decl.dkinds = [ K.Star; K.Block ]);
  let db = List.nth r.Decl.rdists 1 in
  check_bool "B is (block, *)" true (db.Decl.dkinds = [ K.Block; K.Star ]);
  check_bool "not reshaped" true (not da.Decl.dreshape);
  (* the body is a single doacross *)
  match r.Decl.rbody with
  | [ { s = Stmt.Doacross da; _ } ] ->
      Alcotest.(check (list string)) "locals" [ "i"; "j" ] da.Stmt.locals;
      check_str "outer loop var" "i" da.Stmt.loop.Stmt.var
  | _ -> Alcotest.fail "expected a single doacross"

let conv_src =
  {|
      program conv
      integer n
      parameter (n = 64)
      real*8 A(n, n), B(n, n)
c$distribute_reshape A(block, block), B(block, block)
      integer i, j
c$doacross nest(i, j) local(i, j) affinity(j, i) = data(A(i, j))
      do j = 2, n-1
        do i = 2, n-1
          A(i,j) = (B(i-1,j)+B(i,j-1)+B(i,j)+B(i,j+1)+B(i+1,j)) / 5
        enddo
      enddo
      end
|}

let test_parse_convolution () =
  let f = parse_ok conv_src in
  let r = List.hd f.Decl.routines in
  check_bool "reshaped" true (List.hd r.Decl.rdists).Decl.dreshape;
  match r.Decl.rbody with
  | [ { s = Stmt.Doacross da; _ } ] -> (
      Alcotest.(check (list string)) "nest" [ "i"; "j" ] da.Stmt.nest_vars;
      match da.Stmt.affinity with
      | Some a ->
          check_str "affinity array" "a" a.Stmt.aarray;
          Alcotest.(check (list string)) "affinity vars" [ "j"; "i" ] a.Stmt.avars;
          check_int "two subscripts" 2 (List.length a.Stmt.asubs)
      | None -> Alcotest.fail "expected an affinity clause")
  | _ -> Alcotest.fail "expected a single doacross"

let sub_src =
  {|
      subroutine mysub(x, n)
      integer n
      real*8 x(5)
      integer k
      do k = 1, 5
        x(k) = x(k) * 2
      enddo
      return
      end

      program main
      real*8 a(1000)
c$distribute_reshape a(cyclic(5))
      integer i, n
      n = 1000
      do i = 1, 1000, 5
        call mysub(a(i), n)
      enddo
      end
|}

let test_parse_two_routines () =
  let f = parse_ok sub_src in
  check_int "two routines" 2 (List.length f.Decl.routines);
  let sub = List.hd f.Decl.routines in
  check_bool "subroutine" true (sub.Decl.rkind = Decl.Subroutine);
  Alcotest.(check (list string)) "params" [ "x"; "n" ] sub.Decl.rparams;
  let main = List.nth f.Decl.routines 1 in
  check_bool "cyclic(5)" true
    ((List.hd main.Decl.rdists).Decl.dkinds = [ K.Cyclic_k 5 ]);
  (* call with an element actual *)
  let calls = Stmt.calls_made main.Decl.rbody in
  Alcotest.(check (list string)) "calls" [ "mysub" ] calls

let misc_src =
  {|
      program misc
      integer i, n
      real*8 s, v(0:9)
      common /blk/ v
      parameter (n = 10)
      s = 0.0
      do i = 0, 9, 2
        if (v(i) .gt. 0.0) then
          s = s + v(i)
        elseif (v(i) .lt. -1.0) then
          s = s - 1.0
        else
          s = s + 1.0
        endif
      end do
      if (s .gt. 100.0) s = 100.0
c$redistribute v(cyclic)
      print *, 'sum', s
      end
|}

let test_parse_misc () =
  let f = parse_ok misc_src in
  let r = List.hd f.Decl.routines in
  (* lower-bound declaration *)
  let v = Option.get (Decl.find_decl r "v") in
  (match v.Decl.vdims with
  | [ { dlo = Expr.Int 0; dhi = Expr.Int 9 } ] -> ()
  | _ -> Alcotest.fail "expected v(0:9)");
  Alcotest.(check (list (pair string (list string))))
    "common" [ ("blk", [ "v" ]) ] r.Decl.rcommons;
  (* redistribute statement present *)
  let has_redist =
    List.exists
      (fun s -> match s.Stmt.s with Stmt.Redistribute _ -> true | _ -> false)
      r.Decl.rbody
  in
  check_bool "redistribute parsed" true has_redist;
  (* step-2 do loop *)
  match
    List.find_opt (fun s -> match s.Stmt.s with Stmt.Do _ -> true | _ -> false) r.Decl.rbody
  with
  | Some { s = Stmt.Do d; _ } ->
      check_bool "step" true (d.Stmt.step = Some (Expr.Int 2))
  | _ -> Alcotest.fail "no do loop"

let test_parse_equivalence_onto () =
  let src =
    {|
      program p
      real*8 a(100), b(100), g(8, 8)
      equivalence (a, b)
c$distribute g(block, block) onto(2, 1)
      a(1) = 1.0
      end
|}
  in
  let f = parse_ok src in
  let r = List.hd f.Decl.routines in
  Alcotest.(check (list (pair string string))) "equiv" [ ("a", "b") ] r.Decl.requivs;
  check_bool "onto parsed" true
    ((List.hd r.Decl.rdists).Decl.donto = Some [ 2; 1 ])

let test_parse_errors () =
  let e = parse_err "      program p\n      do i = 1\n      end\n" in
  check_bool "missing comma reported with location" true
    (String.length e > 0 && String.sub e 0 7 = "test.pf");
  ignore (parse_err "      subroutine s\n      x = \n      end\n");
  ignore (parse_err "      program p\n      real*4 x\n      end\n");
  ignore (parse_err "      program p\nc$doacross bogus(i)\n      do i=1,2\n      enddo\n      end\n")

let str_contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let test_parse_cyclic_chunk_bounds () =
  let mk k =
    Printf.sprintf
      "      program p\n      real*8 a(100)\nc$distribute a(cyclic(%s))\n      end\n"
      k
  in
  let e0 = parse_err (mk "0") in
  check_bool "cyclic(0) names the bad chunk" true
    (str_contains e0 "cyclic(0): chunk size must be >= 1");
  let en = parse_err (mk "-1") in
  check_bool "cyclic(-1) names the bad chunk" true
    (str_contains en "cyclic(-1): chunk size must be >= 1");
  (* sanity: positive chunks still parse *)
  ignore (parse_ok (mk "3"))

let test_parse_barrier_directive () =
  let src =
    "      program p\n      integer i\n      real*8 a(8)\nc$distribute a(block)\nc$doacross local(i)\n      do i = 1, 8\n        a(i) = i\nc$barrier\n        a(i) = a(i) + 1\n      enddo\n      end\n"
  in
  let f = parse_ok src in
  let r = List.hd f.Decl.routines in
  let rec count ss =
    List.fold_left
      (fun acc s ->
        match s.Stmt.s with
        | Stmt.Barrier -> acc + 1
        | Stmt.Do d -> acc + count d.Stmt.body
        | Stmt.Doacross da -> acc + count da.Stmt.loop.Stmt.body
        | Stmt.If (_, a, b) -> acc + count a + count b
        | _ -> acc)
      0 ss
  in
  check_int "one barrier inside the parallel loop" 1 (count r.Decl.rbody)

let test_roundtrip_pp () =
  (* the pretty-printer should at least produce something for each construct *)
  let f = parse_ok transpose_src in
  let s = Format.asprintf "%a" Decl.pp_file f in
  check_bool "pp non-empty" true (String.length s > 100)

(* Table-driven rejections: every malformed program must produce a
   diagnostic that leads with the source location (file:line).  This is
   the contract behind pflc's exit-2 path and the fuzzer's Reject
   bucket — a rejection is only useful if it says where. *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let parse_reject_table =
  [
    ( "cyclic chunk zero",
      "      program p\n      integer a(8)\nc$distribute a(cyclic(0))\n      end\n",
      "chunk size" );
    ( "unterminated declaration",
      "      program p\n      integer a(\n      end\n",
      "unexpected" );
    ( "missing rhs",
      "      program p\n      integer i\n      i = \n      end\n",
      "unexpected" );
    ( "do without enddo",
      "      program p\n      integer i\n      do i = 1, 4\n      i = i\n      end\n",
      "expected =" );
    ( "unknown directive",
      "      program p\nc$frobnicate a(block)\n      end\n",
      "unexpected directive" );
    ( "unterminated string",
      "      program p\n      print *, 'oops\n      end\n",
      "unterminated string" );
  ]

let test_parse_reject_table () =
  List.iter
    (fun (name, src, expect) ->
      let e = parse_err src in
      check_bool (name ^ ": error is located") true (contains e "test.pf:");
      if not (contains e expect) then
        Alcotest.failf "%s: error %S does not mention %S" name e expect)
    parse_reject_table

let () =
  Alcotest.run "frontend"
    [
      ( "lexer",
        [
          Alcotest.test_case "numbers" `Quick test_lex_numbers;
          Alcotest.test_case "dotted operators" `Quick test_lex_dotted_ops;
          Alcotest.test_case "comments & directives" `Quick test_lex_comments_and_directives;
          Alcotest.test_case "case insensitivity" `Quick test_lex_case_insensitive;
          Alcotest.test_case "strings" `Quick test_lex_strings;
        ] );
      ( "expr",
        [
          Alcotest.test_case "precedence" `Quick test_expr_precedence;
          Alcotest.test_case "constant folding" `Quick test_expr_const_fold;
        ] );
      ( "programs",
        [
          Alcotest.test_case "matrix transpose" `Quick test_parse_transpose;
          Alcotest.test_case "convolution with nest & affinity" `Quick test_parse_convolution;
          Alcotest.test_case "two routines, cyclic(5) portions" `Quick test_parse_two_routines;
          Alcotest.test_case "misc statements" `Quick test_parse_misc;
          Alcotest.test_case "equivalence & onto" `Quick test_parse_equivalence_onto;
          Alcotest.test_case "errors are located" `Quick test_parse_errors;
          Alcotest.test_case "cyclic chunk bounds" `Quick
            test_parse_cyclic_chunk_bounds;
          Alcotest.test_case "barrier directive" `Quick
            test_parse_barrier_directive;
          Alcotest.test_case "pretty printing" `Quick test_roundtrip_pp;
          Alcotest.test_case "reject table" `Quick test_parse_reject_table;
        ] );
    ]
