(* Tests for the pfld service stack (ROADMAP item 4) and the hardened
   persistence / CLI error paths it depends on:

   - Jobs env parsing: malformed DDSM_JOBS/DDSM_SHARDS are located user
     errors, never bare exceptions (table-driven; the CLI halves of the
     table live in the bin/dune smoke);
   - Json.of_string: the line-framed protocol's parser;
   - Binfile: magic/kind/version/length/digest validation, and the
     crash-injection proof that readers never observe a partial file;
   - Proto: request parsing, canonicalization, content-addressed keys;
   - Service: end-to-end over a real Unix-domain socket with the daemon
     on a spawned domain — byte-identical replies, exactly-one-compile
     under concurrent identical batches, round-robin fairness, cycle
     budgets that do not poison the worker, warm restarts from the disk
     cache, and corrupt cache entries degrading to clean misses. *)

module Service = Ddsm_service.Service
module Client = Ddsm_service.Client
module Proto = Ddsm_service.Proto
module Cache = Ddsm_service.Cache
module Json = Ddsm_report.Json
module Jobs = Ddsm_util.Jobs
module Binfile = Ddsm_linker.Binfile
module Objfile = Ddsm_linker.Objfile
module Ddsm = Ddsm_core.Ddsm

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let check_error_mentions what sub = function
  | Ok _ -> Alcotest.failf "%s: expected an error mentioning %S" what sub
  | Error e ->
      check_bool
        (Printf.sprintf "%s: %S mentions %S" what e sub)
        true (contains e sub)

(* ------------------------------------------------------------------ *)
(* Jobs: env-derived counts are parsed, never exception-raising *)

let test_jobs_parse_table () =
  let cases =
    [
      ("4", Some 4);
      (" 8 ", Some 8);
      ("1", Some 1);
      ("0", None);
      ("-2", None);
      ("", None);
      ("abc", None);
      ("4.5", None);
      ("0x10", None);
    ]
  in
  List.iter
    (fun (s, expect) ->
      match (Jobs.parse_count ~env:"DDSM_JOBS" s, expect) with
      | Ok n, Some m -> check_int (Printf.sprintf "parse %S" s) m n
      | Error e, None ->
          check_bool
            (Printf.sprintf "error for %S names the variable: %s" s e)
            true
            (contains e "DDSM_JOBS" && contains e s)
      | Ok n, None ->
          Alcotest.failf "parse %S: expected an error, got Ok %d" s n
      | Error e, Some _ -> Alcotest.failf "parse %S: unexpected error %s" s e)
    cases

let with_env k v f =
  let old = Sys.getenv_opt k in
  Unix.putenv k v;
  Fun.protect
    ~finally:(fun () -> Unix.putenv k (Option.value old ~default:"1"))
    f

let test_jobs_env_defaults () =
  with_env "DDSM_JOBS" "3" (fun () ->
      check_bool "DDSM_JOBS=3" true (Jobs.default_jobs () = Ok 3));
  with_env "DDSM_JOBS" "bogus" (fun () ->
      check_error_mentions "DDSM_JOBS=bogus" "DDSM_JOBS" (Jobs.default_jobs ()));
  with_env "DDSM_SHARDS" "2" (fun () ->
      check_bool "DDSM_SHARDS=2" true (Jobs.default_shards () = Ok 2));
  with_env "DDSM_SHARDS" "-1" (fun () ->
      check_error_mentions "DDSM_SHARDS=-1" "DDSM_SHARDS"
        (Jobs.default_shards ()))

(* ------------------------------------------------------------------ *)
(* Json.of_string *)

let test_json_roundtrip () =
  let values =
    [
      Json.Null;
      Json.Bool true;
      Json.Bool false;
      Json.Int 0;
      Json.Int (-42);
      Json.Float 2.5;
      Json.Str "";
      Json.Str "plain";
      Json.Str "esc \" \\ \n \t \x01 end";
      Json.List [];
      Json.List [ Json.Int 1; Json.Str "two"; Json.Null ];
      Json.Obj [];
      Json.Obj
        [
          ("a", Json.Int 1);
          ("nested", Json.Obj [ ("l", Json.List [ Json.Bool false ]) ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      let s = Json.to_string v in
      match Json.of_string s with
      | Ok v' -> check_str ("roundtrip " ^ s) s (Json.to_string v')
      | Error e -> Alcotest.failf "roundtrip %s: %s" s e)
    values

let test_json_parse_forms () =
  let ok s expect =
    match Json.of_string s with
    | Ok v -> check_str ("parse " ^ s) expect (Json.to_string v)
    | Error e -> Alcotest.failf "parse %s: %s" s e
  in
  ok "  true " "true";
  ok "3" "3";
  ok "-7" "-7";
  ok "3.5" "3.5";
  ok "1e3" "1000";
  ok {|"Aé"|} "\"A\xc3\xa9\"";
  (* surrogate pair: U+1F600 *)
  (match Json.of_string {|"😀"|} with
  | Ok (Json.Str s) -> check_str "surrogate pair" "\xf0\x9f\x98\x80" s
  | Ok _ | Error _ -> Alcotest.fail "surrogate pair did not parse to a string");
  ok {| { "a" : [ 1 , 2 ] } |} {|{"a":[1,2]}|};
  (* Int/Float discrimination survives a round trip *)
  (match Json.of_string "9" with
  | Ok (Json.Int 9) -> ()
  | _ -> Alcotest.fail "9 should parse as Int");
  match Json.of_string "9.0" with
  | Ok (Json.Float _) -> ()
  | _ -> Alcotest.fail "9.0 should parse as Float"

let test_json_rejects () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok v ->
          Alcotest.failf "parse %S: expected an error, got %s" s
            (Json.to_string v)
      | Error _ -> ())
    [
      ""; "   "; "tru"; "nul"; "{"; "["; "[1,"; "{\"a\":}"; "\"unterminated";
      "1 2"; "{} x"; "{\"a\" 1}"; "'single'"; "+1"; "\"bad \\q escape\"";
    ]

(* ------------------------------------------------------------------ *)
(* Binfile: the hardened Marshal container *)

let tmpfile =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    Printf.sprintf "tbin-%d-%d.bin" (Unix.getpid ()) !ctr

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let with_file path f =
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let sample = ([ "alpha"; "beta" ], 42)

let load_sample ~kind ~path : (string list * int, string) result =
  Binfile.load ~kind ~path

let test_binfile_roundtrip () =
  with_file (tmpfile ()) (fun path ->
      Binfile.save ~kind:"test" ~path sample;
      match load_sample ~kind:"test" ~path with
      | Ok v -> check_bool "roundtrip" true (v = sample)
      | Error e -> Alcotest.fail e)

let test_binfile_kind_mismatch () =
  with_file (tmpfile ()) (fun path ->
      Binfile.save ~kind:"object" ~path sample;
      check_error_mentions "kind mismatch" "expected a image file"
        (load_sample ~kind:"image" ~path))

let test_binfile_foreign_and_empty () =
  with_file (tmpfile ()) (fun path ->
      write_file path "#!/bin/sh\necho not an image\n";
      check_error_mentions "foreign file" "bad or missing magic"
        (load_sample ~kind:"test" ~path);
      write_file path "";
      check_error_mentions "empty file" "empty file"
        (load_sample ~kind:"test" ~path))

let test_binfile_stale_version () =
  with_file (tmpfile ()) (fun path ->
      let payload = Marshal.to_string sample [] in
      write_file path
        (Printf.sprintf "DDSMBIN1 test 1 %d %s\n%s" (String.length payload)
           (Digest.to_hex (Digest.string payload))
           payload);
      check_error_mentions "stale version" "stale format version 1"
        (load_sample ~kind:"test" ~path))

let test_binfile_truncated () =
  with_file (tmpfile ()) (fun path ->
      Binfile.save ~kind:"test" ~path sample;
      let all = read_file path in
      write_file path (String.sub all 0 (String.length all - 5));
      check_error_mentions "truncated" "truncated"
        (load_sample ~kind:"test" ~path))

let test_binfile_corrupt_payload () =
  with_file (tmpfile ()) (fun path ->
      Binfile.save ~kind:"test" ~path sample;
      let all = Bytes.of_string (read_file path) in
      (* flip a byte in the payload, well past the header line *)
      let i = Bytes.length all - 3 in
      Bytes.set all i (Char.chr (Char.code (Bytes.get all i) lxor 0xff));
      write_file path (Bytes.to_string all);
      check_error_mentions "digest mismatch" "digest mismatch"
        (load_sample ~kind:"test" ~path))

let test_binfile_trailing_garbage () =
  with_file (tmpfile ()) (fun path ->
      Binfile.save ~kind:"test" ~path sample;
      write_file path (read_file path ^ "extra");
      check_error_mentions "trailing garbage" "trailing garbage"
        (load_sample ~kind:"test" ~path))

(* the atomicity proof: a writer killed mid-write leaves either the old
   complete file or no file — a reader never observes a partial one *)
let test_binfile_crash_atomicity () =
  with_file (tmpfile ()) (fun path ->
      let v1 = ([ "old" ], 1) and v2 = ([ "new"; "bigger" ], 2) in
      Binfile.save ~kind:"test" ~path v1;
      Binfile.inject_crash ~after_bytes:4;
      (match Binfile.save ~kind:"test" ~path v2 with
      | () -> Alcotest.fail "injected crash did not fire"
      | exception Binfile.Crashed -> ());
      (* the old file is byte-for-byte intact *)
      (match load_sample ~kind:"test" ~path with
      | Ok v -> check_bool "old value survives the torn write" true (v = v1)
      | Error e -> Alcotest.failf "reader observed a partial file: %s" e);
      (* the torn temp file is visible on disk but never under [path] *)
      let dir = Filename.dirname path in
      let torn =
        Array.to_list (Sys.readdir dir)
        |> List.filter (fun f ->
               String.length f >= 6 && String.sub f 0 6 = ".ddsm-")
      in
      check_bool "torn temp file left behind" true (torn <> []);
      List.iter (fun f -> Sys.remove (Filename.concat dir f)) torn;
      Binfile.clear_crash ();
      (* a crash with no pre-existing target leaves no target at all *)
      let fresh = tmpfile () in
      with_file fresh (fun fresh ->
          Binfile.inject_crash ~after_bytes:0;
          (try Binfile.save ~kind:"test" ~path:fresh v2
           with Binfile.Crashed -> ());
          check_bool "no partial target created" false (Sys.file_exists fresh);
          Binfile.clear_crash ();
          Array.iter
            (fun f ->
              if String.length f >= 6 && String.sub f 0 6 = ".ddsm-" then
                Sys.remove (Filename.concat dir f))
            (Sys.readdir dir));
      (* after the dust settles, a clean save works again *)
      Binfile.save ~kind:"test" ~path v2;
      match load_sample ~kind:"test" ~path with
      | Ok v -> check_bool "clean save after crash" true (v = v2)
      | Error e -> Alcotest.fail e)

let hello_src =
  "      program hello\n\
  \      integer n, i\n\
  \      parameter (n = 64)\n\
  \      real*8 a(n), s\n\
   c$distribute a(block)\n\
   c$doacross local(i) affinity(i) = data(a(i))\n\
  \      do i = 1, n\n\
  \        a(i) = i\n\
  \      enddo\n\
  \      s = 0.0\n\
  \      do i = 1, n\n\
  \        s = s + a(i)\n\
  \      enddo\n\
  \      print *, 'sum =', s\n\
  \      end\n"

let compile_hello () =
  match Ddsm.compile_source ~fname:"hello.pf" hello_src with
  | Ok o -> o
  | Error es -> Alcotest.failf "compile: %s" (String.concat "; " es)

let link_hello () =
  match Ddsm.link [ compile_hello () ] with
  | Ok (_, linked) -> linked
  | Error es -> Alcotest.failf "link: %s" (String.concat "; " es)

(* the CLIs' loaders sit on Binfile: corrupt inputs are Errors, and kinds
   do not cross (an object file is not an image) *)
let test_loaders_are_total () =
  with_file (tmpfile ()) (fun path ->
      write_file path "garbage, not an object file";
      (match Objfile.load ~path with
      | Ok _ -> Alcotest.fail "Objfile.load accepted garbage"
      | Error e ->
          check_bool "objfile error is located" true (contains e path));
      (match Ddsm.load_image ~path with
      | Ok _ -> Alcotest.fail "load_image accepted garbage"
      | Error e ->
          check_bool "image error is located" true (contains e path));
      Objfile.save (compile_hello ()) ~path;
      (match Ddsm.load_image ~path with
      | Ok _ -> Alcotest.fail "load_image accepted an object file"
      | Error e ->
          check_bool "kind confusion diagnosed" true
            (contains e "expected a image file"));
      Sys.remove (path ^ ".pfs");
      let linked = link_hello () in
      Ddsm.save_image linked ~path;
      match Ddsm.load_image ~path with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "image roundtrip: %s" e)

(* ------------------------------------------------------------------ *)
(* Proto *)

let mk_req ?(id = 1) ?(fname = "t.pf") ?(nprocs = 4) ?(policy = "first-touch")
    ?(machine = "scaled:64") ?(heap_words = 1 lsl 20) ?max_cycles
    ?(flags_off = []) source =
  {
    Proto.id; source; fname; nprocs; policy; machine; heap_words; max_cycles;
    flags_off;
  }

let parse_run line =
  match Proto.request_of_line line with
  | Ok (Proto.Run r) -> r
  | Ok _ -> Alcotest.failf "parse %s: not a run request" line
  | Error e -> Alcotest.failf "parse %s: %s" line e

let test_proto_parse_defaults () =
  let r = parse_run {|{"op":"run","id":7,"source":"src"}|} in
  check_int "id" 7 r.Proto.id;
  check_str "source" "src" r.Proto.source;
  check_str "fname default" "<service>" r.Proto.fname;
  check_int "nprocs default" 8 r.Proto.nprocs;
  check_str "policy default" "first-touch" r.Proto.policy;
  check_str "machine default" "scaled:64" r.Proto.machine;
  check_int "heap default" (1 lsl 24) r.Proto.heap_words;
  check_bool "max_cycles default" true (r.Proto.max_cycles = None);
  check_bool "flags default" true (r.Proto.flags_off = [])

let test_proto_canonicalization () =
  let r =
    parse_run
      {|{"op":"run","id":1,"source":"s","policy":"rr","machine":"scaled:04","flags_off":["tile","peel","tile"]}|}
  in
  check_str "rr canon" "round-robin" r.Proto.policy;
  check_str "machine canon" "scaled:4" r.Proto.machine;
  check_bool "flags sorted+deduped" true (r.Proto.flags_off = [ "peel"; "tile" ]);
  check_bool "ops parse" true
    (Proto.request_of_line {|{"op":"ping","id":3}|} = Ok (Proto.Ping 3)
    && Proto.request_of_line {|{"op":"stats","id":4}|} = Ok (Proto.Stats 4)
    && Proto.request_of_line {|{"op":"shutdown"}|} = Ok (Proto.Shutdown 0))

let test_proto_errors () =
  let err line sub = check_error_mentions line sub (Proto.request_of_line line) in
  err "not json at all" "expected";
  err {|{"id":1}|} "op";
  err {|{"op":"frobnicate","id":1}|} "frobnicate";
  err {|{"op":"run"}|} "id";
  err {|{"op":"run","id":1}|} "source";
  err {|{"op":"run","id":1,"source":"s","nprocs":0}|} "nprocs";
  err {|{"op":"run","id":1,"source":"s","policy":"best"}|} "policy";
  err {|{"op":"run","id":1,"source":"s","machine":"cray"}|} "machine";
  err {|{"op":"run","id":1,"source":"s","max_cycles":-5}|} "max_cycles";
  err {|{"op":"run","id":1,"source":"s","flags_off":["warp"]}|} "warp";
  err {|{"op":"run","id":1,"source":"s","flags_off":"tile"}|} "flags_off"

let test_proto_keys () =
  let base = mk_req "src" in
  (* display name and request id are NOT keyed *)
  let renamed = { base with Proto.fname = "other.pf"; id = 99 } in
  check_str "fname not in compile key" (Proto.compile_key base)
    (Proto.compile_key renamed);
  check_str "fname not in sim key" (Proto.sim_key base) (Proto.sim_key renamed);
  (* flags change the compile key *)
  let flagged = { base with Proto.flags_off = [ "tile" ] } in
  check_bool "flags keyed" false
    (Proto.compile_key base = Proto.compile_key flagged);
  (* machine shape changes the sim key but not the compile key *)
  let wider = { base with Proto.nprocs = 8 } in
  check_str "nprocs not in compile key" (Proto.compile_key base)
    (Proto.compile_key wider);
  check_bool "nprocs in sim key" false (Proto.sim_key base = Proto.sim_key wider);
  (* a request survives a wire roundtrip exactly *)
  let r = mk_req ~id:5 ~max_cycles:1000 ~flags_off:[ "cse"; "peel" ] "src" in
  match Proto.request_of_line (Json.to_string (Proto.run_to_json r)) with
  | Ok (Proto.Run r') -> check_bool "wire roundtrip" true (r = r')
  | Ok _ | Error _ -> Alcotest.fail "wire roundtrip failed"

(* ------------------------------------------------------------------ *)
(* Service: fairness of the round builder (deterministic, no sockets) *)

let test_round_robin_order () =
  let sock = Printf.sprintf "trr-%d.sock" (Unix.getpid ()) in
  let cfg =
    {
      Service.sock_path = sock; workers = 1; cache_dir = None; budget = 0;
      verbose = false; handle_signals = false;
    }
  in
  let t = Service.create cfg in
  Fun.protect
    ~finally:(fun () ->
      Unix.close t.Service.lfd;
      try Sys.remove sock with Sys_error _ -> ())
    (fun () ->
      let mk ids =
        let c =
          {
            Service.fd = Unix.stdin; inbuf = Buffer.create 0;
            pending = Queue.create (); alive = true;
          }
        in
        List.iter (fun id -> Queue.push (mk_req ~id "s") c.Service.pending) ids;
        c
      in
      let a = mk [ 1; 2; 3 ] and b = mk [ 10 ] and c = mk [ 20; 21 ] in
      t.Service.clients <- [ a; b; c ];
      let ids round =
        List.map (fun (_, r) -> r.Proto.id) round
      in
      (* one per client per sweep: B's single request is never stuck
         behind A's batch *)
      check_bool "round-robin interleave" true
        (ids (Service.build_round t 8) = [ 1; 10; 20; 2; 21; 3 ]);
      List.iter (fun cl -> Queue.clear cl.Service.pending) [ a; b; c ];
      List.iter
        (fun id -> Queue.push (mk_req ~id "s") a.Service.pending)
        [ 1; 2; 3 ];
      Queue.push (mk_req ~id:10 "s") b.Service.pending;
      (* the cap truncates the round, leaving the tail queued *)
      check_bool "capped round" true
        (ids (Service.build_round t 3) = [ 1; 10; 2 ]);
      check_int "tail stays queued" 1 (Queue.length a.Service.pending))

(* ------------------------------------------------------------------ *)
(* Service: end-to-end over a real socket *)

let svc_ctr = ref 0

let with_service ?cache_dir ?(workers = 1) ?(budget = 0) f =
  incr svc_ctr;
  let sock = Printf.sprintf "tsvc-%d-%d.sock" (Unix.getpid ()) !svc_ctr in
  let cfg =
    {
      Service.sock_path = sock; workers; cache_dir; budget; verbose = false;
      handle_signals = false;
    }
  in
  let d = Domain.spawn (fun () -> Service.serve cfg) in
  let rec conn tries =
    match Client.connect ~sock with
    | Ok c -> c
    | Error e ->
        if tries = 0 then Alcotest.failf "connect: %s" e
        else (
          Unix.sleepf 0.01;
          conn (tries - 1))
  in
  Fun.protect
    ~finally:(fun () ->
      (* idempotent shutdown: fine if the test already stopped the daemon *)
      (match Client.connect ~sock with
      | Ok c ->
          ignore
            (Client.rpc c (Json.Obj [ ("op", Json.Str "shutdown"); ("id", Json.Int 0) ]));
          Client.close c
      | Error _ -> ());
      Domain.join d)
    (fun () ->
      let c = conn 500 in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f ~sock c))

let send_run c r = Client.send c (Proto.run_to_json r)

let recv_ok c =
  match Client.recv c with
  | Error e -> Alcotest.failf "recv: %s" e
  | Ok j -> (
      match Proto.str_field j "status" with
      | Some "ok" -> j
      | _ -> Alcotest.failf "expected ok reply, got %s" (Json.to_string j))

let recv_error c =
  match Client.recv c with
  | Error e -> Alcotest.failf "recv: %s" e
  | Ok j -> (
      match Proto.str_field j "status" with
      | Some "error" -> j
      | _ -> Alcotest.failf "expected error reply, got %s" (Json.to_string j))

let stats c =
  Client.send c (Json.Obj [ ("op", Json.Str "stats"); ("id", Json.Int 0) ]);
  recv_ok c

let stat j k =
  match Proto.int_field j k with
  | Some v -> v
  | None -> Alcotest.failf "stats reply missing %S: %s" k (Json.to_string j)

(* a service reply must match the one-shot pipeline bit for bit *)
let test_service_matches_oneshot () =
  let expect =
    match
      Ddsm.run_source ~nprocs:4 ~heap_words:(1 lsl 20) hello_src
    with
    | Ok o -> o
    | Error e -> Alcotest.failf "oneshot: %s" e
  in
  with_service (fun ~sock:_ c ->
      send_run c (mk_req ~id:11 hello_src);
      let j = recv_ok c in
      check_int "id stamped" 11 (stat j "id");
      check_int "cycles match oneshot" expect.Ddsm.Engine.cycles
        (stat j "cycles");
      (match Proto.field j "prints" with
      | Some (Json.List ps) ->
          check_bool "prints match oneshot" true
            (List.map (fun p -> Json.Str p) expect.Ddsm.Engine.prints = ps)
      | _ -> Alcotest.fail "reply has no prints");
      (* ping answers out of band *)
      Client.send c (Json.Obj [ ("op", Json.Str "ping"); ("id", Json.Int 5) ]);
      let p = recv_ok c in
      check_int "ping id" 5 (stat p "id"))

let test_service_compile_error_reply () =
  with_service (fun ~sock:_ c ->
      send_run c (mk_req ~id:1 "      program bad\n      x = (\n      end\n");
      let j = recv_error c in
      check_str "code" "user" (Option.get (Proto.str_field j "code"));
      check_str "phase" "compile" (Option.get (Proto.str_field j "phase"));
      check_bool "user class, not internal" true
        (Proto.field j "internal" = Some (Json.Bool false));
      (* the connection still serves after a failed compile *)
      send_run c (mk_req ~id:2 hello_src);
      ignore (recv_ok c))

let test_service_proto_error_reply () =
  with_service (fun ~sock:_ c ->
      Client.send c (Json.Str "this is not an object");
      let j = recv_error c in
      check_bool "id is null" true (Proto.field j "id" = Some Json.Null);
      check_str "phase" "proto" (Option.get (Proto.str_field j "phase"));
      send_run c (mk_req ~id:2 hello_src);
      ignore (recv_ok c))

(* a hostile (budget-exceeding) request yields a structured cycle-budget
   error of the user class and does not poison the daemon *)
let test_service_cycle_budget () =
  with_service ~budget:500 (fun ~sock:_ c ->
      send_run c (mk_req ~id:1 hello_src);
      let j = recv_error c in
      check_str "code" "cycle-budget" (Option.get (Proto.str_field j "code"));
      check_bool "user class, not internal" true
        (Proto.field j "internal" = Some (Json.Bool false));
      (* same connection, same daemon: a per-request budget below the
         server cap also fires ... *)
      send_run c (mk_req ~id:2 ~max_cycles:100 hello_src);
      let j2 = recv_error c in
      check_str "request budget" "cycle-budget"
        (Option.get (Proto.str_field j2 "code")));
  (* ... and with an adequate budget the very same program completes *)
  with_service ~budget:0 (fun ~sock:_ c ->
      send_run c (mk_req ~id:3 hello_src);
      ignore (recv_ok c))

(* N clients submit an identical batch concurrently: exactly one compile,
   one simulation per distinct configuration, byte-identical reply
   streams, every requester answered *)
let test_service_concurrent_identical_batches () =
  let nclients = 4 in
  let batch = [ mk_req ~id:1 ~nprocs:2 hello_src; mk_req ~id:2 ~nprocs:4 hello_src; mk_req ~id:3 ~nprocs:2 hello_src ] in
  with_service ~workers:2 (fun ~sock c ->
      let clients =
        List.init nclients (fun i ->
            if i = 0 then c
            else
              match Client.connect ~sock with
              | Ok c' -> c'
              | Error e -> Alcotest.failf "client %d: %s" i e)
      in
      (* enqueue every batch before reading any reply: the daemon's
         round-robin rounds interleave all four clients *)
      List.iter (fun c -> List.iter (send_run c) batch) clients;
      let streams =
        List.map
          (fun c ->
            List.map
              (fun _ ->
                match Client.recv_line c with
                | Ok l -> l
                | Error e -> Alcotest.failf "recv: %s" e)
              batch)
          clients
      in
      (match streams with
      | first :: rest ->
          List.iteri
            (fun i s ->
              check_bool
                (Printf.sprintf "client %d stream byte-identical" (i + 1))
                true (s = first))
            rest;
          (* replies come back in request order with the right ids *)
          List.iter2
            (fun line (r : Proto.run_req) ->
              match Json.of_string line with
              | Ok j -> check_int "reply order" r.Proto.id (stat j "id")
              | Error e -> Alcotest.fail e)
            first batch
      | [] -> assert false);
      let s = stats c in
      check_int "exactly one compile" 1 (stat s "compile_misses");
      check_int "no disk involved" 0 (stat s "compile_disk_hits");
      (* 12 requests, 2 distinct simulate keys *)
      check_int "two simulations" 2 (stat s "sim_misses");
      check_int "everything else memoized" 10 (stat s "sim_hits");
      List.iteri (fun i c -> if i > 0 then Client.close c) clients)

(* a daemon restarted on the same cache directory warm-starts: the second
   life compiles nothing and the replies are byte-identical *)
let test_service_warm_restart () =
  incr svc_ctr;
  let dir = Printf.sprintf "tcache-%d-%d" (Unix.getpid ()) !svc_ctr in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then (
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Unix.rmdir dir))
    (fun () ->
      let run_once () =
        with_service ~cache_dir:dir (fun ~sock:_ c ->
            send_run c (mk_req ~id:1 hello_src);
            let line =
              match Client.recv_line c with
              | Ok l -> l
              | Error e -> Alcotest.failf "recv: %s" e
            in
            (line, stats c))
      in
      let cold, cs = run_once () in
      check_int "first life compiles" 1 (stat cs "compile_misses");
      check_bool "image persisted" true
        (Sys.readdir dir |> Array.exists (fun f -> Filename.check_suffix f ".pfi"));
      let warm, ws = run_once () in
      check_str "restart reply byte-identical" cold warm;
      check_int "second life compiles nothing" 0 (stat ws "compile_misses");
      check_int "warm-started from disk" 1 (stat ws "compile_disk_hits");
      (* third life: corrupt the cached image — a clean miss, recompile,
         and still the same reply *)
      Array.iter
        (fun f ->
          if Filename.check_suffix f ".pfi" then
            write_file (Filename.concat dir f) "DDSMBIN1 image 2 busted\n")
        (Sys.readdir dir);
      let fixed, fs = run_once () in
      check_str "corrupt cache still answers identically" cold fixed;
      check_int "corrupt entry rejected" 1 (stat fs "compile_disk_rejects");
      check_int "and recompiled" 1 (stat fs "compile_misses"))

let test_service_shutdown_op () =
  with_service (fun ~sock:_ c ->
      send_run c (mk_req ~id:1 hello_src);
      Client.send c (Json.Obj [ ("op", Json.Str "shutdown"); ("id", Json.Int 9) ]);
      (* the queued run is drained before the daemon goes away *)
      ignore (recv_ok c);
      let j = recv_ok c in
      check_int "shutdown ack" 9 (stat j "id");
      match Client.recv_line c with
      | Error _ -> ()
      | Ok l -> Alcotest.failf "daemon still talking after shutdown: %s" l)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "service"
    [
      ( "jobs env",
        [
          Alcotest.test_case "parse table" `Quick test_jobs_parse_table;
          Alcotest.test_case "env defaults" `Quick test_jobs_env_defaults;
        ] );
      ( "json parse",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "forms" `Quick test_json_parse_forms;
          Alcotest.test_case "rejects" `Quick test_json_rejects;
        ] );
      ( "binfile",
        [
          Alcotest.test_case "roundtrip" `Quick test_binfile_roundtrip;
          Alcotest.test_case "kind mismatch" `Quick test_binfile_kind_mismatch;
          Alcotest.test_case "foreign/empty" `Quick test_binfile_foreign_and_empty;
          Alcotest.test_case "stale version" `Quick test_binfile_stale_version;
          Alcotest.test_case "truncated" `Quick test_binfile_truncated;
          Alcotest.test_case "corrupt payload" `Quick test_binfile_corrupt_payload;
          Alcotest.test_case "trailing garbage" `Quick test_binfile_trailing_garbage;
          Alcotest.test_case "crash atomicity" `Quick test_binfile_crash_atomicity;
          Alcotest.test_case "loaders are total" `Quick test_loaders_are_total;
        ] );
      ( "proto",
        [
          Alcotest.test_case "defaults" `Quick test_proto_parse_defaults;
          Alcotest.test_case "canonicalization" `Quick test_proto_canonicalization;
          Alcotest.test_case "errors" `Quick test_proto_errors;
          Alcotest.test_case "cache keys" `Quick test_proto_keys;
        ] );
      ( "service",
        [
          Alcotest.test_case "round-robin fairness" `Quick test_round_robin_order;
          Alcotest.test_case "matches one-shot" `Quick test_service_matches_oneshot;
          Alcotest.test_case "compile error reply" `Quick test_service_compile_error_reply;
          Alcotest.test_case "proto error reply" `Quick test_service_proto_error_reply;
          Alcotest.test_case "cycle budget" `Quick test_service_cycle_budget;
          Alcotest.test_case "concurrent identical batches" `Quick
            test_service_concurrent_identical_batches;
          Alcotest.test_case "warm restart" `Quick test_service_warm_restart;
          Alcotest.test_case "shutdown drains" `Quick test_service_shutdown_op;
        ] );
    ]
