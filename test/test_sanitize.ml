(* Tests for the happens-before sanitizer: vector-clock ordering through
   fork/join/barriers, the FastTrack read-epoch/read-vector promotion,
   phase-aligned replay of accesses that raced ahead of a barrier, and the
   race vs line/page false-sharing classification — plus end-to-end runs
   through the engine with a seeded barrier drop. *)

open Ddsm_machine
module Sanitize = Ddsm_sanitize.Sanitize
module Ddsm = Ddsm_core.Ddsm

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let str_contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

let ev ~proc ~addr ~write : Memsys.access_event =
  {
    Memsys.ev_proc = proc;
    ev_addr = addr;
    ev_write = write;
    ev_now = 0;
    ev_tlb = 0;
    ev_hit = 1;
    ev_local = 0;
    ev_remote = 0;
    ev_contention = 0;
    ev_coherence = 0;
    ev_tlb_flushed = false;
  }

(* a sanitizer for a toy machine: 128-byte L2 lines, 1024-byte pages *)
let mk ?(nprocs = 4) () =
  Sanitize.create ~nprocs ~line_bytes:128 ~page_bytes:1024 ()

let acc t ~proc ~addr ~write =
  Sanitize.on_access t ~region:(Printf.sprintf "r:%d" proc)
    (ev ~proc ~addr ~write)

let n_races t = List.length (Sanitize.races t)
let n_fs t = List.length (Sanitize.false_sharing t)

(* ------------------------------------------------------------------ *)
(* Ordering through structural events *)

let test_serial_no_race () =
  let t = mk () in
  acc t ~proc:0 ~addr:0 ~write:true;
  acc t ~proc:0 ~addr:0 ~write:false;
  acc t ~proc:0 ~addr:0 ~write:true;
  check_int "same-proc accesses never race" 0 (n_races t)

let test_fork_orders_master_writes () =
  let t = mk () in
  acc t ~proc:0 ~addr:0 ~write:true;
  Sanitize.on_fork t ~region:"par" ~nprocs:4;
  (* every worker reads what the master wrote before the fork *)
  for p = 0 to 3 do
    acc t ~proc:p ~addr:0 ~write:false
  done;
  Sanitize.on_join t;
  (* and the master may write again after the join *)
  acc t ~proc:0 ~addr:0 ~write:true;
  check_int "fork/join edges order everything" 0 (n_races t)

let test_unordered_write_read_races () =
  let t = mk () in
  let w = 8 * 11 in
  Sanitize.on_fork t ~region:"par" ~nprocs:2;
  acc t ~proc:0 ~addr:w ~write:true;
  acc t ~proc:1 ~addr:w ~write:false;
  Sanitize.on_join t;
  check_int "concurrent write/read is a race" 1 (n_races t);
  let r = List.hd (Sanitize.races t) in
  check_bool "kind" true (r.Sanitize.rep_kind = Sanitize.Race);
  check_int "first is the writer" 0 r.Sanitize.rep_first_proc;
  check_bool "first access is a write" true r.Sanitize.rep_first_write;
  check_int "second is the reader" 1 r.Sanitize.rep_second_proc

let test_unordered_write_write_races () =
  let t = mk () in
  Sanitize.on_fork t ~region:"par" ~nprocs:2;
  acc t ~proc:0 ~addr:16 ~write:true;
  acc t ~proc:1 ~addr:16 ~write:true;
  Sanitize.on_join t;
  check_int "concurrent write/write is a race" 1 (n_races t)

let test_concurrent_reads_fine () =
  let t = mk () in
  acc t ~proc:0 ~addr:24 ~write:true;
  Sanitize.on_fork t ~region:"par" ~nprocs:4;
  for p = 0 to 3 do
    acc t ~proc:p ~addr:24 ~write:false
  done;
  Sanitize.on_join t;
  (* the join absorbs every read; a later master write is ordered *)
  acc t ~proc:0 ~addr:24 ~write:true;
  check_int "reads never race with reads" 0 (n_races t)

let test_read_vector_catches_all_readers () =
  (* FastTrack promotion: two concurrent readers force the read vector;
     an unordered write must race against a reader recorded only there *)
  let t = mk () in
  Sanitize.on_fork t ~region:"par" ~nprocs:3;
  acc t ~proc:0 ~addr:32 ~write:false;
  acc t ~proc:1 ~addr:32 ~write:false;
  acc t ~proc:2 ~addr:32 ~write:true;
  Sanitize.on_join t;
  (* both readers conflict with the write; reports dedup by region pair *)
  check_bool "read-vector write race detected" true (n_races t >= 1)

let test_barrier_orders_phases () =
  let t = mk ~nprocs:2 () in
  Sanitize.on_fork t ~region:"par" ~nprocs:2;
  acc t ~proc:0 ~addr:0 ~write:true;
  acc t ~proc:1 ~addr:8 ~write:true;
  Sanitize.on_barrier t ~proc:0;
  Sanitize.on_barrier t ~proc:1;
  (* cross reads of the other's phase-1 write *)
  acc t ~proc:0 ~addr:8 ~write:false;
  acc t ~proc:1 ~addr:0 ~write:false;
  Sanitize.on_join t;
  check_int "barrier orders phase 1 before phase 2" 0 (n_races t)

let test_buffered_replay_across_barrier () =
  (* the engine's stream can deliver one worker's post-barrier accesses
     before a sibling reaches the barrier; they must be buffered and
     replayed with post-barrier clocks, not checked early *)
  let t = mk ~nprocs:2 () in
  Sanitize.on_fork t ~region:"par" ~nprocs:2;
  acc t ~proc:0 ~addr:0 ~write:true;
  Sanitize.on_barrier t ~proc:0;
  (* proc 0 races ahead: this read is buffered (barrier incomplete) *)
  acc t ~proc:0 ~addr:8 ~write:false;
  (* proc 1 still in phase 1 *)
  acc t ~proc:1 ~addr:8 ~write:true;
  Sanitize.on_barrier t ~proc:1;
  acc t ~proc:1 ~addr:0 ~write:false;
  Sanitize.on_join t;
  check_int "buffered accesses replay ordered" 0 (n_races t)

let test_dropped_barrier_detected () =
  (* proc 0's arrival is never seen: its phase-2 read keeps phase-1
     clocks and must race with proc 1's phase-1 write *)
  let t = mk ~nprocs:2 () in
  Sanitize.on_fork t ~region:"par" ~nprocs:2;
  acc t ~proc:0 ~addr:0 ~write:true;
  acc t ~proc:1 ~addr:8 ~write:true;
  (* proc 0's on_barrier is dropped *)
  Sanitize.on_barrier t ~proc:1;
  acc t ~proc:0 ~addr:8 ~write:false;
  acc t ~proc:1 ~addr:0 ~write:false;
  Sanitize.on_join t;
  check_bool "dropped barrier yields a race" true (n_races t >= 1)

let test_partial_barrier_at_join () =
  (* a worker with no loop iterations never reaches the barrier; the
     generation closes over the arrivers at join and their phases stay
     ordered — no false positive *)
  let t = mk ~nprocs:4 () in
  Sanitize.on_fork t ~region:"par" ~nprocs:4;
  (* only procs 0 and 1 have work; 2 and 3 are idle *)
  acc t ~proc:0 ~addr:0 ~write:true;
  acc t ~proc:1 ~addr:8 ~write:true;
  Sanitize.on_barrier t ~proc:0;
  Sanitize.on_barrier t ~proc:1;
  acc t ~proc:0 ~addr:8 ~write:false;
  acc t ~proc:1 ~addr:0 ~write:false;
  Sanitize.on_join t;
  check_int "idle workers don't fake races" 0 (n_races t)

(* ------------------------------------------------------------------ *)
(* Race vs false-sharing classification *)

let test_line_false_sharing () =
  let t = mk () in
  Sanitize.on_fork t ~region:"par" ~nprocs:2;
  (* distinct words, same 128-byte line *)
  acc t ~proc:0 ~addr:0 ~write:true;
  acc t ~proc:1 ~addr:8 ~write:true;
  Sanitize.on_join t;
  check_int "no data race" 0 (n_races t);
  check_bool "line false sharing reported" true
    (List.exists
       (fun r -> r.Sanitize.rep_kind = Sanitize.Line_sharing)
       (Sanitize.false_sharing t))

let test_page_false_sharing () =
  let t = mk () in
  Sanitize.on_fork t ~region:"par" ~nprocs:2;
  (* distinct lines, same 1024-byte page *)
  acc t ~proc:0 ~addr:0 ~write:true;
  acc t ~proc:1 ~addr:512 ~write:true;
  Sanitize.on_join t;
  check_int "no data race" 0 (n_races t);
  check_bool "page false sharing reported" true
    (List.exists
       (fun r -> r.Sanitize.rep_kind = Sanitize.Page_sharing)
       (Sanitize.false_sharing t));
  check_bool "but not line false sharing (different lines)" true
    (List.for_all
       (fun r -> r.Sanitize.rep_kind <> Sanitize.Line_sharing)
       (Sanitize.false_sharing t))

let test_same_word_is_race_not_sharing () =
  let t = mk () in
  Sanitize.on_fork t ~region:"par" ~nprocs:2;
  acc t ~proc:0 ~addr:64 ~write:true;
  acc t ~proc:1 ~addr:64 ~write:true;
  Sanitize.on_join t;
  check_int "same word: a race" 1 (n_races t);
  check_int "same word: not false sharing" 0 (n_fs t)

let test_ordered_neighbours_no_sharing () =
  let t = mk () in
  (* serial master touches the whole line: ordered, not false sharing *)
  acc t ~proc:0 ~addr:0 ~write:true;
  acc t ~proc:0 ~addr:8 ~write:true;
  Sanitize.on_fork t ~region:"par" ~nprocs:2;
  acc t ~proc:0 ~addr:16 ~write:true;
  Sanitize.on_barrier t ~proc:0;
  Sanitize.on_barrier t ~proc:1;
  acc t ~proc:1 ~addr:24 ~write:true;
  Sanitize.on_join t;
  check_int "ordered neighbour writes are clean" 0 (n_fs t)

let test_array_attribution_and_json () =
  let t = mk () in
  Sanitize.register_array t ~name:"a" ~word_ranges:[ (0, 7) ];
  Sanitize.register_array t ~name:"b" ~word_ranges:[ (8, 15) ];
  Sanitize.on_fork t ~region:"par" ~nprocs:2;
  acc t ~proc:0 ~addr:(8 * 9) ~write:true;
  acc t ~proc:1 ~addr:(8 * 9) ~write:false;
  Sanitize.on_join t;
  let r = List.hd (Sanitize.races t) in
  Alcotest.(check string) "owning array named" "b" r.Sanitize.rep_array;
  let js = Ddsm.Json.to_string (Sanitize.report_json t) in
  check_bool "json counts the race" true (str_contains js "\"races\":1");
  check_bool "json names the array" true (str_contains js "\"array\":\"b\"")

(* ------------------------------------------------------------------ *)
(* End-to-end through the engine *)

let relax_src =
  "      program relax\n\
  \      integer n, i, j\n\
  \      parameter (n = 8)\n\
  \      real*8 a(n), b(n), s\n\
   c$distribute a(block), b(block)\n\
  \      do i = 1, n\n\
  \        a(i) = i + 1.0\n\
  \        b(i) = 0.0\n\
  \      enddo\n\
   c$doacross local(i, j)\n\
  \      do i = 1, n\n\
  \        a(i) = i + 1.0\n\
   c$barrier\n\
  \        j = i + 1 - n * (i / n)\n\
  \        b(i) = a(j)\n\
  \      enddo\n\
  \      s = 0.0\n\
  \      do i = 1, n\n\
  \        s = s + b(i)\n\
  \      enddo\n\
  \      print *, 'sum:', s\n\
  \      end\n"

let run_relax ?fault ?shards ~nprocs () =
  let san =
    Sanitize.create ~nprocs ~line_bytes:128 ~page_bytes:1024 ()
  in
  match Ddsm.run_source ?fault ?shards ~nprocs ~sanitize:san relax_src with
  | Error e -> Alcotest.failf "relax run failed: %s" e
  | Ok o -> (san, o)

let test_engine_clean () =
  let san, o = run_relax ~nprocs:8 () in
  check_int "no races with the barrier intact" 0
    (List.length (Sanitize.races san));
  Alcotest.(check (list string)) "output" [ "sum: 44" ] o.Ddsm.Engine.prints

let test_engine_seeded_race () =
  let fault = Ddsm.Fault.make ~drop_barrier:1 () in
  let san, o = run_relax ~fault ~nprocs:8 () in
  check_bool "dropping one barrier arrival is detected" true
    (List.length (Sanitize.races san) >= 1);
  (* the fault drops only an observer note: values are untouched *)
  Alcotest.(check (list string))
    "output identical under the fault" [ "sum: 44" ] o.Ddsm.Engine.prints;
  let r = List.hd (Sanitize.races san) in
  check_bool "region label present" true
    (String.length r.Sanitize.rep_first_region > 0)

let test_engine_fewer_iterations_than_procs () =
  (* 8 iterations, 16 processors: half the workers never reach the
     barrier — the partial-barrier close at join must not fabricate races *)
  let san, _ = run_relax ~nprocs:16 () in
  check_int "idle processors: still clean" 0
    (List.length (Sanitize.races san))

let test_engine_disabled_is_free () =
  (* without ?sanitize no probe is installed: same cycles as a bare run *)
  match
    ( Ddsm.run_source ~nprocs:8 relax_src,
      Ddsm.run_source ~nprocs:8 relax_src )
  with
  | Ok a, Ok b -> check_int "deterministic" a.Ddsm.Engine.cycles b.Ddsm.Engine.cycles
  | _ -> Alcotest.fail "bare runs failed"

(* The domain-sharded event loop commits every access in the exact
   sequential order, so the sanitizer must see an identical probe stream:
   same races in the same detection order, same false-sharing pairs, same
   rendered report — whether the run was sharded or not, clean or seeded
   with a dropped barrier. *)
let render_san san =
  Format.asprintf "%a|%s" Sanitize.pp_report san
    (Ddsm.Json.to_string (Sanitize.report_json san))

let test_engine_sharded_report_identical () =
  let base_san, base_o = run_relax ~nprocs:8 () in
  List.iter
    (fun shards ->
      let san, o = run_relax ~shards ~nprocs:8 () in
      Alcotest.(check (list string))
        (Printf.sprintf "prints at %d shards" shards)
        base_o.Ddsm.Engine.prints o.Ddsm.Engine.prints;
      check_int
        (Printf.sprintf "cycles at %d shards" shards)
        base_o.Ddsm.Engine.cycles o.Ddsm.Engine.cycles;
      Alcotest.(check string)
        (Printf.sprintf "sanitizer report at %d shards" shards)
        (render_san base_san) (render_san san))
    [ 2; 3 ]

let test_engine_sharded_seeded_race_identical () =
  let fault () = Ddsm.Fault.make ~drop_barrier:1 () in
  let base_san, _ = run_relax ~fault:(fault ()) ~nprocs:8 () in
  check_bool "seeded race fires in the baseline" true
    (List.length (Sanitize.races base_san) >= 1);
  List.iter
    (fun shards ->
      let san, _ = run_relax ~fault:(fault ()) ~shards ~nprocs:8 () in
      Alcotest.(check string)
        (Printf.sprintf "race report at %d shards" shards)
        (render_san base_san) (render_san san))
    [ 2; 3 ]

let test_engine_timing_unchanged_by_sanitizer () =
  let san, o = run_relax ~nprocs:8 () in
  ignore san;
  match Ddsm.run_source ~nprocs:8 relax_src with
  | Error e -> Alcotest.failf "bare run failed: %s" e
  | Ok bare ->
      check_int "sanitizer observes, never perturbs"
        bare.Ddsm.Engine.cycles o.Ddsm.Engine.cycles

let () =
  Alcotest.run "sanitize"
    [
      ( "ordering",
        [
          Alcotest.test_case "serial" `Quick test_serial_no_race;
          Alcotest.test_case "fork edges" `Quick test_fork_orders_master_writes;
          Alcotest.test_case "write/read race" `Quick
            test_unordered_write_read_races;
          Alcotest.test_case "write/write race" `Quick
            test_unordered_write_write_races;
          Alcotest.test_case "reads don't race" `Quick
            test_concurrent_reads_fine;
          Alcotest.test_case "read-vector promotion" `Quick
            test_read_vector_catches_all_readers;
          Alcotest.test_case "barrier orders phases" `Quick
            test_barrier_orders_phases;
          Alcotest.test_case "buffered replay" `Quick
            test_buffered_replay_across_barrier;
          Alcotest.test_case "dropped barrier detected" `Quick
            test_dropped_barrier_detected;
          Alcotest.test_case "partial barrier at join" `Quick
            test_partial_barrier_at_join;
        ] );
      ( "classification",
        [
          Alcotest.test_case "line false sharing" `Quick
            test_line_false_sharing;
          Alcotest.test_case "page false sharing" `Quick
            test_page_false_sharing;
          Alcotest.test_case "same word is a race" `Quick
            test_same_word_is_race_not_sharing;
          Alcotest.test_case "ordered neighbours clean" `Quick
            test_ordered_neighbours_no_sharing;
          Alcotest.test_case "attribution & json" `Quick
            test_array_attribution_and_json;
        ] );
      ( "engine",
        [
          Alcotest.test_case "clean program" `Quick test_engine_clean;
          Alcotest.test_case "seeded barrier drop" `Quick
            test_engine_seeded_race;
          Alcotest.test_case "idle processors" `Quick
            test_engine_fewer_iterations_than_procs;
          Alcotest.test_case "determinism" `Quick test_engine_disabled_is_free;
          Alcotest.test_case "timing unperturbed" `Quick
            test_engine_timing_unchanged_by_sanitizer;
        ] );
      ( "shards",
        [
          Alcotest.test_case "report identical 1 vs N shards" `Quick
            test_engine_sharded_report_identical;
          Alcotest.test_case "seeded race identical 1 vs N shards" `Quick
            test_engine_sharded_seeded_race_identical;
        ] );
    ]
