(* Tests for the runtime system: heap, per-processor pools, distributed-array
   storage (plain / regular / reshaped), redistribution, argument checks. *)

open Ddsm_dist
open Ddsm_machine
open Ddsm_runtime

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let astr_contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

let tiny ?(nprocs = 4) () : Config.t =
  {
    nprocs;
    procs_per_node = 2;
    page_bytes = 256;
    l1 = { size_bytes = 128; line_bytes = 32; assoc = 2; hit_cycles = 1 };
    l2 = { size_bytes = 512; line_bytes = 128; assoc = 2; hit_cycles = 10 };
    tlb_entries = 4;
    tlb_miss_cycles = 57;
    local_mem_cycles = 70;
    remote_base_cycles = 110;
    remote_per_hop_cycles = 12;
    mem_occupancy_cycles = 24;
    dirty_transfer_extra_cycles = 40;
    inval_cycles_per_sharer = 16;
    node_mem_bytes = 64 * 1024;
  }

let mk ?(nprocs = 4) ?(policy = Pagetable.First_touch) () =
  Rt.create (tiny ~nprocs ()) ~policy ~heap_words:65536 ()

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_alloc () =
  let h = Heap.create ~words:1000 in
  let a = Heap.alloc h ~words:10 ~align_words:1 in
  check_int "first alloc at 0" 0 a;
  let b = Heap.alloc h ~words:5 ~align_words:32 in
  check_int "aligned" 32 b;
  check_int "used" 37 (Heap.used_words h);
  Heap.set_real h a 3.5;
  Heap.set_int h b 42;
  check_bool "real roundtrip" true (Heap.get_real h a = 3.5);
  check_int "int roundtrip" 42 (Heap.get_int h b);
  check_bool "overflow raises" true
    (try
       ignore (Heap.alloc h ~words:10_000 ~align_words:1);
       false
     with Heap.Out_of_memory _ -> true)

(* ------------------------------------------------------------------ *)
(* Pools *)

let test_pools_local_and_dense () =
  let rt = mk () in
  (* two consecutive allocations by proc 3 pack densely: no page padding *)
  let a = Pools.alloc rt.Rt.pools ~proc:3 ~words:10 in
  let b = Pools.alloc rt.Rt.pools ~proc:3 ~words:10 in
  check_int "dense packing (no padding to page boundary)" (a + 10) b;
  (* the slab's pages live on proc 3's node (node 1) *)
  Alcotest.(check (option int))
    "pool pages on owner's node" (Some 1)
    (Memsys.home_of_addr rt.Rt.mem (Heap.byte_of_word a));
  (* a different proc allocates from a different slab on its own node *)
  let c = Pools.alloc rt.Rt.pools ~proc:0 ~words:10 in
  Alcotest.(check (option int))
    "other proc's pool is on its node" (Some 0)
    (Memsys.home_of_addr rt.Rt.mem (Heap.byte_of_word c))

let test_pools_slab_growth () =
  let rt = mk () in
  (* slab = 4 pages = 128 words on this config; allocate past it *)
  ignore (Pools.alloc rt.Rt.pools ~proc:1 ~words:100);
  check_int "one slab" 1 (Pools.slabs_allocated rt.Rt.pools ~proc:1);
  ignore (Pools.alloc rt.Rt.pools ~proc:1 ~words:100);
  check_int "grew" 2 (Pools.slabs_allocated rt.Rt.pools ~proc:1)

(* ------------------------------------------------------------------ *)
(* Darray: plain storage *)

let test_plain_column_major () =
  let rt = mk () in
  let a =
    Rt.declare_plain rt ~name:"A" ~elem:Darray.Real ~extents:[| 10; 20 |] ()
  in
  let base = Darray.word_addr a [| 1; 1 |] in
  check_int "A(2,1) is next word" (base + 1) (Darray.word_addr a [| 2; 1 |]);
  check_int "A(1,2) is one column away" (base + 10) (Darray.word_addr a [| 1; 2 |]);
  check_int "element count" 200 (Darray.element_count a);
  check_bool "bounds check" true
    (try
       ignore (Darray.word_addr a [| 11; 1 |]);
       false
     with Invalid_argument _ -> true)

let test_plain_lower_bounds () =
  let rt = mk () in
  let a =
    Rt.declare_plain rt ~name:"B" ~elem:Darray.Real ~extents:[| 5 |]
      ~lower:[| 0 |] ()
  in
  let b0 = Darray.word_addr a [| 0 |] in
  check_int "B(4) offset 4" (b0 + 4) (Darray.word_addr a [| 4 |])

(* ------------------------------------------------------------------ *)
(* Darray: regular distribution page placement *)

let test_regular_column_dist_spreads () =
  (* ( *, block ) over big columns: each processor's pages on its own node *)
  let rt = mk () in
  let a =
    Rt.declare_regular rt ~name:"A" ~elem:Darray.Real ~extents:[| 64; 8 |]
      ~kinds:[| Kind.Star; Kind.Block |] ()
  in
  (* 64x8 words = 512 words = 16 pages of 32 words; cols 1-2 on p0 ... *)
  let addr_of j = Darray.word_addr a [| 1; j |] in
  Alcotest.(check (option int))
    "first columns on node 0" (Some 0)
    (Memsys.home_of_addr rt.Rt.mem (Heap.byte_of_word (addr_of 1)));
  Alcotest.(check (option int))
    "last columns on node 1" (Some 1)
    (Memsys.home_of_addr rt.Rt.mem (Heap.byte_of_word (addr_of 8)))

let test_regular_row_dist_collapses () =
  (* (block, * ) with portions much smaller than a page: every page is
     requested by every processor; the last requester wins, so the whole
     array lands on one node (paper §8.2's pathology). *)
  let rt = mk () in
  (* 16-word columns, 32-word pages: every page holds two full columns, each
     containing all four processors' 4-row runs *)
  let a =
    Rt.declare_regular rt ~name:"A" ~elem:Darray.Real ~extents:[| 16; 16 |]
      ~kinds:[| Kind.Block; Kind.Star |] ()
  in
  let homes = ref [] in
  for j = 1 to 16 do
    for i = 1 to 16 do
      let h =
        Memsys.home_of_addr rt.Rt.mem
          (Heap.byte_of_word (Darray.word_addr a [| i; j |]))
      in
      homes := Option.get h :: !homes
    done
  done;
  let distinct = List.sort_uniq compare !homes in
  check_int "all pages on a single node" 1 (List.length distinct);
  (* and it is the last requester's node: proc 3 -> node 1 *)
  Alcotest.(check (list int)) "last requester wins" [ 1 ] distinct

(* ------------------------------------------------------------------ *)
(* Darray: reshaped storage *)

let test_reshaped_addresses_local () =
  let rt = mk () in
  let a =
    Rt.declare_reshaped rt ~name:"A" ~elem:Darray.Real ~extents:[| 64; 8 |]
      ~kinds:[| Kind.Block; Kind.Star |] ()
  in
  let layout = Option.get a.Darray.layout in
  (* every element's word address must live on the owner's node *)
  for j = 1 to 8 do
    for i = 1 to 64 do
      let p = Layout.owner layout [| i - 1; j - 1 |] in
      let node = Config.node_of_proc (tiny ()) p in
      let addr = Darray.word_addr a [| i; j |] in
      Alcotest.(check (option int))
        (Printf.sprintf "A(%d,%d) on owner node" i j)
        (Some node)
        (Memsys.home_of_addr rt.Rt.mem (Heap.byte_of_word addr))
    done
  done

let test_reshaped_injective () =
  let rt = mk () in
  let a =
    Rt.declare_reshaped rt ~name:"A" ~elem:Darray.Real ~extents:[| 13; 7 |]
      ~kinds:[| Kind.Cyclic_k 3; Kind.Block |] ()
  in
  let seen = Hashtbl.create 128 in
  for j = 1 to 7 do
    for i = 1 to 13 do
      let addr = Darray.word_addr a [| i; j |] in
      check_bool "address unique" false (Hashtbl.mem seen addr);
      Hashtbl.replace seen addr (i, j);
      (* and within the owner's portion box *)
      let layout = Option.get a.Darray.layout in
      let p = Layout.owner layout [| i - 1; j - 1 |] in
      let base = Darray.portion_base a ~proc:p in
      let words = Darray.portion_words a ~proc:p in
      check_bool "address within portion" true (addr >= base && addr < base + words)
    done
  done

let test_reshaped_meta_block () =
  let rt = mk () in
  let a =
    Rt.declare_reshaped rt ~name:"A" ~elem:Darray.Real ~extents:[| 64; 8 |]
      ~kinds:[| Kind.Star; Kind.Block |] ()
  in
  let mb = Darray.meta_base a in
  let h = rt.Rt.heap in
  (* dim 0: star -> 1 proc; dim 1: block over 4 procs, b = 2 *)
  check_int "procs dim 0" 1 (Heap.get_int h (mb + Darray.Meta.procs_off ~dim:0));
  check_int "procs dim 1" 4 (Heap.get_int h (mb + Darray.Meta.procs_off ~dim:1));
  check_int "block dim 1" 2 (Heap.get_int h (mb + Darray.Meta.block_off ~dim:1));
  check_int "storage dim 0" 64 (Heap.get_int h (mb + Darray.Meta.stor_off ~dim:0));
  (* processor-pointer array matches descriptor copy *)
  for p = 0 to 3 do
    check_int
      (Printf.sprintf "proc %d base pointer" p)
      (Darray.portion_base a ~proc:p)
      (Heap.get_int h (mb + Darray.Meta.bases_off ~ndims:2 + p))
  done

let test_reshaped_data_roundtrip () =
  let rt = mk () in
  let a =
    Rt.declare_reshaped rt ~name:"A" ~elem:Darray.Real ~extents:[| 16; 16 |]
      ~kinds:[| Kind.Block; Kind.Block |] ()
  in
  for j = 1 to 16 do
    for i = 1 to 16 do
      Rt.write rt ~addr:(Darray.word_addr a [| i; j |]) ~elem:Darray.Real
        (float_of_int ((100 * i) + j))
    done
  done;
  let ok = ref true in
  for j = 1 to 16 do
    for i = 1 to 16 do
      if
        Rt.read rt ~addr:(Darray.word_addr a [| i; j |]) ~elem:Darray.Real
        <> float_of_int ((100 * i) + j)
      then ok := false
    done
  done;
  check_bool "values survive reshaping" true !ok

let prop_reshaped_injective_within_box =
  QCheck.Test.make ~count:100 ~name:"reshaped addressing injective, in-box"
    QCheck.(
      make
        Gen.(
          let* n1 = int_range 1 20 in
          let* n2 = int_range 1 20 in
          let* k1 =
            oneof [ return Kind.Block; return Kind.Cyclic; map (fun k -> Kind.Cyclic_k k) (int_range 1 4) ]
          in
          let* k2 =
            oneof [ return Kind.Star; return Kind.Block; return Kind.Cyclic ]
          in
          return (n1, n2, k1, k2)))
    (fun (n1, n2, k1, k2) ->
      let rt = mk () in
      let a =
        Rt.declare_reshaped rt ~name:"A" ~elem:Darray.Real ~extents:[| n1; n2 |]
          ~kinds:[| k1; k2 |] ()
      in
      let seen = Hashtbl.create 64 in
      let ok = ref true in
      for j = 1 to n2 do
        for i = 1 to n1 do
          let addr = Darray.word_addr a [| i; j |] in
          if Hashtbl.mem seen addr then ok := false;
          Hashtbl.replace seen addr ()
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Redistribute *)

let test_redistribute_moves_pages () =
  let rt = mk () in
  ignore
    (Rt.declare_regular rt ~name:"A" ~elem:Darray.Real ~extents:[| 64; 8 |]
       ~kinds:[| Kind.Star; Kind.Block |] ());
  match Rt.redistribute rt ~name:"A" ~kinds:[| Kind.Star; Kind.Cyclic |] () with
  | Error e -> Alcotest.fail e
  | Ok { Rt.moved; words = _; rounds = _; round_words = _; retries; fell_back }
    ->
      check_bool "some pages moved" true (moved > 0);
      check_int "no retries without faults" 0 retries;
      check_bool "no fallback without faults" false fell_back;
      check_int "accounted" moved rt.Rt.redist_pages

let test_redistribute_rejects_reshaped () =
  let rt = mk () in
  ignore
    (Rt.declare_reshaped rt ~name:"R" ~elem:Darray.Real ~extents:[| 32 |]
       ~kinds:[| Kind.Block |] ());
  (* PR 8: reshaped arrays redistribute too, via copy-then-install *)
  check_bool "reshaped accepted" true
    (Result.is_ok (Rt.redistribute rt ~name:"R" ~kinds:[| Kind.Cyclic |] ()));
  ignore (Rt.declare_plain rt ~name:"P" ~elem:Darray.Real ~extents:[| 32 |] ());
  check_bool "plain rejected" true
    (Result.is_error (Rt.redistribute rt ~name:"P" ~kinds:[| Kind.Cyclic |] ()));
  check_bool "unknown rejected" true
    (Result.is_error (Rt.redistribute rt ~name:"nope" ~kinds:[| Kind.Cyclic |] ()))

(* regression for the redistribution shootdown: migration gives every
   remapped page a fresh frame, so stale per-proc TLB entries and
   one-entry translation memos must be invalidated.  Random
   access/redistribute/access interleavings must leave nothing the
   machine audit (which cross-checks TLBs and memos against the page
   table) can object to. *)
let prop_redistribute_shootdown =
  QCheck.Test.make ~count:50 ~name:"redistribute invalidates TLBs and memos"
    QCheck.(
      make
        ~print:(fun (n, k1, k2, seed) ->
          Printf.sprintf "n=%d %s->%s seed=%d" n (Kind.to_string k1)
            (Kind.to_string k2) seed)
        Gen.(
          let* n = int_range 8 64 in
          let* k1 =
            oneofl [ Kind.Block; Kind.Cyclic; Kind.Cyclic_k 2 ]
          in
          let* k2 =
            oneofl [ Kind.Block; Kind.Cyclic; Kind.Cyclic_k 3 ]
          in
          let* seed = int_range 0 9999 in
          return (n, k1, k2, seed)))
    (fun (n, k1, k2, seed) ->
      let rt = mk () in
      let a =
        Rt.declare_regular rt ~name:"A" ~elem:Darray.Real ~extents:[| n |]
          ~kinds:[| k1 |] ()
      in
      let words =
        Array.of_list
          (List.concat_map
             (fun (lo, hi) -> List.init (hi - lo + 1) (fun i -> lo + i))
             (Darray.word_ranges a))
      in
      let rng = Random.State.make [| seed |] in
      let now = ref 0 in
      let touch () =
        let w = words.(Random.State.int rng (Array.length words)) in
        let proc = Random.State.int rng 4 in
        let write = Random.State.bool rng in
        now :=
          !now
          + Memsys.access rt.Rt.mem ~proc ~addr:(Heap.byte_of_word w) ~write
              ~now:!now
      in
      for _ = 1 to 32 do touch () done;
      (match Rt.redistribute rt ~name:"A" ~kinds:[| k2 |] () with
      | Ok _ -> ()
      | Error e -> QCheck.Test.fail_report e);
      for _ = 1 to 32 do touch () done;
      match Memsys.audit rt.Rt.mem @ Rt.audit rt with
      | [] -> true
      | vs ->
          QCheck.Test.fail_reportf "audit: %s"
            (String.concat "; "
               (List.map
                  (fun v ->
                    v.Ddsm_check.Audit.invariant ^ ": "
                    ^ v.Ddsm_check.Audit.detail)
                  vs)))

(* ------------------------------------------------------------------ *)
(* Argcheck *)

let test_argcheck_whole_array () =
  let t = Argcheck.create () in
  Argcheck.register t ~addr:100
    (Argcheck.Whole_array { extents = [| 10; 20 |]; kinds = [| Kind.Block; Kind.Star |] });
  check_bool "exact match ok" true
    (Result.is_ok
       (Argcheck.check_entry t ~addr:100 ~name:"X" ~formal_extents:[| 10; 20 |] ()));
  check_bool "size mismatch flagged" true
    (Result.is_error
       (Argcheck.check_entry t ~addr:100 ~name:"X" ~formal_extents:[| 10; 21 |] ()));
  check_bool "rank mismatch flagged" true
    (Result.is_error
       (Argcheck.check_entry t ~addr:100 ~name:"X" ~formal_extents:[| 200 |] ()));
  check_bool "distribution match ok" true
    (Result.is_ok
       (Argcheck.check_entry t ~addr:100 ~name:"X" ~formal_extents:[| 10; 20 |]
          ~formal_kinds:[| Kind.Block; Kind.Star |] ()));
  check_bool "distribution mismatch flagged" true
    (Result.is_error
       (Argcheck.check_entry t ~addr:100 ~name:"X" ~formal_extents:[| 10; 20 |]
          ~formal_kinds:[| Kind.Cyclic; Kind.Star |] ()))

let test_argcheck_portion () =
  (* paper §3.2.1: A(1000) cyclic(5), call mysub(A(i)) passes a 5-element
     portion; mysub's formal may declare at most 5 elements *)
  let t = Argcheck.create () in
  Argcheck.register t ~addr:500 (Argcheck.Portion { words = 5 });
  check_bool "X(5) accepted" true
    (Result.is_ok (Argcheck.check_entry t ~addr:500 ~name:"X" ~formal_extents:[| 5 |] ()));
  check_bool "X(6) rejected" true
    (Result.is_error
       (Argcheck.check_entry t ~addr:500 ~name:"X" ~formal_extents:[| 6 |] ()));
  check_bool "balanced unregister ok" true
    (Result.is_ok (Argcheck.unregister t ~addr:500));
  check_bool "after return, no check" true
    (Result.is_ok (Argcheck.check_entry t ~addr:500 ~name:"X" ~formal_extents:[| 99 |] ()))

let test_argcheck_stacking () =
  let t = Argcheck.create () in
  Argcheck.register t ~addr:7 (Argcheck.Portion { words = 5 });
  Argcheck.register t ~addr:7 (Argcheck.Portion { words = 3 });
  check_int "two entries" 2 (Argcheck.depth t);
  check_bool "innermost wins" true
    (Result.is_error (Argcheck.check_entry t ~addr:7 ~name:"X" ~formal_extents:[| 4 |] ()));
  check_bool "inner pop ok" true (Result.is_ok (Argcheck.unregister t ~addr:7));
  check_bool "outer visible again" true
    (Result.is_ok (Argcheck.check_entry t ~addr:7 ~name:"X" ~formal_extents:[| 4 |] ()));
  check_bool "outer pop ok" true (Result.is_ok (Argcheck.unregister t ~addr:7));
  (* unbalanced: the underflow must be reported, not swallowed *)
  (match Argcheck.unregister t ~addr:7 with
  | Ok () -> Alcotest.fail "unbalanced unregister must be an error"
  | Error m ->
      check_bool "underflow names the protocol" true
        (astr_contains m "argument-check underflow"));
  check_int "empty" 0 (Argcheck.depth t)

(* ------------------------------------------------------------------ *)
(* Rt *)

let test_rt_duplicate_array () =
  let rt = mk () in
  ignore (Rt.declare_plain rt ~name:"A" ~elem:Darray.Real ~extents:[| 4 |] ());
  check_bool "duplicate rejected" true
    (try
       ignore (Rt.declare_plain rt ~name:"A" ~elem:Darray.Real ~extents:[| 4 |] ());
       false
     with Invalid_argument _ -> true);
  check_bool "lookup" true (Rt.find_array rt "A" <> None);
  check_bool "missing lookup" true (Rt.find_array rt "Z" = None)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)

let () =
  Alcotest.run "runtime"
    [
      ("heap", [ Alcotest.test_case "bump allocation" `Quick test_heap_alloc ]);
      ( "pools",
        [
          Alcotest.test_case "local & dense" `Quick test_pools_local_and_dense;
          Alcotest.test_case "slab growth" `Quick test_pools_slab_growth;
        ] );
      ( "darray.plain",
        [
          Alcotest.test_case "column major" `Quick test_plain_column_major;
          Alcotest.test_case "lower bounds" `Quick test_plain_lower_bounds;
        ] );
      ( "darray.regular",
        [
          Alcotest.test_case "(*,block) spreads pages" `Quick test_regular_column_dist_spreads;
          Alcotest.test_case "(block,*) collapses to one node" `Quick test_regular_row_dist_collapses;
        ] );
      ( "darray.reshaped",
        [
          Alcotest.test_case "portions on owner nodes" `Quick test_reshaped_addresses_local;
          Alcotest.test_case "addressing injective" `Quick test_reshaped_injective;
          Alcotest.test_case "descriptor block contents" `Quick test_reshaped_meta_block;
          Alcotest.test_case "data roundtrip" `Quick test_reshaped_data_roundtrip;
        ] );
      qsuite "darray.props" [ prop_reshaped_injective_within_box ];
      ( "redistribute",
        [
          Alcotest.test_case "moves pages" `Quick test_redistribute_moves_pages;
          Alcotest.test_case "rejects reshaped/plain/unknown" `Quick test_redistribute_rejects_reshaped;
        ] );
      qsuite "redistribute.props" [ prop_redistribute_shootdown ];
      ( "argcheck",
        [
          Alcotest.test_case "whole array" `Quick test_argcheck_whole_array;
          Alcotest.test_case "portion" `Quick test_argcheck_portion;
          Alcotest.test_case "stacking" `Quick test_argcheck_stacking;
        ] );
      ("rt", [ Alcotest.test_case "registry" `Quick test_rt_duplicate_array ]);
    ]
