(* Tests for the distribution algebra: Table 1 addressing math, Figure 2
   affinity scheduling, processor grids, portion enumeration. *)

open Ddsm_dist

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Intmath *)

let test_fdiv () =
  check_int "fdiv 7 2" 3 (Intmath.fdiv 7 2);
  check_int "fdiv -7 2" (-4) (Intmath.fdiv (-7) 2);
  check_int "fdiv -8 2" (-4) (Intmath.fdiv (-8) 2);
  check_int "fdiv 0 5" 0 (Intmath.fdiv 0 5);
  check_int "fmod -7 3" 2 (Intmath.fmod (-7) 3);
  check_int "fmod 7 3" 1 (Intmath.fmod 7 3);
  check_int "cdiv 7 2" 4 (Intmath.cdiv 7 2);
  check_int "cdiv 8 2" 4 (Intmath.cdiv 8 2);
  check_int "cdiv -7 2" (-3) (Intmath.cdiv (-7) 2);
  Alcotest.check_raises "fdiv by zero"
    (Invalid_argument "Intmath.fdiv: non-positive divisor") (fun () ->
      ignore (Intmath.fdiv 1 0))

let test_egcd () =
  List.iter
    (fun (a, b) ->
      let g, x, y = Intmath.egcd a b in
      check_int (Printf.sprintf "egcd %d %d bezout" a b) g ((a * x) + (b * y));
      check_bool "g non-negative" true (g >= 0))
    [ (12, 18); (18, 12); (7, 13); (0, 5); (5, 0); (-12, 18); (1, 1); (100, 75) ]

let test_align_up () =
  check_int "align in grid" 7 (Intmath.align_up 7 ~base:1 ~step:3);
  check_int "align up" 7 (Intmath.align_up 6 ~base:1 ~step:3);
  check_int "align below base" 1 (Intmath.align_up 0 ~base:1 ~step:3);
  check_int "align equal base" 1 (Intmath.align_up 1 ~base:1 ~step:3)

let test_ap_intersect_brute () =
  (* brute force over small parameter space *)
  for s1 = 0 to 4 do
    for st1 = 1 to 5 do
      for s2 = 0 to 4 do
        for st2 = 1 to 5 do
          let a = { Intmath.start = s1; step = st1 }
          and b = { Intmath.start = s2; step = st2 } in
          let in_ap { Intmath.start; step } x = x >= start && (x - start) mod step = 0 in
          let brute =
            List.filter (fun x -> in_ap a x && in_ap b x) (List.init 200 Fun.id)
          in
          match Intmath.ap_intersect a b with
          | None ->
              Alcotest.(check (list int)) "empty intersection" [] brute
          | Some ({ Intmath.start; step } as r) ->
              let mine = List.filter (in_ap r) (List.init 200 Fun.id) in
              Alcotest.(check (list int))
                (Printf.sprintf "ap(%d,%d) ∩ ap(%d,%d) start=%d step=%d" s1 st1
                   s2 st2 start step)
                brute mine
        done
      done
    done
  done

let test_intmath_min_int () =
  (* fdiv/fmod are exact at the bottom of the int range (the old
     -((-a + b - 1) / b) formula overflowed at -min_int) *)
  check_int "fdiv min_int 1" min_int (Intmath.fdiv min_int 1);
  check_int "fdiv min_int 2" (min_int / 2) (Intmath.fdiv min_int 2);
  check_int "fdiv (min_int+1) 2" ((min_int / 2) - 1 + 1)
    (Intmath.fdiv (min_int + 1) 2);
  check_int "fmod min_int 3" ((min_int mod 3) + 3) (Intmath.fmod min_int 3);
  (* |min_int| is unrepresentable: egcd refuses instead of returning a
     negative "gcd" *)
  let expect_invalid name f =
    check_bool name true
      (match f () with
      | exception Invalid_argument _ -> true
      | _ -> false)
  in
  expect_invalid "egcd min_int 0" (fun () -> Intmath.egcd min_int 0);
  expect_invalid "egcd 0 min_int" (fun () -> Intmath.egcd 0 min_int);
  expect_invalid "gcd min_int 12" (fun () -> Intmath.gcd min_int 12);
  (* negative (but representable) operands still give a non-negative gcd *)
  check_int "gcd -12 18" 6 (Intmath.gcd (-12) 18);
  check_int "gcd (min_int+1) 0" max_int (Intmath.gcd (min_int + 1) 0)

let in_ap { Intmath.start; step } x = x >= start && Intmath.fmod (x - start) step = 0

(* Property: against a brute-force oracle, with negative starts. The
   oracle enumerates lo .. lo + st1*st2 which always contains the first
   common element when one exists (period divides st1*st2). *)
let prop_ap_intersect_oracle =
  QCheck.Test.make ~count:1000 ~name:"ap_intersect: matches brute oracle"
    QCheck.(
      quad (int_range (-100) 100) (int_range 1 50) (int_range (-100) 100)
        (int_range 1 50))
    (fun (s1, st1, s2, st2) ->
      let a = { Intmath.start = s1; step = st1 }
      and b = { Intmath.start = s2; step = st2 } in
      let lo = max s1 s2 in
      let brute =
        List.find_opt
          (fun x -> in_ap a x && in_ap b x)
          (List.init ((st1 * st2) + 1) (fun i -> lo + i))
      in
      match (Intmath.ap_intersect a b, brute) with
      | None, None -> true
      | None, Some _ | Some _, None -> false
      | Some r, Some first ->
          r.Intmath.start = first
          && r.Intmath.step = st1 * st2 / Intmath.gcd st1 st2)

let test_ap_intersect_large_steps () =
  (* the raw CRT product u * (diff/g) overflows for large steps and
     far-apart starts; verify by congruence + minimality instead of
     enumeration *)
  let check_pair a b =
    match Intmath.ap_intersect a b with
    | None -> Alcotest.fail "expected non-empty intersection"
    | Some r ->
        let lo = max a.Intmath.start b.Intmath.start in
        check_bool "start in a" true (in_ap a r.Intmath.start);
        check_bool "start in b" true (in_ap b r.Intmath.start);
        check_bool "start >= lo" true (r.Intmath.start >= lo);
        check_int "step is lcm"
          (a.Intmath.step / Intmath.gcd a.Intmath.step b.Intmath.step
          * b.Intmath.step)
          r.Intmath.step;
        (* minimality: the previous element of the result progression is
           below the admissible range *)
        check_bool "start is minimal" true (r.Intmath.start - r.Intmath.step < lo)
  in
  let big1 = (1 lsl 31) - 1 (* prime 2^31-1 *) and big2 = (1 lsl 30) + 3 in
  check_pair
    { Intmath.start = -1_000_000_000; step = big1 }
    { Intmath.start = 999_999_937; step = big2 };
  check_pair
    { Intmath.start = 0; step = big1 }
    { Intmath.start = max_int / 2; step = 2 };
  (* explicit refusals instead of silent wraps *)
  let expect_invalid name f =
    check_bool name true
      (match f () with
      | exception Invalid_argument _ -> true
      | _ -> false)
  in
  expect_invalid "step >= 2^31 refused" (fun () ->
      Intmath.ap_intersect
        { Intmath.start = 0; step = 1 lsl 31 }
        { Intmath.start = 0; step = 3 });
  expect_invalid "overflowing start difference refused" (fun () ->
      Intmath.ap_intersect
        { Intmath.start = min_int + 10; step = 3 }
        { Intmath.start = max_int - 10; step = 5 })

(* ------------------------------------------------------------------ *)
(* Kind *)

let test_kind_strings () =
  let roundtrip k =
    match Kind.of_string (Kind.to_string k) with
    | Ok k' -> check_bool (Kind.to_string k) true (Kind.equal k k')
    | Error e -> Alcotest.fail e
  in
  List.iter roundtrip [ Kind.Block; Kind.Cyclic; Kind.Cyclic_k 7; Kind.Star ];
  check_bool "case-insensitive" true
    (Kind.of_string "BLOCK" = Ok Kind.Block);
  check_bool "cyclic(1) = cyclic" true (Kind.equal (Kind.Cyclic_k 1) Kind.Cyclic);
  check_bool "bad kind rejected" true
    (match Kind.of_string "banana" with Error _ -> true | Ok _ -> false);
  check_bool "cyclic(0) rejected" true
    (match Kind.of_string "cyclic(0)" with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Dim_map: Table 1 *)

let test_table1_block () =
  (* N=1000, P=8: b = 125 *)
  let dm = Dim_map.make ~extent:1000 ~procs:8 Kind.Block in
  check_int "block size" 125 dm.Dim_map.block;
  check_int "owner 0" 0 (Dim_map.owner dm 0);
  check_int "owner 124" 0 (Dim_map.owner dm 124);
  check_int "owner 125" 1 (Dim_map.owner dm 125);
  check_int "owner 999" 7 (Dim_map.owner dm 999);
  check_int "offset 125" 0 (Dim_map.offset dm 125);
  check_int "offset 999" 124 (Dim_map.offset dm 999);
  check_int "global inverse" 999 (Dim_map.global dm ~proc:7 ~offset:124)

let test_table1_cyclic () =
  let dm = Dim_map.make ~extent:10 ~procs:3 Kind.Cyclic in
  (* elements: p0 {0,3,6,9} p1 {1,4,7} p2 {2,5,8} *)
  check_int "owner 9" 0 (Dim_map.owner dm 9);
  check_int "offset 9" 3 (Dim_map.offset dm 9);
  check_int "portion p0" 4 (Dim_map.portion_size dm ~proc:0);
  check_int "portion p1" 3 (Dim_map.portion_size dm ~proc:1);
  check_int "portion p2" 3 (Dim_map.portion_size dm ~proc:2);
  check_int "storage" 4 (Dim_map.storage_extent dm)

let test_table1_cyclic_k () =
  (* paper §3.2.1 example: real*8 A(1000), cyclic(5): chunks of 5 dealt out *)
  let dm = Dim_map.make ~extent:1000 ~procs:4 (Kind.Cyclic_k 5) in
  check_int "owner of 0" 0 (Dim_map.owner dm 0);
  check_int "owner of 5" 1 (Dim_map.owner dm 5);
  check_int "owner of 20" 0 (Dim_map.owner dm 20);
  check_int "offset of 20" 5 (Dim_map.offset dm 20);
  check_int "offset of 23" 8 (Dim_map.offset dm 23);
  check_int "portion sizes" 250 (Dim_map.portion_size dm ~proc:0);
  (* every chunk is a contiguous range of 5 *)
  List.iter
    (fun (lo, hi) -> check_int "chunk width 5" 4 (hi - lo))
    (Dim_map.portion_ranges dm ~proc:2)

let test_cyclic_k_ragged () =
  (* N=13, k=3, P=2: chunks [0,2][3,5][6,8][9,11][12,12];
     p0 gets chunks 0,2,4 = {0..2, 6..8, 12}; p1 gets chunks 1,3 *)
  let dm = Dim_map.make ~extent:13 ~procs:2 (Kind.Cyclic_k 3) in
  check_int "p0 size" 7 (Dim_map.portion_size dm ~proc:0);
  check_int "p1 size" 6 (Dim_map.portion_size dm ~proc:1);
  Alcotest.(check (list (pair int int)))
    "p0 ranges" [ (0, 2); (6, 8); (12, 12) ]
    (Dim_map.portion_ranges dm ~proc:0);
  check_int "owner 12" 0 (Dim_map.owner dm 12);
  check_int "offset 12" 6 (Dim_map.offset dm 12);
  check_int "storage rounds up" 9 (Dim_map.storage_extent dm)

let test_star () =
  let dm = Dim_map.make ~extent:42 ~procs:1 Kind.Star in
  check_int "owner" 0 (Dim_map.owner dm 17);
  check_int "offset identity" 17 (Dim_map.offset dm 17);
  Alcotest.check_raises "star with procs>1 rejected"
    (Invalid_argument "Dim_map.make: a '*' dimension cannot span processors")
    (fun () -> ignore (Dim_map.make ~extent:10 ~procs:2 Kind.Star))

let all_kinds_gen =
  QCheck.Gen.(
    oneof
      [ return Kind.Block; return Kind.Cyclic;
        map (fun k -> Kind.Cyclic_k k) (int_range 1 7) ])

let dim_map_gen =
  QCheck.Gen.(
    let* extent = int_range 1 200 in
    let* procs = int_range 1 16 in
    let* kind = all_kinds_gen in
    return (Dim_map.make ~extent ~procs kind))

let dim_map_arb =
  QCheck.make dim_map_gen ~print:(fun dm -> Format.asprintf "%a" Dim_map.pp dm)

let prop_roundtrip =
  QCheck.Test.make ~count:500 ~name:"dim_map: global(owner,offset) = id"
    dim_map_arb (fun dm ->
      let ok = ref true in
      for i = 0 to dm.Dim_map.extent - 1 do
        let p = Dim_map.owner dm i and o = Dim_map.offset dm i in
        if p < 0 || p >= dm.Dim_map.procs then ok := false;
        if o < 0 || o >= Dim_map.storage_extent dm then ok := false;
        if Dim_map.global dm ~proc:p ~offset:o <> i then ok := false
      done;
      !ok)

let prop_portion_partition =
  QCheck.Test.make ~count:500 ~name:"dim_map: portions partition [0,N)"
    dim_map_arb (fun dm ->
      let seen = Array.make dm.Dim_map.extent 0 in
      let total = ref 0 in
      for p = 0 to dm.Dim_map.procs - 1 do
        let count = ref 0 in
        Dim_map.iter_portion dm ~proc:p (fun i ->
            seen.(i) <- seen.(i) + 1;
            incr count;
            if Dim_map.owner dm i <> p then failwith "owner mismatch");
        if !count <> Dim_map.portion_size dm ~proc:p then
          failwith "portion_size mismatch";
        total := !total + !count
      done;
      !total = dm.Dim_map.extent && Array.for_all (fun c -> c = 1) seen)

let prop_ranges_sorted_maximal =
  QCheck.Test.make ~count:300 ~name:"dim_map: portion_ranges sorted & maximal"
    dim_map_arb (fun dm ->
      let ok = ref true in
      for p = 0 to dm.Dim_map.procs - 1 do
        let rs = Dim_map.portion_ranges dm ~proc:p in
        let rec chk = function
          | (lo, hi) :: ((lo2, _) :: _ as rest) ->
              if lo > hi || hi + 1 >= lo2 then ok := false;
              chk rest
          | [ (lo, hi) ] -> if lo > hi then ok := false
          | [] -> ()
        in
        chk rs
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Grid *)

let test_grid_basics () =
  let g = Grid.assign ~nprocs:64 ~kinds:[| Kind.Block; Kind.Block |] ~onto:None in
  Alcotest.(check (array int)) "64 over 2 dims" [| 8; 8 |] g.Grid.per_dim;
  let g = Grid.assign ~nprocs:8 ~kinds:[| Kind.Star; Kind.Block |] ~onto:None in
  Alcotest.(check (array int)) "star gets 1" [| 1; 8 |] g.Grid.per_dim;
  let g =
    Grid.assign ~nprocs:8 ~kinds:[| Kind.Block; Kind.Block |] ~onto:(Some [| 2; 1 |])
  in
  Alcotest.(check (array int)) "onto 2:1" [| 4; 2 |] g.Grid.per_dim;
  let g = Grid.assign ~nprocs:7 ~kinds:[| Kind.Star |] ~onto:None in
  check_int "no distributed dims -> total 1" 1 g.Grid.total

let test_grid_exact_product () =
  List.iter
    (fun n ->
      let g =
        Grid.assign ~nprocs:n ~kinds:[| Kind.Block; Kind.Cyclic; Kind.Block |]
          ~onto:None
      in
      check_int (Printf.sprintf "product = %d" n) n
        (Array.fold_left ( * ) 1 g.Grid.per_dim))
    [ 1; 2; 3; 6; 8; 12; 16; 24; 36; 60; 96; 128 ]

let prop_grid_linear_roundtrip =
  QCheck.Test.make ~count:300 ~name:"grid: delinear . linear = id"
    QCheck.(pair (int_range 1 128) (int_range 1 3))
    (fun (nprocs, ndist) ->
      let kinds = Array.make ndist Kind.Block in
      let g = Grid.assign ~nprocs ~kinds ~onto:None in
      let ok = ref true in
      for p = 0 to g.Grid.total - 1 do
        if Grid.linear g (Grid.delinear g p) <> p then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Layout *)

let test_layout_column_dist () =
  (* real*8 A(1000,1000); c$distribute A ( *, block): contiguous portion of
     8*10^6/P bytes per processor (paper §3.2 first example) *)
  let l =
    Layout.make ~extents:[| 1000; 1000 |] ~kinds:[| Kind.Star; Kind.Block |]
      ~nprocs:8 ()
  in
  let ranges = Layout.contiguous_ranges l ~proc:3 ~elem_bytes:8 in
  check_int "single contiguous piece" 1 (List.length ranges);
  let lo, hi = List.hd ranges in
  check_int "piece size = 8e6/8" 1_000_000 (hi - lo + 1)

let test_layout_row_dist () =
  (* c$distribute A (block, * ): column-major layout means each contiguous
     piece is only 8*1000/P bytes (paper §3.2 second example) *)
  let l =
    Layout.make ~extents:[| 1000; 1000 |] ~kinds:[| Kind.Block; Kind.Star |]
      ~nprocs:8 ()
  in
  let ranges = Layout.contiguous_ranges l ~proc:3 ~elem_bytes:8 in
  check_int "1000 pieces (one per column)" 1000 (List.length ranges);
  let lo, hi = List.hd ranges in
  check_int "piece size = 8000/8" 1000 (hi - lo + 1)

let test_layout_block_block () =
  let l =
    Layout.make ~extents:[| 100; 100 |] ~kinds:[| Kind.Block; Kind.Block |]
      ~nprocs:4 ()
  in
  Alcotest.(check (array int)) "grid 2x2" [| 2; 2 |] l.Layout.grid.Grid.per_dim;
  check_int "owner of (0,0)" 0 (Layout.owner l [| 0; 0 |]);
  check_int "owner of (99,99)" 3 (Layout.owner l [| 99; 99 |]);
  check_int "owner of (99,0)" 1 (Layout.owner l [| 99; 0 |]);
  Alcotest.(check (array int)) "portion extents" [| 50; 50 |]
    (Layout.portion_extents l ~proc:2)

let layout_gen =
  QCheck.Gen.(
    let* nd = int_range 1 3 in
    let* extents = array_repeat nd (int_range 1 40) in
    let* kinds =
      array_repeat nd
        (oneof
           [ return Kind.Block; return Kind.Cyclic;
             map (fun k -> Kind.Cyclic_k k) (int_range 1 4); return Kind.Star ])
    in
    let* nprocs = int_range 1 16 in
    return (Layout.make ~extents ~kinds ~nprocs ()))

let layout_arb =
  QCheck.make layout_gen ~print:(fun l -> Format.asprintf "%a" Layout.pp l)

let prop_layout_roundtrip =
  QCheck.Test.make ~count:200 ~name:"layout: global_of inverts owner/offsets"
    layout_arb (fun l ->
      let ok = ref true in
      let total = ref 0 in
      for p = 0 to Layout.nprocs l - 1 do
        Layout.iter_portion l ~proc:p (fun idx ->
            incr total;
            if Layout.owner l idx <> p then ok := false;
            let offs = Layout.offsets l idx in
            let back = Layout.global_of l ~proc:p ~offsets:offs in
            if back <> idx then ok := false)
      done;
      !ok && !total = Array.fold_left ( * ) 1 l.Layout.extents)

let prop_layout_ranges_cover =
  QCheck.Test.make ~count:200 ~name:"layout: contiguous_ranges cover portion"
    layout_arb (fun l ->
      let elem_bytes = 8 in
      let ok = ref true in
      for p = 0 to Layout.nprocs l - 1 do
        let bytes =
          List.fold_left
            (fun acc (lo, hi) ->
              if lo > hi || lo mod elem_bytes <> 0 then ok := false;
              acc + (hi - lo + 1))
            0
            (Layout.contiguous_ranges l ~proc:p ~elem_bytes)
        in
        let portion =
          Array.fold_left ( * ) 1 (Layout.portion_extents l ~proc:p)
        in
        if bytes <> portion * elem_bytes then ok := false
      done;
      !ok)

let prop_layout_ranges_owned =
  QCheck.Test.make ~count:100 ~name:"layout: every byte in ranges is owned"
    layout_arb (fun l ->
      let elem_bytes = 8 in
      let nd = Layout.ndims l in
      let delinear lin =
        let idx = Array.make nd 0 in
        let rest = ref lin in
        for d = 0 to nd - 1 do
          idx.(d) <- !rest mod l.Layout.extents.(d);
          rest := !rest / l.Layout.extents.(d)
        done;
        idx
      in
      let ok = ref true in
      for p = 0 to Layout.nprocs l - 1 do
        List.iter
          (fun (lo, hi) ->
            let e = ref (lo / elem_bytes) in
            while !e <= hi / elem_bytes do
              if Layout.owner l (delinear !e) <> p then ok := false;
              incr e
            done)
          (Layout.contiguous_ranges l ~proc:p ~elem_bytes)
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Affinity: Figure 2 *)

let brute_force_iters dm spec ~lb ~ub ~step ~proc =
  let res = ref [] in
  let i = ref lb in
  while !i <= ub do
    let e = (spec.Affinity.s * !i) + spec.Affinity.c in
    if e >= 0 && e < dm.Dim_map.extent && Dim_map.owner dm e = proc then
      res := !i :: !res;
    i := !i + step
  done;
  List.rev !res

let test_affinity_block_simple () =
  (* do i=1,n affinity(i)=data(A(i)), A(block) over 4 procs, n=100:
     owner p gets i in [p*25, (p+1)*25-1] *)
  let dm = Dim_map.make ~extent:100 ~procs:4 Kind.Block in
  let spec = { Affinity.s = 1; c = 0 } in
  Alcotest.(check (list int))
    "proc 1 block range"
    (List.init 25 (fun k -> 25 + k))
    (Affinity.iters dm spec ~lb:0 ~ub:99 ~step:1 ~proc:1)

let test_affinity_cyclic_simple () =
  let dm = Dim_map.make ~extent:100 ~procs:4 Kind.Cyclic in
  let spec = { Affinity.s = 1; c = 0 } in
  (* Figure 2: do i = LB + ((p-LB-c) mod P), UB, P *)
  let got = Affinity.pieces dm spec ~lb:0 ~ub:99 ~step:1 ~proc:2 in
  (match got with
  | [ { Affinity.lo; hi; step } ] ->
      check_int "lo" 2 lo;
      check_int "step = P" 4 step;
      check_bool "hi" true (hi >= 96)
  | _ -> Alcotest.fail "expected a single piece");
  Alcotest.(check (list int))
    "matches brute force"
    (brute_force_iters dm spec ~lb:0 ~ub:99 ~step:1 ~proc:2)
    (Affinity.iters dm spec ~lb:0 ~ub:99 ~step:1 ~proc:2)

let test_affinity_zero_stride () =
  let dm = Dim_map.make ~extent:100 ~procs:4 Kind.Block in
  let spec = { Affinity.s = 0; c = 60 } in
  (* element 60 is on proc 2 (b=25); every iteration goes there *)
  check_int "all on owner" 50
    (List.length (Affinity.iters dm spec ~lb:1 ~ub:50 ~step:1 ~proc:2));
  check_int "none elsewhere" 0
    (List.length (Affinity.iters dm spec ~lb:1 ~ub:50 ~step:1 ~proc:0))

let test_affinity_offset () =
  (* affinity(i) = data(A(i+10)) with block distribution *)
  let dm = Dim_map.make ~extent:100 ~procs:4 Kind.Block in
  let spec = { Affinity.s = 1; c = 10 } in
  for p = 0 to 3 do
    Alcotest.(check (list int))
      (Printf.sprintf "proc %d" p)
      (brute_force_iters dm spec ~lb:0 ~ub:89 ~step:1 ~proc:p)
      (Affinity.iters dm spec ~lb:0 ~ub:89 ~step:1 ~proc:p)
  done

let affinity_case_gen =
  QCheck.Gen.(
    let* dm = dim_map_gen in
    let* s = int_range 0 4 in
    let* c = int_range (-10) 10 in
    let* lb = int_range (-5) 30 in
    let* len = int_range 0 80 in
    let* step = int_range 1 5 in
    return (dm, { Affinity.s; c }, lb, lb + len, step))

let affinity_case_arb =
  QCheck.make affinity_case_gen ~print:(fun (dm, spec, lb, ub, step) ->
      Format.asprintf "%a affinity(%d*i+%d) lb=%d ub=%d step=%d" Dim_map.pp dm
        spec.Affinity.s spec.Affinity.c lb ub step)

let prop_affinity_matches_brute_force =
  QCheck.Test.make ~count:1000 ~name:"affinity: pieces = brute force owner scan"
    affinity_case_arb (fun (dm, spec, lb, ub, step) ->
      let ok = ref true in
      for p = 0 to dm.Dim_map.procs - 1 do
        let got = Affinity.iters dm spec ~lb ~ub ~step ~proc:p in
        let want = brute_force_iters dm spec ~lb ~ub ~step ~proc:p in
        if got <> want then ok := false
      done;
      !ok)

let prop_affinity_disjoint_cover =
  QCheck.Test.make ~count:500 ~name:"affinity: pieces disjoint across procs"
    affinity_case_arb (fun (dm, spec, lb, ub, step) ->
      let tbl = Hashtbl.create 64 in
      let ok = ref true in
      for p = 0 to dm.Dim_map.procs - 1 do
        List.iter
          (fun i ->
            if Hashtbl.mem tbl i then ok := false;
            Hashtbl.add tbl i p)
          (Affinity.iters dm spec ~lb ~ub ~step ~proc:p)
      done;
      !ok)

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)

let () =
  Alcotest.run "dist"
    [
      ( "intmath",
        [
          Alcotest.test_case "floor/ceil division" `Quick test_fdiv;
          Alcotest.test_case "extended gcd" `Quick test_egcd;
          Alcotest.test_case "align_up" `Quick test_align_up;
          Alcotest.test_case "ap_intersect brute force" `Quick test_ap_intersect_brute;
          Alcotest.test_case "min_int edge cases" `Quick test_intmath_min_int;
          Alcotest.test_case "ap_intersect large steps" `Quick
            test_ap_intersect_large_steps;
        ] );
      qsuite "intmath.props" [ prop_ap_intersect_oracle ];
      ( "kind",
        [ Alcotest.test_case "string roundtrip & parsing" `Quick test_kind_strings ] );
      ( "dim_map",
        [
          Alcotest.test_case "Table 1 block" `Quick test_table1_block;
          Alcotest.test_case "Table 1 cyclic" `Quick test_table1_cyclic;
          Alcotest.test_case "Table 1 cyclic(k)" `Quick test_table1_cyclic_k;
          Alcotest.test_case "cyclic(k) ragged tail" `Quick test_cyclic_k_ragged;
          Alcotest.test_case "star dimension" `Quick test_star;
        ] );
      qsuite "dim_map.props"
        [ prop_roundtrip; prop_portion_partition; prop_ranges_sorted_maximal ];
      ( "grid",
        [
          Alcotest.test_case "basic assignment & onto" `Quick test_grid_basics;
          Alcotest.test_case "exact product" `Quick test_grid_exact_product;
        ] );
      qsuite "grid.props" [ prop_grid_linear_roundtrip ];
      ( "layout",
        [
          Alcotest.test_case "(*,block) contiguous portions" `Quick test_layout_column_dist;
          Alcotest.test_case "(block,*) fragmented portions" `Quick test_layout_row_dist;
          Alcotest.test_case "(block,block) grid" `Quick test_layout_block_block;
        ] );
      qsuite "layout.props"
        [ prop_layout_roundtrip; prop_layout_ranges_cover; prop_layout_ranges_owned ];
      ( "affinity",
        [
          Alcotest.test_case "block, identity affinity" `Quick test_affinity_block_simple;
          Alcotest.test_case "cyclic, Figure 2 form" `Quick test_affinity_cyclic_simple;
          Alcotest.test_case "zero stride" `Quick test_affinity_zero_stride;
          Alcotest.test_case "affine offset" `Quick test_affinity_offset;
        ] );
      qsuite "affinity.props"
        [ prop_affinity_matches_brute_force; prop_affinity_disjoint_cover ];
    ]
