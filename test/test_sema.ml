(* Tests for semantic analysis: symbol resolution, directive legality,
   compile-time error detection (paper §6). *)

open Ddsm_ir
open Ddsm_frontend
open Ddsm_sema

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let analyse ?allow_formal_dists src =
  match Parser.parse_file ~fname:"t.pf" src with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok f -> Sema.analyse_file ?allow_formal_dists f

let analyse_ok ?allow_formal_dists src =
  match analyse ?allow_formal_dists src with
  | Ok envs -> envs
  | Error es -> Alcotest.failf "unexpected sema errors: %s" (String.concat "; " es)

let analyse_err ?allow_formal_dists ~expect src =
  match analyse ?allow_formal_dists src with
  | Ok _ -> Alcotest.failf "expected a sema error mentioning %S" expect
  | Error es ->
      let found =
        List.exists
          (fun e ->
            let rec contains i =
              i + String.length expect <= String.length e
              && (String.sub e i (String.length expect) = expect || contains (i + 1))
            in
            contains 0)
          es
      in
      if not found then
        Alcotest.failf "errors %s do not mention %S" (String.concat "; " es) expect

let wrap body = "      program p\n" ^ body ^ "      end\n"

(* ------------------------------------------------------------------ *)

let test_good_program () =
  let envs =
    analyse_ok
      (wrap
         {|
      integer n, i
      parameter (n = 10)
      real*8 a(n, n)
c$distribute a(*, block)
      do i = 1, n
        a(i, i) = sqrt(dble(i))
      enddo
|})
  in
  let env = List.hd envs in
  let ai = Option.get (Sema.find_array env "a") in
  check_bool "distributed" true (ai.Sema.ai_dist <> None);
  (match ai.Sema.ai_const_shape with
  | Some (_, ext) -> Alcotest.(check (array int)) "extents" [| 10; 10 |] ext
  | None -> Alcotest.fail "expected constant shape");
  (* parameter n substituted into the body *)
  let body = env.Sema.routine.Decl.rbody in
  match (List.hd body).Stmt.s with
  | Stmt.Do d -> check_bool "hi folded to 10" true (d.Stmt.hi = Expr.Int 10)
  | _ -> Alcotest.fail "expected a do loop"

let test_intrinsic_resolution () =
  let envs =
    analyse_ok
      (wrap {|
      integer i, j
      i = mod(7, 3)
      j = max(i, 2)
|})
  in
  let env = List.hd envs in
  match (List.hd env.Sema.routine.Decl.rbody).Stmt.s with
  | Stmt.Assign (_, Expr.Intrin ("mod", _)) -> ()
  | s -> Alcotest.failf "expected intrinsic, got %s" (Format.asprintf "%a" Stmt.pp (Stmt.mk s))

let test_undeclared () =
  analyse_err ~expect:"undeclared" (wrap "      x = 1\n");
  analyse_err ~expect:"undeclared"
    (wrap "      integer i\n      i = k + 1\n")

let test_arity_and_types () =
  analyse_err ~expect:"dimensions"
    (wrap "      real*8 a(4, 4)\n      a(1) = 0.0\n");
  analyse_err ~expect:"subscript"
    (wrap "      real*8 a(4), x\n      x = 1.5\n      a(x) = 0.0\n");
  analyse_err ~expect:"neither"
    (wrap "      integer i\n      i = frobnicate(3)\n")

let test_assign_to_const_or_array () =
  analyse_err ~expect:"parameter"
    (wrap "      integer n\n      parameter (n = 4)\n      n = 5\n");
  analyse_err ~expect:"without subscripts"
    (wrap "      real*8 a(4)\n      a = 0.0\n")

let test_dist_legality () =
  analyse_err ~expect:"not declared" (wrap "c$distribute q(block)\n");
  analyse_err ~expect:"dimensions"
    (wrap "      real*8 a(4, 4)\nc$distribute a(block)\n");
  analyse_err ~expect:"cannot be both"
    (wrap
       "      real*8 a(8)\nc$distribute a(block)\nc$distribute_reshape a(block)\n");
  analyse_err ~expect:"duplicate"
    (wrap "      real*8 a(8)\nc$distribute a(block)\nc$distribute a(cyclic)\n");
  analyse_err ~expect:"onto"
    (wrap "      real*8 a(8, 8)\nc$distribute a(block, block) onto(2, 2, 1)\n");
  analyse_err ~expect:"no dimension"
    (wrap "      real*8 a(8)\nc$distribute a(*)\n")

let test_equivalence_reshape_error () =
  (* §6: disallowing the equivalencing of reshaped arrays is a
     compile-time check *)
  analyse_err ~expect:"equivalenced"
    (wrap
       {|
      real*8 a(8), b(8)
      equivalence (a, b)
c$distribute_reshape a(block)
|});
  (* equivalence of plain arrays is fine *)
  ignore
    (analyse_ok
       (wrap {|
      real*8 a(8), b(8)
      equivalence (a, b)
      a(1) = 0.0
|}));
  analyse_err ~expect:"larger"
    (wrap {|
      real*8 a(4), b(8)
      equivalence (a, b)
|})

let test_redistribute_legality () =
  (* PR 8: reshaped arrays redistribute via copy-then-install *)
  ignore
    (analyse_ok
       (wrap
          {|
      real*8 a(8)
c$distribute_reshape a(block)
c$redistribute a(cyclic)
|}));
  analyse_err ~expect:"not a distributed array"
    (wrap {|
      real*8 a(8)
c$redistribute a(cyclic)
|});
  analyse_err ~expect:"formal argument"
    "      subroutine s(a)\n      real*8 a(8)\nc$distribute a(block)\n\
     c$redistribute a(cyclic)\n      end\n";
  analyse_err ~expect:"at least one processor"
    (wrap
       {|
      real*8 a(8)
c$distribute a(block)
c$redistribute a(cyclic) procs(0)
|});
  ignore
    (analyse_ok
       (wrap
          {|
      real*8 a(8)
c$distribute a(block)
c$redistribute a(cyclic) procs(3)
|}))

let test_affinity_legality () =
  (* good: literal affine form *)
  ignore
    (analyse_ok
       (wrap
          {|
      integer i
      real*8 a(100)
c$distribute a(block)
c$doacross local(i) affinity(i) = data(a(2*i + 1))
      do i = 1, 49
        a(2*i+1) = 1.0
      enddo
|}));
  (* negative coefficient rejected *)
  analyse_err ~expect:"non-negative"
    (wrap
       {|
      integer i
      real*8 a(100)
c$distribute a(block)
c$doacross local(i) affinity(i) = data(a(100 - i))
      do i = 1, 99
        a(100-i) = 1.0
      enddo
|});
  (* non-affine rejected *)
  analyse_err ~expect:"literal form"
    (wrap
       {|
      integer i
      real*8 a(100)
c$distribute a(block)
c$doacross local(i) affinity(i) = data(a(i*i))
      do i = 1, 10
        a(i*i) = 1.0
      enddo
|});
  (* affinity on a non-distributed array rejected *)
  analyse_err ~expect:"not distributed"
    (wrap
       {|
      integer i
      real*8 a(100)
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, 100
        a(i) = 1.0
      enddo
|})

let test_affinity_unmatched_dim_const () =
  (* a distributed dimension without an affinity variable needs a constant
     subscript (it pins the owning processor) *)
  analyse_err ~expect:"must use an affinity variable"
    (wrap
       {|
      integer i, k
      real*8 a(16, 16)
c$distribute a(*, block)
      k = 3
c$doacross local(i) affinity(i) = data(a(i, k))
      do i = 1, 16
        a(i, 1) = 1.0
      enddo
|});
  (* constant is fine *)
  ignore
    (analyse_ok
       (wrap
          {|
      integer i
      real*8 a(16, 16)
c$distribute a(*, block)
c$doacross local(i) affinity(i) = data(a(i, 3))
      do i = 1, 16
        a(i, 3) = 1.0
      enddo
|}))

let test_nest_perfect () =
  analyse_err ~expect:"perfect"
    (wrap
       {|
      integer i, j
      real*8 a(10, 10)
c$distribute a(block, block)
c$doacross nest(i, j) local(i, j)
      do i = 1, 10
        a(i, 1) = 0.0
        do j = 1, 10
          a(i, j) = 1.0
        enddo
      enddo
|});
  analyse_err ~expect:"does not match"
    (wrap
       {|
      integer i, j
      real*8 a(10, 10)
c$doacross nest(j, i) local(i, j)
      do i = 1, 10
        do j = 1, 10
          a(i, j) = 1.0
        enddo
      enddo
|})

let test_formal_dist_gate () =
  let src =
    {|
      subroutine s(x)
      real*8 x(10)
c$distribute_reshape x(block)
      x(1) = 0.0
      end
|}
  in
  analyse_err ~expect:"definition points" src;
  (* but allowed when compiling propagated clones *)
  ignore (analyse_ok ~allow_formal_dists:true src)

let test_adjustable_formals () =
  let envs =
    analyse_ok
      {|
      subroutine s(x, n)
      integer n
      real*8 x(n, n)
      x(1, 1) = 0.0
      end
|}
  in
  let env = List.hd envs in
  let ai = Option.get (Sema.find_array env "x") in
  check_bool "no constant shape" true (ai.Sema.ai_const_shape = None);
  check_bool "formal" true ai.Sema.ai_formal;
  (* non-formal adjustable arrays are rejected *)
  analyse_err ~expect:"constant bounds"
    {|
      subroutine s(n)
      integer n
      real*8 x(n)
      x(1) = 0.0
      end
|}

let test_dsm_intrinsics () =
  ignore
    (analyse_ok
       (wrap
          {|
      integer i, p
      real*8 a(64)
c$distribute a(block)
      p = dsm_nprocs()
      i = dsm_chunksize(a, 1)
|}));
  analyse_err ~expect:"distributed array"
    (wrap
       {|
      integer i
      real*8 a(64)
      i = dsm_chunksize(a, 1)
|})

let test_type_of () =
  let envs =
    analyse_ok
      (wrap
         {|
      integer i
      real*8 x, a(4)
      i = 1
      x = a(i) + 1
|})
  in
  let env = List.hd envs in
  check_bool "int var" true (Sema.type_of env (Expr.Var "i") = Types.Tint);
  check_bool "real promote" true
    (Sema.type_of env (Expr.Bin (Expr.Add, Expr.Var "i", Expr.Var "x")) = Types.Treal);
  check_bool "rel is int" true
    (Sema.type_of env (Expr.Rel (Expr.Lt, Expr.Var "i", Expr.Int 3)) = Types.Tint)

let test_common_checks () =
  analyse_err ~expect:"not declared"
    (wrap "      common /blk/ zz\n");
  analyse_err ~expect:"formal"
    {|
      subroutine s(x)
      real*8 x(4)
      common /blk/ x
      x(1) = 0.0
      end
|};
  analyse_err ~expect:"only arrays"
    (wrap "      real*8 x\n      common /blk/ x\n      x = 1.0\n");
  let envs =
    analyse_ok
      (wrap {|
      real*8 v(8)
      common /blk/ v
      v(1) = 1.0
|})
  in
  let ai = Option.get (Sema.find_array (List.hd envs) "v") in
  check_bool "common recorded" true (ai.Sema.ai_common = Some "blk")

let test_affinity_negative_offset () =
  (* only the coefficient p of the literal form p*i + q is sign-restricted
     (§3.4); a negative constant offset q is fine *)
  ignore
    (analyse_ok
       (wrap
          {|
      integer i
      real*8 a(100)
c$distribute a(block)
c$doacross local(i) affinity(i) = data(a(i - 2))
      do i = 3, 100
        a(i-2) = 1.0
      enddo
|}))

let test_reshaped_common_member () =
  (* distribute_reshape on a common member is legal within one routine —
     the cross-routine consistency check belongs to the linker — and both
     the reshape and the block membership must land in the array info *)
  let envs =
    analyse_ok
      (wrap
         {|
      real*8 v(100)
      common /blk/ v
c$distribute_reshape v(block)
      v(1) = 1.0
|})
  in
  let ai = Option.get (Sema.find_array (List.hd envs) "v") in
  check_bool "reshape recorded" true
    (match ai.Sema.ai_dist with Some d -> d.Decl.dreshape | None -> false);
  check_bool "common recorded" true (ai.Sema.ai_common = Some "blk")

let test_multiple_errors_reported () =
  match
    analyse (wrap "      x = 1\n      y = 2\n      z = 3\n")
  with
  | Ok _ -> Alcotest.fail "expected errors"
  | Error es -> check_int "all three reported" 3 (List.length es)

(* Table-driven directive/storage rejections.  Each snippet is a complete
   program that must be rejected with a located message containing the
   expected fragment — the same diagnostics pflc surfaces on exit 2 and
   the differential fuzzer classifies as Reject. *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let sema_reject_table =
  [
    ( "onto weight zero",
      "      program p\n      integer a(8)\nc$distribute a(block) onto(0)\n      end\n",
      "non-positive weight" );
    ( "onto arity mismatch",
      "      program p\n      integer a(8, 8)\nc$distribute a(block, block) onto(2, 2, 2)\n      end\n",
      "3 weights for 2 distributed dimensions" );
    ( "no distributed dimension",
      "      program p\n      integer a(8)\nc$distribute a(*)\n      end\n",
      "distributes no dimension" );
    ( "imperfect nest",
      "      program p\n      integer i, j\n      real*8 a(4, 4)\n\
       c$distribute a(block, block)\nc$doacross local(i, j), nest(i, j)\n\
      \      do i = 1, 4\n        a(i, 1) = 0.0\n        do j = 1, 4\n\
      \          a(i, j) = 1.0\n        enddo\n      enddo\n      end\n",
      "perfect loop nest" );
    ( "affinity to undistributed array",
      "      program p\n      integer i\n      real*8 a(8), b(8)\n\
       c$distribute a(block)\nc$doacross local(i), affinity(i) = data(b(i))\n\
      \      do i = 1, 8\n        a(i) = 0.0\n      enddo\n      end\n",
      "affinity array b is not distributed" );
    ( "scalar in common block",
      "      program p\n      real*8 x\n      common /cb/ x\n      end\n",
      "only arrays are supported in common blocks" );
    ( "redistribute onto zero processors",
      "      program p\n      real*8 a(8)\nc$distribute a(block)\n\
       c$redistribute a(cyclic) procs(0)\n      end\n",
      "at least one processor" );
    ( "redistribute of undistributed array",
      "      program p\n      real*8 a(8)\nc$redistribute a(cyclic)\n      end\n",
      "not a distributed array" );
    ( "distribute of undeclared array",
      "      program p\n      integer a(8)\nc$distribute b(block)\n      end\n",
      "not declared" );
  ]

let test_sema_reject_table () =
  List.iter
    (fun (name, src, expect) ->
      match analyse src with
      | Ok _ -> Alcotest.failf "%s: expected a sema error" name
      | Error es ->
          check_bool (name ^ ": error is located") true
            (List.exists (fun e -> contains e "t.pf:") es);
          if not (List.exists (fun e -> contains e expect) es) then
            Alcotest.failf "%s: errors %s do not mention %S" name
              (String.concat "; " es) expect)
    sema_reject_table

let () =
  Alcotest.run "sema"
    [
      ( "resolution",
        [
          Alcotest.test_case "good program" `Quick test_good_program;
          Alcotest.test_case "intrinsics" `Quick test_intrinsic_resolution;
          Alcotest.test_case "undeclared names" `Quick test_undeclared;
          Alcotest.test_case "arity & subscript types" `Quick test_arity_and_types;
          Alcotest.test_case "assignment targets" `Quick test_assign_to_const_or_array;
          Alcotest.test_case "type_of" `Quick test_type_of;
          Alcotest.test_case "multiple errors" `Quick test_multiple_errors_reported;
        ] );
      ( "directives",
        [
          Alcotest.test_case "distribute legality" `Quick test_dist_legality;
          Alcotest.test_case "reshaped equivalence rejected" `Quick test_equivalence_reshape_error;
          Alcotest.test_case "redistribute legality" `Quick test_redistribute_legality;
          Alcotest.test_case "affinity legality" `Quick test_affinity_legality;
          Alcotest.test_case "affinity negative offset" `Quick
            test_affinity_negative_offset;
          Alcotest.test_case "reshaped common member" `Quick
            test_reshaped_common_member;
          Alcotest.test_case "nest perfection" `Quick test_nest_perfect;
          Alcotest.test_case "affinity constant-dim restriction" `Quick
            test_affinity_unmatched_dim_const;
          Alcotest.test_case "formal dists gated" `Quick test_formal_dist_gate;
          Alcotest.test_case "dsm intrinsics" `Quick test_dsm_intrinsics;
          Alcotest.test_case "reject table" `Quick test_sema_reject_table;
        ] );
      ( "storage",
        [
          Alcotest.test_case "adjustable formals" `Quick test_adjustable_formals;
          Alcotest.test_case "common blocks" `Quick test_common_checks;
        ] );
    ]
