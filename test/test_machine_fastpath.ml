(* Differential oracle for the flat-table fast path (DESIGN.md "Simulator
   performance"): random operation sequences must make the flat [Pagetable]
   and [Directory] bit-identical to their Hashtbl-based reference
   implementations ([Pagetable_ref]/[Directory_ref]) on every observable.
   Plus determinism tests for the [Jobs] domain pool: a parallel map must
   return exactly what the sequential one does, including which exception
   is re-raised. *)

module Config = Ddsm_machine.Config
module Pagetable = Ddsm_machine.Pagetable
module Pagetable_ref = Ddsm_machine.Pagetable_ref
module Directory = Ddsm_machine.Directory
module Directory_ref = Ddsm_machine.Directory_ref
module Bitset = Ddsm_machine.Bitset
module Jobs = Ddsm_util.Jobs

let rng seed = Random.State.make [| 0xDD5A; seed |]

(* ------------------------------------------------------------------ *)
(* pagetable oracle *)

type pt_op =
  | Home of int * int (* page, faulting node *)
  | Place of int * int (* page, node *)
  | Migrate of int * int (* page (forced placed first), node *)
  | Home_opt of int
  | Frame of int (* page, forced placed first *)

let gen_pt_op rand nnodes npages =
  let module G = QCheck.Gen in
  let page = G.generate1 ~rand (G.int_range 0 (npages - 1)) in
  let node = G.generate1 ~rand (G.int_range 0 (nnodes - 1)) in
  match G.generate1 ~rand (G.int_range 0 4) with
  | 0 -> Home (page, node)
  | 1 -> Place (page, node)
  | 2 -> Migrate (page, node)
  | 3 -> Home_opt page
  | _ -> Frame page

let pp_pt_op = function
  | Home (p, n) -> Printf.sprintf "home %d @%d" p n
  | Place (p, n) -> Printf.sprintf "place %d on %d" p n
  | Migrate (p, n) -> Printf.sprintf "migrate %d to %d" p n
  | Home_opt p -> Printf.sprintf "home_opt %d" p
  | Frame p -> Printf.sprintf "frame %d" p

(* apply one op to both tables; return both observations as strings *)
let apply_pt (flat, ref_) op =
  match op with
  | Home (page, faulting_node) ->
      ( string_of_int (Pagetable.home flat ~page ~faulting_node),
        string_of_int (Pagetable_ref.home ref_ ~page ~faulting_node) )
  | Place (page, node) ->
      Pagetable.place flat ~page ~node;
      Pagetable_ref.place ref_ ~page ~node;
      ("", "")
  | Migrate (page, node) ->
      (* force placement so migrate acts on a placed page in both *)
      ignore (Pagetable.home flat ~page ~faulting_node:0);
      ignore (Pagetable_ref.home ref_ ~page ~faulting_node:0);
      Pagetable.migrate flat ~page ~node;
      Pagetable_ref.migrate ref_ ~page ~node;
      ("", "")
  | Home_opt page ->
      let s = function None -> "-" | Some n -> string_of_int n in
      (s (Pagetable.home_opt flat ~page), s (Pagetable_ref.home_opt ref_ ~page))
  | Frame page ->
      ignore (Pagetable.home flat ~page ~faulting_node:0);
      ignore (Pagetable_ref.home ref_ ~page ~faulting_node:0);
      let f = Pagetable.frame flat ~page
      and fr = Pagetable_ref.frame ref_ ~page in
      ( Printf.sprintf "%d@%d" f (Pagetable.node_of_frame flat f),
        Printf.sprintf "%d@%d" fr (Pagetable_ref.node_of_frame ref_ fr) )

let pt_summary_flat t nnodes =
  let per =
    List.init nnodes (fun n -> string_of_int (Pagetable.pages_on_node t ~node:n))
  in
  Printf.sprintf "placed=%d per-node=%s" (Pagetable.placed_pages t)
    (String.concat "," per)

let pt_summary_ref t nnodes =
  let per =
    List.init nnodes (fun n ->
        string_of_int (Pagetable_ref.pages_on_node t ~node:n))
  in
  Printf.sprintf "placed=%d per-node=%s" (Pagetable_ref.placed_pages t)
    (String.concat "," per)

let test_pagetable_oracle () =
  for seed = 1 to 60 do
    let rand = rng seed in
    let module G = QCheck.Gen in
    let nprocs = G.generate1 ~rand (G.oneofl [ 2; 4; 8 ]) in
    let policy =
      G.generate1 ~rand
        (G.oneofl [ Pagetable.First_touch; Pagetable.Round_robin ])
    in
    let cfg = Config.scaled ~nprocs ~factor:64 () in
    let nnodes = max 1 (nprocs / 2) in
    (* enough pages to overflow nodes and exercise the spill path *)
    let npages = G.generate1 ~rand (G.int_range 32 768) in
    let nops = G.generate1 ~rand (G.int_range 50 400) in
    let flat = Pagetable.create cfg policy
    and ref_ = Pagetable_ref.create cfg policy in
    for k = 1 to nops do
      let op = gen_pt_op rand nnodes npages in
      let a, b = apply_pt (flat, ref_) op in
      if a <> b then
        Alcotest.failf "seed %d op %d (%s): flat=%S ref=%S" seed k (pp_pt_op op)
          a b
    done;
    let a = pt_summary_flat flat nnodes and b = pt_summary_ref ref_ nnodes in
    if a <> b then Alcotest.failf "seed %d summary: flat=%S ref=%S" seed a b
  done

(* ------------------------------------------------------------------ *)
(* directory oracle *)

type dir_op =
  | Set_exclusive of int * int
  | Add_sharer of int * int
  | Drop of int * int
  | State of int
  | Sharers_except of int * int

let gen_line rand =
  let module G = QCheck.Gen in
  (* mix dense small ids with sparse page-strided ones: collisions and
     growth both get exercised *)
  if G.generate1 ~rand G.bool then G.generate1 ~rand (G.int_range 0 63)
  else
    (G.generate1 ~rand (G.int_range 0 4096) * 512)
    + G.generate1 ~rand (G.int_range 0 7)

let gen_dir_op rand nprocs =
  let module G = QCheck.Gen in
  let line = gen_line rand in
  let proc = G.generate1 ~rand (G.int_range 0 (nprocs - 1)) in
  match G.generate1 ~rand (G.int_range 0 4) with
  | 0 -> Set_exclusive (line, proc)
  | 1 -> Add_sharer (line, proc)
  | 2 -> Drop (line, proc)
  | 3 -> State line
  | _ -> Sharers_except (line, proc)

let pp_dir_op = function
  | Set_exclusive (l, p) -> Printf.sprintf "set_exclusive %d <- %d" l p
  | Add_sharer (l, p) -> Printf.sprintf "add_sharer %d + %d" l p
  | Drop (l, p) -> Printf.sprintf "drop %d - %d" l p
  | State l -> Printf.sprintf "state %d" l
  | Sharers_except (l, p) -> Printf.sprintf "sharers_except %d \\ %d" l p

let canon_flat_state t line =
  match Directory.state t ~line with
  | Directory.Uncached -> "U"
  | Directory.Exclusive p -> Printf.sprintf "E%d" p
  | Directory.Shared _ ->
      let l = List.sort compare (Directory.sharers_except t ~line ~proc:(-1)) in
      "S" ^ String.concat "," (List.map string_of_int l)

let canon_ref_state t line =
  match Directory_ref.state t ~line with
  | Directory_ref.Uncached -> "U"
  | Directory_ref.Exclusive p -> Printf.sprintf "E%d" p
  | Directory_ref.Shared _ ->
      let l =
        List.sort compare (Directory_ref.sharers_except t ~line ~proc:(-1))
      in
      "S" ^ String.concat "," (List.map string_of_int l)

let apply_dir (flat, ref_) op =
  match op with
  | Set_exclusive (line, owner) ->
      Directory.set_exclusive flat ~line ~owner;
      Directory_ref.set_exclusive ref_ ~line ~owner;
      (* the fast-path query must agree with the full state *)
      let o = Directory.exclusive_owner flat ~line in
      ((if o = owner then "" else Printf.sprintf "owner=%d" o), "")
  | Add_sharer (line, proc) ->
      Directory.add_sharer flat ~line ~proc;
      Directory_ref.add_sharer ref_ ~line ~proc;
      ("", "")
  | Drop (line, proc) ->
      Directory.drop flat ~line ~proc;
      Directory_ref.drop ref_ ~line ~proc;
      ("", "")
  | State line -> (canon_flat_state flat line, canon_ref_state ref_ line)
  | Sharers_except (line, proc) ->
      let s l = String.concat "," (List.map string_of_int (List.sort compare l)) in
      ( s (Directory.sharers_except flat ~line ~proc),
        s (Directory_ref.sharers_except ref_ ~line ~proc) )

let test_directory_oracle () =
  for seed = 1 to 60 do
    let rand = rng (1000 + seed) in
    let module G = QCheck.Gen in
    let nprocs = G.generate1 ~rand (G.oneofl [ 2; 8; 64; 80 ]) in
    let nops = G.generate1 ~rand (G.int_range 100 1500) in
    let flat = Directory.create ~nprocs
    and ref_ = Directory_ref.create ~nprocs in
    let touched = Hashtbl.create 64 in
    for k = 1 to nops do
      let op = gen_dir_op rand nprocs in
      (match op with
      | Set_exclusive (l, _) | Add_sharer (l, _) -> Hashtbl.replace touched l ()
      | _ -> ());
      let a, b = apply_dir (flat, ref_) op in
      if a <> b then
        Alcotest.failf "seed %d op %d (%s): flat=%S ref=%S" seed k
          (pp_dir_op op) a b
    done;
    (* final sweep: every line ever cached agrees, plus the allocation-free
       queries agree with the materialized state *)
    Hashtbl.iter
      (fun line () ->
        let a = canon_flat_state flat line
        and b = canon_ref_state ref_ line in
        if a <> b then Alcotest.failf "seed %d line %d: flat=%S ref=%S" seed line a b;
        let unc = Directory.is_uncached flat ~line in
        if unc <> (a = "U") then
          Alcotest.failf "seed %d line %d: is_uncached=%b state=%S" seed line
            unc a)
      touched
  done

(* ------------------------------------------------------------------ *)
(* sharded-engine determinism: the probe-stream merge.

   The domain-sharded event loop (Engine.run ~shards) commits every
   memory-system event on the coordinator in exact sequential order, so
   every observer downstream of the commit stream — the profile
   attribution table, the sanitizer's race/false-sharing reports, and the
   Stats view (including its internal counter-accounting audit) — must
   come out identical for 1 vs N shards, program by program.  Programs
   come from the fuzz generator for structural diversity. *)

module Ddsm = Ddsm_core.Ddsm
module Gen = Ddsm_fuzz.Gen
module Spec = Ddsm_fuzz.Spec
module Stats = Ddsm_report.Stats

let shard_observables files ~shards =
  let objs =
    List.map
      (fun (fname, src) ->
        match Ddsm.compile_source ~fname src with
        | Ok o -> o
        | Error es ->
            Alcotest.failf "compile %s: %s" fname (String.concat "; " es))
      files
  in
  let prog =
    match Ddsm.link objs with
    | Ok (p, _) -> p
    | Error es -> Alcotest.failf "link: %s" (String.concat "; " es)
  in
  let nprocs = 4 in
  let cfg = Config.scaled ~nprocs () in
  let sanitize =
    Ddsm.Sanitize.create ~nprocs
      ~line_bytes:cfg.Config.l2.Config.line_bytes
      ~page_bytes:cfg.Config.page_bytes ()
  in
  let profile = Ddsm.Profile.create () in
  let rt = Ddsm.make_rt ~heap_words:(1 lsl 18) ~nprocs () in
  match
    Ddsm.run prog ~rt ~checks:true ~bounds:true ~max_cycles:60_000_000
      ~shards ~profile ~sanitize ()
  with
  | Error d -> "diag:" ^ Ddsm.Diag.code d
  | Ok o ->
      String.concat "\n--\n"
        [
          String.concat "|" o.Ddsm.Engine.prints;
          string_of_int o.Ddsm.Engine.cycles;
          Format.asprintf "%a" Stats.pp
            (Stats.of_counters o.Ddsm.Engine.counters);
          String.concat "|" (Stats.audit o.Ddsm.Engine.counters);
          Format.asprintf "%a" (Ddsm.Profile.pp_report ~top:16) profile;
          Format.asprintf "%a" Ddsm.Sanitize.pp_report sanitize;
        ]

let test_sharded_probe_stream () =
  for seed = 0 to 11 do
    let files = Spec.render (Gen.generate ~seed ()) in
    let base = shard_observables files ~shards:1 in
    List.iter
      (fun shards ->
        let got = shard_observables files ~shards in
        if got <> base then
          Alcotest.failf
            "seed %d: observables diverge at %d shards\n-- 1 shard --\n%s\n\
             -- %d shards --\n%s"
            seed shards base shards got)
      [ 2; 3; 4 ]
  done

(* ------------------------------------------------------------------ *)
(* jobs determinism *)

let test_jobs_order () =
  let xs = List.init 100 (fun i -> i) in
  let f x = (x * x * 2654435761) land 0xFFFFFF in
  let seq = Jobs.map ~jobs:1 f xs in
  List.iter
    (fun jobs ->
      let par = Jobs.map ~jobs f xs in
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d matches sequential" jobs)
        seq par)
    [ 2; 3; 4; 7 ]

let test_jobs_mapi () =
  let xs = [ "a"; "b"; "c"; "d"; "e" ] in
  let f i s = Printf.sprintf "%d:%s" i s in
  Alcotest.(check (list string))
    "mapi indices in order" (List.mapi f xs)
    (Jobs.mapi ~jobs:3 f xs)

exception Boom of int

let test_jobs_first_failure () =
  (* several jobs fail; whatever domain finishes first, the exception
     delivered must be the FIRST failing job in list order *)
  let xs = List.init 50 (fun i -> i) in
  let f x = if x mod 7 = 3 then raise (Boom x) else x in
  List.iter
    (fun jobs ->
      match Jobs.map ~jobs f xs with
      | _ -> Alcotest.fail "expected a failure"
      | exception Boom x ->
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d raises earliest failure" jobs)
            3 x)
    [ 1; 4 ]

let test_jobs_lowest_index_under_timing_skew () =
  (* a high-index job fails instantly while a lower-index one fails only
     after burning time: whichever Domain.join observes an exception
     first, the failure delivered must still be the lowest-index one,
     run after run *)
  let xs = List.init 16 (fun i -> i) in
  let f x =
    if x = 14 then raise (Boom 14)
    else if x = 2 then begin
      let s = ref 0 in
      for i = 1 to 200_000 do
        s := !s + i
      done;
      ignore !s;
      raise (Boom 2)
    end
    else x
  in
  for _ = 1 to 25 do
    match Jobs.map ~jobs:4 f xs with
    | _ -> Alcotest.fail "expected a failure"
    | exception Boom x -> Alcotest.(check int) "lowest index wins" 2 x
  done

let test_jobs_empty_and_single () =
  Alcotest.(check (list int)) "empty" [] (Jobs.map ~jobs:4 (fun x -> x) []);
  Alcotest.(check (list int)) "single" [ 9 ] (Jobs.map ~jobs:4 (fun x -> x * 9) [ 1 ])

let () =
  Alcotest.run "machine-fastpath"
    [
      ( "oracle",
        [
          Alcotest.test_case "pagetable flat = reference" `Quick
            test_pagetable_oracle;
          Alcotest.test_case "directory flat = reference" `Quick
            test_directory_oracle;
        ] );
      ( "jobs",
        [
          Alcotest.test_case "map order deterministic" `Quick test_jobs_order;
          Alcotest.test_case "mapi indices" `Quick test_jobs_mapi;
          Alcotest.test_case "first failure re-raised" `Quick
            test_jobs_first_failure;
          Alcotest.test_case "lowest index wins under skew" `Quick
            test_jobs_lowest_index_under_timing_skew;
          Alcotest.test_case "empty and single" `Quick
            test_jobs_empty_and_single;
        ] );
      ( "shards",
        [
          Alcotest.test_case "probe stream identical 1 vs N shards" `Quick
            test_sharded_probe_stream;
        ] );
    ]
