(* Tests for the Origin-2000 CC-NUMA simulator: caches, TLB, page placement,
   directory coherence, memory contention. *)

open Ddsm_machine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A small machine that is easy to reason about: 4 procs on 2 nodes,
   256-byte pages, tiny caches (L1: 4 lines of 32 B; L2: 4 lines of 128 B),
   4-entry TLB. *)
let tiny ?(nprocs = 4) ?(node_mem_bytes = 16 * 1024) () : Config.t =
  {
    nprocs;
    procs_per_node = 2;
    page_bytes = 256;
    l1 = { size_bytes = 128; line_bytes = 32; assoc = 2; hit_cycles = 1 };
    l2 = { size_bytes = 512; line_bytes = 128; assoc = 2; hit_cycles = 10 };
    tlb_entries = 4;
    tlb_miss_cycles = 57;
    local_mem_cycles = 70;
    remote_base_cycles = 110;
    remote_per_hop_cycles = 12;
    mem_occupancy_cycles = 24;
    dirty_transfer_extra_cycles = 40;
    inval_cycles_per_sharer = 16;
    node_mem_bytes;
  }

(* ------------------------------------------------------------------ *)
(* Config *)

let test_config_presets () =
  List.iter
    (fun cfg ->
      match Config.validate cfg with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invalid preset: %s" e)
    [ Config.origin2000 ~nprocs:128; Config.scaled ~nprocs:16 (); tiny () ];
  let o = Config.origin2000 ~nprocs:128 in
  check_int "64 nodes" 64 (Config.nnodes o);
  check_int "node of proc 5" 2 (Config.node_of_proc o 5);
  check_int "16KB pages" 16384 o.Config.page_bytes

let test_config_validate_rejects () =
  let bad = { (tiny ()) with page_bytes = 100 } in
  check_bool "non-pow2 page rejected" true (Result.is_error (Config.validate bad));
  let bad = { (tiny ()) with l2 = { (tiny ()).l2 with line_bytes = 1024 } } in
  check_bool "L2 line > page rejected" true (Result.is_error (Config.validate bad))

(* ------------------------------------------------------------------ *)
(* Bitset *)

let test_bitset_basic () =
  let s = Bitset.create 128 in
  check_bool "empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 127;
  Bitset.add s 63;
  check_int "cardinal" 3 (Bitset.cardinal s);
  check_bool "mem 127" true (Bitset.mem s 127);
  check_bool "not mem 1" false (Bitset.mem s 1);
  Bitset.remove s 63;
  check_int "after remove" 2 (Bitset.cardinal s);
  Alcotest.(check (list int)) "fold order" [ 0; 127 ]
    (List.rev (Bitset.fold (fun i acc -> i :: acc) s []))

let prop_bitset_model =
  QCheck.Test.make ~count:300 ~name:"bitset matches a set model"
    QCheck.(list (pair bool (int_range 0 99)))
    (fun ops ->
      let s = Bitset.create 100 in
      let m = Hashtbl.create 16 in
      List.iter
        (fun (add, i) ->
          if add then (Bitset.add s i; Hashtbl.replace m i ())
          else (Bitset.remove s i; Hashtbl.remove m i))
        ops;
      Bitset.cardinal s = Hashtbl.length m
      && List.for_all (fun (_, i) -> Bitset.mem s i = Hashtbl.mem m i) ops)

(* ------------------------------------------------------------------ *)
(* Topology *)

let test_topology () =
  let topo = Topology.create (Config.origin2000 ~nprocs:128) in
  check_int "64 nodes" 64 (Topology.nnodes topo);
  check_int "same node" 0 (Topology.hops topo 5 5);
  check_int "hamming 1" 1 (Topology.hops topo 0 1);
  check_int "hamming far" 6 (Topology.hops topo 0 63);
  check_bool "symmetric" true (Topology.hops topo 3 12 = Topology.hops topo 12 3);
  check_int "local latency" 70 (Topology.mem_latency topo ~proc_node:2 ~home_node:2);
  check_int "1-hop latency" 110 (Topology.mem_latency topo ~proc_node:0 ~home_node:1);
  let far = Topology.mem_latency topo ~proc_node:0 ~home_node:63 in
  check_bool "far remote within paper range" true (far >= 110 && far <= 200);
  check_int "route to self is free" 0 (Topology.route_cycles topo ~from_node:4 ~to_node:4)

(* ------------------------------------------------------------------ *)
(* TLB *)

let test_tlb_lru () =
  let tlb = Tlb.create ~entries:2 in
  check_bool "cold miss" false (Tlb.access tlb ~page:1);
  check_bool "hit" true (Tlb.access tlb ~page:1);
  check_bool "second page miss" false (Tlb.access tlb ~page:2);
  check_bool "both resident" true (Tlb.access tlb ~page:1);
  (* page 2 is now LRU; inserting page 3 evicts it *)
  check_bool "third page evicts LRU" false (Tlb.access tlb ~page:3);
  check_bool "page 1 survived" true (Tlb.access tlb ~page:1);
  check_bool "page 2 was evicted" false (Tlb.access tlb ~page:2);
  check_int "resident bounded" 2 (Tlb.resident tlb)

(* ------------------------------------------------------------------ *)
(* Cache *)

let l2cfg : Config.cache_cfg =
  { size_bytes = 512; line_bytes = 128; assoc = 2; hit_cycles = 10 }
(* 4 lines, 2 sets: even lines -> set 0, odd lines -> set 1 *)

let test_cache_hit_miss () =
  let c = Cache.create l2cfg in
  check_bool "cold" false (Cache.touch c ~line:0);
  check_bool "insert then hit" true
    (ignore (Cache.insert c ~line:0 ~dirty:false);
     Cache.touch c ~line:0);
  check_int "resident" 1 (Cache.resident_lines c)

let test_cache_lru_eviction () =
  let c = Cache.create l2cfg in
  (* set 0 holds even lines; fill with 0 and 2, touch 0, insert 4: evicts 2 *)
  ignore (Cache.insert c ~line:0 ~dirty:false);
  ignore (Cache.insert c ~line:2 ~dirty:true);
  ignore (Cache.touch c ~line:0);
  (match Cache.insert c ~line:4 ~dirty:false with
  | Some { line; dirty } ->
      check_int "LRU victim" 2 line;
      check_bool "victim was dirty" true dirty
  | None -> Alcotest.fail "expected an eviction");
  check_bool "line 0 survived" true (Cache.probe c ~line:0);
  check_bool "line 2 gone" false (Cache.probe c ~line:2)

let test_cache_sets_independent () =
  let c = Cache.create l2cfg in
  ignore (Cache.insert c ~line:0 ~dirty:false);
  ignore (Cache.insert c ~line:1 ~dirty:false);
  ignore (Cache.insert c ~line:2 ~dirty:false);
  ignore (Cache.insert c ~line:3 ~dirty:false);
  check_int "4 lines resident across 2 sets" 4 (Cache.resident_lines c)

let test_cache_dirty_invalidate () =
  let c = Cache.create l2cfg in
  ignore (Cache.insert c ~line:5 ~dirty:false);
  Cache.set_dirty c ~line:5;
  check_bool "dirty" true (Cache.is_dirty c ~line:5);
  Cache.clear_dirty c ~line:5;
  check_bool "cleaned" false (Cache.is_dirty c ~line:5);
  Cache.set_dirty c ~line:5;
  check_bool "invalidate reports dirty" true (Cache.invalidate c ~line:5);
  check_bool "gone" false (Cache.probe c ~line:5)

let test_cache_invalidate_range () =
  let cfg : Config.cache_cfg =
    { size_bytes = 256; line_bytes = 32; assoc = 2; hit_cycles = 1 }
  in
  let c = Cache.create cfg in
  (* lines 4..7 cover bytes 128..255 (one 128-byte L2 line) *)
  for l = 4 to 7 do
    ignore (Cache.insert c ~line:l ~dirty:(l mod 2 = 0))
  done;
  let dropped_dirty = Cache.invalidate_range c ~lo_addr:128 ~hi_addr:255 in
  check_int "two dirty lines dropped" 2 dropped_dirty;
  check_int "all gone" 0 (Cache.resident_lines c)

(* ------------------------------------------------------------------ *)
(* Pagetable *)

let test_pagetable_first_touch () =
  let cfg = tiny () in
  let pt = Pagetable.create cfg Pagetable.First_touch in
  check_int "faulting node gets the page" 1 (Pagetable.home pt ~page:7 ~faulting_node:1);
  check_int "sticky thereafter" 1 (Pagetable.home pt ~page:7 ~faulting_node:0);
  check_int "one page placed" 1 (Pagetable.placed_pages pt)

let test_pagetable_round_robin () =
  let cfg = tiny () in
  let pt = Pagetable.create cfg Pagetable.Round_robin in
  let homes = List.init 6 (fun p -> Pagetable.home pt ~page:p ~faulting_node:0) in
  Alcotest.(check (list int)) "round robin over 2 nodes" [ 0; 1; 0; 1; 0; 1 ] homes

let test_pagetable_explicit_place () =
  let cfg = tiny () in
  let pt = Pagetable.create cfg Pagetable.First_touch in
  Pagetable.place pt ~page:3 ~node:1;
  check_int "explicit placement overrides first touch" 1
    (Pagetable.home pt ~page:3 ~faulting_node:0);
  (* first placement wins *)
  Pagetable.place pt ~page:3 ~node:0;
  check_int "re-place is a no-op" 1 (Pagetable.home pt ~page:3 ~faulting_node:0)

let test_pagetable_spill () =
  (* node memory of 2 pages: placing 3 pages on node 0 spills one to node 1 *)
  let cfg = tiny ~node_mem_bytes:512 () in
  let pt = Pagetable.create cfg Pagetable.First_touch in
  for p = 0 to 2 do
    ignore (Pagetable.home pt ~page:p ~faulting_node:0)
  done;
  check_int "node 0 full" 2 (Pagetable.pages_on_node pt ~node:0);
  check_int "spill to node 1" 1 (Pagetable.pages_on_node pt ~node:1)

let test_pagetable_migrate () =
  let cfg = tiny () in
  let pt = Pagetable.create cfg Pagetable.First_touch in
  ignore (Pagetable.home pt ~page:9 ~faulting_node:0);
  let f0 = Pagetable.frame pt ~page:9 in
  Pagetable.migrate pt ~page:9 ~node:1;
  check_int "new home" 1 (Pagetable.home pt ~page:9 ~faulting_node:0);
  check_bool "fresh frame" true (Pagetable.frame pt ~page:9 <> f0)

let test_pagetable_unique_frames () =
  let cfg = tiny () in
  let pt = Pagetable.create cfg Pagetable.Round_robin in
  let frames = Hashtbl.create 64 in
  for p = 0 to 40 do
    ignore (Pagetable.home pt ~page:p ~faulting_node:0);
    let f = Pagetable.frame pt ~page:p in
    check_bool "frame unique" false (Hashtbl.mem frames f);
    Hashtbl.replace frames f ()
  done

(* ------------------------------------------------------------------ *)
(* Directory *)

let test_directory_transitions () =
  let d = Directory.create ~nprocs:4 in
  check_bool "uncached" true (Directory.state d ~line:1 = Directory.Uncached);
  Directory.add_sharer d ~line:1 ~proc:0;
  (match Directory.state d ~line:1 with
  | Directory.Shared s -> check_int "one sharer" 1 (Bitset.cardinal s)
  | _ -> Alcotest.fail "expected Shared");
  Directory.add_sharer d ~line:1 ~proc:2;
  Alcotest.(check (list int)) "sharers except 2" [ 0 ]
    (Directory.sharers_except d ~line:1 ~proc:2);
  Directory.set_exclusive d ~line:1 ~owner:3;
  check_bool "exclusive" true (Directory.state d ~line:1 = Directory.Exclusive 3);
  Directory.add_sharer d ~line:1 ~proc:1;
  Alcotest.(check (list int)) "exclusive then sharer" [ 3 ]
    (List.sort compare (Directory.sharers_except d ~line:1 ~proc:1));
  Directory.drop d ~line:1 ~proc:3;
  Directory.drop d ~line:1 ~proc:1;
  check_bool "back to uncached" true (Directory.state d ~line:1 = Directory.Uncached)

(* ------------------------------------------------------------------ *)
(* Memsys: end-to-end scenarios *)

let mk ?(policy = Pagetable.First_touch) ?(cfg = tiny ()) () =
  Memsys.create cfg ~policy ()

let test_memsys_cold_then_hot () =
  let m = mk () in
  let cold = Memsys.access m ~proc:0 ~addr:0 ~write:false ~now:0 in
  check_bool "cold read costs at least local memory" true (cold >= 70);
  let hot = Memsys.access m ~proc:0 ~addr:8 ~write:false ~now:cold in
  check_int "adjacent word is an L1 hit" 1 hot;
  let c = Memsys.counters m ~proc:0 in
  check_int "one L2 miss" 1 c.Counters.l2_misses;
  check_int "local fill" 1 c.Counters.local_fills;
  check_int "one TLB miss" 1 c.Counters.tlb_misses

let test_memsys_remote_costs_more () =
  let m = mk () in
  (* proc 0 (node 0) touches page 0 first: homes it on node 0 *)
  ignore (Memsys.access m ~proc:0 ~addr:0 ~write:false ~now:0);
  (* proc 2 (node 1) misses on the second line of page 0, homed on node 0 *)
  let remote = Memsys.access m ~proc:2 ~addr:128 ~write:false ~now:0 in
  ignore (Memsys.access m ~proc:0 ~addr:0 ~write:false ~now:0);
  (* compare: proc 0 reading another cold local page *)
  let local = Memsys.access m ~proc:0 ~addr:1024 ~write:false ~now:0 in
  check_bool
    (Printf.sprintf "remote (%d) > local (%d)" remote local)
    true (remote > local);
  let c2 = Memsys.counters m ~proc:2 in
  check_int "remote fill counted" 1 c2.Counters.remote_fills

let test_memsys_write_invalidates_readers () =
  let m = mk () in
  ignore (Memsys.access m ~proc:0 ~addr:0 ~write:false ~now:0);
  ignore (Memsys.access m ~proc:1 ~addr:0 ~write:false ~now:0);
  (* both share the line now; proc 1 writes: proc 0 must be invalidated *)
  ignore (Memsys.access m ~proc:1 ~addr:0 ~write:true ~now:100);
  let c0 = Memsys.counters m ~proc:0 and c1 = Memsys.counters m ~proc:1 in
  check_int "proc0 invalidated" 1 c0.Counters.invals_received;
  check_bool "proc1 sent an inval" true (c1.Counters.invals_sent >= 1);
  (* proc 0 re-reads: must miss again (coherence) *)
  let before = c0.Counters.l2_misses in
  ignore (Memsys.access m ~proc:0 ~addr:0 ~write:false ~now:200);
  check_int "re-read is a coherence miss" (before + 1) c0.Counters.l2_misses

let test_memsys_dirty_fetch () =
  let m = mk () in
  ignore (Memsys.access m ~proc:0 ~addr:0 ~write:true ~now:0);
  (* proc 1 reads the dirty line: cache-to-cache transfer *)
  ignore (Memsys.access m ~proc:1 ~addr:0 ~write:false ~now:50);
  let c1 = Memsys.counters m ~proc:1 in
  check_int "dirty fetch" 1 c1.Counters.dirty_fetches;
  (* both can now read cheaply *)
  check_int "proc1 L1 hit" 1 (Memsys.access m ~proc:1 ~addr:8 ~write:false ~now:500);
  check_int "proc0 keeps its copy" 1
    (Memsys.access m ~proc:0 ~addr:8 ~write:false ~now:500)

let test_memsys_false_sharing_ping_pong () =
  let m = mk () in
  (* words 0 and 64 share the 128-byte L2 line: alternating writers ping-pong *)
  for i = 0 to 9 do
    ignore (Memsys.access m ~proc:0 ~addr:0 ~write:true ~now:(1000 * i));
    ignore (Memsys.access m ~proc:1 ~addr:64 ~write:true ~now:(1000 * i) )
  done;
  let c0 = Memsys.counters m ~proc:0 and c1 = Memsys.counters m ~proc:1 in
  check_bool "both suffer invalidations" true
    (c0.Counters.invals_received >= 8 && c1.Counters.invals_received >= 8);
  check_bool "repeated coherence misses" true
    (c0.Counters.l2_misses + c0.Counters.upgrades >= 9)

let test_memsys_contention_hot_node () =
  (* All data on node 0; procs on other nodes hammer it. Total contention
     must exceed the same traffic spread over both nodes. *)
  let cfg = tiny ~nprocs:4 () in
  let run policy_placement =
    let m = mk ~cfg () in
    (match policy_placement with
    | `Hot -> Memsys.place_bytes m ~lo:0 ~hi:8191 ~node:0
    | `Spread ->
        Memsys.place_bytes m ~lo:0 ~hi:4095 ~node:0;
        Memsys.place_bytes m ~lo:4096 ~hi:8191 ~node:1);
    (* each proc streams through a distinct 2KB region at the same time *)
    for w = 0 to 255 do
      for p = 0 to 3 do
        ignore (Memsys.access m ~proc:p ~addr:((p * 2048) + (w * 8)) ~write:false ~now:(w * 30))
      done
    done;
    (Memsys.total_counters m).Counters.contention_cycles
  in
  let hot = run `Hot and spread = run `Spread in
  check_bool
    (Printf.sprintf "hot node contends more (%d > %d)" hot spread)
    true (hot > spread)

let test_memsys_l2_eviction_writeback () =
  let m = mk () in
  (* tiny L2 holds 4 lines; write 6 distinct lines mapping over the sets *)
  for l = 0 to 5 do
    ignore (Memsys.access m ~proc:0 ~addr:(l * 128) ~write:true ~now:(l * 100))
  done;
  let c = Memsys.counters m ~proc:0 in
  check_bool "writebacks happened" true (c.Counters.writebacks >= 1);
  (* evicted line must be re-fetchable correctly *)
  ignore (Memsys.access m ~proc:0 ~addr:0 ~write:false ~now:10_000);
  check_int "refetch misses" 7 c.Counters.l2_misses

let test_memsys_counter_consistency () =
  let m = mk ~policy:Pagetable.Round_robin () in
  for i = 0 to 199 do
    ignore (Memsys.access m ~proc:(i mod 4) ~addr:(i * 56) ~write:(i mod 3 = 0) ~now:(i * 10))
  done;
  let t = Memsys.total_counters m in
  check_int "fills partition L2 misses (no dirty owners here)"
    t.Counters.l2_misses
    (t.Counters.local_fills + t.Counters.remote_fills);
  check_int "invals conserve" t.Counters.invals_sent t.Counters.invals_received;
  check_int "every access counted" 200 (Counters.accesses t)

let test_memsys_migrate_changes_home () =
  let m = mk () in
  ignore (Memsys.access m ~proc:0 ~addr:0 ~write:false ~now:0);
  Alcotest.(check (option int)) "homed on node 0" (Some 0) (Memsys.home_of_addr m 0);
  let moved = Memsys.migrate_bytes m ~lo:0 ~hi:255 ~node:1 in
  check_int "one page moved" 1 moved;
  Alcotest.(check (option int)) "re-homed" (Some 1) (Memsys.home_of_addr m 0)

let test_memsys_tlb_pressure () =
  (* touching more pages than TLB entries causes recurring TLB misses *)
  let m = mk () in
  for round = 0 to 4 do
    for p = 0 to 7 do
      ignore
        (Memsys.access m ~proc:0 ~addr:(p * 256) ~write:false ~now:(round * 1000))
    done
  done;
  let c = Memsys.counters m ~proc:0 in
  (* 8 pages over a 4-entry TLB: every access in each round misses *)
  check_bool "recurring TLB misses" true (c.Counters.tlb_misses >= 16)

(* reference model: fully explicit set-associative LRU cache *)
let prop_cache_matches_model =
  QCheck.Test.make ~count:200 ~name:"cache matches a naive LRU model"
    QCheck.(list (pair bool (int_range 0 40)))
    (fun ops ->
      let cfg : Config.cache_cfg =
        { size_bytes = 512; line_bytes = 64; assoc = 2; hit_cycles = 1 }
      in
      let nsets = 512 / 64 / 2 in
      let c = Cache.create cfg in
      (* model: per set, list of (line, dirty), most recent first *)
      let model = Array.make nsets [] in
      List.for_all
        (fun (write, line) ->
          let set = line mod nsets in
          let hit_model = List.mem_assoc line model.(set) in
          let hit = Cache.touch c ~line in
          (if hit_model then begin
             let dirty = write || List.assoc line model.(set) in
             model.(set) <-
               (line, dirty) :: List.remove_assoc line model.(set)
           end
           else begin
             (if not hit then ignore (Cache.insert c ~line ~dirty:write));
             let kept =
               if List.length model.(set) >= 2 then
                 [ List.hd model.(set) ]
               else model.(set)
             in
             model.(set) <- (line, write) :: kept
           end);
          if write && hit then Cache.set_dirty c ~line;
          hit = hit_model
          && List.for_all
               (fun (l, d) -> Cache.probe c ~line:l && Cache.is_dirty c ~line:l = d)
               model.(set))
        ops)

let prop_pagetable_frames_unique_and_colored =
  QCheck.Test.make ~count:100 ~name:"pagetable: frames unique, colors preserved"
    QCheck.(list (int_range 0 300))
    (fun pages ->
      let cfg = tiny ~node_mem_bytes:(16 * 1024) () in
      let pt = Pagetable.create cfg Pagetable.Round_robin in
      let colors =
        max 1 (cfg.Config.l2.Config.size_bytes / cfg.Config.l2.Config.assoc / cfg.Config.page_bytes)
      in
      let frames = Hashtbl.create 64 in
      let placed = Hashtbl.create 64 in
      List.for_all
        (fun p ->
          ignore (Pagetable.home pt ~page:p ~faulting_node:0);
          let f = Pagetable.frame pt ~page:p in
          let fresh = not (Hashtbl.mem frames f) in
          let seen_before = Hashtbl.mem placed p in
          Hashtbl.replace frames f ();
          Hashtbl.replace placed p ();
          (seen_before || fresh) && f mod colors = p mod colors)
        pages)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)

let () =
  Alcotest.run "machine"
    [
      ( "config",
        [
          Alcotest.test_case "presets validate" `Quick test_config_presets;
          Alcotest.test_case "validate rejects bad configs" `Quick test_config_validate_rejects;
        ] );
      ( "bitset",
        [ Alcotest.test_case "basic ops" `Quick test_bitset_basic ] );
      qsuite "bitset.props" [ prop_bitset_model ];
      qsuite "cache.props" [ prop_cache_matches_model ];
      qsuite "pagetable.props" [ prop_pagetable_frames_unique_and_colored ];
      ("topology", [ Alcotest.test_case "hypercube distances & latency" `Quick test_topology ]);
      ("tlb", [ Alcotest.test_case "LRU replacement" `Quick test_tlb_lru ]);
      ( "cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "sets independent" `Quick test_cache_sets_independent;
          Alcotest.test_case "dirty & invalidate" `Quick test_cache_dirty_invalidate;
          Alcotest.test_case "invalidate_range" `Quick test_cache_invalidate_range;
        ] );
      ( "pagetable",
        [
          Alcotest.test_case "first touch" `Quick test_pagetable_first_touch;
          Alcotest.test_case "round robin" `Quick test_pagetable_round_robin;
          Alcotest.test_case "explicit placement" `Quick test_pagetable_explicit_place;
          Alcotest.test_case "spill when node full" `Quick test_pagetable_spill;
          Alcotest.test_case "migrate" `Quick test_pagetable_migrate;
          Alcotest.test_case "frames unique" `Quick test_pagetable_unique_frames;
        ] );
      ( "directory",
        [ Alcotest.test_case "state transitions" `Quick test_directory_transitions ] );
      ( "memsys",
        [
          Alcotest.test_case "cold miss then L1 hit" `Quick test_memsys_cold_then_hot;
          Alcotest.test_case "remote costs more than local" `Quick test_memsys_remote_costs_more;
          Alcotest.test_case "write invalidates readers" `Quick test_memsys_write_invalidates_readers;
          Alcotest.test_case "dirty cache-to-cache fetch" `Quick test_memsys_dirty_fetch;
          Alcotest.test_case "false sharing ping-pong" `Quick test_memsys_false_sharing_ping_pong;
          Alcotest.test_case "hot-node contention" `Quick test_memsys_contention_hot_node;
          Alcotest.test_case "eviction writeback" `Quick test_memsys_l2_eviction_writeback;
          Alcotest.test_case "counter consistency" `Quick test_memsys_counter_consistency;
          Alcotest.test_case "page migration" `Quick test_memsys_migrate_changes_home;
          Alcotest.test_case "TLB pressure" `Quick test_memsys_tlb_pressure;
        ] );
    ]
