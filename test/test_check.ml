(* Tests for the lib/check robustness layer: fault plans, structured
   diagnostics, invariant audits, heap canaries, scheduler FIFO ordering,
   and the induced-deadlock watchdog path. *)

module Fault = Ddsm_check.Fault
module Diag = Ddsm_check.Diag
module Audit = Ddsm_check.Audit
module Heapq = Ddsm_exec.Heapq
module Ddsm = Ddsm_core.Ddsm
module Rt = Ddsm_runtime.Rt
module Darray = Ddsm_runtime.Darray
module Heap = Ddsm_runtime.Heap
module K = Ddsm_dist.Kind

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Fault plans *)

let test_fault_spec_roundtrip () =
  let f =
    Fault.make ~seed:7
      ~slow_nodes:[ (0, 80); (2, 30) ]
      ~hot_dirs:[ (1, 40) ]
      ~slow_links:[ ((0, 3), 25) ]
      ~tlb_flush_period:512 ~redist_fail:2 ~lose_wakeup:9 ~drop_barrier:3 ()
  in
  (match Fault.of_spec (Fault.to_spec f) with
  | Error e -> Alcotest.failf "roundtrip: %s" e
  | Ok f' -> check_bool "roundtrip equal" true (f = f'));
  (match Fault.of_spec "none" with
  | Ok f -> check_bool "none" true (Fault.is_none f)
  | Error e -> Alcotest.fail e);
  (match Fault.of_spec "" with
  | Ok f -> check_bool "empty" true (Fault.is_none f)
  | Error e -> Alcotest.fail e);
  check_bool "garbage rejected" true
    (Result.is_error (Fault.of_spec "bogus=1"));
  check_bool "bad int rejected" true (Result.is_error (Fault.of_spec "tlb=x"))

let test_fault_random_deterministic () =
  let a = Fault.random ~seed:42 ~nnodes:4
  and b = Fault.random ~seed:42 ~nnodes:4 in
  check_bool "same seed, same plan" true (a = b);
  check_int "no chaos from random" 0 a.Fault.lose_wakeup;
  check_int "random never drops barriers" 0 a.Fault.drop_barrier;
  (* across many seeds, at least two distinct plans must appear *)
  let distinct = Hashtbl.create 16 in
  for s = 0 to 19 do
    Hashtbl.replace distinct (Fault.random ~seed:s ~nnodes:4) ()
  done;
  check_bool "seeds vary the plan" true (Hashtbl.length distinct > 1)

let test_fault_queries () =
  let f =
    Fault.make
      ~slow_nodes:[ (1, 100) ]
      ~hot_dirs:[ (0, 40) ]
      ~slow_links:[ ((0, 2), 30) ]
      ~tlb_flush_period:4 ~redist_fail:2 ()
  in
  check_int "slow node" 100 (Fault.mem_extra f ~node:1);
  check_int "other node" 0 (Fault.mem_extra f ~node:0);
  check_int "hot dir" 40 (Fault.dir_extra f ~home:0);
  check_int "link a-b" 30 (Fault.link_extra f ~a:0 ~b:2);
  check_int "link symmetric" 30 (Fault.link_extra f ~a:2 ~b:0);
  check_int "self link free" 0 (Fault.link_extra f ~a:2 ~b:2);
  check_bool "flush at period" true (Fault.tlb_flush_due f ~accesses:8);
  check_bool "no flush off-period" false (Fault.tlb_flush_due f ~accesses:9);
  check_bool "attempt 0 fails" true (Fault.redist_attempt_fails f ~attempt:0);
  check_bool "attempt 2 ok" false (Fault.redist_attempt_fails f ~attempt:2);
  let n = Fault.none in
  check_bool "none never flushes" false (Fault.tlb_flush_due n ~accesses:64);
  check_bool "none never fails" false (Fault.redist_attempt_fails n ~attempt:0)

let test_fault_drop_barrier () =
  let f = Fault.make ~drop_barrier:2 () in
  check_bool "2nd barrier dropped" true (Fault.barrier_dropped f ~barrier:2);
  check_bool "1st barrier kept" false (Fault.barrier_dropped f ~barrier:1);
  check_bool "3rd barrier kept" false (Fault.barrier_dropped f ~barrier:3);
  check_bool "none never drops" false
    (Fault.barrier_dropped Fault.none ~barrier:1);
  (match Fault.of_spec "drop-barrier=5" with
  | Ok f' -> check_int "spec parses" 5 f'.Fault.drop_barrier
  | Error e -> Alcotest.fail e);
  check_bool "negative rejected" true
    (Result.is_error (Fault.of_spec "drop-barrier=-1"))

(* ------------------------------------------------------------------ *)
(* Scheduler heap ordering *)

let test_heapq_fifo_ties () =
  let h = Heapq.create () in
  List.iter (fun v -> Heapq.push h ~key:5 v) [ "a"; "b"; "c"; "d" ];
  Heapq.push h ~key:1 "first";
  Heapq.push h ~key:9 "last";
  let popped = ref [] in
  let rec drain () =
    match Heapq.pop h with
    | None -> ()
    | Some (_, v) ->
        popped := v :: !popped;
        drain ()
  in
  drain ();
  check_string "sorted, FIFO within equal keys" "first,a,b,c,d,last"
    (String.concat "," (List.rev !popped))

(* ------------------------------------------------------------------ *)
(* Diagnostics *)

let test_diag_rendering () =
  let u = Diag.user "bad argument" in
  check_string "user headline" "bad argument" (Diag.headline u);
  check_string "bare user renders as before" "bad argument" (Diag.to_string u);
  check_bool "user not internal" false (Diag.is_internal u);
  let i = Diag.internal "index out of bounds" in
  check_bool "internal flagged" true (Diag.is_internal i);
  check_bool "internal labelled" true
    (String.length (Diag.headline i) > String.length "index out of bounds")

(* ------------------------------------------------------------------ *)
(* End-to-end: faults perturb cycles, never output; audits; deadlock *)

let src_sum =
  {|
      program s
      integer n, i
      parameter (n = 512)
      real*8 a(n), s
c$distribute a(block)
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, n
        a(i) = mod(i * 13, 17)
      enddo
      s = 0.0
      do i = 1, n
        s = s + a(i)
      enddo
      print *, s
      end
|}

let run_structured ?fault ?audit ?(nprocs = 4) src =
  match Ddsm.compile_source ~fname:"t.pf" src with
  | Error es -> Alcotest.failf "compile: %s" (String.concat "; " es)
  | Ok obj -> (
      match Ddsm.link [ obj ] with
      | Error es -> Alcotest.failf "link: %s" (String.concat "; " es)
      | Ok (prog, _) ->
          let rt = Ddsm.make_rt ?fault ~nprocs () in
          (Ddsm.run prog ~rt ?audit (), rt))

let test_fault_changes_cycles_not_output () =
  let clean, _ = run_structured src_sum in
  let fault =
    Fault.make ~slow_nodes:[ (0, 200) ] ~tlb_flush_period:32 ()
  in
  let faulty, _ = run_structured ~fault src_sum in
  match (clean, faulty) with
  | Ok c, Ok f ->
      Alcotest.(check (list string))
        "same output" c.Ddsm.Engine.prints f.Ddsm.Engine.prints;
      check_bool "faults cost cycles" true
        (f.Ddsm.Engine.cycles > c.Ddsm.Engine.cycles)
  | Error d, _ | _, Error d -> Alcotest.fail (Diag.to_string d)

let test_audit_clean_run () =
  match fst (run_structured ~audit:true src_sum) with
  | Ok _ -> ()
  | Error d -> Alcotest.failf "audit should pass: %s" (Diag.to_string d)

let test_canary_catches_overrun () =
  let rt = Ddsm.make_rt ~nprocs:4 () in
  let a =
    Rt.declare_regular rt ~name:"A" ~elem:Darray.Real ~extents:[| 64 |]
      ~kinds:[| K.Block |] ()
  in
  check_bool "clean before tamper" true (Rt.audit rt = []);
  (* clobber one guard word through the real plane, as a runaway store
     past the end of the array would *)
  let addr, _ = List.hd a.Darray.canaries in
  Heap.set_real rt.Rt.heap addr 0.0;
  let vs = Rt.audit rt in
  check_bool "violation reported" true (vs <> []);
  check_bool "names the invariant" true
    (List.exists (fun v -> v.Audit.invariant = "heap-canary") vs)

let test_lost_wakeup_diagnosed_as_deadlock () =
  let fault = Fault.make ~lose_wakeup:40 () in
  match fst (run_structured ~fault ~nprocs:4 src_sum) with
  | Ok _ -> Alcotest.fail "expected an induced deadlock"
  | Error d ->
      check_bool "deadlock reason" true (d.Diag.reason = Diag.Deadlock);
      check_bool "blocked tasks named" true (d.Diag.blocked <> []);
      check_bool "per-proc clocks present" true (d.Diag.proc_clocks <> []);
      (* somewhere in the forest sits the task whose wakeup was dropped *)
      let rec any p (v : Diag.task_view) =
        p v || List.exists (any p) v.Diag.tv_children
      in
      check_bool "a task is blocked on its memory wakeup" true
        (List.exists
           (any (fun v -> v.Diag.tv_state = Diag.Blocked_mem))
           d.Diag.blocked);
      let dump = Diag.to_string d in
      check_bool "dump names blocked tasks" true
        (String.length dump > String.length (Diag.headline d))

let () =
  Alcotest.run "check"
    [
      ( "fault",
        [
          Alcotest.test_case "spec roundtrip" `Quick test_fault_spec_roundtrip;
          Alcotest.test_case "random deterministic" `Quick
            test_fault_random_deterministic;
          Alcotest.test_case "query semantics" `Quick test_fault_queries;
          Alcotest.test_case "drop-barrier" `Quick test_fault_drop_barrier;
        ] );
      ( "sched",
        [ Alcotest.test_case "heapq FIFO ties" `Quick test_heapq_fifo_ties ] );
      ( "diag",
        [ Alcotest.test_case "rendering" `Quick test_diag_rendering ] );
      ( "robustness",
        [
          Alcotest.test_case "faults: cycles only" `Quick
            test_fault_changes_cycles_not_output;
          Alcotest.test_case "audit clean run" `Quick test_audit_clean_run;
          Alcotest.test_case "canary catches overrun" `Quick
            test_canary_catches_overrun;
          Alcotest.test_case "lost wakeup -> deadlock diag" `Quick
            test_lost_wakeup_diagnosed_as_deadlock;
        ] );
    ]
