(* Randomized differential testing of the full pipeline: generate random
   directive-annotated stencil programs and check that every optimization
   level, processor count and placement policy computes the same result as
   the unoptimized single-processor run. This is the strongest correctness
   net over the §4/§7 transformations. *)

open Ddsm_frontend
open Ddsm_sema
open Ddsm_transform
open Ddsm_exec
module K = Ddsm_dist.Kind
module Config = Ddsm_machine.Config
module Pagetable = Ddsm_machine.Pagetable
module Rt = Ddsm_runtime.Rt
module Fault = Ddsm_check.Fault

(* ------------------------------------------------------------------ *)
(* program generator *)

type gened = { src : string; label : string }

let kind_to_src = function
  | K.Block -> "block"
  | K.Cyclic -> "cyclic"
  | K.Cyclic_k k -> Printf.sprintf "cyclic(%d)" k
  | K.Star -> "*"

let gen_1d rng =
  let module G = QCheck.Gen in
  let n = G.generate1 ~rand:rng (G.int_range 16 80) in
  let kind =
    G.generate1 ~rand:rng
      (G.oneofl [ K.Block; K.Cyclic; K.Cyclic_k 3; K.Cyclic_k 5 ])
  in
  let reshape = G.generate1 ~rand:rng G.bool in
  let off1 = G.generate1 ~rand:rng (G.int_range (-2) 2) in
  let off2 = G.generate1 ~rand:rng (G.int_range (-2) 2) in
  let scale = G.generate1 ~rand:rng (G.int_range 1 2) in
  let step = G.generate1 ~rand:rng (G.oneofl [ 1; 1; 1; 2; 3 ]) in
  let lo = 1 + max 0 (max (-off1) (-off2)) in
  let hi_margin = max 0 (max off1 off2) in
  let use_affinity = G.generate1 ~rand:rng G.bool in
  let dist_line =
    Printf.sprintf "c$distribute%s a(%s), b(%s)"
      (if reshape then "_reshape" else "")
      (kind_to_src kind) (kind_to_src kind)
  in
  (* affinity needs s*i+c with literal s >= 0 *)
  let affinity =
    if use_affinity then
      Printf.sprintf " affinity(i) = data(a(%d*i))" scale
    else ""
  in
  let loop_hi = (n - hi_margin) / scale in
  let src =
    Printf.sprintf
      {|
      program r1
      integer n, i
      parameter (n = %d)
      real*8 a(n), b(n), s
%s
      do i = 1, n
        a(i) = mod(i * 13, 17)
        b(i) = mod(i * 7, 23)
      enddo
c$doacross local(i)%s
      do i = %d, %d, %d
        a(%d*i) = (b(%d*i+%d) + b(%d*i+%d)) * 0.5 + a(%d*i)
      enddo
      s = 0.0
      do i = 1, n
        s = s + a(i) * mod(i, 9)
      enddo
      print *, s
      end
|}
      n dist_line affinity lo loop_hi step scale scale off1 scale off2 scale
  in
  {
    src;
    label =
      Printf.sprintf "1d n=%d %s%s s=%d offs=(%d,%d) step=%d%s" n
        (kind_to_src kind)
        (if reshape then " reshaped" else " regular")
        scale off1 off2 step
        (if use_affinity then " aff" else "");
  }

let gen_2d rng =
  let module G = QCheck.Gen in
  let n = G.generate1 ~rand:rng (G.int_range 10 28) in
  let k1 = G.generate1 ~rand:rng (G.oneofl [ K.Block; K.Star; K.Cyclic ]) in
  let k2 = G.generate1 ~rand:rng (G.oneofl [ K.Block; K.Cyclic ]) in
  let reshape = G.generate1 ~rand:rng G.bool in
  let oi = G.generate1 ~rand:rng (G.int_range (-1) 1) in
  let oj = G.generate1 ~rand:rng (G.int_range (-1) 1) in
  let nest = G.generate1 ~rand:rng G.bool in
  let dist_line =
    Printf.sprintf "c$distribute%s a(%s, %s), b(%s, %s)"
      (if reshape then "_reshape" else "")
      (kind_to_src k1) (kind_to_src k2) (kind_to_src k1) (kind_to_src k2)
  in
  (* nest+affinity requires every nest var constrained; use affinity only
     when both dims are distributed *)
  let affinity =
    if nest && K.is_distributed k1 && K.is_distributed k2 then
      " affinity(j, i) = data(a(i, j))"
    else ""
  in
  let clause = if nest then Printf.sprintf " nest(j, i)%s" affinity else affinity in
  let src =
    Printf.sprintf
      {|
      program r2
      integer n, i, j
      parameter (n = %d)
      real*8 a(n, n), b(n, n), s
%s
      do j = 1, n
        do i = 1, n
          a(i, j) = mod(i * 3 + j, 11)
          b(i, j) = mod(i + j * 5, 13)
        enddo
      enddo
c$doacross local(i, j)%s
      do j = 2, n-1
        do i = 2, n-1
          a(i, j) = b(i+%d, j+%d) + a(i, j) * 0.5
        enddo
      enddo
      s = 0.0
      do j = 1, n
        do i = 1, n
          s = s + a(i, j) * mod(i + j, 7)
        enddo
      enddo
      print *, s
      end
|}
      n dist_line clause oi oj
  in
  {
    src;
    label =
      Printf.sprintf "2d n=%d (%s,%s)%s offs=(%d,%d)%s" n (kind_to_src k1)
        (kind_to_src k2)
        (if reshape then " reshaped" else " regular")
        oi oj
        (if nest then " nest" else "");
  }

(* ------------------------------------------------------------------ *)

let build ~flags src =
  match Parser.parse_file ~fname:"r.pf" src with
  | Error e -> Error ("parse: " ^ e)
  | Ok f -> (
      match Sema.analyse_file f with
      | Error es -> Error ("sema: " ^ String.concat "; " es)
      | Ok envs ->
          let routines =
            List.map
              (fun (env : Sema.env) ->
                let code = Pipeline.run flags env in
                (env.Sema.routine.Ddsm_ir.Decl.rname, { Prog.env; code }))
              envs
          in
          Ok
            (Prog.create routines
               ~main:
                 (List.hd envs).Sema.routine.Ddsm_ir.Decl.rname))

let run ?(fault = Fault.none) ~flags ~nprocs ~policy src =
  match build ~flags src with
  | Error e -> Error e
  | Ok prog -> (
      let cfg = Config.scaled ~nprocs:(max nprocs 8) () in
      let rt =
        Rt.create cfg ~policy ~heap_words:(1 lsl 18) ~job_procs:nprocs ~fault ()
      in
      match Engine.run prog ~rt ~bounds:true () with
      | Ok o -> Ok (String.concat "|" o.Engine.prints, rt)
      | Error m -> Error ("run: " ^ Ddsm_check.Diag.to_string m))

let differential gen count () =
  let rng = Random.State.make [| 0xd15c0; count |] in
  for round = 1 to count do
    let { src; label } = gen rng in
    match run ~flags:Flags.all_off ~nprocs:1 ~policy:Pagetable.First_touch src with
    | Error e -> Alcotest.failf "%s: reference failed: %s\n%s" label e src
    | Ok (reference, _) ->
        List.iter
          (fun (flags, nprocs, policy, fault) ->
            match run ~fault ~flags ~nprocs ~policy src with
            | Error e -> Alcotest.failf "%s [np=%d]: %s\n%s" label nprocs e src
            | Ok (got, _) ->
                if got <> reference then
                  Alcotest.failf "%s [np=%d]: got %s, want %s\n%s" label nprocs
                    got reference src)
          [
            (Flags.all_on, 1, Pagetable.First_touch, Fault.none);
            (Flags.all_on, 4, Pagetable.First_touch, Fault.none);
            (Flags.all_on, 7, Pagetable.Round_robin, Fault.none);
            (Flags.all_on, 8, Pagetable.First_touch, Fault.none);
            (Flags.tile_peel, 5, Pagetable.First_touch, Fault.none);
            ({ Flags.all_on with Flags.peel = false }, 4, Pagetable.First_touch,
             Fault.none);
            (Flags.all_off, 6, Pagetable.Round_robin, Fault.none);
            (* seeded fault plans: perturb timing, must not perturb output *)
            (Flags.all_on, 4, Pagetable.First_touch,
             Fault.random ~seed:round ~nnodes:2);
            (Flags.all_on, 8, Pagetable.Round_robin,
             Fault.random ~seed:(round + 1000) ~nnodes:4);
            (Flags.all_off, 6, Pagetable.First_touch,
             Fault.make ~slow_nodes:[ (0, 120) ] ~tlb_flush_period:64
               ~redist_fail:2 ());
          ]
  done

(* ------------------------------------------------------------------ *)
(* Injected redistribution failures: the program must compute the same
   checksum whether the page migration succeeds, succeeds after retries,
   or falls back to the old placement — and the retry/fallback machinery
   must actually fire. *)

let redist_src =
  {|
      program rd
      integer n, i, it
      parameter (n = 1024)
      real*8 a(n), s
c$distribute a(block)
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, n
        a(i) = mod(i * 11, 19)
      enddo
c$redistribute a(cyclic)
      do it = 1, 2
c$doacross local(i) affinity(i) = data(a(i))
        do i = 1, n
          a(i) = a(i) * 0.5 + 1.0
        enddo
      enddo
      s = 0.0
      do i = 1, n
        s = s + a(i)
      enddo
      print *, s
      end
|}

let redist_failures () =
  let go fault =
    match run ~fault ~flags:Flags.all_on ~nprocs:4 ~policy:Pagetable.First_touch
            redist_src
    with
    | Error e -> Alcotest.failf "redist run failed: %s" e
    | Ok (out, rt) -> (out, rt)
  in
  let clean_out, clean_rt = go Fault.none in
  Alcotest.(check int) "clean run retries nothing" 0 clean_rt.Rt.redist_retries;
  Alcotest.(check bool) "clean run moved pages" true (clean_rt.Rt.redist_pages > 0);
  (* two injected failures: the third attempt succeeds *)
  let retry_out, retry_rt = go (Fault.make ~redist_fail:2 ()) in
  Alcotest.(check string) "output unchanged by retries" clean_out retry_out;
  Alcotest.(check int) "two retries recorded" 2 retry_rt.Rt.redist_retries;
  Alcotest.(check int) "no fallback" 0 retry_rt.Rt.redist_fallbacks;
  Alcotest.(check int) "pages still moved" clean_rt.Rt.redist_pages
    retry_rt.Rt.redist_pages;
  (* persistent failure: every attempt fails, placement falls back *)
  let fb_out, fb_rt = go (Fault.make ~redist_fail:100 ()) in
  Alcotest.(check string) "output unchanged by fallback" clean_out fb_out;
  Alcotest.(check bool) "fallback recorded" true (fb_rt.Rt.redist_fallbacks > 0);
  Alcotest.(check int) "no pages moved on fallback" 0 fb_rt.Rt.redist_pages

let () =
  Alcotest.run "random-differential"
    [
      ( "stencils",
        [
          Alcotest.test_case "1-D programs" `Slow (differential gen_1d 40);
          Alcotest.test_case "2-D programs" `Slow (differential gen_2d 25);
        ] );
      ( "faults",
        [
          Alcotest.test_case "redistribution failures" `Quick redist_failures;
        ] );
    ]
