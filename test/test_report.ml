(* Tests for the reporting library and the core facade (public pipeline). *)

open Ddsm_report
module Ddsm = Ddsm_core.Ddsm
module C = Ddsm_machine.Counters

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let has_sub s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Series *)

let test_series_speedup () =
  let s = Series.speedup ~baseline:100.0 ~label:"v" [ (1, 100.0); (2, 50.0); (4, 20.0) ] in
  let ys = List.map (fun p -> p.Series.y) s.Series.points in
  Alcotest.(check (list (float 1e-9))) "speedups" [ 1.0; 2.0; 5.0 ] ys

let test_series_table_chart () =
  let a = Series.make ~label:"a" [ (1, 1.0); (2, 2.0) ] in
  let b = Series.make ~label:"b" [ (1, 1.0); (4, 3.0) ] in
  let table = Format.asprintf "%a" (fun ppf -> Series.pp_table ~xlabel:"p" ppf) [ a; b ] in
  check_bool "table mentions both labels" true
    (String.length table > 0
    && has_sub table "a" && has_sub table "b"
    && has_sub table "-" (* missing point *));
  let chart =
    Format.asprintf "%a" (fun ppf -> Series.pp_chart ~ideal:true ~xlabel:"p" ppf) [ a; b ]
  in
  check_bool "chart has legend" true (has_sub chart "linear speedup")

let test_crossover () =
  let a = Series.make ~label:"a" [ (1, 1.0); (2, 1.0); (4, 5.0); (8, 9.0) ] in
  let b = Series.make ~label:"b" [ (1, 2.0); (2, 2.0); (4, 3.0); (8, 4.0) ] in
  (match Series.crossovers a b with
  | Some (x, _) -> check_int "a overtakes b at 4" 4 x
  | None -> Alcotest.fail "expected a crossover");
  check_bool "b never overtakes a after 4" true (Series.crossovers b a = None)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats () =
  let c = C.create () in
  c.C.loads <- 80;
  c.C.stores <- 20;
  c.C.l1_misses <- 10;
  c.C.l2_misses <- 5;
  c.C.local_fills <- 4;
  c.C.remote_fills <- 1;
  c.C.tlb_stall_cycles <- 25;
  c.C.mem_stall_cycles <- 100;
  let s = Stats.of_counters c in
  check_int "accesses" 100 s.Stats.accesses;
  Alcotest.(check (float 1e-9)) "l1 rate" 0.1 s.Stats.l1_miss_rate;
  Alcotest.(check (float 1e-9)) "local fraction" 0.8 s.Stats.local_fill_fraction;
  Alcotest.(check (float 1e-9)) "tlb fraction" 0.25 s.Stats.tlb_stall_fraction;
  check_bool "pp works" true (String.length (Format.asprintf "%a" Stats.pp s) > 0)

(* ------------------------------------------------------------------ *)
(* Core facade *)

let demo =
  {|
      program demo
      integer n, i
      parameter (n = 64)
      real*8 a(n), s
c$distribute_reshape a(block)
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, n
        a(i) = i
      enddo
      s = 0.0
      do i = 1, n
        s = s + a(i)
      enddo
      print *, s
      end
|}

let test_run_source () =
  match Ddsm.run_source ~nprocs:4 demo with
  | Ok o ->
      Alcotest.(check (list string)) "prints" [ "2080" ] o.Ddsm.Engine.prints;
      check_bool "cycles positive" true (o.Ddsm.Engine.cycles > 0)
  | Error e -> Alcotest.fail e

let test_run_source_reports_errors () =
  check_bool "parse error surfaces" true
    (Result.is_error (Ddsm.run_source "      program p\n      x = \n      end\n"));
  check_bool "sema error surfaces" true
    (Result.is_error (Ddsm.run_source "      program p\n      x = 1\n      end\n"))

let test_staged_pipeline_and_image () =
  let obj =
    match Ddsm.compile_source ~fname:"demo.pf" demo with
    | Ok o -> o
    | Error es -> Alcotest.failf "compile: %s" (String.concat ";" es)
  in
  let prog, linked =
    match Ddsm.link [ obj ] with
    | Ok x -> x
    | Error es -> Alcotest.failf "link: %s" (String.concat ";" es)
  in
  (* save / reload the image and run both *)
  let path = Filename.temp_file "ddsm" ".pfi" in
  Ddsm.save_image linked ~path;
  let linked' =
    match Ddsm.load_image ~path with
    | Ok l -> l
    | Error e -> Alcotest.fail e
  in
  Sys.remove path;
  let run prog =
    let rt = Ddsm.make_rt ~nprocs:4 () in
    match Ddsm.run prog ~rt () with
    | Ok o -> o.Ddsm.Engine.prints
    | Error e -> Alcotest.fail (Ddsm.Diag.to_string e)
  in
  Alcotest.(check (list string)) "direct" [ "2080" ] (run prog);
  Alcotest.(check (list string)) "via image" [ "2080" ]
    (run (Ddsm.prog_of_linked linked'))

let test_machine_presets () =
  (* origin vs scaled machines both run the program; job smaller than
     machine is the paper's setup *)
  List.iter
    (fun machine ->
      match Ddsm.run_source ~machine ~machine_procs:16 ~nprocs:4 demo with
      | Ok o -> Alcotest.(check (list string)) "result" [ "2080" ] o.Ddsm.Engine.prints
      | Error e -> Alcotest.fail e)
    [ Ddsm.Origin2000; Ddsm.Scaled 64; Ddsm.Scaled 256 ]

let test_determinism () =
  let cycles () =
    match Ddsm.run_source ~nprocs:8 demo with
    | Ok o -> o.Ddsm.Engine.cycles
    | Error e -> Alcotest.fail e
  in
  check_int "two identical runs, identical cycles" (cycles ()) (cycles ())

let () =
  Alcotest.run "report+core"
    [
      ( "series",
        [
          Alcotest.test_case "speedup conversion" `Quick test_series_speedup;
          Alcotest.test_case "table & chart" `Quick test_series_table_chart;
          Alcotest.test_case "crossover detection" `Quick test_crossover;
        ] );
      ("stats", [ Alcotest.test_case "derived metrics" `Quick test_stats ]);
      ( "core",
        [
          Alcotest.test_case "run_source" `Quick test_run_source;
          Alcotest.test_case "error propagation" `Quick test_run_source_reports_errors;
          Alcotest.test_case "staged pipeline & image io" `Quick test_staged_pipeline_and_image;
          Alcotest.test_case "machine presets" `Quick test_machine_presets;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
    ]
