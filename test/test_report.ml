(* Tests for the reporting library and the core facade (public pipeline). *)

open Ddsm_report
module Ddsm = Ddsm_core.Ddsm
module C = Ddsm_machine.Counters

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let has_sub s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Series *)

let test_series_speedup () =
  let s = Series.speedup ~baseline:100.0 ~label:"v" [ (1, 100.0); (2, 50.0); (4, 20.0) ] in
  let ys = List.map (fun p -> p.Series.y) s.Series.points in
  Alcotest.(check (list (float 1e-9))) "speedups" [ 1.0; 2.0; 5.0 ] ys

let test_series_table_chart () =
  let a = Series.make ~label:"a" [ (1, 1.0); (2, 2.0) ] in
  let b = Series.make ~label:"b" [ (1, 1.0); (4, 3.0) ] in
  let table = Format.asprintf "%a" (fun ppf -> Series.pp_table ~xlabel:"p" ppf) [ a; b ] in
  check_bool "table mentions both labels" true
    (String.length table > 0
    && has_sub table "a" && has_sub table "b"
    && has_sub table "-" (* missing point *));
  let chart =
    Format.asprintf "%a" (fun ppf -> Series.pp_chart ~ideal:true ~xlabel:"p" ppf) [ a; b ]
  in
  check_bool "chart has legend" true (has_sub chart "linear speedup")

let test_crossover () =
  let a = Series.make ~label:"a" [ (1, 1.0); (2, 1.0); (4, 5.0); (8, 9.0) ] in
  let b = Series.make ~label:"b" [ (1, 2.0); (2, 2.0); (4, 3.0); (8, 4.0) ] in
  (match Series.crossovers a b with
  | Some (x, _) -> check_int "a overtakes b at 4" 4 x
  | None -> Alcotest.fail "expected a crossover");
  check_bool "b never overtakes a after 4" true (Series.crossovers b a = None)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats () =
  let c = C.create () in
  c.C.loads <- 80;
  c.C.stores <- 20;
  c.C.l1_misses <- 10;
  c.C.l2_misses <- 5;
  c.C.local_fills <- 4;
  c.C.remote_fills <- 1;
  c.C.tlb_stall_cycles <- 25;
  c.C.mem_stall_cycles <- 100;
  let s = Stats.of_counters c in
  check_int "accesses" 100 s.Stats.accesses;
  Alcotest.(check (float 1e-9)) "l1 rate" 0.1 s.Stats.l1_miss_rate;
  Alcotest.(check (float 1e-9)) "local fraction" 0.8 s.Stats.local_fill_fraction;
  Alcotest.(check (float 1e-9)) "tlb fraction" 0.25 s.Stats.tlb_stall_fraction;
  check_bool "pp works" true (String.length (Format.asprintf "%a" Stats.pp s) > 0)

let test_stats_ratio_nan () =
  (* 0/0 is "nothing happened"; a positive numerator over a zero
     denominator is a counter-accounting bug and must not read as 0.0 *)
  Alcotest.(check (float 0.0)) "0/0" 0.0 (Stats.ratio 0 0);
  check_bool "a/0 is nan, not 0" true (Float.is_nan (Stats.ratio 7 0));
  let c = C.create () in
  c.C.tlb_stall_cycles <- 42;
  (* mem_stall_cycles stays 0: contradictory *)
  let s = Stats.of_counters c in
  check_bool "contradictory fraction is nan" true
    (Float.is_nan s.Stats.tlb_stall_fraction);
  let rendered = Format.asprintf "%a" Stats.pp s in
  check_bool "pp renders the bad fraction as --" true (has_sub rendered "--%");
  check_bool "pp never prints literal nan" false (has_sub rendered "nan")

let test_stats_audit () =
  let c = C.create () in
  Alcotest.(check (list string)) "fresh counters are consistent" [] (Stats.audit c);
  c.C.loads <- 100;
  c.C.l1_misses <- 10;
  c.C.l2_misses <- 4;
  c.C.local_fills <- 3;
  c.C.remote_fills <- 1;
  c.C.tlb_misses <- 2;
  c.C.tlb_stall_cycles <- 50;
  c.C.mem_stall_cycles <- 500;
  Alcotest.(check (list string)) "consistent counters" [] (Stats.audit c);
  (* now break the fill/miss accounting *)
  c.C.remote_fills <- 5;
  check_bool "fills <> l2_misses flagged" true
    (List.exists (fun m -> has_sub m "l2_misses") (Stats.audit c));
  let c2 = C.create () in
  c2.C.tlb_stall_cycles <- 9;
  let bugs = Stats.audit c2 in
  check_bool "tlb stall without tlb misses flagged" true
    (List.exists (fun m -> has_sub m "tlb_misses") bugs);
  check_bool "tlb stall without mem stall flagged" true
    (List.exists (fun m -> has_sub m "mem_stall_cycles") bugs)

(* ------------------------------------------------------------------ *)
(* Profile: direct attribution unit tests (synthetic access events) *)

let mk_ev ?(proc = 0) ?(addr = 0) ?(tlb = 0) ?(hit = 0) ?(local = 0)
    ?(remote = 0) ?(contention = 0) ?(coherence = 0) () =
  {
    Ddsm_machine.Memsys.ev_proc = proc;
    ev_addr = addr;
    ev_write = false;
    ev_now = 0;
    ev_tlb = tlb;
    ev_hit = hit;
    ev_local = local;
    ev_remote = remote;
    ev_contention = contention;
    ev_coherence = coherence;
    ev_tlb_flushed = false;
  }

let test_profile_matrix () =
  let p = Profile.create () in
  (* words 10..19 belong to "x", words 30..34 to "y" *)
  Profile.register_array p ~name:"x" ~word_ranges:[ (10, 19) ];
  Profile.register_array p ~name:"y" ~word_ranges:[ (30, 34) ];
  (* byte addresses: word w covers [8w, 8w+7] *)
  Profile.record_access p ~region:"r1" (mk_ev ~addr:(10 * 8) ~remote:40 ~hit:2 ());
  Profile.record_access p ~region:"r1" (mk_ev ~addr:((19 * 8) + 7) ~local:10 ());
  Profile.record_access p ~region:"r2" (mk_ev ~addr:(30 * 8) ~tlb:25 ~contention:5 ());
  (* between the two arrays: unattributed *)
  Profile.record_access p ~region:"r2" (mk_ev ~addr:(25 * 8) ~local:7 ());
  check_int "total" (40 + 2 + 10 + 25 + 5 + 7) (Profile.total_stall p);
  check_int "attributed" (40 + 2 + 10 + 25 + 5) (Profile.attributed_stall p);
  let rows = Profile.rows p in
  let find region array =
    List.find_opt
      (fun r -> r.Profile.r_region = region && r.Profile.r_array = array)
      rows
  in
  (match find "r1" "x" with
  | None -> Alcotest.fail "missing (r1, x) row"
  | Some r ->
      check_int "r1/x total" 52 r.Profile.r_total;
      check_int "r1/x remote" 40
        r.Profile.r_cycles.(Profile.cause_index Profile.Remote_fill);
      check_int "r1/x local" 10
        r.Profile.r_cycles.(Profile.cause_index Profile.Local_fill));
  (match find "r2" "y" with
  | None -> Alcotest.fail "missing (r2, y) row"
  | Some r ->
      check_int "r2/y tlb" 25
        r.Profile.r_cycles.(Profile.cause_index Profile.Tlb));
  (match find "r2" "(unattributed)" with
  | None -> Alcotest.fail "missing unattributed row"
  | Some r -> check_int "unattributed cycles" 7 r.Profile.r_total);
  check_bool "report renders" true
    (String.length (Format.asprintf "%a" (Profile.pp_report ~top:10) p) > 0)

let test_profile_ring_bounded () =
  let p = Profile.create ~trace_cap:4 () in
  for i = 1 to 10 do
    Profile.event p ~name:(Printf.sprintf "e%d" i) ~ph:Profile.Instant ~tid:0
      ~ts:i ()
  done;
  check_int "dropped" 6 (Profile.trace_dropped p)

(* ------------------------------------------------------------------ *)
(* Profile: end-to-end attribution on a two-array microprogram.

   Region 1 initializes a with owner affinity (local traffic on a);
   region 2 writes b from a read *reversed* (a(n+1-i)), so the stall
   cycles of region 2 must land on array a largely as remote fills. *)

let twoarr =
  {|
      program twoarr
      integer n, i
      parameter (n = 64)
      real*8 a(n), b(n)
c$distribute_reshape a(block)
c$distribute_reshape b(block)
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, n
        a(i) = i
      enddo
c$doacross local(i) affinity(i) = data(b(i))
      do i = 1, n
        b(i) = a(n+1-i)
      enddo
      print *, b(1)
      end
|}

let region_line label =
  match String.rindex_opt label ':' with
  | None -> -1
  | Some i -> (
      match int_of_string_opt (String.sub label (i + 1) (String.length label - i - 1)) with
      | Some n -> n
      | None -> -1)

let test_profile_end_to_end () =
  let profile = Ddsm.Profile.create () in
  let o =
    match Ddsm.run_source ~nprocs:4 ~profile twoarr with
    | Ok o -> o
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check (list string)) "prints" [ "64" ] o.Ddsm.Engine.prints;
  (* the cause taxonomy partitions mem_stall_cycles exactly *)
  check_int "profile total = machine mem_stall counter"
    o.Ddsm.Engine.counters.C.mem_stall_cycles
    (Profile.total_stall profile);
  let total = Profile.total_stall profile in
  let attributed = Profile.attributed_stall profile in
  check_bool "at least 90% of stall cycles attributed" true
    (10 * attributed >= 9 * total);
  let rows = Profile.rows profile in
  (* two distinct doacross regions were seen, plus possibly (serial) *)
  let regions =
    List.sort_uniq compare
      (List.filter_map
         (fun r ->
           if r.Profile.r_region = "(serial)" then None
           else Some r.Profile.r_region)
         rows)
  in
  check_int "two parallel regions" 2 (List.length regions);
  check_bool "regions are named routine:line" true
    (List.for_all (fun l -> has_sub l "twoarr:" && region_line l > 0) regions);
  (* region 2 (the higher line number) reads a reversed: its stalls on
     array a must include remote fills, and more of them than region 1's *)
  let r1, r2 =
    match regions with
    | [ x; y ] when region_line x < region_line y -> (x, y)
    | [ x; y ] -> (y, x)
    | _ -> Alcotest.fail "expected two regions"
  in
  let remote_on region array =
    List.fold_left
      (fun acc r ->
        if r.Profile.r_region = region && r.Profile.r_array = array then
          acc + r.Profile.r_cycles.(Profile.cause_index Profile.Remote_fill)
        else acc)
      0 rows
  in
  let a = "twoarr/a" in
  check_bool "region 2 has remote stalls on a" true (remote_on r2 a > 0);
  check_bool "region 2's remote stalls on a exceed region 1's" true
    (remote_on r2 a >= remote_on r1 a)

(* ------------------------------------------------------------------ *)
(* Trace export: a minimal test-local JSON reader (the library
   deliberately has no parser) checks the Chrome trace output is
   well-formed and timestamp-monotonic. *)

module Jparse = struct
  type v =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of v list
    | Obj of (string * v) list

  exception Bad of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else raise (Bad "eof") in
    let advance () = incr pos in
    let rec skip_ws () =
      if !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      then (advance (); skip_ws ())
    in
    let expect c =
      if peek () <> c then raise (Bad (Printf.sprintf "expected %c at %d" c !pos));
      advance ()
    in
    let literal lit v =
      String.iter expect lit;
      v
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance (); Buffer.contents b
        | '\\' ->
            advance ();
            (match peek () with
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'u' ->
                (* skip the 4 hex digits; the tests only compare ASCII *)
                advance (); advance (); advance (); advance ();
                Buffer.add_char b '?'
            | c -> Buffer.add_char b c);
            advance ();
            go ()
        | c -> Buffer.add_char b c; advance (); go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let numchar c =
        (c >= '0' && c <= '9')
        || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while !pos < n && numchar s.[!pos] do advance () done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> raise (Bad "number")
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | '{' ->
          advance ();
          skip_ws ();
          if peek () = '}' then (advance (); Obj [])
          else
            let rec fields acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = value () in
              skip_ws ();
              match peek () with
              | ',' -> advance (); fields ((k, v) :: acc)
              | '}' -> advance (); Obj (List.rev ((k, v) :: acc))
              | _ -> raise (Bad "object")
            in
            fields []
      | '[' ->
          advance ();
          skip_ws ();
          if peek () = ']' then (advance (); Arr [])
          else
            let rec items acc =
              let v = value () in
              skip_ws ();
              match peek () with
              | ',' -> advance (); items (v :: acc)
              | ']' -> advance (); Arr (List.rev (v :: acc))
              | _ -> raise (Bad "array")
            in
            items []
      | '"' -> Str (parse_string ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | _ -> parse_number ()
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then raise (Bad "trailing garbage");
    v
end

let test_json_nonfinite_roundtrip () =
  (* JSON has no literal for inf/-inf/nan: all three must emit [null],
     and the result must still parse. *)
  let v =
    Json.Obj
      [
        ("a", Json.Float infinity);
        ("b", Json.Float neg_infinity);
        ("c", Json.Float nan);
        ("d", Json.Float 3.5);
        ("e", Json.List [ Json.Float neg_infinity; Json.Float 1.0 ]);
      ]
  in
  let rendered = Json.to_string v in
  match Jparse.parse rendered with
  | exception Jparse.Bad m -> Alcotest.failf "emitted JSON malformed: %s" m
  | Jparse.Obj f ->
      let is_null k = List.assoc_opt k f = Some Jparse.Null in
      check_bool "infinity emits null" true (is_null "a");
      check_bool "neg_infinity emits null" true (is_null "b");
      check_bool "nan emits null" true (is_null "c");
      (match List.assoc_opt "d" f with
      | Some (Jparse.Num x) ->
          Alcotest.(check (float 1e-12)) "finite floats survive" 3.5 x
      | _ -> Alcotest.fail "finite float mangled");
      (match List.assoc_opt "e" f with
      | Some (Jparse.Arr [ Jparse.Null; Jparse.Num _ ]) -> ()
      | _ -> Alcotest.fail "nested non-finite float not nulled")
  | _ -> Alcotest.fail "top level not an object"

let test_trace_roundtrip () =
  let profile = Ddsm.Profile.create () in
  (match Ddsm.run_source ~nprocs:4 ~profile twoarr with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let rendered = Json.to_string (Profile.trace_json profile) in
  let parsed =
    try Jparse.parse rendered
    with Jparse.Bad m -> Alcotest.failf "trace JSON malformed: %s" m
  in
  let fields =
    match parsed with
    | Jparse.Obj f -> f
    | _ -> Alcotest.fail "trace top level is not an object"
  in
  let events =
    match List.assoc_opt "traceEvents" fields with
    | Some (Jparse.Arr l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  check_bool "trace has events" true (List.length events > 0);
  let ts_of = function
    | Jparse.Obj f -> (
        (match List.assoc_opt "ph" f with
        | Some (Jparse.Str ("B" | "E" | "i")) -> ()
        | _ -> Alcotest.fail "bad or missing ph");
        (match List.assoc_opt "name" f with
        | Some (Jparse.Str _) -> ()
        | _ -> Alcotest.fail "missing name");
        match List.assoc_opt "ts" f with
        | Some (Jparse.Num t) ->
            check_bool "ts is an integer" true (Float.is_integer t);
            t
        | _ -> Alcotest.fail "missing ts")
    | _ -> Alcotest.fail "event is not an object"
  in
  let stamps = List.map ts_of events in
  let rec monotonic = function
    | a :: (b :: _ as rest) -> a <= b && monotonic rest
    | _ -> true
  in
  check_bool "timestamps are monotonic" true (monotonic stamps);
  (* the doacross regions appear as matched B/E pairs *)
  let count ph =
    List.length
      (List.filter
         (function
           | Jparse.Obj f -> List.assoc_opt "ph" f = Some (Jparse.Str ph)
           | _ -> false)
         events)
  in
  check_int "balanced B/E" (count "B") (count "E")

(* ------------------------------------------------------------------ *)
(* Core facade *)

let demo =
  {|
      program demo
      integer n, i
      parameter (n = 64)
      real*8 a(n), s
c$distribute_reshape a(block)
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, n
        a(i) = i
      enddo
      s = 0.0
      do i = 1, n
        s = s + a(i)
      enddo
      print *, s
      end
|}

let test_run_source () =
  match Ddsm.run_source ~nprocs:4 demo with
  | Ok o ->
      Alcotest.(check (list string)) "prints" [ "2080" ] o.Ddsm.Engine.prints;
      check_bool "cycles positive" true (o.Ddsm.Engine.cycles > 0)
  | Error e -> Alcotest.fail e

let test_run_source_reports_errors () =
  check_bool "parse error surfaces" true
    (Result.is_error (Ddsm.run_source "      program p\n      x = \n      end\n"));
  check_bool "sema error surfaces" true
    (Result.is_error (Ddsm.run_source "      program p\n      x = 1\n      end\n"))

let test_staged_pipeline_and_image () =
  let obj =
    match Ddsm.compile_source ~fname:"demo.pf" demo with
    | Ok o -> o
    | Error es -> Alcotest.failf "compile: %s" (String.concat ";" es)
  in
  let prog, linked =
    match Ddsm.link [ obj ] with
    | Ok x -> x
    | Error es -> Alcotest.failf "link: %s" (String.concat ";" es)
  in
  (* save / reload the image and run both *)
  let path = Filename.temp_file "ddsm" ".pfi" in
  Ddsm.save_image linked ~path;
  let linked' =
    match Ddsm.load_image ~path with
    | Ok l -> l
    | Error e -> Alcotest.fail e
  in
  Sys.remove path;
  let run prog =
    let rt = Ddsm.make_rt ~nprocs:4 () in
    match Ddsm.run prog ~rt () with
    | Ok o -> o.Ddsm.Engine.prints
    | Error e -> Alcotest.fail (Ddsm.Diag.to_string e)
  in
  Alcotest.(check (list string)) "direct" [ "2080" ] (run prog);
  Alcotest.(check (list string)) "via image" [ "2080" ]
    (run (Ddsm.prog_of_linked linked'))

let test_machine_presets () =
  (* origin vs scaled machines both run the program; job smaller than
     machine is the paper's setup *)
  List.iter
    (fun machine ->
      match Ddsm.run_source ~machine ~machine_procs:16 ~nprocs:4 demo with
      | Ok o -> Alcotest.(check (list string)) "result" [ "2080" ] o.Ddsm.Engine.prints
      | Error e -> Alcotest.fail e)
    [ Ddsm.Origin2000; Ddsm.Scaled 64; Ddsm.Scaled 256 ]

let test_determinism () =
  let cycles () =
    match Ddsm.run_source ~nprocs:8 demo with
    | Ok o -> o.Ddsm.Engine.cycles
    | Error e -> Alcotest.fail e
  in
  check_int "two identical runs, identical cycles" (cycles ()) (cycles ())

let () =
  Alcotest.run "report+core"
    [
      ( "series",
        [
          Alcotest.test_case "speedup conversion" `Quick test_series_speedup;
          Alcotest.test_case "table & chart" `Quick test_series_table_chart;
          Alcotest.test_case "crossover detection" `Quick test_crossover;
        ] );
      ( "stats",
        [
          Alcotest.test_case "derived metrics" `Quick test_stats;
          Alcotest.test_case "ratio flags 0-denominator bugs" `Quick
            test_stats_ratio_nan;
          Alcotest.test_case "counter-accounting audit" `Quick test_stats_audit;
        ] );
      ( "profile",
        [
          Alcotest.test_case "attribution matrix" `Quick test_profile_matrix;
          Alcotest.test_case "ring buffer is bounded" `Quick
            test_profile_ring_bounded;
          Alcotest.test_case "two-array end-to-end attribution" `Quick
            test_profile_end_to_end;
          Alcotest.test_case "chrome trace roundtrip" `Quick
            test_trace_roundtrip;
          Alcotest.test_case "json non-finite floats" `Quick
            test_json_nonfinite_roundtrip;
        ] );
      ( "core",
        [
          Alcotest.test_case "run_source" `Quick test_run_source;
          Alcotest.test_case "error propagation" `Quick test_run_source_reports_errors;
          Alcotest.test_case "staged pipeline & image io" `Quick test_staged_pipeline_and_image;
          Alcotest.test_case "machine presets" `Quick test_machine_presets;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
    ]
