(* Domain-parallel fan-out for independent deterministic simulations.

   Every figure sweep and differential-oracle run is embarrassingly
   parallel: each job builds its own [Rt]/[Memsys] and shares nothing with
   its siblings. [map] farms such jobs out over OCaml 5 domains, returning
   results (and re-raising exceptions) in job-list order, so the observable
   output of a parallel sweep is byte-identical to the sequential one. *)

(* Environment defaults ([DDSM_JOBS]/[DDSM_SHARDS]) are user input: a
   malformed value is a diagnosable user error, never an exception — the
   CLIs map [Error] to their documented exit-2 path. *)

let parse_count ~env s =
  let t = String.trim s in
  (* decimal digits only: int_of_string's 0x/0o/_ spellings are surprising
     in an environment variable and stay rejected *)
  let decimal = t <> "" && String.for_all (fun c -> c >= '0' && c <= '9') t in
  match (decimal, int_of_string_opt t) with
  | true, Some n when n >= 1 -> Ok n
  | _ -> Error (Printf.sprintf "%s=%S: expected a positive integer" env s)

let count_from_env env =
  match Sys.getenv_opt env with None -> Ok 1 | Some s -> parse_count ~env s

let default_jobs () = count_from_env "DDSM_JOBS"
let default_shards () = count_from_env "DDSM_SHARDS"

type 'b slot = Pending | Done of 'b | Raised of exn * Printexc.raw_backtrace

let map ?(jobs = 1) f xs =
  if jobs < 1 then invalid_arg "Jobs.map: jobs < 1";
  let n = List.length xs in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let inputs = Array.of_list xs in
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
            (match f inputs.(i) with
            | y -> Done y
            | exception e -> Raised (e, Printexc.get_raw_backtrace ())));
          loop ()
        end
      in
      loop ()
    in
    let spawned = Array.make (min jobs n - 1) None in
    (* if a spawn itself fails (domain limit), join whatever started —
       those workers drain every job — before re-raising *)
    (try
       for i = 0 to Array.length spawned - 1 do
         spawned.(i) <- Some (Domain.spawn worker)
       done
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       worker ();
       Array.iter (Option.iter Domain.join) spawned;
       Printexc.raise_with_backtrace e bt);
    worker ();
    Array.iter (Option.iter Domain.join) spawned;
    (* deterministic reduction: deliver results — and the lowest-index
       failure, with its own backtrace — in job order, regardless of which
       domain ran what when *)
    Array.iter
      (function
        | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
        | Done _ | Pending -> ())
      results;
    Array.to_list
      (Array.map
         (function Done y -> y | Raised _ | Pending -> assert false)
         results)
  end

let mapi ?jobs f xs = map ?jobs (fun (i, x) -> f i x) (List.mapi (fun i x -> (i, x)) xs)
