(** Domain-parallel map over independent deterministic jobs.

    The simulator's sweeps (bench figures, [pflrun --differential]) run many
    self-contained jobs — each builds its own runtime and machine — so they
    fan out across OCaml 5 domains without any shared mutable state. Results
    are reduced in job-list order and the first exception (in job order) is
    re-raised, making a parallel sweep observably identical to a sequential
    one. *)

val parse_count : env:string -> string -> (int, string) result
(** Parse a positive job/shard count supplied through environment variable
    [env]; the error message names the variable and the offending value,
    so the CLIs can surface it as a located user error (exit 2). *)

val default_jobs : unit -> (int, string) result
(** Job count from the [DDSM_JOBS] environment variable; [Ok 1] when
    unset. A malformed value is an [Error] naming the variable — user
    input is never an exception. *)

val default_shards : unit -> (int, string) result
(** Intra-run shard count from the [DDSM_SHARDS] environment variable;
    [Ok 1] when unset (sequential event loop). Malformed values as in
    {!default_jobs}. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs] computed on up to [jobs] domains
    (the calling domain included). [jobs <= 1] runs sequentially with no
    domain spawned. [f] must not touch shared mutable state.

    Per-job outcomes (value or exception) are captured independently; after
    every domain joins, the lowest-index failure is re-raised with its
    original backtrace — never whichever failure a [Domain.join] happened
    to observe first. *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
