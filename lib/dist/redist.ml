(* Minimal-communication redistribution schedules.

   Given two layouts of the same index space, compute which (source
   processor, destination processor) pairs exchange how many elements —
   closed-form from the block-cyclic parameters, never by scanning
   elements — and decompose the resulting all-to-all into rounds in which
   every processor sends at most one transfer and receives at most one
   (Rink et al.'s memory-bounded decomposition: round r pairs src with
   src + r mod R). *)

type move = { src : int; dst : int; words : int }
type round = { transfers : move list; max_words : int }

type t = {
  nprocs_src : int;
  nprocs_dst : int;
  total_words : int;
  local_words : int;
  cross_words : int;
  moves : move list;
  rounds : round list;
}

(* ------------------------------------------------------------------ *)
(* One dimension: (source owner, destination owner) -> element count.

   Owners of both layouts repeat with period lcm(b*P, b'*P') along the
   dimension (for Star, b = N and P = 1), so it suffices to walk the
   segments of one period — segment boundaries are the chunk boundaries
   of either layout — and replicate the counts across the extent. The
   walk visits O(period / min b) segments, never elements. *)

let dim_pairs (a : Dim_map.t) (b : Dim_map.t) =
  if a.Dim_map.extent <> b.Dim_map.extent then
    invalid_arg "Redist.dim_pairs: extent mismatch";
  let n = a.Dim_map.extent in
  let ba = a.Dim_map.block and bb = b.Dim_map.block in
  let span (m : Dim_map.t) = m.Dim_map.block * m.Dim_map.procs in
  let sa = span a and sb = span b in
  let g = Intmath.gcd sa sb in
  let lcm = sa / g * sb in
  let period = if lcm >= n || lcm <= 0 then n else lcm in
  let full = n / period and tail = n mod period in
  let acc = Hashtbl.create 16 in
  let add key c =
    if c > 0 then
      Hashtbl.replace acc key
        (c + Option.value ~default:0 (Hashtbl.find_opt acc key))
  in
  let next_mult i blk = ((i / blk) + 1) * blk in
  let i = ref 0 in
  while !i < period do
    let j = min period (min (next_mult !i ba) (next_mult !i bb)) in
    let len = j - !i in
    (* the tail [full*period, n) replays pattern positions [0, tail) *)
    let count = (full * len) + max 0 (min j tail - !i) in
    add (Dim_map.owner a !i, Dim_map.owner b !i) count;
    i := j
  done;
  Hashtbl.fold (fun key c l -> (key, c) :: l) acc []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Round decomposition: class r holds the pairs with (dst - src) mod R = r.
   Within one class each processor appears in at most one transfer as
   source and at most one as destination, so a class is a legal round and
   the per-processor staging memory is bounded by the round's largest
   transfer. *)

let round_class ~r ~src ~dst = Intmath.fmod (dst - src) r

let rounds_of_moves ~r moves =
  let classes = Hashtbl.create 16 in
  List.iter
    (fun m ->
      let c = round_class ~r ~src:m.src ~dst:m.dst in
      Hashtbl.replace classes c
        (m :: Option.value ~default:[] (Hashtbl.find_opt classes c)))
    moves;
  Hashtbl.fold (fun c ms l -> (c, ms) :: l) classes []
  |> List.sort compare
  |> List.map (fun (_, ms) ->
         let ms = List.sort compare ms in
         {
           transfers = ms;
           max_words = List.fold_left (fun m t -> max m t.words) 0 ms;
         })

(* ------------------------------------------------------------------ *)
(* Whole-array schedule: the multi-dimensional pair map is the cartesian
   product of the per-dimension maps (counts multiply), linearised through
   each layout's own processor grid. *)

let build ~src:(la : Layout.t) ~dst:(lb : Layout.t) =
  if la.Layout.extents <> lb.Layout.extents then
    invalid_arg "Redist.build: layouts describe different index spaces";
  let nd = Array.length la.Layout.extents in
  let per_dim =
    Array.init nd (fun d -> dim_pairs la.Layout.dims.(d) lb.Layout.dims.(d))
  in
  let acc = Hashtbl.create 64 in
  let oa = Array.make nd 0 and ob = Array.make nd 0 in
  let rec go d count =
    if d = nd then begin
      let key = (Grid.linear la.Layout.grid oa, Grid.linear lb.Layout.grid ob)
      in
      Hashtbl.replace acc key
        (count + Option.value ~default:0 (Hashtbl.find_opt acc key))
    end
    else
      List.iter
        (fun ((sa, sb), c) ->
          oa.(d) <- sa;
          ob.(d) <- sb;
          go (d + 1) (count * c))
        per_dim.(d)
  in
  if nd > 0 then go 0 1;
  let pairs =
    Hashtbl.fold (fun (s, d) c l -> { src = s; dst = d; words = c } :: l) acc []
    |> List.sort compare
  in
  let total = List.fold_left (fun t m -> t + m.words) 0 pairs in
  let local =
    List.fold_left (fun t m -> if m.src = m.dst then t + m.words else t) 0 pairs
  in
  let moves = List.filter (fun m -> m.src <> m.dst) pairs in
  let r = max (Layout.nprocs la) (Layout.nprocs lb) in
  {
    nprocs_src = Layout.nprocs la;
    nprocs_dst = Layout.nprocs lb;
    total_words = total;
    local_words = local;
    cross_words = total - local;
    moves;
    rounds = rounds_of_moves ~r moves;
  }

let nrounds t = List.length t.rounds

(* Scheduled-time proxy: rounds run one after another, transfers within a
   round in parallel, so a round costs its largest transfer. *)
let round_words t =
  List.fold_left (fun acc r -> acc + r.max_words) 0 t.rounds

let pp ppf t =
  Format.fprintf ppf "@[<v>redist %d->%d procs: %d words (%d cross) in %d rounds@,"
    t.nprocs_src t.nprocs_dst t.total_words t.cross_words (nrounds t);
  List.iteri
    (fun i r ->
      Format.fprintf ppf "  round %d (max %d):" i r.max_words;
      List.iter
        (fun m -> Format.fprintf ppf " %d->%d:%d" m.src m.dst m.words)
        r.transfers;
      Format.fprintf ppf "@,")
    t.rounds;
  Format.fprintf ppf "@]"
