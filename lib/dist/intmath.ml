(* Floor division that is exact for every numerator, including min_int:
   truncate-toward-zero then correct when a remainder was discarded on a
   negative numerator (the naive -((-a + b - 1) / b) overflows at -a when
   a = min_int). *)
let fdiv a b =
  if b <= 0 then invalid_arg "Intmath.fdiv: non-positive divisor";
  let q = a / b and r = a mod b in
  if r < 0 then q - 1 else q

let fmod a b = a - (b * fdiv a b)

let cdiv a b =
  if b <= 0 then invalid_arg "Intmath.cdiv: non-positive divisor";
  let q = a / b and r = a mod b in
  if r > 0 then q + 1 else q

let egcd a b =
  (* gcd (min_int, 0) = |min_int| is not representable, and min_int / -1
     silently wraps: refuse min_int operands outright rather than return a
     negative "gcd". *)
  if a = min_int || b = min_int then
    invalid_arg "Intmath.egcd: min_int operand (gcd unrepresentable)";
  let rec go a b =
    if b = 0 then if a >= 0 then (a, 1, 0) else (-a, -1, 0)
    else
      let g, x, y = go b (a mod b) in
      (g, y, x - (a / b * y))
  in
  go a b

let gcd a b =
  let g, _, _ = egcd a b in
  g

type ap = { start : int; step : int }

let align_up x ~base ~step =
  if step <= 0 then invalid_arg "Intmath.align_up: non-positive step";
  if x <= base then base else base + (cdiv (x - base) step * step)

(* Steps are bounded so the CRT arithmetic below cannot overflow:
   operands reduced mod m stay below 2^31, so products stay below 2^62. *)
let max_step = 1 lsl 31

(* Solve { a.start + i*a.step } ∩ { b.start + j*b.step } by CRT. We need
   x ≡ a.start (mod a.step) and x ≡ b.start (mod b.step); solvable iff
   gcd divides the difference of the residues. *)
let ap_intersect a b =
  if a.step <= 0 || b.step <= 0 then invalid_arg "Intmath.ap_intersect";
  if a.step >= max_step || b.step >= max_step then
    invalid_arg "Intmath.ap_intersect: step >= 2^31 (CRT would overflow)";
  let g, u, _v = egcd a.step b.step in
  let diff = b.start - a.start in
  (* a same-sign wrap here means the true difference exceeds the int
     range; refuse rather than intersect the wrong progressions *)
  if b.start >= a.start <> (diff >= 0) then
    invalid_arg "Intmath.ap_intersect: start difference overflows";
  if diff mod g <> 0 then None
  else
    let lcm = a.step / g * b.step in
    (* x = a.start + a.step * t where t ≡ u * (diff/g) (mod b.step/g);
       reduce both factors mod m first — the raw u * (diff/g) product
       overflows for large steps and far-apart starts *)
    let m = b.step / g in
    let t0 = fmod (fmod u m * fmod (diff / g) m) m in
    let x0 = a.start + (a.step * t0) in
    (* x0 satisfies both congruences; move up to >= max of starts *)
    let lo = max a.start b.start in
    Some { start = align_up lo ~base:x0 ~step:lcm; step = lcm }
