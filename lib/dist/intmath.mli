(** Integer arithmetic helpers with floor/ceil semantics.

    OCaml's [/] and [mod] truncate toward zero; distribution math needs
    floor-division behaviour for possibly-negative numerators (e.g. affinity
    lower-bound computations where [p*b - c] can be negative). *)

val fdiv : int -> int -> int
(** [fdiv a b] is floor(a/b). [b] must be positive. Exact for every [a],
    including [min_int]. *)

val fmod : int -> int -> int
(** [fmod a b] is [a - b * fdiv a b], always in [0, b-1]. [b] > 0. *)

val cdiv : int -> int -> int
(** [cdiv a b] is ceil(a/b). [b] must be positive. *)

val egcd : int -> int -> int * int * int
(** [egcd a b] is [(g, x, y)] with [g = gcd a b] (non-negative) and
    [a*x + b*y = g]. Raises [Invalid_argument] when either operand is
    [min_int]: [|min_int|] is not representable, so the "gcd" would come
    back negative. *)

val gcd : int -> int -> int
(** Non-negative gcd; [gcd 0 0 = 0]. Same [min_int] restriction as
    {!egcd}. *)

type ap = { start : int; step : int }
(** The arithmetic progression [{start + k*step | k >= 0}]. [step] > 0. *)

val ap_intersect : ap -> ap -> ap option
(** Intersection of two upward-infinite arithmetic progressions, itself an
    arithmetic progression (or [None] if empty, i.e. the residues are
    incompatible). The result's [start] is the smallest common element that is
    [>= max a.start b.start]. Starts may be negative. Raises
    [Invalid_argument] when a step is [>= 2{^31}] or the two starts are so
    far apart that their difference overflows — explicit refusals instead
    of silently wrapped CRT arithmetic. *)

val align_up : int -> base:int -> step:int -> int
(** [align_up x ~base ~step] is the smallest element of the progression
    [base, base+step, ...] that is [>= x]. [step] > 0. *)
