(** Minimal-communication redistribution schedules (ROADMAP item 2).

    Computes, closed-form from two block-cyclic layouts of the same index
    space, how many elements every (source processor, destination
    processor) pair exchanges — following the interval composition of
    Sudarsan & Ribbens ("Efficient Multidimensional Data Redistribution
    for Resizable Parallel Computations") — and decomposes the resulting
    all-to-all into memory-bounded rounds in the style of Rink et al.
    ("Memory-efficient array redistribution"): in round [r] processor [s]
    sends to [s + r mod R], so every processor sends at most one transfer
    and receives at most one per round.

    Everything here is pure integer math over {!Layout} descriptors; no
    machine state is touched. The source and destination layouts may use
    different processor counts (resizable onto-grids). *)

type move = { src : int; dst : int; words : int }
(** An aggregated transfer: [words] elements homed on [src] that the new
    layout homes on [dst]. *)

type round = { transfers : move list; max_words : int }
(** One all-to-all round; [max_words] is the largest transfer, which
    bounds the per-processor staging memory and the round's parallel
    time. *)

type t = {
  nprocs_src : int;
  nprocs_dst : int;
  total_words : int;  (** every element of the array *)
  local_words : int;  (** elements whose home does not change *)
  cross_words : int;  (** elements that really move between processors *)
  moves : move list;  (** cross-processor pairs, aggregated and sorted *)
  rounds : round list;
}

val build : src:Layout.t -> dst:Layout.t -> t
(** Schedule the transition [src -> dst]. Raises [Invalid_argument] when
    the layouts describe different index spaces. Cost: proportional to
    the number of chunk boundaries in one owner period per dimension,
    times the number of distinct pair combinations — never to the number
    of elements. *)

val dim_pairs : Dim_map.t -> Dim_map.t -> ((int * int) * int) list
(** One-dimensional pair map: [(src_owner, dst_owner), count] for a
    single dimension, sorted. Exposed for the differential oracle in the
    test suite. *)

val round_class : r:int -> src:int -> dst:int -> int
(** The round in which the pair [(src, dst)] communicates, for a machine
    of [r] processors (or nodes): [(dst - src) mod r]. Also used to
    schedule page-granular migrations of regular arrays. *)

val rounds_of_moves : r:int -> move list -> round list
(** Group arbitrary cross moves into rounds by {!round_class}, classes in
    increasing order. *)

val nrounds : t -> int

val round_words : t -> int
(** Sum over rounds of the largest transfer in the round — the
    scheduled-time proxy the cost model charges (rounds are serial,
    transfers within a round parallel). *)

val pp : Format.formatter -> t -> unit
