(* Reference directory: the original Hashtbl-of-boxed-entries
   implementation, kept verbatim as the differential oracle for the flat
   open-addressing {!Directory}. Test-only. *)

type state = Uncached | Shared of Bitset.t | Exclusive of int

type entry = { mutable st : state }

type t = { nprocs : int; table : (int, entry) Hashtbl.t }

let create ~nprocs = { nprocs; table = Hashtbl.create 65536 }

let state t ~line =
  match Hashtbl.find_opt t.table line with
  | None -> Uncached
  | Some e -> e.st

let entry t line =
  match Hashtbl.find_opt t.table line with
  | Some e -> e
  | None ->
      let e = { st = Uncached } in
      Hashtbl.replace t.table line e;
      e

let set_exclusive t ~line ~owner = (entry t line).st <- Exclusive owner

let add_sharer t ~line ~proc =
  let e = entry t line in
  match e.st with
  | Uncached ->
      let s = Bitset.create t.nprocs in
      Bitset.add s proc;
      e.st <- Shared s
  | Shared s -> Bitset.add s proc
  | Exclusive q ->
      let s = Bitset.create t.nprocs in
      Bitset.add s q;
      Bitset.add s proc;
      e.st <- Shared s

let drop t ~line ~proc =
  match Hashtbl.find_opt t.table line with
  | None -> ()
  | Some e -> (
      match e.st with
      | Uncached -> ()
      | Exclusive q -> if q = proc then e.st <- Uncached
      | Shared s ->
          Bitset.remove s proc;
          if Bitset.is_empty s then e.st <- Uncached)

let sharers_except t ~line ~proc =
  match state t ~line with
  | Uncached -> []
  | Exclusive q -> if q = proc then [] else [ q ]
  | Shared s ->
      Bitset.fold (fun p acc -> if p = proc then acc else p :: acc) s []

let entries t = Hashtbl.length t.table
let nprocs t = t.nprocs
