type policy = First_touch | Round_robin

(* Virtual page numbers are dense (heap addresses start at 0), so the
   page -> (node, frame) map is a growable flat int array of packed
   node|frame words: translation on the access fast path is one bounds
   check and one load, no hashing and no allocation. -1 marks an unplaced
   page. The frame-allocation logic (coloring, spilling, overflow) is
   unchanged from the Hashtbl-based implementation — frames must stay
   bit-identical because they feed physical addresses and therefore cache
   sets. [Pagetable_ref] preserves the map-based implementation as the
   differential-oracle reference. *)

let node_bits = 20
let node_mask = (1 lsl node_bits) - 1

type t = {
  cfg : Config.t;
  policy : policy;
  mutable table : int array; (* page -> (frame lsl node_bits) lor node; -1 = unplaced *)
  mutable hi : int; (* one past the highest placed page *)
  mutable placed : int;
  used : int array; (* frames allocated per node *)
  color_next : int array array; (* per-node, per-color allocation round *)
  colors : int;
  capacity : int; (* frames per node *)
  mutable rr_next : int;
  mutable overflow : int; (* machine-full allocations (separate frame region) *)
  nnodes : int;
}

let create cfg policy =
  let nnodes = Config.nnodes cfg in
  (* page colors: one per way-size/page-size class, as in the IRIX
     page-coloring algorithm the paper credits (§8.2) — physical frames are
     chosen so a page keeps its virtual color and contiguous virtual
     addresses do not conflict in the (physically indexed) cache *)
  let colors =
    max 1
      (cfg.Config.l2.Config.size_bytes / cfg.Config.l2.Config.assoc
      / cfg.Config.page_bytes)
  in
  {
    cfg;
    policy;
    table = Array.make 4096 (-1);
    hi = 0;
    placed = 0;
    used = Array.make nnodes 0;
    color_next = Array.init nnodes (fun _ -> Array.make colors 0);
    colors;
    capacity = max 1 (Config.pages_per_node cfg);
    rr_next = 0;
    overflow = 0;
    nnodes;
  }

let policy t = t.policy

let pack ~node ~frame = (frame lsl node_bits) lor node
let packed_node p = p land node_mask
let packed_frame p = p lsr node_bits

let ensure t page =
  let n = Array.length t.table in
  if page >= n then begin
    let n' = ref (2 * n) in
    while page >= !n' do
      n' := 2 * !n'
    done;
    let table' = Array.make !n' (-1) in
    Array.blit t.table 0 table' 0 n;
    t.table <- table'
  end

(* packed word of a page, or -1 when unplaced (or out of any table yet
   grown) *)
let find t page =
  if page < 0 then invalid_arg "Pagetable: negative page";
  if page < Array.length t.table then Array.unsafe_get t.table page else -1

let store t page packed =
  ensure t page;
  if t.table.(page) < 0 then t.placed <- t.placed + 1;
  t.table.(page) <- packed;
  if page >= t.hi then t.hi <- page + 1

(* global frame id = node * frame_stride + local frame; local frames are
   color + round*colors with round bounded by the node capacity (plus the
   overflow slack when the whole machine is full) *)
let frame_stride t = (t.capacity + 4) * t.colors

let node_of_frame t f = min (t.nnodes - 1) (f / frame_stride t)

(* Allocate a colored frame on [node] for virtual page [page], spilling to
   following nodes when full. If the whole machine is full, keep
   over-allocating on the preferred node (the simulator does not model
   swapping). The local frame is congruent to the page's color, so the
   physically indexed cache sees the virtual layout's conflict pattern. *)
let alloc_frame t node ~page =
  let color = page mod t.colors in
  let take n =
    let round = t.color_next.(n).(color) in
    t.color_next.(n).(color) <- round + 1;
    t.used.(n) <- t.used.(n) + 1;
    (n, (n * frame_stride t) + color + (round * t.colors))
  in
  let rec go n tries =
    if tries >= t.nnodes then begin
      (* whole machine full: frames come from a dedicated overflow region
         above every node's range (no swapping is modelled), colored like
         normal allocations *)
      let f = t.overflow in
      t.overflow <- f + 1;
      ( node,
        (t.nnodes * frame_stride t)
        + color
        + (f * t.colors) )
    end
    else if t.used.(n) < t.capacity then take n
    else go ((n + 1) mod t.nnodes) (tries + 1)
  in
  go node 0

let place_new t ~page ~node =
  let actual, frame = alloc_frame t node ~page in
  store t page (pack ~node:actual ~frame)

let place t ~page ~node =
  if find t page < 0 then place_new t ~page ~node

(* fast path: packed (node, frame) word, placing per policy on first touch *)
let translate t ~page ~faulting_node =
  let p = find t page in
  if p >= 0 then p
  else begin
    let node =
      match t.policy with
      | First_touch -> faulting_node
      | Round_robin ->
          let n = t.rr_next in
          t.rr_next <- (t.rr_next + 1) mod t.nnodes;
          n
    in
    place_new t ~page ~node;
    t.table.(page)
  end

let home t ~page ~faulting_node = packed_node (translate t ~page ~faulting_node)

let home_opt t ~page =
  let p = find t page in
  if p < 0 then None else Some (packed_node p)

let migrate t ~page ~node =
  let actual, frame = alloc_frame t node ~page in
  store t page (pack ~node:actual ~frame)

let frame t ~page =
  let p = find t page in
  if p < 0 then invalid_arg "Pagetable.frame: page not placed"
  else packed_frame p

let pages_on_node t ~node =
  let c = ref 0 in
  for page = 0 to t.hi - 1 do
    let p = t.table.(page) in
    if p >= 0 && packed_node p = node then incr c
  done;
  !c

let iter t f =
  for page = 0 to t.hi - 1 do
    let p = t.table.(page) in
    if p >= 0 then f ~page ~node:(packed_node p) ~frame:(packed_frame p)
  done

(* physical frames are unique, and (outside the overflow region used when
   the whole machine is full) a frame decodes back to the node its page is
   placed on *)
let audit t =
  let module Audit = Ddsm_check.Audit in
  let vs = ref [] in
  let frames = Hashtbl.create (max 16 t.placed) in
  iter t (fun ~page ~node ~frame ->
      (match Hashtbl.find_opt frames frame with
      | Some other ->
          vs :=
            Audit.v "frame-uniqueness"
              "frame %d assigned to both page %d and page %d" frame other page
            :: !vs
      | None -> Hashtbl.add frames frame page);
      let overflow = frame >= t.nnodes * frame_stride t in
      if (not overflow) && node_of_frame t frame <> node then
        vs :=
          Audit.v "frame-node"
            "page %d: placed on node %d but frame %d decodes to node %d" page
            node frame (node_of_frame t frame)
          :: !vs);
  List.rev !vs

let placed_pages t = t.placed
