type policy = First_touch | Round_robin

type entry = { mutable node : int; mutable frame : int }

type t = {
  cfg : Config.t;
  policy : policy;
  table : (int, entry) Hashtbl.t;
  used : int array; (* frames allocated per node *)
  color_next : int array array; (* per-node, per-color allocation round *)
  colors : int;
  capacity : int; (* frames per node *)
  mutable rr_next : int;
  mutable overflow : int; (* machine-full allocations (separate frame region) *)
  nnodes : int;
}

let create cfg policy =
  let nnodes = Config.nnodes cfg in
  (* page colors: one per way-size/page-size class, as in the IRIX
     page-coloring algorithm the paper credits (§8.2) — physical frames are
     chosen so a page keeps its virtual color and contiguous virtual
     addresses do not conflict in the (physically indexed) cache *)
  let colors =
    max 1
      (cfg.Config.l2.Config.size_bytes / cfg.Config.l2.Config.assoc
      / cfg.Config.page_bytes)
  in
  {
    cfg;
    policy;
    table = Hashtbl.create 4096;
    used = Array.make nnodes 0;
    color_next = Array.init nnodes (fun _ -> Array.make colors 0);
    colors;
    capacity = max 1 (Config.pages_per_node cfg);
    rr_next = 0;
    overflow = 0;
    nnodes;
  }

let policy t = t.policy

(* global frame id = node * frame_stride + local frame; local frames are
   color + round*colors with round bounded by the node capacity (plus the
   overflow slack when the whole machine is full) *)
let frame_stride t = (t.capacity + 4) * t.colors

let node_of_frame t f = min (t.nnodes - 1) (f / frame_stride t)

(* Allocate a colored frame on [node] for virtual page [page], spilling to
   following nodes when full. If the whole machine is full, keep
   over-allocating on the preferred node (the simulator does not model
   swapping). The local frame is congruent to the page's color, so the
   physically indexed cache sees the virtual layout's conflict pattern. *)
let alloc_frame t node ~page =
  let color = page mod t.colors in
  let take n =
    let round = t.color_next.(n).(color) in
    t.color_next.(n).(color) <- round + 1;
    t.used.(n) <- t.used.(n) + 1;
    (n, (n * frame_stride t) + color + (round * t.colors))
  in
  let rec go n tries =
    if tries >= t.nnodes then begin
      (* whole machine full: frames come from a dedicated overflow region
         above every node's range (no swapping is modelled), colored like
         normal allocations *)
      let f = t.overflow in
      t.overflow <- f + 1;
      ( node,
        (t.nnodes * frame_stride t)
        + color
        + (f * t.colors) )
    end
    else if t.used.(n) < t.capacity then take n
    else go ((n + 1) mod t.nnodes) (tries + 1)
  in
  go node 0

let place_new t ~page ~node =
  let actual, frame = alloc_frame t node ~page in
  Hashtbl.replace t.table page { node = actual; frame }

let place t ~page ~node =
  if not (Hashtbl.mem t.table page) then place_new t ~page ~node

let home t ~page ~faulting_node =
  match Hashtbl.find_opt t.table page with
  | Some e -> e.node
  | None ->
      let node =
        match t.policy with
        | First_touch -> faulting_node
        | Round_robin ->
            let n = t.rr_next in
            t.rr_next <- (t.rr_next + 1) mod t.nnodes;
            n
      in
      place_new t ~page ~node;
      (Hashtbl.find t.table page).node

let home_opt t ~page =
  Option.map (fun e -> e.node) (Hashtbl.find_opt t.table page)

let migrate t ~page ~node =
  let actual, frame = alloc_frame t node ~page in
  match Hashtbl.find_opt t.table page with
  | Some e ->
      e.node <- actual;
      e.frame <- frame
  | None -> Hashtbl.replace t.table page { node = actual; frame }

let frame t ~page =
  match Hashtbl.find_opt t.table page with
  | Some e -> e.frame
  | None -> invalid_arg "Pagetable.frame: page not placed"

let pages_on_node t ~node =
  Hashtbl.fold (fun _ e acc -> if e.node = node then acc + 1 else acc) t.table 0

let iter t f = Hashtbl.iter (fun page e -> f ~page ~node:e.node ~frame:e.frame) t.table

(* physical frames are unique, and (outside the overflow region used when
   the whole machine is full) a frame decodes back to the node its page is
   placed on *)
let audit t =
  let module Audit = Ddsm_check.Audit in
  let vs = ref [] in
  let frames = Hashtbl.create (Hashtbl.length t.table) in
  iter t (fun ~page ~node ~frame ->
      (match Hashtbl.find_opt frames frame with
      | Some other ->
          vs :=
            Audit.v "frame-uniqueness"
              "frame %d assigned to both page %d and page %d" frame other page
            :: !vs
      | None -> Hashtbl.add frames frame page);
      let overflow = frame >= t.nnodes * frame_stride t in
      if (not overflow) && node_of_frame t frame <> node then
        vs :=
          Audit.v "frame-node"
            "page %d: placed on node %d but frame %d decodes to node %d" page
            node frame (node_of_frame t frame)
          :: !vs);
  List.rev !vs

let placed_pages t = Hashtbl.length t.table
