(** The complete simulated memory system of the CC-NUMA machine: per-processor
    TLBs and two-level caches, the page table, the coherence directory, and
    per-node memory modules with finite bandwidth.

    [access] is the single entry point the VM uses for every load and store.
    It returns the access latency in cycles, charging:
    - a TLB miss penalty when the page translation is absent;
    - L1/L2 hit latencies;
    - on an L2 miss, the uncontended local (~70 cycles) or remote (110–180,
      by hypercube hop count) memory latency of the page's home node, plus
      queueing delay when that node's memory module is saturated (per-node
      bandwidth is what makes a hot node a bottleneck, §8.2);
    - coherence costs: invalidations on writes to shared lines, and
      cache-to-cache transfers when another processor holds the line dirty.

    Addresses are byte addresses in the simulated shared virtual address
    space; the machine holds no data, only state and timing (the runtime's
    heap stores values). *)

type t

(** Cause-tagged breakdown of one access, delivered to the optional probe
    installed with {!set_probe}. The six cycle fields partition the latency
    returned by {!access}: [ev_tlb + ev_hit + ev_local + ev_remote +
    ev_contention + ev_coherence] equals the charged latency exactly, so a
    profiler summing events reconstructs [mem_stall_cycles] with no
    unaccounted remainder. *)
type access_event = {
  ev_proc : int;
  ev_addr : int;  (** byte address in the shared virtual space *)
  ev_write : bool;
  ev_now : int;  (** the accessing processor's local clock *)
  ev_tlb : int;  (** translation-miss refill cycles *)
  ev_hit : int;  (** L1/L2 hit (pipeline) cycles *)
  ev_local : int;  (** fill latency served by the local node's memory *)
  ev_remote : int;  (** fill latency served by a remote home node *)
  ev_contention : int;  (** queueing at a saturated memory module *)
  ev_coherence : int;
      (** invalidations, upgrades and dirty cache-to-cache transfers *)
  ev_tlb_flushed : bool;
      (** an injected TLB-shootdown fault fired on this access *)
}

val create : Config.t -> policy:Pagetable.policy -> ?fault:Ddsm_check.Fault.t -> unit -> t
(** [fault] (default {!Ddsm_check.Fault.none}) installs a deterministic
    fault plan: slow memory modules, hot directories, congested links and
    periodic TLB shootdowns perturb the latencies charged by {!access} —
    and only the latencies, never values. *)

val config : t -> Config.t
val fault : t -> Ddsm_check.Fault.t
val topology : t -> Topology.t

val access : t -> proc:int -> addr:int -> write:bool -> now:int -> int
(** Latency in cycles of a one-word access by [proc] at local time [now]. *)

val place_bytes : t -> lo:int -> hi:int -> node:int -> unit
(** Explicitly place every page overlapping byte range [lo, hi] on [node]
    (pages already placed are left alone — first placement wins, like
    consecutive placement system calls). *)

val place_page : t -> page:int -> node:int -> unit

val migrate_bytes : t -> lo:int -> hi:int -> node:int -> int
(** Re-home all pages overlapping the range; returns the number of pages
    moved (the runtime charges redistribution cost per page). *)

val migrate_page : t -> page:int -> node:int -> unit
(** Re-home one page. Migration allocates a fresh physical frame, so this
    also shoots the page down in every processor's TLB and invalidates the
    per-processor one-entry translation memos — bypassing it (calling
    [Pagetable.migrate] directly) leaves stale translations that the
    {!audit} translation-memo check flags. *)

val migrate_pages : t -> (int * int) list -> (int, int) result
(** Bulk scheduled migration: apply every [(page, node)] move in order —
    all or nothing. Each move consults the fault plan's [migrate-fail]
    counter; on an injected failure the moves already applied are migrated
    back to their previous homes and [Error i] names the failed move, so
    the caller observes either the complete new placement or the old one.
    [Ok n] is the number of moves applied. *)

val page_of_addr : t -> int -> int
val home_of_addr : t -> int -> int option

val set_probe : t -> (access_event -> unit) option -> unit
(** Install (or remove, with [None]) the per-access probe. Called once per
    {!access} after all counters are charged; [None] (the default) costs
    nothing on the access path. *)

val counters : t -> proc:int -> Counters.t
val total_counters : t -> Counters.t
val reset_counters : t -> unit

val pagetable : t -> Pagetable.t
val directory : t -> Directory.t

val audit : t -> Ddsm_check.Audit.violation list
(** On-demand invariant audit of the whole machine: single-writer
    coherence, directory/cache agreement (sharers hold the line, cached
    lines are tracked, dirty implies exclusive), L1⊆L2 inclusion,
    TLB/pagetable agreement, and physical-frame uniqueness. Returns the
    empty list when every invariant holds. Scans all machine state — call
    it between phases or after a run, not per access. *)
