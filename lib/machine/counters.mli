(** Per-processor event counters, the analogue of the MIPS R10000 hardware
    performance counters the paper uses to analyse its results (§8, [ZLT+96]):
    cache misses, TLB misses, local vs. remote memory references. *)

type t = {
  mutable loads : int;
  mutable stores : int;
  mutable l1_misses : int;
  mutable l2_misses : int;
  mutable tlb_misses : int;
  mutable local_fills : int;  (** L2 misses served by the local node *)
  mutable remote_fills : int;  (** L2 misses served by a remote node *)
  mutable dirty_fetches : int;  (** fills supplied by another cache *)
  mutable upgrades : int;  (** writes needing invalidation of sharers *)
  mutable invals_sent : int;
  mutable invals_received : int;
  mutable writebacks : int;
  mutable contention_cycles : int;  (** waiting on busy memory modules *)
  mutable mem_stall_cycles : int;  (** total memory-system latency *)
  mutable tlb_stall_cycles : int;
}

val create : unit -> t
val reset : t -> unit
val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc]. *)

val sum : t array -> t
val accesses : t -> int

val to_assoc : t -> (string * int) list
(** Snapshot as (name, value) pairs, for structured diagnostics. *)

val pp : Format.formatter -> t -> unit
