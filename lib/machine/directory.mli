(** Directory-based invalidation cache-coherence state (paper §2: "the hub
    maintains cache coherence across processors using a directory-based
    invalidation protocol").

    One entry per (physical) L2 cache line ever cached. A line is either
    uncached, shared by a set of processors, or exclusively owned by one
    processor (which may have dirtied it — the dirty bit itself lives in the
    owner's cache). The protocol transitions are driven by {!Memsys}.

    The table is flat (open addressing over packed int arrays): the hot
    path asks only {!exclusive_owner}/{!is_uncached}, which read one packed
    state word without allocating. {!Directory_ref} keeps the original
    map-based implementation as the differential-oracle reference. *)

type state =
  | Uncached
  | Shared of Bitset.t  (** non-empty sharer set, all copies clean *)
  | Exclusive of int  (** single owner, possibly dirty *)

type t

val create : nprocs:int -> t
val state : t -> line:int -> state
(** Materializes the sharer set on [Shared] lines — audit/test use; the
    access path uses the allocation-free queries below. *)

val exclusive_owner : t -> line:int -> int
(** Owner of the line if it is in [Exclusive] state, else -1. *)

val is_uncached : t -> line:int -> bool

val set_exclusive : t -> line:int -> owner:int -> unit
val add_sharer : t -> line:int -> proc:int -> unit
(** Moves Uncached -> Shared{proc}; Exclusive q -> Shared{q, proc};
    Shared s -> Shared (s + proc). *)

val drop : t -> line:int -> proc:int -> unit
(** Remove [proc] from the line's sharers/ownership (cache eviction). *)

val sharers_except : t -> line:int -> proc:int -> int list
(** Processors, other than [proc], currently holding the line. *)

val entries : t -> int

val iter : t -> (line:int -> state -> unit) -> unit
(** Visit every directory entry (including [Uncached] ones left behind by
    evictions); used by the invariant auditor. *)

val nprocs : t -> int
