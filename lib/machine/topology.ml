type t = {
  cfg : Config.t;
  nnodes : int;
  dims : int;
  (* memory latency by hop count, dense over [0 .. dims]: hop distances in
     a hypercube (Hamming distance of node ids) never exceed the dimension,
     so every lookup the simulator can make is precomputed once here *)
  hop_latency : int array;
}

let create cfg =
  let dims = Config.dims cfg in
  let hop_latency =
    Array.init (dims + 1) (fun h ->
        if h = 0 then cfg.Config.local_mem_cycles
        else
          cfg.Config.remote_base_cycles
          + ((h - 1) * cfg.Config.remote_per_hop_cycles))
  in
  { cfg; nnodes = Config.nnodes cfg; dims; hop_latency }

let nnodes t = t.nnodes
let dims t = t.dims
let node_of_proc t p = Config.node_of_proc t.cfg p

let hops t n1 n2 =
  if n1 < 0 || n1 >= t.nnodes || n2 < 0 || n2 >= t.nnodes then
    invalid_arg "Topology.hops: node out of range";
  if n1 = n2 then 0
  else
    let x = n1 lxor n2 in
    let rec pc x acc = if x = 0 then acc else pc (x land (x - 1)) (acc + 1) in
    max 1 (pc x 0)

let hop_latency t ~hops =
  if hops < 0 || hops > t.dims then
    invalid_arg "Topology.hop_latency: hop count out of range";
  t.hop_latency.(hops)

let min_cross_hop_cycles t =
  if t.dims = 0 then t.cfg.Config.local_mem_cycles else t.hop_latency.(1)

let route_cycles t ~from_node ~to_node =
  let h = hops t from_node to_node in
  if h = 0 then 0
  else t.hop_latency.(h) - t.cfg.Config.local_mem_cycles

let mem_latency t ~proc_node ~home_node =
  t.hop_latency.(hops t proc_node home_node)
