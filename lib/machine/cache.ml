type iarr = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Bigarray metadata keeps per-processor cache state (large at full
   Origin-2000 scale) out of the GC's marking work. *)
type t = {
  line_bytes : int;
  line_shift : int; (* log2 line_bytes: line_of_addr is one lsr *)
  nsets : int;
  set_mask : int; (* nsets - 1: set_of_line is one land *)
  assoc : int;
  tags : iarr; (* set*assoc + way -> line id, -1 = invalid *)
  dirty : Bytes.t;
  age : iarr; (* LRU stamps *)
  mutable clock : int;
  mutable resident : int;
}

let make_iarr n v =
  let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  Bigarray.Array1.fill a v;
  a

type evicted = { line : int; dirty : bool }

let is_pow2 x = x > 0 && x land (x - 1) = 0

let log2 x =
  let rec go x acc = if x <= 1 then acc else go (x lsr 1) (acc + 1) in
  go x 0

let create (cfg : Config.cache_cfg) =
  let nlines = cfg.size_bytes / cfg.line_bytes in
  let nsets = nlines / cfg.assoc in
  if nsets < 1 then invalid_arg "Cache.create: degenerate geometry";
  (* the shift/mask fast path requires power-of-two geometry; anything else
     would silently change the set mapping, so reject it loudly (and
     Config.validate rejects it with a friendlier message first) *)
  if not (is_pow2 cfg.line_bytes) then
    invalid_arg "Cache.create: line_bytes not a power of two";
  if not (is_pow2 nsets) then
    invalid_arg "Cache.create: set count not a power of two";
  {
    line_bytes = cfg.line_bytes;
    line_shift = log2 cfg.line_bytes;
    nsets;
    set_mask = nsets - 1;
    assoc = cfg.assoc;
    tags = make_iarr nlines (-1);
    dirty = Bytes.make nlines '\000';
    age = make_iarr nlines 0;
    clock = 0;
    resident = 0;
  }

let line_bytes t = t.line_bytes
let line_of_addr t addr = addr lsr t.line_shift
let set_of_line t line = line land t.set_mask

(* [s + w] stays inside [tags] by construction (set index is masked, way
   bounded by assoc), so the probe loop can elide bounds checks *)
let find_way t line =
  let s = (line land t.set_mask) * t.assoc in
  let rec go w =
    if w >= t.assoc then -1
    else if Bigarray.Array1.unsafe_get t.tags (s + w) = line then s + w
    else go (w + 1)
  in
  go 0

let probe t ~line = find_way t line >= 0

let touch t ~line =
  let idx = find_way t line in
  if idx >= 0 then begin
    t.clock <- t.clock + 1;
    Bigarray.Array1.unsafe_set t.age idx t.clock;
    true
  end
  else false

let insert t ~line ~dirty =
  let s = set_of_line t line * t.assoc in
  t.clock <- t.clock + 1;
  (* pick an invalid way, else LRU *)
  let victim = ref (s) in
  let found_invalid = ref false in
  for w = 0 to t.assoc - 1 do
    if (not !found_invalid) && Bigarray.Array1.unsafe_get t.tags (s + w) = -1
    then begin
      victim := s + w;
      found_invalid := true
    end
  done;
  if not !found_invalid then begin
    for w = 1 to t.assoc - 1 do
      if
        Bigarray.Array1.unsafe_get t.age (s + w)
        < Bigarray.Array1.unsafe_get t.age !victim
      then victim := s + w
    done
  end;
  let idx = !victim in
  let ev =
    if Bigarray.Array1.unsafe_get t.tags idx = -1 then None
    else
      Some
        {
          line = Bigarray.Array1.unsafe_get t.tags idx;
          dirty = Bytes.unsafe_get t.dirty idx <> '\000';
        }
  in
  if ev = None then t.resident <- t.resident + 1;
  Bigarray.Array1.unsafe_set t.tags idx line;
  Bytes.unsafe_set t.dirty idx (if dirty then '\001' else '\000');
  Bigarray.Array1.unsafe_set t.age idx t.clock;
  ev

let set_dirty t ~line =
  let idx = find_way t line in
  if idx >= 0 then Bytes.unsafe_set t.dirty idx '\001'

let is_dirty t ~line =
  let idx = find_way t line in
  idx >= 0 && Bytes.unsafe_get t.dirty idx <> '\000'

let clear_dirty t ~line =
  let idx = find_way t line in
  if idx >= 0 then Bytes.unsafe_set t.dirty idx '\000'

let invalidate t ~line =
  let idx = find_way t line in
  if idx < 0 then false
  else begin
    let was_dirty = Bytes.get t.dirty idx <> '\000' in
    Bigarray.Array1.set t.tags idx (-1);
    Bytes.set t.dirty idx '\000';
    t.resident <- t.resident - 1;
    was_dirty
  end

let invalidate_range t ~lo_addr ~hi_addr =
  let lo = lo_addr lsr t.line_shift and hi = hi_addr lsr t.line_shift in
  let dirty_dropped = ref 0 in
  for line = lo to hi do
    if invalidate t ~line then incr dirty_dropped
  done;
  !dirty_dropped

let clear_dirty_range t ~lo_addr ~hi_addr =
  let lo = lo_addr lsr t.line_shift and hi = hi_addr lsr t.line_shift in
  for line = lo to hi do
    clear_dirty t ~line
  done

let resident_lines t = t.resident

let iter_resident t f =
  let n = Bigarray.Array1.dim t.tags in
  for idx = 0 to n - 1 do
    let line = Bigarray.Array1.get t.tags idx in
    if line >= 0 then f ~line ~dirty:(Bytes.get t.dirty idx <> '\000')
  done

let clear t =
  Bigarray.Array1.fill t.tags (-1);
  Bytes.fill t.dirty 0 (Bytes.length t.dirty) '\000';
  t.resident <- 0
