(** Operating-system page placement (paper §2): data is allocated at the
    granularity of a physical page. Supports the Origin-2000's default
    first-touch policy, the optional round-robin policy, and the explicit
    placement system call generated for [c$distribute] arrays ("the only OS
    support required", §4.2), which overrides first-touch.

    Each placed page receives a physical frame from a per-node sequential
    allocator. Pages placed consecutively on one node get consecutive frames
    — the simulator's analogue of the IRIX page-coloring algorithm the paper
    credits for reduced cache interference on reshaped arrays (§8.2). When a
    node's memory fills up, frames spill to subsequent nodes (this is what
    makes the paper's class-C LU incur remote references even on one
    processor, §8.1).

    The map itself is a growable flat int array indexed by virtual page
    (pages are dense: heap addresses start at 0), each entry a packed
    node|frame word — the access fast path pays one load, no hashing, no
    allocation. {!Pagetable_ref} keeps the original map-based
    implementation as the differential-oracle reference. *)

type policy = First_touch | Round_robin

type t

val create : Config.t -> policy -> t
val policy : t -> policy

val translate : t -> page:int -> faulting_node:int -> int
(** Packed translation word of [page], assigning a home per policy on first
    touch (like {!home}, which is [packed_node] of this). Decode with
    {!packed_node}/{!packed_frame}; the word is non-negative, so callers
    can cache it in flat arrays with -1 as the empty mark. *)

val packed_node : int -> int
val packed_frame : int -> int

val place : t -> page:int -> node:int -> unit
(** Explicitly place an *unplaced* page on [node] (spilling if full). If the
    page is already placed this is a no-op: placement directives run before
    any touch, and re-placement must go through {!migrate}. *)

val home : t -> page:int -> faulting_node:int -> int
(** Home node of [page], assigning it per policy on first touch. *)

val home_opt : t -> page:int -> int option

val migrate : t -> page:int -> node:int -> unit
(** Re-home a page (dynamic redistribution, §3.3). The page gets a fresh
    frame on the target node. *)

val frame : t -> page:int -> int
(** Globally unique physical frame id of a placed page. Frames are assigned
    page-colored: the local frame is congruent to the virtual page number
    modulo the cache-way color count, modelling the IRIX page-coloring
    algorithm the paper credits for the reshaped version's reduced cache
    interference (§8.2). Raises if unplaced. *)

val node_of_frame : t -> int -> int
(** Recover the home node from a frame id (used to route writebacks). *)

val pages_on_node : t -> node:int -> int
val placed_pages : t -> int

val iter : t -> (page:int -> node:int -> frame:int -> unit) -> unit
(** Visit every placed page; used by the invariant auditor (e.g. to check
    physical-frame uniqueness). *)

val audit : t -> Ddsm_check.Audit.violation list
(** Check frame uniqueness and frame/node agreement for every placed
    page. *)
