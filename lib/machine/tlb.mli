(** Per-processor translation lookaside buffer, fully associative with LRU
    replacement (the R10000 has 64 entries).

    Reshaping "uses all the data in a page, [so] it uses much fewer pages"
    (paper §8.2) — this module is what turns that into a measurable effect. *)

type t

val create : entries:int -> t

val access : t -> page:int -> bool
(** [access t ~page] returns [true] on a hit; on a miss the page is brought
    in, evicting the least-recently-used entry if full. *)

val flush : t -> unit

val invalidate : t -> page:int -> unit
(** Drop [page]'s translation if resident (a targeted shootdown, as a page
    migration requires); a no-op otherwise. Other entries stay resident. *)

val entries : t -> int
val resident : t -> int
(** Number of currently valid entries. *)

val iter_resident : t -> (page:int -> unit) -> unit
(** Visit every resident translation; used by the invariant auditor. *)
