type t = {
  mutable loads : int;
  mutable stores : int;
  mutable l1_misses : int;
  mutable l2_misses : int;
  mutable tlb_misses : int;
  mutable local_fills : int;
  mutable remote_fills : int;
  mutable dirty_fetches : int;
  mutable upgrades : int;
  mutable invals_sent : int;
  mutable invals_received : int;
  mutable writebacks : int;
  mutable contention_cycles : int;
  mutable mem_stall_cycles : int;
  mutable tlb_stall_cycles : int;
}

let create () =
  {
    loads = 0;
    stores = 0;
    l1_misses = 0;
    l2_misses = 0;
    tlb_misses = 0;
    local_fills = 0;
    remote_fills = 0;
    dirty_fetches = 0;
    upgrades = 0;
    invals_sent = 0;
    invals_received = 0;
    writebacks = 0;
    contention_cycles = 0;
    mem_stall_cycles = 0;
    tlb_stall_cycles = 0;
  }

let reset t =
  t.loads <- 0;
  t.stores <- 0;
  t.l1_misses <- 0;
  t.l2_misses <- 0;
  t.tlb_misses <- 0;
  t.local_fills <- 0;
  t.remote_fills <- 0;
  t.dirty_fetches <- 0;
  t.upgrades <- 0;
  t.invals_sent <- 0;
  t.invals_received <- 0;
  t.writebacks <- 0;
  t.contention_cycles <- 0;
  t.mem_stall_cycles <- 0;
  t.tlb_stall_cycles <- 0

let add acc x =
  acc.loads <- acc.loads + x.loads;
  acc.stores <- acc.stores + x.stores;
  acc.l1_misses <- acc.l1_misses + x.l1_misses;
  acc.l2_misses <- acc.l2_misses + x.l2_misses;
  acc.tlb_misses <- acc.tlb_misses + x.tlb_misses;
  acc.local_fills <- acc.local_fills + x.local_fills;
  acc.remote_fills <- acc.remote_fills + x.remote_fills;
  acc.dirty_fetches <- acc.dirty_fetches + x.dirty_fetches;
  acc.upgrades <- acc.upgrades + x.upgrades;
  acc.invals_sent <- acc.invals_sent + x.invals_sent;
  acc.invals_received <- acc.invals_received + x.invals_received;
  acc.writebacks <- acc.writebacks + x.writebacks;
  acc.contention_cycles <- acc.contention_cycles + x.contention_cycles;
  acc.mem_stall_cycles <- acc.mem_stall_cycles + x.mem_stall_cycles;
  acc.tlb_stall_cycles <- acc.tlb_stall_cycles + x.tlb_stall_cycles

let sum arr =
  let acc = create () in
  Array.iter (add acc) arr;
  acc

let accesses t = t.loads + t.stores

let to_assoc t =
  [
    ("loads", t.loads);
    ("stores", t.stores);
    ("l1_misses", t.l1_misses);
    ("l2_misses", t.l2_misses);
    ("tlb_misses", t.tlb_misses);
    ("local_fills", t.local_fills);
    ("remote_fills", t.remote_fills);
    ("dirty_fetches", t.dirty_fetches);
    ("upgrades", t.upgrades);
    ("invals_sent", t.invals_sent);
    ("invals_received", t.invals_received);
    ("writebacks", t.writebacks);
    ("contention_cycles", t.contention_cycles);
    ("mem_stall_cycles", t.mem_stall_cycles);
    ("tlb_stall_cycles", t.tlb_stall_cycles);
  ]

let pp ppf t =
  Format.fprintf ppf
    "@[<v>accesses %d (%d ld, %d st)@ L1 miss %d, L2 miss %d (%d local, %d \
     remote, %d dirty), TLB miss %d@ upgrades %d, invals %d sent / %d recv, \
     writebacks %d@ stall: mem %d, contention %d, tlb %d@]"
    (accesses t) t.loads t.stores t.l1_misses t.l2_misses t.local_fills
    t.remote_fills t.dirty_fetches t.tlb_misses t.upgrades t.invals_sent
    t.invals_received t.writebacks t.mem_stall_cycles t.contention_cycles
    t.tlb_stall_cycles
