module Fault = Ddsm_check.Fault
module Audit = Ddsm_check.Audit

(* Cause-tagged breakdown of one access, emitted to the optional probe.
   The six cycle fields partition the latency charged by [access]:
   ev_tlb + ev_hit + ev_local + ev_remote + ev_contention + ev_coherence
   is exactly the returned latency (and the mem_stall_cycles increment). *)
type access_event = {
  ev_proc : int;
  ev_addr : int;
  ev_write : bool;
  ev_now : int;
  ev_tlb : int;
  ev_hit : int;
  ev_local : int;
  ev_remote : int;
  ev_contention : int;
  ev_coherence : int;
  ev_tlb_flushed : bool;
}

type t = {
  cfg : Config.t;
  topo : Topology.t;
  pt : Pagetable.t;
  tlbs : Tlb.t array;
  l1s : Cache.t array;
  l2s : Cache.t array;
  dir : Directory.t;
  busy_until : int array; (* per-node memory module *)
  ctrs : Counters.t array;
  page_shift : int;
  page_mask : int;
  fault : Fault.t;
  accesses : int array; (* per-proc translation count, for TLB-flush faults *)
  mutable probe : (access_event -> unit) option;
}

let log2 x =
  let rec go x acc = if x <= 1 then acc else go (x lsr 1) (acc + 1) in
  go x 0

let create cfg ~policy ?(fault = Fault.none) () =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error e -> invalid_arg ("Memsys.create: " ^ e));
  let n = cfg.Config.nprocs in
  {
    cfg;
    topo = Topology.create cfg;
    pt = Pagetable.create cfg policy;
    tlbs = Array.init n (fun _ -> Tlb.create ~entries:cfg.Config.tlb_entries);
    l1s = Array.init n (fun _ -> Cache.create cfg.Config.l1);
    l2s = Array.init n (fun _ -> Cache.create cfg.Config.l2);
    dir = Directory.create ~nprocs:n;
    busy_until = Array.make (Config.nnodes cfg) 0;
    ctrs = Array.init n (fun _ -> Counters.create ());
    page_shift = log2 cfg.Config.page_bytes;
    page_mask = cfg.Config.page_bytes - 1;
    fault;
    accesses = Array.make n 0;
    probe = None;
  }

let config t = t.cfg
let fault t = t.fault
let topology t = t.topo
let pagetable t = t.pt
let directory t = t.dir
let page_of_addr t addr = addr lsr t.page_shift
let home_of_addr t addr = Pagetable.home_opt t.pt ~page:(page_of_addr t addr)
let set_probe t p = t.probe <- p
let counters t ~proc = t.ctrs.(proc)
let total_counters t = Counters.sum t.ctrs
let reset_counters t = Array.iter Counters.reset t.ctrs

let place_page t ~page ~node = Pagetable.place t.pt ~page ~node

let place_bytes t ~lo ~hi ~node =
  for page = lo lsr t.page_shift to hi lsr t.page_shift do
    Pagetable.place t.pt ~page ~node
  done

let migrate_bytes t ~lo ~hi ~node =
  let moved = ref 0 in
  for page = lo lsr t.page_shift to hi lsr t.page_shift do
    Pagetable.migrate t.pt ~page ~node;
    incr moved
  done;
  !moved

(* Invalidate a physical L2 line (and the L1 lines under it) in processor
   [victim]'s caches. Returns true if the dropped L2 copy was dirty. *)
let smash_line t ~victim ~phys_line =
  let l2 = t.l2s.(victim) in
  let lo = phys_line * t.cfg.Config.l2.Config.line_bytes in
  let hi = lo + t.cfg.Config.l2.Config.line_bytes - 1 in
  ignore (Cache.invalidate_range t.l1s.(victim) ~lo_addr:lo ~hi_addr:hi);
  Cache.invalidate l2 ~line:phys_line

(* Reserve the memory module of [node] for one line transfer arriving at
   [arrival]; returns the queueing delay. An injected slow-node fault
   stretches the module's service occupancy. *)
let module_service t ~node ~arrival =
  let start = max arrival t.busy_until.(node) in
  let occupancy =
    t.cfg.Config.mem_occupancy_cycles + Fault.mem_extra t.fault ~node
  in
  t.busy_until.(node) <- start + occupancy;
  start - arrival

(* Enqueue a writeback at the line's home module; not on the writer's
   critical path, but it consumes bandwidth. *)
let enqueue_writeback t ~phys_line ~now =
  let addr = phys_line * t.cfg.Config.l2.Config.line_bytes in
  let node = Pagetable.node_of_frame t.pt (addr lsr t.page_shift) in
  ignore (module_service t ~node ~arrival:now)

let handle_l2_eviction t ~proc ~now (ev : Cache.evicted option) =
  match ev with
  | None -> ()
  | Some { line; dirty } ->
      (* inclusion: drop the L1 lines under the evicted L2 line *)
      let lo = line * t.cfg.Config.l2.Config.line_bytes in
      let hi = lo + t.cfg.Config.l2.Config.line_bytes - 1 in
      ignore (Cache.invalidate_range t.l1s.(proc) ~lo_addr:lo ~hi_addr:hi);
      Directory.drop t.dir ~line ~proc;
      if dirty then begin
        t.ctrs.(proc).Counters.writebacks <- t.ctrs.(proc).Counters.writebacks + 1;
        enqueue_writeback t ~phys_line:line ~now
      end

let access t ~proc ~addr ~write ~now =
  let c = t.ctrs.(proc) in
  if write then c.Counters.stores <- c.Counters.stores + 1
  else c.Counters.loads <- c.Counters.loads + 1;
  let lat = ref 0 in
  (* cause-tagged slices of [lat], reported to the probe (profiler). Every
     cycle added to [lat] below is also added to exactly one slice. *)
  let tlb_c = ref 0
  and hit_c = ref 0
  and fill_c = ref 0
  and cont_c = ref 0
  and coh_c = ref 0 in
  let page = addr lsr t.page_shift in
  (* injected TLB-shootdown fault: periodically drop this processor's
     translations (costs only the refill misses) *)
  t.accesses.(proc) <- t.accesses.(proc) + 1;
  let tlb_flushed = Fault.tlb_flush_due t.fault ~accesses:t.accesses.(proc) in
  if tlb_flushed then Tlb.flush t.tlbs.(proc);
  (* 1. address translation *)
  if not (Tlb.access t.tlbs.(proc) ~page) then begin
    c.Counters.tlb_misses <- c.Counters.tlb_misses + 1;
    c.Counters.tlb_stall_cycles <-
      c.Counters.tlb_stall_cycles + t.cfg.Config.tlb_miss_cycles;
    tlb_c := !tlb_c + t.cfg.Config.tlb_miss_cycles;
    lat := !lat + t.cfg.Config.tlb_miss_cycles
  end;
  let my_node = Config.node_of_proc t.cfg proc in
  let home = Pagetable.home t.pt ~page ~faulting_node:my_node in
  let phys_addr =
    (Pagetable.frame t.pt ~page lsl t.page_shift) lor (addr land t.page_mask)
  in
  let l1 = t.l1s.(proc) and l2 = t.l2s.(proc) in
  let l1_line = phys_addr / t.cfg.Config.l1.Config.line_bytes in
  let l2_line = phys_addr / t.cfg.Config.l2.Config.line_bytes in
  let exclusive_mine () =
    match Directory.state t.dir ~line:l2_line with
    | Directory.Exclusive q -> q = proc
    | _ -> false
  in
  let l1_hit = Cache.touch l1 ~line:l1_line in
  if l1_hit && ((not write) || exclusive_mine ()) then begin
    if write then begin
      Cache.set_dirty l1 ~line:l1_line;
      Cache.set_dirty l2 ~line:l2_line
    end;
    hit_c := !hit_c + t.cfg.Config.l1.Config.hit_cycles;
    lat := !lat + t.cfg.Config.l1.Config.hit_cycles
  end
  else begin
    if not l1_hit then c.Counters.l1_misses <- c.Counters.l1_misses + 1;
    let l2_hit = Cache.touch l2 ~line:l2_line in
    if l2_hit && ((not write) || exclusive_mine ()) then begin
      (* L2 hit (or write to an exclusively-held line) *)
      hit_c := !hit_c + t.cfg.Config.l2.Config.hit_cycles;
      lat := !lat + t.cfg.Config.l2.Config.hit_cycles;
      if write then Cache.set_dirty l2 ~line:l2_line
    end
    else if l2_hit (* && write && not exclusive: upgrade *) then begin
      c.Counters.upgrades <- c.Counters.upgrades + 1;
      let others = Directory.sharers_except t.dir ~line:l2_line ~proc in
      List.iter
        (fun q ->
          ignore (smash_line t ~victim:q ~phys_line:l2_line);
          t.ctrs.(q).Counters.invals_received <-
            t.ctrs.(q).Counters.invals_received + 1)
        others;
      c.Counters.invals_sent <- c.Counters.invals_sent + List.length others;
      let route =
        Topology.route_cycles t.topo ~from_node:my_node ~to_node:home
        + Fault.link_extra t.fault ~a:my_node ~b:home
      in
      let upgrade_coh =
        route
        + Fault.dir_extra t.fault ~home
        + (t.cfg.Config.inval_cycles_per_sharer * List.length others)
      in
      hit_c := !hit_c + t.cfg.Config.l2.Config.hit_cycles;
      coh_c := !coh_c + upgrade_coh;
      lat := !lat + t.cfg.Config.l2.Config.hit_cycles + upgrade_coh;
      Directory.set_exclusive t.dir ~line:l2_line ~owner:proc;
      Cache.set_dirty l2 ~line:l2_line
    end
    else begin
      (* L2 miss: directory transaction at the page's home node *)
      c.Counters.l2_misses <- c.Counters.l2_misses + 1;
      let arrival = now + !lat in
      let base_lat =
        Topology.mem_latency t.topo ~proc_node:my_node ~home_node:home
        + Fault.link_extra t.fault ~a:my_node ~b:home
        + Fault.dir_extra t.fault ~home
      in
      (* who supplies the data? *)
      let dirty_owner =
        match Directory.state t.dir ~line:l2_line with
        | Directory.Exclusive q when q <> proc && Cache.is_dirty t.l2s.(q) ~line:l2_line ->
            Some q
        | _ -> None
      in
      (match dirty_owner with
      | Some q ->
          (* cache-to-cache: owner forwards; its copy is written back (read)
             or invalidated (write) *)
          c.Counters.dirty_fetches <- c.Counters.dirty_fetches + 1;
          let q_node = Config.node_of_proc t.cfg q in
          let c2c =
            t.cfg.Config.dirty_transfer_extra_cycles
            + Topology.route_cycles t.topo ~from_node:q_node ~to_node:my_node
            + Fault.link_extra t.fault ~a:q_node ~b:my_node
          in
          fill_c := !fill_c + base_lat;
          coh_c := !coh_c + c2c;
          lat := !lat + base_lat + c2c;
          enqueue_writeback t ~phys_line:l2_line ~now:arrival;
          if write then begin
            ignore (smash_line t ~victim:q ~phys_line:l2_line);
            t.ctrs.(q).Counters.invals_received <-
              t.ctrs.(q).Counters.invals_received + 1;
            c.Counters.invals_sent <- c.Counters.invals_sent + 1;
            Directory.set_exclusive t.dir ~line:l2_line ~owner:proc
          end
          else begin
            (* owner's copy becomes clean-shared *)
            Cache.clear_dirty t.l2s.(q) ~line:l2_line;
            Directory.add_sharer t.dir ~line:l2_line ~proc
          end
      | None ->
          (* memory supplies the line *)
          let wait = module_service t ~node:home ~arrival in
          c.Counters.contention_cycles <- c.Counters.contention_cycles + wait;
          fill_c := !fill_c + base_lat;
          cont_c := !cont_c + wait;
          lat := !lat + base_lat + wait;
          if write then begin
            let others = Directory.sharers_except t.dir ~line:l2_line ~proc in
            List.iter
              (fun q ->
                ignore (smash_line t ~victim:q ~phys_line:l2_line);
                t.ctrs.(q).Counters.invals_received <-
                  t.ctrs.(q).Counters.invals_received + 1)
              others;
            c.Counters.invals_sent <- c.Counters.invals_sent + List.length others;
            let inval = t.cfg.Config.inval_cycles_per_sharer * List.length others in
            coh_c := !coh_c + inval;
            lat := !lat + inval;
            Directory.set_exclusive t.dir ~line:l2_line ~owner:proc
          end
          else begin
            match Directory.state t.dir ~line:l2_line with
            | Directory.Uncached ->
                (* MESI E state: sole reader gets a clean-exclusive copy *)
                Directory.set_exclusive t.dir ~line:l2_line ~owner:proc
            | _ -> Directory.add_sharer t.dir ~line:l2_line ~proc
          end);
      if home = my_node then c.Counters.local_fills <- c.Counters.local_fills + 1
      else c.Counters.remote_fills <- c.Counters.remote_fills + 1;
      handle_l2_eviction t ~proc ~now (Cache.insert l2 ~line:l2_line ~dirty:write)
    end;
    (* refill L1 (unless it was an L1 hit that merely needed an upgrade) *)
    if not l1_hit then begin
      match Cache.insert l1 ~line:l1_line ~dirty:write with
      | Some { line = evl; dirty = true } ->
          (* L1 victim writeback folds into L2 (on-chip, free); convert the
             L1 line id to the covering L2 line id *)
          Cache.set_dirty l2
            ~line:(evl * t.cfg.Config.l1.Config.line_bytes
                   / t.cfg.Config.l2.Config.line_bytes)
      | _ -> ()
    end
    else if write then Cache.set_dirty l1 ~line:l1_line
  end;
  c.Counters.mem_stall_cycles <- c.Counters.mem_stall_cycles + !lat;
  (match t.probe with
  | None -> ()
  | Some probe ->
      let local = home = my_node in
      probe
        {
          ev_proc = proc;
          ev_addr = addr;
          ev_write = write;
          ev_now = now;
          ev_tlb = !tlb_c;
          ev_hit = !hit_c;
          ev_local = (if local then !fill_c else 0);
          ev_remote = (if local then 0 else !fill_c);
          ev_contention = !cont_c;
          ev_coherence = !coh_c;
          ev_tlb_flushed = tlb_flushed;
        });
  !lat

(* ------------------------------------------------------------------ *)
(* Invariant auditor (on demand; scans are O(cache lines + directory +
   pagetable), never on the access fast path) *)

let audit t =
  let vs = ref [] in
  let add x = vs := x :: !vs in
  let n = t.cfg.Config.nprocs in
  (* coherence: directory vs. the caches it claims to track *)
  Directory.iter t.dir (fun ~line st ->
      match st with
      | Directory.Uncached -> ()
      | Directory.Exclusive q ->
          if not (Cache.probe t.l2s.(q) ~line) then
            add
              (Audit.v "single-writer"
                 "line %d: exclusive owner p%d does not hold the line" line q);
          for p = 0 to n - 1 do
            if p <> q && Cache.probe t.l2s.(p) ~line then
              add
                (Audit.v "single-writer"
                   "line %d: exclusive to p%d but also cached by p%d" line q p)
          done
      | Directory.Shared s ->
          Bitset.iter
            (fun p ->
              if not (Cache.probe t.l2s.(p) ~line) then
                add
                  (Audit.v "sharers-present"
                     "line %d: directory lists sharer p%d but p%d's L2 lost it"
                     line p p))
            s);
  for p = 0 to n - 1 do
    (* every cached L2 line must be tracked by the directory, and a dirty
       copy implies exclusive ownership *)
    Cache.iter_resident t.l2s.(p) (fun ~line ~dirty ->
        (match Directory.state t.dir ~line with
        | Directory.Exclusive q when q = p -> ()
        | Directory.Shared s when Bitset.mem s p ->
            if dirty then
              add
                (Audit.v "dirty-exclusive"
                   "line %d: dirty in p%d's L2 but only shared" line p)
        | st ->
            add
              (Audit.v "directory-tracking"
                 "line %d: cached by p%d but directory says %s" line p
                 (match st with
                 | Directory.Uncached -> "uncached"
                 | Directory.Shared _ -> "shared elsewhere"
                 | Directory.Exclusive q -> Printf.sprintf "exclusive to p%d" q))));
    (* L1 inclusion: every L1 line must lie under a resident L2 line *)
    let l1b = t.cfg.Config.l1.Config.line_bytes
    and l2b = t.cfg.Config.l2.Config.line_bytes in
    Cache.iter_resident t.l1s.(p) (fun ~line ~dirty:_ ->
        let l2_line = line * l1b / l2b in
        if not (Cache.probe t.l2s.(p) ~line:l2_line) then
          add
            (Audit.v "l1-inclusion"
               "p%d: L1 line %d resident without covering L2 line %d" p line
               l2_line));
    (* TLB/pagetable agreement: a cached translation must be placed *)
    Tlb.iter_resident t.tlbs.(p) (fun ~page ->
        match Pagetable.home_opt t.pt ~page with
        | Some _ -> ()
        | None ->
            add
              (Audit.v "tlb-pagetable"
                 "p%d: TLB caches page %d which the pagetable never placed" p
                 page))
  done;
  List.rev_append !vs (Pagetable.audit t.pt)
