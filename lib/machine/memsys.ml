module Fault = Ddsm_check.Fault
module Audit = Ddsm_check.Audit

(* Cause-tagged breakdown of one access, emitted to the optional probe.
   The six cycle fields partition the latency charged by [access]:
   ev_tlb + ev_hit + ev_local + ev_remote + ev_contention + ev_coherence
   is exactly the returned latency (and the mem_stall_cycles increment). *)
type access_event = {
  ev_proc : int;
  ev_addr : int;
  ev_write : bool;
  ev_now : int;
  ev_tlb : int;
  ev_hit : int;
  ev_local : int;
  ev_remote : int;
  ev_contention : int;
  ev_coherence : int;
  ev_tlb_flushed : bool;
}

type t = {
  cfg : Config.t;
  topo : Topology.t;
  pt : Pagetable.t;
  tlbs : Tlb.t array;
  l1s : Cache.t array;
  l2s : Cache.t array;
  dir : Directory.t;
  busy_until : int array; (* per-node memory module *)
  ctrs : Counters.t array;
  page_shift : int;
  page_mask : int;
  l1_shift : int; (* log2 L1 line bytes *)
  l2_shift : int; (* log2 L2 line bytes *)
  l1_hit_cycles : int;
  l2_hit_cycles : int;
  tlb_miss_cycles : int;
  (* per-processor one-entry translation memo: the last translated page and
     its packed (node, frame) word. Purely a host-side cache of pagetable
     state — it never changes a charged cycle (translation itself is free in
     simulated time; only TLB misses cost cycles). Invalidated on migrate/
     place/TLB-flush faults; [audit] cross-checks it against the table. *)
  memo_page : int array; (* -1 = empty *)
  memo_packed : int array;
  fault : Fault.t;
  faults_off : bool; (* Fault.none: skip the per-access fault probes *)
  accesses : int array; (* per-proc translation count, for TLB-flush faults *)
  mutable migrations : int; (* machine-wide count, for migrate-fail faults *)
  mutable probe : (access_event -> unit) option;
}

let log2 x =
  let rec go x acc = if x <= 1 then acc else go (x lsr 1) (acc + 1) in
  go x 0

let create cfg ~policy ?(fault = Fault.none) () =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error e -> invalid_arg ("Memsys.create: " ^ e));
  let n = cfg.Config.nprocs in
  {
    cfg;
    topo = Topology.create cfg;
    pt = Pagetable.create cfg policy;
    tlbs = Array.init n (fun _ -> Tlb.create ~entries:cfg.Config.tlb_entries);
    l1s = Array.init n (fun _ -> Cache.create cfg.Config.l1);
    l2s = Array.init n (fun _ -> Cache.create cfg.Config.l2);
    dir = Directory.create ~nprocs:n;
    busy_until = Array.make (Config.nnodes cfg) 0;
    ctrs = Array.init n (fun _ -> Counters.create ());
    page_shift = log2 cfg.Config.page_bytes;
    page_mask = cfg.Config.page_bytes - 1;
    l1_shift = log2 cfg.Config.l1.Config.line_bytes;
    l2_shift = log2 cfg.Config.l2.Config.line_bytes;
    l1_hit_cycles = cfg.Config.l1.Config.hit_cycles;
    l2_hit_cycles = cfg.Config.l2.Config.hit_cycles;
    tlb_miss_cycles = cfg.Config.tlb_miss_cycles;
    memo_page = Array.make n (-1);
    memo_packed = Array.make n (-1);
    fault;
    faults_off = Fault.is_none fault;
    accesses = Array.make n 0;
    migrations = 0;
    probe = None;
  }

let invalidate_memos t = Array.fill t.memo_page 0 (Array.length t.memo_page) (-1)

let config t = t.cfg
let fault t = t.fault
let topology t = t.topo
let pagetable t = t.pt
let directory t = t.dir
let page_of_addr t addr = addr lsr t.page_shift
let home_of_addr t addr = Pagetable.home_opt t.pt ~page:(page_of_addr t addr)
let set_probe t p = t.probe <- p
let counters t ~proc = t.ctrs.(proc)
let total_counters t = Counters.sum t.ctrs
let reset_counters t = Array.iter Counters.reset t.ctrs

let place_page t ~page ~node =
  Pagetable.place t.pt ~page ~node;
  invalidate_memos t

let place_bytes t ~lo ~hi ~node =
  for page = lo lsr t.page_shift to hi lsr t.page_shift do
    Pagetable.place t.pt ~page ~node
  done;
  invalidate_memos t

let migrate_bytes t ~lo ~hi ~node =
  let moved = ref 0 in
  for page = lo lsr t.page_shift to hi lsr t.page_shift do
    Pagetable.migrate t.pt ~page ~node;
    incr moved
  done;
  invalidate_memos t;
  !moved

let migrate_page t ~page ~node =
  Pagetable.migrate t.pt ~page ~node;
  (* migration allocates a fresh frame: stale translations anywhere would
     hand out the old frame's cache lines, so shoot the page down in every
     processor's TLB and drop the one-entry translation memos *)
  Array.iter (fun tlb -> Tlb.invalidate tlb ~page) t.tlbs;
  invalidate_memos t

(* Bulk scheduled migration: apply every (page, node) move or none. Each
   move consults the fault plan's migrate-fail counter; on an injected
   failure the already-applied moves are migrated BACK to their recorded
   homes (rollback never consults the counter — a rollback that could
   itself fail would leave the very half-moved state the bulk entry
   exists to rule out) and the index of the failed move is returned. *)
let migrate_pages t moves =
  let applied = ref [] in
  let rollback () =
    List.iter (fun (page, home) -> migrate_page t ~page ~node:home) !applied
  in
  let rec go i = function
    | [] -> Ok i
    | (page, node) :: rest ->
        let migration = t.migrations in
        t.migrations <- migration + 1;
        if Fault.migration_fails t.fault ~migration then begin
          rollback ();
          Error i
        end
        else begin
          (match Pagetable.home_opt t.pt ~page with
          | Some home -> applied := (page, home) :: !applied
          | None -> ());
          migrate_page t ~page ~node;
          go (i + 1) rest
        end
  in
  go 0 moves

(* Invalidate a physical L2 line (and the L1 lines under it) in processor
   [victim]'s caches. Returns true if the dropped L2 copy was dirty. *)
let smash_line t ~victim ~phys_line =
  let l2 = t.l2s.(victim) in
  let lo = phys_line * t.cfg.Config.l2.Config.line_bytes in
  let hi = lo + t.cfg.Config.l2.Config.line_bytes - 1 in
  ignore (Cache.invalidate_range t.l1s.(victim) ~lo_addr:lo ~hi_addr:hi);
  Cache.invalidate l2 ~line:phys_line

(* Reserve the memory module of [node] for one line transfer arriving at
   [arrival]; returns the queueing delay. An injected slow-node fault
   stretches the module's service occupancy. *)
let module_service t ~node ~arrival =
  let start = max arrival t.busy_until.(node) in
  let occupancy =
    t.cfg.Config.mem_occupancy_cycles + Fault.mem_extra t.fault ~node
  in
  t.busy_until.(node) <- start + occupancy;
  start - arrival

(* Enqueue a writeback at the line's home module [node]; not on the
   writer's critical path, but it consumes bandwidth. Callers that already
   resolved the line's home thread it through instead of re-deriving it. *)
let enqueue_writeback t ~node ~now = ignore (module_service t ~node ~arrival:now)

(* home node of a physical L2 line, decoded arithmetically from its frame *)
let node_of_phys_line t ~phys_line =
  Pagetable.node_of_frame t.pt ((phys_line lsl t.l2_shift) lsr t.page_shift)

let handle_l2_eviction t ~proc ~now (ev : Cache.evicted option) =
  match ev with
  | None -> ()
  | Some { line; dirty } ->
      (* inclusion: drop the L1 lines under the evicted L2 line *)
      let lo = line lsl t.l2_shift in
      let hi = lo + t.cfg.Config.l2.Config.line_bytes - 1 in
      ignore (Cache.invalidate_range t.l1s.(proc) ~lo_addr:lo ~hi_addr:hi);
      Directory.drop t.dir ~line ~proc;
      if dirty then begin
        t.ctrs.(proc).Counters.writebacks <- t.ctrs.(proc).Counters.writebacks + 1;
        (* the victim line's home is not the current access's home: decode
           it from the frame id (pure arithmetic, no table lookup) *)
        enqueue_writeback t ~node:(node_of_phys_line t ~phys_line:line) ~now
      end

(* one L1-hit access event; the fast-path exits share it *)
let emit_hit_event probe ~proc ~addr ~write ~now ~tlb ~hit ~tlb_flushed =
  probe
    {
      ev_proc = proc;
      ev_addr = addr;
      ev_write = write;
      ev_now = now;
      ev_tlb = tlb;
      ev_hit = hit;
      ev_local = 0;
      ev_remote = 0;
      ev_contention = 0;
      ev_coherence = 0;
      ev_tlb_flushed = tlb_flushed;
    }

let rec access t ~proc ~addr ~write ~now =
  (* [proc] indexes every per-processor array and is engine-supplied and
     in range; the hot path elides the redundant bounds checks *)
  let c = Array.unsafe_get t.ctrs proc in
  if write then c.Counters.stores <- c.Counters.stores + 1
  else c.Counters.loads <- c.Counters.loads + 1;
  let page = addr lsr t.page_shift in
  (* injected TLB-shootdown fault: periodically drop this processor's
     translations (costs only the refill misses) *)
  let acc = Array.unsafe_get t.accesses proc + 1 in
  Array.unsafe_set t.accesses proc acc;
  let tlb_flushed =
    (not t.faults_off) && Fault.tlb_flush_due t.fault ~accesses:acc
  in
  if tlb_flushed then begin
    Tlb.flush t.tlbs.(proc);
    t.memo_page.(proc) <- -1
  end;
  (* 1. address translation: TLB (the only part that costs cycles), then
     the one-entry memo in front of the flat page table *)
  let tlb_c =
    if Tlb.access (Array.unsafe_get t.tlbs proc) ~page then 0
    else begin
      c.Counters.tlb_misses <- c.Counters.tlb_misses + 1;
      c.Counters.tlb_stall_cycles <-
        c.Counters.tlb_stall_cycles + t.tlb_miss_cycles;
      t.tlb_miss_cycles
    end
  in
  let packed =
    if Array.unsafe_get t.memo_page proc = page then
      Array.unsafe_get t.memo_packed proc
    else begin
      let p =
        Pagetable.translate t.pt ~page
          ~faulting_node:(Config.node_of_proc t.cfg proc)
      in
      Array.unsafe_set t.memo_page proc page;
      Array.unsafe_set t.memo_packed proc p;
      p
    end
  in
  let home = Pagetable.packed_node packed in
  let phys_addr =
    (Pagetable.packed_frame packed lsl t.page_shift) lor (addr land t.page_mask)
  in
  let l1 = Array.unsafe_get t.l1s proc in
  let l1_line = phys_addr lsr t.l1_shift in
  let l1_hit = Cache.touch l1 ~line:l1_line in
  if l1_hit && not write then begin
    (* common case: L1 read hit — TLB, one cache probe, nothing else *)
    let lat = tlb_c + t.l1_hit_cycles in
    c.Counters.mem_stall_cycles <- c.Counters.mem_stall_cycles + lat;
    (match t.probe with
    | None -> ()
    | Some probe ->
        emit_hit_event probe ~proc ~addr ~write ~now ~tlb:tlb_c
          ~hit:t.l1_hit_cycles ~tlb_flushed);
    lat
  end
  else
    let l2 = t.l2s.(proc) in
    let l2_line = phys_addr lsr t.l2_shift in
    if l1_hit && Directory.exclusive_owner t.dir ~line:l2_line = proc then begin
      (* L1 write hit on an exclusively-held line: one directory word *)
      Cache.set_dirty l1 ~line:l1_line;
      Cache.set_dirty l2 ~line:l2_line;
      let lat = tlb_c + t.l1_hit_cycles in
      c.Counters.mem_stall_cycles <- c.Counters.mem_stall_cycles + lat;
      (match t.probe with
      | None -> ()
      | Some probe ->
          emit_hit_event probe ~proc ~addr ~write ~now ~tlb:tlb_c
            ~hit:t.l1_hit_cycles ~tlb_flushed);
      lat
    end
    else
      access_slow t ~proc ~addr ~write ~now ~c ~tlb_c ~tlb_flushed ~home ~l1
        ~l2 ~l1_line ~l2_line ~l1_hit

(* everything below the L1 fast path: L2 hits, upgrades, directory
   transactions, fills. Charges and counters are identical to the
   pre-fast-path implementation. *)
and access_slow t ~proc ~addr ~write ~now ~c ~tlb_c ~tlb_flushed ~home ~l1
    ~l2 ~l1_line ~l2_line ~l1_hit =
  let my_node = Config.node_of_proc t.cfg proc in
  let lat = ref tlb_c in
  (* cause-tagged slices of [lat], reported to the probe (profiler). Every
     cycle added to [lat] below is also added to exactly one slice. *)
  let tlb_c = ref tlb_c
  and hit_c = ref 0
  and fill_c = ref 0
  and cont_c = ref 0
  and coh_c = ref 0 in
  let exclusive_mine () = Directory.exclusive_owner t.dir ~line:l2_line = proc in
  begin
    if not l1_hit then c.Counters.l1_misses <- c.Counters.l1_misses + 1;
    let l2_hit = Cache.touch l2 ~line:l2_line in
    if l2_hit && ((not write) || exclusive_mine ()) then begin
      (* L2 hit (or write to an exclusively-held line) *)
      hit_c := !hit_c + t.cfg.Config.l2.Config.hit_cycles;
      lat := !lat + t.cfg.Config.l2.Config.hit_cycles;
      if write then Cache.set_dirty l2 ~line:l2_line
    end
    else if l2_hit (* && write && not exclusive: upgrade *) then begin
      c.Counters.upgrades <- c.Counters.upgrades + 1;
      let others = Directory.sharers_except t.dir ~line:l2_line ~proc in
      List.iter
        (fun q ->
          ignore (smash_line t ~victim:q ~phys_line:l2_line);
          t.ctrs.(q).Counters.invals_received <-
            t.ctrs.(q).Counters.invals_received + 1)
        others;
      c.Counters.invals_sent <- c.Counters.invals_sent + List.length others;
      let route =
        Topology.route_cycles t.topo ~from_node:my_node ~to_node:home
        + Fault.link_extra t.fault ~a:my_node ~b:home
      in
      let upgrade_coh =
        route
        + Fault.dir_extra t.fault ~home
        + (t.cfg.Config.inval_cycles_per_sharer * List.length others)
      in
      hit_c := !hit_c + t.cfg.Config.l2.Config.hit_cycles;
      coh_c := !coh_c + upgrade_coh;
      lat := !lat + t.cfg.Config.l2.Config.hit_cycles + upgrade_coh;
      Directory.set_exclusive t.dir ~line:l2_line ~owner:proc;
      Cache.set_dirty l2 ~line:l2_line
    end
    else begin
      (* L2 miss: directory transaction at the page's home node *)
      c.Counters.l2_misses <- c.Counters.l2_misses + 1;
      let arrival = now + !lat in
      let base_lat =
        Topology.mem_latency t.topo ~proc_node:my_node ~home_node:home
        + Fault.link_extra t.fault ~a:my_node ~b:home
        + Fault.dir_extra t.fault ~home
      in
      (* who supplies the data? *)
      let dirty_owner =
        match Directory.state t.dir ~line:l2_line with
        | Directory.Exclusive q when q <> proc && Cache.is_dirty t.l2s.(q) ~line:l2_line ->
            Some q
        | _ -> None
      in
      (match dirty_owner with
      | Some q ->
          (* cache-to-cache: owner forwards; its copy is written back (read)
             or invalidated (write) *)
          c.Counters.dirty_fetches <- c.Counters.dirty_fetches + 1;
          let q_node = Config.node_of_proc t.cfg q in
          let c2c =
            t.cfg.Config.dirty_transfer_extra_cycles
            + Topology.route_cycles t.topo ~from_node:q_node ~to_node:my_node
            + Fault.link_extra t.fault ~a:q_node ~b:my_node
          in
          fill_c := !fill_c + base_lat;
          coh_c := !coh_c + c2c;
          lat := !lat + base_lat + c2c;
          (* the line being fetched lives on the accessed page, whose home
             node we already hold — no page-table re-derivation *)
          enqueue_writeback t ~node:home ~now:arrival;
          if write then begin
            ignore (smash_line t ~victim:q ~phys_line:l2_line);
            t.ctrs.(q).Counters.invals_received <-
              t.ctrs.(q).Counters.invals_received + 1;
            c.Counters.invals_sent <- c.Counters.invals_sent + 1;
            Directory.set_exclusive t.dir ~line:l2_line ~owner:proc
          end
          else begin
            (* owner's copy becomes clean-shared — in L1 too, or a later L1
               victim eviction would fold its stale dirty bit back into the
               now-shared L2 line *)
            Cache.clear_dirty t.l2s.(q) ~line:l2_line;
            let lo = l2_line lsl t.l2_shift in
            Cache.clear_dirty_range t.l1s.(q) ~lo_addr:lo
              ~hi_addr:(lo + t.cfg.Config.l2.Config.line_bytes - 1);
            Directory.add_sharer t.dir ~line:l2_line ~proc
          end
      | None ->
          (* memory supplies the line *)
          let wait = module_service t ~node:home ~arrival in
          c.Counters.contention_cycles <- c.Counters.contention_cycles + wait;
          fill_c := !fill_c + base_lat;
          cont_c := !cont_c + wait;
          lat := !lat + base_lat + wait;
          if write then begin
            let others = Directory.sharers_except t.dir ~line:l2_line ~proc in
            List.iter
              (fun q ->
                ignore (smash_line t ~victim:q ~phys_line:l2_line);
                t.ctrs.(q).Counters.invals_received <-
                  t.ctrs.(q).Counters.invals_received + 1)
              others;
            c.Counters.invals_sent <- c.Counters.invals_sent + List.length others;
            let inval = t.cfg.Config.inval_cycles_per_sharer * List.length others in
            coh_c := !coh_c + inval;
            lat := !lat + inval;
            Directory.set_exclusive t.dir ~line:l2_line ~owner:proc
          end
          else begin
            match Directory.state t.dir ~line:l2_line with
            | Directory.Uncached ->
                (* MESI E state: sole reader gets a clean-exclusive copy *)
                Directory.set_exclusive t.dir ~line:l2_line ~owner:proc
            | _ -> Directory.add_sharer t.dir ~line:l2_line ~proc
          end);
      if home = my_node then c.Counters.local_fills <- c.Counters.local_fills + 1
      else c.Counters.remote_fills <- c.Counters.remote_fills + 1;
      handle_l2_eviction t ~proc ~now (Cache.insert l2 ~line:l2_line ~dirty:write)
    end;
    (* refill L1 (unless it was an L1 hit that merely needed an upgrade) *)
    if not l1_hit then begin
      match Cache.insert l1 ~line:l1_line ~dirty:write with
      | Some { line = evl; dirty = true } ->
          (* L1 victim writeback folds into L2 (on-chip, free); convert the
             L1 line id to the covering L2 line id *)
          Cache.set_dirty l2 ~line:((evl lsl t.l1_shift) lsr t.l2_shift)
      | _ -> ()
    end
    else if write then Cache.set_dirty l1 ~line:l1_line
  end;
  c.Counters.mem_stall_cycles <- c.Counters.mem_stall_cycles + !lat;
  (match t.probe with
  | None -> ()
  | Some probe ->
      let local = home = my_node in
      probe
        {
          ev_proc = proc;
          ev_addr = addr;
          ev_write = write;
          ev_now = now;
          ev_tlb = !tlb_c;
          ev_hit = !hit_c;
          ev_local = (if local then !fill_c else 0);
          ev_remote = (if local then 0 else !fill_c);
          ev_contention = !cont_c;
          ev_coherence = !coh_c;
          ev_tlb_flushed = tlb_flushed;
        });
  !lat

(* ------------------------------------------------------------------ *)
(* Invariant auditor (on demand; scans are O(cache lines + directory +
   pagetable), never on the access fast path) *)

let audit t =
  let vs = ref [] in
  let add x = vs := x :: !vs in
  let n = t.cfg.Config.nprocs in
  (* coherence: directory vs. the caches it claims to track *)
  Directory.iter t.dir (fun ~line st ->
      match st with
      | Directory.Uncached -> ()
      | Directory.Exclusive q ->
          if not (Cache.probe t.l2s.(q) ~line) then
            add
              (Audit.v "single-writer"
                 "line %d: exclusive owner p%d does not hold the line" line q);
          for p = 0 to n - 1 do
            if p <> q && Cache.probe t.l2s.(p) ~line then
              add
                (Audit.v "single-writer"
                   "line %d: exclusive to p%d but also cached by p%d" line q p)
          done
      | Directory.Shared s ->
          Bitset.iter
            (fun p ->
              if not (Cache.probe t.l2s.(p) ~line) then
                add
                  (Audit.v "sharers-present"
                     "line %d: directory lists sharer p%d but p%d's L2 lost it"
                     line p p))
            s);
  for p = 0 to n - 1 do
    (* every cached L2 line must be tracked by the directory, and a dirty
       copy implies exclusive ownership *)
    Cache.iter_resident t.l2s.(p) (fun ~line ~dirty ->
        (match Directory.state t.dir ~line with
        | Directory.Exclusive q when q = p -> ()
        | Directory.Shared s when Bitset.mem s p ->
            if dirty then
              add
                (Audit.v "dirty-exclusive"
                   "line %d: dirty in p%d's L2 but only shared" line p)
        | st ->
            add
              (Audit.v "directory-tracking"
                 "line %d: cached by p%d but directory says %s" line p
                 (match st with
                 | Directory.Uncached -> "uncached"
                 | Directory.Shared _ -> "shared elsewhere"
                 | Directory.Exclusive q -> Printf.sprintf "exclusive to p%d" q))));
    (* L1 inclusion: every L1 line must lie under a resident L2 line *)
    let l1b = t.cfg.Config.l1.Config.line_bytes
    and l2b = t.cfg.Config.l2.Config.line_bytes in
    Cache.iter_resident t.l1s.(p) (fun ~line ~dirty:_ ->
        let l2_line = line * l1b / l2b in
        if not (Cache.probe t.l2s.(p) ~line:l2_line) then
          add
            (Audit.v "l1-inclusion"
               "p%d: L1 line %d resident without covering L2 line %d" p line
               l2_line));
    (* TLB/pagetable agreement: a cached translation must be placed *)
    Tlb.iter_resident t.tlbs.(p) (fun ~page ->
        match Pagetable.home_opt t.pt ~page with
        | Some _ -> ()
        | None ->
            add
              (Audit.v "tlb-pagetable"
                 "p%d: TLB caches page %d which the pagetable never placed" p
                 page));
    (* translation memo: a non-empty memo must mirror the page table *)
    if t.memo_page.(p) >= 0 then begin
      let page = t.memo_page.(p) and packed = t.memo_packed.(p) in
      match Pagetable.home_opt t.pt ~page with
      | None ->
          add
            (Audit.v "translation-memo"
               "p%d: memo caches page %d which the pagetable never placed" p
               page)
      | Some node ->
          if
            node <> Pagetable.packed_node packed
            || Pagetable.frame t.pt ~page <> Pagetable.packed_frame packed
          then
            add
              (Audit.v "translation-memo"
                 "p%d: memo for page %d is stale (node/frame mismatch)" p page)
    end
  done;
  List.rev_append !vs (Pagetable.audit t.pt)
