(** Generic set-associative write-back cache with LRU replacement, used for
    both the 32 KB / 32 B-line L1 and the 4 MB / 128 B-line L2 of each
    simulated processor (paper §2).

    The cache tracks only line presence and dirtiness; coherence state lives
    in the {!Directory}. Addresses are byte addresses; lines are identified
    by [addr / line_bytes]. *)

type t

type evicted = { line : int; dirty : bool }

val create : Config.cache_cfg -> t
val line_bytes : t -> int
val line_of_addr : t -> int -> int

val probe : t -> line:int -> bool
(** Hit test without touching LRU state. *)

val touch : t -> line:int -> bool
(** Hit test that refreshes LRU on a hit. *)

val insert : t -> line:int -> dirty:bool -> evicted option
(** Bring [line] in (it must not be present), evicting the set's LRU way if
    the set is full. Returns the evicted line, if any. *)

val set_dirty : t -> line:int -> unit
(** Mark a resident line dirty. No-op if absent. *)

val is_dirty : t -> line:int -> bool

val clear_dirty : t -> line:int -> unit
(** Mark a resident line clean (downgrade after a writeback). No-op if
    absent. *)

val invalidate : t -> line:int -> bool
(** Drop the line if present; returns [true] if it was dirty. *)

val invalidate_range : t -> lo_addr:int -> hi_addr:int -> int
(** Invalidate every resident line overlapping the byte range; returns the
    number of dirty lines dropped. Used to knock the (smaller) L1 lines out
    when an L2 line is invalidated. *)

val clear_dirty_range : t -> lo_addr:int -> hi_addr:int -> unit
(** Mark every resident line overlapping the byte range clean. Used to
    downgrade the (smaller) L1 lines under an L2 line that loses
    exclusivity: their modified data has already been forwarded and written
    back at the L2 level, so a later L1 eviction must not fold a stale
    dirty bit back into the now-shared L2 line. *)

val resident_lines : t -> int

val iter_resident : t -> (line:int -> dirty:bool -> unit) -> unit
(** Visit every resident line (order unspecified); used by the invariant
    auditor. Does not disturb LRU state. *)

val clear : t -> unit
