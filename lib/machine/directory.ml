(* Flat directory: an open-addressing (linear-probe) table over packed int
   arrays, replacing the Hashtbl of boxed entries. Physical line ids are
   too sparse for direct indexing (frames are colored and striped across
   nodes), but the flat probe table keeps the hot-path directory word one
   multiplicative hash and typically one load away, with zero allocation —
   [exclusive_owner]/[is_uncached] are the only directory questions the
   access fast path asks, and neither materializes a sharer set.

   Packed state word: 0 = uncached, (owner lsl 1) lor 1 = exclusive,
   2 = shared (sharer bits live in the side array, [nwords] words per
   slot). Entries are never removed (an eviction just returns the line to
   uncached), so the table only grows. [Directory_ref] keeps the original
   map-based implementation as the differential-oracle reference. *)

type state = Uncached | Shared of Bitset.t | Exclusive of int

type t = {
  nprocs : int;
  nwords : int; (* sharer words per slot *)
  mutable lb : int; (* capacity = 1 lsl lb *)
  mutable keys : int array; (* line ids; -1 = empty slot *)
  mutable st : int array; (* packed state word *)
  mutable sh : int array; (* capacity * nwords sharer bit words *)
  mutable size : int; (* occupied slots *)
}

let wbits = 62

(* small initial table: runtimes are built once per sweep job, and the
   table doubles on demand (amortized, host-side only) *)
let initial_lb = 12

let create ~nprocs =
  let cap = 1 lsl initial_lb in
  let nwords = max 1 ((nprocs + wbits - 1) / wbits) in
  {
    nprocs;
    nwords;
    lb = initial_lb;
    keys = Array.make cap (-1);
    st = Array.make cap 0;
    sh = Array.make (cap * nwords) 0;
    size = 0;
  }

(* fibonacci hashing: top [lb] bits of the wrapped product spread the
   correlated low bits of line ids *)
let slot_of t line =
  let mask = (1 lsl t.lb) - 1 in
  let i = ref ((line * 0x9E3779B97F4A7C1) lsr (63 - t.lb)) in
  i := !i land mask;
  let rec probe i =
    let k = Array.unsafe_get t.keys i in
    if k = line || k < 0 then i else probe ((i + 1) land mask)
  in
  probe !i

let grow t =
  let okeys = t.keys and ost = t.st and osh = t.sh and onw = t.nwords in
  let ocap = 1 lsl t.lb in
  t.lb <- t.lb + 1;
  let cap = 1 lsl t.lb in
  t.keys <- Array.make cap (-1);
  t.st <- Array.make cap 0;
  t.sh <- Array.make (cap * onw) 0;
  for i = 0 to ocap - 1 do
    let line = okeys.(i) in
    if line >= 0 then begin
      let s = slot_of t line in
      t.keys.(s) <- line;
      t.st.(s) <- ost.(i);
      Array.blit osh (i * onw) t.sh (s * onw) onw
    end
  done

(* slot of [line], claiming an empty slot (state uncached) if absent *)
let rec claim t line =
  let s = slot_of t line in
  if t.keys.(s) >= 0 then s
  else if 2 * (t.size + 1) > 1 lsl t.lb then begin
    grow t;
    claim t line
  end
  else begin
    t.keys.(s) <- line;
    t.st.(s) <- 0;
    Array.fill t.sh (s * t.nwords) t.nwords 0;
    t.size <- t.size + 1;
    s
  end

let state_of_slot t s =
  let w = t.st.(s) in
  if w = 0 then Uncached
  else if w land 1 = 1 then Exclusive (w lsr 1)
  else begin
    let b = Bitset.create t.nprocs in
    for p = 0 to t.nprocs - 1 do
      if t.sh.((s * t.nwords) + (p / wbits)) land (1 lsl (p mod wbits)) <> 0
      then Bitset.add b p
    done;
    Shared b
  end

let state t ~line =
  let s = slot_of t line in
  if t.keys.(s) < 0 then Uncached else state_of_slot t s

let exclusive_owner t ~line =
  let s = slot_of t line in
  if t.keys.(s) < 0 then -1
  else
    let w = Array.unsafe_get t.st s in
    if w land 1 = 1 then w lsr 1 else -1

let is_uncached t ~line =
  let s = slot_of t line in
  t.keys.(s) < 0 || t.st.(s) = 0

let set_exclusive t ~line ~owner =
  let s = claim t line in
  t.st.(s) <- (owner lsl 1) lor 1

let set_bit t s p =
  let i = (s * t.nwords) + (p / wbits) in
  t.sh.(i) <- t.sh.(i) lor (1 lsl (p mod wbits))

let add_sharer t ~line ~proc =
  let s = claim t line in
  let w = t.st.(s) in
  if w = 0 then begin
    Array.fill t.sh (s * t.nwords) t.nwords 0;
    set_bit t s proc;
    t.st.(s) <- 2
  end
  else if w land 1 = 1 then begin
    Array.fill t.sh (s * t.nwords) t.nwords 0;
    set_bit t s (w lsr 1);
    set_bit t s proc;
    t.st.(s) <- 2
  end
  else set_bit t s proc

let drop t ~line ~proc =
  let s = slot_of t line in
  if t.keys.(s) >= 0 then begin
    let w = t.st.(s) in
    if w land 1 = 1 then begin
      if w lsr 1 = proc then t.st.(s) <- 0
    end
    else if w = 2 then begin
      let i = (s * t.nwords) + (proc / wbits) in
      t.sh.(i) <- t.sh.(i) land lnot (1 lsl (proc mod wbits));
      let empty = ref true in
      for k = s * t.nwords to (s * t.nwords) + t.nwords - 1 do
        if t.sh.(k) <> 0 then empty := false
      done;
      if !empty then t.st.(s) <- 0
    end
  end

(* highest-processor-first, matching the Bitset.fold order of the reference
   implementation (the order is observable only through trace/event
   interleaving, never through counters) *)
let sharers_except t ~line ~proc =
  let s = slot_of t line in
  if t.keys.(s) < 0 then []
  else
    let w = t.st.(s) in
    if w = 0 then []
    else if w land 1 = 1 then if w lsr 1 = proc then [] else [ w lsr 1 ]
    else begin
      let acc = ref [] in
      for p = 0 to t.nprocs - 1 do
        if
          p <> proc
          && t.sh.((s * t.nwords) + (p / wbits)) land (1 lsl (p mod wbits)) <> 0
        then acc := p :: !acc
      done;
      !acc
    end

let entries t = t.size

let iter t f =
  for s = 0 to (1 lsl t.lb) - 1 do
    let line = t.keys.(s) in
    if line >= 0 then f ~line (state_of_slot t s)
  done

let nprocs t = t.nprocs
