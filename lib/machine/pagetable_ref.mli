(** Reference (Hashtbl-based) page table — the differential oracle for the
    flat-array {!Pagetable}. Test-only: random operation sequences must
    produce identical nodes and frames on both implementations. *)

type t

val create : Config.t -> Pagetable.policy -> t
val place : t -> page:int -> node:int -> unit
val home : t -> page:int -> faulting_node:int -> int
val home_opt : t -> page:int -> int option
val migrate : t -> page:int -> node:int -> unit
val frame : t -> page:int -> int
val node_of_frame : t -> int -> int
val pages_on_node : t -> node:int -> int
val placed_pages : t -> int
