(* Reference page table: the original Hashtbl-based implementation, kept
   verbatim as the differential oracle for the flat-array {!Pagetable}. Not
   used on any simulation path — the qcheck oracle in
   test_machine_fastpath.ml drives random operation sequences through both
   implementations and requires identical observable results, which is what
   lets the flat implementation claim exactness. *)

type entry = { mutable node : int; mutable frame : int }

type t = {
  cfg : Config.t;
  policy : Pagetable.policy;
  table : (int, entry) Hashtbl.t;
  used : int array;
  color_next : int array array;
  colors : int;
  capacity : int;
  mutable rr_next : int;
  mutable overflow : int;
  nnodes : int;
}

let create cfg policy =
  let nnodes = Config.nnodes cfg in
  let colors =
    max 1
      (cfg.Config.l2.Config.size_bytes / cfg.Config.l2.Config.assoc
      / cfg.Config.page_bytes)
  in
  {
    cfg;
    policy;
    table = Hashtbl.create 4096;
    used = Array.make nnodes 0;
    color_next = Array.init nnodes (fun _ -> Array.make colors 0);
    colors;
    capacity = max 1 (Config.pages_per_node cfg);
    rr_next = 0;
    overflow = 0;
    nnodes;
  }

let frame_stride t = (t.capacity + 4) * t.colors
let node_of_frame t f = min (t.nnodes - 1) (f / frame_stride t)

let alloc_frame t node ~page =
  let color = page mod t.colors in
  let take n =
    let round = t.color_next.(n).(color) in
    t.color_next.(n).(color) <- round + 1;
    t.used.(n) <- t.used.(n) + 1;
    (n, (n * frame_stride t) + color + (round * t.colors))
  in
  let rec go n tries =
    if tries >= t.nnodes then begin
      let f = t.overflow in
      t.overflow <- f + 1;
      (node, (t.nnodes * frame_stride t) + color + (f * t.colors))
    end
    else if t.used.(n) < t.capacity then take n
    else go ((n + 1) mod t.nnodes) (tries + 1)
  in
  go node 0

let place_new t ~page ~node =
  let actual, frame = alloc_frame t node ~page in
  Hashtbl.replace t.table page { node = actual; frame }

let place t ~page ~node =
  if not (Hashtbl.mem t.table page) then place_new t ~page ~node

let home t ~page ~faulting_node =
  match Hashtbl.find_opt t.table page with
  | Some e -> e.node
  | None ->
      let node =
        match t.policy with
        | Pagetable.First_touch -> faulting_node
        | Pagetable.Round_robin ->
            let n = t.rr_next in
            t.rr_next <- (t.rr_next + 1) mod t.nnodes;
            n
      in
      place_new t ~page ~node;
      (Hashtbl.find t.table page).node

let home_opt t ~page =
  Option.map (fun e -> e.node) (Hashtbl.find_opt t.table page)

let migrate t ~page ~node =
  let actual, frame = alloc_frame t node ~page in
  match Hashtbl.find_opt t.table page with
  | Some e ->
      e.node <- actual;
      e.frame <- frame
  | None -> Hashtbl.replace t.table page { node = actual; frame }

let frame t ~page =
  match Hashtbl.find_opt t.table page with
  | Some e -> e.frame
  | None -> invalid_arg "Pagetable_ref.frame: page not placed"

let pages_on_node t ~node =
  Hashtbl.fold (fun _ e acc -> if e.node = node then acc + 1 else acc) t.table 0

let placed_pages t = Hashtbl.length t.table
