(** Hypercube interconnect topology (paper §2: nodes "connected together in a
    hypercube through a switch-based interconnect").

    Node ids are consecutive integers; the hop distance between two nodes is
    the Hamming distance of their ids, the routing distance in a hypercube.
    Remote latency therefore ranges from [remote_base_cycles] (1 hop) up to
    roughly 180 cycles on large machines, matching §2's 110–180 range. *)

type t

val create : Config.t -> t
val nnodes : t -> int
val node_of_proc : t -> int -> int

val dims : t -> int
(** Hypercube dimension (see {!Config.dims}); the maximum possible hop
    count on this machine. *)

val hops : t -> int -> int -> int
(** [hops t n1 n2]: 0 if same node, else Hamming distance (>= 1). *)

val hop_latency : t -> hops:int -> int
(** Uncontended memory latency at a given hop distance, from a table
    precomputed at {!create} (dense over [0 .. dims t]). [hop_latency
    ~hops:0] is the local latency. Raises [Invalid_argument] outside the
    range. *)

val min_cross_hop_cycles : t -> int
(** Smallest latency of any cross-node interaction (= one-hop remote miss
    latency): the safe conservative lookahead for coordination schemes that
    must not miss a cross-node event, per classic null-message PDES. On a
    single-node machine this degenerates to the local latency. *)

val route_cycles : t -> from_node:int -> to_node:int -> int
(** One-way network traversal cost; 0 for the local node. *)

val mem_latency : t -> proc_node:int -> home_node:int -> int
(** Uncontended total miss latency to memory on [home_node]: local (~70) or
    remote (110 + per-hop beyond the first). *)
