(* Flat fully-associative LRU TLB. Entries live compacted in the first
   [used] slots of two plain int arrays, so a hit is a short linear scan
   (the TLB holds at most 64 entries) and a refill never allocates —
   replacing the previous Hashtbl (two hash probes plus bucket allocation
   per access on the simulator's hottest path).

   LRU stamps are unique (the clock advances on every access), so the
   eviction victim is the same translation the Hashtbl implementation chose:
   hit/miss sequences are bit-identical. A one-entry memo short-circuits the
   scan for the common run of consecutive accesses to one page. *)

type t = {
  entries : int;
  pages : int array; (* slots 0..used-1 hold resident page numbers *)
  stamps : int array; (* last-use clock per slot *)
  mutable used : int;
  mutable clock : int;
  mutable last : int; (* slot of the most recent hit/refill, -1 after flush *)
}

let create ~entries =
  if entries < 1 then invalid_arg "Tlb.create: entries < 1";
  {
    entries;
    pages = Array.make entries (-1);
    stamps = Array.make entries 0;
    used = 0;
    clock = 0;
    last = -1;
  }

let access t ~page =
  t.clock <- t.clock + 1;
  if t.last >= 0 && t.pages.(t.last) = page then begin
    t.stamps.(t.last) <- t.clock;
    true
  end
  else begin
    let slot = ref (-1) in
    (let i = ref 0 in
     while !slot < 0 && !i < t.used do
       if t.pages.(!i) = page then slot := !i;
       incr i
     done);
    if !slot >= 0 then begin
      t.stamps.(!slot) <- t.clock;
      t.last <- !slot;
      true
    end
    else begin
      let idx =
        if t.used < t.entries then begin
          let i = t.used in
          t.used <- i + 1;
          i
        end
        else begin
          (* evict the LRU entry: stamps are unique, victim is unambiguous *)
          let victim = ref 0 in
          for i = 1 to t.used - 1 do
            if t.stamps.(i) < t.stamps.(!victim) then victim := i
          done;
          !victim
        end
      in
      t.pages.(idx) <- page;
      t.stamps.(idx) <- t.clock;
      t.last <- idx;
      false
    end
  end

let flush t =
  t.used <- 0;
  t.last <- -1

let invalidate t ~page =
  let slot = ref (-1) in
  (let i = ref 0 in
   while !slot < 0 && !i < t.used do
     if t.pages.(!i) = page then slot := !i;
     incr i
   done);
  if !slot >= 0 then begin
    (* keep the resident entries compacted: move the tail entry down *)
    let last = t.used - 1 in
    t.pages.(!slot) <- t.pages.(last);
    t.stamps.(!slot) <- t.stamps.(last);
    t.used <- last;
    t.last <- -1
  end

let entries t = t.entries
let resident t = t.used

let iter_resident t f =
  for i = 0 to t.used - 1 do
    f ~page:t.pages.(i)
  done
