type t = {
  entries : int;
  table : (int, int) Hashtbl.t; (* page -> last-use stamp *)
  mutable clock : int;
}

let create ~entries =
  if entries < 1 then invalid_arg "Tlb.create: entries < 1";
  { entries; table = Hashtbl.create (2 * entries); clock = 0 }

let access t ~page =
  t.clock <- t.clock + 1;
  if Hashtbl.mem t.table page then (
    Hashtbl.replace t.table page t.clock;
    true)
  else begin
    if Hashtbl.length t.table >= t.entries then begin
      (* evict LRU: scan the (small, bounded) table *)
      let victim = ref (-1) and oldest = ref max_int in
      Hashtbl.iter
        (fun p stamp ->
          if stamp < !oldest then begin
            oldest := stamp;
            victim := p
          end)
        t.table;
      Hashtbl.remove t.table !victim
    end;
    Hashtbl.replace t.table page t.clock;
    false
  end

let flush t = Hashtbl.reset t.table
let entries t = t.entries
let resident t = Hashtbl.length t.table
let iter_resident t f = Hashtbl.iter (fun page _ -> f ~page) t.table
