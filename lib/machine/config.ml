type cache_cfg = {
  size_bytes : int;
  line_bytes : int;
  assoc : int;
  hit_cycles : int;
}

type t = {
  nprocs : int;
  procs_per_node : int;
  page_bytes : int;
  l1 : cache_cfg;
  l2 : cache_cfg;
  tlb_entries : int;
  tlb_miss_cycles : int;
  local_mem_cycles : int;
  remote_base_cycles : int;
  remote_per_hop_cycles : int;
  mem_occupancy_cycles : int;
  dirty_transfer_extra_cycles : int;
  inval_cycles_per_sharer : int;
  node_mem_bytes : int;
}

let origin2000 ~nprocs =
  {
    nprocs;
    procs_per_node = 2;
    page_bytes = 16384;
    l1 = { size_bytes = 32768; line_bytes = 32; assoc = 2; hit_cycles = 1 };
    l2 =
      { size_bytes = 4 * 1024 * 1024; line_bytes = 128; assoc = 2; hit_cycles = 10 };
    tlb_entries = 64;
    tlb_miss_cycles = 57;
    local_mem_cycles = 70;
    remote_base_cycles = 110;
    remote_per_hop_cycles = 12;
    mem_occupancy_cycles = 24;
    dirty_transfer_extra_cycles = 40;
    inval_cycles_per_sharer = 16;
    (* 16 GB over 64 nodes in the paper's machine, but Figure 4's analysis
       says one node holds "about 250MB" usable for data *)
    node_mem_bytes = 250 * 1024 * 1024;
  }

let scaled ~nprocs ?(factor = 64) () =
  let base = origin2000 ~nprocs in
  let shrink x = max 1 (x / factor) in
  {
    base with
    page_bytes = max base.l2.line_bytes (shrink base.page_bytes);
    l1 = { base.l1 with size_bytes = max (base.l1.line_bytes * base.l1.assoc * 4) (shrink base.l1.size_bytes) };
    l2 = { base.l2 with size_bytes = max (base.l2.line_bytes * base.l2.assoc * 4) (shrink base.l2.size_bytes) };
    tlb_entries = max 8 (base.tlb_entries / 4);
    node_mem_bytes = shrink base.node_mem_bytes;
  }

let nnodes t = (t.nprocs + t.procs_per_node - 1) / t.procs_per_node
let node_of_proc t p = p / t.procs_per_node
let pages_per_node t = t.node_mem_bytes / t.page_bytes

let is_pow2 x = x > 0 && x land (x - 1) = 0

(* The interconnect is a hypercube over node ids (paper §2: bristled
   hypercube up to 64 nodes / 128 procs).  We cap the geometry at 10
   dimensions — 1024 nodes, 8x the paper's machine — so hop counts, the
   hop-latency table and directory bitmaps all stay small and dense. *)
let max_dims = 10
let max_nodes = 1 lsl max_dims

let dims t =
  let n = nnodes t in
  let rec go d = if 1 lsl d >= n then d else go (d + 1) in
  go 0

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.nprocs < 1 then err "nprocs < 1"
  else if t.procs_per_node < 1 then err "procs_per_node < 1"
  else if not (is_pow2 t.page_bytes) then err "page size must be a power of two"
  else if not (is_pow2 t.l1.line_bytes && is_pow2 t.l2.line_bytes) then
    err "cache line sizes must be powers of two"
  else if t.l1.line_bytes > t.l2.line_bytes then err "L1 line larger than L2 line"
  else if t.l2.line_bytes > t.page_bytes then err "L2 line larger than a page"
  else if t.l1.size_bytes mod (t.l1.line_bytes * t.l1.assoc) <> 0 then
    err "L1 size not a multiple of line*assoc"
  else if t.l2.size_bytes mod (t.l2.line_bytes * t.l2.assoc) <> 0 then
    err "L2 size not a multiple of line*assoc"
  else if not (is_pow2 (t.l1.size_bytes / (t.l1.line_bytes * t.l1.assoc))) then
    err
      "L1 set count %d (size/line/assoc) must be a power of two: set \
       indexing is shift/mask"
      (t.l1.size_bytes / (t.l1.line_bytes * t.l1.assoc))
  else if not (is_pow2 (t.l2.size_bytes / (t.l2.line_bytes * t.l2.assoc))) then
    err
      "L2 set count %d (size/line/assoc) must be a power of two: set \
       indexing is shift/mask"
      (t.l2.size_bytes / (t.l2.line_bytes * t.l2.assoc))
  else if t.tlb_entries < 1 then err "tlb_entries < 1"
  else if
    t.local_mem_cycles < 1 || t.remote_base_cycles < t.local_mem_cycles
  then err "remote latency must be >= local latency"
  else if t.node_mem_bytes < t.page_bytes then err "node memory below one page"
  else if nnodes t > max_nodes then
    err
      "machine shape unsupported: %d procs at %d per node is %d nodes, \
       beyond the %d-dimensional hypercube bound (%d nodes); non-power-of-two \
       node counts embed in the next power-of-two subcube, but the dimension \
       itself is capped"
      t.nprocs t.procs_per_node (nnodes t) max_dims max_nodes
  else Ok ()
