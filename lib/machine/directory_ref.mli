(** Reference (Hashtbl-based) coherence directory — the differential oracle
    for the flat open-addressing {!Directory}. Test-only: random operation
    sequences must produce identical states on both implementations. *)

type state = Uncached | Shared of Bitset.t | Exclusive of int

type t

val create : nprocs:int -> t
val state : t -> line:int -> state
val set_exclusive : t -> line:int -> owner:int -> unit
val add_sharer : t -> line:int -> proc:int -> unit
val drop : t -> line:int -> proc:int -> unit
val sharers_except : t -> line:int -> proc:int -> int list
val entries : t -> int
val nprocs : t -> int
