(** Machine and cost-model parameters for the simulated CC-NUMA
    multiprocessor (paper §2: the SGI Origin-2000).

    Two presets are provided: {!origin2000} with the paper's published
    parameters (16 KB pages, 32 KB/32 B L1, 4 MB/128 B L2, 2-way, ~70-cycle
    local and 110–180-cycle remote miss latencies, 64-entry TLB), and
    {!scaled}, a shape-preserving reduction used by the benchmark harness so
    that scaled-down problem sizes keep the paper's data-set-to-cache and
    data-set-to-page ratios. *)

type cache_cfg = {
  size_bytes : int;
  line_bytes : int;  (** power of two *)
  assoc : int;
  hit_cycles : int;  (** access latency on a hit *)
}

type t = {
  nprocs : int;
  procs_per_node : int;  (** 2 on the Origin-2000 *)
  page_bytes : int;  (** power of two *)
  l1 : cache_cfg;
  l2 : cache_cfg;
  tlb_entries : int;
  tlb_miss_cycles : int;
  local_mem_cycles : int;  (** uncontended local-memory miss latency *)
  remote_base_cycles : int;  (** remote miss latency at one network hop *)
  remote_per_hop_cycles : int;  (** additional latency per extra hop *)
  mem_occupancy_cycles : int;
      (** cycles a memory module is busy serving one cache line; the
          reciprocal is per-node memory bandwidth, the source of hot-node
          bottlenecks *)
  dirty_transfer_extra_cycles : int;
      (** extra latency when the line must be fetched from another
          processor's dirty cache (3-hop transaction) *)
  inval_cycles_per_sharer : int;
      (** serialisation cost per invalidation sent on a write to a shared
          line *)
  node_mem_bytes : int;
      (** memory capacity per node; overflow pages spill round-robin to other
          nodes (drives the paper's Figure 4 remark that class C exceeds one
          node's memory) *)
}

val origin2000 : nprocs:int -> t
(** Paper-faithful parameters. *)

val scaled : nprocs:int -> ?factor:int -> unit -> t
(** [scaled ~nprocs ~factor ()] shrinks capacities (caches, page size, TLB
    reach, node memory) by [factor] (default 64) while keeping latencies;
    problem sizes shrunk by the same factor then exercise the same regimes
    as the paper's full-size runs. Line sizes are kept at 32/128 bytes so
    spatial-locality and false-sharing granularity stay realistic. *)

val nnodes : t -> int
val node_of_proc : t -> int -> int
val pages_per_node : t -> int

val max_dims : int
(** Hypercube dimension bound on the interconnect geometry: machines up to
    [2^max_dims] nodes (10 dims = 1024 nodes, 8x the paper's 64-node /
    128-proc Origin) pass {!validate}; anything larger is rejected. *)

val max_nodes : int
(** [2^max_dims]. *)

val dims : t -> int
(** Hypercube dimension of the machine: the smallest [d] with
    [2^d >= nnodes]. Non-power-of-two node counts embed as a subcube of the
    next power of two, so every hop count is still bounded by [dims]. *)

val validate : t -> (unit, string) result
(** Check structural invariants (powers of two, positive parameters,
    l1 line <= l2 line <= page, node count within the {!max_dims} hypercube
    bound). Each error names the offending parameter and value. *)
