open Ddsm_ir
module K = Ddsm_dist.Kind

type st = { toks : Lexer.located array; mutable pos : int; fname : string }

exception Perror of Loc.t * string

let loc st =
  let line =
    if st.pos < Array.length st.toks then st.toks.(st.pos).Lexer.line else 0
  in
  Loc.v ~file:st.fname ~line

let err st fmt =
  Format.kasprintf (fun msg -> raise (Perror (loc st, msg))) fmt

let peek st = st.toks.(st.pos).Lexer.tok
let peek2 st =
  if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1).Lexer.tok
  else Token.TEof

let advance st = st.pos <- st.pos + 1

let next st =
  let t = peek st in
  advance st;
  t

let accept st tok = if peek st = tok then (advance st; true) else false

let expect st tok =
  if not (accept st tok) then
    err st "expected %s but found %s" (Token.to_string tok)
      (Token.to_string (peek st))

let accept_ident st name =
  match peek st with
  | Token.TIdent x when x = name ->
      advance st;
      true
  | _ -> false

let expect_ident st name =
  if not (accept_ident st name) then
    err st "expected %s but found %s" name (Token.to_string (peek st))

let ident st =
  match next st with
  | Token.TIdent x -> x
  | t -> err st "expected an identifier but found %s" (Token.to_string t)

let int_lit st =
  match next st with
  | Token.TInt n -> n
  | t -> err st "expected an integer literal but found %s" (Token.to_string t)

let newline st = expect st Token.TNewline
let skip_newlines st = while accept st Token.TNewline do () done

(* ------------------------------------------------------------------ *)
(* Expressions *)

let rec parse_expr st = parse_or st

and parse_or st =
  let e = ref (parse_and st) in
  while accept st Token.TOr do
    e := Expr.Log (Expr.Or, !e, parse_and st)
  done;
  !e

and parse_and st =
  let e = ref (parse_not st) in
  while accept st Token.TAnd do
    e := Expr.Log (Expr.And, !e, parse_not st)
  done;
  !e

and parse_not st =
  if accept st Token.TNot then Expr.Not (parse_not st) else parse_rel st

and parse_rel st =
  let e = parse_add st in
  match peek st with
  | Token.TRel op ->
      advance st;
      Expr.Rel (op, e, parse_add st)
  | _ -> e

and parse_add st =
  let e = ref (parse_mul st) in
  let rec go () =
    if accept st Token.TPlus then begin
      e := Expr.Bin (Expr.Add, !e, parse_mul st);
      go ()
    end
    else if accept st Token.TMinus then begin
      e := Expr.Bin (Expr.Sub, !e, parse_mul st);
      go ()
    end
  in
  go ();
  !e

and parse_mul st =
  let e = ref (parse_unary st) in
  let rec go () =
    if accept st Token.TStar then begin
      e := Expr.Bin (Expr.Mul, !e, parse_unary st);
      go ()
    end
    else if accept st Token.TSlash then begin
      e := Expr.Bin (Expr.Div, !e, parse_unary st);
      go ()
    end
  in
  go ();
  !e

and parse_unary st =
  if accept st Token.TMinus then Expr.Neg (parse_unary st)
  else if accept st Token.TPlus then parse_unary st
  else parse_power st

and parse_power st =
  let base = parse_primary st in
  if accept st Token.TPow then Expr.Bin (Expr.Pow, base, parse_unary st)
  else base

and parse_primary st =
  match next st with
  | Token.TInt n -> Expr.Int n
  | Token.TReal f -> Expr.Real f
  | Token.TStr s -> Expr.Str s
  | Token.TIdent x ->
      if peek st = Token.TLparen then begin
        advance st;
        let args = parse_args st in
        expect st Token.TRparen;
        Expr.Ref (x, args)
      end
      else Expr.Var x
  | Token.TLparen ->
      let e = parse_expr st in
      expect st Token.TRparen;
      e
  | t -> err st "unexpected %s in expression" (Token.to_string t)

and parse_args st =
  if peek st = Token.TRparen then []
  else
    let rec go acc =
      let e = parse_expr st in
      if accept st Token.TComma then go (e :: acc) else List.rev (e :: acc)
    in
    go []

(* ------------------------------------------------------------------ *)
(* Distribution specs *)

let parse_dist_kind st =
  if accept st Token.TStar then K.Star
  else
    match next st with
    | Token.TIdent "block" -> K.Block
    | Token.TIdent "cyclic" ->
        if accept st Token.TLparen then begin
          let neg = accept st Token.TMinus in
          let k = int_lit st in
          let k = if neg then -k else k in
          expect st Token.TRparen;
          if k < 1 then err st "cyclic(%d): chunk size must be >= 1" k;
          K.normalise (K.Cyclic_k k)
        end
        else K.Cyclic
    | t -> err st "expected a distribution kind but found %s" (Token.to_string t)

let parse_dist_kinds st =
  expect st Token.TLparen;
  let rec go acc =
    let k = parse_dist_kind st in
    if accept st Token.TComma then go (k :: acc) else List.rev (k :: acc)
  in
  let kinds = go [] in
  expect st Token.TRparen;
  kinds

let parse_onto_opt st =
  if accept_ident st "onto" then begin
    expect st Token.TLparen;
    let rec go acc =
      let n = int_lit st in
      if accept st Token.TComma then go (n :: acc) else List.rev (n :: acc)
    in
    let ws = go [] in
    expect st Token.TRparen;
    Some ws
  end
  else None

(* [procs(N)] on c$redistribute: resize the onto-grid to N processors *)
let parse_procs_opt st =
  if accept_ident st "procs" then begin
    expect st Token.TLparen;
    let n = int_lit st in
    expect st Token.TRparen;
    Some n
  end
  else None

(* one c$distribute[_reshape] line may name several arrays *)
let parse_distribute st ~reshape =
  let dloc = loc st in
  let rec go acc =
    let target = ident st in
    let kinds = parse_dist_kinds st in
    let onto = parse_onto_opt st in
    let d =
      {
        Decl.dtarget = target;
        dkinds = kinds;
        donto = onto;
        dreshape = reshape;
        dloc;
      }
    in
    if accept st Token.TComma then go (d :: acc) else List.rev (d :: acc)
  in
  let ds = go [] in
  newline st;
  ds

(* ------------------------------------------------------------------ *)
(* Declarations *)

let parse_declarators st ~ty =
  let vloc = loc st in
  let rec go acc =
    let name = ident st in
    let dims =
      if accept st Token.TLparen then begin
        let rec dims acc =
          let e1 = parse_expr st in
          let d =
            if accept st Token.TColon then
              { Decl.dlo = e1; dhi = parse_expr st }
            else { Decl.dlo = Expr.Int 1; dhi = e1 }
          in
          if accept st Token.TComma then dims (d :: acc) else List.rev (d :: acc)
        in
        let ds = dims [] in
        expect st Token.TRparen;
        ds
      end
      else []
    in
    let v = { Decl.vname = name; vty = ty; vdims = dims; vloc } in
    if accept st Token.TComma then go (v :: acc) else List.rev (v :: acc)
  in
  let vs = go [] in
  newline st;
  vs

let parse_parameter st =
  expect st Token.TLparen;
  let rec go acc =
    let name = ident st in
    expect st Token.TAssign;
    let e = parse_expr st in
    if accept st Token.TComma then go ((name, e) :: acc)
    else List.rev ((name, e) :: acc)
  in
  let ps = go [] in
  expect st Token.TRparen;
  newline st;
  ps

let parse_common st =
  expect st Token.TSlash;
  let block = ident st in
  expect st Token.TSlash;
  let rec go acc =
    let n = ident st in
    if accept st Token.TComma then go (n :: acc) else List.rev (n :: acc)
  in
  let names = go [] in
  newline st;
  (block, names)

let parse_equivalence st =
  let rec pair_list acc =
    expect st Token.TLparen;
    let a = ident st in
    expect st Token.TComma;
    let b = ident st in
    expect st Token.TRparen;
    let acc = (a, b) :: acc in
    if accept st Token.TComma then pair_list acc else List.rev acc
  in
  let ps = pair_list [] in
  newline st;
  ps

(* ------------------------------------------------------------------ *)
(* Statements *)

(* "end" followed by kw, or the fused "endkw" *)
let at_end_kw st kw =
  match peek st with
  | Token.TIdent x when x = "end" ^ kw -> true
  | Token.TIdent "end" -> ( match peek2 st with Token.TIdent x -> x = kw | _ -> false)
  | _ -> false

let eat_end_kw st kw =
  match next st with
  | Token.TIdent x when x = "end" ^ kw -> newline st
  | Token.TIdent "end" ->
      expect_ident st kw;
      newline st
  | t -> err st "expected end %s but found %s" kw (Token.to_string t)

let at_bare_end st =
  match peek st with
  | Token.TIdent "end" -> ( match peek2 st with Token.TNewline -> true | _ -> false)
  | _ -> false

let rec parse_stmts st ~stop =
  let acc = ref [] in
  skip_newlines st;
  while (not (stop st)) && peek st <> Token.TEof do
    acc := parse_stmt st :: !acc;
    skip_newlines st
  done;
  List.rev !acc

and parse_stmt st =
  let l = loc st in
  match peek st with
  | Token.TDirective "doacross" ->
      advance st;
      parse_doacross st l
  | Token.TDirective "redistribute" ->
      advance st;
      let rarray = ident st in
      let kinds = parse_dist_kinds st in
      let onto = parse_onto_opt st in
      let procs = parse_procs_opt st in
      newline st;
      Stmt.mk ~loc:l
        (Stmt.Redistribute
           { rarray; rkinds = kinds; ronto = onto; rprocs = procs })
  | Token.TDirective "barrier" ->
      advance st;
      newline st;
      Stmt.mk ~loc:l Stmt.Barrier
  | Token.TDirective d -> err st "unexpected directive c$%s here" d
  | Token.TIdent "do" ->
      advance st;
      Stmt.mk ~loc:l (Stmt.Do (parse_do st))
  | Token.TIdent "if" ->
      advance st;
      parse_if st l
  | Token.TIdent "call" ->
      advance st;
      let name = ident st in
      let args =
        if accept st Token.TLparen then begin
          let a = parse_args st in
          expect st Token.TRparen;
          a
        end
        else []
      in
      newline st;
      Stmt.mk ~loc:l (Stmt.Call (name, args))
  | Token.TIdent "print" ->
      advance st;
      ignore (accept st Token.TStar);
      ignore (accept st Token.TComma);
      let items =
        if peek st = Token.TNewline then []
        else
          let rec go acc =
            let e = parse_expr st in
            if accept st Token.TComma then go (e :: acc) else List.rev (e :: acc)
          in
          go []
      in
      newline st;
      Stmt.mk ~loc:l (Stmt.Print items)
  | Token.TIdent "return" ->
      advance st;
      newline st;
      Stmt.mk ~loc:l Stmt.Return
  | Token.TIdent "stop" ->
      advance st;
      newline st;
      Stmt.mk ~loc:l Stmt.Return
  | Token.TIdent "continue" ->
      advance st;
      newline st;
      Stmt.mk ~loc:l Stmt.Continue
  | Token.TIdent _ -> parse_assignment st l
  | t -> err st "unexpected %s at start of statement" (Token.to_string t)

and parse_assignment st l =
  let name = ident st in
  let lhs =
    if accept st Token.TLparen then begin
      let subs = parse_args st in
      expect st Token.TRparen;
      Stmt.LRef (name, subs)
    end
    else Stmt.LVar name
  in
  expect st Token.TAssign;
  let e = parse_expr st in
  newline st;
  Stmt.mk ~loc:l (Stmt.Assign (lhs, e))

and parse_do st =
  let var = ident st in
  expect st Token.TAssign;
  let lo = parse_expr st in
  expect st Token.TComma;
  let hi = parse_expr st in
  let step = if accept st Token.TComma then Some (parse_expr st) else None in
  newline st;
  let body = parse_stmts st ~stop:(fun st -> at_end_kw st "do") in
  eat_end_kw st "do";
  { Stmt.var; lo; hi; step; body }

and parse_if st l =
  expect st Token.TLparen;
  let cond = parse_expr st in
  expect st Token.TRparen;
  if accept_ident st "then" then begin
    newline st;
    let stop st =
      at_end_kw st "if"
      || (match peek st with
         | Token.TIdent ("else" | "elseif") -> true
         | _ -> false)
    in
    let then_ = parse_stmts st ~stop in
    let finish () =
      match peek st with
      | Token.TIdent "elseif" ->
          advance st;
          let nested = parse_if st (loc st) in
          [ nested ]
      | Token.TIdent "else" when peek2 st = Token.TIdent "if" ->
          advance st;
          advance st;
          let nested = parse_if st (loc st) in
          [ nested ]
      | Token.TIdent "else" ->
          advance st;
          newline st;
          let els = parse_stmts st ~stop:(fun st -> at_end_kw st "if") in
          eat_end_kw st "if";
          els
      | _ ->
          eat_end_kw st "if";
          []
    in
    let else_ = finish () in
    Stmt.mk ~loc:l (Stmt.If (cond, then_, else_))
  end
  else
    (* one-line if *)
    let body = parse_stmt st in
    Stmt.mk ~loc:l (Stmt.If (cond, [ body ], []))

and parse_doacross st l =
  let locals = ref [] in
  let shareds = ref [] in
  let nest_vars = ref [] in
  let affinity = ref None in
  let sched = ref Stmt.Simple in
  let onto = ref None in
  let parse_ident_list () =
    expect st Token.TLparen;
    let rec go acc =
      let x = ident st in
      if accept st Token.TComma then go (x :: acc) else List.rev (x :: acc)
    in
    let l = go [] in
    expect st Token.TRparen;
    l
  in
  let rec clauses () =
    ignore (accept st Token.TComma);
    match peek st with
    | Token.TNewline -> advance st
    | Token.TIdent "local" ->
        advance st;
        locals := !locals @ parse_ident_list ();
        clauses ()
    | Token.TIdent "shared" ->
        advance st;
        shareds := !shareds @ parse_ident_list ();
        clauses ()
    | Token.TIdent "nest" ->
        advance st;
        nest_vars := parse_ident_list ();
        clauses ()
    | Token.TIdent "onto" ->
        advance st;
        expect st Token.TLparen;
        let rec go acc =
          let n = int_lit st in
          if accept st Token.TComma then go (n :: acc) else List.rev (n :: acc)
        in
        let ws = go [] in
        expect st Token.TRparen;
        onto := Some ws;
        clauses ()
    | Token.TIdent "schedtype" ->
        advance st;
        expect st Token.TLparen;
        (match ident st with
        | "simple" -> sched := Stmt.Simple
        | "interleave" ->
            let k =
              if accept st Token.TLparen then begin
                let k = int_lit st in
                expect st Token.TRparen;
                k
              end
              else 1
            in
            sched := Stmt.Interleave k
        | s -> err st "unknown schedtype %s" s);
        expect st Token.TRparen;
        clauses ()
    | Token.TIdent "affinity" ->
        advance st;
        let avars = parse_ident_list () in
        expect st Token.TAssign;
        expect_ident st "data";
        expect st Token.TLparen;
        let aarray = ident st in
        expect st Token.TLparen;
        let asubs = parse_args st in
        expect st Token.TRparen;
        expect st Token.TRparen;
        affinity := Some { Stmt.avars; aarray; asubs };
        clauses ()
    | t -> err st "unknown doacross clause starting with %s" (Token.to_string t)
  in
  clauses ();
  skip_newlines st;
  expect_ident st "do";
  let loop = parse_do st in
  Stmt.mk ~loc:l
    (Stmt.Doacross
       {
         locals = !locals;
         shareds = !shareds;
         affinity = !affinity;
         sched = !sched;
         d_onto = !onto;
         nest_vars = !nest_vars;
         loop;
       })

(* ------------------------------------------------------------------ *)
(* Routines and files *)

let parse_routine st =
  skip_newlines st;
  let rloc = loc st in
  let rkind =
    match next st with
    | Token.TIdent "program" -> Decl.Program
    | Token.TIdent "subroutine" -> Decl.Subroutine
    | t -> err st "expected program or subroutine, found %s" (Token.to_string t)
  in
  let rname = ident st in
  let rparams =
    if accept st Token.TLparen then begin
      if accept st Token.TRparen then []
      else begin
        let rec go acc =
          let x = ident st in
          if accept st Token.TComma then go (x :: acc) else List.rev (x :: acc)
        in
        let ps = go [] in
        expect st Token.TRparen;
        ps
      end
    end
    else []
  in
  newline st;
  let decls = ref [] in
  let consts = ref [] in
  let commons = ref [] in
  let equivs = ref [] in
  let dists = ref [] in
  let rec decl_section () =
    skip_newlines st;
    match peek st with
    | Token.TIdent "integer" ->
        advance st;
        decls := !decls @ parse_declarators st ~ty:Types.Tint;
        decl_section ()
    | Token.TIdent "real" ->
        advance st;
        (if accept st Token.TStar then
           let w = int_lit st in
           if w <> 8 then err st "only real*8 is supported (got real*%d)" w);
        decls := !decls @ parse_declarators st ~ty:Types.Treal;
        decl_section ()
    | Token.TIdent "parameter" ->
        advance st;
        consts := !consts @ parse_parameter st;
        decl_section ()
    | Token.TIdent "common" ->
        advance st;
        commons := !commons @ [ parse_common st ];
        decl_section ()
    | Token.TIdent "equivalence" ->
        advance st;
        equivs := !equivs @ parse_equivalence st;
        decl_section ()
    | Token.TDirective "distribute" ->
        advance st;
        dists := !dists @ parse_distribute st ~reshape:false;
        decl_section ()
    | Token.TDirective "distribute_reshape" ->
        advance st;
        dists := !dists @ parse_distribute st ~reshape:true;
        decl_section ()
    | _ -> ()
  in
  decl_section ();
  let rbody = parse_stmts st ~stop:at_bare_end in
  expect_ident st "end";
  (if peek st <> Token.TEof then newline st);
  {
    Decl.rname;
    rkind;
    rparams;
    rdecls = !decls;
    rconsts = !consts;
    rcommons = !commons;
    requivs = !equivs;
    rdists = !dists;
    rbody;
    rloc;
  }

let parse_file ~fname src =
  match Lexer.tokenize ~fname src with
  | Error e -> Error e
  | Ok toks -> (
      let st = { toks = Array.of_list toks; pos = 0; fname } in
      try
        let routines = ref [] in
        skip_newlines st;
        while peek st <> Token.TEof do
          routines := parse_routine st :: !routines;
          skip_newlines st
        done;
        Ok { Decl.fname; routines = List.rev !routines }
      with Perror (l, msg) -> Error (Printf.sprintf "%s: %s" (Loc.to_string l) msg))

let parse_expr_string s =
  match Lexer.tokenize ~fname:"<expr>" s with
  | Error e -> Error e
  | Ok toks -> (
      let st = { toks = Array.of_list toks; pos = 0; fname = "<expr>" } in
      try
        let e = parse_expr st in
        Ok e
      with Perror (l, msg) -> Error (Printf.sprintf "%s: %s" (Loc.to_string l) msg))
