(* FastTrack-style happens-before race detection over the simulator's
   deterministic access stream, plus line/page false-sharing classification.

   Clock discipline. Every job processor p owns a vector clock vc.(p); the
   serial master runs as processor 0 and shares slot 0 with worker 0 (sound:
   the master is suspended while its workers run, so the two are never
   concurrent). Epochs compress a (clock, proc) pair into one int so the
   common shadow states are a single word.

   Phase alignment. The engine schedules workers by minimum local clock, so
   the access stream is ordered by simulated time, not by barrier phase: a
   worker can stream post-barrier accesses while a sibling is still short of
   the barrier. Accesses by a worker that has passed a not-yet-complete
   barrier are therefore buffered (packed ints plus a sentinel per further
   barrier crossing) and replayed when the barrier generation completes —
   i.e. when every expected worker has arrived. A generation that never
   completes (a worker with no iterations, or a dropped barrier) is closed
   at region join over the workers that did arrive: the latecomer's accesses
   keep their stale clocks, which is precisely what makes a dropped barrier
   observable as a race. *)

module Memsys = Ddsm_machine.Memsys
module Json = Ddsm_report.Json

type kind = Race | Line_sharing | Page_sharing

let kind_name = function
  | Race -> "data-race"
  | Line_sharing -> "line-false-sharing"
  | Page_sharing -> "page-false-sharing"

type report = {
  rep_kind : kind;
  rep_addr : int;
  rep_array : string;
  rep_first_proc : int;
  rep_first_write : bool;
  rep_first_region : string;
  rep_second_proc : int;
  rep_second_write : bool;
  rep_second_region : string;
}

(* per-word shadow: last write epoch, last read epoch — promoted to a full
   read vector only when genuinely concurrent reads are seen (FastTrack) *)
type shadow = {
  mutable w_ep : int; (* -1 = none *)
  mutable w_region : string;
  mutable r_ep : int; (* -1 = none; meaningful when r_vec = [||] *)
  mutable r_region : string;
  mutable r_vec : int array; (* [||] = epoch mode; else clock per proc, -1 none *)
}

(* per-line / per-page shadow for false sharing: the last write and last
   read, each with the sub-unit (word in a line, line in a page) it hit *)
type unit_shadow = {
  mutable uw_ep : int;
  mutable uw_sub : int;
  mutable uw_region : string;
  mutable ur_ep : int;
  mutable ur_sub : int;
  mutable ur_region : string;
}

(* growable per-processor replay buffer; -1 entries are barrier sentinels *)
type pbuf = {
  mutable evs : int array; (* (byte addr lsl 1) lor write, or -1 *)
  mutable regs : string array; (* region label per event ("" for sentinels) *)
  mutable len : int;
  mutable head : int;
}

type t = {
  nprocs : int;
  proc_bits : int;
  proc_mask : int;
  line_shift : int;
  page_shift : int;
  vc : int array array; (* nprocs x nprocs *)
  words : (int, shadow) Hashtbl.t;
  lines : (int, unit_shadow) Hashtbl.t;
  pages : (int, unit_shadow) Hashtbl.t;
  bufs : pbuf array;
  passed : int array; (* barrier arrivals per proc in the current region *)
  mutable completed : int; (* completed barrier generations *)
  mutable in_par : bool;
  mutable width : int; (* processors of the current region *)
  mutable races : report list; (* reverse detection order *)
  mutable sharing : report list;
  mutable n_races : int;
  mutable n_sharing : int;
  mutable dropped : int;
  seen : (string, unit) Hashtbl.t; (* report dedup *)
  mutable ranges : (int * int * string) list; (* lo, hi bytes (incl.), array *)
  mutable index : (int * int * string) array; (* sorted snapshot of ranges *)
  mutable index_stale : bool;
}

let reports_cap = 200

let log2 x =
  let rec go x acc = if x <= 1 then acc else go (x lsr 1) (acc + 1) in
  go x 0

let create ~nprocs ~line_bytes ~page_bytes () =
  if nprocs < 1 then invalid_arg "Sanitize.create: nprocs < 1";
  if line_bytes < 8 || page_bytes < line_bytes then
    invalid_arg "Sanitize.create: bad line/page geometry";
  let proc_bits = max 1 (log2 nprocs + if nprocs land (nprocs - 1) = 0 then 0 else 1) in
  {
    nprocs;
    proc_bits;
    proc_mask = (1 lsl proc_bits) - 1;
    line_shift = log2 line_bytes;
    page_shift = log2 page_bytes;
    vc = Array.init nprocs (fun _ -> Array.make nprocs 0);
    words = Hashtbl.create 4096;
    lines = Hashtbl.create 1024;
    pages = Hashtbl.create 256;
    bufs =
      Array.init nprocs (fun _ ->
          { evs = Array.make 64 0; regs = Array.make 64 ""; len = 0; head = 0 });
    passed = Array.make nprocs 0;
    completed = 0;
    in_par = false;
    width = 0;
    races = [];
    sharing = [];
    n_races = 0;
    n_sharing = 0;
    dropped = 0;
    seen = Hashtbl.create 64;
    ranges = [];
    index = [||];
    index_stale = false;
  }

(* ------------------------------------------------------------------ *)
(* Array attribution (off the hot path: only consulted when reporting) *)

let register_array t ~name ~word_ranges =
  List.iter
    (fun (lo, hi) -> t.ranges <- ((lo * 8, (hi * 8) + 7, name) : int * int * string) :: t.ranges)
    word_ranges;
  t.index_stale <- true

let owner t addr =
  if t.index_stale then begin
    let a = Array.of_list t.ranges in
    Array.sort (fun (l1, _, _) (l2, _, _) -> compare l1 l2) a;
    t.index <- a;
    t.index_stale <- false
  end;
  let a = t.index in
  let n = Array.length a in
  let rec bsearch lo hi best =
    if lo > hi then best
    else
      let mid = (lo + hi) / 2 in
      let l, _, _ = a.(mid) in
      if l <= addr then bsearch (mid + 1) hi (Some mid) else bsearch lo (mid - 1) best
  in
  match bsearch 0 (n - 1) None with
  | Some i ->
      let _, h, name = a.(i) in
      if addr <= h then name else "(unattributed)"
  | None -> "(unattributed)"

(* ------------------------------------------------------------------ *)
(* Epochs *)

let epoch t p = (t.vc.(p).(p) lsl t.proc_bits) lor p
let ep_proc t e = e land t.proc_mask
let ep_clock t e = e lsr t.proc_bits
let ep_leq t e myvc = ep_clock t e <= myvc.(ep_proc t e)

(* ------------------------------------------------------------------ *)
(* Reports *)

let record t kind ~addr ~fp ~fw ~freg ~sp ~sw ~sreg =
  let arr = owner t addr in
  let key =
    Printf.sprintf "%s|%s|%s|%b|%s|%b" (kind_name kind) arr freg fw sreg sw
  in
  if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.replace t.seen key ();
    if t.n_races + t.n_sharing >= reports_cap then t.dropped <- t.dropped + 1
    else begin
      let r =
        {
          rep_kind = kind;
          rep_addr = addr;
          rep_array = arr;
          rep_first_proc = fp;
          rep_first_write = fw;
          rep_first_region = freg;
          rep_second_proc = sp;
          rep_second_write = sw;
          rep_second_region = sreg;
        }
      in
      match kind with
      | Race ->
          t.races <- r :: t.races;
          t.n_races <- t.n_races + 1
      | Line_sharing | Page_sharing ->
          t.sharing <- r :: t.sharing;
          t.n_sharing <- t.n_sharing + 1
    end
  end

(* ------------------------------------------------------------------ *)
(* The core checks: one access by [p] with the phase-correct clock [myvc] *)

let word_shadow t w =
  match Hashtbl.find_opt t.words w with
  | Some s -> s
  | None ->
      let s = { w_ep = -1; w_region = ""; r_ep = -1; r_region = ""; r_vec = [||] } in
      Hashtbl.add t.words w s;
      s

let unit_shadow tbl u =
  match Hashtbl.find_opt tbl u with
  | Some s -> s
  | None ->
      let s =
        { uw_ep = -1; uw_sub = -1; uw_region = ""; ur_ep = -1; ur_sub = -1; ur_region = "" }
      in
      Hashtbl.add tbl u s;
      s

(* false-sharing check at one granularity: [sub] is the word within the
   line (or the line within the page); conflicts on the *same* sub-unit are
   the word-shadow's business, not false sharing *)
let check_unit t tbl u ~p ~sub ~write ~region ~addr ~myvc =
  let s = unit_shadow tbl u in
  let kind = if tbl == t.lines then Line_sharing else Page_sharing in
  if
    s.uw_ep >= 0 && ep_proc t s.uw_ep <> p && s.uw_sub <> sub
    && not (ep_leq t s.uw_ep myvc)
  then
    record t kind ~addr ~fp:(ep_proc t s.uw_ep) ~fw:true ~freg:s.uw_region ~sp:p
      ~sw:write ~sreg:region;
  if
    write && s.ur_ep >= 0
    && ep_proc t s.ur_ep <> p
    && s.ur_sub <> sub
    && not (ep_leq t s.ur_ep myvc)
  then
    record t kind ~addr ~fp:(ep_proc t s.ur_ep) ~fw:false ~freg:s.ur_region ~sp:p
      ~sw:true ~sreg:region;
  if write then begin
    s.uw_ep <- epoch t p;
    s.uw_sub <- sub;
    s.uw_region <- region
  end
  else begin
    s.ur_ep <- epoch t p;
    s.ur_sub <- sub;
    s.ur_region <- region
  end

let process t ~p ~addr ~write ~region =
  let myvc = t.vc.(p) in
  let w = addr lsr 3 in
  let s = word_shadow t w in
  (* write-read / write-write: the stored write must happen-before us *)
  if s.w_ep >= 0 && ep_proc t s.w_ep <> p && not (ep_leq t s.w_ep myvc) then
    record t Race ~addr ~fp:(ep_proc t s.w_ep) ~fw:true ~freg:s.w_region ~sp:p
      ~sw:write ~sreg:region;
  if write then begin
    (* read-write: every stored read must happen-before us *)
    if s.r_vec <> [||] then
      Array.iteri
        (fun q c ->
          if c >= 0 && q <> p && c > myvc.(q) then
            record t Race ~addr ~fp:q ~fw:false ~freg:s.r_region ~sp:p ~sw:true
              ~sreg:region)
        s.r_vec
    else if s.r_ep >= 0 && ep_proc t s.r_ep <> p && not (ep_leq t s.r_ep myvc)
    then
      record t Race ~addr ~fp:(ep_proc t s.r_ep) ~fw:false ~freg:s.r_region
        ~sp:p ~sw:true ~sreg:region;
    s.w_ep <- epoch t p;
    s.w_region <- region;
    s.r_ep <- -1;
    s.r_vec <- [||]
  end
  else begin
    (* record the read: stay an epoch when reads are totally ordered,
       promote to a read vector on the first concurrent pair (FastTrack) *)
    if s.r_vec <> [||] then s.r_vec.(p) <- max s.r_vec.(p) t.vc.(p).(p)
    else if s.r_ep < 0 || ep_proc t s.r_ep = p || ep_leq t s.r_ep myvc then begin
      s.r_ep <- epoch t p;
      s.r_region <- region
    end
    else begin
      let v = Array.make t.nprocs (-1) in
      v.(ep_proc t s.r_ep) <- ep_clock t s.r_ep;
      v.(p) <- t.vc.(p).(p);
      s.r_vec <- v;
      s.r_region <- region
    end
  end;
  check_unit t t.lines (addr lsr t.line_shift) ~p ~sub:w ~write ~region ~addr
    ~myvc;
  check_unit t t.pages (addr lsr t.page_shift) ~p ~sub:(addr lsr t.line_shift)
    ~write ~region ~addr ~myvc

(* ------------------------------------------------------------------ *)
(* Replay buffers *)

let push_buf b ev region =
  if b.len = Array.length b.evs then begin
    let evs = Array.make (2 * b.len) 0 and regs = Array.make (2 * b.len) "" in
    Array.blit b.evs 0 evs 0 b.len;
    Array.blit b.regs 0 regs 0 b.len;
    b.evs <- evs;
    b.regs <- regs
  end;
  b.evs.(b.len) <- ev;
  b.regs.(b.len) <- region;
  b.len <- b.len + 1

(* replay one barrier phase: everything up to (and consuming) the next
   sentinel, with [p]'s freshly advanced clock *)
let drain_segment t p =
  let b = t.bufs.(p) in
  let stop = ref false in
  while (not !stop) && b.head < b.len do
    let ev = b.evs.(b.head) in
    let region = b.regs.(b.head) in
    b.regs.(b.head) <- ""; (* release the string *)
    b.head <- b.head + 1;
    if ev < 0 then stop := true
    else process t ~p ~addr:(ev lsr 1) ~write:(ev land 1 = 1) ~region
  done;
  if b.head = b.len then begin
    b.head <- 0;
    b.len <- 0
  end

let blocked t p = t.in_par && t.passed.(p) > t.completed

(* ------------------------------------------------------------------ *)
(* Structural events *)

let complete_generation t procs =
  let j = Array.make t.nprocs 0 in
  List.iter
    (fun p ->
      let v = t.vc.(p) in
      for i = 0 to t.nprocs - 1 do
        if v.(i) > j.(i) then j.(i) <- v.(i)
      done)
    procs;
  List.iter
    (fun p ->
      Array.blit j 0 t.vc.(p) 0 t.nprocs;
      t.vc.(p).(p) <- j.(p) + 1)
    procs;
  t.completed <- t.completed + 1;
  List.iter (fun p -> drain_segment t p) procs

let all_procs t = List.init t.width Fun.id

let try_complete t =
  let all_arrived () =
    let ok = ref true in
    for p = 0 to t.width - 1 do
      if t.passed.(p) <= t.completed then ok := false
    done;
    !ok
  in
  while t.in_par && all_arrived () do
    complete_generation t (all_procs t)
  done

let on_barrier t ~proc =
  if t.in_par && proc < t.width then begin
    if blocked t proc then push_buf t.bufs.(proc) (-1) "";
    t.passed.(proc) <- t.passed.(proc) + 1;
    try_complete t
  end

let on_access t ~region (ev : Memsys.access_event) =
  let p = ev.Memsys.ev_proc in
  if p < t.nprocs then
    if blocked t p then
      push_buf t.bufs.(p)
        ((ev.Memsys.ev_addr lsl 1) lor if ev.Memsys.ev_write then 1 else 0)
        region
    else process t ~p ~addr:ev.Memsys.ev_addr ~write:ev.Memsys.ev_write ~region

let on_fork t ~region:_ ~nprocs =
  let n = min nprocs t.nprocs in
  let m = Array.copy t.vc.(0) in
  for p = 0 to n - 1 do
    Array.blit m 0 t.vc.(p) 0 t.nprocs;
    t.vc.(p).(p) <- m.(p) + 1
  done;
  t.in_par <- true;
  t.width <- n;
  t.completed <- 0;
  Array.fill t.passed 0 t.nprocs 0

let on_join t =
  (* close generations that never completed machine-wide over whoever did
     arrive; latecomers keep their stale clocks (that is the bug report) *)
  let rec close () =
    let subset = ref [] in
    for p = t.width - 1 downto 0 do
      if t.passed.(p) > t.completed then subset := p :: !subset
    done;
    match !subset with
    | [] -> ()
    | ps ->
        complete_generation t ps;
        close ()
  in
  if t.in_par then begin
    close ();
    (* defensively flush anything left (buffers should be empty here) *)
    for p = 0 to t.width - 1 do
      t.bufs.(p).evs.(t.bufs.(p).len) <- t.bufs.(p).evs.(t.bufs.(p).len) (* no-op *)
    done;
    for p = 0 to t.width - 1 do
      drain_segment t p
    done;
    let m = Array.make t.nprocs 0 in
    for p = 0 to t.width - 1 do
      let v = t.vc.(p) in
      for i = 0 to t.nprocs - 1 do
        if v.(i) > m.(i) then m.(i) <- v.(i)
      done
    done;
    Array.blit m 0 t.vc.(0) 0 t.nprocs;
    t.vc.(0).(0) <- m.(0) + 1;
    t.in_par <- false;
    t.width <- 0;
    t.completed <- 0;
    Array.fill t.passed 0 t.nprocs 0
  end

(* ------------------------------------------------------------------ *)
(* Results *)

let races t = List.rev t.races
let false_sharing t = List.rev t.sharing
let dropped t = t.dropped
let is_clean t = t.races = [] && t.dropped = 0

let access_desc w = if w then "write" else "read"

let report_obj r =
  Json.Obj
    [
      ("kind", Json.Str (kind_name r.rep_kind));
      ("addr", Json.Int r.rep_addr);
      ("array", Json.Str r.rep_array);
      ( "first",
        Json.Obj
          [
            ("proc", Json.Int r.rep_first_proc);
            ("access", Json.Str (access_desc r.rep_first_write));
            ("region", Json.Str r.rep_first_region);
          ] );
      ( "second",
        Json.Obj
          [
            ("proc", Json.Int r.rep_second_proc);
            ("access", Json.Str (access_desc r.rep_second_write));
            ("region", Json.Str r.rep_second_region);
          ] );
    ]

let report_json t =
  Json.Obj
    [
      ("races", Json.Int t.n_races);
      ("false_sharing", Json.Int t.n_sharing);
      ("dropped", Json.Int t.dropped);
      ("reports", Json.List (List.map report_obj (races t @ false_sharing t)));
    ]

let pp_one ppf r =
  let what =
    match r.rep_kind with
    | Race -> "data race"
    | Line_sharing -> "false sharing (cache line)"
    | Page_sharing -> "false sharing (page)"
  in
  Format.fprintf ppf "%s: array %s: p%d %s (%s) unordered with p%d %s (%s) at byte %d"
    what r.rep_array r.rep_first_proc
    (access_desc r.rep_first_write)
    r.rep_first_region r.rep_second_proc
    (access_desc r.rep_second_write)
    r.rep_second_region r.rep_addr

let pp_report ppf t =
  Format.fprintf ppf "sanitizer: %d data race(s), %d false-sharing pair(s)%s@."
    t.n_races t.n_sharing
    (if t.dropped > 0 then Printf.sprintf " (%d report(s) dropped)" t.dropped
     else "");
  List.iter (fun r -> Format.fprintf ppf "  %a@." pp_one r) (races t);
  List.iter (fun r -> Format.fprintf ppf "  %a@." pp_one r) (false_sharing t)
