(** Dynamic happens-before sanitizer: a deterministic FastTrack-style
    vector-clock race detector plus a cache-line/page false-sharing
    classifier, driven by the machine's access probe
    ({!Ddsm_machine.Memsys.set_probe}) and the runtime's event hook.

    Happens-before edges come from the engine's structural events:
    - fork of a parallel region orders the master's preceding accesses
      before every worker ({!on_fork});
    - join orders every worker's accesses before the master's subsequent
      ones ({!on_join});
    - a barrier (or an in-region redistribution) orders each arriving
      processor's preceding accesses before every other arriver's
      subsequent ones ({!on_barrier}).

    Two conflicting accesses (same word, two processors, at least one
    write) with neither ordered before the other are a **data race**.
    Conflicting unordered accesses to *distinct* words sharing an L2 line
    (or distinct lines sharing a page) are not races — the program's
    values are well-defined — but they are the paper's §1 layout problem:
    the line (page) ping-pongs between caches (nodes). These are reported
    separately as **false sharing** so "my program is wrong" and "my
    layout is slow" stay distinct diagnoses.

    Determinism: the detector consumes the simulator's deterministic
    access stream and keeps its own phase alignment (accesses raced ahead
    of an incomplete barrier are buffered per processor and replayed when
    the barrier completes), so a given program + configuration always
    yields the same report. The disabled path costs nothing: no probe is
    installed unless a sanitizer is attached. *)

type kind =
  | Race  (** unordered conflicting accesses to one word *)
  | Line_sharing
      (** unordered conflicting accesses to distinct words of one L2 line *)
  | Page_sharing
      (** unordered conflicting accesses to distinct lines of one page *)

val kind_name : kind -> string

type report = {
  rep_kind : kind;
  rep_addr : int;  (** byte address of the access that completed the pair *)
  rep_array : string;  (** owning array, or ["(unattributed)"] *)
  rep_first_proc : int;
  rep_first_write : bool;
  rep_first_region : string;  (** [routine:line] label of the earlier access *)
  rep_second_proc : int;
  rep_second_write : bool;
  rep_second_region : string;
}

type t

val create : nprocs:int -> line_bytes:int -> page_bytes:int -> unit -> t
(** [nprocs] is the job's processor count (the width of every parallel
    region); [line_bytes]/[page_bytes] give the L2-line and page geometry
    used to classify false sharing (both powers of two). *)

val register_array : t -> name:string -> word_ranges:(int * int) list -> unit
(** Add an array's owned word ranges (inclusive [(lo, hi)] word addresses)
    so reports can name the array a conflict landed on. *)

val on_access : t -> region:string -> Ddsm_machine.Memsys.access_event -> unit
(** Feed one memory access, tagged with the parallel region executing it.
    Accesses by a processor that has passed a not-yet-complete barrier are
    buffered and replayed at the barrier's completion (or at region join,
    with stale clocks, if the barrier never completes — which is exactly
    how a dropped barrier is detected). *)

val on_fork : t -> region:string -> nprocs:int -> unit
(** A depth-0 parallel region forks [nprocs] workers. *)

val on_join : t -> unit
(** The current parallel region joined. Any barrier generation that never
    completed machine-wide is closed over the processors that did arrive
    (latecomers' accesses stay unordered), remaining buffered accesses are
    replayed, and the master's clock absorbs every worker's. *)

val on_barrier : t -> proc:int -> unit
(** Processor [proc] passed a barrier (or an in-region redistribution).
    Ignored outside a parallel region — serial code is ordered by program
    order already. *)

val races : t -> report list
(** Data races observed so far, in detection order. *)

val false_sharing : t -> report list
(** Line/page false-sharing pairs observed so far, in detection order.
    Deduplicated per (kind, array, region pair, access kinds). *)

val dropped : t -> int
(** Reports suppressed by the per-run cap (the first
    {!val-reports_cap} survive). *)

val is_clean : t -> bool
(** No data races and nothing dropped by the cap. False sharing does not
    make a run unclean — the program's values are still well-defined. *)

val reports_cap : int

val report_json : t -> Ddsm_report.Json.t
(** Machine-readable report: counts plus one object per surviving race and
    false-sharing pair. *)

val pp_report : Format.formatter -> t -> unit
(** Human-readable summary: every race, then the false-sharing pairs. *)
