(* Line-framed client for the pfld daemon: used by [pflrun --connect],
   the service bench, the concurrency tests, and the CI smoke. Blocking
   I/O — callers drive one request/reply conversation per connection (the
   daemon itself never blocks on a slow client thanks to round-based
   scheduling). *)

module U = Unix
module Json = Ddsm_report.Json

type t = { fd : U.file_descr; rbuf : Buffer.t }

let connect ~sock =
  let fd = U.socket U.PF_UNIX U.SOCK_STREAM 0 in
  match U.connect fd (U.ADDR_UNIX sock) with
  | () -> Ok { fd; rbuf = Buffer.create 4096 }
  | exception U.Unix_error (e, _, _) ->
      U.close fd;
      Error
        (Printf.sprintf "cannot connect to %s: %s (is pfld running?)" sock
           (U.error_message e))

let close t = try U.close t.fd with U.Unix_error _ -> ()

let send t j =
  let s = Json.to_string j ^ "\n" in
  let n = String.length s in
  let rec go off =
    if off < n then go (off + U.write_substring t.fd s off (n - off))
  in
  go 0

(* one complete reply line; [Error] on a daemon that went away mid-line *)
let recv_line t =
  let take_line () =
    let data = Buffer.contents t.rbuf in
    match String.index_opt data '\n' with
    | None -> None
    | Some nl ->
        Buffer.clear t.rbuf;
        Buffer.add_substring t.rbuf data (nl + 1)
          (String.length data - nl - 1);
        Some (String.sub data 0 nl)
  in
  let bytes = Bytes.create 65536 in
  let rec go () =
    match take_line () with
    | Some line -> Ok line
    | None -> (
        match U.read t.fd bytes 0 (Bytes.length bytes) with
        | 0 -> Error "connection closed by pfld"
        | n ->
            Buffer.add_subbytes t.rbuf bytes 0 n;
            go ()
        | exception U.Unix_error (e, _, _) ->
            Error (Printf.sprintf "read from pfld failed: %s" (U.error_message e)))
  in
  go ()

let recv t =
  match recv_line t with
  | Error _ as e -> e
  | Ok line -> (
      match Json.of_string line with
      | Ok j -> Ok j
      | Error e -> Error (Printf.sprintf "malformed reply %S: %s" line e))

let rpc t j =
  send t j;
  recv t
