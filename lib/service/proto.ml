(* The pfld wire protocol: one JSON object per line in each direction.

   Requests:
     {"op":"run","id":N,"source":"...",...}   compile + simulate
     {"op":"stats","id":N}                    cache/scheduling counters
     {"op":"ping","id":N}                     liveness probe
     {"op":"shutdown","id":N}                 drain and stop the daemon

   Run replies deliberately carry no cache/timing metadata — a cached
   reply is byte-identical to the reply computed cold, and both match the
   one-shot [pflrun] output for the same program and configuration. Hit
   rates are observable through the [stats] op instead.

   Cache keys are content-addressed digests: the compile key covers the
   program source and the optimization flags; the simulate key adds the
   machine configuration. The display name ([fname]) is deliberately NOT
   part of either key, so identical programs submitted under different
   names share one compilation. *)

module Json = Ddsm_report.Json
module Flags = Ddsm_transform.Flags

type run_req = {
  id : int;
  source : string;
  fname : string;  (** display name for compile diagnostics, not keyed *)
  nprocs : int;
  policy : string;  (** canonical: "first-touch" or "round-robin" *)
  machine : string;  (** canonical: "origin" or "scaled:<factor>" *)
  heap_words : int;
  max_cycles : int option;  (** request's own budget; the server caps it *)
  flags_off : string list;  (** canonical (sorted, deduped) disabled passes *)
}

type request = Run of run_req | Stats of int | Ping of int | Shutdown of int

(* ------------------------------------------------------------------ *)
(* Field accessors over a parsed JSON object *)

let field obj k =
  match obj with Json.Obj fs -> List.assoc_opt k fs | _ -> None

let str_field obj k =
  match field obj k with Some (Json.Str s) -> Some s | _ -> None

let int_field obj k =
  match field obj k with Some (Json.Int i) -> Some i | _ -> None

(* ------------------------------------------------------------------ *)
(* Validation: canonicalize the same spellings the pflrun CLI accepts *)

let canon_policy = function
  | "first-touch" | "ft" -> Ok "first-touch"
  | "round-robin" | "rr" -> Ok "round-robin"
  | s -> Error (Printf.sprintf "unknown policy %S (first-touch|round-robin)" s)

let canon_machine s =
  if s = "origin" then Ok "origin"
  else
    match Scanf.sscanf_opt s "scaled:%d%!" (fun f -> f) with
    | Some f when f >= 1 -> Ok (Printf.sprintf "scaled:%d" f)
    | _ -> Error (Printf.sprintf "unknown machine %S (origin|scaled:<factor>)" s)

let flag_names =
  [ "tile"; "peel"; "skew"; "hoist"; "cse"; "fp-divmod"; "interchange";
    "inspector" ]

let canon_flags_off off =
  match List.find_opt (fun f -> not (List.mem f flag_names)) off with
  | Some bad ->
      Error
        (Printf.sprintf "unknown optimization flag %S (%s)" bad
           (String.concat "|" flag_names))
  | None -> Ok (List.sort_uniq compare off)

let flags_of_off off =
  List.fold_left
    (fun f name ->
      match name with
      | "tile" -> { f with Flags.tile = false }
      | "peel" -> { f with Flags.peel = false }
      | "skew" -> { f with Flags.skew = false }
      | "hoist" -> { f with Flags.hoist = false }
      | "cse" -> { f with Flags.cse = false }
      | "fp-divmod" -> { f with Flags.fp_divmod = false }
      | "interchange" -> { f with Flags.interchange = false }
      | "inspector" -> { f with Flags.inspector = false }
      | _ -> f)
    Flags.all_on off

(* ------------------------------------------------------------------ *)
(* Parsing a request line *)

let run_of_json j =
  let ( let* ) = Result.bind in
  let* id =
    match int_field j "id" with
    | Some i -> Ok i
    | None -> Error "run request: missing integer \"id\""
  in
  let* source =
    match str_field j "source" with
    | Some s -> Ok s
    | None -> Error "run request: missing string \"source\""
  in
  let fname = Option.value (str_field j "fname") ~default:"<service>" in
  let* nprocs =
    match (field j "nprocs", int_field j "nprocs") with
    | None, _ -> Ok 8
    | Some _, Some n when n >= 1 -> Ok n
    | Some _, _ -> Error "run request: \"nprocs\" must be a positive integer"
  in
  let* policy =
    canon_policy (Option.value (str_field j "policy") ~default:"first-touch")
  in
  let* machine =
    canon_machine (Option.value (str_field j "machine") ~default:"scaled:64")
  in
  let* heap_words =
    match (field j "heap_words", int_field j "heap_words") with
    | None, _ -> Ok (1 lsl 24)
    | Some _, Some n when n >= 1 -> Ok n
    | Some _, _ ->
        Error "run request: \"heap_words\" must be a positive integer"
  in
  let* max_cycles =
    match (field j "max_cycles", int_field j "max_cycles") with
    | None, _ -> Ok None
    | Some _, Some n when n >= 1 -> Ok (Some n)
    | Some _, _ ->
        Error "run request: \"max_cycles\" must be a positive integer"
  in
  let* flags_off =
    match field j "flags_off" with
    | None -> Ok []
    | Some (Json.List xs) ->
        let* names =
          List.fold_left
            (fun acc x ->
              let* acc = acc in
              match x with
              | Json.Str s -> Ok (s :: acc)
              | _ -> Error "run request: \"flags_off\" must be strings")
            (Ok []) xs
        in
        canon_flags_off (List.rev names)
    | Some _ -> Error "run request: \"flags_off\" must be a list of strings"
  in
  Ok
    (Run
       {
         id; source; fname; nprocs; policy; machine; heap_words; max_cycles;
         flags_off;
       })

let request_of_line line =
  match Json.of_string line with
  | Error e -> Error e
  | Ok j -> (
      let id = Option.value (int_field j "id") ~default:0 in
      match str_field j "op" with
      | Some "run" -> run_of_json j
      | Some "stats" -> Ok (Stats id)
      | Some "ping" -> Ok (Ping id)
      | Some "shutdown" -> Ok (Shutdown id)
      | Some op -> Error (Printf.sprintf "unknown op %S" op)
      | None -> Error "missing string \"op\"")

let run_to_json r =
  let base =
    [
      ("op", Json.Str "run");
      ("id", Json.Int r.id);
      ("source", Json.Str r.source);
      ("fname", Json.Str r.fname);
      ("nprocs", Json.Int r.nprocs);
      ("policy", Json.Str r.policy);
      ("machine", Json.Str r.machine);
      ("heap_words", Json.Int r.heap_words);
    ]
  in
  let cycles =
    match r.max_cycles with
    | None -> []
    | Some c -> [ ("max_cycles", Json.Int c) ]
  in
  let flags =
    match r.flags_off with
    | [] -> []
    | off -> [ ("flags_off", Json.List (List.map (fun f -> Json.Str f) off)) ]
  in
  Json.Obj (base @ cycles @ flags)

(* ------------------------------------------------------------------ *)
(* Content-addressed cache keys *)

let digest_of parts = Digest.to_hex (Digest.string (String.concat "\x00" parts))

let compile_key r = digest_of (("compile" :: r.source :: r.flags_off))

let sim_key r =
  digest_of
    [
      "sim"; compile_key r; string_of_int r.nprocs; r.policy; r.machine;
      string_of_int r.heap_words;
      (match r.max_cycles with None -> "-" | Some c -> string_of_int c);
    ]

(* ------------------------------------------------------------------ *)
(* Replies. Bodies are id-less field lists so the daemon can memoize one
   body and stamp each requester's id on the way out; field order is
   fixed, which keeps identical requests byte-identical on the wire. *)

let ok_body ~cycles ~prints =
  [
    ("status", Json.Str "ok");
    ("cycles", Json.Int cycles);
    ("prints", Json.List (List.map (fun p -> Json.Str p) prints));
  ]

let error_body ~code ~phase ~internal msg =
  [
    ("status", Json.Str "error");
    ("code", Json.Str code);
    ("phase", Json.Str phase);
    ("internal", Json.Bool internal);
    ("error", Json.Str msg);
  ]

let reply ~id body = Json.Obj (("id", Json.Int id) :: body)
