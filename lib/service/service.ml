(* pfld — the persistent compile-and-simulate daemon.

   One control thread owns the Unix-domain listen socket, every client
   connection, and both caches; worker domains (the Jobs pool) only run
   self-contained simulations, the same fan-out contract every sweep in
   this repo relies on. Scheduling is round-based:

     - the control thread drains readable sockets into per-client FIFO
       queues of parsed requests;
     - a round takes requests round-robin, one per client per sweep, so
       no client's batch can starve another's (a client that arrives
       while a round computes joins the very next round);
     - within a round, requests are deduplicated by simulate key: each
       distinct piece of work runs once on the Jobs pool, and every
       requester gets a byte-identical copy of the one reply;
     - every simulation runs under a cycle budget (the server cap,
       further lowered by the request's own max_cycles) enforced by the
       engine's watchdog/Diag machinery, so a hostile request ends in a
       structured "cycle-budget" error reply — the worker is not
       poisoned, because each job builds a fresh runtime.

   Failure replies carry the same Diag codes as the CLIs: [internal]
   false is the exit-2 class (user program errors, budget exhaustion),
   true the exit-3 class (simulator bugs). *)

module U = Unix
module Ddsm = Ddsm_core.Ddsm
module Diag = Ddsm_core.Ddsm.Diag
module Json = Ddsm_report.Json
module Jobs = Ddsm_util.Jobs
module Config = Ddsm_machine.Config
module Pagetable = Ddsm_machine.Pagetable

type config = {
  sock_path : string;
  workers : int;  (** Jobs-pool width for non-cached simulations *)
  cache_dir : string option;  (** persisted compile cache; None = memory *)
  budget : int;  (** per-request simulated-cycle cap; 0 = uncapped *)
  verbose : bool;
  handle_signals : bool;
      (** install SIGTERM/SIGINT handlers for clean shutdown — true in the
          pfld binary, false when embedded in tests/benches *)
}

let default_budget = 100_000_000

type client = {
  fd : U.file_descr;
  inbuf : Buffer.t;  (** bytes up to the last incomplete line *)
  pending : Proto.run_req Queue.t;
  mutable alive : bool;
}

type t = {
  cfg : config;
  cache : Cache.t;
  lfd : U.file_descr;
  mutable clients : client list;  (** accept order — the round-robin order *)
  mutable stop : bool;
  mutable shutdown_ack : (client * int) option;
      (** acked only after the drain, so "ok" means "everything queued
          before the shutdown has been answered" *)
  mutable requests : int;
  mutable rounds : int;
}

(* ------------------------------------------------------------------ *)
(* Socket plumbing *)

let write_all c s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match U.write_substring c.fd s off (n - off) with
      | written -> go (off + written)
      | exception U.Unix_error ((U.EPIPE | U.ECONNRESET), _, _) ->
          c.alive <- false
  in
  if c.alive then go 0

let send c j = write_all c (Json.to_string j ^ "\n")

(* ------------------------------------------------------------------ *)
(* One simulation, self-contained (runs on a worker domain) *)

let config_of_machine ~machine ~nprocs =
  if machine = "origin" then Config.origin2000 ~nprocs
  else
    Scanf.sscanf machine "scaled:%d" (fun factor ->
        Config.scaled ~nprocs ~factor ())

let machine_of_string machine =
  if machine = "origin" then Ddsm.Origin2000
  else Scanf.sscanf machine "scaled:%d" (fun f -> Ddsm.Scaled f)

let policy_of_string = function
  | "round-robin" -> Pagetable.Round_robin
  | _ -> Pagetable.First_touch

let effective_budget cfg (r : Proto.run_req) =
  match (cfg.budget, r.max_cycles) with
  | 0, c -> c
  | b, None -> Some b
  | b, Some c -> Some (min b c)

let simulate cfg linked (r : Proto.run_req) =
  match Config.validate (config_of_machine ~machine:r.machine ~nprocs:r.nprocs) with
  | Error e -> Error (Diag.user ~phase:"config" e)
  | Ok () ->
      let prog = Ddsm.prog_of_linked linked in
      let rt =
        Ddsm.make_rt
          ~machine:(machine_of_string r.machine)
          ~policy:(policy_of_string r.policy)
          ~heap_words:r.heap_words ~nprocs:r.nprocs ()
      in
      Ddsm.run prog ~rt ?max_cycles:(effective_budget cfg r) ()

let body_of_diag (d : Diag.t) =
  Proto.error_body ~code:(Diag.code d) ~phase:d.Diag.phase
    ~internal:(Diag.is_internal d) (Diag.to_string d)

(* ------------------------------------------------------------------ *)
(* Round scheduling *)

(* take up to [max_n] requests, one per client per sweep (round-robin) *)
let build_round t max_n =
  let round = ref [] in
  let count = ref 0 in
  let took = ref true in
  while !took && !count < max_n do
    took := false;
    List.iter
      (fun c ->
        if !count < max_n && c.alive && not (Queue.is_empty c.pending) then begin
          round := (c, Queue.pop c.pending) :: !round;
          took := true;
          incr count
        end)
      t.clients
  done;
  List.rev !round

let process_round t round =
  t.rounds <- t.rounds + 1;
  let cache = t.cache in
  (* resolve the sim cache; collect distinct uncached work in round order *)
  let work = ref [] (* (sim key, representative request), reversed *) in
  let entries =
    List.map
      (fun (c, (r : Proto.run_req)) ->
        let key = Proto.sim_key r in
        match Cache.find_sim cache ~key with
        | Some body ->
            cache.Cache.sim_hits <- cache.Cache.sim_hits + 1;
            (c, r, `Ready body)
        | None ->
            if List.mem_assoc key !work then
              (* a sibling in this round computes it: a hit, not a miss *)
              cache.Cache.sim_hits <- cache.Cache.sim_hits + 1
            else begin
              cache.Cache.sim_misses <- cache.Cache.sim_misses + 1;
              work := (key, r) :: !work
            end;
            (c, r, `Pending key))
      round
  in
  let work = List.rev !work in
  (* ensure every distinct compile key is compiled (control thread: the
     compiler pipeline is cheap next to simulation and not audited for
     domain-parallel use; simulations are where the Jobs pool pays off) *)
  let compiled = Hashtbl.create 8 in
  (* compile key -> (linked, diag-body) result *)
  List.iter
    (fun (_, (r : Proto.run_req)) ->
      let ckey = Proto.compile_key r in
      if not (Hashtbl.mem compiled ckey) then
        let outcome =
          match Cache.find_compiled cache ~key:ckey with
          | Some linked -> Ok linked
          | None -> (
              let flags = Proto.flags_of_off r.flags_off in
              match Ddsm.compile_source ~flags ~fname:r.fname r.source with
              | Error es ->
                  Error
                    (Proto.error_body ~code:"user" ~phase:"compile"
                       ~internal:false (String.concat "\n" es))
              | Ok obj -> (
                  match Ddsm.link [ obj ] with
                  | Error es ->
                      Error
                        (Proto.error_body ~code:"user" ~phase:"link"
                           ~internal:false (String.concat "\n" es))
                  | Ok (_, linked) ->
                      Cache.store_compiled cache ~key:ckey linked;
                      Ok linked))
        in
        Hashtbl.add compiled ckey outcome)
    work;
  (* fan the distinct simulations out over the Jobs pool; each job owns a
     fresh runtime, so results in work-list order are deterministic *)
  let results =
    Jobs.map ~jobs:t.cfg.workers
      (fun (_, (r : Proto.run_req)) ->
        match Hashtbl.find compiled (Proto.compile_key r) with
        | Error body -> body
        | Ok linked -> (
            match simulate t.cfg linked r with
            | Ok o ->
                Proto.ok_body ~cycles:o.Ddsm.Engine.cycles
                  ~prints:o.Ddsm.Engine.prints
            | Error d -> body_of_diag d))
      work
  in
  List.iter2
    (fun (key, _) body -> Cache.store_sim cache ~key body)
    work results;
  (* reply in round order — per client that is request order *)
  List.iter
    (fun (c, (r : Proto.run_req), res) ->
      let body =
        match res with
        | `Ready body -> body
        | `Pending key -> (
            match Cache.find_sim cache ~key with
            | Some body -> body
            | None -> assert false)
      in
      send c (Proto.reply ~id:r.Proto.id body))
    entries

(* ------------------------------------------------------------------ *)
(* Control loop *)

let stats_reply t ~id =
  Proto.reply ~id
    ([
       ("status", Json.Str "ok");
       ("requests", Json.Int t.requests);
       ("rounds", Json.Int t.rounds);
       ("workers", Json.Int t.cfg.workers);
     ]
    @ Cache.stats_fields t.cache)

let handle_line t c line =
  let line = String.trim line in
  if line <> "" then
    match Proto.request_of_line line with
    | Error e ->
        send c
          (Json.Obj
             (("id", Json.Null)
             :: Proto.error_body ~code:"user" ~phase:"proto" ~internal:false e))
    | Ok (Proto.Run r) ->
        t.requests <- t.requests + 1;
        Queue.push r c.pending
    | Ok (Proto.Stats id) -> send c (stats_reply t ~id)
    | Ok (Proto.Ping id) ->
        send c (Proto.reply ~id [ ("status", Json.Str "ok") ])
    | Ok (Proto.Shutdown id) ->
        t.stop <- true;
        t.shutdown_ack <- Some (c, id)

let read_client t c =
  let bytes = Bytes.create 65536 in
  match U.read c.fd bytes 0 (Bytes.length bytes) with
  | 0 | (exception U.Unix_error (U.ECONNRESET, _, _)) ->
      c.alive <- false;
      (* a dead client's queued work is dropped: nobody can receive it *)
      Queue.clear c.pending;
      U.close c.fd
  | n ->
      Buffer.add_subbytes c.inbuf bytes 0 n;
      (* split off every complete line *)
      let data = Buffer.contents c.inbuf in
      Buffer.clear c.inbuf;
      let rec go start =
        match String.index_from_opt data start '\n' with
        | Some nl ->
            handle_line t c (String.sub data start (nl - start));
            go (nl + 1)
        | None ->
            Buffer.add_substring c.inbuf data start
              (String.length data - start)
      in
      go 0

let log t fmt =
  Printf.ksprintf
    (fun m -> if t.cfg.verbose then Printf.eprintf "pfld: %s\n%!" m)
    fmt

let create cfg =
  if Sys.file_exists cfg.sock_path then Sys.remove cfg.sock_path;
  let lfd = U.socket U.PF_UNIX U.SOCK_STREAM 0 in
  U.bind lfd (U.ADDR_UNIX cfg.sock_path);
  U.listen lfd 64;
  {
    cfg;
    cache = Cache.create ?dir:cfg.cache_dir ();
    lfd;
    clients = [];
    stop = false;
    shutdown_ack = None;
    requests = 0;
    rounds = 0;
  }

let serve cfg =
  let t = create cfg in
  let restore = ref [] in
  let install signal behavior =
    match Sys.signal signal behavior with
    | old -> restore := (signal, old) :: !restore
    | exception (Invalid_argument _ | Sys_error _) -> ()
  in
  (* writes to a vanished client must surface as EPIPE, not kill us *)
  install Sys.sigpipe Sys.Signal_ignore;
  if cfg.handle_signals then begin
    let on_stop = Sys.Signal_handle (fun _ -> t.stop <- true) in
    install Sys.sigterm on_stop;
    install Sys.sigint on_stop
  end;
  log t "listening on %s (workers %d, budget %s, cache %s)" cfg.sock_path
    cfg.workers
    (if cfg.budget = 0 then "uncapped" else string_of_int cfg.budget)
    (match cfg.cache_dir with None -> "memory-only" | Some d -> d);
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun c -> if c.alive then U.close c.fd) t.clients;
      U.close t.lfd;
      (try Sys.remove cfg.sock_path with Sys_error _ -> ());
      List.iter (fun (s, b) -> ignore (Sys.signal s b)) !restore;
      log t "served %d request(s) in %d round(s): %d sim hit(s), %d miss(es)"
        t.requests t.rounds t.cache.Cache.sim_hits t.cache.Cache.sim_misses)
    (fun () ->
      while not t.stop do
        let fds =
          t.lfd :: List.filter_map (fun c -> if c.alive then Some c.fd else None) t.clients
        in
        let backlog =
          List.exists (fun c -> not (Queue.is_empty c.pending)) t.clients
        in
        (* with a backlog, only poll for new arrivals between rounds *)
        (match U.select fds [] [] (if backlog then 0.0 else 0.2) with
        | exception U.Unix_error (U.EINTR, _, _) -> ()
        | ready, _, _ ->
            List.iter
              (fun fd ->
                if fd == t.lfd then begin
                  let cfd, _ = U.accept t.lfd in
                  t.clients <-
                    t.clients
                    @ [
                        {
                          fd = cfd;
                          inbuf = Buffer.create 256;
                          pending = Queue.create ();
                          alive = true;
                        };
                      ];
                  log t "client connected (%d live)" (List.length t.clients)
                end
                else
                  match
                    List.find_opt (fun c -> c.fd == fd && c.alive) t.clients
                  with
                  | Some c -> read_client t c
                  | None -> ())
              ready);
        t.clients <- List.filter (fun c -> c.alive) t.clients;
        (* one fair round per wakeup keeps newly-arrived clients from
           waiting behind a long backlog *)
        let round = build_round t (max 1 (t.cfg.workers * 4)) in
        if round <> [] then process_round t round
      done;
      (* drain: a shutdown (op or signal) still answers everything already
         queued before the daemon goes away *)
      let rec drain () =
        match build_round t (max 1 (t.cfg.workers * 4)) with
        | [] -> ()
        | round ->
            process_round t round;
            drain ()
      in
      drain ();
      match t.shutdown_ack with
      | Some (c, id) -> send c (Proto.reply ~id [ ("status", Json.Str "ok") ])
      | None -> ())
