(* Content-addressed caches for the pfld daemon.

   Two layers, both keyed by Proto digests:

   - compiled: compile key -> linked image ([Prelink.linked]). Backed by
     an optional on-disk directory of hardened Binfile images
     (<dir>/<key>.pfi, written atomically), so a restarted daemon
     warm-starts its compile cache. A corrupt, truncated or
     stale-version cache file is counted and treated as a clean miss —
     never an error, never a crash.

   - sims: simulate key -> memoized reply body (id-less JSON fields).
     In-memory only: replies are small and cheap to recompute after a
     restart once the compile cache is warm.

   All access is from the daemon's control thread; worker domains only
   ever receive immutable values ([linked], request records) and return
   results for the control thread to insert. *)

module Ddsm = Ddsm_core.Ddsm
module Json = Ddsm_report.Json

type t = {
  dir : string option;
  compiled : (string, Ddsm_linker.Prelink.linked) Hashtbl.t;
  sims : (string, (string * Json.t) list) Hashtbl.t;
  mutable compile_hits : int;  (** served from memory *)
  mutable compile_disk_hits : int;  (** served from the cache directory *)
  mutable compile_misses : int;  (** actually compiled *)
  mutable compile_disk_rejects : int;
      (** corrupt/stale cache files skipped (each one is also a miss) *)
  mutable sim_hits : int;
  mutable sim_misses : int;
}

let create ?dir () =
  (match dir with
  | Some d when not (Sys.file_exists d) -> (
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  | _ -> ());
  {
    dir;
    compiled = Hashtbl.create 64;
    sims = Hashtbl.create 256;
    compile_hits = 0;
    compile_disk_hits = 0;
    compile_misses = 0;
    compile_disk_rejects = 0;
    sim_hits = 0;
    sim_misses = 0;
  }

let image_path dir key = Filename.concat dir (key ^ ".pfi")

(* Memory first, then the cache directory. Counts exactly one of
   {hit, disk hit, miss} per call; a rejected disk file counts both a
   reject and a miss. *)
let find_compiled t ~key =
  match Hashtbl.find_opt t.compiled key with
  | Some l ->
      t.compile_hits <- t.compile_hits + 1;
      Some l
  | None -> (
      match t.dir with
      | None ->
          t.compile_misses <- t.compile_misses + 1;
          None
      | Some dir -> (
          let path = image_path dir key in
          if not (Sys.file_exists path) then begin
            t.compile_misses <- t.compile_misses + 1;
            None
          end
          else
            match Ddsm.load_image ~path with
            | Ok l ->
                t.compile_disk_hits <- t.compile_disk_hits + 1;
                Hashtbl.replace t.compiled key l;
                Some l
            | Error _ ->
                (* torn/stale/foreign cache entry: a clean miss *)
                t.compile_disk_rejects <- t.compile_disk_rejects + 1;
                t.compile_misses <- t.compile_misses + 1;
                None))

let store_compiled t ~key linked =
  Hashtbl.replace t.compiled key linked;
  match t.dir with
  | None -> ()
  | Some dir -> (
      (* best-effort persistence: an unwritable cache directory degrades
         the daemon to memory-only, it never fails a request *)
      try Ddsm.save_image linked ~path:(image_path dir key)
      with Sys_error _ -> ())

(* sim counting is done by the scheduler: a lookup that misses but is
   satisfied by a within-round duplicate's computation is still a hit
   (it cost no simulation), which only the round logic can know *)
let find_sim t ~key = Hashtbl.find_opt t.sims key
let store_sim t ~key body = Hashtbl.replace t.sims key body

let stats_fields t =
  [
    ("compile_hits", Json.Int t.compile_hits);
    ("compile_disk_hits", Json.Int t.compile_disk_hits);
    ("compile_misses", Json.Int t.compile_misses);
    ("compile_disk_rejects", Json.Int t.compile_disk_rejects);
    ("sim_hits", Json.Int t.sim_hits);
    ("sim_misses", Json.Int t.sim_misses);
  ]
