open Ddsm_ir

type array_info = {
  ai_ty : Types.ty;
  ai_los : Expr.t list;
  ai_his : Expr.t list;
  ai_const_shape : (int array * int array) option;
  ai_dist : Decl.dist option;
  ai_formal : bool;
  ai_common : string option;
  ai_equiv_base : string option;
}

type sym =
  | SScalar of Types.ty * bool
  | SArray of array_info
  | SConst of Expr.t

type env = { routine : Decl.routine; syms : (string, sym) Hashtbl.t }

let find_sym env name = Hashtbl.find_opt env.syms name

let find_array env name =
  match find_sym env name with Some (SArray ai) -> Some ai | _ -> None

let loop_nest_vars (da : Stmt.doacross) =
  match da.Stmt.nest_vars with [] -> [ da.Stmt.loop.Stmt.var ] | vs -> vs

(* ------------------------------------------------------------------ *)

type ctx = {
  r : Decl.routine;
  syms : (string, sym) Hashtbl.t;
  mutable errs : (Loc.t * string) list;
  allow_formal_dists : bool;
}

let errf ctx loc fmt =
  Format.kasprintf (fun m -> ctx.errs <- (loc, m) :: ctx.errs) fmt

(* ------------------------------------------------------------------ *)
(* Types *)

let rec ty_of ctx (e : Expr.t) : Types.ty option =
  let promote a b =
    match (a, b) with
    | Some Types.Treal, Some _ | Some _, Some Types.Treal -> Some Types.Treal
    | Some Types.Tint, Some Types.Tint -> Some Types.Tint
    | _ -> None
  in
  match e with
  | Expr.Int _ -> Some Types.Tint
  | Expr.Real _ -> Some Types.Treal
  | Expr.Str _ -> None
  | Expr.Var x -> (
      match Hashtbl.find_opt ctx.syms x with
      | Some (SScalar (ty, _)) -> Some ty
      | Some (SConst (Expr.Int _)) -> Some Types.Tint
      | Some (SConst _) -> Some Types.Treal
      | Some (SArray ai) -> Some ai.ai_ty (* bare array name: element type *)
      | None -> None)
  | Expr.Ref (a, _) -> (
      match Hashtbl.find_opt ctx.syms a with
      | Some (SArray ai) -> Some ai.ai_ty
      | _ -> None)
  | Expr.Bin (_, x, y) -> promote (ty_of ctx x) (ty_of ctx y)
  | Expr.Rel _ | Expr.Log _ | Expr.Not _ -> Some Types.Tint
  | Expr.Neg x -> ty_of ctx x
  | Expr.Intrin (n, args) -> (
      match Intrinsics.lookup n with
      | None -> None
      | Some { result = `Int; _ } -> Some Types.Tint
      | Some { result = `Real; _ } -> Some Types.Treal
      | Some { result = `Same; _ } ->
          List.fold_left
            (fun acc a -> promote acc (ty_of ctx a))
            (Some Types.Tint) args)
  | Expr.Idiv _ | Expr.Imod _ | Expr.Meta _ | Expr.BaseOf _
  | Expr.GatherBase _ ->
      Some Types.Tint
  | Expr.AbsLoad (ty, _) -> Some ty

let type_of env e =
  let ctx =
    { r = env.routine; syms = env.syms; errs = []; allow_formal_dists = true }
  in
  match ty_of ctx e with
  | Some ty -> ty
  | None -> invalid_arg ("Sema.type_of: untypable expression " ^ Expr.to_string e)

(* ------------------------------------------------------------------ *)
(* Constant (parameter) resolution *)

let fold_consts (r : Decl.routine) =
  let errs = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (name, e) ->
      let e =
        Expr.simplify
          (Expr.map
             (function
               | Expr.Var x as v -> (
                   match Hashtbl.find_opt tbl x with Some c -> c | None -> v)
               | other -> other)
             e)
      in
      match e with
      | Expr.Int _ | Expr.Real _ -> Hashtbl.replace tbl name e
      | _ ->
          errs :=
            ( r.Decl.rloc,
              Printf.sprintf "parameter %s is not a compile-time constant" name )
            :: !errs)
    r.Decl.rconsts;
  (tbl, !errs)

let subst_consts tbl e =
  Expr.map
    (function
      | Expr.Var x as v -> (
          match Hashtbl.find_opt tbl x with Some c -> c | None -> v)
      | other -> other)
    e

(* ------------------------------------------------------------------ *)
(* Declarations *)

let build_symtab ctx consts =
  let r = ctx.r in
  let common_of = Hashtbl.create 8 in
  List.iter
    (fun (blk, names) ->
      List.iter (fun n -> Hashtbl.replace common_of n blk) names)
    r.Decl.rcommons;
  (* distribution directives indexed by target, with legality checks *)
  let dist_of = Hashtbl.create 8 in
  List.iter
    (fun (d : Decl.dist) ->
      match Hashtbl.find_opt dist_of d.Decl.dtarget with
      | Some (prev : Decl.dist) ->
          if prev.Decl.dreshape <> d.Decl.dreshape then
            errf ctx d.Decl.dloc
              "array %s cannot be both distribute and distribute_reshape"
              d.Decl.dtarget
          else
            errf ctx d.Decl.dloc "duplicate distribution directive for %s"
              d.Decl.dtarget
      | None -> Hashtbl.replace dist_of d.Decl.dtarget d)
    r.Decl.rdists;
  let consts_tbl = consts in
  List.iter
    (fun (v : Decl.vdecl) ->
      if Hashtbl.mem consts_tbl v.Decl.vname then begin
        (* a type declaration for a parameter constant: legal if scalar *)
        if v.Decl.vdims <> [] then
          errf ctx v.Decl.vloc "parameter %s cannot be an array" v.Decl.vname
      end
      else if Hashtbl.mem ctx.syms v.Decl.vname then
        errf ctx v.Decl.vloc "duplicate declaration of %s" v.Decl.vname
      else if v.Decl.vdims = [] then
        Hashtbl.replace ctx.syms v.Decl.vname
          (SScalar (v.Decl.vty, List.mem v.Decl.vname r.Decl.rparams))
      else begin
        let los = List.map (fun d -> subst_consts consts d.Decl.dlo) v.Decl.vdims in
        let his = List.map (fun d -> subst_consts consts d.Decl.dhi) v.Decl.vdims in
        let formal = List.mem v.Decl.vname r.Decl.rparams in
        let const_shape =
          let lo_c = List.map Expr.const_int los
          and hi_c = List.map Expr.const_int his in
          if List.for_all Option.is_some lo_c && List.for_all Option.is_some hi_c
          then begin
            let lo = Array.of_list (List.map Option.get lo_c) in
            let hi = Array.of_list (List.map Option.get hi_c) in
            let ext = Array.map2 (fun h l -> h - l + 1) hi lo in
            if Array.exists (fun e -> e < 1) ext then begin
              errf ctx v.Decl.vloc "array %s has an empty dimension" v.Decl.vname;
              None
            end
            else Some (lo, ext)
          end
          else None
        in
        if const_shape = None && not formal then
          errf ctx v.Decl.vloc
            "array %s must have constant bounds (only formal parameters may \
             be adjustable)"
            v.Decl.vname;
        Hashtbl.replace ctx.syms v.Decl.vname
          (SArray
             {
               ai_ty = v.Decl.vty;
               ai_los = los;
               ai_his = his;
               ai_const_shape = const_shape;
               ai_dist = Hashtbl.find_opt dist_of v.Decl.vname;
               ai_formal = formal;
               ai_common = Hashtbl.find_opt common_of v.Decl.vname;
               ai_equiv_base = None;
             })
      end)
    r.Decl.rdecls;
  (* parameter constants become symbols too *)
  Hashtbl.iter
    (fun name c ->
      if Hashtbl.mem ctx.syms name then
        errf ctx r.Decl.rloc "parameter %s conflicts with a declaration" name
      else Hashtbl.replace ctx.syms name (SConst c))
    consts;
  (* every formal must be declared *)
  List.iter
    (fun p ->
      if not (Hashtbl.mem ctx.syms p) then
        errf ctx r.Decl.rloc "formal parameter %s is not declared" p)
    r.Decl.rparams;
  (* common members must be declared arrays or scalars, not formals *)
  List.iter
    (fun (blk, names) ->
      List.iter
        (fun n ->
          match Hashtbl.find_opt ctx.syms n with
          | None ->
              errf ctx r.Decl.rloc "common /%s/ member %s is not declared" blk n
          | Some (SArray { ai_formal = true; _ }) | Some (SScalar (_, true)) ->
              errf ctx r.Decl.rloc
                "common /%s/ member %s cannot be a formal parameter" blk n
          | Some (SConst _) ->
              errf ctx r.Decl.rloc
                "common /%s/ member %s cannot be a parameter constant" blk n
          | Some (SScalar _) ->
              errf ctx r.Decl.rloc
                "common /%s/ member %s: only arrays are supported in common \
                 blocks (see DESIGN.md)"
                blk n
          | Some _ -> ())
        names)
    r.Decl.rcommons;
  (* directive targets must be declared arrays; arity checks *)
  List.iter
    (fun (d : Decl.dist) ->
      match Hashtbl.find_opt ctx.syms d.Decl.dtarget with
      | Some (SArray ai) ->
          if List.length d.Decl.dkinds <> List.length ai.ai_los then
            errf ctx d.Decl.dloc
              "distribution of %s names %d dimensions but the array has %d"
              d.Decl.dtarget
              (List.length d.Decl.dkinds)
              (List.length ai.ai_los);
          if ai.ai_formal && not ctx.allow_formal_dists then
            errf ctx d.Decl.dloc
              "distribution directives are supplied at array definition \
               points, not on formal parameter %s (the compiler propagates \
               them automatically)"
              d.Decl.dtarget;
          let ndist =
            List.length (List.filter Ddsm_dist.Kind.is_distributed d.Decl.dkinds)
          in
          (match d.Decl.donto with
          | Some ws when List.length ws <> ndist ->
              errf ctx d.Decl.dloc
                "onto clause of %s has %d weights for %d distributed dimensions"
                d.Decl.dtarget (List.length ws) ndist
          | Some ws when List.exists (fun w -> w < 1) ws ->
              (* Grid.assign requires positive weights; rejecting here keeps
                 the failure a located compile-time error instead of a
                 runtime invariant violation at elaboration *)
              errf ctx d.Decl.dloc
                "onto clause of %s has a non-positive weight" d.Decl.dtarget
          | _ -> ());
          if ndist = 0 then
            errf ctx d.Decl.dloc "distribution of %s distributes no dimension"
              d.Decl.dtarget
      | Some _ ->
          errf ctx d.Decl.dloc "distribution target %s is not an array"
            d.Decl.dtarget
      | None ->
          errf ctx d.Decl.dloc "distribution target %s is not declared"
            d.Decl.dtarget)
    r.Decl.rdists;
  (* equivalences: declared local plain arrays; never reshaped (§6) *)
  List.iter
    (fun (a, b) ->
      let check n =
        match Hashtbl.find_opt ctx.syms n with
        | None ->
            errf ctx r.Decl.rloc "equivalenced name %s is not declared" n;
            None
        | Some (SArray ai) ->
            (match ai.ai_dist with
            | Some { Decl.dreshape = true; _ } ->
                errf ctx r.Decl.rloc
                  "reshaped array %s cannot be equivalenced to another array" n
            | _ -> ());
            if ai.ai_formal then
              errf ctx r.Decl.rloc "formal parameter %s cannot be equivalenced" n;
            Some ai
        | Some _ ->
            errf ctx r.Decl.rloc "equivalence of scalars is not supported (%s)" n;
            None
      in
      match (check a, check b) with
      | Some ai_a, Some ai_b -> (
          match (ai_a.ai_const_shape, ai_b.ai_const_shape) with
          | Some (_, ea), Some (_, eb) ->
              let words e = Array.fold_left ( * ) 1 e in
              if words eb > words ea then
                errf ctx r.Decl.rloc
                  "equivalenced array %s is larger than its base %s" b a
              else
                Hashtbl.replace ctx.syms b
                  (SArray { ai_b with ai_equiv_base = Some a })
          | _ -> ())
      | _ -> ())
    r.Decl.requivs

(* ------------------------------------------------------------------ *)
(* Expression checking / rewriting *)

let rec check_expr ctx ~loc ~bare_ok (e : Expr.t) : Expr.t =
  let recur = check_expr ctx ~loc ~bare_ok:false in
  match e with
  | Expr.Int _ | Expr.Real _ | Expr.Str _ -> e
  | Expr.Var x -> (
      match Hashtbl.find_opt ctx.syms x with
      | Some (SScalar _) | Some (SConst _) -> e
      | Some (SArray _) ->
          if not bare_ok then
            errf ctx loc
              "array %s used without subscripts outside a call argument" x;
          e
      | None ->
          errf ctx loc "undeclared variable %s" x;
          e)
  | Expr.Ref (name, subs) -> (
      match Hashtbl.find_opt ctx.syms name with
      | Some (SArray ai) ->
          if List.length subs <> List.length ai.ai_los then
            errf ctx loc "array %s has %d dimensions but is subscripted with %d"
              name (List.length ai.ai_los) (List.length subs);
          let subs = List.map recur subs in
          List.iter
            (fun s ->
              match ty_of ctx s with
              | Some Types.Tint -> ()
              | Some Types.Treal ->
                  errf ctx loc "subscript of %s is not an integer expression" name
              | _ -> ())
            subs;
          Expr.Ref (name, subs)
      | Some _ ->
          errf ctx loc "%s is not an array" name;
          e
      | None -> (
          match Intrinsics.lookup name with
          | Some sg ->
              let n = List.length subs in
              let lo, hi = sg.arity in
              if n < lo || n > hi then
                errf ctx loc "intrinsic %s expects %d..%d arguments, got %d"
                  name lo hi n;
              let subs =
                List.mapi
                  (fun i s ->
                    if i = 0 && sg.array_arg then begin
                      (match s with
                      | Expr.Var a -> (
                          match Hashtbl.find_opt ctx.syms a with
                          | Some (SArray { ai_dist = Some _; _ }) -> ()
                          | Some (SArray _) ->
                              errf ctx loc
                                "intrinsic %s requires a distributed array, %s \
                                 is not distributed"
                                name a
                          | _ ->
                              errf ctx loc
                                "first argument of %s must name an array" name)
                      | _ ->
                          errf ctx loc "first argument of %s must name an array"
                            name);
                      check_expr ctx ~loc ~bare_ok:true s
                    end
                    else recur s)
                  subs
              in
              Expr.Intrin (name, subs)
          | None ->
              errf ctx loc "%s is neither a declared array nor an intrinsic" name;
              e))
  | Expr.Bin (op, x, y) -> Expr.Bin (op, recur x, recur y)
  | Expr.Rel (op, x, y) -> Expr.Rel (op, recur x, recur y)
  | Expr.Log (op, x, y) -> Expr.Log (op, recur x, recur y)
  | Expr.Not x -> Expr.Not (recur x)
  | Expr.Neg x -> Expr.Neg (recur x)
  | Expr.Intrin (n, args) -> Expr.Intrin (n, List.map recur args)
  | Expr.Idiv (i, x, y) -> Expr.Idiv (i, recur x, recur y)
  | Expr.Imod (i, x, y) -> Expr.Imod (i, recur x, recur y)
  | Expr.Meta _ | Expr.BaseOf _ | Expr.AbsLoad _ | Expr.GatherBase _ -> e

(* ------------------------------------------------------------------ *)
(* Statement checking / rewriting *)

let int_scalar ctx ~loc name what =
  match Hashtbl.find_opt ctx.syms name with
  | Some (SScalar (Types.Tint, _)) -> ()
  | Some _ -> errf ctx loc "%s %s must be an integer scalar" what name
  | None -> errf ctx loc "undeclared %s %s" what name

let check_const_step ctx ~loc (d : Stmt.do_) =
  match d.Stmt.step with
  | None -> 1
  | Some s -> (
      match Expr.const_int s with
      | Some 0 ->
          errf ctx loc "do %s: zero step" d.Stmt.var;
          1
      | Some k -> k
      | None ->
          errf ctx loc "do %s: step must be an integer constant" d.Stmt.var;
          1)

let rec check_stmt ctx (t : Stmt.t) : Stmt.t =
  let loc = t.Stmt.loc in
  let s =
    match t.Stmt.s with
    | Stmt.Assign (Stmt.LVar x, e) ->
        (match Hashtbl.find_opt ctx.syms x with
        | Some (SScalar _) -> ()
        | Some (SConst _) -> errf ctx loc "cannot assign to parameter constant %s" x
        | Some (SArray _) -> errf ctx loc "cannot assign to array %s without subscripts" x
        | None -> errf ctx loc "undeclared variable %s" x);
        Stmt.Assign (Stmt.LVar x, check_expr ctx ~loc ~bare_ok:false e)
    | Stmt.Assign (Stmt.LRef (a, subs), e) -> (
        let r = check_expr ctx ~loc ~bare_ok:false (Expr.Ref (a, subs)) in
        let e = check_expr ctx ~loc ~bare_ok:false e in
        match r with
        | Expr.Ref (a, subs) -> Stmt.Assign (Stmt.LRef (a, subs), e)
        | Expr.Intrin _ ->
            errf ctx loc "cannot assign to intrinsic %s" a;
            Stmt.Assign (Stmt.LRef (a, subs), e)
        | _ -> Stmt.Assign (Stmt.LRef (a, subs), e))
    | Stmt.AbsStore (ty, addr, v) ->
        Stmt.AbsStore
          ( ty,
            check_expr ctx ~loc ~bare_ok:false addr,
            check_expr ctx ~loc ~bare_ok:false v )
    | Stmt.Do d -> Stmt.Do (check_do ctx ~loc d)
    | Stmt.If (c, th, el) ->
        Stmt.If
          ( check_expr ctx ~loc ~bare_ok:false c,
            List.map (check_stmt ctx) th,
            List.map (check_stmt ctx) el )
    | Stmt.Call (n, args) ->
        Stmt.Call (n, List.map (check_expr ctx ~loc ~bare_ok:true) args)
    | Stmt.Doacross da -> Stmt.Doacross (check_doacross ctx ~loc da)
    | Stmt.Redistribute rd ->
        (match Hashtbl.find_opt ctx.syms rd.Stmt.rarray with
        | Some (SArray ai) -> (
            match ai.ai_dist with
            | None ->
                errf ctx loc "redistribute target %s is not a distributed array"
                  rd.Stmt.rarray
            | Some _ ->
                (* reshaped targets are legal since the redistribution
                   engine: the runtime rebuilds the portions aside and
                   installs them atomically. A FORMAL cannot be
                   redistributed — the caller's actual keeps its own
                   layout and the callee would silently diverge from it. *)
                if ai.ai_formal then
                  errf ctx loc
                    "cannot redistribute formal argument %s: the layout \
                     belongs to the caller's actual array"
                    rd.Stmt.rarray;
                if List.length rd.Stmt.rkinds <> List.length ai.ai_los then
                  errf ctx loc "redistribute of %s has wrong dimensionality"
                    rd.Stmt.rarray;
                let ndist =
                  List.length
                    (List.filter Ddsm_dist.Kind.is_distributed rd.Stmt.rkinds)
                in
                (match rd.Stmt.ronto with
                | Some ws when List.length ws <> ndist ->
                    errf ctx loc
                      "onto clause of redistribute %s has %d weights for %d \
                       distributed dimensions"
                      rd.Stmt.rarray (List.length ws) ndist
                | Some ws when List.exists (fun w -> w < 1) ws ->
                    errf ctx loc
                      "onto clause of redistribute %s has a non-positive weight"
                      rd.Stmt.rarray
                | _ -> ());
                (match rd.Stmt.rprocs with
                | Some p when p < 1 ->
                    errf ctx loc
                      "procs clause of redistribute %s must request at least \
                       one processor (got %d)"
                      rd.Stmt.rarray p
                | _ -> ()))
        | _ -> errf ctx loc "redistribute target %s is not declared" rd.Stmt.rarray);
        Stmt.Redistribute rd
    | Stmt.Continue | Stmt.Return | Stmt.Barrier | Stmt.Gather _ -> t.Stmt.s
    | Stmt.Par p -> Stmt.Par { Stmt.pbody = List.map (check_stmt ctx) p.Stmt.pbody }
    | Stmt.Print es ->
        Stmt.Print
          (List.map
             (fun e ->
               match e with
               | Expr.Str _ -> e
               | _ -> check_expr ctx ~loc ~bare_ok:false e)
             es)
  in
  { t with Stmt.s }

and check_do ctx ~loc (d : Stmt.do_) =
  int_scalar ctx ~loc d.Stmt.var "loop variable";
  ignore (check_const_step ctx ~loc d);
  {
    d with
    Stmt.lo = check_expr ctx ~loc ~bare_ok:false d.Stmt.lo;
    hi = check_expr ctx ~loc ~bare_ok:false d.Stmt.hi;
    step = Option.map (check_expr ctx ~loc ~bare_ok:false) d.Stmt.step;
    body = List.map (check_stmt ctx) d.Stmt.body;
  }

and check_doacross ctx ~loc (da : Stmt.doacross) =
  List.iter
    (fun x ->
      if not (Hashtbl.mem ctx.syms x) then
        errf ctx loc "local clause names undeclared variable %s" x)
    da.Stmt.locals;
  List.iter
    (fun x ->
      if not (Hashtbl.mem ctx.syms x) then
        errf ctx loc "shared clause names undeclared variable %s" x)
    da.Stmt.shareds;
  (* nest: the named variables must form a perfect nest from the outer loop *)
  let nest = loop_nest_vars da in
  (let rec walk vars (d : Stmt.do_) =
     match vars with
     | [] -> ()
     | v :: rest -> (
         if d.Stmt.var <> v then
           errf ctx loc "nest clause variable %s does not match loop variable %s"
             v d.Stmt.var;
         match rest with
         | [] -> ()
         | _ -> (
             match d.Stmt.body with
             | [ { Stmt.s = Stmt.Do inner; _ } ] -> walk rest inner
             | _ ->
                 errf ctx loc
                   "nest(%s) requires a perfect loop nest (the %s loop must \
                    contain only the next loop)"
                   (String.concat "," da.Stmt.nest_vars)
                   d.Stmt.var))
   in
   walk nest da.Stmt.loop);
  (* steps of the parallel loops must be positive constants *)
  (let rec steps vars (d : Stmt.do_) =
     match vars with
     | [] -> ()
     | _ :: rest ->
         let k = check_const_step ctx ~loc d in
         if k < 0 then
           errf ctx loc "parallel loop %s must have a positive step" d.Stmt.var;
         (match (rest, d.Stmt.body) with
         | v :: _, [ { Stmt.s = Stmt.Do inner; _ } ] when inner.Stmt.var = v ->
             steps rest inner
         | _ -> ())
   in
   steps nest da.Stmt.loop);
  (* affinity legality *)
  let affinity =
    match da.Stmt.affinity with
    | None -> None
    | Some a ->
        List.iter
          (fun v ->
            if not (List.mem v nest) then
              errf ctx loc
                "affinity variable %s is not a parallel loop variable of this \
                 doacross"
                v)
          a.Stmt.avars;
        (match Hashtbl.find_opt ctx.syms a.Stmt.aarray with
        | Some (SArray ai) -> (
            match ai.ai_dist with
            | Some _ ->
                if List.length a.Stmt.asubs <> List.length ai.ai_los then
                  errf ctx loc "affinity reference to %s has wrong rank"
                    a.Stmt.aarray
            | None ->
                errf ctx loc "affinity array %s is not distributed" a.Stmt.aarray)
        | _ -> errf ctx loc "affinity array %s is not declared" a.Stmt.aarray);
        let asubs = List.map (check_expr ctx ~loc ~bare_ok:false) a.Stmt.asubs in
        (* a distributed dimension whose subscript names no affinity
           variable pins the iterations to that coordinate's owner, so it
           must be a compile-time constant *)
        (match Hashtbl.find_opt ctx.syms a.Stmt.aarray with
        | Some (SArray { ai_dist = Some dd; _ }) ->
            List.iteri
              (fun d sub ->
                let kind = List.nth_opt dd.Decl.dkinds d in
                let has_avar =
                  List.exists (fun v -> List.mem v (Expr.free_vars sub)) a.Stmt.avars
                in
                match kind with
                | Some k
                  when Ddsm_dist.Kind.is_distributed k && (not has_avar)
                       && Expr.const_int (Expr.simplify sub) = None ->
                    errf ctx loc
                      "affinity reference %s: subscript %s in distributed \
                       dimension %d must use an affinity variable or be a \
                       constant"
                      a.Stmt.aarray (Expr.to_string sub) (d + 1)
                | _ -> ())
              asubs
        | _ -> ());
        (* each affinity variable must appear in exactly one subscript, in
           the literal affine form s*v + c with s >= 0 (§3.4) *)
        List.iter
          (fun v ->
            let mentioning =
              List.filter (fun s -> List.mem v (Expr.free_vars s)) asubs
            in
            match mentioning with
            | [ s ] -> (
                match Expr.affine_in v (Expr.simplify s) with
                | Some (sc, _) when sc >= 0 -> ()
                | Some _ ->
                    errf ctx loc
                      "affinity subscript %s of %s: the coefficient of %s must \
                       be non-negative"
                      (Expr.to_string s) a.Stmt.aarray v
                | None ->
                    errf ctx loc
                      "affinity subscript %s of %s must be of the literal form \
                       p*%s+q"
                      (Expr.to_string s) a.Stmt.aarray v)
            | [] ->
                errf ctx loc
                  "affinity variable %s does not appear in the data reference" v
            | _ ->
                errf ctx loc
                  "affinity variable %s appears in several subscripts of %s" v
                  a.Stmt.aarray)
          a.Stmt.avars;
        Some { a with Stmt.asubs }
  in
  { da with Stmt.affinity; loop = check_do ctx ~loc da.Stmt.loop }

(* ------------------------------------------------------------------ *)

let analyse_routine ?(allow_formal_dists = false) (r : Decl.routine) =
  let consts, cerrs = fold_consts r in
  let ctx =
    { r; syms = Hashtbl.create 64; errs = List.rev cerrs; allow_formal_dists }
  in
  build_symtab ctx consts;
  (* substitute parameters throughout the body, then check *)
  let body =
    List.map
      (fun s -> check_stmt ctx (Stmt.map_exprs (subst_consts consts) s))
      r.Decl.rbody
  in
  let routine = { r with Decl.rbody = body } in
  if ctx.errs = [] then Ok { routine; syms = ctx.syms }
  else
    Error
      (List.rev_map
         (fun (loc, m) -> Printf.sprintf "%s: %s" (Loc.to_string loc) m)
         ctx.errs)

let analyse_file ?(allow_formal_dists = false) (f : Decl.file) =
  let results = List.map (analyse_routine ~allow_formal_dists) f.Decl.routines in
  let errs =
    List.concat_map (function Error es -> es | Ok _ -> []) results
  in
  if errs = [] then
    Ok (List.map (function Ok e -> e | Error _ -> assert false) results)
  else Error errs
