(** A minimal JSON value, emitter and parser — enough for the Chrome
    trace-event writer, the bench snapshot files and the [pfld]
    line-framed request protocol, with no external dependency.

    Emission notes: [Float nan] becomes [null] (JSON has no NaN literal);
    strings are escaped per RFC 8259. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_channel : out_channel -> t -> unit

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)

val of_string : string -> (t, string) result
(** Parse one complete JSON value (the RFC 8259 grammar; [\uXXXX] escapes
    are decoded to UTF-8). Numeric literals without ['.']/['e'] that fit
    an OCaml [int] parse as [Int], all other numbers as [Float]. Trailing
    non-whitespace after the value is an error — exactly what a
    line-framed protocol wants. Never raises. *)
