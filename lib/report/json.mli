(** A minimal JSON value and emitter — enough for the Chrome trace-event
    writer and the bench snapshot files, with no external dependency.

    Emission notes: [Float nan] becomes [null] (JSON has no NaN literal);
    strings are escaped per RFC 8259. There is deliberately no parser here —
    the test suite carries its own tiny reader to check round-trips. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_channel : out_channel -> t -> unit

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)
