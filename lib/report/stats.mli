(** Derived metrics from the simulator's hardware-counter-like totals — the
    quantities the paper's §8 analysis quotes (cache-miss counts, the share
    of time in TLB handling, local vs. remote fills). *)

type t = {
  accesses : int;
  l1_miss_rate : float;
  l2_miss_rate : float;  (** of L1 misses *)
  l2_misses : int;
  tlb_misses : int;
  tlb_stall_fraction : float;  (** of total memory stall *)
  local_fill_fraction : float;  (** of all fills *)
  remote_fills : int;
  invalidations : int;
  contention_fraction : float;
}

val ratio : int -> int -> float
(** [ratio a b] is [a /. b], with the zero-denominator cases made honest:
    [0/0] is [0.0] (nothing happened), but [a/0] with [a > 0] is [nan] — a
    counter-accounting contradiction that {!pp} renders as ["--"] instead
    of a silent [0.0]. *)

val of_counters : Ddsm_machine.Counters.t -> t

val audit : Ddsm_machine.Counters.t -> string list
(** Cross-check counter totals for accounting contradictions (events
    charged against a base counter that never ticked, fills not matching
    L2 misses). Returns human-readable descriptions; empty when the
    counters are mutually consistent. *)

val pp : Format.formatter -> t -> unit
(** Renders nan fractions (see {!ratio}) as ["--"]. *)
