module C = Ddsm_machine.Counters

type t = {
  accesses : int;
  l1_miss_rate : float;
  l2_miss_rate : float;
  l2_misses : int;
  tlb_misses : int;
  tlb_stall_fraction : float;
  local_fill_fraction : float;
  remote_fills : int;
  invalidations : int;
  contention_fraction : float;
}

(* A zero denominator with a positive numerator is a counter-accounting
   contradiction (events charged against a base that never happened): make
   it visible as nan rather than silently reporting 0.0. 0/0 is a genuine
   "nothing happened" and stays 0. *)
let ratio a b =
  if b = 0 then (if a = 0 then 0.0 else Float.nan)
  else float_of_int a /. float_of_int b

let audit (c : C.t) =
  let bad = ref [] in
  let check num nname den dname =
    if num > 0 && den = 0 then
      bad := Printf.sprintf "%s = %d but %s = 0" nname num dname :: !bad
  in
  check c.C.l1_misses "l1_misses" (C.accesses c) "accesses";
  check c.C.l2_misses "l2_misses" c.C.l1_misses "l1_misses";
  check c.C.tlb_stall_cycles "tlb_stall_cycles" c.C.mem_stall_cycles
    "mem_stall_cycles";
  check c.C.tlb_stall_cycles "tlb_stall_cycles" c.C.tlb_misses "tlb_misses";
  check c.C.contention_cycles "contention_cycles" c.C.mem_stall_cycles
    "mem_stall_cycles";
  check
    (c.C.local_fills + c.C.remote_fills)
    "local_fills + remote_fills" c.C.l2_misses "l2_misses";
  if c.C.l2_misses > 0 && c.C.local_fills + c.C.remote_fills <> c.C.l2_misses
  then
    bad :=
      Printf.sprintf "local_fills + remote_fills = %d but l2_misses = %d"
        (c.C.local_fills + c.C.remote_fills)
        c.C.l2_misses
      :: !bad;
  List.rev !bad

let of_counters (c : C.t) =
  {
    accesses = C.accesses c;
    l1_miss_rate = ratio c.C.l1_misses (C.accesses c);
    l2_miss_rate = ratio c.C.l2_misses c.C.l1_misses;
    l2_misses = c.C.l2_misses;
    tlb_misses = c.C.tlb_misses;
    tlb_stall_fraction = ratio c.C.tlb_stall_cycles c.C.mem_stall_cycles;
    local_fill_fraction = ratio c.C.local_fills (c.C.local_fills + c.C.remote_fills);
    remote_fills = c.C.remote_fills;
    invalidations = c.C.invals_sent;
    contention_fraction = ratio c.C.contention_cycles c.C.mem_stall_cycles;
  }

(* a nan fraction (flagged by {!ratio}) renders as "--", never as a
   confident-looking number *)
let pp_pct ~digits ppf f =
  if Float.is_nan f then Format.pp_print_string ppf "--%"
  else Format.fprintf ppf "%.*f%%" digits (100.0 *. f)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>accesses: %d@ L1 miss rate: %a  L2 misses: %d (%a of L1 misses)@ \
     TLB misses: %d (%a of memory stall)@ local fills: %a  remote fills: \
     %d@ invalidations: %d  contention: %a of stall@]"
    t.accesses
    (pp_pct ~digits:2) t.l1_miss_rate
    t.l2_misses
    (pp_pct ~digits:2) t.l2_miss_rate
    t.tlb_misses
    (pp_pct ~digits:1) t.tlb_stall_fraction
    (pp_pct ~digits:1) t.local_fill_fraction
    t.remote_fills t.invalidations
    (pp_pct ~digits:1) t.contention_fraction
