type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float x ->
      (* JSON has no NaN/infinity literals; 1e999 is nonstandard and strict
         parsers reject it, so all three non-finite values become null *)
      if Float.is_nan x || x = infinity || x = neg_infinity then
        Buffer.add_string b "null"
      else Buffer.add_string b (Printf.sprintf "%.12g" x)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          emit b x)
        xs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          emit b v)
        fields;
      Buffer.add_char b '}'

let to_string t =
  let b = Buffer.create 1024 in
  emit b t;
  Buffer.contents b

let to_channel oc t = output_string oc (to_string t)

(* ------------------------------------------------------------------ *)
(* Parser — added for the pfld line-framed request protocol. Accepts the
   full RFC 8259 value grammar; numbers without '.', 'e' or 'E' that fit
   an OCaml int become [Int], everything else numeric becomes [Float].
   \uXXXX escapes are decoded to UTF-8 (surrogate pairs included). *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v =
      match int_of_string_opt ("0x" ^ String.sub s !pos 4) with
      | Some v -> v
      | None -> fail "bad \\u escape"
    in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> advance (); Buffer.add_char b '"'
             | '\\' -> advance (); Buffer.add_char b '\\'
             | '/' -> advance (); Buffer.add_char b '/'
             | 'b' -> advance (); Buffer.add_char b '\b'
             | 'f' -> advance (); Buffer.add_char b '\012'
             | 'n' -> advance (); Buffer.add_char b '\n'
             | 'r' -> advance (); Buffer.add_char b '\r'
             | 't' -> advance (); Buffer.add_char b '\t'
             | 'u' ->
                 advance ();
                 let cp = hex4 () in
                 let cp =
                   if cp >= 0xD800 && cp <= 0xDBFF then begin
                     (* high surrogate: require the low half *)
                     if
                       !pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                     then begin
                       pos := !pos + 2;
                       let lo = hex4 () in
                       if lo < 0xDC00 || lo > 0xDFFF then
                         fail "bad surrogate pair"
                       else
                         0x10000
                         + ((cp - 0xD800) lsl 10)
                         + (lo - 0xDC00)
                     end
                     else fail "lone high surrogate"
                   end
                   else if cp >= 0xDC00 && cp <= 0xDFFF then
                     fail "lone low surrogate"
                   else cp
                 in
                 utf8 b cp
             | c -> fail (Printf.sprintf "bad escape \\%C" c));
          go ()
      | c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' -> true
      | '.' | 'e' | 'E' | '+' | '-' ->
          is_float := true;
          true
      | _ -> false
    do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
          (* an integer literal too wide for OCaml's int *)
          match float_of_string_opt lit with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" lit))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            (k, parse_value ())
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (kv :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "json: at byte %d: %s" at msg)
