open Ddsm_machine

type cause = Tlb | Hit | Local_fill | Remote_fill | Contention | Coherence

let causes = [| Tlb; Hit; Local_fill; Remote_fill; Contention; Coherence |]
let ncauses = Array.length causes

let cause_index = function
  | Tlb -> 0
  | Hit -> 1
  | Local_fill -> 2
  | Remote_fill -> 3
  | Contention -> 4
  | Coherence -> 5

let cause_name = function
  | Tlb -> "tlb"
  | Hit -> "hit"
  | Local_fill -> "local"
  | Remote_fill -> "remote"
  | Contention -> "contention"
  | Coherence -> "coherence"

(* ---- string interning ------------------------------------------------- *)

type intern = {
  ids : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable count : int;
}

let intern_create () = { ids = Hashtbl.create 32; names = [||]; count = 0 }

let intern i s =
  match Hashtbl.find_opt i.ids s with
  | Some id -> id
  | None ->
      let id = i.count in
      if id >= Array.length i.names then (
        let cap = max 8 (2 * Array.length i.names) in
        let bigger = Array.make cap "" in
        Array.blit i.names 0 bigger 0 (Array.length i.names);
        i.names <- bigger);
      i.names.(id) <- s;
      i.count <- id + 1;
      Hashtbl.replace i.ids s id;
      id

let intern_name i id = i.names.(id)

(* ---- trace events ----------------------------------------------------- *)

type phase = Begin | End | Instant

type trace_event = {
  te_name : string;
  te_cat : string;
  te_ph : phase;
  te_tid : int;
  te_ts : int;
  te_args : (string * Json.t) list;
}

type t = {
  regions : intern;
  arrays : intern;
  unattributed_id : int;
  (* byte-address intervals, sorted by lo once built *)
  mutable ranges : (int * int * int) list;  (* lo, hi (bytes, incl.), array *)
  mutable index : (int * int * int) array;  (* sorted; rebuilt when dirty *)
  mutable index_dirty : bool;
  (* (region, array) -> per-cause stall cycles *)
  matrix : (int * int, int array) Hashtbl.t;
  mutable total : int;
  mutable unattributed : int;
  (* bounded ring buffer of trace events *)
  ring : trace_event option array;
  mutable ring_next : int;
  mutable ring_count : int;
}

let create ?(trace_cap = 65536) () =
  let arrays = intern_create () in
  let unattributed_id = intern arrays "(unattributed)" in
  {
    regions = intern_create ();
    arrays;
    unattributed_id;
    ranges = [];
    index = [||];
    index_dirty = false;
    matrix = Hashtbl.create 64;
    total = 0;
    unattributed = 0;
    ring = Array.make (max 1 trace_cap) None;
    ring_next = 0;
    ring_count = 0;
  }

(* ---- allocation map --------------------------------------------------- *)

let word_bytes = 8

let register_array t ~name ~word_ranges =
  let id = intern t.arrays name in
  List.iter
    (fun (lo, hi) ->
      if hi >= lo then
        t.ranges <-
          (lo * word_bytes, (hi * word_bytes) + (word_bytes - 1), id)
          :: t.ranges)
    word_ranges;
  t.index_dirty <- true

let rebuild_index t =
  let a = Array.of_list t.ranges in
  Array.sort (fun (l1, _, _) (l2, _, _) -> compare l1 l2) a;
  t.index <- a;
  t.index_dirty <- false

let lookup t addr =
  if t.index_dirty then rebuild_index t;
  let a = t.index in
  let n = Array.length a in
  (* greatest lo <= addr, then check hi *)
  let rec bsearch lo hi best =
    if lo > hi then best
    else
      let mid = (lo + hi) / 2 in
      let l, _, _ = a.(mid) in
      if l <= addr then bsearch (mid + 1) hi (Some mid)
      else bsearch lo (mid - 1) best
  in
  match bsearch 0 (n - 1) None with
  | None -> t.unattributed_id
  | Some i ->
      let _, hi, id = a.(i) in
      if addr <= hi then id else t.unattributed_id

(* ---- attribution ------------------------------------------------------ *)

let cell t ~region ~array =
  let key = (region, array) in
  match Hashtbl.find_opt t.matrix key with
  | Some c -> c
  | None ->
      let c = Array.make ncauses 0 in
      Hashtbl.replace t.matrix key c;
      c

let record_access t ~region (ev : Memsys.access_event) =
  let rid = intern t.regions region in
  let aid = lookup t ev.Memsys.ev_addr in
  let c = cell t ~region:rid ~array:aid in
  c.(0) <- c.(0) + ev.Memsys.ev_tlb;
  c.(1) <- c.(1) + ev.Memsys.ev_hit;
  c.(2) <- c.(2) + ev.Memsys.ev_local;
  c.(3) <- c.(3) + ev.Memsys.ev_remote;
  c.(4) <- c.(4) + ev.Memsys.ev_contention;
  c.(5) <- c.(5) + ev.Memsys.ev_coherence;
  let cycles =
    ev.Memsys.ev_tlb + ev.Memsys.ev_hit + ev.Memsys.ev_local
    + ev.Memsys.ev_remote + ev.Memsys.ev_contention + ev.Memsys.ev_coherence
  in
  t.total <- t.total + cycles;
  if aid = t.unattributed_id then t.unattributed <- t.unattributed + cycles

let total_stall t = t.total
let attributed_stall t = t.total - t.unattributed

(* ---- trace ------------------------------------------------------------ *)

let event t ~name ?(cat = "ddsm") ?(args = []) ~ph ~tid ~ts () =
  let cap = Array.length t.ring in
  t.ring.(t.ring_next) <-
    Some { te_name = name; te_cat = cat; te_ph = ph; te_tid = tid;
           te_ts = ts; te_args = args };
  t.ring_next <- (t.ring_next + 1) mod cap;
  t.ring_count <- t.ring_count + 1

let trace_dropped t = max 0 (t.ring_count - Array.length t.ring)

let trace_events t =
  let cap = Array.length t.ring in
  let n = min t.ring_count cap in
  let start = if t.ring_count <= cap then 0 else t.ring_next in
  List.init n (fun i ->
      match t.ring.((start + i) mod cap) with
      | Some e -> e
      | None -> assert false)

let trace_json t =
  let evs =
    List.stable_sort
      (fun a b -> compare a.te_ts b.te_ts)
      (trace_events t)
  in
  let json_of_event e =
    let base =
      [
        ("name", Json.Str e.te_name);
        ("cat", Json.Str e.te_cat);
        ( "ph",
          Json.Str
            (match e.te_ph with Begin -> "B" | End -> "E" | Instant -> "i") );
        ("ts", Json.Int e.te_ts);
        ("pid", Json.Int 0);
        ("tid", Json.Int e.te_tid);
      ]
    in
    let base =
      match e.te_ph with
      | Instant -> base @ [ ("s", Json.Str "t") ]
      | _ -> base
    in
    let base =
      match e.te_args with [] -> base | a -> base @ [ ("args", Json.Obj a) ]
    in
    Json.Obj base
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map json_of_event evs));
      ("displayTimeUnit", Json.Str "ns");
      ( "otherData",
        Json.Obj
          [
            ("tool", Json.Str "pflrun --trace");
            ("dropped_events", Json.Int (trace_dropped t));
          ] );
    ]

let write_trace t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Json.to_channel oc (trace_json t);
      output_char oc '\n')

(* ---- report ----------------------------------------------------------- *)

type row = {
  r_region : string;
  r_array : string;
  r_cycles : int array;  (** indexed by {!cause_index} *)
  r_total : int;
}

let rows t =
  Hashtbl.fold
    (fun (rid, aid) c acc ->
      {
        r_region = intern_name t.regions rid;
        r_array = intern_name t.arrays aid;
        r_cycles = Array.copy c;
        r_total = Array.fold_left ( + ) 0 c;
      }
      :: acc)
    t.matrix []
  |> List.sort (fun a b -> compare b.r_total a.r_total)

let attribution_json t =
  let row_json r =
    Json.Obj
      ([
         ("region", Json.Str r.r_region);
         ("array", Json.Str r.r_array);
         ("cycles", Json.Int r.r_total);
       ]
      @ Array.to_list
          (Array.mapi
             (fun i c -> (cause_name causes.(i), Json.Int c))
             r.r_cycles))
  in
  Json.Obj
    [
      ("total_stall_cycles", Json.Int t.total);
      ("attributed_cycles", Json.Int (attributed_stall t));
      ("unattributed_cycles", Json.Int t.unattributed);
      ("rows", Json.List (List.map row_json (rows t)));
    ]

let pct part whole =
  if whole = 0 then Float.nan else 100.0 *. float_of_int part /. float_of_int whole

let pp_pct ppf p =
  if Float.is_nan p then Format.fprintf ppf "   --"
  else Format.fprintf ppf "%5.1f" p

let pp_report ?(top = 12) ppf t =
  let rs = rows t in
  Format.fprintf ppf "cycle attribution (region x array)@.";
  Format.fprintf ppf "  total memory cycles  %d@." t.total;
  Format.fprintf ppf "  attributed           %d (%a%%)@." (attributed_stall t)
    pp_pct (pct (attributed_stall t) t.total);
  Format.fprintf ppf "  unattributed         %d (%a%%)@." t.unattributed
    pp_pct (pct t.unattributed t.total);
  if trace_dropped t > 0 then
    Format.fprintf ppf "  trace events dropped %d@." (trace_dropped t);
  let shown = if top >= 0 && List.length rs > top then top else List.length rs in
  Format.fprintf ppf "  %-26s %-18s %12s %6s  %s@." "REGION" "ARRAY" "CYCLES"
    "%TOT" "BREAKDOWN";
  List.iteri
    (fun i r ->
      if i < shown then begin
        let break =
          let parts = ref [] in
          Array.iteri
            (fun ci c ->
              if c > 0 then
                parts :=
                  Format.asprintf "%s %.0f%%" (cause_name causes.(ci))
                    (100.0 *. float_of_int c /. float_of_int r.r_total)
                  :: !parts)
            r.r_cycles;
          String.concat ", " (List.rev !parts)
        in
        Format.fprintf ppf "  %-26s %-18s %12d %a  %s@." r.r_region r.r_array
          r.r_total pp_pct (pct r.r_total t.total) break
      end)
    rs;
  if shown < List.length rs then
    Format.fprintf ppf "  ... %d more rows@." (List.length rs - shown)
