(** Cycle-attribution profiler and bounded event trace.

    The engine installs a {!Ddsm_machine.Memsys} access probe and feeds every
    memory-system access here, tagged with the parallel region executing it.
    Addresses are resolved against the allocation map built from
    {!Ddsm_runtime.Darray.word_ranges}, and each access's latency breakdown
    is accumulated into a region x array x cause matrix. Causes partition the
    machine's [mem_stall_cycles] counter exactly, so
    [total_stall = Counters.mem_stall_cycles] after a profiled run — any gap
    is a counter-accounting bug.

    Alongside attribution the profiler keeps a bounded ring buffer of
    scheduling-level events (region enter/exit, barriers, redistributions,
    fault injections, watchdog trips) exportable as Chrome trace-event JSON
    ([chrome://tracing] / Perfetto). When the ring wraps, the oldest events
    are dropped and the drop count is reported in the JSON's [otherData]. *)

type cause = Tlb | Hit | Local_fill | Remote_fill | Contention | Coherence

val causes : cause array
(** All causes, in {!cause_index} order. *)

val cause_index : cause -> int
val cause_name : cause -> string

type t

val create : ?trace_cap:int -> unit -> t
(** [trace_cap] bounds the event ring buffer (default 65536 events). *)

val register_array :
  t -> name:string -> word_ranges:(int * int) list -> unit
(** Add an array's owned word ranges (inclusive [(lo, hi)] word addresses,
    see {!Ddsm_runtime.Darray.word_ranges}) to the allocation map under
    [name]. Call once per array, after elaboration. *)

val record_access : t -> region:string -> Ddsm_machine.Memsys.access_event -> unit
(** Attribute one memory access's cycle breakdown to [region] and to
    whichever registered array owns the byte address (or to
    ["(unattributed)"]). *)

val total_stall : t -> int
(** Sum of all recorded access cycles. *)

val attributed_stall : t -> int
(** Cycles that landed on a named array (total minus unattributed). *)

(** {2 Event trace} *)

type phase = Begin | End | Instant

val event :
  t -> name:string -> ?cat:string -> ?args:(string * Json.t) list ->
  ph:phase -> tid:int -> ts:int -> unit -> unit
(** Append an event to the ring buffer. [tid] is the simulated processor,
    [ts] its clock (cycles). *)

val trace_dropped : t -> int
(** Events lost to ring-buffer wrap-around. *)

val trace_json : t -> Json.t
(** Chrome trace-event JSON object: [{"traceEvents": [...], ...}]. Events
    are sorted by timestamp (per-processor clocks make raw arrival order
    non-monotonic). *)

val write_trace : t -> path:string -> unit
(** Write {!trace_json} to [path]. Raises [Sys_error] if unwritable. *)

(** {2 Attribution report} *)

type row = {
  r_region : string;
  r_array : string;
  r_cycles : int array;  (** indexed by {!cause_index} *)
  r_total : int;
}

val rows : t -> row list
(** Attribution matrix rows, most expensive first. *)

val attribution_json : t -> Json.t
(** Machine-readable snapshot of totals and rows (bench output). *)

val pp_report : ?top:int -> Format.formatter -> t -> unit
(** ASCII top-[top] report (default 12 rows); percentages over a zero total
    render as ["--"]. *)
