open Ddsm_ir

let rec contains_expensive (e : Expr.t) =
  match e with
  | Expr.Meta _ | Expr.BaseOf _ | Expr.Idiv _ | Expr.Imod _ -> true
  | _ ->
      let found = ref false in
      (match e with
      | Expr.Ref (_, subs) | Expr.Intrin (_, subs) ->
          List.iter (fun x -> if contains_expensive x then found := true) subs
      | Expr.Bin (_, a, b) | Expr.Rel (_, a, b) | Expr.Log (_, a, b) ->
          found := contains_expensive a || contains_expensive b
      | Expr.Not a | Expr.Neg a | Expr.AbsLoad (_, a) -> found := contains_expensive a
      | _ -> ());
      !found

(* [GatherBase] counts as a memory read: its value is defined by the most
   recent execution of its site's [Stmt.Gather], so it must never move
   above one. *)
let reads_memory e =
  Expr.exists
    (function
      | Expr.AbsLoad _ | Expr.Ref _ | Expr.GatherBase _ -> true | _ -> false)
    e

let has_string e = Expr.exists (function Expr.Str _ -> true | _ -> false) e

(* Arrays whose layout a statement may change: any c$redistribute reachable
   inside [t], including nested bodies. [Meta]/[BaseOf] of such an array read
   the live layout tables, so they are not invariant across the statement. *)
let rec redistributed_arrays (t : Stmt.t) =
  match t.Stmt.s with
  | Stmt.Redistribute r -> [ r.Stmt.rarray ]
  | Stmt.Do d -> List.concat_map redistributed_arrays d.Stmt.body
  | Stmt.If (_, th, el) ->
      List.concat_map redistributed_arrays th
      @ List.concat_map redistributed_arrays el
  | Stmt.Par p -> List.concat_map redistributed_arrays p.Stmt.pbody
  | Stmt.Doacross da -> List.concat_map redistributed_arrays da.Stmt.loop.Stmt.body
  | _ -> []

(* Arrays whose layout tables an expression consults. *)
let meta_arrays e =
  let acc = ref [] in
  Expr.iter
    (function
      | Expr.Meta (a, _) | Expr.BaseOf (a, _) ->
          if not (List.mem a !acc) then acc := a :: !acc
      | _ -> ())
    e;
  !acc

let invariant ~killed ~relaid e =
  (not (reads_memory e))
  && (not (has_string e))
  && List.for_all (fun v -> not (List.mem v killed)) (Expr.free_vars e)
  && List.for_all (fun a -> not (List.mem a relaid)) (meta_arrays e)

let size e =
  let n = ref 0 in
  Expr.iter (fun _ -> incr n) e;
  !n

(* Hoist (a) anything containing the unsafe-but-constant expensive ops the
   paper targets, and (b) ordinary invariant arithmetic of non-trivial size
   — the job of the "regular loop-nest optimizations" the reshaped code is
   integrated with (§7.4 step 2). Without (b), lowered address arithmetic
   would be recomputed per iteration, which no production compiler does. *)
let hoistable ~killed ~relaid e =
  invariant ~killed ~relaid e
  && (contains_expensive e || size e >= 3)
  && (match e with Expr.Int _ | Expr.Real _ | Expr.Var _ -> false | _ -> true)

(* Replace maximal hoistable subtrees top-down; records (temp, expr) pairs. *)
let rec extract ctx ~killed ~relaid ~acc (e : Expr.t) : Expr.t =
  if hoistable ~killed ~relaid e then begin
    (* reuse a temp if the same expression was already extracted *)
    match List.assoc_opt e !acc with
    | Some tv -> Expr.Var tv
    | None ->
        let tv = Tctx.fresh ctx "hoist" in
        acc := (e, tv) :: !acc;
        Expr.Var tv
  end
  else
    let r = extract ctx ~killed ~relaid ~acc in
    match e with
    | Expr.Int _ | Expr.Real _ | Expr.Str _ | Expr.Var _ | Expr.Meta _
    | Expr.GatherBase _ ->
        e
    | Expr.Ref (a, subs) -> Expr.Ref (a, List.map r subs)
    | Expr.Bin (op, a, b) -> Expr.Bin (op, r a, r b)
    | Expr.Rel (op, a, b) -> Expr.Rel (op, r a, r b)
    | Expr.Log (op, a, b) -> Expr.Log (op, r a, r b)
    | Expr.Not a -> Expr.Not (r a)
    | Expr.Neg a -> Expr.Neg (r a)
    | Expr.Intrin (n, args) -> Expr.Intrin (n, List.map r args)
    | Expr.Idiv (i, a, b) -> Expr.Idiv (i, r a, r b)
    | Expr.Imod (i, a, b) -> Expr.Imod (i, r a, r b)
    | Expr.BaseOf (a, x) -> Expr.BaseOf (a, r x)
    | Expr.AbsLoad (ty, x) -> Expr.AbsLoad (ty, r x)

(* Like Stmt.map_exprs, but does not descend into Par regions: their
   expressions reference the worker-private myp$/np$ bindings and may only
   be hoisted within the region (handled when recursion reaches it). *)
let rec map_exprs_no_par f (t : Stmt.t) : Stmt.t =
  match t.Stmt.s with
  | Stmt.Par _ -> t
  | Stmt.Do d ->
      {
        t with
        Stmt.s =
          Stmt.Do
            {
              d with
              Stmt.lo = f d.Stmt.lo;
              hi = f d.Stmt.hi;
              step = Option.map f d.Stmt.step;
              body = List.map (map_exprs_no_par f) d.Stmt.body;
            };
      }
  | Stmt.If (c, th, el) ->
      {
        t with
        Stmt.s =
          Stmt.If (f c, List.map (map_exprs_no_par f) th, List.map (map_exprs_no_par f) el);
      }
  | _ -> Stmt.map_exprs f t

let rec hoist_body ctx stmts = List.concat_map (hoist_stmt ctx) stmts

and hoist_stmt ctx (t : Stmt.t) : Stmt.t list =
  match t.Stmt.s with
  | Stmt.Do d ->
      let killed = d.Stmt.var :: Stmt.assigned_vars d.Stmt.body in
      let relaid = List.concat_map redistributed_arrays d.Stmt.body in
      let acc = ref [] in
      let body' =
        List.map
          (fun s -> map_exprs_no_par (fun e -> extract ctx ~killed ~relaid ~acc e) s)
          d.Stmt.body
      in
      let pre =
        List.rev_map
          (fun (e, tv) -> Stmt.mk ~loc:t.Stmt.loc (Stmt.Assign (Stmt.LVar tv, e)))
          !acc
      in
      (* recurse: inner loops may hoist what remains *)
      pre @ [ { t with Stmt.s = Stmt.Do { d with Stmt.body = hoist_body ctx body' } } ]
  | Stmt.If (c, th, el) ->
      [ { t with Stmt.s = Stmt.If (c, hoist_body ctx th, hoist_body ctx el) } ]
  | Stmt.Par p ->
      [ { t with Stmt.s = Stmt.Par { Stmt.pbody = hoist_body ctx p.Stmt.pbody } } ]
  | Stmt.Doacross da ->
      [
        {
          t with
          Stmt.s =
            Stmt.Doacross
              {
                da with
                Stmt.loop =
                  { da.Stmt.loop with Stmt.body = hoist_body ctx da.Stmt.loop.Stmt.body };
              };
        };
      ]
  | _ -> [ t ]

let routine ctx (r : Decl.routine) =
  { r with Decl.rbody = hoist_body ctx r.Decl.rbody }
