open Ddsm_ir

let candidate e =
  Hoist.(contains_expensive e)
  && (not
        (Expr.exists
           (function
             | Expr.AbsLoad _ | Expr.Ref _ | Expr.Str _ | Expr.GatherBase _ ->
                 true
             | _ -> false)
           e))

(* Expressions appearing at block level in a statement: everything except
   the contents of nested bodies (each nested body is its own block). *)
let shallow_exprs (t : Stmt.t) =
  match t.Stmt.s with
  | Stmt.Assign (Stmt.LVar _, e) -> [ e ]
  | Stmt.Assign (Stmt.LRef (_, subs), e) -> subs @ [ e ]
  | Stmt.AbsStore (_, a, v) -> [ a; v ]
  | Stmt.Do d -> (d.Stmt.lo :: d.Stmt.hi :: Option.to_list d.Stmt.step)
  | Stmt.If (c, _, _) -> [ c ]
  | Stmt.Call (_, args) -> args
  | Stmt.Print es -> es
  | _ -> []

let shallow_map f (t : Stmt.t) =
  let s =
    match t.Stmt.s with
    | Stmt.Assign (Stmt.LVar x, e) -> Stmt.Assign (Stmt.LVar x, f e)
    | Stmt.Assign (Stmt.LRef (a, subs), e) ->
        Stmt.Assign (Stmt.LRef (a, List.map f subs), f e)
    | Stmt.AbsStore (ty, a, v) -> Stmt.AbsStore (ty, f a, f v)
    | Stmt.Do d ->
        Stmt.Do { d with Stmt.lo = f d.Stmt.lo; hi = f d.Stmt.hi; step = Option.map f d.Stmt.step }
    | Stmt.If (c, th, el) -> Stmt.If (f c, th, el)
    | Stmt.Call (n, args) -> Stmt.Call (n, List.map f args)
    | Stmt.Print es -> Stmt.Print (List.map f es)
    | other -> other
  in
  { t with Stmt.s }

(* Variables a statement assigns that are visible at block level (nested
   bodies count: a loop body assigning x kills candidates mentioning x). *)
let kills (t : Stmt.t) = Stmt.assigned_vars [ t ]

let expr_size e =
  let n = ref 0 in
  Expr.iter (fun _ -> incr n) e;
  !n

(* count occurrences of [c] within [e] (maximal, non-overlapping) *)
let rec count_in c e =
  if Expr.equal c e then 1
  else
    match e with
    | Expr.Int _ | Expr.Real _ | Expr.Str _ | Expr.Var _ | Expr.Meta _
    | Expr.GatherBase _ ->
        0
    | Expr.Ref (_, subs) | Expr.Intrin (_, subs) ->
        List.fold_left (fun acc x -> acc + count_in c x) 0 subs
    | Expr.Bin (_, a, b)
    | Expr.Rel (_, a, b)
    | Expr.Log (_, a, b)
    | Expr.Idiv (_, a, b)
    | Expr.Imod (_, a, b) ->
        count_in c a + count_in c b
    | Expr.Not a | Expr.Neg a | Expr.BaseOf (_, a) | Expr.AbsLoad (_, a) ->
        count_in c a

let replace_in c tv e =
  Expr.map (fun x -> if Expr.equal x c then Expr.Var tv else x) e

(* One CSE round over a block: find the best candidate with >= 2 available
   occurrences in a kill-free segment; introduce a temp. Returns None when
   nothing profitable remains. *)
let round ctx (block : Stmt.t list) : Stmt.t list option =
  (* enumerate candidate subexpressions with their first position *)
  let cands : (Expr.t, unit) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun t ->
      List.iter
        (fun e ->
          Expr.iter (fun x -> if candidate x then Hashtbl.replace cands x ()) e)
        (shallow_exprs t))
    block;
  let best = ref None in
  Hashtbl.iter
    (fun c () ->
      (* walk the block accumulating kill-free segments; a c$redistribute of
         an array the candidate consults ([Meta]/[BaseOf]) kills it too — its
         descriptor values change at that point *)
      let fv = Expr.free_vars c in
      let ma = Hoist.meta_arrays c in
      let seg_start = ref 0 and seg_count = ref 0 in
      let consider i =
        if !seg_count >= 2 then
          match !best with
          | Some (_, _, _, cnt, sz)
            when cnt > !seg_count || (cnt = !seg_count && sz >= expr_size c) ->
              ()
          | _ -> best := Some (c, !seg_start, i, !seg_count, expr_size c)
      in
      List.iteri
        (fun i t ->
          let n = List.fold_left (fun acc e -> acc + count_in c e) 0 (shallow_exprs t) in
          seg_count := !seg_count + n;
          if
            List.exists (fun v -> List.mem v fv) (kills t)
            || List.exists
                 (fun a -> List.mem a ma)
                 (Hoist.redistributed_arrays t)
          then begin
            consider (i + 1);
            seg_start := i + 1;
            seg_count := 0
          end)
        block;
      consider (List.length block))
    cands;
  match !best with
  | None -> None
  | Some (c, s0, s1, _, _) ->
      let tv = Tctx.fresh ctx "cse" in
      let out =
        List.concat
          (List.mapi
             (fun i t ->
               let t' = if i >= s0 && i < s1 then shallow_map (replace_in c tv) t else t in
               if i = s0 then
                 [ Stmt.mk ~loc:t.Stmt.loc (Stmt.Assign (Stmt.LVar tv, c)); t' ]
               else [ t' ])
             block)
      in
      Some out

let rec cse_block ctx block =
  let rec fix block iters =
    if iters > 50 then block
    else match round ctx block with None -> block | Some b -> fix b (iters + 1)
  in
  let block = fix block 0 in
  List.map
    (fun t ->
      match t.Stmt.s with
      | Stmt.Do d -> { t with Stmt.s = Stmt.Do { d with Stmt.body = cse_block ctx d.Stmt.body } }
      | Stmt.If (c, th, el) ->
          { t with Stmt.s = Stmt.If (c, cse_block ctx th, cse_block ctx el) }
      | Stmt.Par p -> { t with Stmt.s = Stmt.Par { Stmt.pbody = cse_block ctx p.Stmt.pbody } }
      | _ -> t)
    block

let routine ctx (r : Decl.routine) = { r with Decl.rbody = cse_block ctx r.Decl.rbody }
