open Ddsm_ir
module Sema = Ddsm_sema.Sema

type arr = {
  name : string;
  kinds : Ddsm_dist.Kind.t array;
  reshape : bool;
  dynamic : bool;
  lowers : int array;
  extents : int array option;
  ty : Types.ty;
  group : string;
}

type t = {
  env : Sema.env;
  fresh_names : Fresh.t;
  arrays : (string, arr) Hashtbl.t;
  dynamic : (string, unit) Hashtbl.t;
}

let group_key ~kinds ~lowers ~extents ~onto =
  Format.asprintf "%a/%s/%s/%s"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Ddsm_dist.Kind.pp)
    (Array.to_list kinds)
    (String.concat "," (List.map string_of_int (Array.to_list lowers)))
    (match extents with
    | Some e -> String.concat "," (List.map string_of_int (Array.to_list e))
    | None -> "?")
    (match onto with
    | Some ws -> String.concat "," (List.map string_of_int ws)
    | None -> "-")

let create env =
  let arrays = Hashtbl.create 16 in
  let dynamic = Hashtbl.create 4 in
  let rec scan (t : Stmt.t) =
    match t.Stmt.s with
    | Stmt.Redistribute rd -> Hashtbl.replace dynamic rd.Stmt.rarray ()
    | Stmt.Do d -> List.iter scan d.Stmt.body
    | Stmt.If (_, a, b) ->
        List.iter scan a;
        List.iter scan b
    | Stmt.Doacross da -> List.iter scan da.Stmt.loop.Stmt.body
    | Stmt.Par p -> List.iter scan p.Stmt.pbody
    | _ -> ()
  in
  List.iter scan env.Sema.routine.Decl.rbody;
  Hashtbl.iter
    (fun name sym ->
      match sym with
      | Sema.SArray ({ ai_dist = Some d; _ } as ai) ->
          let kinds = Array.of_list d.Decl.dkinds in
          let lowers, extents =
            match ai.Sema.ai_const_shape with
            | Some (lo, ext) -> (lo, Some ext)
            | None ->
                (* adjustable formals: lower bounds must still be literal *)
                let los =
                  List.map
                    (fun e -> Option.value ~default:1 (Expr.const_int e))
                    ai.Sema.ai_los
                in
                (Array.of_list los, None)
          in
          Hashtbl.replace arrays name
            {
              name;
              kinds;
              reshape = d.Decl.dreshape;
              dynamic = Hashtbl.mem dynamic name;
              lowers;
              extents;
              ty = ai.Sema.ai_ty;
              group =
                group_key ~kinds ~lowers ~extents ~onto:d.Decl.donto;
            }
      | _ -> ())
    env.Sema.syms;
  { env; fresh_names = Fresh.create (); arrays; dynamic }

let is_dynamic t name = Hashtbl.mem t.dynamic name

let fresh t hint = Fresh.var t.fresh_names hint
let env t = t.env
let distributed t name = Hashtbl.find_opt t.arrays name

let reshaped t name =
  match Hashtbl.find_opt t.arrays name with
  | Some a when a.reshape -> Some a
  | _ -> None

let elem_ty t name =
  match Sema.find_array t.env name with
  | Some ai -> ai.Sema.ai_ty
  | None -> Types.Treal
