module Sema = Ddsm_sema.Sema

let run flags (env : Sema.env) =
  let ctx = Tctx.create env in
  let surface =
    if flags.Flags.inspector then Inspector.routine ctx env.Sema.routine
    else env.Sema.routine
  in
  let r = Lower.routine ctx flags surface in
  let r = if flags.Flags.interchange then Interchange.routine r else r in
  let r = if flags.Flags.hoist then Hoist.routine ctx r else r in
  let r = if flags.Flags.cse then Cse.routine ctx r else r in
  let r = if flags.Flags.fp_divmod then Divmod.routine r else r in
  r
