(** §7.2 hoisting: move loop-invariant descriptor loads ([Meta]), indirect
    base-pointer loads ([BaseOf]) and integer div/mod out of loops into
    compiler temporaries.

    These operations are in general unsafe to speculate (which is why the
    paper reports the scalar optimizer refusing to move them), but "are
    always safe in the context of reshaped arrays", so this pass moves them
    eagerly: for each loop, every maximal subexpression that (a) contains
    one of those operations, (b) reads no memory via [AbsLoad]/array
    references, and (c) uses no variable assigned inside the loop, is
    computed once before the loop. Processing is outside-in so expressions
    invariant at several levels hoist all the way out. [Par] regions are a
    hoisting barrier (worker-private state). *)

val routine : Tctx.t -> Ddsm_ir.Decl.routine -> Ddsm_ir.Decl.routine

val contains_expensive : Ddsm_ir.Expr.t -> bool
(** True when the expression contains a descriptor load, an indirect
    base-pointer load, or an integer div/mod (shared with the CSE pass). *)

val redistributed_arrays : Ddsm_ir.Stmt.t -> string list
(** Arrays whose layout the statement may change: targets of any
    [c$redistribute] reachable inside it, including nested bodies. [Meta] and
    [BaseOf] reads of such an array are not invariant across the statement
    (shared with the CSE pass, which must not cache descriptor loads across a
    redistribution). *)

val meta_arrays : Ddsm_ir.Expr.t -> string list
(** Arrays whose layout tables ([Meta]/[BaseOf]) the expression consults. *)
