(* Inspector-executor transformation of irregular loops (DESIGN.md §13).

   A loop nest whose body reads a rank-1 array through an index array,

       do i = lo, hi
         ... a(s * idx(f(i)) + c) ...

   cannot be analysed by the affine machinery of §3-§7: the referenced
   elements -- and hence their home nodes -- depend on run-time data.  The
   naive code pays a potentially remote access per iteration.  This pass
   splits such a nest into an INSPECTOR ([Stmt.Gather]) that walks the
   index vector once, bins the referenced elements by home node and
   bulk-fetches them into a per-site scratch buffer, and an EXECUTOR (the
   original nest with each qualifying reference rewritten to read the
   scratch word for its iteration slot via [Expr.GatherBase]).  The
   runtime caches the gather schedule keyed on the index and target
   array versions, so repeated sweeps pay inspection once.

   The transformation is applied only when it is provably equivalent to
   the naive loop:
   - the nest is a chain of unit-step [Do] loops (a [Doacross] may only
     be the root); bounds are invariant scalar expressions;
   - the innermost body contains no call, return, barrier,
     redistribution or nested parallel loop, so nothing can re-home or
     rewrite the arrays mid-nest;
   - target and index arrays are local non-formal, non-common,
     non-equivalenced, non-reshaped, and written nowhere in the nest;
   - only references in top-level assignments of the innermost body are
     rewritten: a reference under an [if] may never execute naively, and
     prefetching it could fault on an index value the guard excludes. *)

open Ddsm_ir
module Sema = Ddsm_sema.Sema

(* ---- expression admissibility ------------------------------------- *)

(* pure scalar arithmetic: safe to re-evaluate during the inspection walk
   (no memory reads, no environment-dependent intrinsics) *)
let rec pure_scalar (e : Expr.t) =
  match e with
  | Expr.Int _ -> true
  | Expr.Var _ -> true
  | Expr.Bin (_, a, b) -> pure_scalar a && pure_scalar b
  | Expr.Neg a -> pure_scalar a
  | _ -> false

(* invariant w.r.t. the nest: pure and reading no variable the nest
   assigns (loop variables included) *)
let invariant ~assigned e =
  pure_scalar e
  && List.for_all (fun v -> not (List.mem v assigned)) (Expr.free_vars e)

(* ---- subscript decomposition -------------------------------------- *)

(* [s * idx(gs) + c] with literal [s] and [c], in any association:
   returns (scale, index array, index subscripts, offset) *)
let decompose (sub : Expr.t) : (int * string * Expr.t list * int) option =
  let rec go e =
    match e with
    | Expr.Ref (idx, gs) -> Some (1, idx, gs, 0)
    | Expr.Neg a -> (
        match go a with
        | Some (s, idx, gs, c) -> Some (-s, idx, gs, -c)
        | None -> None)
    | Expr.Bin (Expr.Add, a, b) -> (
        match (Expr.const_int a, Expr.const_int b) with
        | _, Some k -> (
            match go a with
            | Some (s, idx, gs, c) -> Some (s, idx, gs, c + k)
            | None -> None)
        | Some k, _ -> (
            match go b with
            | Some (s, idx, gs, c) -> Some (s, idx, gs, c + k)
            | None -> None)
        | None, None -> None)
    | Expr.Bin (Expr.Sub, a, b) -> (
        match (Expr.const_int a, Expr.const_int b) with
        | _, Some k -> (
            match go a with
            | Some (s, idx, gs, c) -> Some (s, idx, gs, c - k)
            | None -> None)
        | Some k, _ -> (
            match go b with
            | Some (s, idx, gs, c) -> Some (-s, idx, gs, k - c)
            | None -> None)
        | None, None -> None)
    | Expr.Bin (Expr.Mul, a, b) -> (
        match (Expr.const_int a, Expr.const_int b) with
        | _, Some k -> (
            match go a with
            | Some (s, idx, gs, c) -> Some (s * k, idx, gs, c * k)
            | None -> None)
        | Some k, _ -> (
            match go b with
            | Some (s, idx, gs, c) -> Some (k * s, idx, gs, k * c)
            | None -> None)
        | None, None -> None)
    | _ -> None
  in
  match go sub with Some (0, _, _, _) -> None | r -> r

(* ---- array admissibility ------------------------------------------ *)

(* an array something else is equivalenced onto could be rewritten
   through the alias without the version counter noticing *)
let aliased env name =
  Hashtbl.fold
    (fun _ sym acc ->
      acc
      ||
      match sym with
      | Sema.SArray ai -> ai.Sema.ai_equiv_base = Some name
      | _ -> false)
    env.Sema.syms false

let plain_local_array env name =
  match Sema.find_array env name with
  | None -> None
  | Some ai ->
      if
        ai.Sema.ai_formal
        || ai.Sema.ai_common <> None
        || ai.Sema.ai_equiv_base <> None
        || aliased env name
        || (match ai.Sema.ai_dist with
           | Some d -> d.Decl.dreshape
           | None -> false)
      then None
      else Some ai

(* ---- nest collection ---------------------------------------------- *)

let unit_step (d : Stmt.do_) =
  match d.Stmt.step with None -> true | Some e -> Expr.const_int e = Some 1

(* maximal chain of unit-step singleton-body [Do]s: returns the rectangle
   dims (outermost first), the innermost body, and a rebuilder taking the
   rewritten innermost body back to the outer [do_] *)
let rec collect (d : Stmt.do_) :
    ((string * Expr.t * Expr.t) list
    * Stmt.t list
    * (Stmt.t list -> Stmt.do_))
    option =
  if not (unit_step d) then None
  else
    let base () =
      ( [ (d.Stmt.var, d.Stmt.lo, d.Stmt.hi) ],
        d.Stmt.body,
        fun nb -> { d with Stmt.body = nb } )
    in
    match d.Stmt.body with
    | [ ({ Stmt.s = Stmt.Do inner; _ } as inner_st) ] -> (
        match collect inner with
        | Some (dims, body, rebuild) ->
            Some
              ( (d.Stmt.var, d.Stmt.lo, d.Stmt.hi) :: dims,
                body,
                fun nb ->
                  {
                    d with
                    Stmt.body =
                      [ { inner_st with Stmt.s = Stmt.Do (rebuild nb) } ];
                  } )
        | None -> Some (base ()))
    | _ -> Some (base ())

(* nothing in the nest may re-home an array, transfer control out, or
   spawn further parallelism *)
let rec body_admissible stmts =
  List.for_all
    (fun (st : Stmt.t) ->
      match st.Stmt.s with
      | Stmt.Assign _ | Stmt.Continue | Stmt.Print _ -> true
      | Stmt.Do d -> body_admissible d.Stmt.body
      | Stmt.If (_, t, e) -> body_admissible t && body_admissible e
      | Stmt.Call _ | Stmt.Redistribute _ | Stmt.Return | Stmt.Barrier
      | Stmt.Doacross _ | Stmt.AbsStore _ | Stmt.Par _ | Stmt.Gather _ ->
        false)
    stmts

(* ---- the pass ----------------------------------------------------- *)

type site = {
  st_id : int;
  st_target : string;
  st_index : string;
  st_scale : int;
  st_off : int;
  st_isubs : Expr.t list;
  st_ty : Types.ty;
}

let site_matches s ~target ~index ~scale ~off ~isubs =
  s.st_target = target && s.st_index = index && s.st_scale = scale
  && s.st_off = off
  && List.length s.st_isubs = List.length isubs
  && List.for_all2 Expr.equal s.st_isubs isubs

(* iteration slot of the current loop-variable values: Horner over the
   rectangle extents, innermost dimension fastest -- the same
   linearization [Stmt.Gather]'s inspection walk uses *)
let slot_expr dims =
  List.fold_left
    (fun acc (v, lo, hi) ->
      let rel = Expr.Bin (Expr.Sub, Expr.Var v, lo) in
      match acc with
      | None -> Some rel
      | Some acc ->
          let extent =
            Expr.Bin (Expr.Add, Expr.Bin (Expr.Sub, hi, lo), Expr.Int 1)
          in
          Some (Expr.Bin (Expr.Add, Expr.Bin (Expr.Mul, acc, extent), rel)))
    None dims
  |> Option.get

let routine tctx (r : Decl.routine) : Decl.routine =
  let env = Tctx.env tctx in
  let next_id = ref 0 in
  let try_nest (root : Stmt.t) : Stmt.t list option =
    let d0, rebuild_root =
      match root.Stmt.s with
      | Stmt.Do d -> (d, fun d' -> { root with Stmt.s = Stmt.Do d' })
      | Stmt.Doacross da ->
          ( da.Stmt.loop,
            fun d' ->
              { root with Stmt.s = Stmt.Doacross { da with Stmt.loop = d' } }
          )
      | _ -> invalid_arg "Inspector.try_nest"
    in
    match collect d0 with
    | None -> None
    | Some (dims, body, rebuild) ->
        let assigned = Stmt.assigned_vars [ root ] in
        let written = Stmt.arrays_written [ root ] in
        let nest_vars = List.map (fun (v, _, _) -> v) dims in
        if
          (not (body_admissible body))
          || not
               (List.for_all
                  (fun (_, lo, hi) ->
                    invariant ~assigned lo && invariant ~assigned hi)
                  dims)
        then None
        else
          (* a variable an index subscript may read: a rectangle variable,
             or a scalar nothing in the nest assigns *)
          let isub_var_ok v =
            List.mem v nest_vars || not (List.mem v assigned)
          in
          let candidate e =
            match e with
            | Expr.Ref (target, [ sub ]) -> (
                match decompose sub with
                | None -> None
                | Some (scale, index, isubs, off) ->
                    if
                      target <> index
                      && (not (List.mem target written))
                      && (not (List.mem index written))
                      && List.for_all pure_scalar isubs
                      && List.for_all
                           (fun g ->
                             List.for_all isub_var_ok (Expr.free_vars g))
                           isubs
                    then (
                      match
                        ( plain_local_array env target,
                          plain_local_array env index )
                      with
                      | Some tai, Some iai
                        when List.length tai.Sema.ai_los = 1
                             && iai.Sema.ai_ty = Types.Tint
                             && List.length iai.Sema.ai_los
                                = List.length isubs ->
                          Some (scale, index, isubs, off, tai.Sema.ai_ty)
                      | _ -> None)
                    else None)
            | _ -> None
          in
          let sites = ref [] in
          let site_for target scale index isubs off ty =
            match
              List.find_opt
                (site_matches ~target ~index ~scale ~off ~isubs)
                !sites
            with
            | Some s -> s
            | None ->
                let s =
                  {
                    st_id = !next_id;
                    st_target = target;
                    st_index = index;
                    st_scale = scale;
                    st_off = off;
                    st_isubs = isubs;
                    st_ty = ty;
                  }
                in
                incr next_id;
                sites := s :: !sites;
                s
          in
          let slot = slot_expr dims in
          let rewrite_expr e =
            Expr.map
              (fun node ->
                match candidate node with
                | None -> node
                | Some (scale, index, isubs, off, ty) ->
                    let target =
                      match node with
                      | Expr.Ref (t, _) -> t
                      | _ -> assert false
                    in
                    let s = site_for target scale index isubs off ty in
                    Expr.simplify
                      (Expr.AbsLoad
                         ( s.st_ty,
                           Expr.Bin
                             (Expr.Add, Expr.GatherBase s.st_id, slot) )))
              e
          in
          (* only top-level assignments of the innermost body: a reference
             under [if] may never execute naively *)
          let body' =
            List.map
              (fun (st : Stmt.t) ->
                match st.Stmt.s with
                | Stmt.Assign (lhs, rhs) ->
                    let lhs =
                      match lhs with
                      | Stmt.LVar _ -> lhs
                      | Stmt.LRef (a, subs) ->
                          Stmt.LRef (a, List.map rewrite_expr subs)
                    in
                    { st with Stmt.s = Stmt.Assign (lhs, rewrite_expr rhs) }
                | _ -> st)
              body
          in
          if !sites = [] then None
          else
            let gathers =
              List.rev_map
                (fun s ->
                  Stmt.mk ~loc:root.Stmt.loc
                    (Stmt.Gather
                       {
                         Stmt.g_id = s.st_id;
                         g_target = s.st_target;
                         g_index = s.st_index;
                         g_scale = s.st_scale;
                         g_off = s.st_off;
                         g_dims = dims;
                         g_isubs = s.st_isubs;
                       }))
                !sites
            in
            Some (gathers @ [ rebuild_root (rebuild body') ])
  in
  (* serial-context walk: a [Gather] must run on the master task, so we
     never descend into a [Doacross] body (the root itself may be one) *)
  let rec serial_body stmts = List.concat_map serial_stmt stmts
  and serial_stmt (st : Stmt.t) : Stmt.t list =
    match st.Stmt.s with
    | Stmt.Do d -> (
        match try_nest st with
        | Some stmts -> stmts
        | None ->
            [ { st with Stmt.s = Stmt.Do { d with Stmt.body = serial_body d.Stmt.body } } ])
    | Stmt.Doacross _ -> (
        match try_nest st with Some stmts -> stmts | None -> [ st ])
    | Stmt.If (c, t, e) ->
        [ { st with Stmt.s = Stmt.If (c, serial_body t, serial_body e) } ]
    | _ -> [ st ]
  in
  { r with Decl.rbody = serial_body r.Decl.rbody }
