open Ddsm_ir
module K = Ddsm_dist.Kind
module Sema = Ddsm_sema.Sema

type st = { ctx : Tctx.t; flags : Flags.t }

let myp = Expr.Var "myp$"
let np = Expr.Var "np$"
let int n = Expr.Int n
let add a b = Expr.Bin (Expr.Add, a, b)
let sub a b = Expr.Bin (Expr.Sub, a, b)
let mul a b = Expr.Bin (Expr.Mul, a, b)
let imax a b = Expr.Intrin ("max", [ a; b ])
let imin a b = Expr.Intrin ("min", [ a; b ])
let assign ?loc v e = Stmt.mk ?loc (Stmt.Assign (Stmt.LVar v, Expr.simplify e))

let mk_do ?loc ~var ~lo ~hi ?step body =
  Stmt.mk ?loc
    (Stmt.Do
       {
         Stmt.var;
         lo = Expr.simplify lo;
         hi = Expr.simplify hi;
         step;
         body;
       })

let is_array st name = Sema.find_array (Tctx.env st.ctx) name <> None

let const_step (d : Stmt.do_) =
  match d.Stmt.step with None -> Some 1 | Some e -> Expr.const_int e

(* ------------------------------------------------------------------ *)
(* Leaf rewriting: reshaped references -> Table 1 address arithmetic *)

let rewrite_expr st binds e =
  Expr.map
    (function
      | Expr.Ref (name, subs) as r -> (
          match Tctx.reshaped st.ctx name with
          | Some a ->
              Expr.AbsLoad (a.Tctx.ty, Expr.simplify (Address.address a binds ~subs))
          | None -> r)
      | other -> other)
    e

(* ------------------------------------------------------------------ *)
(* Candidate analysis for tiling *)

type cand = {
  c_arr : Tctx.arr;
  c_dim : int;
  mutable c_ns : int list;  (** normalized offsets c - lower seen *)
  mutable c_count : int;
}

let collect_refs body =
  let acc = ref [] in
  let note name subs = acc := (name, subs) :: !acc in
  let scan_expr e =
    Expr.iter
      (function Expr.Ref (a, subs) -> note a subs | _ -> ())
      e
  in
  let rec go t =
    (match t.Stmt.s with
    | Stmt.Assign (Stmt.LRef (a, subs), _) -> note a subs
    | _ -> ());
    Stmt.iter_exprs scan_expr t;
    (* descend into structured statements for LRef targets *)
    match t.Stmt.s with
    | Stmt.Do d -> List.iter go d.Stmt.body
    | Stmt.If (_, th, el) ->
        List.iter go th;
        List.iter go el
    | Stmt.Doacross da -> List.iter go da.Stmt.loop.Stmt.body
    | Stmt.Par p -> List.iter go p.Stmt.pbody
    | _ -> ()
  in
  List.iter go body;
  !acc

let find_candidates st binds ~var body =
  let tbl : (string * int, cand) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (name, subs) ->
      match Tctx.reshaped st.ctx name with
      | None -> ()
      (* a redistributable array's block boundaries are not compile-time
         facts, so it can neither drive nor share a tiled schedule *)
      | Some a when a.Tctx.dynamic -> ()
      | Some a ->
          List.iteri
            (fun dim s ->
              if
                dim < Array.length a.Tctx.kinds
                && a.Tctx.kinds.(dim) = K.Block
                && not (List.mem_assoc (a.Tctx.group, dim) binds)
              then
                match Expr.affine_in var (Expr.simplify s) with
                | Some (1, c) ->
                    let n = c - a.Tctx.lowers.(dim) in
                    let key = (a.Tctx.group, dim) in
                    let cd =
                      match Hashtbl.find_opt tbl key with
                      | Some cd -> cd
                      | None ->
                          let cd = { c_arr = a; c_dim = dim; c_ns = []; c_count = 0 } in
                          Hashtbl.replace tbl key cd;
                          cd
                    in
                    cd.c_count <- cd.c_count + 1;
                    if not (List.mem n cd.c_ns) then cd.c_ns <- n :: cd.c_ns
                | _ -> ())
            subs)
    (collect_refs body);
  Hashtbl.fold (fun _ cd acc -> cd :: acc) tbl []

(* Two candidates share partition boundaries when they have the same group,
   or when both arrays have exactly one distributed dimension (so P = all
   processors for both) and the dimensions have equal constant extents. *)
let single_dist (a : Tctx.arr) =
  Array.length (Array.of_list (List.filter K.is_distributed (Array.to_list a.Tctx.kinds))) = 1

let coincide p q =
  (p.c_arr.Tctx.group = q.c_arr.Tctx.group && p.c_dim = q.c_dim)
  || (single_dist p.c_arr && single_dist q.c_arr
     &&
     match (p.c_arr.Tctx.extents, q.c_arr.Tctx.extents) with
     | Some pe, Some qe -> pe.(p.c_dim) = qe.(q.c_dim)
     | _ -> false)

(* ------------------------------------------------------------------ *)
(* Main recursion *)

let rec xform_body st binds stmts = List.concat_map (xform_stmt st binds) stmts

and xform_stmt st binds (t : Stmt.t) : Stmt.t list =
  let loc = t.Stmt.loc in
  let rw = rewrite_expr st binds in
  match t.Stmt.s with
  | Stmt.Do d -> xform_do st binds loc d
  | Stmt.Doacross da -> schedule st binds loc da
  | Stmt.If (c, th, el) ->
      [
        {
          t with
          Stmt.s = Stmt.If (rw c, xform_body st binds th, xform_body st binds el);
        };
      ]
  | Stmt.Assign (Stmt.LVar x, e) -> [ { t with Stmt.s = Stmt.Assign (Stmt.LVar x, rw e) } ]
  | Stmt.Assign (Stmt.LRef (a, subs), e) -> (
      match Tctx.reshaped st.ctx a with
      | Some arr ->
          let subs' = List.map rw subs in
          [
            Stmt.mk ~loc
              (Stmt.AbsStore
                 ( arr.Tctx.ty,
                   Expr.simplify (Address.address arr binds ~subs:subs'),
                   rw e ));
          ]
      | None ->
          [ { t with Stmt.s = Stmt.Assign (Stmt.LRef (a, List.map rw subs), rw e) } ])
  | Stmt.AbsStore (ty, aexp, v) ->
      [ { t with Stmt.s = Stmt.AbsStore (ty, rw aexp, rw v) } ]
  | Stmt.Call (n, args) ->
      let args' =
        List.map
          (fun arg ->
            match arg with
            | Expr.Var v when is_array st v -> arg
            | Expr.Ref (a, subs) when is_array st a ->
                Expr.Ref (a, List.map rw subs)
            | e -> rw e)
          args
      in
      [ { t with Stmt.s = Stmt.Call (n, args') } ]
  | Stmt.Print es ->
      [
        {
          t with
          Stmt.s = Stmt.Print (List.map (function Expr.Str _ as s -> s | e -> rw e) es);
        };
      ]
  | Stmt.Redistribute _ | Stmt.Continue | Stmt.Return | Stmt.Barrier -> [ t ]
  | Stmt.Gather g ->
      (* inspector bounds/subscripts are pure scalar expressions over
         non-reshaped data by construction; rewrite is a no-op apart from
         constant folding *)
      [
        {
          t with
          Stmt.s =
            Stmt.Gather
              {
                g with
                Stmt.g_dims =
                  List.map (fun (v, lo, hi) -> (v, rw lo, rw hi)) g.Stmt.g_dims;
                g_isubs = List.map rw g.Stmt.g_isubs;
              };
        };
      ]
  | Stmt.Par p ->
      [ { t with Stmt.s = Stmt.Par { Stmt.pbody = xform_body st binds p.Stmt.pbody } } ]

(* --- serial loops: maybe tile over a reshaped array's portions (§7.1) --- *)

and xform_do st binds loc (d : Stmt.do_) =
  (* an inner loop reusing a bound variable shadows the binding *)
  let binds = List.filter (fun (_, b) -> b.Address.bvar <> d.Stmt.var) binds in
  let rw = rewrite_expr st binds in
  let descend () =
    [
      Stmt.mk ~loc
        (Stmt.Do
           {
             d with
             Stmt.lo = rw d.Stmt.lo;
             hi = rw d.Stmt.hi;
             step = Option.map rw d.Stmt.step;
             body = xform_body st binds d.Stmt.body;
           });
    ]
  in
  if not st.flags.Flags.tile then descend ()
  else if const_step d <> Some 1 then descend ()
  else
    match find_candidates st binds ~var:d.Stmt.var d.Stmt.body with
    | [] -> (
        match try_skew st binds loc d with
        | Some stmts -> stmts
        | None -> descend ())
    | cands ->
        let primary =
          List.fold_left (fun best c -> if c.c_count > best.c_count then c else best)
            (List.hd cands) (List.tl cands)
        in
        let bound = List.filter (fun c -> coincide primary c) cands in
        tile st binds loc d ~primary ~bound

(* §7.1 loop skewing: references like [A(i + c*k)] with a loop-invariant,
   symbolic offset are not affine in [i], so tiling cannot fire. Skew the
   loop by the most common such offset e — iterate i' = i + e and rewrite
   the matching subscripts to plain [i'] (other uses of i become i' - e) —
   "which enables subsequent tiling and peeling". *)
and try_skew st binds loc (d : Stmt.do_) : Stmt.t list option =
  if not st.flags.Flags.skew then None
  else begin
    let v = d.Stmt.var in
    (* decompose [sub] as [v + e] with [v] occurring exactly once in the
       additive top-level structure; returns the symbolic offset e *)
    let rec additive_offset (sub : Expr.t) : Expr.t option =
      match sub with
      | Expr.Var x when x = v -> Some (Expr.Int 0)
      | Expr.Bin (Expr.Add, a, b) -> (
          let va = List.mem v (Expr.free_vars a)
          and vb = List.mem v (Expr.free_vars b) in
          match (va, vb) with
          | true, false ->
              Option.map (fun ea -> Expr.simplify (Expr.Bin (Expr.Add, ea, b))) (additive_offset a)
          | false, true ->
              Option.map (fun eb -> Expr.simplify (Expr.Bin (Expr.Add, a, eb))) (additive_offset b)
          | _ -> None)
      | Expr.Bin (Expr.Sub, a, b) when not (List.mem v (Expr.free_vars b)) ->
          Option.map (fun ea -> Expr.simplify (Expr.Bin (Expr.Sub, ea, b))) (additive_offset a)
      | _ -> None
    in
    let killed = v :: Stmt.assigned_vars d.Stmt.body in
    let invariant e =
      (not (List.mem v (Expr.free_vars e)))
      && (not
            (Expr.exists
               (function
                 | Expr.Ref _ | Expr.AbsLoad _ | Expr.Str _ -> true
                 | _ -> false)
               e))
      && List.for_all (fun x -> not (List.mem x killed)) (Expr.free_vars e)
    in
    (* census of invariant additive offsets in reshaped-array subscripts *)
    let tbl : (Expr.t, int) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (name, subs) ->
        if Tctx.reshaped st.ctx name <> None then
          List.iter
            (fun sub ->
              let sub = Expr.simplify sub in
              if List.mem v (Expr.free_vars sub) && Expr.affine_in v sub = None
              then
                match additive_offset sub with
                | Some e when (not (Expr.is_const e)) && invariant e ->
                    Hashtbl.replace tbl e
                      (1 + Option.value ~default:0 (Hashtbl.find_opt tbl e))
                | _ -> ())
            subs)
      (collect_refs d.Stmt.body);
    let best =
      Hashtbl.fold
        (fun e c acc ->
          match acc with Some (_, c') when c' >= c -> acc | _ -> Some (e, c))
        tbl None
    in
    match best with
    | None -> None
    | Some (e, _) ->
        let off = Tctx.fresh st.ctx "skew" in
        let v' = Tctx.fresh st.ctx "si" in
        (* rewrite matching subscripts to the skewed variable, then shift
           all remaining uses of v *)
        let rewrite_sub sub =
          let s = Expr.simplify sub in
          if List.mem v (Expr.free_vars s) && Expr.affine_in v s = None then
            match additive_offset s with
            | Some e' when Expr.equal e' e -> Expr.Var v'
            | _ -> sub
          else sub
        in
        let rewrite_refs =
          Expr.map (fun ex ->
              match ex with
              | Expr.Ref (name, subs) when Tctx.reshaped st.ctx name <> None ->
                  Expr.Ref (name, List.map rewrite_sub subs)
              | other -> other)
        in
        (* stored-to reshaped targets (LRef) carry their subscripts outside
           any Ref node, so rewrite them explicitly *)
        let rec fix_stores (t : Stmt.t) =
          match t.Stmt.s with
          | Stmt.Assign (Stmt.LRef (a, subs), rhs)
            when Tctx.reshaped st.ctx a <> None ->
              { t with Stmt.s = Stmt.Assign (Stmt.LRef (a, List.map rewrite_sub subs), rhs) }
          | Stmt.Do dd ->
              { t with Stmt.s = Stmt.Do { dd with Stmt.body = List.map fix_stores dd.Stmt.body } }
          | Stmt.If (c, a, b) ->
              { t with Stmt.s = Stmt.If (c, List.map fix_stores a, List.map fix_stores b) }
          | _ -> t
        in
        let body =
          List.map
            (fun s -> Stmt.map_exprs rewrite_refs (fix_stores s))
            d.Stmt.body
        in
        let body =
          List.map
            (Stmt.map_exprs
               (Expr.subst_var v (sub (Expr.Var v') (Expr.Var off))))
            body
        in
        let pre = assign off e in
        let d' =
          {
            d with
            Stmt.var = v';
            lo = add d.Stmt.lo (Expr.Var off);
            hi = add d.Stmt.hi (Expr.Var off);
            body;
          }
        in
        Some (pre :: xform_do st binds loc d')
  end

(* Evaluate a bound expression into a temp unless it is already trivial. *)
and atomize st binds hint e =
  let e = rewrite_expr st binds (Expr.simplify e) in
  match e with
  | Expr.Int _ | Expr.Var _ -> (e, [])
  | _ ->
      let tv = Tctx.fresh st.ctx hint in
      (Expr.Var tv, [ assign tv e ])

and tile st binds loc (d : Stmt.do_) ~primary ~bound =
  let a = primary.c_arr and dim = primary.c_dim in
  let all_ns = List.concat_map (fun c -> c.c_ns) bound in
  let na = List.fold_left min (List.hd all_ns) all_ns in
  let nmax = List.fold_left max (List.hd all_ns) all_ns in
  let peel = st.flags.Flags.peel in
  let dh = if peel then nmax - na else 0 in
  let bonly = if peel then None else Some na in
  let lo_e, lo_pre = atomize st binds "lo" d.Stmt.lo in
  let hi_e, hi_pre = atomize st binds "hi" d.Stmt.hi in
  let pt = Tctx.fresh st.ctx "ptile" in
  let b = Address.meta_block a ~dim and pr = Address.meta_procs a ~dim in
  let tlo = Tctx.fresh st.ctx "tlo" and thi = Tctx.fresh st.ctx "thi" in
  let binds' =
    List.map
      (fun c ->
        ( (c.c_arr.Tctx.group, c.c_dim),
          { Address.bvar = d.Stmt.var; bowner = Expr.Var pt; bonly_n = bonly } ))
      bound
    @ binds
  in
  let interior = xform_body st binds' d.Stmt.body in
  let prologue =
    [
      (* portion of iterations whose anchor element lies in tile pt:
         tlo = max(lo, pt*b - na) ; thi = min(hi, (pt+1)*b - 1 - na) *)
      assign tlo (imax lo_e (sub (mul (Expr.Var pt) b) (int na)));
      assign thi
        (imin hi_e (sub (mul (add (Expr.Var pt) (int 1)) b) (int (na + 1))));
    ]
  in
  let loops =
    if dh = 0 then
      [ mk_do ~loc ~var:d.Stmt.var ~lo:(Expr.Var tlo) ~hi:(Expr.Var thi) interior ]
    else begin
      let mid = Tctx.fresh st.ctx "mid" in
      let general = xform_body st binds d.Stmt.body in
      [
        assign mid (sub (Expr.Var thi) (int dh));
        mk_do ~loc ~var:d.Stmt.var ~lo:(Expr.Var tlo) ~hi:(Expr.Var mid) interior;
        (* peeled top iterations keep the general Table 1 addressing *)
        mk_do ~loc ~var:d.Stmt.var
          ~lo:(imax (Expr.Var tlo) (add (Expr.Var mid) (int 1)))
          ~hi:(Expr.Var thi) general;
      ]
    end
  in
  lo_pre @ hi_pre
  @ [
      mk_do ~loc ~var:pt ~lo:(int 0) ~hi:(sub pr (int 1)) (prologue @ loops);
    ]

(* ------------------------------------------------------------------ *)
(* Doacross scheduling (§4.1, Figure 2) *)

and schedule st binds loc (da : Stmt.doacross) : Stmt.t list =
  let nest = Sema.loop_nest_vars da in
  match da.Stmt.affinity with
  | Some aff
    when Tctx.distributed st.ctx aff.Stmt.aarray <> None
         && List.for_all (fun v -> List.mem v aff.Stmt.avars) nest ->
      schedule_affinity st binds loc da nest aff
  | _ -> schedule_simple st binds loc da

and schedule_simple st binds loc (da : Stmt.doacross) =
  match (da.Stmt.sched, Sema.loop_nest_vars da, da.Stmt.loop.Stmt.body) with
  | Stmt.Simple, _ :: _ :: _, [ { Stmt.s = Stmt.Do inner; _ } ] ->
      schedule_simple_nest2 st binds loc da.Stmt.loop inner
  | _ -> schedule_simple_flat st binds loc da

(* A [nest] clause without (full) affinity: partition the 2-D iteration
   space over a runtime processor grid p1 x p2 with p1 = min(np, outer trip
   count) — a single-dimension split would cap parallelism at the outer trip
   count. Workers beyond p1*p2 (when p1 does not divide np) idle. *)
and schedule_simple_nest2 st binds loc (outer : Stmt.do_) (inner : Stmt.do_) =
  let k1 = Option.value ~default:1 (const_step outer) in
  let k2 = Option.value ~default:1 (const_step inner) in
  let lo1, lo1_pre = atomize st binds "lo" outer.Stmt.lo in
  let hi1, hi1_pre = atomize st binds "hi" outer.Stmt.hi in
  let f n = Tctx.fresh st.ctx n in
  let cnt1 = f "cnt" and p1 = f "pgrid" and p2 = f "pgrid" in
  let my1 = f "my" and my2 = f "my" in
  let chunk1 = f "chunk" and mylo1 = f "mylo" and myhi1 = f "myhi" in
  let cnt2 = f "cnt" and chunk2 = f "chunk" in
  let mylo2 = f "mylo" and myhi2 = f "myhi" in
  let v x = Expr.Var x in
  let pre =
    [
      assign cnt1
        (imax (int 0) (Expr.Idiv (Expr.Hw, add (sub hi1 lo1) (int k1), int k1)));
      assign p1 (imax (int 1) (Expr.Intrin ("min", [ np; v cnt1 ])));
      assign p2 (Expr.Idiv (Expr.Hw, np, v p1));
      assign my1 (Expr.Imod (Expr.Hw, myp, v p1));
      assign my2 (Expr.Idiv (Expr.Hw, myp, v p1));
      assign chunk1 (Address.cdiv_e (v cnt1) (v p1));
      assign mylo1 (add lo1 (mul (mul (v my1) (v chunk1)) (int k1)));
      assign myhi1
        (imin hi1
           (add lo1 (mul (sub (mul (add (v my1) (int 1)) (v chunk1)) (int 1)) (int k1))));
    ]
  in
  (* the inner loop's partition is computed per outer iteration (its bounds
     may depend on the outer variable) *)
  let lo2 = rewrite_expr st binds inner.Stmt.lo in
  let hi2 = rewrite_expr st binds inner.Stmt.hi in
  let inner_pre =
    [
      assign cnt2
        (imax (int 0) (Expr.Idiv (Expr.Hw, add (sub hi2 lo2) (int k2), int k2)));
      assign chunk2 (Address.cdiv_e (v cnt2) (v p2));
      assign mylo2 (add lo2 (mul (mul (v my2) (v chunk2)) (int k2)));
      assign myhi2
        (imin hi2
           (add lo2 (mul (sub (mul (add (v my2) (int 1)) (v chunk2)) (int 1)) (int k2))));
    ]
  in
  let inner' =
    { inner with Stmt.lo = v mylo2; hi = v myhi2 }
  in
  let outer' =
    {
      outer with
      Stmt.lo = v mylo1;
      hi = v myhi1;
      body = inner_pre @ xform_do st binds loc inner';
    }
  in
  let guard = Expr.Rel (Expr.Lt, v my2, v p2) in
  [
    Stmt.mk ~loc
      (Stmt.Par
         {
           Stmt.pbody =
             lo1_pre @ hi1_pre @ pre
             @ [
                 Stmt.mk ~loc
                   (Stmt.If (guard, [ Stmt.mk ~loc (Stmt.Do outer') ], []));
               ];
         });
  ]

and schedule_simple_flat st binds loc (da : Stmt.doacross) =
  let d = da.Stmt.loop in
  let k = Option.value ~default:1 (const_step d) in
  let lo_e, lo_pre = atomize st binds "lo" d.Stmt.lo in
  let hi_e, hi_pre = atomize st binds "hi" d.Stmt.hi in
  let body_stmts =
    match da.Stmt.sched with
    | Stmt.Interleave m when m <= 1 ->
        let d' =
          {
            d with
            Stmt.lo = add lo_e (mul myp (int k));
            hi = hi_e;
            step = Some (mul np (int k));
          }
        in
        xform_do st binds loc d'
    | Stmt.Interleave m ->
        (* chunks of m iterations dealt round-robin *)
        let start = Tctx.fresh st.ctx "chunkst" in
        let inner =
          {
            d with
            Stmt.lo = Expr.Var start;
            hi = imin hi_e (add (Expr.Var start) (int ((m - 1) * k)));
            step = d.Stmt.step;
          }
        in
        [
          mk_do ~loc ~var:start
            ~lo:(add lo_e (mul myp (int (m * k))))
            ~hi:hi_e
            ~step:(mul np (int (m * k)))
            (xform_do st binds loc inner);
        ]
    | Stmt.Simple ->
        let cnt = Tctx.fresh st.ctx "cnt" in
        let chunk = Tctx.fresh st.ctx "chunk" in
        let mylo = Tctx.fresh st.ctx "mylo" in
        let myhi = Tctx.fresh st.ctx "myhi" in
        let pre =
          [
            assign cnt
              (imax (int 0)
                 (Expr.Idiv (Expr.Hw, add (sub hi_e lo_e) (int k), int k)));
            assign chunk (Address.cdiv_e (Expr.Var cnt) np);
            assign mylo (add lo_e (mul (mul myp (Expr.Var chunk)) (int k)));
            assign myhi
              (imin hi_e
                 (add lo_e
                    (mul
                       (sub (mul (add myp (int 1)) (Expr.Var chunk)) (int 1))
                       (int k))));
          ]
        in
        let d' =
          { d with Stmt.lo = Expr.Var mylo; hi = Expr.Var myhi }
        in
        pre @ xform_do st binds loc d'
  in
  [ Stmt.mk ~loc (Stmt.Par { Stmt.pbody = lo_pre @ hi_pre @ body_stmts }) ]

and schedule_affinity st binds loc (da : Stmt.doacross) nest aff =
  let a = Option.get (Tctx.distributed st.ctx aff.Stmt.aarray) in
  let dynamic = Tctx.is_dynamic st.ctx a.Tctx.name in
  let ndims = Array.length a.Tctx.kinds in
  (* grid decomposition of the worker id, first dimension fastest. For a
     redistributable array the set of distributed dimensions is a run-time
     property, so decompose over every dimension through the descriptor
     (star dimensions have procs = 1 and contribute nothing). *)
  let rem = Tctx.fresh st.ctx "rem" in
  let owners = Array.make ndims (int 0) in
  let decomp = ref [ assign rem myp ] in
  let dist_dims =
    if dynamic then List.init ndims Fun.id
    else
      List.filter (fun d -> K.is_distributed a.Tctx.kinds.(d)) (List.init ndims Fun.id)
  in
  List.iteri
    (fun i d ->
      let o = Tctx.fresh st.ctx "own" in
      owners.(d) <- Expr.Var o;
      let p = Address.meta_procs a ~dim:d in
      if i = List.length dist_dims - 1 && not dynamic then
        decomp := assign o (Expr.Var rem) :: !decomp
      else begin
        decomp := assign o (Expr.Imod (Expr.Hw, Expr.Var rem, p)) :: !decomp;
        decomp := assign rem (Expr.Idiv (Expr.Hw, Expr.Var rem, p)) :: !decomp
      end)
    dist_dims;
  let decomp = List.rev !decomp in
  (* map each nest variable to its affinity dimension and (s, c) *)
  let dim_of_var v =
    let rec go d = function
      | [] -> None
      | s :: rest -> (
          match Expr.affine_in v (Expr.simplify s) with
          | Some (sc, c) when List.mem v (Expr.free_vars s) -> Some (d, sc, c)
          | _ -> go (d + 1) rest)
    in
    go 0 aff.Stmt.asubs
  in
  (* build the scheduled loops, outermost nest variable first *)
  let rec build vars binds (d : Stmt.do_) : Stmt.t list =
    match vars with
    | [] -> xform_body st binds d.Stmt.body
    | v :: rest ->
        let inner binds' =
          match rest with
          | [] -> xform_body st binds' d.Stmt.body
          | _ -> (
              match d.Stmt.body with
              | [ { Stmt.s = Stmt.Do d2; _ } ] -> build rest binds' d2
              | _ ->
                  (* sema enforces perfect nests; defensive fallback *)
                  xform_body st binds' d.Stmt.body)
        in
        (match dim_of_var v with
        | None -> xform_do st binds loc d (* unconstrained: should not happen *)
        | Some (dv, s, c) -> schedule_one st binds loc d ~arr:a ~owner:owners.(dv) ~dv ~s ~c ~inner)
  in
  let loops = build nest binds da.Stmt.loop in
  (* distributed dimensions not named by any affinity variable are pinned
     by their (constant) subscript: only workers whose owner component
     matches that coordinate's owner execute the nest *)
  let generic_owner d i0 =
    Expr.Imod
      ( Expr.Hw,
        Expr.Idiv (Expr.Hw, i0, Address.meta_block a ~dim:d),
        Address.meta_procs a ~dim:d )
  in
  let guards =
    List.filteri
      (fun d _ -> dynamic || K.is_distributed a.Tctx.kinds.(d))
      (List.mapi (fun d sub -> (d, sub)) aff.Stmt.asubs)
    |> List.filter_map (fun (d, sub) ->
           let has_avar =
             List.exists
               (fun v -> List.mem v (Expr.free_vars sub))
               aff.Stmt.avars
           in
           if has_avar then None
           else
             match Expr.const_int (Expr.simplify sub) with
             | Some c ->
                 let i0 = int (c - a.Tctx.lowers.(d)) in
                 let own =
                   if dynamic then generic_owner d i0
                   else Address.owner_expr a ~dim:d ~i0
                 in
                 Some (Expr.Rel (Expr.Eq, owners.(d), own))
             | None -> None)
  in
  let body =
    List.fold_left
      (fun acc g -> [ Stmt.mk ~loc (Stmt.If (g, acc, [])) ])
      loops guards
  in
  (* a redistributable array's onto-grid may have been shrunk below the
     worker count by a procs(n) clause; the generic decomposition then
     wraps the surplus worker ids back onto the grid, so those workers
     (left with a non-zero remainder) must sit the nest out rather than
     duplicate the low-id workers' iterations *)
  let body =
    if dynamic then
      [
        Stmt.mk ~loc
          (Stmt.If (Expr.Rel (Expr.Eq, Expr.Var rem, int 0), body, []));
      ]
    else body
  in
  [ Stmt.mk ~loc (Stmt.Par { Stmt.pbody = decomp @ body }) ]

(* Schedule one parallel loop [d] whose iterations follow dimension [dv] of
   [arr] with affinity subscript [s*v + c]; [owner] is this worker's owner
   index along that dimension; [inner] produces the loop body given the
   bindings in effect. *)
and schedule_one st binds loc (d : Stmt.do_) ~arr ~owner ~dv ~s ~c ~inner =
  let lower = arr.Tctx.lowers.(dv) in
  let n_aff = c - lower in
  let k = Option.value ~default:1 (const_step d) in
  let lo_e, lo_pre = atomize st binds "lo" d.Stmt.lo in
  let hi_e, hi_pre = atomize st binds "hi" d.Stmt.hi in
  let pr = Address.meta_procs arr ~dim:dv in
  let guarded owner_of_i0 =
    (* fallback: every worker scans the range, executing owned iterations *)
    let i0 = sub (add (mul (int s) (Expr.Var d.Stmt.var)) (int c)) (int lower) in
    let guard = Expr.Rel (Expr.Eq, owner_of_i0 i0, owner) in
    lo_pre @ hi_pre
    @ [
        mk_do ~loc ~var:d.Stmt.var ~lo:lo_e ~hi:hi_e ?step:d.Stmt.step
          [ Stmt.mk ~loc (Stmt.If (guard, inner binds, [])) ];
      ]
  in
  let general_guarded () = guarded (fun i0 -> Address.owner_expr arr ~dim:dv ~i0) in
  (* owner formula valid for every kind at runtime: (i0 / b) mod P, since
     block has b = ceil(N/P), cyclic has b = 1, cyclic(k) has b = k, and a
     star dimension has b = N with P = 1 *)
  let kind_generic_owner i0 =
    Expr.Imod
      ( Expr.Hw,
        Expr.Idiv (Expr.Hw, i0, Address.meta_block arr ~dim:dv),
        Address.meta_procs arr ~dim:dv )
  in
  if Tctx.is_dynamic st.ctx arr.Tctx.name then
    (* redistributable array: the distribution kind is only known at run
       time, so schedule with the kind-generic guarded form *)
    guarded kind_generic_owner
  else if s = 0 then
    (* every iteration touches the same element: its owner runs the loop *)
    let i0 = int (c - lower) in
    let guard = Expr.Rel (Expr.Eq, Address.owner_expr arr ~dim:dv ~i0, owner) in
    lo_pre @ hi_pre
    @ [
        Stmt.mk ~loc
          (Stmt.If
             ( guard,
               [ mk_do ~loc ~var:d.Stmt.var ~lo:lo_e ~hi:hi_e ?step:d.Stmt.step (inner binds) ],
               [] ));
      ]
  else
    match arr.Tctx.kinds.(dv) with
    | K.Star ->
        (* a '*' dimension has a single owner, so the affinity constraint is
           vacuous: every worker runs the full range (its other nest
           variables remain constrained) *)
        lo_pre @ hi_pre
        @ [
            mk_do ~loc ~var:d.Stmt.var ~lo:lo_e ~hi:hi_e ?step:d.Stmt.step
              (inner binds);
          ]
    | K.Block ->
        let b = Address.meta_block arr ~dim:dv in
        let tlo = Tctx.fresh st.ctx "tlo" and thi = Tctx.fresh st.ctx "thi" in
        let raw_lo =
          if s = 1 then sub (mul owner b) (int n_aff)
          else Address.cdiv_e (sub (mul owner b) (int n_aff)) (int s)
        in
        let raw_hi =
          if s = 1 then sub (mul (add owner (int 1)) b) (int (n_aff + 1))
          else
            Expr.Idiv
              (Expr.Hw, sub (mul (add owner (int 1)) b) (int (n_aff + 1)), int s)
        in
        let align =
          if k = 1 then []
          else
            [
              assign tlo
                (add lo_e
                   (mul (Address.cdiv_e (sub (Expr.Var tlo) lo_e) (int k)) (int k)));
            ]
        in
        let pre =
          lo_pre @ hi_pre
          @ [ assign tlo (imax lo_e raw_lo) ]
          @ align
          @ [ assign thi (imin hi_e raw_hi) ]
        in
        (* strength-reduced bindings inside the scheduled loop (§7.1) *)
        if st.flags.Flags.tile && s = 1 then begin
          let cands = find_candidates st binds ~var:d.Stmt.var d.Stmt.body in
          let self = { c_arr = arr; c_dim = dv; c_ns = [ n_aff ]; c_count = 1 } in
          let bound = List.filter (fun cd -> coincide self cd) cands in
          let all_ns = n_aff :: List.concat_map (fun cd -> cd.c_ns) bound in
          let nmin = List.fold_left min n_aff all_ns
          and nmax = List.fold_left max n_aff all_ns in
          let peel = st.flags.Flags.peel && k = 1 in
          let dl = if peel then n_aff - nmin else 0
          and dh = if peel then nmax - n_aff else 0 in
          let bonly = if peel then None else Some n_aff in
          let mkbind cd =
            ( (cd.c_arr.Tctx.group, cd.c_dim),
              { Address.bvar = d.Stmt.var; bowner = owner; bonly_n = bonly } )
          in
          let self_bind =
            ( (arr.Tctx.group, dv),
              { Address.bvar = d.Stmt.var; bowner = owner; bonly_n = bonly } )
          in
          let binds' =
            self_bind :: List.map mkbind bound
            @ List.filter (fun (key, _) -> key <> (arr.Tctx.group, dv)) binds
          in
          let binds' =
            (* dedupe keys *)
            List.fold_left
              (fun acc ((key, _) as kv) ->
                if List.mem_assoc key acc then acc else acc @ [ kv ])
              [] binds'
          in
          if dl = 0 && dh = 0 then
            pre
            @ [
                mk_do ~loc ~var:d.Stmt.var ~lo:(Expr.Var tlo) ~hi:(Expr.Var thi)
                  ?step:d.Stmt.step (inner binds');
              ]
          else begin
            let ilo = Tctx.fresh st.ctx "ilo" and ihi = Tctx.fresh st.ctx "ihi" in
            pre
            @ [
                assign ilo (add (Expr.Var tlo) (int dl));
                assign ihi (sub (Expr.Var thi) (int dh));
                (* peel low *)
                mk_do ~loc ~var:d.Stmt.var ~lo:(Expr.Var tlo)
                  ~hi:(imin (Expr.Var thi) (sub (Expr.Var ilo) (int 1)))
                  (inner binds);
                (* interior *)
                mk_do ~loc ~var:d.Stmt.var ~lo:(Expr.Var ilo) ~hi:(Expr.Var ihi)
                  (inner binds');
                (* peel high *)
                mk_do ~loc ~var:d.Stmt.var
                  ~lo:(imax (Expr.Var ilo) (imax (Expr.Var tlo) (add (Expr.Var ihi) (int 1))))
                  ~hi:(Expr.Var thi) (inner binds);
              ]
          end
        end
        else
          pre
          @ [
              mk_do ~loc ~var:d.Stmt.var ~lo:(Expr.Var tlo) ~hi:(Expr.Var thi)
                ?step:d.Stmt.step (inner binds);
            ]
    | K.Cyclic when s = 1 && k = 1 ->
        (* Figure 2: do i = LB + ((p - LB - c) mod P), UB, P *)
        let tlo = Tctx.fresh st.ctx "tlo" in
        lo_pre @ hi_pre
        @ [
            assign tlo
              (add lo_e (Expr.Imod (Expr.Hw, sub (sub owner (int n_aff)) lo_e, pr)));
            mk_do ~loc ~var:d.Stmt.var ~lo:(Expr.Var tlo) ~hi:hi_e ~step:pr
              (inner binds);
          ]
    | K.Cyclic -> general_guarded ()
    | K.Cyclic_k ck when s = 1 && k = 1 && arr.Tctx.extents <> None ->
        (* triply nested form: outer loop over this worker's chunks *)
        let extent = (Option.get arr.Tctx.extents).(dv) in
        let nchunks = (extent + ck - 1) / ck in
        let ch = Tctx.fresh st.ctx "chunk" in
        lo_pre @ hi_pre
        @ [
            mk_do ~loc ~var:ch ~lo:owner ~hi:(int (nchunks - 1)) ~step:pr
              [
                mk_do ~loc ~var:d.Stmt.var
                  ~lo:(imax lo_e (sub (mul (Expr.Var ch) (int ck)) (int n_aff)))
                  ~hi:
                    (imin hi_e
                       (sub
                          (add (mul (Expr.Var ch) (int ck)) (int (ck - 1)))
                          (int n_aff)))
                  (inner binds);
              ];
          ]
    | K.Cyclic_k _ -> general_guarded ()

(* ------------------------------------------------------------------ *)

let routine ctx flags (r : Decl.routine) =
  let st = { ctx; flags } in
  { r with Decl.rbody = xform_body st [] r.Decl.rbody }
