(** Per-routine transformation context: the distilled array facts the
    lowering passes need, plus the fresh-name supply. *)

open Ddsm_ir

type arr = {
  name : string;
  kinds : Ddsm_dist.Kind.t array;
  reshape : bool;
  dynamic : bool;
      (** target of a [c$redistribute] in this routine: the declared [kinds]
          only describe the initial layout, so codegen must address through
          the run-time descriptor with kind-generic forms *)
  lowers : int array;  (** constant lower bounds (reshaped codegen needs them) *)
  extents : int array option;  (** constant extents when known *)
  ty : Types.ty;
  group : string;
      (** arrays with equal [group] keys have identical distribution and
          shape, so they can share loop tiling (§7.1: "other reshaped arrays
          that match the first array in size and distribution") *)
}

type t

val create : Ddsm_sema.Sema.env -> t

val is_dynamic : t -> string -> bool
(** The array is the target of a [c$redistribute] somewhere in the routine,
    so its distribution kind is not a compile-time constant and affinity
    scheduling must use the kind-generic guarded form. *)

val fresh : t -> string -> string
val env : t -> Ddsm_sema.Sema.env

val distributed : t -> string -> arr option
(** Info for any distributed array (regular or reshaped). *)

val reshaped : t -> string -> arr option
(** Info only when the array is reshaped. *)

val elem_ty : t -> string -> Types.ty
(** Element type of a declared array (defaults to real for unknowns). *)
