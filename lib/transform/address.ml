open Ddsm_ir
module K = Ddsm_dist.Kind

type bind = { bvar : string; bowner : Expr.t; bonly_n : int option }
type binds = ((string * int) * bind) list

let meta_block (a : Tctx.arr) ~dim = Expr.Meta (a.Tctx.name, Expr.Block dim)
let meta_procs (a : Tctx.arr) ~dim = Expr.Meta (a.Tctx.name, Expr.Procs dim)
let meta_stor (a : Tctx.arr) ~dim = Expr.Meta (a.Tctx.name, Expr.Stor dim)

let cdiv_e a b =
  Expr.Idiv (Expr.Hw, Expr.Bin (Expr.Add, a, Expr.Bin (Expr.Sub, b, Expr.Int 1)), b)

let owner_expr (a : Tctx.arr) ~dim ~i0 =
  if a.Tctx.dynamic then
    (* kind-generic owner, valid for whatever layout the descriptor holds
       after a redistribute: (i0 / b) mod P.  Block has b = ceil(N/P) so
       i0/b < P already; cyclic has b = 1; cyclic(k) has b = k; star has
       b = N with P = 1. *)
    Expr.Imod
      (Expr.Hw, Expr.Idiv (Expr.Hw, i0, meta_block a ~dim), meta_procs a ~dim)
  else
    match a.Tctx.kinds.(dim) with
    | K.Star -> Expr.Int 0
    | K.Block -> Expr.Idiv (Expr.Hw, i0, meta_block a ~dim)
    | K.Cyclic -> Expr.Imod (Expr.Hw, i0, meta_procs a ~dim)
    | K.Cyclic_k k ->
        Expr.Imod
          (Expr.Hw, Expr.Idiv (Expr.Hw, i0, Expr.Int k), meta_procs a ~dim)

let offset_expr (a : Tctx.arr) ~dim ~i0 =
  if a.Tctx.dynamic then
    (* kind-generic local offset: (i0 / (b*P))*b + i0 mod b.  Block: the
       quotient is 0, leaving i0 mod b; cyclic: b = 1 leaves i0/P;
       cyclic(k): cycle number times k plus position in the block; star:
       b = N, P = 1 leaves i0. *)
    let b = meta_block a ~dim in
    Expr.Bin
      ( Expr.Add,
        Expr.Bin
          ( Expr.Mul,
            Expr.Idiv (Expr.Hw, i0, Expr.Bin (Expr.Mul, b, meta_procs a ~dim)),
            b ),
        Expr.Imod (Expr.Hw, i0, b) )
  else
    match a.Tctx.kinds.(dim) with
    | K.Star -> i0
    | K.Block -> Expr.Imod (Expr.Hw, i0, meta_block a ~dim)
    | K.Cyclic -> Expr.Idiv (Expr.Hw, i0, meta_procs a ~dim)
    | K.Cyclic_k k ->
        Expr.Bin
          ( Expr.Add,
            Expr.Bin
              ( Expr.Mul,
                Expr.Idiv
                  ( Expr.Hw,
                    i0,
                    Expr.Bin (Expr.Mul, Expr.Int k, meta_procs a ~dim) ),
                Expr.Int k ),
            Expr.Imod (Expr.Hw, i0, Expr.Int k) )

(* owner and offset for one dimension, honouring a binding when the
   subscript is affine (s=1) in the bound variable *)
let dim_parts (a : Tctx.arr) binds ~dim ~sub =
  let i0 = Expr.Bin (Expr.Sub, sub, Expr.Int a.Tctx.lowers.(dim)) in
  let general () = (owner_expr a ~dim ~i0, offset_expr a ~dim ~i0) in
  (* a redistributable array never takes a strength-reduced binding: the
     binding encodes the compile-time block layout, which a redistribute
     invalidates (another array of the same group may still own one) *)
  if a.Tctx.dynamic then general ()
  else
  match List.assoc_opt (a.Tctx.group, dim) binds with
  | None -> general ()
  | Some { bvar; bowner; bonly_n } -> (
      match Expr.affine_in bvar (Expr.simplify sub) with
      | Some (1, c)
        when bonly_n = None || bonly_n = Some (c - a.Tctx.lowers.(dim)) ->
          (* strength-reduced: owner pinned; offset = v + c - lower - o*b *)
          let off =
            Expr.Bin
              ( Expr.Sub,
                Expr.Bin
                  ( Expr.Add,
                    Expr.Var bvar,
                    Expr.Int (c - a.Tctx.lowers.(dim)) ),
                Expr.Bin (Expr.Mul, bowner, meta_block a ~dim) )
          in
          (bowner, off)
      | _ -> general ())

let address (a : Tctx.arr) binds ~subs =
  let nd = Array.length a.Tctx.kinds in
  if List.length subs <> nd then invalid_arg "Address.address: rank mismatch";
  let parts =
    List.mapi (fun dim sub -> dim_parts a binds ~dim ~sub) subs
  in
  let owners = List.map fst parts and offs = List.map snd parts in
  (* Horner, first dimension fastest: o0 + P0*(o1 + P1*(o2 + ...)) *)
  let horner terms strides =
    match List.rev (List.combine terms strides) with
    | [] -> Expr.Int 0
    | (last, _) :: rest ->
        List.fold_left
          (fun acc (t, stride) -> Expr.Bin (Expr.Add, t, Expr.Bin (Expr.Mul, stride, acc)))
          last rest
  in
  let proc_strides =
    List.init nd (fun d ->
        (* a '*' dimension statically contributes stride 1 — unless the
           array is redistributable, in which case the dimension may stop
           being '*' at run time (a star dimension's descriptor procs is 1,
           so the generic stride is still exact) *)
        if a.Tctx.kinds.(d) = K.Star && not a.Tctx.dynamic then Expr.Int 1
        else meta_procs a ~dim:d)
  in
  let stor_strides = List.init nd (fun d -> meta_stor a ~dim:d) in
  let linear_owner = Expr.simplify (horner owners proc_strides) in
  let local_linear = Expr.simplify (horner offs stor_strides) in
  Expr.Bin (Expr.Add, Expr.BaseOf (a.Tctx.name, linear_owner), local_linear)
