type t = {
  tile : bool;
  peel : bool;
  skew : bool;
  hoist : bool;
  cse : bool;
  fp_divmod : bool;
  interchange : bool;
  inspector : bool;
}

let all_on =
  {
    tile = true;
    peel = true;
    skew = true;
    hoist = true;
    cse = true;
    fp_divmod = true;
    interchange = true;
    inspector = true;
  }

let all_off =
  {
    tile = false;
    peel = false;
    skew = false;
    hoist = false;
    cse = false;
    fp_divmod = false;
    interchange = false;
    inspector = false;
  }

let tile_peel = { all_off with tile = true; peel = true; skew = true }
let tile_peel_hoist = { tile_peel with hoist = true; cse = true; interchange = true }

let pp ppf t =
  let b name v = if v then name else "no-" ^ name in
  Format.fprintf ppf "[%s %s %s %s %s %s %s %s]" (b "tile" t.tile)
    (b "peel" t.peel) (b "skew" t.skew) (b "hoist" t.hoist) (b "cse" t.cse)
    (b "fpdiv" t.fp_divmod) (b "interchange" t.interchange)
    (b "inspector" t.inspector)
