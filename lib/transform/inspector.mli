(** Inspector-executor transformation of irregular (indirect-subscript)
    loops, DESIGN.md §13.

    A qualifying nest reading [a(s*idx(f(vars))+c)] is split into a
    [Stmt.Gather] inspector emitted just before the nest -- it walks the
    rectangle once, reads the index array, and bulk-fetches the
    referenced target elements per home node into scratch -- and an
    executor: the original nest with each such reference rewritten to
    [Expr.AbsLoad] of the scratch word for its iteration slot (addressed
    off [Expr.GatherBase]).  Runs before {!Lower} on the checked surface
    routine; gated by {!Flags.t.inspector}. *)

val routine : Tctx.t -> Ddsm_ir.Decl.routine -> Ddsm_ir.Decl.routine
