(** Optimization flags, one per §7 technique, so the benchmark harness can
    reproduce Table 2's rows and run ablations. Affinity scheduling itself
    (§4.1) is not a flag: it is the semantics of the [affinity] clause and
    always runs. *)

type t = {
  tile : bool;
      (** §7.1 tiling: processor-tile loops over reshaped-array portions,
          with strength-reduced (div/mod-free) addressing in the tiles *)
  peel : bool;
      (** §7.1 peeling of boundary iterations so stencil neighbours stay
          within the tile's portion *)
  skew : bool;
      (** §7.1 loop skewing: convert references like [A(i + c*k)] ([k]
          loop-invariant) to [A(i')] so tiling and peeling apply *)
  hoist : bool;  (** §7.2 hoisting of indirect loads and div/mod out of loops *)
  cse : bool;  (** §7.2 CSE across reshaped index expressions *)
  fp_divmod : bool;  (** §7.3 div/mod via floating-point arithmetic *)
  interchange : bool;  (** §7.1.1 moving processor-tile loops outward *)
  inspector : bool;
      (** inspector-executor transformation of irregular (indirect-
          subscript) loops: the index vector is walked once, referenced
          elements are bulk-gathered per home node into scratch, and the
          loop reads the scratch (see DESIGN.md §13) *)
}

val all_on : t
val all_off : t
val tile_peel : t
(** Table 2 row 2: tiling and peeling only. *)

val tile_peel_hoist : t
(** Table 2 row 3: adds hoisting (and the CSE it enables). *)

val pp : Format.formatter -> t -> unit
