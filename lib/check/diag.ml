type task_state = Ready | Waiting of int | Blocked_mem | Done

type task_view = {
  tv_proc : int;
  tv_clock : int;
  tv_depth : int;
  tv_state : task_state;
  tv_children : task_view list;
}

type reason =
  | User of string
  | Internal of string
  | Deadlock
  | Cycle_budget of { limit : int }
  | Watchdog_stall of { steps : int }
  | Audit_failure

type t = {
  phase : string;
  reason : reason;
  proc_clocks : (int * int) list;
  blocked : task_view list;
  counters : (string * int) list;
  violations : Audit.violation list;
}

let bare ?(phase = "execute") reason =
  { phase; reason; proc_clocks = []; blocked = []; counters = []; violations = [] }

let user ?phase m = bare ?phase (User m)
let internal ?phase m = bare ?phase (Internal m)

let is_internal t =
  match t.reason with Internal _ | Audit_failure -> true | _ -> false

let code t =
  match t.reason with
  | User _ -> "user"
  | Internal _ -> "internal"
  | Deadlock -> "deadlock"
  | Cycle_budget _ -> "cycle-budget"
  | Watchdog_stall _ -> "watchdog-stall"
  | Audit_failure -> "audit"

let headline t =
  match t.reason with
  | User m -> m
  | Internal m -> "internal invariant violation: " ^ m
  | Deadlock -> "deadlock: program did not run to completion"
  | Cycle_budget { limit } ->
      Printf.sprintf "simulated cycle limit exceeded (budget %d)" limit
  | Watchdog_stall { steps } ->
      Printf.sprintf
        "watchdog: scheduler made no progress in %d steps (livelock?)" steps
  | Audit_failure ->
      Printf.sprintf "invariant audit failed (%d violation(s))"
        (List.length t.violations)

let pp_state ppf = function
  | Ready -> Format.pp_print_string ppf "ready"
  | Waiting n -> Format.fprintf ppf "waiting(%d children)" n
  | Blocked_mem -> Format.pp_print_string ppf "blocked on memory wakeup"
  | Done -> Format.pp_print_string ppf "done"

let rec pp_task ppf v =
  Format.fprintf ppf "@[<v 2>proc %d  clock %d  depth %d  %a%a@]" v.tv_proc
    v.tv_clock v.tv_depth pp_state v.tv_state
    (fun ppf -> function
      | [] -> ()
      | cs -> Format.fprintf ppf "@ %a" (Format.pp_print_list pp_task) cs)
    v.tv_children

let pp ppf t =
  Format.fprintf ppf "@[<v>%s" (headline t);
  if
    t.proc_clocks <> [] || t.blocked <> [] || t.counters <> []
    || t.violations <> []
  then begin
    Format.fprintf ppf "@ phase: %s" t.phase;
    if t.proc_clocks <> [] then begin
      Format.fprintf ppf "@ per-proc clocks:";
      List.iter (fun (p, c) -> Format.fprintf ppf " p%d=%d" p c) t.proc_clocks
    end;
    if t.blocked <> [] then
      Format.fprintf ppf "@ @[<v 2>blocked tasks:@ %a@]"
        (Format.pp_print_list pp_task) t.blocked;
    if t.violations <> [] then
      Format.fprintf ppf "@ %a" Audit.pp_list t.violations;
    (match List.filter (fun (_, n) -> n <> 0) t.counters with
    | [] -> ()
    | cs ->
        Format.fprintf ppf "@ counters:";
        List.iter (fun (k, n) -> Format.fprintf ppf " %s=%d" k n) cs)
  end;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t
