type violation = { invariant : string; detail : string }

let v invariant fmt =
  Printf.ksprintf (fun detail -> { invariant; detail }) fmt

let pp ppf x = Format.fprintf ppf "[%s] %s" x.invariant x.detail

let pp_list ppf = function
  | [] -> Format.pp_print_string ppf "audit clean"
  | vs ->
      Format.fprintf ppf "@[<v>%d invariant violation(s):@ %a@]" (List.length vs)
        (Format.pp_print_list pp) vs

let report vs = Format.asprintf "%a" pp_list vs
