(** Deterministic fault injection for the simulated CC-NUMA machine.

    A {!t} is an immutable, seeded plan of performance-side perturbations:
    slow memory modules, hot directory controllers, congested router links,
    periodic TLB shootdowns and retryable page-redistribution failures. The
    machine model consults the plan at fixed points; because every decision
    is a pure function of the plan and of deterministic machine state
    (access counts, attempt indices), a faulty run is exactly reproducible.

    Faults never corrupt values — they only stretch latencies or force the
    runtime down its degradation paths — so any program must produce
    byte-identical output under any plan (the paper's "directives affect
    only the performance, not the correctness" contract, which
    [pflrun --differential] mechanizes).

    The one exception is {!field-lose_wakeup}, a chaos fault that drops a
    scheduler wakeup to *induce a deadlock on purpose*; it exists to
    exercise the engine's watchdog/diagnosis machinery and is never chosen
    by {!random}. *)

type t = {
  seed : int;  (** identifies the plan in reports *)
  slow_nodes : (int * int) list;
      (** (node, extra cycles) added to every memory-module service at the
          node — a degraded DIMM / flaky memory controller *)
  hot_dirs : (int * int) list;
      (** (node, extra cycles) added to every directory transaction homed
          at the node — a hot/overloaded directory controller *)
  slow_links : ((int * int) * int) list;
      (** (unordered node pair, extra cycles) added to every transfer
          crossing the link — a congested router port *)
  tlb_flush_period : int;
      (** flush a processor's TLB every N translations (0 = off) — models
          interference shootdowns; only costs TLB refills *)
  redist_fail : int;
      (** the first N redistribution attempts (machine-wide) return a
          retryable failure — models transient page-migration failure *)
  migrate_fail : int;
      (** page migrations fail from the Nth one on (1-based, machine-wide
          counter): the first N-1 succeed, so a planned bulk migration
          fails in the MIDDLE and must roll back; 0 = off. Never chosen by
          {!random} — the failure is persistent, so a redistribute under
          this clause always falls back to the old placement (correct,
          only slower). *)
  gather_fail : int;
      (** bulk gather fetches (the inspector-executor's per-home transfers)
          fail from the Nth one on (1-based, machine-wide counter): the
          runtime retries with bounded attempts and then falls back to
          per-element fetches — homes and results unchanged, only slower;
          0 = off. Never chosen by {!random} (the failure is
          persistent). *)
  lose_wakeup : int;
      (** chaos (not performance-side): drop the Nth memory-completion
          wakeup so the program deadlocks; 0 = off. For watchdog tests. *)
  drop_barrier : int;
      (** chaos (not performance-side): skip the Nth barrier note (1-based,
          machine-wide) so one processor's barrier arrival is lost — the
          classic missing-synchronization bug; 0 = off. For sanitizer
          tests; never chosen by {!random}. *)
}

val none : t
(** The empty plan: every query is a no-op. *)

val is_none : t -> bool

val make :
  ?seed:int ->
  ?slow_nodes:(int * int) list ->
  ?hot_dirs:(int * int) list ->
  ?slow_links:((int * int) * int) list ->
  ?tlb_flush_period:int ->
  ?redist_fail:int ->
  ?migrate_fail:int ->
  ?gather_fail:int ->
  ?lose_wakeup:int ->
  ?drop_barrier:int ->
  unit ->
  t

val random : seed:int -> nnodes:int -> t
(** A deterministic pseudo-random plan over a machine of [nnodes] nodes:
    0–2 slow nodes, at most one hot directory and one congested link,
    sometimes periodic TLB flushes and a few redistribution failures.
    Never includes [lose_wakeup]. Same seed, same plan. *)

(** {2 Queries made by the machine model} *)

val mem_extra : t -> node:int -> int
(** Extra service cycles at [node]'s memory module. *)

val dir_extra : t -> home:int -> int
(** Extra cycles per directory transaction homed at [home]. *)

val link_extra : t -> a:int -> b:int -> int
(** Extra cycles for a transfer between nodes [a] and [b] (symmetric;
    0 when [a = b]). *)

val tlb_flush_due : t -> accesses:int -> bool
(** Should the TLB be flushed before translation number [accesses]
    (1-based, per processor)? *)

val redist_attempt_fails : t -> attempt:int -> bool
(** Does redistribution attempt number [attempt] (0-based, machine-wide)
    fail retryably? *)

val migration_fails : t -> migration:int -> bool
(** Does page migration number [migration] (0-based, machine-wide) fail?
    True from the [migrate_fail]-th migration (1-based) on. *)

val gather_fetch_fails : t -> fetch:int -> bool
(** Does bulk gather fetch number [fetch] (1-based, machine-wide) fail
    retryably? True from the [gather_fail]-th fetch on. *)

val wakeup_lost : t -> wakeup:int -> bool
(** Chaos: is memory-completion wakeup number [wakeup] (1-based,
    machine-wide) dropped? *)

val barrier_dropped : t -> barrier:int -> bool
(** Chaos: is barrier note number [barrier] (1-based, machine-wide)
    dropped? A dropped note means one processor's arrival at a barrier is
    never published — the sanitizer should report the resulting races. *)

(** {2 Parsing and printing} *)

val of_spec : string -> (t, string) result
(** Parse a command-line spec: comma-separated [key=value] clauses.
    ["none"] and [""] give {!none}. Clauses:
    - [seed=N]
    - [slow=NODE:EXTRA] (repeatable)
    - [hotdir=NODE:EXTRA] (repeatable)
    - [link=A-B:EXTRA] (repeatable)
    - [tlb=PERIOD]
    - [redist-fail=N]
    - [migrate-fail=N]
    - [gather-fail=N]
    - [lose-wakeup=N]
    - [drop-barrier=N]
    - [random=SEED:NNODES] (expands to {!random}; other clauses override)

    Example: ["slow=0:80,hotdir=1:40,tlb=512,redist-fail=2"]. *)

val to_spec : t -> string
(** Inverse of {!of_spec} (modulo clause order). *)

val pp : Format.formatter -> t -> unit
