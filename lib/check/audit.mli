(** Invariant-audit vocabulary.

    The machine and runtime layers expose on-demand auditors
    ([Memsys.audit], [Rt.audit]) that sweep their state for violations of
    the simulator's structural invariants — single-writer coherence,
    directory/cache agreement, L1⊆L2 inclusion, pagetable/TLB agreement,
    physical-frame uniqueness, and heap canaries around array
    allocations. This module only defines the shared violation type; the
    checks themselves live next to the state they inspect. *)

type violation = { invariant : string; detail : string }

val v : string -> ('a, unit, string, violation) format4 -> 'a
(** [v invariant fmt ...] builds a violation with a formatted detail. *)

val pp : Format.formatter -> violation -> unit
val pp_list : Format.formatter -> violation list -> unit

val report : violation list -> string
(** Human-readable multi-line summary ("audit clean" for []). *)
