(** Structured execution diagnostics.

    The engine reports every failure as a {!t}: a machine-readable record
    of what went wrong (the {!reason}), where in the pipeline
    ([phase]), the per-processor clocks, a tree of the blocked simulated
    tasks, a hardware-counter snapshot, and any invariant-audit violations.
    {!to_string} renders the same information as the human-readable dump
    callers previously got as a bare string. *)

type task_state =
  | Ready  (** runnable: queued, waiting only for its turn *)
  | Waiting of int  (** blocked joining this many unfinished children *)
  | Blocked_mem
      (** parked on a memory access whose completion wakeup never arrived
          (only possible under the [lose-wakeup] chaos fault) *)
  | Done

type task_view = {
  tv_proc : int;
  tv_clock : int;
  tv_depth : int;
  tv_state : task_state;
  tv_children : task_view list;  (** unfinished children only *)
}

type reason =
  | User of string
      (** a runtime error the program provoked (argument-check failure,
          bounds, out of simulated memory, ...) *)
  | Internal of string
      (** an invariant of the simulator itself broke ([Invalid_argument] /
          [Failure] escaping the machine model) — a bug, not a user error *)
  | Deadlock  (** the scheduler drained with the program unfinished *)
  | Cycle_budget of { limit : int }  (** simulated cycle budget exhausted *)
  | Watchdog_stall of { steps : int }
      (** the scheduler ran this many steps without any clock advancing *)
  | Audit_failure  (** a post-run invariant audit found violations *)

type t = {
  phase : string;  (** "elaborate", "compile" or "execute" *)
  reason : reason;
  proc_clocks : (int * int) list;
      (** (processor, local clock) of every live simulated task *)
  blocked : task_view list;  (** roots of the unfinished-task forest *)
  counters : (string * int) list;  (** hardware-counter snapshot *)
  violations : Audit.violation list;
}

val user : ?phase:string -> string -> t
(** A bare user-error diagnostic with no machine context. *)

val internal : ?phase:string -> string -> t

val is_internal : t -> bool
(** True for [Internal _] and [Audit_failure] — failures of the simulator,
    not of the simulated program. *)

val code : t -> string
(** Stable machine-readable tag of the {!reason} constructor ("user",
    "internal", "deadlock", "cycle-budget", "watchdog-stall", "audit") —
    the key the fuzzing harness buckets failures by, so it must not change
    across releases. *)

val headline : t -> string
(** One-line summary (the old string error, e.g.
    ["deadlock: program did not run to completion"]). *)

val pp : Format.formatter -> t -> unit
(** Full dump: headline, phase, per-proc clocks, blocked-task tree,
    violations, and the non-zero counters. *)

val to_string : t -> string
(** [pp] into a string; equals {!headline} when there is no context to
    show (so simple error paths read as before). *)
