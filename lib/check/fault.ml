type t = {
  seed : int;
  slow_nodes : (int * int) list;
  hot_dirs : (int * int) list;
  slow_links : ((int * int) * int) list;
  tlb_flush_period : int;
  redist_fail : int;
  migrate_fail : int;
  gather_fail : int;
  lose_wakeup : int;
  drop_barrier : int;
}

let none =
  {
    seed = 0;
    slow_nodes = [];
    hot_dirs = [];
    slow_links = [];
    tlb_flush_period = 0;
    redist_fail = 0;
    migrate_fail = 0;
    gather_fail = 0;
    lose_wakeup = 0;
    drop_barrier = 0;
  }

let is_none t = t = none

let make ?(seed = 0) ?(slow_nodes = []) ?(hot_dirs = []) ?(slow_links = [])
    ?(tlb_flush_period = 0) ?(redist_fail = 0) ?(migrate_fail = 0)
    ?(gather_fail = 0) ?(lose_wakeup = 0) ?(drop_barrier = 0) () =
  List.iter
    (fun (_, x) -> if x < 0 then invalid_arg "Fault.make: negative extra cycles")
    (slow_nodes @ hot_dirs);
  List.iter
    (fun (_, x) -> if x < 0 then invalid_arg "Fault.make: negative extra cycles")
    slow_links;
  if tlb_flush_period < 0 || redist_fail < 0 || migrate_fail < 0
     || gather_fail < 0 || lose_wakeup < 0 || drop_barrier < 0
  then invalid_arg "Fault.make: negative parameter";
  {
    seed;
    slow_nodes;
    hot_dirs;
    slow_links;
    tlb_flush_period;
    redist_fail;
    migrate_fail;
    gather_fail;
    lose_wakeup;
    drop_barrier;
  }

(* ------------------------------------------------------------------ *)
(* Deterministic pseudo-random plans (48-bit LCG; no Random dependency so
   plans are stable across OCaml versions) *)

let lcg st =
  let x = ((!st * 25214903917) + 11) land 0xFFFFFFFFFFFF in
  st := x;
  x lsr 17

let pick st n = if n <= 0 then 0 else lcg st mod n

let random ~seed ~nnodes =
  if nnodes < 1 then invalid_arg "Fault.random: nnodes < 1";
  let st = ref (seed lxor 0x5DEECE66D) in
  ignore (lcg st);
  let n_slow = pick st 3 in
  let slow_nodes =
    List.init n_slow (fun _ -> (pick st nnodes, 20 + pick st 100))
  in
  let hot_dirs =
    if pick st 2 = 0 then [] else [ (pick st nnodes, 20 + pick st 60) ]
  in
  let slow_links =
    if nnodes < 2 || pick st 2 = 0 then []
    else
      let a = pick st nnodes in
      let b = (a + 1 + pick st (nnodes - 1)) mod nnodes in
      [ ((a, b), 10 + pick st 40) ]
  in
  let tlb_flush_period = [| 0; 0; 64; 256; 1024 |].(pick st 5) in
  let redist_fail = [| 0; 0; 1; 2; 4 |].(pick st 5) in
  {
    seed;
    slow_nodes;
    hot_dirs;
    slow_links;
    tlb_flush_period;
    redist_fail;
    migrate_fail = 0;
    gather_fail = 0;
    lose_wakeup = 0;
    drop_barrier = 0;
  }

(* ------------------------------------------------------------------ *)
(* Queries *)

let sum_assoc key l =
  List.fold_left (fun acc (k, x) -> if k = key then acc + x else acc) 0 l

let mem_extra t ~node = sum_assoc node t.slow_nodes
let dir_extra t ~home = sum_assoc home t.hot_dirs

let link_extra t ~a ~b =
  if a = b then 0
  else
    List.fold_left
      (fun acc ((x, y), e) ->
        if (x = a && y = b) || (x = b && y = a) then acc + e else acc)
      0 t.slow_links

let tlb_flush_due t ~accesses =
  t.tlb_flush_period > 0 && accesses mod t.tlb_flush_period = 0

let redist_attempt_fails t ~attempt = attempt >= 0 && attempt < t.redist_fail

(* Page migrations fail from the Nth one on (1-based, machine-wide
   counter): the first N-1 succeed, so an injected failure lands in the
   MIDDLE of a planned bulk migration and exercises the rollback path. *)
let migration_fails t ~migration =
  t.migrate_fail > 0 && migration >= t.migrate_fail - 1

(* Bulk gather fetches fail from the Nth one on (1-based, machine-wide
   counter), so the failure lands mid-run once schedules are warm and
   exercises the retry-then-per-element-fallback path persistently. *)
let gather_fetch_fails t ~fetch =
  t.gather_fail > 0 && fetch >= t.gather_fail - 1
let wakeup_lost t ~wakeup = t.lose_wakeup > 0 && wakeup = t.lose_wakeup
let barrier_dropped t ~barrier = t.drop_barrier > 0 && barrier = t.drop_barrier

(* ------------------------------------------------------------------ *)
(* Spec syntax *)

let to_spec t =
  if is_none t then "none"
  else
    let parts =
      (if t.seed <> 0 then [ Printf.sprintf "seed=%d" t.seed ] else [])
      @ List.map (fun (n, e) -> Printf.sprintf "slow=%d:%d" n e) t.slow_nodes
      @ List.map (fun (n, e) -> Printf.sprintf "hotdir=%d:%d" n e) t.hot_dirs
      @ List.map
          (fun ((a, b), e) -> Printf.sprintf "link=%d-%d:%d" a b e)
          t.slow_links
      @ (if t.tlb_flush_period > 0 then
           [ Printf.sprintf "tlb=%d" t.tlb_flush_period ]
         else [])
      @ (if t.redist_fail > 0 then
           [ Printf.sprintf "redist-fail=%d" t.redist_fail ]
         else [])
      @ (if t.migrate_fail > 0 then
           [ Printf.sprintf "migrate-fail=%d" t.migrate_fail ]
         else [])
      @ (if t.gather_fail > 0 then
           [ Printf.sprintf "gather-fail=%d" t.gather_fail ]
         else [])
      @ (if t.lose_wakeup > 0 then
           [ Printf.sprintf "lose-wakeup=%d" t.lose_wakeup ]
         else [])
      @
      if t.drop_barrier > 0 then
        [ Printf.sprintf "drop-barrier=%d" t.drop_barrier ]
      else []
    in
    String.concat "," parts

let pp ppf t = Format.pp_print_string ppf (to_spec t)

let of_spec s =
  let s = String.trim s in
  if s = "" || s = "none" then Ok none
  else
    let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
    let clauses = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok acc
      | clause :: rest -> (
          match String.index_opt clause '=' with
          | None -> err "fault spec clause %S: expected key=value" clause
          | Some i -> (
              let key = String.sub clause 0 i in
              let v = String.sub clause (i + 1) (String.length clause - i - 1) in
              let int_v () = int_of_string_opt v in
              match key with
              | "seed" -> (
                  match int_v () with
                  | Some n -> go { acc with seed = n } rest
                  | None -> err "fault spec: seed=%S is not an integer" v)
              | "slow" -> (
                  match Scanf.sscanf_opt v "%d:%d" (fun a b -> (a, b)) with
                  | Some (n, e) when n >= 0 && e >= 0 ->
                      go { acc with slow_nodes = acc.slow_nodes @ [ (n, e) ] } rest
                  | _ -> err "fault spec: slow=%S wants NODE:EXTRA" v)
              | "hotdir" -> (
                  match Scanf.sscanf_opt v "%d:%d" (fun a b -> (a, b)) with
                  | Some (n, e) when n >= 0 && e >= 0 ->
                      go { acc with hot_dirs = acc.hot_dirs @ [ (n, e) ] } rest
                  | _ -> err "fault spec: hotdir=%S wants NODE:EXTRA" v)
              | "link" -> (
                  match Scanf.sscanf_opt v "%d-%d:%d" (fun a b e -> (a, b, e)) with
                  | Some (a, b, e) when a >= 0 && b >= 0 && e >= 0 && a <> b ->
                      go
                        { acc with slow_links = acc.slow_links @ [ ((a, b), e) ] }
                        rest
                  | _ -> err "fault spec: link=%S wants A-B:EXTRA" v)
              | "tlb" -> (
                  match int_v () with
                  | Some n when n >= 0 -> go { acc with tlb_flush_period = n } rest
                  | _ -> err "fault spec: tlb=%S wants a period >= 0" v)
              | "redist-fail" -> (
                  match int_v () with
                  | Some n when n >= 0 -> go { acc with redist_fail = n } rest
                  | _ -> err "fault spec: redist-fail=%S wants a count >= 0" v)
              | "migrate-fail" -> (
                  match int_v () with
                  | Some n when n >= 0 -> go { acc with migrate_fail = n } rest
                  | _ -> err "fault spec: migrate-fail=%S wants a count >= 0" v)
              | "gather-fail" -> (
                  match int_v () with
                  | Some n when n >= 0 -> go { acc with gather_fail = n } rest
                  | _ -> err "fault spec: gather-fail=%S wants a count >= 0" v)
              | "lose-wakeup" -> (
                  match int_v () with
                  | Some n when n >= 0 -> go { acc with lose_wakeup = n } rest
                  | _ -> err "fault spec: lose-wakeup=%S wants a count >= 0" v)
              | "drop-barrier" -> (
                  match int_v () with
                  | Some n when n >= 0 -> go { acc with drop_barrier = n } rest
                  | _ -> err "fault spec: drop-barrier=%S wants a count >= 0" v)
              | "random" -> (
                  match Scanf.sscanf_opt v "%d:%d" (fun a b -> (a, b)) with
                  | Some (seed, nnodes) when nnodes >= 1 ->
                      go (random ~seed ~nnodes) rest
                  | _ -> err "fault spec: random=%S wants SEED:NNODES" v)
              | k -> err "fault spec: unknown key %S" k))
    in
    go none clauses
