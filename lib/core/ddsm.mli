(** The public facade: the full pipeline from mini-Fortran source with
    data-distribution directives to execution on the simulated Origin-2000.

    Quickstart:
    {[
      let source = "      program hello ... end" in
      match Ddsm_core.Ddsm.run_source ~nprocs:8 source with
      | Ok o -> List.iter print_endline o.Ddsm_exec.Engine.prints
      | Error e -> prerr_endline e
    ]}

    The stages are individually accessible for separate compilation
    ({!compile_source} produces object+shadow data, {!link} runs the
    pre-linker/cloning fixpoint) and for machine-configuration sweeps
    ({!make_rt} + {!run}). *)

open Ddsm_ir
module Flags = Ddsm_transform.Flags
module Engine = Ddsm_exec.Engine

module Fault = Ddsm_check.Fault
(** Deterministic fault plans (see {!Ddsm_check.Fault}): slow nodes, hot
    directories, congested links, TLB shootdowns, redistribution failures —
    perturbing performance, never values. *)

module Diag = Ddsm_check.Diag
(** Structured run diagnostics (what {!run} returns on failure). *)

module Audit = Ddsm_check.Audit
(** Invariant-audit violations (returned by {!Ddsm_runtime.Rt.audit}). *)

module Profile = Ddsm_report.Profile
(** Cycle-attribution profiler and Chrome-trace event buffer; pass one to
    {!run}/{!run_source} via [?profile]. *)

module Sanitize = Ddsm_sanitize.Sanitize
(** Happens-before race detector and false-sharing classifier; pass one to
    {!run}/{!run_source} via [?sanitize] and read its reports after the
    run. *)

module Json = Ddsm_report.Json
(** Minimal JSON values (trace export, bench snapshots). *)

type machine =
  | Origin2000  (** the paper's full-size parameters (§2) *)
  | Scaled of int  (** capacities shrunk by the factor (see DESIGN.md) *)

val parse : fname:string -> string -> (Decl.file, string) result

val compile_source :
  ?flags:Flags.t -> fname:string -> string ->
  (Ddsm_linker.Objfile.t, string list) result

val compile_path :
  ?flags:Flags.t -> string -> (Ddsm_linker.Objfile.t, string list) result
(** Read and compile a [.pf] source file. *)

val link :
  Ddsm_linker.Objfile.t list ->
  (Ddsm_exec.Prog.t * Ddsm_linker.Prelink.linked, string list) result

val make_rt :
  ?machine:machine -> ?policy:Ddsm_machine.Pagetable.policy ->
  ?heap_words:int -> ?machine_procs:int -> ?fault:Fault.t -> nprocs:int ->
  unit -> Ddsm_runtime.Rt.t
(** Defaults: [Scaled 64], first-touch, 16M-word heap, no faults. [nprocs]
    is the job's processor count; [machine_procs] (>= nprocs) sizes the
    simulated machine itself, so P-processor jobs can run on a larger fixed
    machine as in the paper's evaluation. [fault] installs a deterministic
    fault plan on the simulated machine. *)

val run :
  Ddsm_exec.Prog.t -> rt:Ddsm_runtime.Rt.t -> ?checks:bool -> ?bounds:bool ->
  ?max_cycles:int -> ?audit:bool -> ?stall_limit:int -> ?shards:int ->
  ?profile:Profile.t -> ?sanitize:Sanitize.t -> unit ->
  (Engine.outcome, Diag.t) result
(** See {!Ddsm_exec.Engine.run}: failures are structured diagnoses;
    [audit] adds a post-run invariant audit; [shards] (> 1) runs the
    simulation sharded across worker domains with byte-identical output;
    [profile] attaches a cycle-attribution profiler for the duration of
    the run; [sanitize] attaches a happens-before sanitizer (inspect it
    after the run). *)

val run_source :
  ?flags:Flags.t -> ?machine:machine -> ?policy:Ddsm_machine.Pagetable.policy ->
  ?heap_words:int -> ?machine_procs:int -> ?fault:Fault.t -> ?nprocs:int ->
  ?checks:bool -> ?bounds:bool -> ?max_cycles:int -> ?audit:bool ->
  ?shards:int -> ?profile:Profile.t -> ?sanitize:Sanitize.t -> string ->
  (Engine.outcome, string) result
(** One-shot: parse, analyse, lower, link and execute a single source
    string (default 8 processors). Compile/link diagnostics are joined into
    the error string; run diagnoses are rendered with
    {!Diag.to_string}. *)

val save_image : Ddsm_linker.Prelink.linked -> path:string -> unit
val load_image : path:string -> (Ddsm_linker.Prelink.linked, string) result
(** Linked-program images (the [pflc]/[pflrun] interchange format). *)

val prog_of_linked : Ddsm_linker.Prelink.linked -> Ddsm_exec.Prog.t
