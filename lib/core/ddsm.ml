module Flags = Ddsm_transform.Flags
module Engine = Ddsm_exec.Engine
module Prog = Ddsm_exec.Prog
module Objfile = Ddsm_linker.Objfile
module Prelink = Ddsm_linker.Prelink
module Config = Ddsm_machine.Config
module Pagetable = Ddsm_machine.Pagetable
module Rt = Ddsm_runtime.Rt
module Fault = Ddsm_check.Fault
module Diag = Ddsm_check.Diag
module Audit = Ddsm_check.Audit
module Profile = Ddsm_report.Profile
module Sanitize = Ddsm_sanitize.Sanitize
module Json = Ddsm_report.Json

type machine = Origin2000 | Scaled of int

let parse ~fname src = Ddsm_frontend.Parser.parse_file ~fname src

let compile_source ?flags ~fname src =
  match parse ~fname src with
  | Error e -> Error [ e ]
  | Ok f -> Objfile.compile ?flags f

let compile_path ?flags path =
  try
    let ic = open_in path in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    compile_source ?flags ~fname:path src
  with Sys_error e -> Error [ e ]

let prog_of_linked (l : Prelink.linked) =
  Prog.create
    (List.map (fun (n, env, code) -> (n, { Prog.env; code })) l.Prelink.routines)
    ~main:l.Prelink.main

let link objs =
  match Prelink.link objs with
  | Error es -> Error es
  | Ok l -> Ok (prog_of_linked l, l)

let make_rt ?(machine = Scaled 64) ?(policy = Pagetable.First_touch)
    ?(heap_words = 1 lsl 24) ?machine_procs ?fault ~nprocs () =
  let hw = match machine_procs with Some m -> max m nprocs | None -> nprocs in
  let cfg =
    match machine with
    | Origin2000 -> Config.origin2000 ~nprocs:hw
    | Scaled factor -> Config.scaled ~nprocs:hw ~factor ()
  in
  Rt.create cfg ~policy ~heap_words ~job_procs:nprocs ?fault ()

let run prog ~rt ?checks ?bounds ?max_cycles ?audit ?stall_limit ?shards
    ?profile ?sanitize () =
  Engine.run prog ~rt ?checks ?bounds ?max_cycles ?audit ?stall_limit ?shards
    ?profile ?sanitize ()

let run_source ?flags ?machine ?policy ?heap_words ?machine_procs ?fault
    ?(nprocs = 8) ?checks ?bounds ?max_cycles ?audit ?shards ?profile
    ?sanitize src =
  match compile_source ?flags ~fname:"<source>" src with
  | Error es -> Error (String.concat "\n" es)
  | Ok obj -> (
      match link [ obj ] with
      | Error es -> Error (String.concat "\n" es)
      | Ok (prog, _) -> (
          let rt =
            make_rt ?machine ?policy ?heap_words ?machine_procs ?fault ~nprocs
              ()
          in
          match
            run prog ~rt ?checks ?bounds ?max_cycles ?audit ?shards ?profile
              ?sanitize ()
          with
          | Ok _ as ok -> ok
          | Error d -> Error (Diag.to_string d)))

(* Images ride the hardened Binfile container (magic/kind/version header,
   payload digest, atomic install): a truncated, stale or foreign .pfi is
   a located [Error], never a Marshal crash. *)

let save_image (l : Prelink.linked) ~path =
  Ddsm_linker.Binfile.save ~kind:"image" ~path l

let load_image ~path : (Prelink.linked, string) result =
  Ddsm_linker.Binfile.load ~kind:"image" ~path
