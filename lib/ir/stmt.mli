(** Statements: the executable part of the surface language, plus the
    compiler-internal forms introduced by transformation ([AbsStore],
    processor-tile loops are ordinary [Do] loops over reserved variables,
    barriers). *)

type lhs = LVar of string | LRef of string * Expr.t list

type sched = Simple | Interleave of int

type t = { s : kind; loc : Loc.t }

and kind =
  | Assign of lhs * Expr.t
  | AbsStore of Types.ty * Expr.t * Expr.t  (** store value at word address *)
  | Do of do_
  | If of Expr.t * t list * t list
  | Call of string * Expr.t list
  | Doacross of doacross
  | Redistribute of redist
  | Continue
  | Return
  | Print of Expr.t list
  | Barrier
      (** surface [c$barrier] (an explicit synchronization point inside a
          parallel region) and compiler-internal barriers *)
  | Par of par
      (** compiler-internal SPMD region produced by scheduling a
          [c$doacross]: every processor executes [pbody] with the reserved
          variables [myp$] (its 0-based id) and [np$] (processor count)
          bound in a private scalar frame; an implicit barrier follows. *)
  | Gather of gather
      (** compiler-internal inspector for an irregular loop: walks the
          rectangle once, reads the index array, and bulk-fetches the
          referenced target elements into a per-site scratch buffer keyed
          by iteration slot; the rewritten loop (executor) reads the
          scratch via [Expr.GatherBase]. Serial context only. *)

and par = { pbody : t list }

and gather = {
  g_id : int;  (** site id, unique within the routine *)
  g_target : string;  (** rank-1 array whose elements are gathered *)
  g_index : string;  (** integer index array driving the accesses *)
  g_scale : int;  (** target subscript = [g_scale * index(...) + g_off] *)
  g_off : int;
  g_dims : (string * Expr.t * Expr.t) list;
      (** rectangle (var, lo, hi) per nest dim, outermost first, step 1 *)
  g_isubs : Expr.t list;
      (** subscripts into the index array: pure scalar expressions over the
          nest variables and loop-invariant scalars *)
}

and do_ = {
  var : string;
  lo : Expr.t;
  hi : Expr.t;
  step : Expr.t option;  (** [None] = 1 *)
  body : t list;
}

and doacross = {
  locals : string list;
  shareds : string list;
  affinity : aff option;
  sched : sched;
  d_onto : int list option;
  nest_vars : string list;  (** non-empty iff a [nest] clause was given *)
  loop : do_;
}

and aff = {
  avars : string list;  (** loop variables named in [affinity(...)] *)
  aarray : string;
  asubs : Expr.t list;  (** subscripts of the [data(A(...))] reference *)
}

and redist = {
  rarray : string;
  rkinds : Ddsm_dist.Kind.t list;
  ronto : int list option;
  rprocs : int option;
      (** [procs(n)] clause: resize the onto-grid to [n] processors
          (clamped to the job size at runtime) instead of using all of
          them *)
}

val mk : ?loc:Loc.t -> kind -> t

val map_exprs : (Expr.t -> Expr.t) -> t -> t
(** Rewrite every expression in the statement tree (including loop bounds and
    subscripts; affinity clauses included). *)

val iter_exprs : (Expr.t -> unit) -> t -> unit
val map_body : (t list -> t list) -> t -> t
(** Rewrite the immediate statement lists of structured statements. *)

val assigned_vars : t list -> string list
(** Scalar variables assigned anywhere in the statements (including loop
    variables). *)

val arrays_written : t list -> string list
val calls_made : t list -> string list

val size : t list -> int
(** Total statement-node count, recursing into loop/branch bodies — the
    progress metric the fuzzing shrinker minimizes. *)


val pp : Format.formatter -> t -> unit
val pp_body : Format.formatter -> t list -> unit
