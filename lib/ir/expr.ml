type binop = Add | Sub | Mul | Div | Pow
type relop = Lt | Le | Gt | Ge | Eq | Ne
type logop = And | Or
type div_impl = Hw | Fp
type meta_field = Procs of int | Block of int | Stor of int

type t =
  | Int of int
  | Real of float
  | Str of string
  | Var of string
  | Ref of string * t list
  | Bin of binop * t * t
  | Rel of relop * t * t
  | Log of logop * t * t
  | Not of t
  | Neg of t
  | Intrin of string * t list
  | Idiv of div_impl * t * t
  | Imod of div_impl * t * t
  | Meta of string * meta_field
  | BaseOf of string * t
  | AbsLoad of Types.ty * t
  | GatherBase of int
      (* word base of gather site [id]'s scratch buffer; defined once the
         site's Stmt.Gather has executed (the inspector pass emits that
         Gather dominating every use) *)

let rec map f e =
  let r = map f in
  let e' =
    match e with
    | Int _ | Real _ | Str _ | Var _ | Meta _ | GatherBase _ -> e
    | Ref (a, subs) -> Ref (a, List.map r subs)
    | Bin (op, x, y) -> Bin (op, r x, r y)
    | Rel (op, x, y) -> Rel (op, r x, r y)
    | Log (op, x, y) -> Log (op, r x, r y)
    | Not x -> Not (r x)
    | Neg x -> Neg (r x)
    | Intrin (n, args) -> Intrin (n, List.map r args)
    | Idiv (i, x, y) -> Idiv (i, r x, r y)
    | Imod (i, x, y) -> Imod (i, r x, r y)
    | BaseOf (a, x) -> BaseOf (a, r x)
    | AbsLoad (ty, x) -> AbsLoad (ty, r x)
  in
  f e'

let rec iter f e =
  f e;
  let r = iter f in
  match e with
  | Int _ | Real _ | Str _ | Var _ | Meta _ | GatherBase _ -> ()
  | Ref (_, subs) -> List.iter r subs
  | Bin (_, x, y) | Rel (_, x, y) | Log (_, x, y) | Idiv (_, x, y) | Imod (_, x, y)
    ->
      r x;
      r y
  | Not x | Neg x | BaseOf (_, x) | AbsLoad (_, x) -> r x
  | Intrin (_, args) -> List.iter r args

let exists p e =
  let found = ref false in
  iter (fun x -> if p x then found := true) e;
  !found

let equal (a : t) (b : t) = a = b

let subst_var x e body =
  map (function Var y when y = x -> e | other -> other) body

let free_vars e =
  let acc = ref [] in
  iter (function Var x -> if not (List.mem x !acc) then acc := x :: !acc | _ -> ()) e;
  List.rev !acc

let arrays_used e =
  let acc = ref [] in
  iter
    (function
      | Ref (a, _) | Meta (a, _) | BaseOf (a, _) ->
          if not (List.mem a !acc) then acc := a :: !acc
      | _ -> ())
    e;
  List.rev !acc

let rec affine_in v e =
  match e with
  | Var x when x = v -> Some (1, 0)
  | Int n -> Some (0, n)
  | Neg x -> Option.map (fun (s, c) -> (-s, -c)) (affine_in v x)
  | Bin (Add, a, b) -> (
      match (affine_in v a, affine_in v b) with
      | Some (s1, c1), Some (s2, c2) -> Some (s1 + s2, c1 + c2)
      | _ -> None)
  | Bin (Sub, a, b) -> (
      match (affine_in v a, affine_in v b) with
      | Some (s1, c1), Some (s2, c2) -> Some (s1 - s2, c1 - c2)
      | _ -> None)
  | Bin (Mul, a, b) -> (
      match (affine_in v a, affine_in v b) with
      | Some (0, k), Some (s, c) | Some (s, c), Some (0, k) ->
          Some (k * s, k * c)
      | _ -> None)
  | _ -> None

let is_const = function Int _ | Real _ -> true | _ -> false

let rec const_int = function
  | Int n -> Some n
  | Neg e -> Option.map (fun n -> -n) (const_int e)
  | Bin (op, a, b) -> (
      match (const_int a, const_int b) with
      | Some x, Some y -> (
          match op with
          | Add -> Some (x + y)
          | Sub -> Some (x - y)
          | Mul -> Some (x * y)
          | Div -> if y <> 0 then Some (x / y) else None
          | Pow ->
              if y >= 0 then (
                let rec pw acc n = if n = 0 then acc else pw (acc * x) (n - 1) in
                Some (pw 1 y))
              else None)
      | _ -> None)
  | _ -> None

let simplify e =
  map
    (fun e ->
      match e with
      | Bin (Add, x, Int 0) | Bin (Add, Int 0, x) -> x
      | Bin (Sub, x, Int 0) -> x
      | Bin (Mul, x, Int 1) | Bin (Mul, Int 1, x) -> x
      | Bin (Mul, _, Int 0) | Bin (Mul, Int 0, _) -> Int 0
      | Bin (Div, x, Int 1) -> x
      | Idiv (_, x, Int 1) -> x
      | Imod (_, _, Int 1) -> Int 0
      | Neg (Int n) -> Int (-n)
      | Bin _ -> ( match const_int e with Some n -> Int n | None -> e)
      | _ -> e)
    e

let pp_binop ppf op =
  Format.pp_print_string ppf
    (match op with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Pow -> "**")

let pp_relop ppf op =
  Format.pp_print_string ppf
    (match op with
    | Lt -> ".lt." | Le -> ".le." | Gt -> ".gt." | Ge -> ".ge."
    | Eq -> ".eq." | Ne -> ".ne.")

let pp_meta ppf = function
  | Procs d -> Format.fprintf ppf "procs#%d" d
  | Block d -> Format.fprintf ppf "block#%d" d
  | Stor d -> Format.fprintf ppf "stor#%d" d

let rec pp ppf e =
  let plist ppf es =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      pp ppf es
  in
  match e with
  | Int n -> Format.pp_print_int ppf n
  | Real f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Var x -> Format.pp_print_string ppf x
  | Ref (a, subs) -> Format.fprintf ppf "%s(%a)" a plist subs
  | Bin (op, x, y) -> Format.fprintf ppf "(%a %a %a)" pp x pp_binop op pp y
  | Rel (op, x, y) -> Format.fprintf ppf "(%a %a %a)" pp x pp_relop op pp y
  | Log (And, x, y) -> Format.fprintf ppf "(%a .and. %a)" pp x pp y
  | Log (Or, x, y) -> Format.fprintf ppf "(%a .or. %a)" pp x pp y
  | Not x -> Format.fprintf ppf "(.not. %a)" pp x
  | Neg x -> Format.fprintf ppf "(-%a)" pp x
  | Intrin (n, args) -> Format.fprintf ppf "%s(%a)" n plist args
  | Idiv (Hw, x, y) -> Format.fprintf ppf "idiv(%a, %a)" pp x pp y
  | Idiv (Fp, x, y) -> Format.fprintf ppf "idiv.fp(%a, %a)" pp x pp y
  | Imod (Hw, x, y) -> Format.fprintf ppf "imod(%a, %a)" pp x pp y
  | Imod (Fp, x, y) -> Format.fprintf ppf "imod.fp(%a, %a)" pp x pp y
  | Meta (a, f) -> Format.fprintf ppf "%s.%a" a pp_meta f
  | BaseOf (a, x) -> Format.fprintf ppf "%s.base[%a]" a pp x
  | AbsLoad (ty, x) ->
      Format.fprintf ppf "load.%s[%a]"
        (match ty with Types.Tint -> "i" | Types.Treal -> "r")
        pp x
  | GatherBase id -> Format.fprintf ppf "gather#%d.base" id

let to_string e = Format.asprintf "%a" pp e
