(** Expressions.

    The surface language produces the first group of constructors. The
    compiler-internal group is introduced by the transformation passes of
    §4.3/§7: explicit integer division/modulo with a chosen implementation
    (hardware, ~35 cycles on the R10000, or the §7.3 floating-point-assisted
    route, ~11 cycles), loads from a reshaped array's descriptor block, the
    indirect load of a processor-portion base pointer, and raw loads at
    computed word addresses (the transformed reshaped references). *)

type binop = Add | Sub | Mul | Div | Pow
type relop = Lt | Le | Gt | Ge | Eq | Ne
type logop = And | Or

type div_impl =
  | Hw  (** hardware integer divide *)
  | Fp  (** simulated in software using the floating-point unit (§7.3) *)

type meta_field =
  | Procs of int  (** processors assigned to dimension [d] *)
  | Block of int  (** block/chunk size of dimension [d] *)
  | Stor of int  (** per-processor storage extent of dimension [d] *)

type t =
  | Int of int
  | Real of float
  | Str of string  (** only in print statements *)
  | Var of string
  | Ref of string * t list  (** array element [A(e1,...,en)] *)
  | Bin of binop * t * t
  | Rel of relop * t * t
  | Log of logop * t * t
  | Not of t
  | Neg of t
  | Intrin of string * t list  (** intrinsic function call *)
  (* compiler-internal: *)
  | Idiv of div_impl * t * t
  | Imod of div_impl * t * t
  | Meta of string * meta_field  (** descriptor-block load for array *)
  | BaseOf of string * t  (** processor-pointer-array load: base of portion [e] of array *)
  | AbsLoad of Types.ty * t  (** load the word at address [e] *)
  | GatherBase of int
      (** word base of gather site [id]'s scratch buffer (inspector–executor
          transform); defined once the site's [Stmt.Gather] has executed *)

val map : (t -> t) -> t -> t
(** Bottom-up rewrite: applies the function to each node after rewriting its
    children. *)

val iter : (t -> unit) -> t -> unit
val exists : (t -> bool) -> t -> bool
val equal : t -> t -> bool
val subst_var : string -> t -> t -> t
(** [subst_var x e body] replaces [Var x] by [e]. *)

val free_vars : t -> string list
(** Variables read, without duplicates (array names not included). *)

val arrays_used : t -> string list
(** Array names referenced via [Ref]/[Meta]/[BaseOf]. *)

val affine_in : string -> t -> (int * int) option
(** [affine_in v e] is [Some (s, c)] when [e] is the affine form [s*v + c]
    with literal integer [s] and [c] (the form the paper's affinity clause
    and reshaped-reference optimisations require, §3.4/§7.1). [None] when
    [e] mentions [v] non-affinely or contains non-constant terms. *)

val is_const : t -> bool
val const_int : t -> int option
(** Constant-fold to an integer if possible (handles arithmetic on [Int]). *)

val simplify : t -> t
(** Light algebraic simplification: constant folding, [x*1], [x+0], etc. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
