type lhs = LVar of string | LRef of string * Expr.t list

type sched = Simple | Interleave of int

type t = { s : kind; loc : Loc.t }

and kind =
  | Assign of lhs * Expr.t
  | AbsStore of Types.ty * Expr.t * Expr.t
  | Do of do_
  | If of Expr.t * t list * t list
  | Call of string * Expr.t list
  | Doacross of doacross
  | Redistribute of redist
  | Continue
  | Return
  | Print of Expr.t list
  | Barrier
  | Par of par
  | Gather of gather

and par = { pbody : t list }

and gather = {
  g_id : int;  (* site id, unique within the routine *)
  g_target : string;  (* rank-1 array whose elements are gathered *)
  g_index : string;  (* integer index array driving the accesses *)
  g_scale : int;  (* target subscript = g_scale * index(...) + g_off *)
  g_off : int;
  g_dims : (string * Expr.t * Expr.t) list;
      (* rectangle (var, lo, hi) per nest dim, outermost first, step 1 *)
  g_isubs : Expr.t list;
      (* subscripts into the index array: pure scalar expressions over the
         nest variables and loop-invariant scalars *)
}

and do_ = {
  var : string;
  lo : Expr.t;
  hi : Expr.t;
  step : Expr.t option;
  body : t list;
}

and doacross = {
  locals : string list;
  shareds : string list;
  affinity : aff option;
  sched : sched;
  d_onto : int list option;
  nest_vars : string list;
  loop : do_;
}

and aff = { avars : string list; aarray : string; asubs : Expr.t list }

and redist = {
  rarray : string;
  rkinds : Ddsm_dist.Kind.t list;
  ronto : int list option;
  rprocs : int option;
      (* resize the onto-grid: redistribute over this many processors
         (clamped to the job size at runtime) instead of all of them *)
}

let mk ?(loc = Loc.none) s = { s; loc }

let rec map_exprs f t =
  let fe = f in
  let fb = List.map (map_exprs f) in
  let s =
    match t.s with
    | Assign (LVar x, e) -> Assign (LVar x, fe e)
    | Assign (LRef (a, subs), e) -> Assign (LRef (a, List.map fe subs), fe e)
    | AbsStore (ty, addr, v) -> AbsStore (ty, fe addr, fe v)
    | Do d -> Do (map_do f d)
    | If (c, th, el) -> If (fe c, fb th, fb el)
    | Call (n, args) -> Call (n, List.map fe args)
    | Doacross da ->
        Doacross
          {
            da with
            affinity =
              Option.map
                (fun a -> { a with asubs = List.map fe a.asubs })
                da.affinity;
            loop = map_do f da.loop;
          }
    | Redistribute _ | Continue | Return | Barrier -> t.s
    | Par p -> Par { pbody = fb p.pbody }
    | Print es -> Print (List.map fe es)
    | Gather g ->
        Gather
          {
            g with
            g_dims = List.map (fun (v, lo, hi) -> (v, fe lo, fe hi)) g.g_dims;
            g_isubs = List.map fe g.g_isubs;
          }
  in
  { t with s }

and map_do f d =
  {
    d with
    lo = f d.lo;
    hi = f d.hi;
    step = Option.map f d.step;
    body = List.map (map_exprs f) d.body;
  }

let rec iter_exprs f t =
  let fb = List.iter (iter_exprs f) in
  match t.s with
  | Assign (LVar _, e) -> f e
  | Assign (LRef (_, subs), e) ->
      List.iter f subs;
      f e
  | AbsStore (_, addr, v) ->
      f addr;
      f v
  | Do d -> iter_do f d
  | If (c, th, el) ->
      f c;
      fb th;
      fb el
  | Call (_, args) -> List.iter f args
  | Doacross da ->
      Option.iter (fun a -> List.iter f a.asubs) da.affinity;
      iter_do f da.loop
  | Redistribute _ | Continue | Return | Barrier -> ()
  | Par p -> fb p.pbody
  | Print es -> List.iter f es
  | Gather g ->
      List.iter
        (fun (_, lo, hi) ->
          f lo;
          f hi)
        g.g_dims;
      List.iter f g.g_isubs

and iter_do f d =
  f d.lo;
  f d.hi;
  Option.iter f d.step;
  List.iter (iter_exprs f) d.body

let rec map_body f t =
  let s =
    match t.s with
    | Do d -> Do { d with body = f (List.map (map_body f) d.body) }
    | If (c, th, el) ->
        If (c, f (List.map (map_body f) th), f (List.map (map_body f) el))
    | Doacross da ->
        Doacross
          {
            da with
            loop = { da.loop with body = f (List.map (map_body f) da.loop.body) };
          }
    | Par p -> Par { pbody = f (List.map (map_body f) p.pbody) }
    | other -> other
  in
  { t with s }

let rec collect_assigned acc ts =
  List.fold_left
    (fun acc t ->
      match t.s with
      | Assign (LVar x, _) -> if List.mem x acc then acc else x :: acc
      | Assign (LRef _, _) | AbsStore _ -> acc
      | Do d ->
          let acc = if List.mem d.var acc then acc else d.var :: acc in
          collect_assigned acc d.body
      | If (_, th, el) -> collect_assigned (collect_assigned acc th) el
      | Doacross da ->
          let acc =
            if List.mem da.loop.var acc then acc else da.loop.var :: acc
          in
          collect_assigned acc da.loop.body
      | Par p -> collect_assigned acc p.pbody
      | _ -> acc)
    acc ts

let assigned_vars ts = List.rev (collect_assigned [] ts)

let rec collect_written acc ts =
  List.fold_left
    (fun acc t ->
      match t.s with
      | Assign (LRef (a, _), _) -> if List.mem a acc then acc else a :: acc
      | Do d -> collect_written acc d.body
      | If (_, th, el) -> collect_written (collect_written acc th) el
      | Doacross da -> collect_written acc da.loop.body
      | Par p -> collect_written acc p.pbody
      | _ -> acc)
    acc ts

let arrays_written ts = List.rev (collect_written [] ts)

let rec collect_calls acc ts =
  List.fold_left
    (fun acc t ->
      match t.s with
      | Call (n, _) -> if List.mem n acc then acc else n :: acc
      | Do d -> collect_calls acc d.body
      | If (_, th, el) -> collect_calls (collect_calls acc th) el
      | Doacross da -> collect_calls acc da.loop.body
      | Par p -> collect_calls acc p.pbody
      | _ -> acc)
    acc ts

let calls_made ts = List.rev (collect_calls [] ts)

let rec size ts =
  List.fold_left
    (fun acc t ->
      acc + 1
      +
      match t.s with
      | Do d -> size d.body
      | If (_, th, el) -> size th + size el
      | Doacross da -> size da.loop.body
      | Par p -> size p.pbody
      | _ -> 0)
    0 ts

let rec pp ppf t =
  match t.s with
  | Assign (LVar x, e) -> Format.fprintf ppf "@[<h>%s = %a@]" x Expr.pp e
  | Assign (LRef (a, subs), e) ->
      Format.fprintf ppf "@[<h>%s(%a) = %a@]" a
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Expr.pp)
        subs Expr.pp e
  | AbsStore (ty, addr, v) ->
      Format.fprintf ppf "@[<h>store.%s[%a] = %a@]"
        (match ty with Types.Tint -> "i" | Types.Treal -> "r")
        Expr.pp addr Expr.pp v
  | Do d -> pp_do ppf d
  | If (c, th, []) ->
      Format.fprintf ppf "@[<v 2>if (%a) then@ %a@]@ endif" Expr.pp c pp_body th
  | If (c, th, el) ->
      Format.fprintf ppf "@[<v 2>if (%a) then@ %a@]@ @[<v 2>else@ %a@]@ endif"
        Expr.pp c pp_body th pp_body el
  | Call (n, args) ->
      Format.fprintf ppf "@[<h>call %s(%a)@]" n
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Expr.pp)
        args
  | Doacross da ->
      Format.fprintf ppf "@[<v>c$doacross%s%s%a@ %a@]"
        (match da.locals with
        | [] -> ""
        | l -> " local(" ^ String.concat "," l ^ ")")
        (match da.nest_vars with
        | [] -> ""
        | l -> " nest(" ^ String.concat "," l ^ ")")
        (fun ppf -> function
          | None -> ()
          | Some a ->
              Format.fprintf ppf " affinity(%s) = data(%s(%a))"
                (String.concat "," a.avars) a.aarray
                (Format.pp_print_list
                   ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
                   Expr.pp)
                a.asubs)
        da.affinity pp_do da.loop
  | Redistribute r ->
      Format.fprintf ppf "c$redistribute %s(%a)%a" r.rarray
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Ddsm_dist.Kind.pp)
        r.rkinds
        (fun ppf -> function
          | None -> ()
          | Some p -> Format.fprintf ppf " procs(%d)" p)
        r.rprocs
  | Continue -> Format.pp_print_string ppf "continue"
  | Return -> Format.pp_print_string ppf "return"
  | Print es ->
      Format.fprintf ppf "@[<h>print %a@]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Expr.pp)
        es
  | Barrier -> Format.pp_print_string ppf "barrier"
  | Par p ->
      Format.fprintf ppf "@[<v 2>parallel@ %a@]@ end parallel" pp_body p.pbody
  | Gather g ->
      Format.fprintf ppf "@[<h>gather#%d %s <- %s(%d*%s(%a)+%d) for %a@]"
        g.g_id g.g_target g.g_target g.g_scale g.g_index
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Expr.pp)
        g.g_isubs g.g_off
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (fun ppf (v, lo, hi) ->
             Format.fprintf ppf "%s=%a..%a" v Expr.pp lo Expr.pp hi))
        g.g_dims

and pp_do ppf d =
  Format.fprintf ppf "@[<v 2>do %s = %a, %a%a@ %a@]@ enddo" d.var Expr.pp d.lo
    Expr.pp d.hi
    (fun ppf -> function
      | None -> ()
      | Some s -> Format.fprintf ppf ", %a" Expr.pp s)
    d.step pp_body d.body

and pp_body ppf ts =
  Format.pp_print_list ~pp_sep:Format.pp_print_space pp ppf ts
