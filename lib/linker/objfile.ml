open Ddsm_ir
module Sema = Ddsm_sema.Sema
module Flags = Ddsm_transform.Flags
module Pipeline = Ddsm_transform.Pipeline

type unit_ = { uname : string; env : Sema.env; lowered : Decl.routine }

type t = {
  src : Decl.file;
  flags : Flags.t;
  units : unit_ list;
  shadow : Shadow.t;
}

let call_signature env args =
  List.map
    (fun arg ->
      match arg with
      | Expr.Var a -> (
          match Sema.find_array env a with
          | Some { Sema.ai_dist = Some d; _ } when d.Decl.dreshape ->
              Some { Sig_.kinds = d.Decl.dkinds; onto = d.Decl.donto }
          | _ -> None)
      | _ -> None)
    args

let rec scan_calls env shadow (stmts : Stmt.t list) =
  List.iter
    (fun t ->
      match t.Stmt.s with
      | Stmt.Call (n, args) ->
          let sg = call_signature env args in
          if not (Sig_.is_trivial sg) then Shadow.add_call shadow n sg
      | Stmt.Do d -> scan_calls env shadow d.Stmt.body
      | Stmt.If (_, a, b) ->
          scan_calls env shadow a;
          scan_calls env shadow b
      | Stmt.Doacross da -> scan_calls env shadow da.Stmt.loop.Stmt.body
      | Stmt.Par p -> scan_calls env shadow p.Stmt.pbody
      | _ -> ())
    stmts

let common_members env members =
  let off = ref 0 in
  List.map
    (fun name ->
      let shape, dist =
        match Sema.find_array env name with
        | Some ai ->
            let shape =
              match ai.Sema.ai_const_shape with
              | Some (_, ext) -> Array.to_list ext
              | None -> []
            in
            let dist =
              match ai.Sema.ai_dist with
              | Some d when d.Decl.dreshape ->
                  Some { Sig_.kinds = d.Decl.dkinds; onto = d.Decl.donto }
              | _ -> None
            in
            (shape, dist)
        | None -> ([ 1 ], None)
      in
      let m =
        {
          Shadow.cm_name = name;
          cm_offset = !off;
          cm_shape = shape;
          cm_dist = dist;
        }
      in
      off := !off + max 1 (List.fold_left ( * ) 1 shape);
      m)
    members

let formal_sig (env : Sema.env) =
  List.map
    (fun p ->
      match Sema.find_array env p with
      | Some { Sema.ai_dist = Some d; _ } when d.Decl.dreshape ->
          Some { Sig_.kinds = d.Decl.dkinds; onto = d.Decl.donto }
      | _ -> None)
    env.Sema.routine.Decl.rparams

let build_shadow units =
  let shadow = Shadow.empty () in
  List.iter
    (fun u ->
      Shadow.add_def shadow u.uname (formal_sig u.env);
      scan_calls u.env shadow u.env.Sema.routine.Decl.rbody;
      List.iter
        (fun (blk, members) ->
          Shadow.add_common shadow ~block:blk ~routine:u.uname
            (common_members u.env members))
        u.env.Sema.routine.Decl.rcommons)
    units;
  shadow

let compile ?(flags = Flags.all_on) (file : Decl.file) =
  match Sema.analyse_file file with
  | Error es -> Error es
  | Ok envs ->
      let units =
        List.map
          (fun (env : Sema.env) ->
            {
              uname = env.Sema.routine.Decl.rname;
              env;
              lowered = Pipeline.run flags env;
            })
          envs
      in
      Ok { src = file; flags; units; shadow = build_shadow units }

let compile_clone t ~original ~clone ~sig_ =
  match Decl.find_routine t.src original with
  | None ->
      Error [ Printf.sprintf "clone request: %s is not defined in %s" original t.src.Decl.fname ]
  | Some r ->
      if List.length r.Decl.rparams <> List.length sig_ then
        Error
          [
            Printf.sprintf
              "clone request for %s: %d signature entries for %d formals"
              original (List.length sig_)
              (List.length r.Decl.rparams);
          ]
      else begin
        let new_dists =
          List.filter_map
            (fun (p, arg) ->
              match arg with
              | None -> None
              | Some a ->
                  Some
                    {
                      Decl.dtarget = p;
                      dkinds = a.Sig_.kinds;
                      donto = a.Sig_.onto;
                      dreshape = true;
                      dloc = r.Decl.rloc;
                    })
            (List.combine r.Decl.rparams sig_)
        in
        let formals = r.Decl.rparams in
        let keep_dist (d : Decl.dist) = not (List.mem d.Decl.dtarget formals) in
        let clone_r =
          {
            r with
            Decl.rname = clone;
            rdists = List.filter keep_dist r.Decl.rdists @ new_dists;
          }
        in
        match Sema.analyse_routine ~allow_formal_dists:true clone_r with
        | Error es -> Error es
        | Ok env ->
            let u = { uname = clone; env; lowered = Pipeline.run t.flags env } in
            Shadow.add_def t.shadow clone sig_;
            Shadow.remove_request t.shadow original sig_;
            Ok u
      end

let shadow_path path =
  if Filename.check_suffix path ".pfo" then Filename.chop_suffix path ".pfo" ^ ".pfs"
  else path ^ ".pfs"

(* Objects ride the hardened Binfile container: magic/kind/version header,
   payload digest, atomic temp-file+rename install. A truncated, stale or
   foreign .pfo is a located [Error], never a Marshal crash. *)

let save t ~path =
  Binfile.save ~kind:"object" ~path t;
  Shadow.save t.shadow ~path:(shadow_path path)

let load ~path : (t, string) result = Binfile.load ~kind:"object" ~path
