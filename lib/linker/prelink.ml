open Ddsm_ir
module Sema = Ddsm_sema.Sema

type linked = {
  routines : (string * Sema.env * Decl.routine) list;
  main : string;
  clones : (string * string) list;
  recompilations : int;
}

(* --- §6 link-time common-block consistency --- *)

let pp_shape shape = String.concat "x" (List.map string_of_int shape)

(* where each routine was defined, so consistency errors carry a source
   location like every frontend/sema rejection does *)
let routine_locs (objs : Objfile.t list) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (o : Objfile.t) ->
      List.iter
        (fun (u : Objfile.unit_) ->
          Hashtbl.replace tbl u.Objfile.uname
            u.Objfile.env.Sema.routine.Decl.rloc)
        o.Objfile.units)
    objs;
  fun r ->
    match Hashtbl.find_opt tbl r with
    | Some loc -> Ddsm_ir.Loc.to_string loc ^ ": "
    | None -> ""

let check_commons (objs : Objfile.t list) =
  let loc_of = routine_locs objs in
  let decls = Hashtbl.create 8 in
  List.iter
    (fun (o : Objfile.t) ->
      List.iter
        (fun (blk, routine, members) ->
          Hashtbl.replace decls blk
            (Option.value ~default:[] (Hashtbl.find_opt decls blk)
            @ [ (routine, members) ]))
        o.Objfile.shadow.Shadow.commons)
    objs;
  let errors = ref [] in
  Hashtbl.iter
    (fun blk decl_list ->
      let has_reshaped =
        List.exists
          (fun (_, ms) -> List.exists (fun m -> m.Shadow.cm_dist <> None) ms)
          decl_list
      in
      (* "common blocks without reshaped arrays are not affected" *)
      if has_reshaped then
        match decl_list with
        | [] -> ()
        | (ref_routine, ref_members) :: rest ->
            List.iter
              (fun (routine, members) ->
                (* every reshaped member must appear at the same offset with
                   the same shape and distribution on both sides *)
                let index ms =
                  List.filter_map
                    (fun m ->
                      if m.Shadow.cm_dist <> None then Some (m.Shadow.cm_offset, m)
                      else None)
                    ms
                in
                let check_against ~side_a ~side_b a_name b_name =
                  List.iter
                    (fun (off, (ma : Shadow.common_member)) ->
                      match
                        List.find_opt
                          (fun (m : Shadow.common_member) -> m.Shadow.cm_offset = off)
                          side_b
                      with
                      | None ->
                          errors :=
                            Printf.sprintf
                              "%scommon /%s/: reshaped array %s (offset %d) \
                               in %s has no counterpart in %s"
                              (loc_of a_name) blk ma.Shadow.cm_name off a_name
                              b_name
                            :: !errors
                      | Some mb ->
                          if mb.Shadow.cm_shape <> ma.Shadow.cm_shape then
                            errors :=
                              Printf.sprintf
                                "%scommon /%s/: reshaped array %s declared %s \
                                 in %s but %s in %s"
                                (loc_of a_name) blk ma.Shadow.cm_name
                                (pp_shape ma.Shadow.cm_shape) a_name
                                (pp_shape mb.Shadow.cm_shape) b_name
                              :: !errors
                          else if
                            not
                              (match (ma.Shadow.cm_dist, mb.Shadow.cm_dist) with
                              | Some da, Some db ->
                                  Sig_.equal [ Some da ] [ Some db ]
                              | _ -> false)
                          then
                            errors :=
                              Printf.sprintf
                                "%scommon /%s/: array %s has inconsistent \
                                 reshaped distributions in %s and %s"
                                (loc_of a_name) blk ma.Shadow.cm_name a_name
                                b_name
                              :: !errors)
                    side_a
                in
                let ra = index ref_members and rb = index members in
                check_against ~side_a:ra ~side_b:(List.map snd rb) ref_routine
                  routine;
                check_against ~side_a:rb ~side_b:(List.map snd ra) routine
                  ref_routine)
              rest)
    decls;
  List.rev !errors

(* --- call-site rewriting --- *)

let rewrite_calls env (stmts : Stmt.t list) : Stmt.t list * (string * Sig_.t) list
    =
  let needed = ref [] in
  let note n s = if not (List.mem (n, s) !needed) then needed := (n, s) :: !needed in
  let rec go (t : Stmt.t) : Stmt.t =
    match t.Stmt.s with
    | Stmt.Call (n, args) ->
        let sg = Objfile.call_signature env args in
        if Sig_.is_trivial sg then t
        else begin
          note n sg;
          { t with Stmt.s = Stmt.Call (Sig_.mangle n sg, args) }
        end
    | Stmt.Do d -> { t with Stmt.s = Stmt.Do { d with Stmt.body = List.map go d.Stmt.body } }
    | Stmt.If (c, a, b) ->
        { t with Stmt.s = Stmt.If (c, List.map go a, List.map go b) }
    | Stmt.Doacross da ->
        {
          t with
          Stmt.s =
            Stmt.Doacross
              {
                da with
                Stmt.loop =
                  { da.Stmt.loop with Stmt.body = List.map go da.Stmt.loop.Stmt.body };
              };
        }
    | Stmt.Par p ->
        { t with Stmt.s = Stmt.Par { Stmt.pbody = List.map go p.Stmt.pbody } }
    | _ -> t
  in
  let out = List.map go stmts in
  (out, !needed)

(* --- the linking fixpoint --- *)

let link (objs : Objfile.t list) =
  let errors = ref (check_commons objs) in
  (* routine table: name -> (owning object, unit) *)
  let table : (string, Objfile.t * Objfile.unit_) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (o : Objfile.t) ->
      List.iter
        (fun (u : Objfile.unit_) ->
          if Hashtbl.mem table u.Objfile.uname then
            errors :=
              Printf.sprintf "routine %s defined in more than one file"
                u.Objfile.uname
              :: !errors
          else Hashtbl.replace table u.Objfile.uname (o, u))
        o.Objfile.units)
    objs;
  let clones = ref [] in
  let recompilations = ref 0 in
  let out : (string * Sema.env * Decl.routine) list ref = ref [] in
  let processed = Hashtbl.create 32 in
  (* worklist of routine names to process (rewrite + clone transitively) *)
  let rec process name =
    if (not (Hashtbl.mem processed name)) && !errors = [] then begin
      Hashtbl.replace processed name ();
      match Hashtbl.find_opt table name with
      | None -> errors := Printf.sprintf "unresolved routine %s" name :: !errors
      | Some (_owner, u) ->
          let body, needed = rewrite_calls u.Objfile.env u.Objfile.lowered.Decl.rbody in
          let lowered = { u.Objfile.lowered with Decl.rbody = body } in
          out := (name, u.Objfile.env, lowered) :: !out;
          let mangled_names = List.map (fun (n, sg) -> Sig_.mangle n sg) needed in
          (* instantiate clones first, then resolve the remaining callees *)
          List.iter
            (fun (callee, sg) ->
              let mangled = Sig_.mangle callee sg in
              if not (Hashtbl.mem table mangled) then begin
                (* clone request: record it in the defining object's shadow
                   and re-invoke compilation on that object (§5) *)
                match Hashtbl.find_opt table callee with
                | None ->
                    errors :=
                      Printf.sprintf "unresolved routine %s (reshaped call from %s)"
                        callee name
                      :: !errors
                | Some (def_obj, _) -> (
                    Shadow.add_request def_obj.Objfile.shadow callee sg;
                    incr recompilations;
                    match
                      Objfile.compile_clone def_obj ~original:callee
                        ~clone:mangled ~sig_:sg
                    with
                    | Error es ->
                        errors :=
                          List.map
                            (fun e -> Printf.sprintf "cloning %s: %s" callee e)
                            es
                          @ !errors
                    | Ok cu ->
                        Hashtbl.replace table mangled (def_obj, cu);
                        clones := (callee, mangled) :: !clones)
              end;
              if !errors = [] then process mangled)
            needed;
          List.iter (fun callee -> process callee)
            (Stmt.calls_made body
            |> List.filter (fun c -> not (List.mem c mangled_names)))
    end
  in
  (* main program unit *)
  let mains =
    List.concat_map
      (fun (o : Objfile.t) ->
        List.filter_map
          (fun (u : Objfile.unit_) ->
            if u.Objfile.env.Sema.routine.Decl.rkind = Decl.Program then
              Some u.Objfile.uname
            else None)
        o.Objfile.units)
      objs
  in
  (match mains with
  | [ m ] -> process m
  | [] -> errors := "no program unit found" :: !errors
  | ms ->
      errors :=
        Printf.sprintf "multiple program units: %s" (String.concat ", " ms)
        :: !errors);
  (* routines never called are still linked in (so tests can probe them) *)
  Hashtbl.iter (fun name _ -> if !errors = [] then process name) table;
  (* §5: "we avoid unnecessary cloning by removing requests from the shadow
     file for each definition that does not have a matching call" — drop
     stale requests (e.g. left over from a previous link whose call site
     has since been removed) *)
  List.iter
    (fun (o : Objfile.t) ->
      let live (callee, sg) =
        List.exists
          (fun (o' : Objfile.t) ->
            List.mem (callee, sg) o'.Objfile.shadow.Shadow.calls)
          objs
      in
      o.Objfile.shadow.Shadow.requests <-
        List.filter live o.Objfile.shadow.Shadow.requests)
    objs;
  if !errors <> [] then Error (List.rev !errors)
  else
    Ok
      {
        routines = List.rev !out;
        main = List.hd mains;
        clones = List.rev !clones;
        recompilations = !recompilations;
      }
