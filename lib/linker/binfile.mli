(** Hardened container for Marshal-persisted artifacts (object files,
    linked images, the daemon's compile cache).

    A bare [Marshal.from_channel] on an untrusted path is a crash (or
    worse) waiting to happen: truncated files, files written by an older
    build, or arbitrary foreign bytes all reach the unmarshaller
    unchecked. [Binfile] frames every payload with a one-line text
    header — magic, artifact kind, format version, payload length and an
    MD5 digest — and only unmarshals bytes that passed every check, so a
    bad file is always a diagnosable [Error], never an exception or
    undefined behaviour.

    Writes are atomic: the payload goes to a fresh temp file in the target
    directory which is then renamed into place, so a reader (or a
    concurrent daemon worker) either sees the complete old file, the
    complete new file, or no file — never a torn one. *)

val format_version : int
(** Bumped whenever the marshalled representation of any persisted type
    changes; old files then fail {!load} with a "stale version" error
    instead of unmarshalling garbage. *)

val save : kind:string -> path:string -> 'a -> unit
(** [save ~kind ~path v] marshals [v] and atomically installs it at
    [path]. Raises [Sys_error] on OS failures (unwritable directory,
    full disk); the target is untouched in that case. *)

val load : kind:string -> path:string -> ('a, string) result
(** [load ~kind ~path] validates magic, kind, version, length and digest
    before unmarshalling. Errors are located (they start with [path]) and
    say which check failed: not a DDSM file, wrong artifact kind, stale
    format version, truncated, or digest mismatch. *)

(** {2 Fault injection (tests only)}

    Simulates a writer killed mid-write: [save] raises {!Crashed} after
    the temp file has received [after_bytes] bytes of payload, leaving the
    torn temp file on disk but never renaming it into place — the
    machinery the atomic-write test uses to prove readers cannot observe
    a partial file. The plan is one-shot: it clears when it fires. *)

exception Crashed

val inject_crash : after_bytes:int -> unit
val clear_crash : unit -> unit
