(* Hardened, atomically-written container for Marshal-persisted artifacts.
   See binfile.mli for the contract. On-disk layout: one text header line

     DDSMBIN1 <kind> <format-version> <payload-bytes> <md5-hex>\n

   followed by the raw Marshal payload. Nothing reaches the unmarshaller
   until magic, kind, version, length and digest have all checked out, so
   truncated, stale or foreign files are plain [Error]s. *)

let magic = "DDSMBIN1"
let format_version = 2 (* v1 = the headerless bare-Marshal era *)

exception Crashed

let crash_plan = ref None
let inject_crash ~after_bytes = crash_plan := Some after_bytes
let clear_crash () = crash_plan := None

let save ~kind ~path v =
  if String.exists (fun c -> c = ' ' || c = '\n') kind then
    invalid_arg "Binfile.save: kind must not contain spaces";
  let payload = Marshal.to_string v [] in
  let header =
    Printf.sprintf "%s %s %d %d %s\n" magic kind format_version
      (String.length payload)
      (Digest.to_hex (Digest.string payload))
  in
  (* temp file in the target's own directory so the final rename never
     crosses a filesystem and is atomic *)
  let tmp, oc =
    Filename.open_temp_file ~mode:[ Open_binary ]
      ~temp_dir:(Filename.dirname path)
      ".ddsm-" ".tmp"
  in
  (try
     output_string oc header;
     (match !crash_plan with
     | Some n ->
         (* simulated kill mid-write: the torn temp file stays on disk,
            the target path is never touched *)
         crash_plan := None;
         output_substring oc payload 0 (min n (String.length payload));
         flush oc;
         close_out_noerr oc;
         raise Crashed
     | None -> output_string oc payload);
     close_out oc
   with e ->
     close_out_noerr oc;
     (if e <> Crashed then try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let load ~kind ~path =
  let err fmt = Printf.ksprintf (fun m -> Error (path ^ ": " ^ m)) fmt in
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let header = try Some (input_line ic) with End_of_file -> None in
          match Option.map (String.split_on_char ' ') header with
          | None -> err "not a DDSM %s file (empty file)" kind
          | Some [ m; k; ver; len; dig ] when m = magic -> (
              if k <> kind then
                err "is a DDSM %s file, expected a %s file" k kind
              else
                match (int_of_string_opt ver, int_of_string_opt len) with
                | Some v, _ when v <> format_version ->
                    err
                      "stale format version %d (this build reads version \
                       %d) — rebuild the file"
                      v format_version
                | _, None | None, _ -> err "corrupt header"
                | Some _, Some len -> (
                    let payload =
                      try Some (really_input_string ic len)
                      with End_of_file -> None
                    in
                    match payload with
                    | None -> err "truncated (torn write or short copy)"
                    | Some payload ->
                        if pos_in ic <> in_channel_length ic then
                          err "trailing garbage after payload"
                        else if Digest.to_hex (Digest.string payload) <> dig
                        then err "corrupt (payload digest mismatch)"
                        else (
                          (* digest verified: these are the exact bytes the
                             writer marshalled, so unmarshalling is safe *)
                          match Marshal.from_string payload 0 with
                          | v -> Ok v
                          | exception Failure m ->
                              err "corrupt payload: %s" m)))
          | Some _ ->
              err "not a DDSM %s file (bad or missing magic)" kind)
