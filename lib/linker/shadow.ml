type common_member = {
  cm_name : string;
  cm_offset : int;
  cm_shape : int list;
  cm_dist : Sig_.arg option;
}

type t = {
  mutable defs : (string * Sig_.t) list;
  mutable calls : (string * Sig_.t) list;
  mutable requests : (string * Sig_.t) list;
  mutable commons : (string * string * common_member list) list;
}

let empty () = { defs = []; calls = []; requests = []; commons = [] }

let add_once list entry = if List.mem entry !list then () else list := !list @ [ entry ]

let add_def t n s =
  let l = ref t.defs in
  add_once l (n, s);
  t.defs <- !l

let add_call t n s =
  let l = ref t.calls in
  add_once l (n, s);
  t.calls <- !l

let add_request t n s =
  let l = ref t.requests in
  add_once l (n, s);
  t.requests <- !l

let remove_request t n s =
  t.requests <- List.filter (fun e -> e <> (n, s)) t.requests

let add_common t ~block ~routine members =
  t.commons <- t.commons @ [ (block, routine, members) ]

let member_to_string m =
  Printf.sprintf "%s@%d:%s:%s" m.cm_name m.cm_offset
    (String.concat "x" (List.map string_of_int m.cm_shape))
    (match m.cm_dist with
    | None -> "-"
    | Some a -> Sig_.to_string [ Some a ])

let member_of_string s =
  match String.split_on_char ':' s with
  | [ nameoff; shape; dist ] -> (
      match String.split_on_char '@' nameoff with
      | [ name; off ] -> (
          let shape =
            if shape = "" then []
            else List.map int_of_string (String.split_on_char 'x' shape)
          in
          match dist with
          | "-" -> Ok { cm_name = name; cm_offset = int_of_string off; cm_shape = shape; cm_dist = None }
          | d -> (
              match Sig_.of_string d with
              | Ok [ Some a ] ->
                  Ok
                    { cm_name = name; cm_offset = int_of_string off; cm_shape = shape; cm_dist = Some a }
              | Ok _ -> Error ("bad member dist " ^ d)
              | Error e -> Error e))
      | _ -> Error ("bad member " ^ s))
  | _ -> Error ("bad member " ^ s)

let to_string t =
  let b = Buffer.create 256 in
  Buffer.add_string b "# ddsm shadow file v1\n";
  List.iter
    (fun (n, s) -> Buffer.add_string b (Printf.sprintf "def %s %s\n" n (Sig_.to_string s)))
    t.defs;
  List.iter
    (fun (n, s) -> Buffer.add_string b (Printf.sprintf "call %s %s\n" n (Sig_.to_string s)))
    t.calls;
  List.iter
    (fun (n, s) ->
      Buffer.add_string b (Printf.sprintf "request %s %s\n" n (Sig_.to_string s)))
    t.requests;
  List.iter
    (fun (blk, routine, members) ->
      Buffer.add_string b
        (Printf.sprintf "common %s %s %s\n" blk routine
           (String.concat " " (List.map member_to_string members))))
    t.commons;
  Buffer.contents b

let of_string s =
  let t = empty () in
  let err = ref None in
  String.split_on_char '\n' s
  |> List.iteri (fun lineno line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then ()
         else
           match String.split_on_char ' ' line with
           | "def" :: name :: rest -> (
               match Sig_.of_string (String.concat " " rest) with
               | Ok sg -> add_def t name sg
               | Error e -> if !err = None then err := Some (lineno + 1, e))
           | "call" :: name :: rest -> (
               match Sig_.of_string (String.concat " " rest) with
               | Ok sg -> add_call t name sg
               | Error e -> if !err = None then err := Some (lineno + 1, e))
           | "request" :: name :: rest -> (
               match Sig_.of_string (String.concat " " rest) with
               | Ok sg -> add_request t name sg
               | Error e -> if !err = None then err := Some (lineno + 1, e))
           | "common" :: blk :: routine :: members -> (
               let ms = List.map member_of_string members in
               match List.find_opt Result.is_error ms with
               | Some (Error e) -> if !err = None then err := Some (lineno + 1, e)
               | _ ->
                   add_common t ~block:blk ~routine
                     (List.map Result.get_ok ms))
           | _ -> if !err = None then err := Some (lineno + 1, "bad shadow line"))
  |> ignore;
  match !err with
  | Some (line, e) -> Error (Printf.sprintf "shadow line %d: %s" line e)
  | None -> Ok t

let save t ~path =
  (* atomic like Binfile.save: temp file in the target directory, then
     rename, so concurrent readers never see a partial shadow file *)
  let tmp, oc =
    Filename.open_temp_file ~temp_dir:(Filename.dirname path) ".ddsm-" ".tmp"
  in
  (try
     output_string oc (to_string t);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let load ~path =
  try
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    of_string s
  with Sys_error e -> Error e
