(* Typed specification of a random mini-Fortran program, and its renderer.

   The generator builds values of [t]; rendering then emits well-formed .pf
   source *by construction*: every array reference stays in bounds for the
   loop ranges it appears under, every doacross writes only its own
   iteration's elements of one array (so the program is serial-equivalent
   and race-free), scalars assigned inside a parallel body are
   defined-before-use locals, and distribution/onto/nest/affinity clauses
   satisfy the sema legality rules.  The same value is what the shrinker
   minimizes — shrinking transforms the spec, never the text. *)

open Ddsm_ir
module K = Ddsm_dist.Kind

type dist = { kinds : K.t list; onto : int list option; reshape : bool }

type arr = {
  an : string;  (* array name, e.g. "a0" *)
  ap : string;  (* its extent parameter, e.g. "n0" *)
  aty : Types.ty;
  nd : int;  (* 1..3 dimensions, all of extent [ext] *)
  ext : int;
  adist : dist option;
  acommon : string option;  (* common block membership *)
}

(* Subscript of an array read appearing under the surrounding loop nest.
   [SVar d] / [SRev d] use nest variable [d]; both are in [1, loop extent]
   so any array at least as large as the loop array is safely indexed. *)
type sidx =
  | SVar of int
  | SRev of int  (* loopext+1-v: exercises non-aligned affinity *)
  | SConst of int
  | SIn of string  (* an inner serial loop variable, e.g. the reduction's *)
  | SInd of string
      (* indirect: an index array read at the outermost nest variable,
         e.g. a0(ix0(i)).  The generator fills index arrays with values
         in [1,3], in bounds for every array at every shrink stage
         (extents never drop below 3), and never writes them afterwards
         -- the shape the inspector-executor transform targets. *)

type exp =
  | ILit of int
  | RLit of float  (* generator only emits quarters, so %.10g round-trips *)
  | EVar of string
  | ERead of string * sidx list
  | EBin of Expr.binop * exp * exp
  | ERel of Expr.relop * exp * exp
  | ENeg of exp
  | EIntrin of string * exp list

type par = {
  p_nest : bool;  (* nest(...) over all dims (perfect nest) *)
  p_sched : Stmt.sched;
  p_aff : bool;  (* affinity(i) = data(w(i,1,..)) *)
  p_onto : int list option;
  p_barrier : bool;  (* c$barrier between two own-index writes *)
}

type stmt =
  | SAssignScal of string * exp
  | SLoop of {
      w : string;  (* array written at its own index *)
      par : par option;  (* None = serial do nest *)
      rhs : exp;
      red : (string * string) option;
          (* (acc scalar, read array): acc = 0; inner kk-loop accumulates
             rhs (indexed by [SIn "kk"]); then w(i) = acc.  1-D w only. *)
    }
  | SIf of exp * stmt list * stmt list
  | SCallWhole of string * string * exp  (* sub, array, scalar actual *)
  | SCallElem of string * string * int * exp  (* sub, array, start, scalar *)
  | SRedist of string * K.t list * int list option * int option
      (* array, new kinds, onto weights, procs(n) grid resize *)
  | SBarrier
  | SPrintSum of string  (* serial checksum loop + print *)

type sub = {
  sname : string;
  sty : Types.ty;  (* element type of the formal array *)
  skind : [ `Whole of int  (* ndims *) | `Elem of int  (* fixed extent k *) ]
}

type t = {
  arrays : arr list;
  scalars : (string * Types.ty) list;  (* declared scalars of main *)
  subs : sub list;
  body : stmt list;
  nfiles : int;
  common_in_sub : bool;  (* first sub redeclares the common blocks *)
  seed : int;  (* provenance *)
}

let arr t name = List.find (fun a -> a.an = name) t.arrays

(* ------------------------------------------------------------------ *)
(* Rendering *)

let nestv = [| "i"; "j"; "k" |]

let render_real x =
  let s = Printf.sprintf "%.10g" x in
  if String.exists (fun c -> c = '.' || c = 'e') s then s else s ^ ".0"

let opstr = function
  | Expr.Add -> "+"
  | Expr.Sub -> "-"
  | Expr.Mul -> "*"
  | Expr.Div -> "/"
  | Expr.Pow -> "**"

let relstr = function
  | Expr.Lt -> ".lt."
  | Expr.Le -> ".le."
  | Expr.Gt -> ".gt."
  | Expr.Ge -> ".ge."
  | Expr.Eq -> ".eq."
  | Expr.Ne -> ".ne."

(* [loopp] is the extent-parameter name of the surrounding loop nest *)
let render_sidx ~loopp = function
  | SVar d -> nestv.(d)
  | SRev d -> Printf.sprintf "%s+1-%s" loopp nestv.(d)
  | SConst c -> string_of_int c
  | SIn v -> v
  | SInd a -> Printf.sprintf "%s(%s)" a nestv.(0)

let rec render_exp ~loopp e =
  match e with
  | ILit n -> if n < 0 then Printf.sprintf "(0-%d)" (-n) else string_of_int n
  | RLit x -> render_real x
  | EVar v -> v
  | ERead (a, subs) ->
      Printf.sprintf "%s(%s)" a
        (String.concat "," (List.map (render_sidx ~loopp) subs))
  | EBin (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (render_exp ~loopp a) (opstr op)
        (render_exp ~loopp b)
  | ERel (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (render_exp ~loopp a) (relstr op)
        (render_exp ~loopp b)
  | ENeg a -> Printf.sprintf "(-%s)" (render_exp ~loopp a)
  | EIntrin (n, args) ->
      Printf.sprintf "%s(%s)" n
        (String.concat ", " (List.map (render_exp ~loopp) args))

let rec exp_arrays e =
  match e with
  | ILit _ | RLit _ | EVar _ -> []
  | ERead (a, subs) ->
      (* index arrays read through [SInd] count as reads too: the
         doacross shared clause and the shrinker's dependency tracking
         both key on this list *)
      a :: List.filter_map (function SInd x -> Some x | _ -> None) subs
  | EBin (_, a, b) | ERel (_, a, b) -> exp_arrays a @ exp_arrays b
  | ENeg a -> exp_arrays a
  | EIntrin (_, args) -> List.concat_map exp_arrays args

let dedup xs =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs)

let own_index nd = String.concat "," (Array.to_list (Array.sub nestv 0 nd))

let render_dist_directive an (d : dist) =
  let kinds = String.concat ", " (List.map K.to_string d.kinds) in
  let onto =
    match d.onto with
    | None -> ""
    | Some ws ->
        Printf.sprintf " onto(%s)" (String.concat ", " (List.map string_of_int ws))
  in
  Printf.sprintf "c$%s %s(%s)%s"
    (if d.reshape then "distribute_reshape" else "distribute")
    an kinds onto

let render_stmt t buf st =
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let rec go ind st =
    let pad = String.make (6 + (2 * ind)) ' ' in
    match st with
    | SAssignScal (v, e) -> add "%s%s = %s" pad v (render_exp ~loopp:"" e)
    | SIf (c, th, el) ->
        add "%sif (%s) then" pad (render_exp ~loopp:"" c);
        List.iter (go (ind + 1)) th;
        if el <> [] then begin
          add "%selse" pad;
          List.iter (go (ind + 1)) el
        end;
        add "%sendif" pad
    | SCallWhole (s, a, e) ->
        let ar = arr t a in
        add "%scall %s(%s, %s, %s)" pad s a ar.ap (render_exp ~loopp:"" e)
    | SCallElem (s, a, at, e) ->
        add "%scall %s(%s(%d), %s)" pad s a at (render_exp ~loopp:"" e)
    | SRedist (a, kinds, onto, procs) ->
        let ks = String.concat ", " (List.map K.to_string kinds) in
        let os =
          match onto with
          | None -> ""
          | Some ws ->
              Printf.sprintf " onto(%s)"
                (String.concat ", " (List.map string_of_int ws))
        in
        let ps =
          match procs with
          | None -> ""
          | Some p -> Printf.sprintf " procs(%d)" p
        in
        add "c$redistribute %s(%s)%s%s" a ks os ps
    | SBarrier -> add "c$barrier"
    | SPrintSum a ->
        let ar = arr t a in
        add "%schk = 0.0" pad;
        for d = 0 to ar.nd - 1 do
          add "%sdo %s = 1, %s"
            (String.make (6 + (2 * (ind + d))) ' ')
            nestv.(d) ar.ap
        done;
        add "%schk = chk + %s(%s)"
          (String.make (6 + (2 * (ind + ar.nd))) ' ')
          a (own_index ar.nd);
        for d = ar.nd - 1 downto 0 do
          add "%senddo" (String.make (6 + (2 * (ind + d))) ' ')
        done;
        add "%sprint *, '%s:', chk" pad a
    | SLoop { w; par; rhs; red } -> (
        let ar = arr t w in
        let loopp = ar.ap in
        (match par with
        | None -> ()
        | Some p ->
            let locals = Array.to_list (Array.sub nestv 0 ar.nd) in
            let locals =
              match red with
              | Some (acc, _) -> locals @ [ "kk"; acc ]
              | None -> locals
            in
            let reads =
              dedup
                (exp_arrays rhs
                @ match red with Some (_, ra) -> [ ra ] | None -> [])
            in
            let shared =
              match dedup (w :: reads) with
              | [] -> ""
              | xs -> Printf.sprintf ", shared(%s)" (String.concat ", " xs)
            in
            let nest =
              if p.p_nest && ar.nd > 1 then
                Printf.sprintf ", nest(%s)" (own_index ar.nd)
              else ""
            in
            let sched =
              match p.p_sched with
              | Stmt.Simple -> ""
              | Stmt.Interleave k -> Printf.sprintf ", schedtype(interleave(%d))" k
            in
            let onto =
              match p.p_onto with
              | None -> ""
              | Some ws ->
                  Printf.sprintf ", onto(%s)"
                    (String.concat ", " (List.map string_of_int ws))
            in
            let aff =
              if p.p_aff then
                let subs =
                  "i" :: List.init (ar.nd - 1) (fun _ -> "1") |> String.concat ","
                in
                Printf.sprintf ", affinity(i) = data(%s(%s))" w subs
              else ""
            in
            add "c$doacross local(%s)%s%s%s%s%s"
              (String.concat ", " locals)
              shared nest sched onto aff);
        for d = 0 to ar.nd - 1 do
          add "%sdo %s = 1, %s"
            (String.make (6 + (2 * (ind + d))) ' ')
            nestv.(d) loopp
        done;
        let bpad = String.make (6 + (2 * (ind + ar.nd))) ' ' in
        (match red with
        | Some (acc, ra) ->
            let racc = List.assoc acc t.scalars = Types.Treal in
            let rap = (arr t ra).ap in
            add "%s%s = %s" bpad acc (if racc then "0.0" else "0");
            add "%sdo kk = 1, %s" bpad rap;
            add "%s  %s = %s + %s" bpad acc acc (render_exp ~loopp rhs);
            add "%senddo" bpad;
            add "%s%s(%s) = %s" bpad w (own_index ar.nd) acc
        | None -> (
            add "%s%s(%s) = %s" bpad w (own_index ar.nd)
              (render_exp ~loopp rhs);
            match par with
            | Some { p_barrier = true; _ } ->
                add "c$barrier";
                let self = Printf.sprintf "%s(%s)" w (own_index ar.nd) in
                if ar.aty = Types.Treal then
                  add "%s%s = (%s * 0.5) + 1.0" bpad self self
                else add "%s%s = (%s * 2) + 1" bpad self self
            | _ -> ()));
        for d = ar.nd - 1 downto 0 do
          add "%senddo" (String.make (6 + (2 * (ind + d))) ' ')
        done)
  in
  go 0 st

(* declarations shared between main and a common-redeclaring subroutine *)
let render_common_decls t buf =
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let commons = List.filter (fun a -> a.acommon <> None) t.arrays in
  let params = dedup (List.map (fun a -> a.ap) commons) in
  if params <> [] then add "      integer %s" (String.concat ", " params);
  List.iter
    (fun a ->
      List.iter
        (fun p -> if p = a.ap then add "      parameter (%s = %d)" p a.ext)
        params)
    (dedup commons);
  List.iter
    (fun a ->
      let dims =
        String.concat "," (List.init a.nd (fun _ -> a.ap))
      in
      add "      %s %s(%s)"
        (if a.aty = Types.Treal then "real*8" else "integer")
        a.an dims)
    commons;
  let blocks = dedup (List.filter_map (fun a -> a.acommon) commons) in
  List.iter
    (fun blk ->
      let members =
        List.filter (fun a -> a.acommon = Some blk) commons
        |> List.map (fun a -> a.an)
      in
      add "      common /%s/ %s" blk (String.concat ", " members))
    blocks;
  List.iter
    (fun a ->
      match a.adist with
      | Some d -> add "%s" (render_dist_directive a.an d)
      | None -> ())
    commons

let render_main t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  add "c pflfuzz seed=%d" t.seed;
  add "      program main";
  let locals = List.filter (fun a -> a.acommon = None) t.arrays in
  let params = dedup (List.map (fun a -> a.ap) locals) in
  let ints =
    [ "i"; "j"; "k"; "kk" ] @ params
    @ List.filter_map
        (fun (n, ty) -> if ty = Types.Tint then Some n else None)
        t.scalars
  in
  add "      integer %s" (String.concat ", " ints);
  List.iter
    (fun p ->
      let a = List.find (fun a -> a.ap = p) locals in
      add "      parameter (%s = %d)" p a.ext)
    params;
  let reals =
    "chk"
    :: List.filter_map
         (fun (n, ty) -> if ty = Types.Treal then Some n else None)
         t.scalars
  in
  let real_arrays =
    List.filter_map
      (fun a ->
        if a.aty = Types.Treal then
          Some
            (Printf.sprintf "%s(%s)" a.an
               (String.concat "," (List.init a.nd (fun _ -> a.ap))))
        else None)
      locals
  in
  add "      real*8 %s" (String.concat ", " (real_arrays @ reals));
  let int_arrays =
    List.filter_map
      (fun a ->
        if a.aty = Types.Tint then
          Some
            (Printf.sprintf "%s(%s)" a.an
               (String.concat "," (List.init a.nd (fun _ -> a.ap))))
        else None)
      locals
  in
  if int_arrays <> [] then add "      integer %s" (String.concat ", " int_arrays);
  render_common_decls t buf;
  List.iter
    (fun a ->
      if a.acommon = None then
        match a.adist with
        | Some d -> add "%s" (render_dist_directive a.an d)
        | None -> ())
    locals;
  List.iter (render_stmt t buf) t.body;
  add "      end";
  Buffer.contents buf

let render_sub t (s : sub) ~with_commons =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let tystr = if s.sty = Types.Treal then "real*8" else "integer" in
  (match s.skind with
  | `Whole nd ->
      add "      subroutine %s(x, n, s)" s.sname;
      add "      integer n, %s" (String.concat ", " (List.init nd (fun d -> "q" ^ string_of_int d)));
      add "      %s x(%s), s" tystr (String.concat "," (List.init nd (fun _ -> "n")));
      if with_commons then render_common_decls t buf;
      for d = 0 to nd - 1 do
        add "%sdo q%d = 1, n" (String.make (6 + (2 * d)) ' ') d
      done;
      let idx = String.concat "," (List.init nd (fun d -> "q" ^ string_of_int d)) in
      add "%sx(%s) = x(%s) + s" (String.make (6 + (2 * nd)) ' ') idx idx;
      for d = nd - 1 downto 0 do
        add "%senddo" (String.make (6 + (2 * d)) ' ')
      done
  | `Elem k ->
      add "      subroutine %s(x, s)" s.sname;
      add "      integer q0";
      add "      %s x(%d), s" tystr k;
      if with_commons then render_common_decls t buf;
      add "      do q0 = 1, %d" k;
      add "        x(q0) = x(q0) + s";
      add "      enddo");
  add "      return";
  add "      end";
  Buffer.contents buf

let render (t : t) : (string * string) list =
  let nfiles = max 1 t.nfiles in
  let files = Array.make nfiles [] in
  files.(0) <- [ render_main t ];
  List.iteri
    (fun i s ->
      let fi = (i + 1) mod nfiles in
      let with_commons = t.common_in_sub && i = 0 in
      files.(fi) <- files.(fi) @ [ render_sub t s ~with_commons ])
    t.subs;
  Array.to_list files
  |> List.mapi (fun i rs -> (Printf.sprintf "fz%d.pf" i, String.concat "\n" rs))
  |> List.filter (fun (_, s) -> String.trim s <> "")
