open Ddsm_ir
module K = Ddsm_dist.Kind

type size = {
  max_arrays : int;
  max_stmts : int;
  max_ext : int;
  max_subs : int;
  max_files : int;
}

let quick = { max_arrays = 3; max_stmts = 6; max_ext = 6; max_subs = 2; max_files = 2 }

let of_level n =
  let n = max 1 n in
  {
    max_arrays = max 1 (1 + (n / 4));
    max_stmts = max 2 (1 + (n / 2));
    max_ext = max 3 (3 + (n / 3));
    max_subs = min 3 (n / 4);
    max_files = min 3 (1 + (n / 8));
  }

(* ------------------------------------------------------------------ *)
(* Distributions *)

let gen_dist rng nd =
  let kind () =
    Rng.pick rng
      [ K.Block; K.Block; K.Cyclic; K.Cyclic_k (Rng.range rng 2 3); K.Star ]
  in
  let kinds = List.init nd (fun _ -> kind ()) in
  (* at least one distributed dimension, or sema rejects the directive *)
  let kinds =
    if List.for_all (fun k -> k = K.Star) kinds then
      K.Block :: List.tl kinds
    else kinds
  in
  let ndist = List.length (List.filter K.is_distributed kinds) in
  let onto =
    if Rng.chance rng ~pct:35 then
      Some (List.init ndist (fun _ -> Rng.range rng 1 2))
    else None
  in
  let reshape = Rng.chance rng ~pct:40 in
  { Spec.kinds; onto; reshape }

(* ------------------------------------------------------------------ *)
(* Expressions *)

(* where an expression appears, which decides the safe subscript forms *)
type ectx =
  | Serial_loop of Spec.arr  (* body of a serial nest over this array *)
  | Par_loop of Spec.arr  (* body of a doacross over this array *)
  | Reduction of Spec.arr * Spec.arr  (* (written w, kk-indexed read ra) *)
  | Scalar_ctx  (* serial straight-line code: constant subscripts only *)

let scalar_pool = [ ("s0", Types.Treal); ("s1", Types.Treal); ("m0", Types.Tint); ("m1", Types.Tint) ]
let acc_scalar = ("t0", Types.Treal)

(* index arrays ("ix0", "ix1") feed indirect subscripts.  They are filled
   once by an affine mod pattern and never written again, so their values
   stay in [1,3] — in bounds for every array at every shrink stage. *)
let is_index (a : Spec.arr) =
  String.length a.Spec.an >= 2 && String.sub a.Spec.an 0 2 = "ix"

let quarters rng = float_of_int (Rng.range rng 1 12) *. 0.25

let gen_read rng (arrays : Spec.arr list) ctx : Spec.exp option =
  let idxs = List.filter is_index arrays in
  let sub_for rng (loop : Spec.arr) (r : Spec.arr) _d =
    match Rng.int rng 5 with
    | 0 | 1 -> Spec.SVar (Rng.int rng loop.Spec.nd)
    | 2 -> Spec.SRev (Rng.int rng loop.Spec.nd)
    | 3 when idxs <> [] ->
        (* indirect subscript through an index array: its values are in
           [1,3], in bounds for any array, and the read sits under a loop
           whose outermost variable subscripts the index array itself *)
        Spec.SInd (Rng.pick rng idxs).Spec.an
    | _ -> Spec.SConst (Rng.range rng 1 r.Spec.ext)
  in
  match ctx with
  | Scalar_ctx ->
      if arrays = [] then None
      else
        let r = Rng.pick rng arrays in
        Some
          (Spec.ERead
             ( r.Spec.an,
               List.init r.Spec.nd (fun _ ->
                   Spec.SConst (Rng.range rng 1 r.Spec.ext)) ))
  | Reduction (_, ra) ->
      Some
        (Spec.ERead
           ( ra.Spec.an,
             List.init ra.Spec.nd (fun _ ->
                 if Rng.chance rng ~pct:70 then Spec.SIn "kk"
                 else Spec.SConst (Rng.range rng 1 ra.Spec.ext)) ))
  | Serial_loop w ->
      (* any array large enough for the loop range, the loop array included *)
      let cands =
        List.filter (fun r -> r.Spec.ext >= w.Spec.ext || r.Spec.an = w.Spec.an) arrays
      in
      if cands = [] then None
      else
        let r = Rng.pick rng cands in
        let subs =
          if r.Spec.an = w.Spec.an && r.Spec.ext < w.Spec.ext then
            (* only reachable when ext relations degenerate; stay safe *)
            List.init r.Spec.nd (fun _ -> Spec.SConst 1)
          else List.init r.Spec.nd (fun d -> sub_for rng w r d)
        in
        Some (Spec.ERead (r.Spec.an, subs))
  | Par_loop w ->
      (* reading the written array is only serial-equivalent at the own
         index; other arrays may be read anywhere in bounds *)
      if Rng.chance rng ~pct:30 then
        Some
          (Spec.ERead
             (w.Spec.an, List.init w.Spec.nd (fun d -> Spec.SVar d)))
      else
        let cands =
          List.filter
            (fun r -> r.Spec.an <> w.Spec.an && r.Spec.ext >= w.Spec.ext)
            arrays
        in
        if cands = [] then
          Some
            (Spec.ERead
               (w.Spec.an, List.init w.Spec.nd (fun d -> Spec.SVar d)))
        else
          let r = Rng.pick rng cands in
          Some (Spec.ERead (r.Spec.an, List.init r.Spec.nd (fun d -> sub_for rng w r d)))

let rec gen_exp rng arrays ctx ~depth : Spec.exp =
  let leaf () =
    match Rng.int rng 6 with
    | 0 -> Spec.ILit (Rng.range rng 0 9)
    | 1 -> Spec.RLit (quarters rng)
    | 2 -> (
        match ctx with
        | Par_loop w | Serial_loop w | Reduction (w, _) ->
            Spec.EVar Spec.nestv.(Rng.int rng w.Spec.nd)
        | Scalar_ctx -> Spec.EVar (fst (Rng.pick rng scalar_pool)))
    | 3 -> Spec.EVar (fst (Rng.pick rng scalar_pool))
    | _ -> (
        match gen_read rng arrays ctx with
        | Some e -> e
        | None -> Spec.ILit (Rng.range rng 0 9))
  in
  if depth <= 0 || Rng.chance rng ~pct:35 then leaf ()
  else
    let sub () = gen_exp rng arrays ctx ~depth:(depth - 1) in
    match Rng.int rng 8 with
    | 0 | 1 -> Spec.EBin (Expr.Add, sub (), sub ())
    | 2 -> Spec.EBin (Expr.Sub, sub (), sub ())
    | 3 ->
        (* keep multipliers small so repeated loops don't explode values *)
        Spec.EBin (Expr.Mul, sub (), Spec.ILit (Rng.range rng 1 3))
    | 4 ->
        if Rng.bool rng then Spec.EBin (Expr.Div, sub (), Spec.ILit (Rng.range rng 1 7))
        else Spec.EBin (Expr.Div, sub (), Spec.RLit 2.0)
    | 5 -> (
        match Rng.int rng 5 with
        | 0 -> Spec.EIntrin ("abs", [ sub () ])
        | 1 -> Spec.EIntrin ("mod", [ sub (); Spec.ILit (Rng.range rng 2 7) ])
        | 2 -> Spec.EIntrin ("min", [ sub (); sub () ])
        | 3 -> Spec.EIntrin ("max", [ sub (); sub () ])
        | _ -> Spec.EIntrin ("sqrt", [ Spec.EIntrin ("abs", [ sub () ]) ]))
    | 6 -> Spec.ENeg (sub ())
    | _ -> Spec.EBin (Expr.Add, sub (), leaf ())

(* ------------------------------------------------------------------ *)
(* Statements *)

let gen_par rng (w : Spec.arr) ~red =
  let nest = w.Spec.nd > 1 && Rng.chance rng ~pct:60 in
  let nvars = if nest then w.Spec.nd else 1 in
  {
    Spec.p_nest = nest;
    p_sched =
      (if Rng.chance rng ~pct:30 then Stmt.Interleave (Rng.range rng 2 3)
       else Stmt.Simple);
    p_aff = w.Spec.adist <> None && Rng.chance rng ~pct:40;
    p_onto =
      (if Rng.chance rng ~pct:15 then
         Some (List.init nvars (fun _ -> Rng.range rng 1 2))
       else None);
    p_barrier = (not red) && Rng.chance rng ~pct:25;
  }

let compatible_whole subs (a : Spec.arr) =
  List.filter
    (fun (s : Spec.sub) ->
      match s.Spec.skind with
      | `Whole nd -> nd = a.Spec.nd && s.Spec.sty = a.Spec.aty
      | `Elem _ -> false)
    subs

let elem_starts (a : Spec.arr) k =
  (* call sites where the formal x(k) provably fits the denoted portion *)
  match a.Spec.adist with
  | Some { Spec.reshape = true; kinds = [ K.Cyclic_k k' ]; _ } when k' = k ->
      let rec go at acc =
        if at + k - 1 > a.Spec.ext then List.rev acc else go (at + k) (at :: acc)
      in
      go 1 []
  | Some { Spec.reshape = true; _ } -> []
  | _ ->
      (* plain and regular storage is contiguous: any window fits *)
      List.init (max 0 (a.Spec.ext - k + 1)) (fun i -> i + 1)

let gen_call rng (subs : Spec.sub list) arrays : Spec.stmt option =
  (* the subroutines add [s] to every element — a write, so index arrays
     are not eligible actuals *)
  let arrays = List.filter (fun a -> not (is_index a)) arrays in
  let pairs =
    List.concat_map
      (fun (a : Spec.arr) ->
        List.map (fun s -> (s, a)) (compatible_whole subs a)
        @ List.filter_map
            (fun (s : Spec.sub) ->
              match s.Spec.skind with
              | `Elem k when a.Spec.nd = 1 && s.Spec.sty = a.Spec.aty -> (
                  match elem_starts a k with [] -> None | _ -> Some (s, a))
              | _ -> None)
            subs)
      arrays
  in
  if pairs = [] then None
  else
    let s, a = Rng.pick rng pairs in
    let actual = gen_exp rng arrays Scalar_ctx ~depth:1 in
    match s.Spec.skind with
    | `Whole _ -> Some (Spec.SCallWhole (s.Spec.sname, a.Spec.an, actual))
    | `Elem k ->
        let at = Rng.pick rng (elem_starts a k) in
        Some (Spec.SCallElem (s.Spec.sname, a.Spec.an, at, actual))

let gen_stmt rng arrays subs : Spec.stmt =
  (* index arrays must keep their fill values: reads (direct or through
     [SInd]) are free, but they are never a loop's write target *)
  let writable = List.filter (fun a -> not (is_index a)) arrays in
  let pick_arr () = Rng.pick rng writable in
  let serial_loop () =
    let w = pick_arr () in
    Spec.SLoop
      { w = w.Spec.an; par = None; rhs = gen_exp rng arrays (Serial_loop w) ~depth:3; red = None }
  in
  match Rng.int rng 100 with
  | n when n < 35 ->
      let w = pick_arr () in
      let red =
        (* the inner kk-loop reads the whole read array on every outer
           iteration, so it must not be the array being written: serial
           iterations would observe earlier writes that parallel ones
           don't.  Only arrays other than [w] are eligible. *)
        if w.Spec.nd = 1 && Rng.chance rng ~pct:30 then
          match
            List.filter (fun (a : Spec.arr) -> a.Spec.an <> w.Spec.an) arrays
          with
          | [] -> None
          | others -> Some (fst acc_scalar, (Rng.pick rng others).Spec.an)
        else None
      in
      let ctx =
        match red with
        | Some (_, ra) -> Reduction (w, List.find (fun a -> a.Spec.an = ra) arrays)
        | None -> Par_loop w
      in
      Spec.SLoop
        {
          w = w.Spec.an;
          par = Some (gen_par rng w ~red:(red <> None));
          rhs = gen_exp rng arrays ctx ~depth:3;
          red;
        }
  | n when n < 50 -> serial_loop ()
  | n when n < 60 ->
      let v, _ = Rng.pick rng scalar_pool in
      Spec.SAssignScal (v, gen_exp rng arrays Scalar_ctx ~depth:2)
  | n when n < 70 ->
      let c =
        Spec.ERel
          ( Rng.pick rng [ Expr.Lt; Expr.Le; Expr.Gt; Expr.Ne ],
            gen_exp rng arrays Scalar_ctx ~depth:1,
            gen_exp rng arrays Scalar_ctx ~depth:1 )
      in
      let branch () =
        if Rng.bool rng then
          [ Spec.SAssignScal (fst (Rng.pick rng scalar_pool), gen_exp rng arrays Scalar_ctx ~depth:2) ]
        else [ serial_loop () ]
      in
      Spec.SIf (c, branch (), if Rng.bool rng then branch () else [])
  | n when n < 80 -> (
      match gen_call rng subs arrays with
      | Some s -> s
      | None -> serial_loop ())
  | n when n < 88 -> (
      (* regular distributed arrays redistribute freely (page migration);
         reshaped arrays relayout through copy-then-install, but only when
         no subroutine could take them as an actual — the §6 argument
         checks key on the original descriptor *)
      let callable (a : Spec.arr) =
        compatible_whole subs a <> []
        || List.exists
             (fun (s : Spec.sub) ->
               match s.Spec.skind with
               | `Elem k ->
                   a.Spec.nd = 1 && s.Spec.sty = a.Spec.aty
                   && elem_starts a k <> []
               | `Whole _ -> false)
             subs
      in
      let targets =
        List.filter
          (fun (a : Spec.arr) ->
            match a.Spec.adist with
            | Some { Spec.reshape = false; _ } -> true
            | Some { Spec.reshape = true; _ } -> not (callable a)
            | None -> false)
          arrays
      in
      match targets with
      | [] -> serial_loop ()
      | _ ->
          let a = Rng.pick rng targets in
          let d = gen_dist rng a.Spec.nd in
          let procs =
            if Rng.chance rng ~pct:30 then Some (Rng.range rng 1 8) else None
          in
          Spec.SRedist (a.Spec.an, d.Spec.kinds, d.Spec.onto, procs))
  | n when n < 93 -> Spec.SBarrier
  | _ -> Spec.SPrintSum (pick_arr ()).Spec.an

(* ------------------------------------------------------------------ *)

let generate ?(size = quick) ~seed () =
  let rng = Rng.create seed in
  let narr = Rng.range rng 1 size.max_arrays in
  let arrays =
    List.init narr (fun ix ->
        let nd = Rng.pick rng [ 1; 1; 1; 2; 2; 3 ] in
        let ext = Rng.range rng 3 size.max_ext in
        let aty = if Rng.chance rng ~pct:65 then Types.Treal else Types.Tint in
        let adist = if Rng.chance rng ~pct:70 then Some (gen_dist rng nd) else None in
        {
          Spec.an = "a" ^ string_of_int ix;
          ap = "n" ^ string_of_int ix;
          aty;
          nd;
          ext;
          adist;
          acommon = None;
        })
  in
  (* sometimes move a prefix of the arrays into a common block *)
  let arrays =
    if Rng.chance rng ~pct:30 then
      List.mapi
        (fun i (a : Spec.arr) ->
          if i < Rng.range rng 1 2 then { a with Spec.acommon = Some "cb0" } else a)
        arrays
    else arrays
  in
  (* optionally add index arrays feeding indirect subscripts ([SInd]).
     Their extent is the maximum over all arrays so ix(i) is in bounds
     under any loop, and extents shrink in lockstep so that stays true;
     their values are in [1,3], in bounds for anything (extents never
     drop below 3).  They may be distributed -- even reshaped -- and
     redistributed, but never written after their fill. *)
  let idx_arrays =
    if Rng.chance rng ~pct:55 then
      let ext =
        List.fold_left (fun m (a : Spec.arr) -> max m a.Spec.ext) 3 arrays
      in
      List.init (Rng.range rng 1 2) (fun i ->
          {
            Spec.an = "ix" ^ string_of_int i;
            ap = "p" ^ string_of_int i;
            aty = Types.Tint;
            nd = 1;
            ext;
            adist =
              (if Rng.chance rng ~pct:60 then Some (gen_dist rng 1) else None);
            acommon = None;
          })
    else []
  in
  let arrays = arrays @ idx_arrays in
  let nsubs = Rng.range rng 0 size.max_subs in
  let subs =
    List.init nsubs (fun i ->
        let target = Rng.pick rng arrays in
        let name = "sub" ^ string_of_int i in
        let elem_ok =
          target.Spec.nd = 1
          &&
          match target.Spec.adist with
          | Some { Spec.reshape = true; kinds = [ K.Cyclic_k _ ]; _ } | None -> true
          | Some { Spec.reshape = false; _ } -> true
          | Some _ -> false
        in
        if elem_ok && Rng.chance rng ~pct:40 then
          let k =
            match target.Spec.adist with
            | Some { Spec.reshape = true; kinds = [ K.Cyclic_k k ]; _ } -> k
            | _ -> Rng.range rng 2 (min 3 target.Spec.ext)
          in
          { Spec.sname = name; sty = target.Spec.aty; skind = `Elem k }
        else { Spec.sname = name; sty = target.Spec.aty; skind = `Whole target.Spec.nd })
  in
  let inits =
    List.map
      (fun (w : Spec.arr) ->
        let rhs =
          if is_index w then
            (* affine fill 1 + mod(c*i + d, 3): values in [1,3] *)
            Spec.EBin
              ( Expr.Add,
                Spec.ILit 1,
                Spec.EIntrin
                  ( "mod",
                    [
                      Spec.EBin
                        ( Expr.Add,
                          Spec.EBin
                            ( Expr.Mul,
                              Spec.ILit (Rng.range rng 1 5),
                              Spec.EVar Spec.nestv.(0) ),
                          Spec.ILit (Rng.range rng 0 2) );
                      Spec.ILit 3;
                    ] ) )
          else gen_exp rng arrays (Serial_loop w) ~depth:2
        in
        Spec.SLoop { w = w.Spec.an; par = None; rhs; red = None })
      (* index arrays are filled first: any later init may already read
         through them, and a pre-fill [SInd] read would be subscript 0 *)
      (idx_arrays @ List.filter (fun a -> not (is_index a)) arrays)
  in
  let nstmts = Rng.range rng 2 size.max_stmts in
  let stmts = List.init nstmts (fun _ -> gen_stmt rng arrays subs) in
  let sums = List.map (fun (a : Spec.arr) -> Spec.SPrintSum a.Spec.an) arrays in
  let has_common = List.exists (fun a -> a.Spec.acommon <> None) arrays in
  {
    Spec.arrays;
    scalars = scalar_pool @ [ acc_scalar ];
    subs;
    body = inits @ stmts @ sums;
    nfiles = Rng.range rng 1 size.max_files;
    common_in_sub = has_common && subs <> [] && Rng.bool rng;
    seed;
  }
