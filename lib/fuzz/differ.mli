(** Four-way differential execution of one candidate program.

    Every candidate is run as:
    + the machine-free reference interpreter ({!Interp});
    + the sequential simulator engine, directly in-process;
    + the same engine legs dispatched through {!Ddsm_util.Jobs.map} — the
      domain-parallel fast path — over several machine configurations
      (processor counts, placement policies, optional fault plans);
    + the domain-sharded event loop ({!Ddsm_exec.Engine.run} with [shards]
      2 and then 4) on the base configuration, which must agree
      bit-for-bit with the sequential base on the final memory image, the
      print transcript, the cycle count and the machine counters (error
      runs compare by structured [Diag] code).

    The in-process base run and its [Jobs]-dispatched duplicate must agree
    bit-for-bit on the final memory image, the print transcript, the cycle
    count and the machine counters.  The other configurations must agree
    with the base on the image and prints (values are
    configuration-independent for the deterministic programs the generator
    emits; cycles of course differ).  The reference interpreter must agree
    on image and prints, and runtime failures must line up status-for-status
    ([Diag] user error iff interpreter user error).

    With [fault] enabled, variant legs carry {!Ddsm_check.Fault.random}
    performance-only plans (values must not change), and every fourth case
    additionally runs a chaos leg with a lost-wakeup plan where the only
    requirement is a structured [Diag] — never an uncaught exception.  With
    [race] enabled, the base leg runs under the happens-before sanitizer
    ({!Ddsm_sanitize.Sanitize}) and must come back clean. *)

type options = {
  fault : bool;
  race : bool;
  jobs : int;  (** domains for the [Jobs] fast-path leg *)
  shard_legs : int list;
      (** shard counts for the domain-sharded legs ([[]] disables them) *)
  max_cycles : int;  (** per-leg simulated-cycle budget *)
  step_budget : int;  (** reference-interpreter statement budget *)
  case_seed : int;  (** seeds the fault plans; echo of the generator seed *)
}

val default : seed:int -> options
(** [fault:false race:false jobs:2 shard_legs:[2;4] max_cycles:60M
    steps:2M]. *)

type verdict =
  | Pass
  | Timeout
      (** a budget tripped somewhere (interpreter steps, engine cycles,
          watchdog); the case is inconclusive and not counted as a failure *)
  | Reject of string
      (** the frontend/sema/linker refused the program, or the reference
          interpreter cannot model it ([F_unsupported]) *)
  | Fail of string
      (** consistent user-level runtime failure in every way of running the
          program (the argument is the [Diag] code) — not a divergence *)
  | Diverged of { kind : string; detail : string }
      (** [kind] is the triage bucket: ["fastpath"], ["sharded:<n>"],
          ["variant"], ["values"], ["prints"], ["status"],
          ["engine-internal"], ["race"], ["exn"] *)

val kind_of : verdict -> string
(** Stable tag: ["ok" | "timeout" | "reject" | "fail" | "diverged:<kind>"]. *)

val is_failure : verdict -> bool
(** [Reject]/[Fail]/[Diverged] — what a fuzzing campaign reports.  (Timeouts
    are inconclusive; [Fail] and [Reject] still count because generated
    programs are legal and error-free by construction.) *)

val run : options -> (string * string) list -> verdict
(** Run one candidate given as [(filename, source)] pairs. *)
