type entry = {
  bucket : string;
  hash : string;
  seed : int;
  detail : string;
  source : string;
  count : int;
}

type t = { mutable entries : entry list; mutable total : int }

let create () = { entries = []; total = 0 }

let key ~bucket ~hash = bucket ^ "#" ^ hash

let note t ~bucket ~seed ~detail ~source =
  t.total <- t.total + 1;
  let hash = Digest.to_hex (Digest.string source) in
  let k = key ~bucket ~hash in
  match
    List.find_opt (fun e -> key ~bucket:e.bucket ~hash:e.hash = k) t.entries
  with
  | Some e ->
      t.entries <-
        List.map
          (fun e' -> if e' == e then { e' with count = e'.count + 1 } else e')
          t.entries;
      false
  | None ->
      t.entries <-
        t.entries @ [ { bucket; hash; seed; detail; source; count = 1 } ];
      true

let entries t = t.entries
let total t = t.total
