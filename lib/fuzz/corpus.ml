type case = { path : string; seed : int; expect : string; source : string }

let sanitize_name s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '-')
    s

let write_case ~dir ~seed ~bucket ~expect ~source =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path =
    Filename.concat dir
      (Printf.sprintf "case-%d-%s.pf" seed (sanitize_name bucket))
  in
  let oc = open_out path in
  Printf.fprintf oc "c pflfuzz corpus: seed=%d bucket=%s\n" seed bucket;
  Printf.fprintf oc "c expect: %s\n" expect;
  output_string oc source;
  close_out oc;
  path

let header_re line prefix =
  if String.length line >= String.length prefix
     && String.sub line 0 (String.length prefix) = prefix
  then Some (String.trim (String.sub line (String.length prefix)
                            (String.length line - String.length prefix)))
  else None

let parse_case ~path source =
  let seed = ref 0 and expect = ref "ok" in
  List.iter
    (fun line ->
      (match header_re line "c pflfuzz corpus:" with
      | Some rest ->
          List.iter
            (fun tok ->
              match String.split_on_char '=' tok with
              | [ "seed"; n ] -> (try seed := int_of_string n with _ -> ())
              | _ -> ())
            (String.split_on_char ' ' rest)
      | None -> ());
      match header_re line "c expect:" with
      | Some e when e <> "" -> expect := e
      | _ -> ())
    (String.split_on_char '\n' source);
  { path; seed = !seed; expect = !expect; source }

let load ~dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".pf")
    |> List.sort compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           let ic = open_in_bin path in
           let n = in_channel_length ic in
           let source = really_input_string ic n in
           close_in ic;
           parse_case ~path source)

let replay opts (c : case) =
  let verdict = Differ.run opts [ (Filename.basename c.path, c.source) ] in
  let kind = Differ.kind_of verdict in
  let matches =
    String.length kind >= String.length c.expect
    && String.sub kind 0 (String.length c.expect) = c.expect
  in
  if matches then Ok ()
  else
    Error
      (Printf.sprintf "%s: expected verdict '%s', got '%s'%s"
         (Filename.basename c.path) c.expect kind
         (match verdict with
         | Differ.Diverged { detail; _ } -> " (" ^ detail ^ ")"
         | Differ.Reject m | Differ.Fail m -> " (" ^ m ^ ")"
         | _ -> ""))
