open Ddsm_ir
open Spec
module K = Ddsm_dist.Kind

(* ------------------------------------------------------------------ *)
(* Traversals *)

let rec map_exp f e =
  match e with
  | ILit _ | RLit _ | EVar _ -> f e
  | ERead _ -> f e
  | EBin (op, a, b) -> f (EBin (op, map_exp f a, map_exp f b))
  | ERel (op, a, b) -> f (ERel (op, map_exp f a, map_exp f b))
  | ENeg a -> f (ENeg (map_exp f a))
  | EIntrin (n, args) -> f (EIntrin (n, List.map (map_exp f) args))

let rec stmt_arrays st =
  match st with
  | SAssignScal (_, e) -> exp_arrays e
  | SLoop { w; rhs; red; _ } ->
      (w :: exp_arrays rhs)
      @ (match red with Some (_, ra) -> [ ra ] | None -> [])
  | SIf (c, th, el) ->
      exp_arrays c
      @ List.concat_map stmt_arrays th
      @ List.concat_map stmt_arrays el
  | SCallWhole (_, a, e) | SCallElem (_, a, _, e) -> a :: exp_arrays e
  | SRedist (a, _, _, _) -> [ a ]
  | SBarrier -> []
  | SPrintSum a -> [ a ]

let rec stmt_calls st =
  match st with
  | SCallWhole (s, _, _) | SCallElem (s, _, _, _) -> [ s ]
  | SIf (_, th, el) ->
      List.concat_map stmt_calls th @ List.concat_map stmt_calls el
  | _ -> []

(* indirect subscripts in an expression: each one drags in an index
   array, its fill and (in the engine) a gather schedule, so they carry
   weight and the shrinker offers a direct-subscript replacement *)
let rec exp_sinds e =
  match e with
  | ILit _ | RLit _ | EVar _ -> 0
  | ERead (_, subs) ->
      List.length (List.filter (function SInd _ -> true | _ -> false) subs)
  | EBin (_, a, b) | ERel (_, a, b) -> exp_sinds a + exp_sinds b
  | ENeg a -> exp_sinds a
  | EIntrin (_, args) -> List.fold_left (fun n a -> n + exp_sinds a) 0 args

let rec stmt_weight st =
  match st with
  | SIf (_, th, el) ->
      1
      + List.fold_left (fun a s -> a + stmt_weight s) 0 th
      + List.fold_left (fun a s -> a + stmt_weight s) 0 el
  | SLoop { par; red; rhs; _ } ->
      2 + exp_sinds rhs
      + (match par with
        | None -> 0
        | Some p ->
            1
            + (if p.p_nest then 1 else 0)
            + (if p.p_aff then 1 else 0)
            + (if p.p_barrier then 1 else 0)
            + (match p.p_onto with Some _ -> 1 | None -> 0)
            + (match p.p_sched with Stmt.Simple -> 0 | _ -> 1))
      + (match red with Some _ -> 1 | None -> 0)
  | _ -> 1

let dist_weight = function
  | None -> 0
  | Some d ->
      1
      + (if d.reshape then 1 else 0)
      + (match d.onto with Some _ -> 1 | None -> 0)
      + List.length (List.filter (fun k -> k <> K.Block) d.kinds)

let weight t =
  List.fold_left (fun a s -> a + stmt_weight s) 0 t.body
  + List.fold_left (fun a ar -> a + ar.ext + dist_weight ar.adist) 0 t.arrays
  + (3 * List.length t.subs)
  + (2 * List.length t.arrays)
  + t.nfiles
  + if t.common_in_sub then 1 else 0

(* ------------------------------------------------------------------ *)
(* Rebuilding helpers: every candidate must stay well-formed *)

(* clamp constant subscripts and element-call windows after extents shrank *)
let reclamp t =
  let ext_of a =
    match List.find_opt (fun ar -> ar.an = a) t.arrays with
    | Some ar -> ar.ext
    | None -> 3
  in
  let clamp_exp e =
    map_exp
      (function
        | ERead (a, subs) ->
            let m = ext_of a in
            ERead
              ( a,
                List.map
                  (function
                    | SConst c -> SConst (max 1 (min c m))
                    | s -> s)
                  subs )
        | e -> e)
      e
  in
  let rec clamp_stmt st =
    match st with
    | SAssignScal (v, e) -> Some (SAssignScal (v, clamp_exp e))
    | SLoop l -> Some (SLoop { l with rhs = clamp_exp l.rhs })
    | SIf (c, th, el) ->
        Some
          (SIf
             ( clamp_exp c,
               List.filter_map clamp_stmt th,
               List.filter_map clamp_stmt el ))
    | SCallElem (s, a, at, e) -> (
        let m = ext_of a in
        match List.find_opt (fun su -> su.sname = s) t.subs with
        | Some { skind = `Elem k; _ } ->
            if k > m then None
            else
              Some
                (SCallElem (s, a, (if at + k - 1 <= m then at else 1),
                            clamp_exp e))
        | _ -> Some (SCallElem (s, a, 1, clamp_exp e)))
    | SCallWhole (s, a, e) -> Some (SCallWhole (s, a, clamp_exp e))
    | SRedist _ | SBarrier | SPrintSum _ -> Some st
  in
  { t with body = List.filter_map clamp_stmt t.body }

let drop_nth xs n = List.filteri (fun i _ -> i <> n) xs

(* replace indirect subscripts with a constant: always in bounds, and
   usually enough to show whether the bug needed the gather machinery *)
let unind rhs =
  map_exp
    (function
      | ERead (a, subs) ->
          ERead (a, List.map (function SInd _ -> SConst 1 | s -> s) subs)
      | e -> e)
    rhs

(* a reduction's rhs reads through the inner loop variable; when the
   reduction is dropped, re-anchor those subscripts *)
let unred rhs =
  map_exp
    (function
      | ERead (a, subs) ->
          ERead
            ( a,
              List.map (function SIn _ -> SConst 1 | s -> s) subs )
      | e -> e)
    rhs

(* ------------------------------------------------------------------ *)
(* Candidate generation, in decreasing order of expected payoff *)

let candidates t =
  let out = ref [] in
  let add c = out := c :: !out in
  (* shrink loop structure: serialise, drop clauses, drop reductions *)
  List.iteri
    (fun i st ->
      match st with
      | SLoop l ->
          let set st' = { t with body = List.mapi (fun j s -> if j = i then st' else s) t.body } in
          (match l.red with
          | Some _ -> add (set (SLoop { l with red = None; rhs = unred l.rhs }))
          | None -> ());
          if exp_sinds l.rhs > 0 then
            add (set (SLoop { l with rhs = unind l.rhs }));
          (match l.par with
          | Some p ->
              add (set (SLoop { l with par = None }));
              if p.p_barrier then
                add (set (SLoop { l with par = Some { p with p_barrier = false } }));
              if p.p_aff then
                add (set (SLoop { l with par = Some { p with p_aff = false } }));
              if p.p_onto <> None then
                add (set (SLoop { l with par = Some { p with p_onto = None } }));
              if p.p_sched <> Stmt.Simple then
                add (set (SLoop { l with par = Some { p with p_sched = Stmt.Simple } }));
              if p.p_nest then
                add (set (SLoop { l with par = Some { p with p_nest = false } }))
          | None -> ())
      | SIf (_, th, el) ->
          let splice ss =
            { t with body = List.concat (List.mapi (fun j s -> if j = i then ss else [ s ]) t.body) }
          in
          add (splice th);
          if el <> [] then add (splice el)
      | _ -> ())
    t.body;
  (* halve every extent together (order between arrays is preserved, so
     cross-array reads stay in bounds) *)
  if List.exists (fun a -> a.ext > 3) t.arrays then
    add
      (reclamp
         { t with arrays = List.map (fun a -> { a with ext = max 3 (a.ext / 2) }) t.arrays });
  (* simplify distributions *)
  List.iteri
    (fun i a ->
      let set a' = { t with arrays = List.mapi (fun j x -> if j = i then a' else x) t.arrays } in
      match a.adist with
      | Some d ->
          if d.reshape then add (set { a with adist = Some { d with reshape = false } });
          if d.onto <> None then add (set { a with adist = Some { d with onto = None } });
          if List.exists (fun k -> k <> K.Block) d.kinds then
            add (set { a with adist = Some { d with kinds = List.map (fun _ -> K.Block) d.kinds } });
          (* dropping the distribution invalidates redistributes of it *)
          let t' = set { a with adist = None } in
          add
            {
              t' with
              body =
                List.filter
                  (function SRedist (x, _, _, _) -> x <> a.an | _ -> true)
                  t'.body;
            }
      | None -> ())
    t.arrays;
  (* drop whole statements (latest first: inits come first and are
     load-bearing for everything after them) *)
  if List.length t.body > 1 then
    for i = List.length t.body - 1 downto 0 do
      add { t with body = drop_nth t.body i }
    done;
  (* drop a subroutine and its call sites *)
  List.iteri
    (fun i s ->
      add
        {
          t with
          subs = drop_nth t.subs i;
          body =
            List.filter
              (fun st -> not (List.mem s.sname (stmt_calls st)))
              t.body;
        })
    t.subs;
  (* drop an array and everything touching it *)
  if List.length t.arrays > 1 then
    List.iteri
      (fun i a ->
        add
          {
            t with
            arrays = drop_nth t.arrays i;
            body =
              List.filter
                (fun st -> not (List.mem a.an (stmt_arrays st)))
                t.body;
          })
      t.arrays;
  (* structural simplifications *)
  if t.common_in_sub then add { t with common_in_sub = false };
  if t.nfiles > 1 then add { t with nfiles = 1 };
  if List.exists (fun a -> a.acommon <> None) t.arrays then
    add
      {
        t with
        arrays = List.map (fun a -> { a with acommon = None }) t.arrays;
        common_in_sub = false;
      };
  List.rev !out

let minimize ?(max_attempts = 300) ~still_fails t0 =
  let attempts = ref 0 in
  let rec go t =
    let rec try_ = function
      | [] -> t
      | c :: rest ->
          if !attempts >= max_attempts then t
          else if weight c < weight t then begin
            incr attempts;
            if still_fails c then go c else try_ rest
          end
          else try_ rest
    in
    try_ (candidates t)
  in
  go t0
