(** Failure triage: deduplicate campaign failures into root-cause buckets.

    A bucket is the pair of the verdict's stable kind tag (the [Diag] code
    for consistent runtime failures, the divergence kind otherwise) and the
    digest of the {e minimized} program text — two seeds whose minimized
    reproducers coincide are one root cause and are reported once. *)

type entry = {
  bucket : string;  (** verdict kind tag, e.g. ["diverged:values"] *)
  hash : string;  (** hex digest of the minimized source *)
  seed : int;  (** first seed that hit this bucket *)
  detail : string;
  source : string;  (** minimized single-file reproducer *)
  count : int;  (** how many seeds landed in this bucket *)
}

type t

val create : unit -> t

val note :
  t -> bucket:string -> seed:int -> detail:string -> source:string -> bool
(** Record one failure; [true] iff this is a new root cause (first seed in
    its bucket). *)

val entries : t -> entry list
(** All root causes, in first-seen order. *)

val total : t -> int
(** Total failures recorded (including duplicates). *)
