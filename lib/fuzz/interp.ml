open Ddsm_ir
module Sema = Ddsm_sema.Sema
module Intrinsics = Ddsm_sema.Intrinsics
module K = Ddsm_dist.Kind
module Rt = Ddsm_runtime.Rt

type failure = F_timeout | F_user of string | F_unsupported of string

type image = { arrays : (string * int64 array) list; prints : string list }

exception Timeout
exception Uerror of string
exception Unsup of string
exception Return_local

let uerror fmt = Printf.ksprintf (fun m -> raise (Uerror m)) fmt
let unsup fmt = Printf.ksprintf (fun m -> raise (Unsup m)) fmt

(* Two storage planes per array, like the simulated heap: integer and real
   values live side by side and a type-punned access reads the other
   plane's zeros rather than reinterpreting bits. *)
type store = { si : int array; sf : float array }

(* Reshape pedigree of a view, for mirroring the §6 argument checks. *)
type rinfo = { r_ext : int array; r_kind0 : K.t }

type view = {
  vstore : store;
  vbase : int;  (* zero-based word offset of element (lowers) *)
  vlow : int array;
  vext : int array;
  vstr : int array;
  vresh : rinfo option;
}

type value = VI of int | VF of float

type decl_rec = {
  d_ty : Types.ty;
  d_low : int array;
  d_ext : int array;
  d_store : store;
}

type glob = {
  routines : (string * Sema.env) list;
  stores : (string, decl_rec) Hashtbl.t;
  prints : string list ref;
  budget : int;
  mutable steps : int;
}

type frame = {
  env : Sema.env;
  rname : string;
  mutable scalars : (string, value) Hashtbl.t;
  views : (string, view) Hashtbl.t;
}

let step g =
  g.steps <- g.steps + 1;
  if g.steps > g.budget then raise Timeout

(* ------------------------------------------------------------------ *)
(* Typing: mirrors Compilec.ety with the scalar table playing the role of
   the slot table (a scalar's type is fixed by its first materialisation) *)

let promote a b =
  if a = Types.Treal || b = Types.Treal then Types.Treal else Types.Tint

let sema_scalar_ty fr x =
  match Sema.find_sym fr.env x with
  | Some (Sema.SScalar (ty, _)) -> Some ty
  | Some (Sema.SConst (Expr.Int _)) -> Some Types.Tint
  | Some (Sema.SConst _) -> Some Types.Treal
  | _ -> None

let array_elem_ty fr a =
  match Sema.find_array fr.env a with
  | Some ai -> ai.Sema.ai_ty
  | None -> Types.Treal

let rec ety fr (e : Expr.t) : Types.ty =
  match e with
  | Expr.Int _ -> Types.Tint
  | Expr.Real _ | Expr.Str _ -> Types.Treal
  | Expr.Var x -> (
      match Hashtbl.find_opt fr.scalars x with
      | Some (VI _) -> Types.Tint
      | Some (VF _) -> Types.Treal
      | None -> (
          match sema_scalar_ty fr x with
          | Some ty -> ty
          | None -> (
              match Sema.find_sym fr.env x with
              | Some (Sema.SArray ai) -> ai.Sema.ai_ty
              | _ -> Types.Tint)))
  | Expr.Ref (a, _) -> array_elem_ty fr a
  | Expr.Bin (_, a, b) -> promote (ety fr a) (ety fr b)
  | Expr.Rel _ | Expr.Log _ | Expr.Not _ -> Types.Tint
  | Expr.Neg a -> ety fr a
  | Expr.Intrin (n, args) -> (
      match Intrinsics.lookup n with
      | Some { Intrinsics.result = `Int; _ } -> Types.Tint
      | Some { Intrinsics.result = `Real; _ } -> Types.Treal
      | Some { Intrinsics.result = `Same; _ } ->
          List.fold_left (fun acc a -> promote acc (ety fr a)) Types.Tint args
      | None -> Types.Tint)
  | Expr.Idiv _ | Expr.Imod _ | Expr.Meta _ | Expr.BaseOf _
  | Expr.GatherBase _ ->
      Types.Tint
  | Expr.AbsLoad (ty, _) -> ty

(* scalar access; creation type defaults mirror Compilec.slot_for *)
let vget fr x ~ty =
  match Hashtbl.find_opt fr.scalars x with
  | Some v -> v
  | None ->
      let ty = match sema_scalar_ty fr x with Some t -> t | None -> ty in
      let v = match ty with Types.Tint -> VI 0 | Types.Treal -> VF 0.0 in
      Hashtbl.replace fr.scalars x v;
      v

let view_of fr a =
  match Hashtbl.find_opt fr.views a with
  | Some v -> v
  | None -> uerror "array %s has no storage in routine %s" a fr.rname

(* zero-based word offset of A(subs); always bounds-checked, matching
   [bounds:true] plain views and the reshaped-address oracle *)
let elem_offset a (v : view) subs_vals =
  let off = ref v.vbase in
  List.iteri
    (fun i s ->
      let x = s - v.vlow.(i) in
      if x < 0 || x >= v.vext.(i) then
        uerror "array %s: subscript %d out of bounds in dim %d" a s (i + 1);
      off := !off + (x * v.vstr.(i)))
    subs_vals;
  !off

(* ------------------------------------------------------------------ *)
(* Expression evaluation: mirrors Compilec.compile_i / compile_f *)

let rec eval_i g fr (e : Expr.t) : int =
  if ety fr e = Types.Treal then int_of_float (eval_f g fr e)
  else
    match e with
    | Expr.Int n -> n
    | Expr.Var x -> (
        match vget fr x ~ty:Types.Tint with
        | VI n -> n
        | VF x -> int_of_float x)
    | Expr.Neg a -> -eval_i g fr a
    | Expr.Bin (op, a, b) -> (
        match op with
        | Expr.Add -> eval_i g fr a + eval_i g fr b
        | Expr.Sub -> eval_i g fr a - eval_i g fr b
        | Expr.Mul -> eval_i g fr a * eval_i g fr b
        | Expr.Div ->
            let n = eval_i g fr a and d = eval_i g fr b in
            if d = 0 then uerror "integer division by zero";
            n / d
        | Expr.Pow ->
            let base = eval_i g fr a and ex = eval_i g fr b in
            if ex < 0 then uerror "negative integer exponent";
            let rec pw acc n = if n = 0 then acc else pw (acc * base) (n - 1) in
            pw 1 ex)
    | Expr.Rel (op, a, b) ->
        let c =
          if ety fr a = Types.Treal || ety fr b = Types.Treal then
            let x = eval_f g fr a and y = eval_f g fr b in
            match op with
            | Expr.Lt -> x < y
            | Expr.Le -> x <= y
            | Expr.Gt -> x > y
            | Expr.Ge -> x >= y
            | Expr.Eq -> x = y
            | Expr.Ne -> x <> y
          else
            let x = eval_i g fr a and y = eval_i g fr b in
            match op with
            | Expr.Lt -> x < y
            | Expr.Le -> x <= y
            | Expr.Gt -> x > y
            | Expr.Ge -> x >= y
            | Expr.Eq -> x = y
            | Expr.Ne -> x <> y
        in
        if c then 1 else 0
    | Expr.Log (op, a, b) -> (
        match op with
        | Expr.And ->
            if eval_i g fr a <> 0 && eval_i g fr b <> 0 then 1 else 0
        | Expr.Or -> if eval_i g fr a <> 0 || eval_i g fr b <> 0 then 1 else 0)
    | Expr.Not a -> if eval_i g fr a = 0 then 1 else 0
    | Expr.Ref (a, subs) -> (
        let v = view_of fr a in
        let vals = List.map (eval_i g fr) subs in
        let off = elem_offset a v vals in
        match array_elem_ty fr a with
        | Types.Tint -> v.vstore.si.(off)
        | Types.Treal -> assert false (* Treal fast path above *))
    | Expr.Intrin (nm, args) -> intrin_i g fr nm args
    | Expr.Idiv _ | Expr.Imod _ | Expr.Meta _ | Expr.BaseOf _
    | Expr.AbsLoad _ | Expr.GatherBase _ ->
        unsup "compiler-internal expression form in reference interpreter"
    | Expr.Real _ | Expr.Str _ -> assert false

and eval_f g fr (e : Expr.t) : float =
  match e with
  | Expr.Real x -> x
  | Expr.Var x when ety fr e = Types.Treal -> (
      match vget fr x ~ty:Types.Treal with
      | VF x -> x
      | VI n -> float_of_int n)
  | Expr.Neg a when ety fr e = Types.Treal -> -.eval_f g fr a
  | Expr.Bin (op, a, b) when ety fr e = Types.Treal -> (
      match op with
      | Expr.Add -> eval_f g fr a +. eval_f g fr b
      | Expr.Sub -> eval_f g fr a -. eval_f g fr b
      | Expr.Mul -> eval_f g fr a *. eval_f g fr b
      | Expr.Div -> eval_f g fr a /. eval_f g fr b
      | Expr.Pow -> Float.pow (eval_f g fr a) (eval_f g fr b))
  | Expr.Ref (a, subs) when array_elem_ty fr a = Types.Treal ->
      let v = view_of fr a in
      let vals = List.map (eval_i g fr) subs in
      let off = elem_offset a v vals in
      v.vstore.sf.(off)
  | Expr.Intrin (nm, args) when ety fr e = Types.Treal -> intrin_f g fr nm args
  | Expr.Str _ -> unsup "string literal outside a print statement"
  | e -> float_of_int (eval_i g fr e)

and intrin_i g fr nm args : int =
  match nm with
  | "mod" -> (
      match args with
      | [ a; b ] ->
          let d = eval_i g fr b in
          if d = 0 then uerror "mod by zero";
          eval_i g fr a mod d
      | _ -> uerror "mod arity")
  | "min" ->
      List.fold_left (fun acc a -> min acc (eval_i g fr a)) max_int args
  | "max" ->
      List.fold_left (fun acc a -> max acc (eval_i g fr a)) min_int args
  | "abs" -> (
      match args with
      | [ a ] -> abs (eval_i g fr a)
      | _ -> uerror "abs arity")
  | "int" | "nint" -> (
      match args with
      | [ a ] ->
          let x = eval_f g fr a in
          if nm = "int" then int_of_float x else int_of_float (Float.round x)
      | _ -> uerror "%s arity" nm)
  | nm when String.length nm > 4 && String.sub nm 0 4 = "dsm_" ->
      unsup "machine-dependent intrinsic %s" nm
  | _ -> uerror "unknown integer intrinsic %s" nm

and intrin_f g fr nm args : float =
  let unary op =
    match args with
    | [ a ] -> op (eval_f g fr a)
    | _ -> uerror "%s arity" nm
  in
  match nm with
  | "sqrt" -> unary sqrt
  | "exp" -> unary exp
  | "log" -> unary log
  | "sin" -> unary sin
  | "cos" -> unary cos
  | "abs" -> unary Float.abs
  | "dble" | "float" -> unary Fun.id
  | "mod" -> (
      match args with
      | [ a; b ] -> Float.rem (eval_f g fr a) (eval_f g fr b)
      | _ -> uerror "mod arity")
  | "min" ->
      List.fold_left (fun acc a -> Float.min acc (eval_f g fr a)) infinity args
  | "max" ->
      List.fold_left
        (fun acc a -> Float.max acc (eval_f g fr a))
        neg_infinity args
  | _ -> float_of_int (intrin_i g fr nm args)

(* ------------------------------------------------------------------ *)
(* Static storage: every non-formal array of every routine, commons
   deduplicated by qualified name with shape-consistency checks — the same
   walk Engine.elaborate makes *)

let qualified (env : Sema.env) name =
  match Sema.find_array env name with
  | Some { Sema.ai_common = Some blk; _ } -> Printf.sprintf "/%s/%s" blk name
  | _ -> Printf.sprintf "%s/%s" env.Sema.routine.Decl.rname name

let elaborate g =
  List.iter
    (fun (_, env) ->
      Hashtbl.iter
        (fun name sym ->
          match sym with
          | Sema.SArray ai when not ai.Sema.ai_formal -> (
              if ai.Sema.ai_equiv_base <> None then
                unsup "equivalenced array %s" name;
              let qname = qualified env name in
              let lowers, extents =
                match ai.Sema.ai_const_shape with
                | Some s -> s
                | None -> uerror "array %s: non-constant shape" name
              in
              match Hashtbl.find_opt g.stores qname with
              | Some d ->
                  if d.d_low <> lowers || d.d_ext <> extents then
                    uerror
                      "common array %s declared with different shapes in \
                       different routines"
                      name
              | None ->
                  let n = max 1 (Array.fold_left ( * ) 1 extents) in
                  Hashtbl.replace g.stores qname
                    {
                      d_ty = ai.Sema.ai_ty;
                      d_low = lowers;
                      d_ext = extents;
                      d_store =
                        { si = Array.make n 0; sf = Array.make n 0.0 };
                    })
          | _ -> ())
        env.Sema.syms)
    g.routines

let column_major_strides extents =
  let st = Array.make (Array.length extents) 1 in
  for i = 1 to Array.length extents - 1 do
    st.(i) <- st.(i - 1) * extents.(i - 1)
  done;
  st

let make_frame g (env : Sema.env) =
  let fr =
    {
      env;
      rname = env.Sema.routine.Decl.rname;
      scalars = Hashtbl.create 16;
      views = Hashtbl.create 8;
    }
  in
  Hashtbl.iter
    (fun name sym ->
      match sym with
      | Sema.SScalar (ty, _) ->
          Hashtbl.replace fr.scalars name
            (match ty with Types.Tint -> VI 0 | Types.Treal -> VF 0.0)
      | Sema.SArray ai when not ai.Sema.ai_formal ->
          let qname = qualified env name in
          let d =
            match Hashtbl.find_opt g.stores qname with
            | Some d -> d
            | None -> uerror "array %s not elaborated" qname
          in
          let vresh =
            match ai.Sema.ai_dist with
            | Some { Decl.dreshape = true; dkinds = k0 :: _; _ } ->
                Some { r_ext = d.d_ext; r_kind0 = k0 }
            | _ -> None
          in
          Hashtbl.replace fr.views name
            {
              vstore = d.d_store;
              vbase = 0;
              vlow = d.d_low;
              vext = d.d_ext;
              vstr = column_major_strides d.d_ext;
              vresh;
            }
      | _ -> ())
    env.Sema.syms;
  fr

(* ------------------------------------------------------------------ *)
(* Argument checks (§6 mirror).  The portion run of an element argument
   depends on the machine's processor grid, so the interpreter only
   accepts windows whose fit is configuration-independent: within one
   cyclic(k) chunk, within an undistributed dimension's remainder, or the
   single element itself.  Anything else is configuration-dependent
   behaviour and the case is reported unsupported. *)

let guaranteed_run (ri : rinfo) lin =
  let total = Array.fold_left ( * ) 1 ri.r_ext in
  if Array.length ri.r_ext <> 1 then 1
  else
    match ri.r_kind0 with
    | K.Star -> total - lin
    | K.Block | K.Cyclic -> 1
    | K.Cyclic_k k -> min (k - (lin mod k)) (total - lin)

(* ------------------------------------------------------------------ *)
(* Statements *)

type aarg =
  | Ai of int
  | Af of float
  | Awhole of view
  | Aelem of store * int * rinfo option

let rec exec_body g fr body = List.iter (exec_stmt g fr) body

and exec_stmt g fr (t : Stmt.t) =
  step g;
  match t.Stmt.s with
  | Stmt.Assign (Stmt.LVar x, e) -> (
      let ty =
        match Hashtbl.find_opt fr.scalars x with
        | Some (VI _) -> Types.Tint
        | Some (VF _) -> Types.Treal
        | None -> (
            match sema_scalar_ty fr x with Some t -> t | None -> ety fr e)
      in
      match ty with
      | Types.Tint -> Hashtbl.replace fr.scalars x (VI (eval_i g fr e))
      | Types.Treal -> Hashtbl.replace fr.scalars x (VF (eval_f g fr e)))
  | Stmt.Assign (Stmt.LRef (a, subs), e) -> (
      let v = view_of fr a in
      match array_elem_ty fr a with
      | Types.Treal ->
          let x = eval_f g fr e in
          let vals = List.map (eval_i g fr) subs in
          v.vstore.sf.(elem_offset a v vals) <- x
      | Types.Tint ->
          (* mirror the engine: a real value stored into an integer
             element is checked (NaN and out-of-range are runtime
             errors); scalar coercions elsewhere stay silent *)
          let x =
            if ety fr e = Types.Treal then
              let r = eval_f g fr e in
              match Rt.int_of_real r with
              | Some i -> i
              | None ->
                  uerror
                    "array %s: cannot store %g into an integer element (%s)" a
                    r
                    (if Float.is_nan r then "NaN" else "out of integer range")
            else eval_i g fr e
          in
          let vals = List.map (eval_i g fr) subs in
          v.vstore.si.(elem_offset a v vals) <- x)
  | Stmt.Do d -> exec_do g fr d
  | Stmt.If (cond, th, el) ->
      if eval_i g fr cond <> 0 then exec_body g fr th else exec_body g fr el
  | Stmt.Call (name, args) -> call g fr name args
  | Stmt.Doacross da ->
      (* serial-equivalent execution: the engine forks per-processor
         workers over private scalar frames and joins, so array effects
         land and the parent's scalars are untouched *)
      let saved = Hashtbl.copy fr.scalars in
      exec_do g fr da.Stmt.loop;
      fr.scalars <- saved
  | Stmt.Redistribute rd -> (
      match Sema.find_array fr.env rd.Stmt.rarray with
      | Some { Sema.ai_dist = Some _; _ } ->
          (* regular arrays migrate pages, reshaped arrays relayout via
             copy-then-install: either way no element value changes *)
          ()
      | _ -> uerror "cannot redistribute undistributed array %s" rd.Stmt.rarray
      )
  | Stmt.Continue -> ()
  | Stmt.Barrier -> ()
  | Stmt.Return -> raise Return_local
  | Stmt.Print items ->
      let parts =
        List.map
          (fun e ->
            match e with
            | Expr.Str s -> s
            | _ -> (
                match ety fr e with
                | Types.Tint -> string_of_int (eval_i g fr e)
                | Types.Treal -> Printf.sprintf "%.10g" (eval_f g fr e)))
          items
      in
      g.prints := String.concat " " parts :: !(g.prints)
  | Stmt.AbsStore _ | Stmt.Par _ | Stmt.Gather _ ->
      unsup "compiler-internal statement form in reference interpreter"

and exec_do g fr (d : Stmt.do_) =
  let lo = eval_i g fr d.Stmt.lo and hi = eval_i g fr d.Stmt.hi in
  let stp =
    match d.Stmt.step with None -> 1 | Some s -> eval_i g fr s
  in
  if stp = 0 then uerror "do %s: zero step" d.Stmt.var;
  let v = ref lo in
  let continue_ () = if stp > 0 then !v <= hi else !v >= hi in
  (match vget fr d.Stmt.var ~ty:Types.Tint with
  | VF _ -> uerror "loop variable %s is not an integer" d.Stmt.var
  | VI _ -> ());
  Hashtbl.replace fr.scalars d.Stmt.var (VI lo);
  while continue_ () do
    step g;
    Hashtbl.replace fr.scalars d.Stmt.var (VI !v);
    exec_body g fr d.Stmt.body;
    (* the loop variable may have been reassigned inside the body; like
       the VM we step the stored value, not the cached one *)
    (match Hashtbl.find fr.scalars d.Stmt.var with
    | VI cur -> v := cur + stp
    | VF _ -> uerror "loop variable %s is not an integer" d.Stmt.var);
    Hashtbl.replace fr.scalars d.Stmt.var (VI !v)
  done

and call g fr name args =
  match List.assoc_opt name g.routines with
  | None -> uerror "call to undefined subroutine %s" name
  | Some cenv ->
      let formals = cenv.Sema.routine.Decl.rparams in
      if List.length formals <> List.length args then
        uerror "call %s: %d arguments for %d formals" name (List.length args)
          (List.length formals);
      (* evaluate actuals in the caller's frame *)
      let argv =
        List.map2
          (fun formal actual ->
            match Sema.find_sym cenv formal with
            | Some (Sema.SArray _) -> (
                match actual with
                | Expr.Var a -> Awhole (view_of fr a)
                | Expr.Ref (a, subs) ->
                    let v = view_of fr a in
                    let vals = List.map (eval_i g fr) subs in
                    Aelem (v.vstore, elem_offset a v vals, v.vresh)
                | _ ->
                    uerror
                      "array argument must be an array name or an array \
                       element")
            | Some (Sema.SScalar (ty, _)) -> (
                match ty with
                | Types.Tint -> Ai (eval_i g fr actual)
                | Types.Treal -> Af (eval_f g fr actual))
            | _ ->
                uerror "call %s: formal %s is not declared in the callee" name
                  formal)
          formals args
      in
      let cfr = make_frame g cenv in
      (* bind scalars first: adjustable array dimensions read them *)
      List.iter2
        (fun formal arg ->
          match (Sema.find_sym cenv formal, arg) with
          | Some (Sema.SScalar (Types.Tint, _)), Ai v ->
              Hashtbl.replace cfr.scalars formal (VI v)
          | Some (Sema.SScalar (Types.Tint, _)), Af v ->
              Hashtbl.replace cfr.scalars formal (VI (int_of_float v))
          | Some (Sema.SScalar (Types.Treal, _)), Af v ->
              Hashtbl.replace cfr.scalars formal (VF v)
          | Some (Sema.SScalar (Types.Treal, _)), Ai v ->
              Hashtbl.replace cfr.scalars formal (VF (float_of_int v))
          | Some (Sema.SScalar _), _ ->
              uerror "%s: argument %s: scalar expected" name formal
          | _ -> ())
        formals argv;
      (* then arrays, evaluating dimension bounds in the callee frame *)
      List.iter2
        (fun formal arg ->
          match Sema.find_sym cenv formal with
          | Some (Sema.SArray ai) -> (
              let lowers =
                Array.of_list (List.map (eval_i g cfr) ai.Sema.ai_los)
              in
              let his =
                Array.of_list (List.map (eval_i g cfr) ai.Sema.ai_his)
              in
              let extents = Array.map2 (fun h l -> h - l + 1) his lowers in
              let strides = column_major_strides extents in
              match arg with
              | Awhole ({ vresh = Some ri; _ } as v) ->
                  (* reshaped whole-array pass: argcheck compares the formal
                     shape with the actual's, then the descriptor is kept *)
                  if Array.length extents <> Array.length ri.r_ext then
                    uerror "%s: argument %s: dimension count mismatch" name
                      formal
                  else if extents <> ri.r_ext then
                    uerror "%s: argument %s: extent mismatch for reshaped \
                            actual"
                      name formal;
                  Hashtbl.replace cfr.views formal v
              | Awhole v ->
                  Hashtbl.replace cfr.views formal
                    {
                      v with
                      vlow = lowers;
                      vext = extents;
                      vstr = strides;
                      vresh = None;
                    }
              | Aelem (st, off, ri) ->
                  let words = Array.fold_left ( * ) 1 extents in
                  (match ri with
                  | Some ri ->
                      let run = guaranteed_run ri off in
                      if words > run then
                        unsup
                          "portion argument window not \
                           configuration-independent"
                  | None -> ());
                  Hashtbl.replace cfr.views formal
                    {
                      vstore = st;
                      vbase = off;
                      vlow = lowers;
                      vext = extents;
                      vstr = strides;
                      vresh = None;
                    }
              | Ai _ | Af _ ->
                  uerror "%s: argument %s: array expected" name formal)
          | _ -> ())
        formals argv;
      (try exec_body g cfr cenv.Sema.routine.Decl.rbody
       with Return_local -> ())

(* ------------------------------------------------------------------ *)

let final_image g : image =
  let arrays =
    Hashtbl.fold
      (fun qname d acc ->
        let n = Array.fold_left ( * ) 1 d.d_ext in
        let bits =
          Array.init (max 0 n) (fun i ->
              match d.d_ty with
              | Types.Tint ->
                  Int64.bits_of_float (float_of_int d.d_store.si.(i))
              | Types.Treal -> Int64.bits_of_float d.d_store.sf.(i))
        in
        (qname, bits) :: acc)
      g.stores []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  { arrays; prints = List.rev !(g.prints) }

let run ?(budget = 2_000_000) (files : (string * Sema.env list) list) :
    (image, failure) result =
  let routines =
    List.concat_map
      (fun (_, envs) ->
        List.map (fun (e : Sema.env) -> (e.Sema.routine.Decl.rname, e)) envs)
      files
  in
  let g =
    {
      routines;
      stores = Hashtbl.create 16;
      prints = ref [];
      budget;
      steps = 0;
    }
  in
  match
    List.find_opt
      (fun (_, (e : Sema.env)) ->
        e.Sema.routine.Decl.rkind = Decl.Program)
      routines
  with
  | None -> Error (F_user "no program unit")
  | Some (_, main_env) -> (
      try
        elaborate g;
        let fr = make_frame g main_env in
        (try exec_body g fr main_env.Sema.routine.Decl.rbody
         with Return_local -> ());
        Ok (final_image g)
      with
      | Timeout | Stack_overflow -> Error F_timeout
      | Uerror m -> Error (F_user m)
      | Unsup m -> Error (F_unsupported m))
