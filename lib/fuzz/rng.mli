(** Deterministic pseudo-random stream for the program generator.

    A splittable 48-bit LCG (same recurrence as the differential harness in
    [pflrun]): the generated program is a pure function of the seed, so every
    campaign case can be replayed from its seed alone. *)

type t

val create : int -> t
val int : t -> int -> int
(** [int t n] is uniform in [0, n) ([0] when [n <= 0]). *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [lo, hi] inclusive. *)

val bool : t -> bool
val chance : t -> pct:int -> bool
(** True with probability [pct]/100. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val split : t -> t
(** Child stream seeded from (and advancing) this one. *)
