(** Greedy structural shrinking of a failing program spec.

    Candidates are simplifications of the {e spec}, never of the rendered
    text, so every candidate is still well-formed by construction: drop a
    statement, inline an [if] branch, serialise a doacross (and drop its
    clauses one by one), drop a subroutine together with its call sites,
    merge all files into one, simplify a distribution (reshaped -> regular
    -> none), shrink array extents (clamping constant subscripts).  A
    candidate is kept when [still_fails] holds — usually "same triage
    bucket" — and the process restarts from it until a fixpoint or the
    attempt budget is hit. *)

val minimize :
  ?max_attempts:int -> still_fails:(Spec.t -> bool) -> Spec.t -> Spec.t
(** [max_attempts] bounds the number of predicate evaluations (default
    300); the given spec is assumed failing and is returned if nothing
    smaller still fails. *)

val weight : Spec.t -> int
(** Size metric the shrinker descends on (statement count + extents +
    clause count). *)
