type t = { mutable s : int }

let mask = 0xFFFFFFFFFFFF

let create seed = { s = (seed * 2862933555777941757) land mask }

let next t =
  t.s <- ((t.s * 25214903917) + 11) land mask;
  t.s

let int t n = if n <= 0 then 0 else next t lsr 16 mod n
let range t lo hi = lo + int t (hi - lo + 1)
let bool t = int t 2 = 1
let chance t ~pct = int t 100 < pct

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let split t = create (next t)
