(** Straight-line reference interpreter over the post-sema IR.

    Computes the final array contents and print output of a program with no
    machine model at all: no simulated memory, no scheduling, no costs.  It
    mirrors the VM's evaluation semantics exactly — type promotion and the
    conversion points of [Compilec] (including the int-of-float top guard),
    intrinsic folds, [%.10g] print formatting, by-value scalar argument
    conversion, column-major views for whole-array and element arguments,
    and the engine's two-plane heap (integer and real stores are separate,
    so type-punned accesses read the other plane's zeros, as on the
    simulator).  A [c$doacross] executes as its serial loop with all scalars
    restored at the join — exactly the observable behaviour of the engine's
    fork/join for the serial-equivalent programs the generator emits. *)

type failure =
  | F_timeout  (** step budget exhausted (the engine analogue is a
                   cycle-budget or watchdog diagnosis) *)
  | F_user of string  (** a runtime error the program provoked *)
  | F_unsupported of string
      (** construct outside the interpreter's scope (equivalence, lowered
          IR forms, [dsm_*] inquiry intrinsics whose value depends on the
          machine configuration) — the differential driver skips these *)

type image = {
  arrays : (string * int64 array) list;
      (** qualified name -> element values as IEEE bits, column-major;
          integers via [float_of_int], matching {!Ddsm_runtime.Rt.read} *)
  prints : string list;
}

val run :
  ?budget:int ->
  (string * Ddsm_sema.Sema.env list) list ->
  (image, failure) result
(** Interpret the program given per-file post-sema environments (pre-link:
    original routine names, original bodies).  [budget] bounds the number
    of statement executions (default 2,000,000). *)
