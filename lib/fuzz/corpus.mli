(** Regression corpus of minimized fuzzing reproducers.

    Each corpus file is an ordinary [.pf] source whose leading comment
    lines carry its provenance and its expected differential verdict:

    {v
c pflfuzz corpus: seed=41 bucket=diverged:values
c expect: ok
      program main
      ...
    v}

    [expect] is matched as a prefix of {!Differ.kind_of}, so ["diverged"]
    matches any divergence kind and ["ok"] demands a clean pass.  Corpus
    files found by a campaign are replayed forever by the test suite. *)

type case = { path : string; seed : int; expect : string; source : string }

val write_case :
  dir:string -> seed:int -> bucket:string -> expect:string -> source:string ->
  string
(** Write a reproducer into [dir] (created if missing); returns the path. *)

val load : dir:string -> case list
(** All corpus cases in [dir], sorted by filename; missing directory is an
    empty corpus.  Files without headers get [seed = 0] and
    [expect = "ok"]. *)

val replay : Differ.options -> case -> (unit, string) result
(** Run the case through the differential driver and check the verdict
    against its expectation. *)
