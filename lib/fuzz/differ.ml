module Ddsm = Ddsm_core.Ddsm
module Sema = Ddsm_sema.Sema
module Engine = Ddsm_exec.Engine
module Prog = Ddsm_exec.Prog
module Diag = Ddsm_check.Diag
module Fault = Ddsm_check.Fault
module Rt = Ddsm_runtime.Rt
module Darray = Ddsm_runtime.Darray
module Counters = Ddsm_machine.Counters
module Pagetable = Ddsm_machine.Pagetable
module Config = Ddsm_machine.Config
module Jobs = Ddsm_util.Jobs
module Sanitize = Ddsm_sanitize.Sanitize

type options = {
  fault : bool;
  race : bool;
  jobs : int;
  shard_legs : int list;
  max_cycles : int;
  step_budget : int;
  case_seed : int;
}

let default ~seed =
  {
    fault = false;
    race = false;
    jobs = 2;
    shard_legs = [ 2; 4 ];
    max_cycles = 60_000_000;
    step_budget = 2_000_000;
    case_seed = seed;
  }

type verdict =
  | Pass
  | Timeout
  | Reject of string
  | Fail of string
  | Diverged of { kind : string; detail : string }

let kind_of = function
  | Pass -> "ok"
  | Timeout -> "timeout"
  | Reject _ -> "reject"
  | Fail _ -> "fail"
  | Diverged { kind; _ } -> "diverged:" ^ kind

let is_failure = function
  | Pass | Timeout -> false
  | Reject _ | Fail _ | Diverged _ -> true

(* ------------------------------------------------------------------ *)
(* Engine legs *)

type leg = {
  l_nprocs : int;
  l_policy : Pagetable.policy;
  l_fault : Fault.t option;
}

type engine_out = {
  e_cycles : int;
  e_prints : string list;
  e_counters : (string * int) list;
  e_image : (string * int64 array) list;
}

(* the final value of every element in Fortran (column-major) order *)
let bits_of_darray rt (d : Darray.t) =
  let n = Darray.element_count d in
  let nd = Array.length d.Darray.extents in
  let out = Array.make n 0L in
  let idx = Array.copy d.Darray.lower in
  for i = 0 to n - 1 do
    let addr = Darray.word_addr d idx in
    out.(i) <- Int64.bits_of_float (Rt.read rt ~addr ~elem:d.Darray.elem);
    let rec bump k =
      if k < nd then begin
        idx.(k) <- idx.(k) + 1;
        if idx.(k) - d.Darray.lower.(k) >= d.Darray.extents.(k) then begin
          idx.(k) <- d.Darray.lower.(k);
          bump (k + 1)
        end
      end
    in
    bump 0
  done;
  out

(* Clone routines get fresh qualified names for their locals, so the
   comparable part of an image is the commons plus the program unit's own
   arrays; the generator only ever observes those. *)
let comparable_image ~main image =
  let prefix = main ^ "/" in
  List.filter
    (fun (name, _) ->
      String.length name > 0
      && (name.[0] = '/'
         || String.length name >= String.length prefix
            && String.sub name 0 (String.length prefix) = prefix))
    image

let image_of_rt rt ~main =
  Hashtbl.fold
    (fun name d acc -> (name, bits_of_darray rt d) :: acc)
    rt.Rt.arrays []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> comparable_image ~main

let run_leg prog (opts : options) (leg : leg) ?(shards = 1) ~sanitize () :
    (engine_out, Diag.t) result =
  let rt =
    Ddsm.make_rt ~policy:leg.l_policy
      ~heap_words:(1 lsl 18)
      ?fault:leg.l_fault ~nprocs:leg.l_nprocs ()
  in
  match
    Ddsm.run prog ~rt ~checks:true ~bounds:true ~max_cycles:opts.max_cycles
      ~stall_limit:2_000_000 ~shards ?sanitize ()
  with
  | Ok o ->
      Ok
        {
          e_cycles = o.Engine.cycles;
          e_prints = o.Engine.prints;
          e_counters = Counters.to_assoc o.Engine.counters;
          e_image = image_of_rt rt ~main:prog.Prog.main;
        }
  | Error d -> Error d

let diag_is_budget d =
  match Diag.code d with "cycle-budget" | "watchdog-stall" -> true | _ -> false

let short s = if String.length s > 160 then String.sub s 0 160 ^ "..." else s

(* ------------------------------------------------------------------ *)

exception Done of verdict

let return v = raise (Done v)

let image_diff a b =
  let rec go = function
    | [], [] -> None
    | (n, _) :: _, [] | [], (n, _) :: _ -> Some (n ^ ": present on one side")
    | (na, va) :: ra, (nb, vb) :: rb ->
        if na <> nb then Some (Printf.sprintf "%s vs %s" na nb)
        else if va <> vb then
          let i = ref 0 in
          while !i < Array.length va && va.(!i) = vb.(!i) do
            incr i
          done;
          Some
            (Printf.sprintf "%s[%d]: %Lx vs %Lx" na !i
               (if !i < Array.length va then va.(!i) else 0L)
               (if !i < Array.length vb then vb.(!i) else 0L))
        else go (ra, rb)
  in
  go (a, b)

let check_images ~kind a b =
  match image_diff a b with
  | Some d -> return (Diverged { kind; detail = d })
  | None -> ()

let check_prints ~kind a b =
  if a <> b then
    return
      (Diverged
         {
           kind;
           detail =
             Printf.sprintf "prints %d vs %d lines" (List.length a)
               (List.length b);
         })

let analyse opts files =
  (* 1. compile + link; any refusal is a Reject *)
  let objs, errs =
    List.fold_left
      (fun (objs, errs) (fname, src) ->
        match Ddsm.compile_source ~fname src with
        | Ok o -> (o :: objs, errs)
        | Error es -> (objs, errs @ es))
      ([], []) files
  in
  if errs <> [] then return (Reject (short (String.concat "; " errs)));
  let prog =
    match Ddsm.link (List.rev objs) with
    | Ok (prog, _) -> prog
    | Error es -> return (Reject (short (String.concat "; " es)))
  in
  (* 2. reference interpretation over the unlowered post-sema IR *)
  let envs =
    List.map
      (fun (fname, src) ->
        match Ddsm.parse ~fname src with
        | Error e -> return (Reject (short e))
        | Ok file -> (
            match Sema.analyse_file file with
            | Error es -> return (Reject (short (String.concat "; " es)))
            | Ok envs -> (fname, envs)))
      files
  in
  let iref = Interp.run ~budget:opts.step_budget envs in
  (match iref with
  | Error (Interp.F_unsupported m) ->
      return (Reject ("interpreter: unsupported: " ^ short m))
  | Error Interp.F_timeout ->
      (* per-case watchdog: the candidate is pathological; skip the engine
         legs so the campaign keeps moving *)
      return Timeout
  | _ -> ());
  (* 3. engine legs: in-process base + Jobs-dispatched duplicate/variants *)
  let base = { l_nprocs = 4; l_policy = Pagetable.First_touch; l_fault = None } in
  let vfault k nprocs =
    if opts.fault then
      Some (Fault.random ~seed:(opts.case_seed + k) ~nnodes:(max 1 (nprocs / 2)))
    else None
  in
  let variants =
    [
      base;
      {
        l_nprocs = 2;
        l_policy = Pagetable.Round_robin;
        l_fault = vfault 1 2;
      };
      { l_nprocs = 8; l_policy = Pagetable.First_touch; l_fault = vfault 2 8 };
    ]
  in
  let sanitizer =
    if opts.race then
      let cfg = Config.scaled ~nprocs:base.l_nprocs () in
      Some
        (Sanitize.create ~nprocs:base.l_nprocs
           ~line_bytes:cfg.Config.l2.Config.line_bytes
           ~page_bytes:cfg.Config.page_bytes ())
    else None
  in
  let direct = run_leg prog opts base ~sanitize:sanitizer () in
  let jobs_out =
    Jobs.map ~jobs:opts.jobs
      (fun leg -> run_leg prog opts leg ~sanitize:None ())
      variants
  in
  let dup, v1, v2 =
    match jobs_out with
    | [ a; b; c ] -> (a, b, c)
    | _ -> return (Diverged { kind = "fastpath"; detail = "jobs arity" })
  in
  (* 3a. fast path must be bit-identical to the in-process run *)
  (match (direct, dup) with
  | Ok a, Ok b ->
      check_images ~kind:"fastpath" a.e_image b.e_image;
      check_prints ~kind:"fastpath" a.e_prints b.e_prints;
      if a.e_cycles <> b.e_cycles then
        return
          (Diverged
             {
               kind = "fastpath";
               detail =
                 Printf.sprintf "cycles %d vs %d" a.e_cycles b.e_cycles;
             });
      if a.e_counters <> b.e_counters then
        return (Diverged { kind = "fastpath"; detail = "counters differ" })
  | Error a, Error b ->
      if Diag.code a <> Diag.code b then
        return
          (Diverged
             {
               kind = "fastpath";
               detail = Diag.code a ^ " vs " ^ Diag.code b;
             })
  | Ok _, Error d | Error d, Ok _ ->
      return
        (Diverged { kind = "fastpath"; detail = "ok vs " ^ Diag.code d }));
  (* 3a'. sharded leg: the same base configuration run on the
     domain-sharded event loop (2 then 4 shards) must be bit-identical —
     memory image, prints, final cycle count and hardware counters.  Error
     runs compare by structured Diag code, the established contract (the
     engine documents that only post-failure dump detail may differ). *)
  List.iter
    (fun shards ->
      let kind = Printf.sprintf "sharded:%d" shards in
      match (direct, run_leg prog opts base ~shards ~sanitize:None ()) with
      | Ok a, Ok b ->
          check_images ~kind a.e_image b.e_image;
          check_prints ~kind a.e_prints b.e_prints;
          if a.e_cycles <> b.e_cycles then
            return
              (Diverged
                 {
                   kind;
                   detail =
                     Printf.sprintf "cycles %d vs %d" a.e_cycles b.e_cycles;
                 });
          if a.e_counters <> b.e_counters then
            return (Diverged { kind; detail = "counters differ" })
      | Error a, Error b ->
          if Diag.code a <> Diag.code b then
            return
              (Diverged { kind; detail = Diag.code a ^ " vs " ^ Diag.code b })
      | Ok _, Error d | Error d, Ok _ ->
          return (Diverged { kind; detail = "ok vs " ^ Diag.code d }))
    opts.shard_legs;
  (* 3b. sanitizer verdict on the base leg *)
  (match sanitizer with
  | Some s when not (Sanitize.is_clean s) ->
      return
        (Diverged
           {
             kind = "race";
             detail =
               Printf.sprintf "%d races, %d dropped"
                 (List.length (Sanitize.races s))
                 (Sanitize.dropped s);
           })
  | _ -> ());
  (* 3c. interpreter vs engine status matrix *)
  let verdict_base =
    match (iref, direct) with
    | Error Interp.F_timeout, _ -> return Timeout
    | _, Error d when diag_is_budget d -> return Timeout
    | Error (Interp.F_user _), Error d when Diag.code d = "user" ->
        Fail (Diag.code d)
    | _, Error d when Diag.is_internal d ->
        return
          (Diverged
             { kind = "engine-internal"; detail = short (Diag.to_string d) })
    | Error (Interp.F_user m), Ok _ ->
        return
          (Diverged
             { kind = "status"; detail = "interp user error vs ok: " ^ short m })
    | Ok _, Error d ->
        return
          (Diverged
             {
               kind = "status";
               detail = "ok vs engine " ^ short (Diag.to_string d);
             })
    | Error (Interp.F_user m), Error d ->
        return
          (Diverged
             {
               kind = "status";
               detail =
                 Printf.sprintf "interp user error (%s) vs engine %s"
                   (short m) (Diag.code d);
             })
    | Error (Interp.F_unsupported _), _ -> assert false (* handled above *)
    | Ok iimg, Ok e ->
        let iarr = comparable_image ~main:prog.Prog.main iimg.Interp.arrays in
        check_prints ~kind:"prints" iimg.Interp.prints e.e_prints;
        check_images ~kind:"values" iarr e.e_image;
        Pass
  in
  (* 3d. variant legs agree with the base on values and prints *)
  (match direct with
  | Ok b ->
      List.iter
        (fun v ->
          match v with
          | Ok (v : engine_out) ->
              check_images ~kind:"variant" b.e_image v.e_image;
              check_prints ~kind:"variant" b.e_prints v.e_prints
          | Error d when diag_is_budget d -> return Timeout
          | Error d when Diag.is_internal d ->
              return
                (Diverged
                   {
                     kind = "engine-internal";
                     detail = short (Diag.to_string d);
                   })
          | Error d ->
              return
                (Diverged
                   {
                     kind = "variant";
                     detail = "base ok vs " ^ short (Diag.to_string d);
                   }))
        [ v1; v2 ]
  | Error bd ->
      List.iter
        (fun v ->
          match v with
          | Error d when Diag.code d = Diag.code bd -> ()
          | Error d when diag_is_budget d || diag_is_budget bd -> ()
          | Error d ->
              return
                (Diverged
                   {
                     kind = "variant";
                     detail = Diag.code bd ^ " vs " ^ Diag.code d;
                   })
          | Ok _ ->
              return
                (Diverged
                   { kind = "variant"; detail = Diag.code bd ^ " vs ok" }))
        [ v1; v2 ]);
  (* 3e. chaos leg: lost wakeups may deadlock or stall the run, but it must
     come back as a structured diagnosis, not an exception *)
  if opts.fault && opts.case_seed mod 4 = 0 then begin
    let chaos =
      {
        l_nprocs = 4;
        l_policy = Pagetable.First_touch;
        l_fault =
          Some (Fault.make ~lose_wakeup:(1 + (opts.case_seed mod 5)) ());
      }
    in
    match run_leg prog opts chaos ~sanitize:None () with
    | Ok _ | Error _ -> ()
  end;
  verdict_base

let run opts files =
  try analyse opts files with
  | Done v -> v
  | e ->
      Diverged
        {
          kind = "exn";
          detail = short (Printexc.to_string e);
        }
