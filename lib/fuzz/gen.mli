(** Typed random program generator.

    Programs are well-formed by construction: every reference stays in
    bounds, every doacross body writes only its own iteration's elements of
    one array and reads scalars it does not write (so runs are
    serial-equivalent, deterministic, and race-free), portion-passing calls
    land on full chunk starts, and all directive clauses satisfy the sema
    legality rules.  The program is a pure function of the seed. *)

type size = {
  max_arrays : int;
  max_stmts : int;  (* statements beyond the per-array init loops *)
  max_ext : int;  (* array extent per dimension (>= 3) *)
  max_subs : int;
  max_files : int;
}

val quick : size
(** Small programs for CI campaigns (extents 3-6, <= 2 subroutines). *)

val of_level : int -> size
(** Scale the size knobs from a single [--max-size] level; [of_level 10]
    is {!quick}. *)

val generate : ?size:size -> seed:int -> unit -> Spec.t
