type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type reals = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Bigarray storage keeps the (potentially huge) simulated memory out of the
   OCaml GC's marking work: a 16M-word int array would otherwise be scanned
   on every major slice, dominating simulation time. *)
type t = { reals : reals; ints : ints; mutable brk : int }

let word_bytes = 8

exception Out_of_memory of string

(* Zeroing policy: words are zeroed when [alloc] hands them out, not at
   [create]. Program-visible memory (always inside some allocation) still
   reads deterministically as zero until written, but creating a runtime
   costs O(live data) instead of O(heap size) — sweep harnesses build one
   heap per job, and a prefill of the whole arena dominated small runs. *)
let create ~words =
  if words < 1 then invalid_arg "Heap.create";
  let reals = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout words in
  let ints = Bigarray.Array1.create Bigarray.int Bigarray.c_layout words in
  { reals; ints; brk = 0 }

let size_words t = Bigarray.Array1.dim t.reals
let used_words t = t.brk

let alloc t ~words ~align_words =
  if words < 0 || align_words < 1 then invalid_arg "Heap.alloc";
  let base = (t.brk + align_words - 1) / align_words * align_words in
  if base + words > size_words t then
    raise
      (Out_of_memory
         (Printf.sprintf
            "out of simulated memory: need %d words at %d, heap holds %d"
            words base (size_words t)));
  t.brk <- base + words;
  if words > 0 then begin
    let sub a = Bigarray.Array1.sub a base words in
    Bigarray.Array1.fill (sub t.reals) 0.0;
    Bigarray.Array1.fill (sub t.ints) 0
  end;
  base

let get_real t w = Bigarray.Array1.get t.reals w
let set_real t w v = Bigarray.Array1.set t.reals w v
let get_int t w = Bigarray.Array1.get t.ints w
let set_int t w v = Bigarray.Array1.set t.ints w v
let byte_of_word w = w * word_bytes
let word_of_byte b = b / word_bytes
