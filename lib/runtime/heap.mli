(** The simulated shared virtual address space.

    The machine simulator models timing and coherence only; the actual data
    lives here, in two parallel word arrays (8-byte words): [reals] for
    [real*8] values and [ints] for integer values and runtime metadata
    (array descriptors, processor-pointer arrays). Word address [w]
    corresponds to byte address [8*w] in the machine.

    A simple bump allocator: the Fortran programs we run allocate everything
    at startup and never free (common blocks and local arrays with program
    lifetime), so no free list is needed. *)

type t

val word_bytes : int
(** 8 — everything the simulated programs store is one 8-byte word. *)

exception Out_of_memory of string
(** Raised by {!alloc} when the simulated heap is exhausted — a resource
    error of the simulated program, distinct from [Failure] so it is never
    mistaken for an internal invariant violation. *)

val create : words:int -> t
val size_words : t -> int
val used_words : t -> int

val alloc : t -> words:int -> align_words:int -> int
(** [alloc t ~words ~align_words] reserves [words] words aligned to
    [align_words] and returns the first word address. Raises
    {!Out_of_memory} when exhausted. *)

val get_real : t -> int -> float
val set_real : t -> int -> float -> unit
val get_int : t -> int -> int
val set_int : t -> int -> int -> unit

val byte_of_word : int -> int
val word_of_byte : int -> int
