open Ddsm_machine

type redist = {
  moved : int;
  words : int;
  rounds : int;
  round_words : int;
  retries : int;
  fell_back : bool;
}

(* One inspector-executor gather site (compiled [Stmt.Gather]): scratch
   storage, the cached schedule and its cache key. Sites are keyed
   "routine#id" so prelink clones get distinct state. *)
type gather_site = {
  mutable gs_scratch : int;  (* scratch base word; -1 until allocated *)
  mutable gs_cap : int;  (* scratch capacity in words *)
  mutable gs_key : (int * int * int array) option;
      (* (index version, target version, evaluated rectangle bounds) the
         cached schedule was inspected under *)
  mutable gs_addrs : int array;  (* iteration slot -> source word address *)
  mutable gs_rounds : int;
  mutable gs_round_words : int;
}

type t = {
  heap : Heap.t;
  mem : Memsys.t;
  pools : Pools.t;
  argcheck : Argcheck.t;
  arrays : (string, Darray.t) Hashtbl.t;
  gathers : (string, gather_site) Hashtbl.t;
  mutable redist_pages : int;
  mutable redist_attempts : int;
  mutable redist_retries : int;
  mutable redist_fallbacks : int;
  mutable gather_fetches : int;
  mutable gather_inspections : int;
  mutable gather_retries : int;
  mutable gather_fallbacks : int;
  job_procs : int;
  mutable barriers : int;
  mutable on_event :
    (name:string -> detail:string -> proc:int -> now:int -> unit) option;
  mutable on_relayout : (Darray.t -> unit) option;
  mutable on_scratch :
    (name:string -> word_ranges:(int * int) list -> unit) option;
}

let create cfg ~policy ~heap_words ?(pool_slab_pages = 4) ?job_procs
    ?(fault = Ddsm_check.Fault.none) () =
  let heap = Heap.create ~words:heap_words in
  let mem = Memsys.create cfg ~policy ~fault () in
  let job_procs =
    match job_procs with
    | None -> cfg.Config.nprocs
    | Some j ->
        if j < 1 || j > cfg.Config.nprocs then
          invalid_arg "Rt.create: job_procs out of machine range";
        j
  in
  {
    heap;
    mem;
    pools = Pools.create heap mem ~slab_pages:pool_slab_pages;
    argcheck = Argcheck.create ();
    arrays = Hashtbl.create 64;
    gathers = Hashtbl.create 16;
    redist_pages = 0;
    redist_attempts = 0;
    redist_retries = 0;
    redist_fallbacks = 0;
    gather_fetches = 0;
    gather_inspections = 0;
    gather_retries = 0;
    gather_fallbacks = 0;
    job_procs;
    barriers = 0;
    on_event = None;
    on_relayout = None;
    on_scratch = None;
  }

let note_event t ~name ~detail ~proc ~now =
  match t.on_event with
  | None -> ()
  | Some f -> f ~name ~detail ~proc ~now

let note_barrier t ~proc ~now =
  t.barriers <- t.barriers + 1;
  (* a dropped note models the missing-synchronization bug: the arrival is
     never published, so observers (the sanitizer) see the processors on
     either side of the barrier as unordered *)
  if
    not
      (Ddsm_check.Fault.barrier_dropped (Memsys.fault t.mem)
         ~barrier:t.barriers)
  then note_event t ~name:"barrier" ~detail:"" ~proc ~now

let nprocs t = t.job_procs
let page_words t = (Memsys.config t.mem).Config.page_bytes / Heap.word_bytes

let register t (a : Darray.t) =
  if Hashtbl.mem t.arrays a.Darray.name then
    invalid_arg (Printf.sprintf "Rt: array %s already declared" a.Darray.name);
  Hashtbl.replace t.arrays a.Darray.name a;
  a

let declare_plain t ~name ~elem ~extents ?lower () =
  register t
    (Darray.alloc_plain t.heap ~name ~elem ~extents ?lower
       ~page_words:(page_words t) ())

let declare_regular t ~name ~elem ~extents ?lower ~kinds ?onto () =
  register t
    (Darray.alloc_regular t.heap t.mem ~name ~elem ~extents ?lower ~kinds ?onto
       ~nprocs:t.job_procs ())

let declare_reshaped t ~name ~elem ~extents ?lower ~kinds ?onto () =
  register t
    (Darray.alloc_reshaped t.heap t.mem t.pools ~name ~elem ~extents ?lower
       ~kinds ?onto ~nprocs:t.job_procs ())

(* At most this many tries per redistribute call before giving up and
   keeping the old placement. *)
let max_redist_attempts = 3

let redistribute t ~name ~kinds ?onto ?procs () =
  match Hashtbl.find_opt t.arrays name with
  | None -> Error (Printf.sprintf "redistribute: unknown array %s" name)
  | Some a ->
      let fault = Memsys.fault t.mem in
      (* onto-grid resize: the requested processor count is clamped to the
         job's, so one program runs unchanged on any machine size (the
         same start-up-time contract as [c$distribute] itself) *)
      let nprocs =
        match procs with
        | None -> t.job_procs
        | Some p -> max 1 (min p t.job_procs)
      in
      let fallback tries =
        t.redist_fallbacks <- t.redist_fallbacks + 1;
        Ok
          {
            moved = 0;
            words = 0;
            rounds = 0;
            round_words = 0;
            retries = tries;
            fell_back = true;
          }
      in
      (* Injected retryable failures — a whole attempt refused up front
         (redist-fail) or a page migration failing mid-plan and rolling
         back (migrate-fail): retry with bounded attempts, and if every
         attempt fails fall back to the old placement — the program stays
         correct, only slower. *)
      let rec go tries =
        let attempt = t.redist_attempts in
        t.redist_attempts <- attempt + 1;
        let retry_or_fallback () =
          if tries + 1 >= max_redist_attempts then fallback tries
          else (
            t.redist_retries <- t.redist_retries + 1;
            go (tries + 1))
        in
        if Ddsm_check.Fault.redist_attempt_fails fault ~attempt then
          retry_or_fallback ()
        else
          match
            Darray.redistribute a t.heap t.mem ~pools:t.pools ~kinds ?onto
              ~nprocs ()
          with
          | Ok Darray.Busy -> retry_or_fallback ()
          | Ok (Darray.Moved o) ->
              t.redist_pages <- t.redist_pages + o.Darray.pages_moved;
              (* page homes (regular) or portion addresses (reshaped)
                 changed: cached gather schedules over this array are
                 stale *)
              Darray.bump_version a;
              if a.Darray.reshaped then
                Option.iter (fun f -> f a) t.on_relayout;
              Ok
                {
                  moved = o.Darray.pages_moved;
                  words = o.Darray.words_moved;
                  rounds = o.Darray.rounds;
                  round_words = o.Darray.round_words;
                  retries = tries;
                  fell_back = false;
                }
          | Error _ as e -> e
      in
      go 0

let find_array t name = Hashtbl.find_opt t.arrays name

(* ------------------------------------------------------------------ *)
(* Inspector-executor gather sites *)

let gather_site t ~key =
  match Hashtbl.find_opt t.gathers key with
  | Some s -> s
  | None ->
      let s =
        {
          gs_scratch = -1;
          gs_cap = 0;
          gs_key = None;
          gs_addrs = [||];
          gs_rounds = 0;
          gs_round_words = 0;
        }
      in
      Hashtbl.replace t.gathers key s;
      s

(* Scratch storage for a gather site: page-aligned and padded to whole
   pages, pages block-placed over the job's processors so executor reads
   spread across the machine instead of hammering one home node. The
   scratch words are announced to the [on_scratch] observer under the
   SOURCE array's name — profiler and sanitizer attribute the gathered
   words to the array they came from. *)
let alloc_gather_scratch t ~src_array ~words =
  let pw = page_words t in
  let padded = max pw ((words + pw - 1) / pw * pw) in
  let base = Heap.alloc t.heap ~words:padded ~align_words:pw in
  let npages = padded / pw in
  let cfg = Memsys.config t.mem in
  let base_pg = Heap.byte_of_word base / cfg.Config.page_bytes in
  for i = 0 to npages - 1 do
    let p = i * t.job_procs / npages in
    Memsys.place_page t.mem ~page:(base_pg + i)
      ~node:(Config.node_of_proc cfg p)
  done;
  (match t.on_scratch with
  | None -> ()
  | Some f -> f ~name:src_array ~word_ranges:[ (base, base + padded - 1) ]);
  base

(* machine-wide bulk-fetch counter feeding the fault plan: returns the
   0-based ordinal of this fetch, like [Memsys]'s migration counter, so
   [gather-fail=N] fails the Nth fetch onward (1-based spec). *)
let next_gather_fetch t =
  let v = t.gather_fetches in
  t.gather_fetches <- t.gather_fetches + 1;
  v

let read t ~addr ~elem =
  match (elem : Darray.elem) with
  | Darray.Real -> Heap.get_real t.heap addr
  | Darray.Int -> float_of_int (Heap.get_int t.heap addr)

(* Real-to-integer element conversion: NaN has no integer value and
   [int_of_float] on an out-of-range real is unspecified (it used to come
   back as 0 or garbage silently); both must surface as runtime errors,
   not as corrupted data. 2^62 is the first magnitude past [max_int]
   exactly representable as a float; [-2^62] itself is [min_int]. *)
let int_magnitude_bound = 4611686018427387904.0 (* 2^62 *)

let int_of_real v =
  if Float.is_nan v || v >= int_magnitude_bound || v < -.int_magnitude_bound
  then None
  else Some (int_of_float v)

let write t ~addr ~elem v =
  match (elem : Darray.elem) with
  | Darray.Real -> Heap.set_real t.heap addr v
  | Darray.Int -> (
      match int_of_real v with
      | Some i -> Heap.set_int t.heap addr i
      | None ->
          invalid_arg
            (Printf.sprintf
               "Rt.write: %g has no integer value (NaN or out of range)" v))

let audit t =
  let machine = Memsys.audit t.mem in
  let heap =
    Hashtbl.fold
      (fun _ a acc -> List.rev_append (Darray.audit a t.heap) acc)
      t.arrays []
  in
  machine @ heap
