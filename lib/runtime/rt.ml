open Ddsm_machine

type redist = { moved : int; retries : int; fell_back : bool }

type t = {
  heap : Heap.t;
  mem : Memsys.t;
  pools : Pools.t;
  argcheck : Argcheck.t;
  arrays : (string, Darray.t) Hashtbl.t;
  mutable redist_pages : int;
  mutable redist_attempts : int;
  mutable redist_retries : int;
  mutable redist_fallbacks : int;
  job_procs : int;
  mutable barriers : int;
  mutable on_event :
    (name:string -> detail:string -> proc:int -> now:int -> unit) option;
}

let create cfg ~policy ~heap_words ?(pool_slab_pages = 4) ?job_procs
    ?(fault = Ddsm_check.Fault.none) () =
  let heap = Heap.create ~words:heap_words in
  let mem = Memsys.create cfg ~policy ~fault () in
  let job_procs =
    match job_procs with
    | None -> cfg.Config.nprocs
    | Some j ->
        if j < 1 || j > cfg.Config.nprocs then
          invalid_arg "Rt.create: job_procs out of machine range";
        j
  in
  {
    heap;
    mem;
    pools = Pools.create heap mem ~slab_pages:pool_slab_pages;
    argcheck = Argcheck.create ();
    arrays = Hashtbl.create 64;
    redist_pages = 0;
    redist_attempts = 0;
    redist_retries = 0;
    redist_fallbacks = 0;
    job_procs;
    barriers = 0;
    on_event = None;
  }

let note_event t ~name ~detail ~proc ~now =
  match t.on_event with
  | None -> ()
  | Some f -> f ~name ~detail ~proc ~now

let note_barrier t ~proc ~now =
  t.barriers <- t.barriers + 1;
  (* a dropped note models the missing-synchronization bug: the arrival is
     never published, so observers (the sanitizer) see the processors on
     either side of the barrier as unordered *)
  if
    not
      (Ddsm_check.Fault.barrier_dropped (Memsys.fault t.mem)
         ~barrier:t.barriers)
  then note_event t ~name:"barrier" ~detail:"" ~proc ~now

let nprocs t = t.job_procs
let page_words t = (Memsys.config t.mem).Config.page_bytes / Heap.word_bytes

let register t (a : Darray.t) =
  if Hashtbl.mem t.arrays a.Darray.name then
    invalid_arg (Printf.sprintf "Rt: array %s already declared" a.Darray.name);
  Hashtbl.replace t.arrays a.Darray.name a;
  a

let declare_plain t ~name ~elem ~extents ?lower () =
  register t
    (Darray.alloc_plain t.heap ~name ~elem ~extents ?lower
       ~page_words:(page_words t) ())

let declare_regular t ~name ~elem ~extents ?lower ~kinds ?onto () =
  register t
    (Darray.alloc_regular t.heap t.mem ~name ~elem ~extents ?lower ~kinds ?onto
       ~nprocs:t.job_procs ())

let declare_reshaped t ~name ~elem ~extents ?lower ~kinds ?onto () =
  register t
    (Darray.alloc_reshaped t.heap t.mem t.pools ~name ~elem ~extents ?lower
       ~kinds ?onto ~nprocs:t.job_procs ())

(* At most this many tries per redistribute call before giving up and
   keeping the old placement. *)
let max_redist_attempts = 3

let redistribute t ~name ~kinds ?onto () =
  match Hashtbl.find_opt t.arrays name with
  | None -> Error (Printf.sprintf "redistribute: unknown array %s" name)
  | Some a ->
      let fault = Memsys.fault t.mem in
      (* Injected retryable failures (a busy OS refusing the migration):
         retry with bounded attempts, and if every attempt fails fall back
         to the old placement — the program stays correct, only slower. *)
      let rec go tries =
        let attempt = t.redist_attempts in
        t.redist_attempts <- attempt + 1;
        if Ddsm_check.Fault.redist_attempt_fails fault ~attempt then
          if tries + 1 >= max_redist_attempts then (
            t.redist_fallbacks <- t.redist_fallbacks + 1;
            Ok { moved = 0; retries = tries; fell_back = true })
          else (
            t.redist_retries <- t.redist_retries + 1;
            go (tries + 1))
        else
          match
            Darray.redistribute a t.heap t.mem ~kinds ?onto
              ~nprocs:t.job_procs ()
          with
          | Ok moved ->
              t.redist_pages <- t.redist_pages + moved;
              Ok { moved; retries = tries; fell_back = false }
          | Error _ as e -> e
      in
      go 0

let find_array t name = Hashtbl.find_opt t.arrays name

let read t ~addr ~elem =
  match (elem : Darray.elem) with
  | Darray.Real -> Heap.get_real t.heap addr
  | Darray.Int -> float_of_int (Heap.get_int t.heap addr)

let write t ~addr ~elem v =
  match (elem : Darray.elem) with
  | Darray.Real -> Heap.set_real t.heap addr v
  | Darray.Int -> Heap.set_int t.heap addr (int_of_float v)

let audit t =
  let machine = Memsys.audit t.mem in
  let heap =
    Hashtbl.fold
      (fun _ a acc -> List.rev_append (Darray.audit a t.heap) acc)
      t.arrays []
  in
  machine @ heap
