(** The runtime-system context: one simulated machine plus heap, reshaped
    storage pools, the argument-check table, and the array registry. This is
    what the startup code elaborates distribution directives against and
    what the VM threads through execution. *)

open Ddsm_dist
open Ddsm_machine

type redist = {
  moved : int;  (** pages actually migrated (0 when [fell_back]) *)
  words : int;  (** data words that changed home (0 when [fell_back]) *)
  rounds : int;  (** all-to-all rounds of the communication schedule *)
  round_words : int;
      (** sum over rounds of the round's largest transfer — what the cost
          model charges for the scheduled data movement *)
  retries : int;  (** failed attempts before this outcome *)
  fell_back : bool;
      (** every attempt failed; the old placement was kept — correct but
          without the performance benefit of the new distribution *)
}

(** One inspector-executor gather site (a compiled [Stmt.Gather]): scratch
    storage plus the cached schedule and its cache key. Sites are keyed
    ["routine#id"] so linker clones get distinct state. All fields are
    owned by the VM's gather execution. *)
type gather_site = {
  mutable gs_scratch : int;  (** scratch base word; [-1] until allocated *)
  mutable gs_cap : int;  (** scratch capacity in words *)
  mutable gs_key : (int * int * int array) option;
      (** (index version, target version, evaluated rectangle bounds) the
          cached schedule was inspected under; [None] = never inspected *)
  mutable gs_addrs : int array;  (** iteration slot -> source word address *)
  mutable gs_rounds : int;  (** per-home rounds of the cached schedule *)
  mutable gs_round_words : int;
      (** sum over rounds of the largest transfer *)
}

type t = {
  heap : Heap.t;
  mem : Memsys.t;
  pools : Pools.t;
  argcheck : Argcheck.t;
  arrays : (string, Darray.t) Hashtbl.t;
  gathers : (string, gather_site) Hashtbl.t;
  mutable redist_pages : int;  (** pages moved by redistribute calls *)
  mutable redist_attempts : int;
      (** redistribute attempts made (feeds the fault plan's failure
          schedule) *)
  mutable redist_retries : int;  (** attempts that failed and were retried *)
  mutable redist_fallbacks : int;
      (** redistribute calls that exhausted retries and kept the old
          placement *)
  mutable gather_fetches : int;
      (** bulk gather fetches attempted (feeds the fault plan's
          [gather-fail] schedule, 1-based) *)
  mutable gather_inspections : int;
      (** gather schedule (re)inspections — cache misses *)
  mutable gather_retries : int;  (** failed bulk fetches that were retried *)
  mutable gather_fallbacks : int;
      (** gathers that exhausted retries and fell back to per-element
          fetches *)
  job_procs : int;
      (** processors this job runs on (<= machine size): the paper runs
          P-processor jobs on a fixed 128-processor Origin-2000 *)
  mutable barriers : int;
      (** barrier notes made so far (feeds the fault plan's drop-barrier
          schedule) *)
  mutable on_event :
    (name:string -> detail:string -> proc:int -> now:int -> unit) option;
      (** observability hook: runtime-level events (barriers,
          redistributions, injected redistribution failures) are announced
          here when installed — the engine points this at the profiler's
          event trace. [None] (the default) makes {!note_event} free. *)
  mutable on_relayout : (Darray.t -> unit) option;
      (** called after a reshaped array installs a new storage layout
          (portions and descriptor replaced by {!redistribute}): observers
          that hold the array's word ranges — profiler, sanitizer — must
          learn the new ones. [None] by default. *)
  mutable on_scratch :
    (name:string -> word_ranges:(int * int) list -> unit) option;
      (** called when a gather site allocates scratch storage, with the
          SOURCE array's qualified name and the new scratch word ranges:
          observers attribute the gathered words to the array they came
          from. [None] by default. *)
}

val create :
  Config.t -> policy:Pagetable.policy -> heap_words:int ->
  ?pool_slab_pages:int -> ?job_procs:int -> ?fault:Ddsm_check.Fault.t ->
  unit -> t
(** [fault] installs a deterministic fault plan on the simulated machine
    (see {!Ddsm_machine.Memsys.create}) and drives the injected
    redistribution failures consumed by {!redistribute}. *)

val nprocs : t -> int
(** Job processor count (defaults to the machine size). *)

val note_event :
  t -> name:string -> detail:string -> proc:int -> now:int -> unit
(** Announce a runtime event to the installed [on_event] hook (no-op when
    none is installed). *)

val note_barrier : t -> proc:int -> now:int -> unit
(** Announce processor [proc]'s arrival at a barrier as a ["barrier"] event.
    If the fault plan drops this note ({!Ddsm_check.Fault.barrier_dropped},
    counted machine-wide, 1-based) the arrival is never published — the
    seeded missing-synchronization bug the sanitizer must catch. Timing is
    unaffected either way. *)

val page_words : t -> int

(** Allocation entry points used by program elaboration. Arrays are
    registered by name; re-declaring a name is an error (the frontend
    scopes names before reaching here). *)

val declare_plain :
  t -> name:string -> elem:Darray.elem -> extents:int array ->
  ?lower:int array -> unit -> Darray.t

val declare_regular :
  t -> name:string -> elem:Darray.elem -> extents:int array ->
  ?lower:int array -> kinds:Kind.t array -> ?onto:int array -> unit -> Darray.t

val declare_reshaped :
  t -> name:string -> elem:Darray.elem -> extents:int array ->
  ?lower:int array -> kinds:Kind.t array -> ?onto:int array -> unit -> Darray.t

val redistribute :
  t -> name:string -> kinds:Kind.t array -> ?onto:int array -> ?procs:int ->
  unit -> (redist, string) result
(** Transition a distributed array — regular (pages re-homed) or reshaped
    (portions rebuilt and RCU-installed) — to new distribution kinds under
    the minimal-communication schedule. [procs] resizes the onto-grid; it
    is clamped to the job's processor count so one program runs on any
    machine size. The fault plan may inject retryable failures, either
    refusing a whole attempt ([redist-fail]) or failing a page migration
    mid-plan ([migrate-fail], rolled back by the machine layer): the call
    retries (bounded) and, if every attempt fails, falls back to the old
    placement with [fell_back = true] — the caller charges backoff cost
    per retry but the program's results are unaffected. [Error] is
    reserved for real misuse (unknown or plain arrays). *)

val int_of_real : float -> int option
(** Checked real-to-integer element conversion: [None] for NaN and for
    magnitudes past the integer range, instead of [int_of_float]'s silent
    0/garbage. The VM and the fuzz reference interpreter both store
    integer elements through this rule. *)

val find_array : t -> string -> Darray.t option

val gather_site : t -> key:string -> gather_site
(** Find or create the gather site state for ["routine#id"]. *)

val alloc_gather_scratch : t -> src_array:string -> words:int -> int
(** Allocate (page-aligned, whole pages) scratch storage for a gather
    site, block-place its pages over the job's processors, announce the
    range to [on_scratch] under [src_array], and return the base word. *)

val next_gather_fetch : t -> int
(** Bump the machine-wide bulk-fetch counter and return this fetch's
    0-based ordinal (consumed by
    {!Ddsm_check.Fault.gather_fetch_fails}). *)

val read : t -> addr:int -> elem:Darray.elem -> float
(** Raw data read (no timing); integers are returned as floats for the VM's
    untyped data path. *)

val write : t -> addr:int -> elem:Darray.elem -> float -> unit
(** Raw data write (no timing). Integer elements go through
    {!int_of_real}; raises [Invalid_argument] when the value has no
    integer representation (the VM's store path reports the located
    runtime error before reaching here). *)

val audit : t -> Ddsm_check.Audit.violation list
(** Full runtime audit: the machine invariants ({!Memsys.audit}) plus the
    heap canaries of every registered array. Empty when clean. *)
