open Ddsm_dist

type info =
  | Whole_array of { extents : int array; kinds : Kind.t array }
  | Portion of { words : int }

type t = (int, info list) Hashtbl.t

let create () : t = Hashtbl.create 256

let register t ~addr info =
  let stack = Option.value ~default:[] (Hashtbl.find_opt t addr) in
  Hashtbl.replace t addr (info :: stack)

let unregister t ~addr =
  match Hashtbl.find_opt t addr with
  | None | Some [] ->
      Error
        (Printf.sprintf
           "runtime error: argument-check underflow: return unregisters \
            address %d which was never registered (unbalanced \
            register/unregister in the call protocol)"
           addr)
  | Some [ _ ] ->
      Hashtbl.remove t addr;
      Ok ()
  | Some (_ :: rest) ->
      Hashtbl.replace t addr rest;
      Ok ()

let lookup t ~addr =
  match Hashtbl.find_opt t addr with
  | None | Some [] -> None
  | Some (i :: _) -> Some i

let pp_dims ppf dims =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Format.pp_print_int)
    (Array.to_list dims)

let check_entry t ~addr ~name ~formal_extents ?formal_kinds () =
  match lookup t ~addr with
  | None -> Ok ()
  | Some (Portion { words }) ->
      let formal_words = Array.fold_left ( * ) 1 formal_extents in
      if formal_words > words then
        Error
          (Format.asprintf
             "runtime error: formal parameter %s declared %a (%d words) \
              exceeds the %d-word portion of a reshaped array passed as \
              actual argument"
             name pp_dims formal_extents formal_words words)
      else Ok ()
  | Some (Whole_array { extents; kinds }) ->
      if Array.length extents <> Array.length formal_extents then
        Error
          (Format.asprintf
             "runtime error: formal parameter %s has %d dimensions but the \
              reshaped actual argument has %d"
             name
             (Array.length formal_extents)
             (Array.length extents))
      else if extents <> formal_extents then
        Error
          (Format.asprintf
             "runtime error: formal parameter %s declared %a but the \
              reshaped actual argument has shape %a (sizes must match \
              exactly)"
             name pp_dims formal_extents pp_dims extents)
      else begin
        match formal_kinds with
        | None -> Ok ()
        | Some fk ->
            if
              Array.length fk = Array.length kinds
              && Array.for_all2 Kind.equal fk kinds
            then Ok ()
            else
              Error
                (Format.asprintf
                   "runtime error: formal parameter %s expects distribution \
                    (%a) but the actual argument is distributed (%a)"
                   name
                   (Format.pp_print_list
                      ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
                      Kind.pp)
                   (Array.to_list fk)
                   (Format.pp_print_list
                      ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
                      Kind.pp)
                   (Array.to_list kinds))
      end

let depth t = Hashtbl.fold (fun _ l acc -> acc + List.length l) t 0
