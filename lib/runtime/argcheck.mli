(** Runtime error-detection for reshaped arrays passed as subroutine
    arguments (paper §6).

    "At each subroutine invocation with a reshaped array (or a portion
    thereof) passed as an argument, we take the address being passed in and
    use it as an index into a runtime hash table to store information about
    the actual argument. ... Upon entry to each subroutine ... we compare
    the information found in the hash table with the declared shape and size
    of the formal parameter, generating a runtime error in case of a
    mismatch."

    Entries are pushed at the call site and popped on return, so recursive
    and nested calls passing the same address behave like a stack. *)

open Ddsm_dist

type info =
  | Whole_array of { extents : int array; kinds : Kind.t array }
      (** the entire reshaped array was passed *)
  | Portion of { words : int }
      (** an element was passed, i.e. a portion of the distributed array;
          only the portion's size is recorded *)

type t

val create : unit -> t

val register : t -> addr:int -> info -> unit
(** Call-site half: record the actual argument keyed by its address. *)

val unregister : t -> addr:int -> (unit, string) result
(** On return from the call. Unregistering an address with no live
    registration is an [Error]: it means the call protocol is unbalanced
    (a pop without a push), which would silently disable the §6 checks for
    every enclosing call — the caller must surface it. *)

val lookup : t -> addr:int -> info option

val check_entry :
  t -> addr:int -> name:string -> formal_extents:int array ->
  ?formal_kinds:Kind.t array -> unit -> (unit, string) result
(** Subroutine-entry half: if [addr] is a registered reshaped actual,
    validate the declared formal against it:
    - whole array: dimension count and every extent must match exactly, and
      the formal's propagated distribution (when supplied) must match;
    - portion: the formal's total size must not exceed the portion size.

    Unregistered addresses pass trivially (the argument was not a reshaped
    array). *)

val depth : t -> int
(** Total registered entries (for tests). *)
