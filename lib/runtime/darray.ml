open Ddsm_dist
open Ddsm_machine

type elem = Real | Int

module Meta = struct
  let procs_off ~dim = 3 * dim
  let block_off ~dim = (3 * dim) + 1
  let stor_off ~dim = (3 * dim) + 2
  let bases_off ~ndims = 3 * ndims
  let size ~ndims ~nprocs = (3 * ndims) + nprocs
end

type storage =
  | Normal of { base : int }
  | Reshaped of { meta_base : int; bases : int array; portion_words : int }

type t = {
  name : string;
  elem : elem;
  extents : int array;
  lower : int array;
  mutable layout : Layout.t option;
  reshaped : bool;
  mutable storage : storage;
  mutable meta : int option;
  mutable canaries : (int * int) list;
  mutable version : int;
      (* bumped on every write the compiled code can see (element stores,
         element arguments passed to callees) and on redistribution; the
         inspector-executor runtime keys cached gather schedules on it *)
}

let default_lower extents = Array.map (fun _ -> 1) extents

(* ------------------------------------------------------------------ *)
(* Heap canaries: one guard word on each side of every allocation this
   module makes (array storage, descriptor blocks, reshaped portions). A
   canary is written to BOTH heap planes, so an overrun through either the
   int or the real path trips it. Checked by {!audit}. *)

let canary_pattern name k = 0x5EED0A11 lxor Hashtbl.hash (name, k) lxor (k * 77)

let plant heap ~name ~k addr =
  let pat = canary_pattern name k in
  Heap.set_int heap addr pat;
  Heap.set_real heap addr (float_of_int pat);
  (addr, pat)

let audit t heap =
  List.concat_map
    (fun (addr, pat) ->
      let int_ok = Heap.get_int heap addr = pat in
      let real_ok = Heap.get_real heap addr = float_of_int pat in
      if int_ok && real_ok then []
      else
        [
          Ddsm_check.Audit.v "heap-canary"
            "array %s: guard word at %d overwritten (%s plane)" t.name addr
            (match (int_ok, real_ok) with
            | false, false -> "both"
            | false, true -> "int"
            | _ -> "real");
        ])
    t.canaries

let element_count t = Array.fold_left ( * ) 1 t.extents

let bump_version t = t.version <- t.version + 1

let zero_based t idx =
  if Array.length idx <> Array.length t.extents then
    invalid_arg "Darray: index arity mismatch";
  Array.mapi (fun d i -> i - t.lower.(d)) idx

let nprocs t = match t.layout with None -> 1 | Some l -> Layout.nprocs l

let alloc_plain heap ~name ~elem ~extents ?lower ~page_words () =
  let lower = match lower with Some l -> l | None -> default_lower extents in
  if Array.length lower <> Array.length extents then
    invalid_arg "Darray.alloc_plain: lower-bound arity mismatch";
  let words = Array.fold_left ( * ) 1 extents in
  let padded = (words + page_words - 1) / page_words * page_words in
  let pre = plant heap ~name ~k:0 (Heap.alloc heap ~words:1 ~align_words:1) in
  let base = Heap.alloc heap ~words:padded ~align_words:page_words in
  let post = plant heap ~name ~k:1 (Heap.alloc heap ~words:1 ~align_words:1) in
  {
    name;
    elem;
    extents;
    lower;
    layout = None;
    reshaped = false;
    storage = Normal { base };
    meta = None;
    canaries = [ pre; post ];
    version = 0;
  }

(* Page-placement map for a regular distribution: each page goes to the node
   of the LAST processor (in increasing order) whose portion touches it. *)
let regular_page_homes mem layout ~base_word =
  let cfg = Memsys.config mem in
  let page_bytes = cfg.Config.page_bytes in
  let base_byte = Heap.byte_of_word base_word in
  let homes = Hashtbl.create 256 in
  for p = 0 to Layout.nprocs layout - 1 do
    let node = Config.node_of_proc cfg p in
    List.iter
      (fun (lo, hi) ->
        let lo_pg = (base_byte + lo) / page_bytes
        and hi_pg = (base_byte + hi) / page_bytes in
        for pg = lo_pg to hi_pg do
          Hashtbl.replace homes pg node
        done)
      (Layout.contiguous_ranges layout ~proc:p ~elem_bytes:Heap.word_bytes)
  done;
  homes

(* Allocate and fill the descriptor block (distribution parameters and,
   for reshaped arrays, the processor-pointer slots) for a layout. Returns
   the block address and the guard words planted around it. *)
let alloc_meta heap ~name layout =
  let ndims = Array.length layout.Layout.extents in
  let np = Layout.nprocs layout in
  let stor = Layout.storage_extents layout in
  let pre = plant heap ~name ~k:2 (Heap.alloc heap ~words:1 ~align_words:1) in
  let meta_base =
    Heap.alloc heap ~words:(Meta.size ~ndims ~nprocs:np) ~align_words:1
  in
  let post = plant heap ~name ~k:3 (Heap.alloc heap ~words:1 ~align_words:1) in
  Array.iteri
    (fun d (dm : Dim_map.t) ->
      Heap.set_int heap (meta_base + Meta.procs_off ~dim:d) dm.Dim_map.procs;
      Heap.set_int heap (meta_base + Meta.block_off ~dim:d) dm.Dim_map.block;
      Heap.set_int heap (meta_base + Meta.stor_off ~dim:d) stor.(d))
    layout.Layout.dims;
  (meta_base, [ pre; post ])

let alloc_regular heap mem ~name ~elem ~extents ?lower ~kinds ?onto ~nprocs () =
  let cfg = Memsys.config mem in
  let page_words = cfg.Config.page_bytes / Heap.word_bytes in
  let t = alloc_plain heap ~name ~elem ~extents ?lower ~page_words () in
  let layout = Layout.make ~extents ~kinds ~nprocs ?onto () in
  let base = match t.storage with Normal { base } -> base | _ -> assert false in
  let homes = regular_page_homes mem layout ~base_word:base in
  Hashtbl.iter (fun pg node -> Memsys.place_page mem ~page:pg ~node) homes;
  let meta_base, meta_canaries = alloc_meta heap ~name layout in
  {
    t with
    layout = Some layout;
    meta = Some meta_base;
    canaries = t.canaries @ meta_canaries;
  }

(* Per-processor portion allocation for a reshaped layout: pool storage on
   each owner's node, processor-pointer slots in the descriptor block, and
   a trailing guard word after every portion. *)
let alloc_portions heap pools ~name layout ~meta_base =
  let np = Layout.nprocs layout in
  let ndims = Array.length layout.Layout.extents in
  let portion_words =
    Array.fold_left ( * ) 1 (Layout.storage_extents layout)
  in
  let canaries = ref [] in
  let bases =
    Array.init np (fun p ->
        let base = Pools.alloc pools ~proc:p ~words:portion_words in
        Heap.set_int heap (meta_base + Meta.bases_off ~ndims + p) base;
        (* trailing guard from the same pool, directly after the portion *)
        let g =
          plant heap ~name ~k:(4 + p) (Pools.alloc pools ~proc:p ~words:1)
        in
        canaries := g :: !canaries;
        base)
  in
  (bases, portion_words, !canaries)

let alloc_reshaped heap mem pools ~name ~elem ~extents ?lower ~kinds ?onto
    ~nprocs () =
  ignore (Memsys.config mem);
  let lower = match lower with Some l -> l | None -> default_lower extents in
  let layout = Layout.make ~extents ~kinds ~nprocs ?onto () in
  (* descriptor block: distribution parameters + processor-pointer array *)
  let meta_base, meta_canaries = alloc_meta heap ~name layout in
  let bases, portion_words, portion_canaries =
    alloc_portions heap pools ~name layout ~meta_base
  in
  {
    name;
    elem;
    extents;
    lower;
    layout = Some layout;
    reshaped = true;
    storage = Reshaped { meta_base; bases; portion_words };
    meta = Some meta_base;
    canaries = portion_canaries @ meta_canaries;
    version = 0;
  }

(* Every word range this array owns: element storage (the descriptor block
   and each reshaped portion included), as inclusive [lo, hi] word-address
   pairs. This is the allocation map the profiler attributes accesses by. *)
let word_ranges t =
  let meta =
    match t.meta with
    | None -> []
    | Some m ->
        let ndims = Array.length t.extents in
        let np = nprocs t in
        [ (m, m + Meta.size ~ndims ~nprocs:np - 1) ]
  in
  match t.storage with
  | Normal { base } -> (base, base + element_count t - 1) :: meta
  | Reshaped { bases; portion_words; _ } ->
      Array.to_list (Array.map (fun b -> (b, b + portion_words - 1)) bases)
      @ meta

let meta_base t =
  match t.meta with
  | Some m -> m
  | None -> invalid_arg "Darray.meta_base: not a distributed array"

let portion_base t ~proc =
  match t.storage with
  | Reshaped { bases; _ } ->
      if proc < 0 || proc >= Array.length bases then
        invalid_arg "Darray.portion_base: proc out of range";
      bases.(proc)
  | Normal _ -> invalid_arg "Darray.portion_base: not reshaped"

let portion_words t ~proc =
  match t.storage with
  | Reshaped { portion_words; bases; _ } ->
      if proc < 0 || proc >= Array.length bases then
        invalid_arg "Darray.portion_words: proc out of range";
      portion_words
  | Normal _ -> invalid_arg "Darray.portion_words: not reshaped"

let refill_meta heap t layout =
  match t.meta with
  | None -> ()
  | Some meta_base ->
      let stor = Layout.storage_extents layout in
      Array.iteri
        (fun d (dm : Dim_map.t) ->
          Heap.set_int heap (meta_base + Meta.procs_off ~dim:d) dm.Dim_map.procs;
          Heap.set_int heap (meta_base + Meta.block_off ~dim:d) dm.Dim_map.block;
          Heap.set_int heap (meta_base + Meta.stor_off ~dim:d) stor.(d))
        layout.Layout.dims

(* ------------------------------------------------------------------ *)
(* [c$redistribute]: transition the array to new distribution kinds (and
   possibly a new processor count) under a minimal-communication schedule
   computed closed-form by {!Redist}. *)

type outcome = {
  pages_moved : int;
  words_moved : int;  (** data words that change home processor/node *)
  total_words : int;  (** words touched at all (reshaped copies include
                          the same-owner words; page moves touch nothing
                          else) *)
  rounds : int;
  round_words : int;  (** sum over rounds of the largest transfer — the
                          scheduled-time proxy the cost model charges *)
}

type progress = Moved of outcome | Busy

(* Regular distribution: plan every page move first, then commit pages,
   layout and descriptor together. The plan is ordered by the all-to-all
   round schedule (nodes pair up round-robin), replacing the unordered
   Hashtbl.iter of old — and because the bulk machine entry applies all
   moves or none, an injected migration failure leaves placement, layout
   and meta all on the OLD state ([Busy]), never a mix. *)
let redistribute_regular t heap mem ~base ~layout =
  let cfg = Memsys.config mem in
  let page_words = cfg.Config.page_bytes / Heap.word_bytes in
  let homes = regular_page_homes mem layout ~base_word:base in
  let pt = Memsys.pagetable mem in
  let moves =
    Hashtbl.fold
      (fun pg node acc ->
        match Pagetable.home_opt pt ~page:pg with
        | Some cur when cur = node -> acc
        | cur -> (pg, Option.value ~default:0 cur, node) :: acc)
      homes []
  in
  (* aggregate pages by (source node, dest node): one transfer per pair *)
  let pairs = Hashtbl.create 16 in
  List.iter
    (fun (pg, src, dst) ->
      Hashtbl.replace pairs (src, dst)
        (pg :: Option.value ~default:[] (Hashtbl.find_opt pairs (src, dst))))
    (List.sort compare moves);
  let nnodes = Config.nnodes cfg in
  let transfers =
    Hashtbl.fold (fun (src, dst) pgs acc -> ((src, dst), pgs) :: acc) pairs []
    |> List.map (fun ((src, dst), pgs) ->
           (Redist.round_class ~r:nnodes ~src ~dst, (src, dst), List.rev pgs))
    |> List.sort compare
  in
  let rounds = ref 0 and round_words = ref 0 and last_class = ref (-1) in
  let round_max = ref 0 in
  let plan =
    List.concat_map
      (fun (cls, (_, dst), pgs) ->
        if cls <> !last_class then begin
          last_class := cls;
          incr rounds;
          round_words := !round_words + !round_max;
          round_max := 0
        end;
        round_max := max !round_max (List.length pgs * page_words);
        List.map (fun pg -> (pg, dst)) pgs)
      transfers
  in
  round_words := !round_words + !round_max;
  match Memsys.migrate_pages mem plan with
  | Error _ -> Ok Busy
  | Ok moved ->
      t.layout <- Some layout;
      refill_meta heap t layout;
      Ok
        (Moved
           {
             pages_moved = moved;
             words_moved = moved * page_words;
             total_words = moved * page_words;
             rounds = !rounds;
             round_words = !round_words;
           })

(* Reshaped distribution: the portions themselves are rebuilt. Build the
   new descriptor block and portions ASIDE (readers keep resolving
   addresses through the old descriptor), copy every element under the
   {!Redist} schedule, then install the new storage with one swap of the
   host-side descriptor — the RCU pattern: no intermediate state is ever
   observable, and a failure before the swap leaves the array untouched. *)
let redistribute_reshaped t heap pools ~old_layout ~old_bases ~layout =
  let sched = Redist.build ~src:old_layout ~dst:layout in
  let meta_base, meta_canaries = alloc_meta heap ~name:t.name layout in
  let bases, portion_words, portion_canaries =
    alloc_portions heap pools ~name:t.name layout ~meta_base
  in
  let old_stor = Layout.storage_extents old_layout in
  let new_stor = Layout.storage_extents layout in
  let loclin stor offs =
    let lin = ref 0 and stride = ref 1 in
    Array.iteri
      (fun d off ->
        lin := !lin + (off * !stride);
        stride := !stride * stor.(d))
      offs;
    !lin
  in
  let copy =
    match t.elem with
    | Real -> fun src dst -> Heap.set_real heap dst (Heap.get_real heap src)
    | Int -> fun src dst -> Heap.set_int heap dst (Heap.get_int heap src)
  in
  for p = 0 to Layout.nprocs layout - 1 do
    Layout.iter_portion layout ~proc:p (fun idx0 ->
        let src =
          old_bases.(Layout.owner old_layout idx0)
          + loclin old_stor (Layout.offsets old_layout idx0)
        in
        copy src (bases.(p) + loclin new_stor (Layout.offsets layout idx0)))
  done;
  (* install: one host-side swap; old portions and descriptor stay valid
     (and guarded) for any reader still holding the old addresses *)
  t.storage <- Reshaped { meta_base; bases; portion_words };
  t.meta <- Some meta_base;
  t.layout <- Some layout;
  t.canaries <- portion_canaries @ meta_canaries @ t.canaries;
  Ok
    (Moved
       {
         pages_moved = 0;
         words_moved = sched.Redist.cross_words;
         total_words = sched.Redist.total_words;
         rounds = Redist.nrounds sched;
         round_words = Redist.round_words sched;
       })

let redistribute t heap mem ?pools ~kinds ?onto ~nprocs () =
  match (t.layout, t.storage) with
  | None, _ -> Error (Printf.sprintf "array %s: not a distributed array" t.name)
  | Some _, Normal { base } ->
      let layout = Layout.make ~extents:t.extents ~kinds ~nprocs ?onto () in
      redistribute_regular t heap mem ~base ~layout
  | Some old_layout, Reshaped { bases = old_bases; _ } -> (
      match pools with
      | None ->
          Error
            (Printf.sprintf
               "array %s: reshaped redistribution needs the storage pools"
               t.name)
      | Some pools ->
          let layout = Layout.make ~extents:t.extents ~kinds ~nprocs ?onto () in
          redistribute_reshaped t heap pools ~old_layout ~old_bases ~layout)

(* Number of consecutive *global* elements, starting at [idx], that are
   stored contiguously: along the first dimension up to the end of the
   owner's block/chunk (this is the "portion" an element argument passes to
   a subroutine, §3.2.1). Plain arrays: the rest of the array. *)
let portion_run t idx =
  let idx0 = zero_based t idx in
  match t.layout with
  | None ->
      let lin = ref 0 and stride = ref 1 in
      Array.iteri
        (fun d i ->
          lin := !lin + (i * !stride);
          stride := !stride * t.extents.(d))
        idx0;
      element_count t - !lin
  | Some l -> (
      let i0 = idx0.(0) in
      let dm = l.Layout.dims.(0) in
      (* a chunk-sized run is clamped to the array tail: the last chunk of
         a non-divisible extent is partial, and a run must never reach
         past the end of the dimension *)
      let tail = t.extents.(0) - i0 in
      match dm.Dim_map.kind with
      | Kind.Star -> tail
      | Kind.Block -> min (dm.Dim_map.block - (i0 mod dm.Dim_map.block)) tail
      | Kind.Cyclic -> 1
      | Kind.Cyclic_k k -> min (k - (i0 mod k)) tail)

let word_addr t idx =
  let idx0 = zero_based t idx in
  Array.iteri
    (fun d i ->
      if i < 0 || i >= t.extents.(d) then
        invalid_arg
          (Printf.sprintf "array %s: index %d out of bounds in dim %d" t.name
             (i + t.lower.(d)) (d + 1)))
    idx0;
  match (t.storage, t.layout) with
  | Normal { base }, _ ->
      let addr = ref base and stride = ref 1 in
      Array.iteri
        (fun d i ->
          addr := !addr + (i * !stride);
          stride := !stride * t.extents.(d))
        idx0;
      !addr
  | Reshaped _, Some layout ->
      let p = Layout.owner layout idx0 in
      let offs = Layout.offsets layout idx0 in
      let stor = Layout.storage_extents layout in
      let loclin = ref 0 and stride = ref 1 in
      Array.iteri
        (fun d off ->
          loclin := !loclin + (off * !stride);
          stride := !stride * stor.(d))
        offs;
      portion_base t ~proc:p + !loclin
  | Reshaped _, None -> assert false
