(** Distributed-array descriptors and storage management.

    Three storage classes mirror the paper's §3.2/§4:

    - {b plain} arrays: ordinary column-major Fortran storage, pages placed
      by the machine's default policy (first-touch or round-robin);
    - {b regular} distribution ([c$distribute]): the same column-major
      storage, but the runtime issues placement calls so each portion's
      pages land on the owner's node. Placement is page-granular: a page
      requested for several portions goes to the *last* requester (§8.3),
      which is what makes regular distribution degrade when portions are
      much smaller than a page;
    - {b reshaped} distribution ([c$distribute_reshape]): the array becomes
      a processor-array of per-processor portions (Figure 3), each allocated
      from the owner's local {!Pools} pool, plus an in-memory descriptor
      block (distribution parameters and the processor-pointer array) that
      compiled code loads when computing Table 1 addresses.

    Indices passed to this module are Fortran-style (respecting each
    dimension's lower bound, usually 1). *)

open Ddsm_dist

type elem = Real | Int

(** Layout of the in-memory descriptor block of a reshaped array, used by
    the compiler when emitting address computations. All fields are integer
    words at [meta_base + offset]: for each dimension [d] of [ndims], words
    [3d..3d+2] hold (procs, block-size, storage-extent); the
    processor-pointer array (word address of each processor's portion)
    starts at word [3*ndims]. *)
module Meta : sig
  val procs_off : dim:int -> int
  val block_off : dim:int -> int
  val stor_off : dim:int -> int
  val bases_off : ndims:int -> int
  val size : ndims:int -> nprocs:int -> int
end

type storage =
  | Normal of { base : int }  (** column-major at this word address *)
  | Reshaped of {
      meta_base : int;  (** word address of the descriptor block *)
      bases : int array;  (** host-side copy of the processor-pointer array *)
      portion_words : int;  (** per-processor storage-box size *)
    }

type t = {
  name : string;
  elem : elem;
  extents : int array;
  lower : int array;  (** per-dimension lower bounds *)
  mutable layout : Layout.t option;  (** [Some] iff distributed *)
  reshaped : bool;
  mutable storage : storage;
      (** mutable for the RCU install of {!redistribute}: a reshaped
          relayout builds new portions and descriptor aside, then swaps
          them in here in one step *)
  mutable meta : int option;
      (** word address of the descriptor block; present for every
          distributed array (regular or reshaped) so compiled affinity
          scheduling can load [P] and [b] at runtime *)
  mutable canaries : (int * int) list;
      (** guard words [(addr, pattern)] planted around every allocation
          this array owns (storage, descriptor block, reshaped portions);
          checked by {!audit}. Superseded allocations keep their guards —
          the heap never reuses them. *)
  mutable version : int;
      (** write-generation counter: bumped by the VM on element stores and
          element arguments passed by reference, and by the runtime on
          redistribution. The inspector-executor keys cached gather
          schedules on (index version, target version) and re-inspects
          when either moves. *)
}

val bump_version : t -> unit

val audit : t -> Heap.t -> Ddsm_check.Audit.violation list
(** Check every guard word of the array in both heap planes; a violation
    names the clobbered address and which plane was overwritten. *)

val alloc_plain :
  Heap.t -> name:string -> elem:elem -> extents:int array ->
  ?lower:int array -> page_words:int -> unit -> t
(** Plain array, page-aligned and padded to whole pages so its placement
    cannot interfere with neighbouring allocations. *)

val alloc_regular :
  Heap.t -> Ddsm_machine.Memsys.t -> name:string -> elem:elem ->
  extents:int array -> ?lower:int array -> kinds:Kind.t array ->
  ?onto:int array -> nprocs:int -> unit -> t
(** Regular distribution: plain storage plus explicit page placement. *)

val alloc_reshaped :
  Heap.t -> Ddsm_machine.Memsys.t -> Pools.t -> name:string -> elem:elem ->
  extents:int array -> ?lower:int array -> kinds:Kind.t array ->
  ?onto:int array -> nprocs:int -> unit -> t

type outcome = {
  pages_moved : int;  (** regular arrays: pages migrated; reshaped: 0 *)
  words_moved : int;  (** data words that change home processor/node *)
  total_words : int;
      (** words touched at all: a reshaped relayout copies every element
          (same-owner ones included); a regular one touches only the
          migrated pages *)
  rounds : int;  (** all-to-all rounds of the communication schedule *)
  round_words : int;
      (** sum over rounds of the round's largest transfer — the
          scheduled-time proxy the cost model charges (rounds are serial,
          transfers within a round parallel) *)
}

type progress =
  | Moved of outcome
  | Busy
      (** an injected page-migration failure aborted the attempt; every
          already-applied move was rolled back, so placement, layout and
          descriptor are all still the OLD state — retryable *)

val redistribute :
  t -> Heap.t -> Ddsm_machine.Memsys.t -> ?pools:Pools.t ->
  kinds:Kind.t array -> ?onto:int array -> nprocs:int -> unit ->
  (progress, string) result
(** [c$redistribute]: transition a distributed array to new distribution
    kinds — and possibly a new processor count [nprocs] (resizable
    onto-grid) — under the minimal-communication schedule of
    {!Ddsm_dist.Redist}.

    Regular arrays: every page move is planned first, ordered by the
    round schedule, and applied through the bulk machine entry
    ({!Ddsm_machine.Memsys.migrate_pages}); pages, layout and descriptor
    commit together or not at all.

    Reshaped arrays: the new portions and descriptor block are built
    aside while readers keep resolving addresses through the old
    descriptor, every element is copied under the schedule, and the new
    storage is installed with one host-side swap (RCU). Requires
    [pools]. Errors on plain (undistributed) arrays. *)

val word_addr : t -> int array -> int
(** Word address of an element (Fortran indices). For reshaped arrays this
    is the runtime oracle for the compiled Table 1 address computation. *)

val element_count : t -> int
val zero_based : t -> int array -> int array
(** Subtract lower bounds. *)

val portion_run : t -> int array -> int
(** Consecutive global elements starting at the given (Fortran) indices
    that live contiguously in the owner's portion: the size of the portion
    an element argument denotes (paper §3.2.1 — a [cyclic(5)] element at a
    chunk start denotes 5 elements). Plain arrays: the rest of the array. *)

val portion_base : t -> proc:int -> int
(** Reshaped arrays: word address of [proc]'s portion. *)

val portion_words : t -> proc:int -> int
(** Number of words of [proc]'s *storage box* (reshaped allocation size). *)

val word_ranges : t -> (int * int) list
(** Every word range this array owns, as inclusive [(lo, hi)] word-address
    pairs: element storage, the descriptor block, and each reshaped
    portion. The allocation map consumed by the cycle-attribution
    profiler. *)

val meta_base : t -> int
(** Distributed arrays: word address of the descriptor block. *)

val nprocs : t -> int
(** Processors the array is distributed over (1 for plain arrays). *)
