(** Instruction cost model (cycles), following the paper's R10000 numbers:
    a 32-bit integer divide is "about 35 cycles ... and is not pipelined";
    "the corresponding floating-point operation takes 11 cycles" (§7.3).
    Memory-access latencies come from the machine simulator, not from
    here. *)

(** 35 — hardware integer divide or modulo *)
val int_div : int

(** 11 — the §7.3 software (FPU-assisted) div/mod *)
val fp_div : int

(** floating-point division in user code *)
val real_div : int

(** add/sub/mul/compare/logical *)
val alu : int

val pow : int

(** base+offset address generation for an array ref *)
val addressing : int

val assign : int

(** per-iteration increment+test overhead *)
val loop_iter : int

(** call/return linkage *)
val call : int

(** §6 hash-table insert at a call site *)
val argcheck_register : int

(** §6 hash-table probe at subroutine entry *)
val argcheck_lookup : int

val redistribute_per_page : page_words:int -> int

(** cycles to move [words] data words of one transfer (per-word bandwidth
    of the page-migration path) *)
val redistribute_words : words:int -> int

(** cycles for one all-to-all round of a scheduled redistribution:
    pairing up the senders/receivers and the round barrier *)
val redistribute_round : int

(** cycles charged for each failed (injected) redistribution attempt:
    OS round-trip plus backoff wait before retrying *)
val redistribute_retry : int

(** a scheduled redistribution runs [rounds] rounds back to back; within
    a round the transfers proceed in parallel so each round costs its
    largest transfer ([round_words] is the sum of those maxima) *)
val redistribute_scheduled : rounds:int -> round_words:int -> int

(** the unscheduled plan moves every cross word serially, paying the
    round setup once per transfer *)
val redistribute_naive : cross_words:int -> transfers:int -> int

(** per-iteration-slot inspection work of an inspector-executor gather:
    one address classification plus a bin insert *)
val gather_inspect : int

(** cycles for one all-to-all round of a scheduled bulk gather *)
val gather_round : int

(** cycles charged for each failed (injected) bulk-fetch attempt *)
val gather_retry : int

(** cycles to move [words] words of one gather transfer *)
val gather_words : words:int -> int

(** a scheduled bulk gather runs [rounds] rounds back to back; within a
    round the per-home transfers proceed in parallel so each round costs
    its largest transfer ([round_words] is the sum of those maxima) *)
val gather_scheduled : rounds:int -> round_words:int -> int

val intrinsic : string -> int
