type ws = { proc : int; mutable clock : int; depth : int }

type _ Effect.t +=
  | Mem : ws * int * bool -> unit Effect.t
  | Fork : ws * (ws -> int -> unit) * int * string * bool -> unit Effect.t

exception Runtime_error of string
exception Cycle_limit of int

let error fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt
