let int_div = 35
let fp_div = 11
let real_div = 23
let alu = 1
let pow = 10
let addressing = 1
let assign = 1
let loop_iter = 2
let call = 12
let argcheck_register = 40
let argcheck_lookup = 25

(* moving one page: read + write each cache line through memory *)
let redistribute_per_page ~page_words = page_words / 4

(* one failed redistribution attempt: OS round-trip plus backoff wait *)
let redistribute_retry = 400

let intrinsic = Ddsm_sema.Intrinsics.cycles
