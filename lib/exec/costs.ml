let int_div = 35
let fp_div = 11
let real_div = 23
let alu = 1
let pow = 10
let addressing = 1
let assign = 1
let loop_iter = 2
let call = 12
let argcheck_register = 40
let argcheck_lookup = 25

(* moving one page: read + write each cache line through memory *)
let redistribute_per_page ~page_words = page_words / 4

(* moving [words] data words of one transfer: same per-word bandwidth as
   the page path *)
let redistribute_words ~words = words / 4

(* one all-to-all round of a scheduled redistribution: pairing up the
   senders/receivers and the round barrier *)
let redistribute_round = 150

(* one failed redistribution attempt: OS round-trip plus backoff wait *)
let redistribute_retry = 400

(* a scheduled redistribution runs its rounds back to back; within a
   round the transfers proceed in parallel, so the round costs its
   LARGEST transfer ([round_words] is the sum of those maxima). The naive
   plan moves every cross word serially with no round structure. *)
let redistribute_scheduled ~rounds ~round_words =
  (rounds * redistribute_round) + redistribute_words ~words:round_words

let redistribute_naive ~cross_words ~transfers =
  (transfers * redistribute_round) + redistribute_words ~words:cross_words

(* inspector-executor gathers (irregular accesses through an index array):
   inspection classifies one referenced element per iteration slot — an
   address computation plus a bin insert *)
let gather_inspect = 2

(* one all-to-all round of a scheduled bulk gather; smaller than a
   redistribution round because nothing is re-homed, the receivers only
   fill their scratch pages *)
let gather_round = 100

(* one failed bulk-fetch attempt: OS round-trip plus backoff wait *)
let gather_retry = 400

(* words of one gather transfer: same per-word bandwidth as redistribution *)
let gather_words ~words = words / 4

(* a scheduled gather runs its rounds back to back; within a round the
   per-home transfers proceed in parallel, so a round costs its LARGEST
   transfer ([round_words] is the sum of those maxima) *)
let gather_scheduled ~rounds ~round_words =
  (rounds * gather_round) + gather_words ~words:round_words

let intrinsic = Ddsm_sema.Intrinsics.cycles
