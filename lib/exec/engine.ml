module Sema = Ddsm_sema.Sema
module Darray = Ddsm_runtime.Darray
module Rt = Ddsm_runtime.Rt
module Heap = Ddsm_runtime.Heap
module Memsys = Ddsm_machine.Memsys
module Counters = Ddsm_machine.Counters
module Diag = Ddsm_check.Diag
module Fault = Ddsm_check.Fault
module Profile = Ddsm_report.Profile
module Sanitize = Ddsm_sanitize.Sanitize
open Ddsm_ir

type outcome = {
  cycles : int;
  prints : string list;
  counters : Counters.t;
  per_proc : Counters.t array;
}

(* ------------------------------------------------------------------ *)
(* Static storage elaboration *)

let qualified (env : Sema.env) name =
  match Sema.find_array env name with
  | Some { Sema.ai_common = Some blk; _ } -> Printf.sprintf "/%s/%s" blk name
  | _ -> Printf.sprintf "%s/%s" env.Sema.routine.Decl.rname name

let elem_of_ty = function Types.Tint -> Darray.Int | Types.Treal -> Darray.Real

let elaborate prog ~rt =
  let declare env name (ai : Sema.array_info) =
    let qname = qualified env name in
    match Rt.find_array rt qname with
    | Some existing ->
        (* a common block member declared by several routines must agree *)
        let lowers, extents =
          match ai.Sema.ai_const_shape with
          | Some s -> s
          | None -> Eff.error "array %s: non-constant shape" qname
        in
        if existing.Darray.extents <> extents || existing.Darray.lower <> lowers
        then
          Eff.error
            "common array %s declared with different shapes in different \
             routines"
            qname
    | None -> (
        let lowers, extents =
          match ai.Sema.ai_const_shape with
          | Some s -> s
          | None -> Eff.error "array %s: non-constant shape" qname
        in
        let elem = elem_of_ty ai.Sema.ai_ty in
        match ai.Sema.ai_dist with
        | None ->
            ignore
              (Rt.declare_plain rt ~name:qname ~elem ~extents ~lower:lowers ())
        | Some d ->
            let kinds = Array.of_list d.Decl.dkinds in
            let onto = Option.map Array.of_list d.Decl.donto in
            if d.Decl.dreshape then
              ignore
                (Rt.declare_reshaped rt ~name:qname ~elem ~extents ~lower:lowers
                   ~kinds ?onto ())
            else
              ignore
                (Rt.declare_regular rt ~name:qname ~elem ~extents ~lower:lowers
                   ~kinds ?onto ()))
  in
  Prog.iter prog (fun _ pr ->
      let env = pr.Prog.env in
      (* declaration order: equivalence targets after their bases *)
      let arrays =
        Hashtbl.fold
          (fun name sym acc ->
            match sym with
            | Sema.SArray ai when not ai.Sema.ai_formal -> (name, ai) :: acc
            | _ -> acc)
          env.Sema.syms []
      in
      let plain, equivs =
        List.partition (fun (_, ai) -> ai.Sema.ai_equiv_base = None) arrays
      in
      List.iter (fun (n, ai) -> declare env n ai) plain;
      (* equivalenced arrays share their base's storage: nothing to
         allocate; binding happens in static_abind *)
      ignore equivs)

(* static binding for a non-formal array of a routine *)
let static_abind prog rt ~routine ~array =
  match Prog.find prog routine with
  | None -> None
  | Some pr -> (
      let env = pr.Prog.env in
      match Sema.find_array env array with
      | None | Some { Sema.ai_formal = true; _ } -> None
      | Some ai -> (
          let target =
            match ai.Sema.ai_equiv_base with Some b -> b | None -> array
          in
          let qname = qualified env target in
          match Rt.find_array rt qname with
          | None -> None
          | Some d ->
              let lowers, extents =
                match ai.Sema.ai_const_shape with
                | Some s -> s
                | None -> (d.Darray.lower, d.Darray.extents)
              in
              let strides =
                let st = Array.make (Array.length extents) 1 in
                for i = 1 to Array.length extents - 1 do
                  st.(i) <- st.(i - 1) * extents.(i - 1)
                done;
                st
              in
              let base =
                match d.Darray.storage with
                | Darray.Normal { base } -> base
                | Darray.Reshaped { meta_base; _ } -> meta_base
              in
              Some
                {
                  Frame.ab_darr =
                    (if ai.Sema.ai_equiv_base = None then Some d else None);
                  ab_base = base;
                  ab_lowers = lowers;
                  ab_strides = strides;
                  ab_extents = extents;
                  ab_ty = ai.Sema.ai_ty;
                }))

(* ------------------------------------------------------------------ *)
(* Scheduler *)

type task = {
  tws : Eff.ws;
  region : string;  (** parallel-region label for cycle attribution *)
  mutable state : tstate;
  parent : task option;
  mutable children : task list;
  mutable pending : int;
  mutable maxchild : int;
  mutable forked_region : string option;
      (** label of the region this task is currently waiting on *)
  mutable lost_wakeup : bool;
  mutable wait_k : (unit, unit) Effect.Deep.continuation option;
  (* --- sharded-engine fields (DESIGN.md §11) ------------------------
     A shardable task runs its interpreter segments on a worker domain;
     the worker records how each segment ended in [seg] and raises
     [s_done]; the coordinator commits the recorded end (memory access,
     finish, failure) strictly in dispatch order. *)
  shardable : bool;
      (** compile-time promise from {!Eff.Fork} that the body's only
          effects are [Mem] + prints, so segments may leave the
          coordinator *)
  mutable seg : seg_end;
  mutable next_word : int;
      (** heap word the task's next segment opens with ([-1] = none): the
          word of its last committed access, used for the one-word
          conflict stall at dispatch *)
  mutable next_write : bool;
  s_done : bool Atomic.t;
  s_prints : string list ref;  (** per-segment print buffer (reversed) *)
}

and tstate = Start of (unit -> unit) | Ready | Waiting | Done

and seg_end =
  | SNone
  | SParked of int * bool  (** performed [Mem (word, write)]; continuation
                               is in [wait_k]; access not yet committed *)
  | SFinished
  | SRaised of exn

(* raised inside the scheduler loop when the watchdog trips *)
exception Stalled of int

(* Worker-domain print redirection: compiled code calls the one print
   closure the engine passed to [Compilec.create]; during a sharded
   segment it must buffer into the running task's [s_prints] so the
   coordinator can flush transcripts in turn order.  The coordinator's own
   sink stays [None], which appends directly. *)
let print_sink : string list ref option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let rec view_of t =
  let st =
    match t.state with
    | _ when t.lost_wakeup -> Diag.Blocked_mem
    | Start _ | Ready -> Diag.Ready
    | Waiting -> Diag.Waiting t.pending
    | Done -> Diag.Done
  in
  {
    Diag.tv_proc = t.tws.Eff.proc;
    tv_clock = t.tws.Eff.clock;
    tv_depth = t.tws.Eff.depth;
    tv_state = st;
    tv_children =
      List.filter_map
        (fun c -> match c.state with Done -> None | _ -> Some (view_of c))
        (List.rev t.children);
  }

let serial_region = "(serial)"

let mk_task ~tws ~region ~state ~parent ~shardable =
  {
    tws;
    region;
    state;
    parent;
    children = [];
    pending = 0;
    maxchild = 0;
    forked_region = None;
    lost_wakeup = false;
    wait_k = None;
    shardable;
    seg = SNone;
    next_word = -1;
    next_write = false;
    s_done = Atomic.make false;
    s_prints = ref [];
  }

let run prog ~rt ?(checks = true) ?(bounds = false)
    ?(max_cycles = max_int / 2) ?(audit = false) ?(stall_limit = 1_000_000)
    ?(shards = 1) ?profile ?sanitize () =
  let nshards = max 1 (min shards 64) in
  let prints = ref [] in
  let phase = ref "elaborate" in
  let mem = rt.Rt.mem in
  let master_ws = { Eff.proc = 0; clock = 0; depth = 0 } in
  let master =
    mk_task ~tws:master_ws ~region:serial_region ~state:Done ~parent:None
      ~shardable:false
  in
  (* ---- observability -------------------------------------------------
     When a profiler is attached: every Memsys access is classified by the
     probe and attributed to (current region, owning array); runtime and
     scheduler events land in the bounded trace ring. The probe reads
     [cur_region] which the Mem handler sets before each access. *)
  let cur_region = ref serial_region in
  let trace name ?args ph ~tid ~ts =
    match profile with
    | None -> ()
    | Some p -> Profile.event p ~name ?args ~ph ~tid ~ts ()
  in
  let observing = profile <> None || sanitize <> None in
  if observing then begin
    Memsys.set_probe mem
      (Some
         (fun ev ->
           (match profile with
           | None -> ()
           | Some p ->
               Profile.record_access p ~region:!cur_region ev;
               if ev.Memsys.ev_tlb_flushed then
                 Profile.event p ~name:"tlb-flush" ~cat:"fault"
                   ~ph:Profile.Instant ~tid:ev.Memsys.ev_proc
                   ~ts:ev.Memsys.ev_now ());
           match sanitize with
           | None -> ()
           | Some s -> Sanitize.on_access s ~region:!cur_region ev));
    rt.Rt.on_event <-
      Some
        (fun ~name ~detail ~proc ~now ->
          (match profile with
          | None -> ()
          | Some p ->
              let args =
                if detail = "" then []
                else [ ("detail", Ddsm_report.Json.Str detail) ]
              in
              Profile.event p ~name ~cat:"runtime" ~args ~ph:Profile.Instant
                ~tid:proc ~ts:now ());
          match sanitize with
          | Some s
            when name = "barrier" || name = "redistribute"
                 || name = "redistribute-fallback" ->
              (* an in-region redistribution synchronizes like a barrier:
                 every processor's preceding accesses are ordered before
                 every processor's subsequent ones *)
              Sanitize.on_barrier s ~proc
          | _ -> ())
  end;
  let detach_observers () =
    if observing then begin
      Memsys.set_probe mem None;
      rt.Rt.on_event <- None;
      rt.Rt.on_relayout <- None;
      rt.Rt.on_scratch <- None
    end
  in
  (* Full-context diagnosis: reason + where every simulated task stands.
     Built from whatever state exists when the failure is observed. *)
  let diagnose reason =
    let clocks = Hashtbl.create 16 in
    let rec clock_walk t =
      let p = t.tws.Eff.proc and c = t.tws.Eff.clock in
      (match Hashtbl.find_opt clocks p with
      | Some c' when c' >= c -> ()
      | _ -> Hashtbl.replace clocks p c);
      List.iter clock_walk t.children
    in
    clock_walk master;
    let blocked =
      match master.state with
      | Done -> []
      | _ -> (
          match view_of master with
          | { Diag.tv_state = Diag.Done; _ } -> []
          | v -> [ v ])
    in
    {
      Diag.phase = !phase;
      reason;
      proc_clocks =
        List.sort compare (Hashtbl.fold (fun p c acc -> (p, c) :: acc) clocks []);
      blocked;
      counters =
        ("redist_retries", rt.Rt.redist_retries)
        :: ("redist_fallbacks", rt.Rt.redist_fallbacks)
        :: Counters.to_assoc (Memsys.total_counters mem);
      violations = [];
    }
  in
  let classify = function
    | Eff.Runtime_error m -> Diag.User m
    | Eff.Cycle_limit limit -> Diag.Cycle_budget { limit }
    | Heap.Out_of_memory m -> Diag.User m
    | Stalled steps -> Diag.Watchdog_stall { steps }
    | Invalid_argument m | Failure m -> Diag.Internal m
    | e -> Diag.Internal (Printexc.to_string e)
  in
  Fun.protect ~finally:detach_observers @@ fun () ->
  try
    elaborate prog ~rt;
    (* the allocation map is complete once elaboration has declared every
       static array.  Redistributing a regular array moves pages, not
       addresses, so those ranges stay valid for the whole run; a reshaped
       redistribute installs freshly allocated portions, so the runtime's
       relayout hook re-registers the array's new ranges as they appear *)
    (match profile with
    | None -> ()
    | Some p ->
        Hashtbl.iter
          (fun name d ->
            Profile.register_array p ~name ~word_ranges:(Darray.word_ranges d))
          rt.Rt.arrays);
    (match sanitize with
    | None -> ()
    | Some s ->
        Hashtbl.iter
          (fun name d ->
            Sanitize.register_array s ~name ~word_ranges:(Darray.word_ranges d))
          rt.Rt.arrays);
    (match (profile, sanitize) with
    | None, None -> ()
    | _ ->
        rt.Rt.on_relayout <-
          Some
            (fun d ->
              let name = d.Darray.name and ranges = Darray.word_ranges d in
              Option.iter
                (fun p -> Profile.register_array p ~name ~word_ranges:ranges)
                profile;
              Option.iter
                (fun s -> Sanitize.register_array s ~name ~word_ranges:ranges)
                sanitize);
        (* gather scratch carries copies of its source array's elements:
           attribute accesses to that array (registration appends, so the
           array keeps its own ranges too) *)
        rt.Rt.on_scratch <-
          Some
            (fun ~name ~word_ranges ->
              Option.iter
                (fun p -> Profile.register_array p ~name ~word_ranges)
                profile;
              Option.iter
                (fun s -> Sanitize.register_array s ~name ~word_ranges)
                sanitize));
    phase := "compile";
    let g =
      Compilec.create prog ~rt ~checks ~bounds
        ~static_abind:(fun ~routine ~array -> static_abind prog rt ~routine ~array)
        ~print:(fun s ->
          match !(Domain.DLS.get print_sink) with
          | Some buf -> buf := s :: !buf
          | None -> prints := s :: !prints)
    in
    Compilec.set_cycle_limit g max_cycles;
    Compilec.compile_all g;
    phase := "execute";
    let fault = Memsys.fault mem in
    let wakeups = ref 0 in
    let heap = Heapq.create () in
    let failure : exn option ref = ref None in
    let push t = Heapq.push heap ~key:t.tws.Eff.clock t in
    let rec finish t =
      t.state <- Done;
      match t.parent with
      | None -> ()
      | Some p ->
          p.pending <- p.pending - 1;
          p.maxchild <- max p.maxchild t.tws.Eff.clock;
          if p.pending = 0 then begin
            p.children <- [];
            p.tws.Eff.clock <- p.maxchild;
            (match p.forked_region with
            | Some r ->
                trace r Profile.End ~tid:p.tws.Eff.proc ~ts:p.maxchild;
                p.forked_region <- None
            | None -> ());
            (match sanitize with
            | None -> ()
            | Some s -> Sanitize.on_join s);
            p.state <- Ready;
            push p
          end

    and handler t =
      (* The Mem case runs once per simulated memory access. Its effect
         arguments are stashed in per-task cells and the same closure (and
         [Some] box) is handed back every time, so dispatching the hottest
         effect allocates nothing. *)
      let m_ws = ref t.tws and m_addr = ref 0 and m_write = ref false in
      let mem_k (k : (unit, unit) Effect.Deep.continuation) =
        let ws = !m_ws and waddr = !m_addr and write = !m_write in
        cur_region := t.region;
        let lat =
          Memsys.access mem ~proc:ws.Eff.proc ~addr:(Heap.byte_of_word waddr)
            ~write ~now:ws.Eff.clock
        in
        ws.Eff.clock <- ws.Eff.clock + lat;
        if ws.Eff.clock > max_cycles then begin
          trace "cycle-budget" Profile.Instant ~tid:ws.Eff.proc ~ts:ws.Eff.clock;
          failure := Some (Eff.Cycle_limit max_cycles)
        end
        else begin
          incr wakeups;
          let w = !wakeups in
          (* chaos fault: the completion wakeup is dropped and the task
             stays parked forever — the watchdog's deadlock report must
             name it *)
          if Fault.wakeup_lost fault ~wakeup:w then begin
            t.state <- Ready;
            t.wait_k <- Some k;
            t.lost_wakeup <- true;
            trace "wakeup-lost" Profile.Instant ~tid:ws.Eff.proc
              ~ts:ws.Eff.clock
          end
          else if lat > 0 && ws.Eff.clock < Heapq.min_key heap then
            (* fast continue: the task's new clock is strictly ahead of
               everything queued, so a push would pop right back (FIFO
               tie-breaking never applies to a strictly smaller key).
               Resume it directly and skip the park/push/pop round-trip.
               [lat > 0] keeps frozen-clock livelocks on the heap path
               where the watchdog can see them. *)
            Effect.Deep.continue k ()
          else begin
            t.state <- Ready;
            t.wait_k <- Some k;
            push t
          end
        end
      in
      let mem_case = Some mem_k in
      {
        Effect.Deep.retc = (fun () -> finish t);
        exnc = (fun e -> failure := Some e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Eff.Mem (ws, waddr, write) ->
                m_ws := ws;
                m_addr := waddr;
                m_write := write;
                (mem_case
                  : ((a, unit) Effect.Deep.continuation -> unit) option)
            | Eff.Fork (ws, body, n, region, shardable) ->
                Some
                  (fun (k : (a, unit) Effect.Deep.continuation) ->
                    t.state <- Waiting;
                    t.wait_k <- Some k;
                    t.pending <- n;
                    t.maxchild <- ws.Eff.clock;
                    t.children <- [];
                    t.forked_region <- Some region;
                    trace region Profile.Begin ~tid:ws.Eff.proc ~ts:ws.Eff.clock;
                    (match sanitize with
                    | None -> ()
                    | Some s -> Sanitize.on_fork s ~region ~nprocs:n);
                    for p = n - 1 downto 0 do
                      let cws =
                        { Eff.proc = p; clock = ws.Eff.clock; depth = ws.Eff.depth + 1 }
                      in
                      let child =
                        mk_task ~tws:cws ~region
                          ~state:(Start (fun () -> body cws p))
                          ~parent:(Some t)
                          ~shardable:(shardable && nshards > 1)
                      in
                      t.children <- child :: t.children;
                      push child
                    done)
            | _ -> None);
      }
    in
    master.state <- Start (fun () -> Compilec.run_main g master_ws);
    push master;
    trace "run" Profile.Begin ~tid:0 ~ts:0;
    (* Watchdog: consecutive scheduler steps without the minimum queued
       clock advancing. A healthy run advances some clock on every resume
       (every memory access has positive latency); a stall this long means
       tasks are re-enqueuing at a frozen clock. *)
    let last_key = ref min_int and stalled = ref 0 in
    let watchdog key (t : task) =
      if key > !last_key then begin
        last_key := key;
        stalled := 0
      end
      else begin
        incr stalled;
        if !stalled > stall_limit then begin
          trace "watchdog-stall" Profile.Instant ~tid:t.tws.Eff.proc
            ~ts:t.tws.Eff.clock;
          failure := Some (Stalled !stalled)
        end
      end
    in
    let rec loop () =
      if !failure <> None then ()
      else
        match Heapq.min_key heap with
        | key when key = max_int -> ()
        | key ->
            let t = Heapq.pop_value heap in
            watchdog key t;
            if !failure <> None then ()
            else begin
              (match t.state with
              | Start f ->
                  t.state <- Done;
                  Effect.Deep.match_with f () (handler t)
              | Ready -> (
                  match t.wait_k with
                  | Some k ->
                      t.state <- Done;
                      t.wait_k <- None;
                      Effect.Deep.continue k ()
                  | None -> ())
              | Waiting | Done -> ());
              loop ()
            end
    in
    (* ---- sharded scheduler (DESIGN.md §11) ---------------------------
       One coordinator (this domain) owns the event heap, the memory
       system and every observer; [nshards] worker domains run the
       interpreter segments of shardable tasks (simulated processor [p]
       lives on shard [p mod nshards]).  A segment is the code between
       two scheduler events: it opens with the heap-data operation of the
       task's last committed access and closes at its next [Mem] perform,
       which the worker records instead of committing.  The coordinator
       pops an event only inside the conservative time window
       [key <= dispatch clock of the oldest in-flight segment] — every
       in-flight segment can only re-enqueue at or after its dispatch
       clock, and a same-key re-enqueue gets a fresh FIFO sequence
       number, so the pop order (hence the commit order) is exactly the
       sequential engine's.  Memory accesses commit at in-order drain:
       probes fire, prints flush, forks/joins/failures apply there, so
       every observer sees the sequential stream byte-for-byte. *)
    let run_sharded () =
      let nworkers = nshards in
      let rcap = 1024 in
      let rmask = rcap - 1 in
      let rbuf = Array.init nworkers (fun _ -> Array.make rcap master) in
      let rhead = Array.init nworkers (fun _ -> Atomic.make 0) in
      let rtail = Array.init nworkers (fun _ -> Atomic.make 0) in
      let stop = Atomic.make false in
      (* Handoffs spin briefly (fast on an idle core), then block on a
         condition variable — essential on machines with fewer cores than
         domains, where a spinning domain both starves the one that owes
         it work and stalls every stop-the-world minor collection.  The
         [*sleep] flags are the eventcount: a signaller takes the mutex
         only when the other side has declared itself asleep, and the
         sleeper re-checks its predicate under the mutex, so no wakeup is
         lost. *)
      let spin_budget =
        (* oversubscribed host (fewer cores than coordinator + workers):
           spinning can only burn the timeslice of the domain that owes us
           the result — block immediately instead *)
        if Domain.recommended_domain_count () <= nworkers then 0 else 2000
      in
      let rmut = Array.init nworkers (fun _ -> Mutex.create ()) in
      let rcond = Array.init nworkers (fun _ -> Condition.create ()) in
      let rsleep = Array.init nworkers (fun _ -> Atomic.make false) in
      let dmut = Mutex.create () in
      let dcond = Condition.create () in
      let dsleep = Atomic.make false in
      (* worker side: run one segment, record how it ended, raise s_done *)
      let worker_handler (t : task) =
        let m_addr = ref 0 and m_write = ref false in
        let mem_k (k : (unit, unit) Effect.Deep.continuation) =
          t.state <- Ready;
          t.wait_k <- Some k;
          t.seg <- SParked (!m_addr, !m_write)
        in
        let mem_case = Some mem_k in
        {
          Effect.Deep.retc = (fun () -> t.seg <- SFinished);
          exnc = (fun e -> t.seg <- SRaised e);
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Eff.Mem (_, waddr, write) ->
                  m_addr := waddr;
                  m_write := write;
                  (mem_case
                    : ((a, unit) Effect.Deep.continuation -> unit) option)
              | Eff.Fork _ ->
                  Some
                    (fun (k : (a, unit) Effect.Deep.continuation) ->
                      Effect.Deep.discontinue k
                        (Failure "internal: fork inside a shardable region"))
              | _ -> None);
        }
      in
      let worker w =
        let sink = Domain.DLS.get print_sink in
        let buf = rbuf.(w) and head = rhead.(w) and tail = rtail.(w) in
        let m = rmut.(w) and c = rcond.(w) and slp = rsleep.(w) in
        let rec go spins =
          let h = Atomic.get head in
          if Atomic.get tail <> h then begin
            let t = buf.(h land rmask) in
            Atomic.set head (h + 1);
            sink := Some t.s_prints;
            (match t.state with
            | Start f ->
                t.state <- Done;
                Effect.Deep.match_with f () (worker_handler t)
            | Ready -> (
                match t.wait_k with
                | Some k ->
                    t.state <- Done;
                    t.wait_k <- None;
                    Effect.Deep.continue k ()
                | None ->
                    t.seg <-
                      SRaised
                        (Failure "internal: sharded resume without continuation"))
            | Waiting | Done ->
                t.seg <-
                  SRaised
                    (Failure "internal: sharded dispatch of a non-runnable task"));
            sink := None;
            Atomic.set t.s_done true;
            if Atomic.get dsleep then begin
              Mutex.lock dmut;
              Condition.broadcast dcond;
              Mutex.unlock dmut
            end;
            go 0
          end
          else if Atomic.get stop then ()
          else if spins < spin_budget then begin
            Domain.cpu_relax ();
            go (spins + 1)
          end
          else begin
            Mutex.lock m;
            Atomic.set slp true;
            while Atomic.get tail = Atomic.get head && not (Atomic.get stop) do
              Condition.wait c m
            done;
            Atomic.set slp false;
            Mutex.unlock m;
            go 0
          end
        in
        go 0
      in
      (* coordinator side: the in-flight window, a bounded circular buffer
         in dispatch (= turn) order *)
      let fcap = 4096 in
      let fmask = fcap - 1 in
      let fl_task = Array.make fcap master in
      let fl_word = Array.make fcap (-1) in
      let fl_write = Array.make fcap false in
      let fl_lb = Array.make fcap 0 in
      let fl_head = ref 0 and fl_tail = ref 0 in
      let inflight () = !fl_tail - !fl_head in
      (* commit the recorded end of a drained segment — the exact code the
         sequential Mem handler runs at perform time, minus fast-continue
         (eliding a park/pop round-trip is order-preserving, so not taking
         the elision is too) *)
      let commit (t : task) =
        (match !(t.s_prints) with
        | [] -> ()
        | l ->
            prints := l @ !prints;
            t.s_prints := []);
        match t.seg with
        | SParked (waddr, write) ->
            t.seg <- SNone;
            t.next_word <- waddr;
            t.next_write <- write;
            let ws = t.tws in
            cur_region := t.region;
            let lat =
              Memsys.access mem ~proc:ws.Eff.proc
                ~addr:(Heap.byte_of_word waddr) ~write ~now:ws.Eff.clock
            in
            ws.Eff.clock <- ws.Eff.clock + lat;
            if ws.Eff.clock > max_cycles then begin
              trace "cycle-budget" Profile.Instant ~tid:ws.Eff.proc
                ~ts:ws.Eff.clock;
              failure := Some (Eff.Cycle_limit max_cycles)
            end
            else begin
              incr wakeups;
              let w = !wakeups in
              if Fault.wakeup_lost fault ~wakeup:w then begin
                t.lost_wakeup <- true;
                trace "wakeup-lost" Profile.Instant ~tid:ws.Eff.proc
                  ~ts:ws.Eff.clock
              end
              else push t
            end
        | SFinished ->
            t.seg <- SNone;
            finish t
        | SRaised e ->
            t.seg <- SNone;
            failure := Some e
        | SNone ->
            failure := Some (Failure "internal: drained segment recorded no end")
      in
      (* drain the oldest in-flight segment; after a failure the remaining
         segments are discarded uncommitted, exactly as the sequential
         engine never runs turns past the failing one *)
      let drain_one () =
        let i = !fl_head land fmask in
        let t = fl_task.(i) in
        if not (Atomic.get t.s_done) then begin
          let spins = ref 0 in
          while (not (Atomic.get t.s_done)) && !spins < spin_budget do
            Domain.cpu_relax ();
            incr spins
          done;
          if not (Atomic.get t.s_done) then begin
            Mutex.lock dmut;
            Atomic.set dsleep true;
            while not (Atomic.get t.s_done) do
              Condition.wait dcond dmut
            done;
            Atomic.set dsleep false;
            Mutex.unlock dmut
          end
        end;
        fl_task.(i) <- master;
        fl_word.(i) <- -1;
        incr fl_head;
        if !failure = None then commit t else t.s_prints := []
      in
      (* one-word conflict stall: the segment about to dispatch opens with
         a heap-data op on [word]; a concurrent in-flight op on the same
         word is only allowed read-read *)
      let conflicts word write =
        let c = ref false in
        let i = ref !fl_head in
        while (not !c) && !i < !fl_tail do
          let j = !i land fmask in
          if fl_word.(j) = word && (write || fl_write.(j)) then c := true;
          incr i
        done;
        !c
      in
      let dispatch (t : task) ~key =
        while inflight () >= fcap do
          drain_one ()
        done;
        let i = !fl_tail land fmask in
        fl_task.(i) <- t;
        fl_word.(i) <- t.next_word;
        fl_write.(i) <- t.next_write;
        fl_lb.(i) <- key;
        incr fl_tail;
        Atomic.set t.s_done false;
        let w = t.tws.Eff.proc mod nworkers in
        let tail = Atomic.get rtail.(w) in
        while tail - Atomic.get rhead.(w) >= rcap do
          Domain.cpu_relax ()
        done;
        rbuf.(w).(tail land rmask) <- t;
        Atomic.set rtail.(w) (tail + 1);
        if Atomic.get rsleep.(w) then begin
          Mutex.lock rmut.(w);
          Condition.broadcast rcond.(w);
          Mutex.unlock rmut.(w)
        end
      in
      let rec ploop () =
        (* opportunistic in-order drains keep the window fresh *)
        while inflight () > 0 && Atomic.get fl_task.(!fl_head land fmask).s_done
        do
          drain_one ()
        done;
        if !failure <> None then
          while inflight () > 0 do
            drain_one ()
          done
        else
          match Heapq.min_key heap with
          | key when key = max_int ->
              if inflight () > 0 then begin
                drain_one ();
                ploop ()
              end
          | key ->
              if inflight () > 0 && key > fl_lb.(!fl_head land fmask) then begin
                (* window closed: the oldest in-flight segment may still
                   re-enqueue at its dispatch clock *)
                drain_one ();
                ploop ()
              end
              else begin
                let t = Heapq.pop_value heap in
                watchdog key t;
                (if !failure = None then
                   match t.state with
                   | (Start _ | Ready) when t.shardable ->
                       (if t.next_word >= 0 then
                          while
                            !failure = None
                            && conflicts t.next_word t.next_write
                          do
                            drain_one ()
                          done);
                       if !failure = None then dispatch t ~key
                   | Start f ->
                       (* coordinator-run segment (master / unshardable
                          body): serialize around it *)
                       while !failure = None && inflight () > 0 do
                         drain_one ()
                       done;
                       if !failure = None then begin
                         t.state <- Done;
                         Effect.Deep.match_with f () (handler t)
                       end
                   | Ready -> (
                       while !failure = None && inflight () > 0 do
                         drain_one ()
                       done;
                       if !failure = None then
                         match t.wait_k with
                         | Some k ->
                             t.state <- Done;
                             t.wait_k <- None;
                             Effect.Deep.continue k ()
                         | None -> ())
                   | Waiting | Done -> ());
                ploop ()
              end
      in
      let doms = Array.init nworkers (fun w -> Domain.spawn (fun () -> worker w)) in
      Fun.protect
        ~finally:(fun () ->
          Atomic.set stop true;
          for w = 0 to nworkers - 1 do
            Mutex.lock rmut.(w);
            Condition.broadcast rcond.(w);
            Mutex.unlock rmut.(w)
          done;
          Array.iter Domain.join doms)
        ploop
    in
    if nshards > 1 then run_sharded () else loop ();
    match !failure with
    | Some e -> Error (diagnose (classify e))
    | None ->
        if master.state <> Done then Error (diagnose Diag.Deadlock)
        else begin
          let post_audit =
            if audit then Rt.audit rt else []
          in
          match post_audit with
          | _ :: _ as violations ->
              Error
                { (diagnose Diag.Audit_failure) with phase = "audit"; violations }
          | [] ->
              let per_proc =
                Array.init (Rt.nprocs rt) (fun p -> Memsys.counters mem ~proc:p)
              in
              trace "run" Profile.End ~tid:0 ~ts:master_ws.Eff.clock;
              Ok
                {
                  cycles = master_ws.Eff.clock;
                  prints = List.rev !prints;
                  counters = Memsys.total_counters mem;
                  per_proc;
                }
        end
  with
  | Eff.Runtime_error m -> Error (Diag.user ~phase:!phase m)
  | Eff.Cycle_limit limit ->
      Error (diagnose (Diag.Cycle_budget { limit }))
  | Heap.Out_of_memory m -> Error (Diag.user ~phase:!phase m)
  (* elaborate/compile run outside the scheduler, so an Invalid_argument or
     Failure raised there (e.g. by Grid.assign on a malformed onto clause
     that slipped past sema) would otherwise escape as an uncaught
     exception instead of a structured diagnosis *)
  | Invalid_argument m | Failure m -> Error (Diag.internal ~phase:!phase m)
