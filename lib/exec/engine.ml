module Sema = Ddsm_sema.Sema
module Darray = Ddsm_runtime.Darray
module Rt = Ddsm_runtime.Rt
module Heap = Ddsm_runtime.Heap
module Memsys = Ddsm_machine.Memsys
module Counters = Ddsm_machine.Counters
module Diag = Ddsm_check.Diag
module Fault = Ddsm_check.Fault
module Profile = Ddsm_report.Profile
module Sanitize = Ddsm_sanitize.Sanitize
open Ddsm_ir

type outcome = {
  cycles : int;
  prints : string list;
  counters : Counters.t;
  per_proc : Counters.t array;
}

(* ------------------------------------------------------------------ *)
(* Static storage elaboration *)

let qualified (env : Sema.env) name =
  match Sema.find_array env name with
  | Some { Sema.ai_common = Some blk; _ } -> Printf.sprintf "/%s/%s" blk name
  | _ -> Printf.sprintf "%s/%s" env.Sema.routine.Decl.rname name

let elem_of_ty = function Types.Tint -> Darray.Int | Types.Treal -> Darray.Real

let elaborate prog ~rt =
  let declare env name (ai : Sema.array_info) =
    let qname = qualified env name in
    match Rt.find_array rt qname with
    | Some existing ->
        (* a common block member declared by several routines must agree *)
        let lowers, extents =
          match ai.Sema.ai_const_shape with
          | Some s -> s
          | None -> Eff.error "array %s: non-constant shape" qname
        in
        if existing.Darray.extents <> extents || existing.Darray.lower <> lowers
        then
          Eff.error
            "common array %s declared with different shapes in different \
             routines"
            qname
    | None -> (
        let lowers, extents =
          match ai.Sema.ai_const_shape with
          | Some s -> s
          | None -> Eff.error "array %s: non-constant shape" qname
        in
        let elem = elem_of_ty ai.Sema.ai_ty in
        match ai.Sema.ai_dist with
        | None ->
            ignore
              (Rt.declare_plain rt ~name:qname ~elem ~extents ~lower:lowers ())
        | Some d ->
            let kinds = Array.of_list d.Decl.dkinds in
            let onto = Option.map Array.of_list d.Decl.donto in
            if d.Decl.dreshape then
              ignore
                (Rt.declare_reshaped rt ~name:qname ~elem ~extents ~lower:lowers
                   ~kinds ?onto ())
            else
              ignore
                (Rt.declare_regular rt ~name:qname ~elem ~extents ~lower:lowers
                   ~kinds ?onto ()))
  in
  Prog.iter prog (fun _ pr ->
      let env = pr.Prog.env in
      (* declaration order: equivalence targets after their bases *)
      let arrays =
        Hashtbl.fold
          (fun name sym acc ->
            match sym with
            | Sema.SArray ai when not ai.Sema.ai_formal -> (name, ai) :: acc
            | _ -> acc)
          env.Sema.syms []
      in
      let plain, equivs =
        List.partition (fun (_, ai) -> ai.Sema.ai_equiv_base = None) arrays
      in
      List.iter (fun (n, ai) -> declare env n ai) plain;
      (* equivalenced arrays share their base's storage: nothing to
         allocate; binding happens in static_abind *)
      ignore equivs)

(* static binding for a non-formal array of a routine *)
let static_abind prog rt ~routine ~array =
  match Prog.find prog routine with
  | None -> None
  | Some pr -> (
      let env = pr.Prog.env in
      match Sema.find_array env array with
      | None | Some { Sema.ai_formal = true; _ } -> None
      | Some ai -> (
          let target =
            match ai.Sema.ai_equiv_base with Some b -> b | None -> array
          in
          let qname = qualified env target in
          match Rt.find_array rt qname with
          | None -> None
          | Some d ->
              let lowers, extents =
                match ai.Sema.ai_const_shape with
                | Some s -> s
                | None -> (d.Darray.lower, d.Darray.extents)
              in
              let strides =
                let st = Array.make (Array.length extents) 1 in
                for i = 1 to Array.length extents - 1 do
                  st.(i) <- st.(i - 1) * extents.(i - 1)
                done;
                st
              in
              let base =
                match d.Darray.storage with
                | Darray.Normal { base } -> base
                | Darray.Reshaped { meta_base; _ } -> meta_base
              in
              Some
                {
                  Frame.ab_darr =
                    (if ai.Sema.ai_equiv_base = None then Some d else None);
                  ab_base = base;
                  ab_lowers = lowers;
                  ab_strides = strides;
                  ab_extents = extents;
                  ab_ty = ai.Sema.ai_ty;
                }))

(* ------------------------------------------------------------------ *)
(* Scheduler *)

type task = {
  tws : Eff.ws;
  region : string;  (** parallel-region label for cycle attribution *)
  mutable state : tstate;
  parent : task option;
  mutable children : task list;
  mutable pending : int;
  mutable maxchild : int;
  mutable forked_region : string option;
      (** label of the region this task is currently waiting on *)
  mutable lost_wakeup : bool;
  mutable wait_k : (unit, unit) Effect.Deep.continuation option;
}

and tstate = Start of (unit -> unit) | Ready | Waiting | Done

(* raised inside the scheduler loop when the watchdog trips *)
exception Stalled of int

let rec view_of t =
  let st =
    match t.state with
    | _ when t.lost_wakeup -> Diag.Blocked_mem
    | Start _ | Ready -> Diag.Ready
    | Waiting -> Diag.Waiting t.pending
    | Done -> Diag.Done
  in
  {
    Diag.tv_proc = t.tws.Eff.proc;
    tv_clock = t.tws.Eff.clock;
    tv_depth = t.tws.Eff.depth;
    tv_state = st;
    tv_children =
      List.filter_map
        (fun c -> match c.state with Done -> None | _ -> Some (view_of c))
        (List.rev t.children);
  }

let serial_region = "(serial)"

let run prog ~rt ?(checks = true) ?(bounds = false)
    ?(max_cycles = max_int / 2) ?(audit = false) ?(stall_limit = 1_000_000)
    ?profile ?sanitize () =
  let prints = ref [] in
  let phase = ref "elaborate" in
  let mem = rt.Rt.mem in
  let master_ws = { Eff.proc = 0; clock = 0; depth = 0 } in
  let master =
    {
      tws = master_ws;
      region = serial_region;
      state = Done;
      parent = None;
      children = [];
      pending = 0;
      maxchild = 0;
      forked_region = None;
      lost_wakeup = false;
      wait_k = None;
    }
  in
  (* ---- observability -------------------------------------------------
     When a profiler is attached: every Memsys access is classified by the
     probe and attributed to (current region, owning array); runtime and
     scheduler events land in the bounded trace ring. The probe reads
     [cur_region] which the Mem handler sets before each access. *)
  let cur_region = ref serial_region in
  let trace name ?args ph ~tid ~ts =
    match profile with
    | None -> ()
    | Some p -> Profile.event p ~name ?args ~ph ~tid ~ts ()
  in
  let observing = profile <> None || sanitize <> None in
  if observing then begin
    Memsys.set_probe mem
      (Some
         (fun ev ->
           (match profile with
           | None -> ()
           | Some p ->
               Profile.record_access p ~region:!cur_region ev;
               if ev.Memsys.ev_tlb_flushed then
                 Profile.event p ~name:"tlb-flush" ~cat:"fault"
                   ~ph:Profile.Instant ~tid:ev.Memsys.ev_proc
                   ~ts:ev.Memsys.ev_now ());
           match sanitize with
           | None -> ()
           | Some s -> Sanitize.on_access s ~region:!cur_region ev));
    rt.Rt.on_event <-
      Some
        (fun ~name ~detail ~proc ~now ->
          (match profile with
          | None -> ()
          | Some p ->
              let args =
                if detail = "" then []
                else [ ("detail", Ddsm_report.Json.Str detail) ]
              in
              Profile.event p ~name ~cat:"runtime" ~args ~ph:Profile.Instant
                ~tid:proc ~ts:now ());
          match sanitize with
          | Some s
            when name = "barrier" || name = "redistribute"
                 || name = "redistribute-fallback" ->
              (* an in-region redistribution synchronizes like a barrier:
                 every processor's preceding accesses are ordered before
                 every processor's subsequent ones *)
              Sanitize.on_barrier s ~proc
          | _ -> ())
  end;
  let detach_observers () =
    if observing then begin
      Memsys.set_probe mem None;
      rt.Rt.on_event <- None
    end
  in
  (* Full-context diagnosis: reason + where every simulated task stands.
     Built from whatever state exists when the failure is observed. *)
  let diagnose reason =
    let clocks = Hashtbl.create 16 in
    let rec clock_walk t =
      let p = t.tws.Eff.proc and c = t.tws.Eff.clock in
      (match Hashtbl.find_opt clocks p with
      | Some c' when c' >= c -> ()
      | _ -> Hashtbl.replace clocks p c);
      List.iter clock_walk t.children
    in
    clock_walk master;
    let blocked =
      match master.state with
      | Done -> []
      | _ -> (
          match view_of master with
          | { Diag.tv_state = Diag.Done; _ } -> []
          | v -> [ v ])
    in
    {
      Diag.phase = !phase;
      reason;
      proc_clocks =
        List.sort compare (Hashtbl.fold (fun p c acc -> (p, c) :: acc) clocks []);
      blocked;
      counters =
        ("redist_retries", rt.Rt.redist_retries)
        :: ("redist_fallbacks", rt.Rt.redist_fallbacks)
        :: Counters.to_assoc (Memsys.total_counters mem);
      violations = [];
    }
  in
  let classify = function
    | Eff.Runtime_error m -> Diag.User m
    | Eff.Cycle_limit limit -> Diag.Cycle_budget { limit }
    | Heap.Out_of_memory m -> Diag.User m
    | Stalled steps -> Diag.Watchdog_stall { steps }
    | Invalid_argument m | Failure m -> Diag.Internal m
    | e -> Diag.Internal (Printexc.to_string e)
  in
  Fun.protect ~finally:detach_observers @@ fun () ->
  try
    elaborate prog ~rt;
    (* the allocation map is complete once elaboration has declared every
       static array; redistribute moves pages, not addresses, so ranges
       registered here stay valid for the whole run *)
    (match profile with
    | None -> ()
    | Some p ->
        Hashtbl.iter
          (fun name d ->
            Profile.register_array p ~name ~word_ranges:(Darray.word_ranges d))
          rt.Rt.arrays);
    (match sanitize with
    | None -> ()
    | Some s ->
        Hashtbl.iter
          (fun name d ->
            Sanitize.register_array s ~name ~word_ranges:(Darray.word_ranges d))
          rt.Rt.arrays);
    phase := "compile";
    let g =
      Compilec.create prog ~rt ~checks ~bounds
        ~static_abind:(fun ~routine ~array -> static_abind prog rt ~routine ~array)
        ~print:(fun s -> prints := s :: !prints)
    in
    Compilec.set_cycle_limit g max_cycles;
    Compilec.compile_all g;
    phase := "execute";
    let fault = Memsys.fault mem in
    let wakeups = ref 0 in
    let heap = Heapq.create () in
    let failure : exn option ref = ref None in
    let push t = Heapq.push heap ~key:t.tws.Eff.clock t in
    let rec finish t =
      t.state <- Done;
      match t.parent with
      | None -> ()
      | Some p ->
          p.pending <- p.pending - 1;
          p.maxchild <- max p.maxchild t.tws.Eff.clock;
          if p.pending = 0 then begin
            p.children <- [];
            p.tws.Eff.clock <- p.maxchild;
            (match p.forked_region with
            | Some r ->
                trace r Profile.End ~tid:p.tws.Eff.proc ~ts:p.maxchild;
                p.forked_region <- None
            | None -> ());
            (match sanitize with
            | None -> ()
            | Some s -> Sanitize.on_join s);
            p.state <- Ready;
            push p
          end

    and handler t =
      (* The Mem case runs once per simulated memory access. Its effect
         arguments are stashed in per-task cells and the same closure (and
         [Some] box) is handed back every time, so dispatching the hottest
         effect allocates nothing. *)
      let m_ws = ref t.tws and m_addr = ref 0 and m_write = ref false in
      let mem_k (k : (unit, unit) Effect.Deep.continuation) =
        let ws = !m_ws and waddr = !m_addr and write = !m_write in
        cur_region := t.region;
        let lat =
          Memsys.access mem ~proc:ws.Eff.proc ~addr:(Heap.byte_of_word waddr)
            ~write ~now:ws.Eff.clock
        in
        ws.Eff.clock <- ws.Eff.clock + lat;
        if ws.Eff.clock > max_cycles then begin
          trace "cycle-budget" Profile.Instant ~tid:ws.Eff.proc ~ts:ws.Eff.clock;
          failure := Some (Eff.Cycle_limit max_cycles)
        end
        else begin
          incr wakeups;
          let w = !wakeups in
          (* chaos fault: the completion wakeup is dropped and the task
             stays parked forever — the watchdog's deadlock report must
             name it *)
          if Fault.wakeup_lost fault ~wakeup:w then begin
            t.state <- Ready;
            t.wait_k <- Some k;
            t.lost_wakeup <- true;
            trace "wakeup-lost" Profile.Instant ~tid:ws.Eff.proc
              ~ts:ws.Eff.clock
          end
          else if lat > 0 && ws.Eff.clock < Heapq.min_key heap then
            (* fast continue: the task's new clock is strictly ahead of
               everything queued, so a push would pop right back (FIFO
               tie-breaking never applies to a strictly smaller key).
               Resume it directly and skip the park/push/pop round-trip.
               [lat > 0] keeps frozen-clock livelocks on the heap path
               where the watchdog can see them. *)
            Effect.Deep.continue k ()
          else begin
            t.state <- Ready;
            t.wait_k <- Some k;
            push t
          end
        end
      in
      let mem_case = Some mem_k in
      {
        Effect.Deep.retc = (fun () -> finish t);
        exnc = (fun e -> failure := Some e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Eff.Mem (ws, waddr, write) ->
                m_ws := ws;
                m_addr := waddr;
                m_write := write;
                (mem_case
                  : ((a, unit) Effect.Deep.continuation -> unit) option)
            | Eff.Fork (ws, body, n, region) ->
                Some
                  (fun (k : (a, unit) Effect.Deep.continuation) ->
                    t.state <- Waiting;
                    t.wait_k <- Some k;
                    t.pending <- n;
                    t.maxchild <- ws.Eff.clock;
                    t.children <- [];
                    t.forked_region <- Some region;
                    trace region Profile.Begin ~tid:ws.Eff.proc ~ts:ws.Eff.clock;
                    (match sanitize with
                    | None -> ()
                    | Some s -> Sanitize.on_fork s ~region ~nprocs:n);
                    for p = n - 1 downto 0 do
                      let cws =
                        { Eff.proc = p; clock = ws.Eff.clock; depth = ws.Eff.depth + 1 }
                      in
                      let child =
                        {
                          tws = cws;
                          region;
                          state = Start (fun () -> body cws p);
                          parent = Some t;
                          children = [];
                          pending = 0;
                          maxchild = 0;
                          forked_region = None;
                          lost_wakeup = false;
                          wait_k = None;
                        }
                      in
                      t.children <- child :: t.children;
                      push child
                    done)
            | _ -> None);
      }
    in
    master.state <- Start (fun () -> Compilec.run_main g master_ws);
    push master;
    trace "run" Profile.Begin ~tid:0 ~ts:0;
    (* Watchdog: consecutive scheduler steps without the minimum queued
       clock advancing. A healthy run advances some clock on every resume
       (every memory access has positive latency); a stall this long means
       tasks are re-enqueuing at a frozen clock. *)
    let last_key = ref min_int and stalled = ref 0 in
    let rec loop () =
      if !failure <> None then ()
      else
        match Heapq.min_key heap with
        | key when key = max_int -> ()
        | key ->
            let t = Heapq.pop_value heap in
            if key > !last_key then begin
              last_key := key;
              stalled := 0
            end
            else begin
              incr stalled;
              if !stalled > stall_limit then begin
                trace "watchdog-stall" Profile.Instant ~tid:t.tws.Eff.proc
                  ~ts:t.tws.Eff.clock;
                failure := Some (Stalled !stalled)
              end
            end;
            if !failure <> None then ()
            else begin
              (match t.state with
              | Start f ->
                  t.state <- Done;
                  Effect.Deep.match_with f () (handler t)
              | Ready -> (
                  match t.wait_k with
                  | Some k ->
                      t.state <- Done;
                      t.wait_k <- None;
                      Effect.Deep.continue k ()
                  | None -> ())
              | Waiting | Done -> ());
              loop ()
            end
    in
    loop ();
    match !failure with
    | Some e -> Error (diagnose (classify e))
    | None ->
        if master.state <> Done then Error (diagnose Diag.Deadlock)
        else begin
          let post_audit =
            if audit then Rt.audit rt else []
          in
          match post_audit with
          | _ :: _ as violations ->
              Error
                { (diagnose Diag.Audit_failure) with phase = "audit"; violations }
          | [] ->
              let per_proc =
                Array.init (Rt.nprocs rt) (fun p -> Memsys.counters mem ~proc:p)
              in
              trace "run" Profile.End ~tid:0 ~ts:master_ws.Eff.clock;
              Ok
                {
                  cycles = master_ws.Eff.clock;
                  prints = List.rev !prints;
                  counters = Memsys.total_counters mem;
                  per_proc;
                }
        end
  with
  | Eff.Runtime_error m -> Error (Diag.user ~phase:!phase m)
  | Eff.Cycle_limit limit ->
      Error (diagnose (Diag.Cycle_budget { limit }))
  | Heap.Out_of_memory m -> Error (Diag.user ~phase:!phase m)
  (* elaborate/compile run outside the scheduler, so an Invalid_argument or
     Failure raised there (e.g. by Grid.assign on a malformed onto clause
     that slipped past sema) would otherwise escape as an uncaught
     exception instead of a structured diagnosis *)
  | Invalid_argument m | Failure m -> Error (Diag.internal ~phase:!phase m)
